/// \file replay_main.cpp
/// \brief Fuzzer-less replay driver: run corpus/regression inputs through a
/// fuzz target as an ordinary process (any compiler, no libFuzzer runtime).
///
/// Usage: fuzz_replay_<target> <file-or-dir>...
///
/// Directories are replayed recursively in sorted order (deterministic
/// logs). A crash or sanitizer report aborts the process at the offending
/// input, whose path is the last line printed — that is the triage loop.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

std::vector<xbs::u8> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "fuzz_replay: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  return std::vector<xbs::u8>(std::istreambuf_iterator<char>(is),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 0;
  const xbs::fuzz::Target* t = xbs::fuzz::targets(&n);
  if (n != 1) {
    std::fprintf(stderr, "fuzz_replay: expected exactly 1 registered target, got %zu\n", n);
    return 2;
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-dir>...\n", argv[0]);
    return 2;
  }

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(p.string());
    } else {
      std::fprintf(stderr, "fuzz_replay: no such input: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  for (const std::string& f : files) {
    const std::vector<xbs::u8> bytes = slurp(f);
    std::printf("[%s] %s (%zu bytes)\n", t[0].name, f.c_str(), bytes.size());
    std::fflush(stdout);  // must hit the log before a potential crash
    (void)t[0].fn(bytes.data(), bytes.size());
  }
  std::printf("[%s] replayed %zu inputs, all clean\n", t[0].name, files.size());
  return 0;
}
