/// \file fuzz_store_reader.cpp
/// \brief Fuzz the XBS1 verifying reader: materialize the fuzz bytes as a
/// record file, then open + scrub + fully read it through RecordReader.
///
/// The reader's contract is that a hostile file produces a typed StoreError
/// (or std::out_of_range for a bad samples() range) — never UB, never any
/// other exception, never a silent wrong decode. The quarantine latch is
/// asserted: once a page fails, every later access must re-throw.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "harness.hpp"
#include "xbs/store/store.hpp"

namespace {

using namespace xbs;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_store_reader: invariant violated: %s\n", what);
    std::abort();
  }
}

/// One scratch path per process (libFuzzer is single-process per job; the
/// replay driver is sequential). Rewritten for every input.
const std::string& scratch_path() {
  static const std::string path =
      "/tmp/xbs_fuzz_store." + std::to_string(::getpid()) + ".xbs";
  return path;
}

void write_image(const std::string& path, const u8* data, std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::perror("fuzz_store_reader: fopen");
    std::abort();
  }
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    std::perror("fuzz_store_reader: fwrite");
    std::abort();
  }
  std::fclose(f);
}

}  // namespace

XBS_FUZZ_TARGET(store_reader) {
  write_image(scratch_path(), data, size);

  try {
    store::RecordReader reader(scratch_path());

    // Non-latching diagnostics pass first: scrub() must never throw.
    const store::ScrubReport report = reader.scrub();
    check(report.pages_total == reader.page_count(), "scrub page count vs header");
    check(!reader.quarantined(), "scrub() must not latch the quarantine");

    // Page-by-page sample access (the replay path), then the full decode.
    try {
      std::size_t first = 0;
      for (std::size_t p = 0; p < reader.page_count(); ++p) {
        const std::size_t n = reader.page_samples(p);
        if (n == 0) break;  // past the sample region
        (void)reader.samples(first, n);
        first += n;
      }
      const ecg::DigitizedRecord rec = reader.record();
      check(rec.adu.size() == reader.header().n_samples, "decoded samples vs header");
      check(rec.r_peaks.size() == reader.header().n_peaks, "decoded peaks vs header");
      check(report.ok(), "clean decode from a file scrub() flagged");
    } catch (const store::StoreError&) {
      // Payload verdict (PageCorrupt/BadPayload). If it latched, every later
      // access must re-throw the same quarantine.
      if (reader.quarantined()) {
        bool rethrew = false;
        try {
          (void)reader.samples(0, 1);
        } catch (const store::StoreError&) {
          rethrew = true;
        } catch (const std::out_of_range&) {
          rethrew = true;  // empty sample region: range check may fire first
        }
        check(rethrew, "quarantined reader served a later access");
      }
    } catch (const std::out_of_range&) {
      // Legal only from samples() on an empty/short sample region.
    }
  } catch (const store::StoreError&) {
    // Open-time verdict (OpenFailed/TruncatedFile/BadMagic/BadVersion/
    // BadHeader/BadTagTable): the contract for arbitrary bytes.
  }
  return 0;
}
