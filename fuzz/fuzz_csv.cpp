/// \file fuzz_csv.cpp
/// \brief Fuzz the CSV record loader and the shared checked-field parsers.
///
/// ecg::read_csv is the strictest text surface (exact header block, exact
/// title row, contiguous indices); its contract for malformed input is
/// "throws std::runtime_error". The parse_*_field helpers carry the same
/// contract and additionally promise full consumption and range rejection —
/// a value they *accept* must round-trip.
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "harness.hpp"
#include "xbs/ecg/io.hpp"
#include "xbs/ecg/parse.hpp"

namespace {
using namespace xbs;
}  // namespace

XBS_FUZZ_TARGET(csv) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  {
    std::istringstream is(text);
    try {
      const ecg::DigitizedRecord rec = ecg::read_csv(is);
      (void)rec;
    } catch (const std::runtime_error&) {
      // The documented rejection path.
    }
  }

  // The field parsers see the first whitespace-delimited token (a full-line
  // token would only exercise the "embedded space" rejection).
  const std::string tok = text.substr(0, text.find_first_of(" \t\r\n"));
  try {
    (void)ecg::parse_double_field(tok, "fuzz", "double");
  } catch (const std::runtime_error&) {
  }

  // i64/i32 parity: parse_i32_field is parse_i64_field plus a range check,
  // so the two must agree exactly on every input.
  bool i64_ok = false;
  i64 v64 = 0;
  try {
    v64 = ecg::parse_i64_field(tok, "fuzz", "i64");
    i64_ok = true;
  } catch (const std::runtime_error&) {
  }
  try {
    const i32 v32 = ecg::parse_i32_field(tok, "fuzz", "i32");
    if (!i64_ok || v64 != i64{v32}) std::abort();
  } catch (const std::runtime_error&) {
    if (i64_ok && v64 >= -2147483648LL && v64 <= 2147483647LL) std::abort();
  }
  return 0;
}
