#!/usr/bin/env python3
"""Gate llvm-cov line coverage against the committed floors.

Usage: check_coverage_floor.py <llvm-cov-export.json> <coverage-floor.json>

The first argument is the output of `llvm-cov export -summary-only`; the
second is fuzz/coverage-floor.json. A floor key naming a file must match one
exported entry exactly (by repo-relative suffix); a key ending in '/'
aggregates covered/total lines over every file under that prefix. Exits
non-zero — listing every violation, not just the first — if any floor is
missed or a floor key matches no exported file (a rename must move the floor,
not silently drop the gate).
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        export = json.load(f)
    with open(sys.argv[2]) as f:
        floors = json.load(f)["floors"]

    files = export["data"][0]["files"]
    failures = []
    for key, floor in sorted(floors.items()):
        if key.endswith("/"):
            matched = [f for f in files if ("/" + key) in f["filename"]]
            covered = sum(f["summary"]["lines"]["covered"] for f in matched)
            total = sum(f["summary"]["lines"]["count"] for f in matched)
            pct = 100.0 * covered / total if total else 0.0
        else:
            matched = [f for f in files if f["filename"].endswith("/" + key)]
            if len(matched) > 1:
                failures.append(f"{key}: ambiguous, matches {len(matched)} files")
                continue
            pct = matched[0]["summary"]["lines"]["percent"] if matched else 0.0
        if not matched:
            failures.append(f"{key}: no exported coverage entry (renamed? move the floor)")
        elif pct < floor:
            failures.append(f"{key}: {pct:.2f}% < floor {floor:.2f}%")
        else:
            print(f"ok: {key}: {pct:.2f}% >= {floor:.2f}%")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
