/// \file fuzz_wfdb.cpp
/// \brief Fuzz the WFDB converter: `.hea` header parsing, format-212 sample
/// decode and `.atr` annotation atoms, all through the public read_wfdb().
///
/// Input layout: [u16 hea_len][u16 dat_len][hea bytes][dat bytes][atr bytes]
/// (lengths clamped to what is available), written as fz.hea / fz.dat /
/// fz.atr in a per-process scratch directory. The contract for hostile
/// record files is "throws std::runtime_error" — any other exception type
/// escapes the harness and crashes, which is the finding.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "harness.hpp"
#include "xbs/store/wfdb.hpp"

namespace {

using namespace xbs;

const std::string& scratch_dir() {
  static const std::string dir = [] {
    std::string d = "/tmp/xbs_fuzz_wfdb." + std::to_string(::getpid());
    if (::mkdir(d.c_str(), 0755) != 0 && errno != EEXIST) {
      std::perror("fuzz_wfdb: mkdir");
      std::abort();
    }
    return d;
  }();
  return dir;
}

void write_file(const std::string& path, const u8* data, std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::perror("fuzz_wfdb: fopen");
    std::abort();
  }
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    std::perror("fuzz_wfdb: fwrite");
    std::abort();
  }
  std::fclose(f);
}

}  // namespace

XBS_FUZZ_TARGET(wfdb) {
  if (size < 4) return 0;
  const std::size_t hea_len = std::min<std::size_t>(u16(data[0] | u16{data[1]} << 8), size - 4);
  const std::size_t dat_len =
      std::min<std::size_t>(u16(data[2] | u16{data[3]} << 8), size - 4 - hea_len);
  const u8* hea = data + 4;
  const u8* dat = hea + hea_len;
  const u8* atr = dat + dat_len;
  const std::size_t atr_len = size - 4 - hea_len - dat_len;

  // The signal-file name in the header is attacker-controlled and read_wfdb
  // opens it relative to the header's directory. Keep the fuzzer inside the
  // scratch dir: neuter '/' after the first line. The record line keeps its
  // bytes so the multi-segment ('/' in the record name) rejection path stays
  // reachable.
  std::vector<u8> hea_bytes(hea, hea + hea_len);
  bool past_record_line = false;
  for (u8& b : hea_bytes) {
    if (b == u8{'\n'}) past_record_line = true;
    else if (past_record_line && b == u8{'/'}) b = u8{'_'};
  }

  const std::string base = scratch_dir() + "/fz";
  write_file(base + ".hea", hea_bytes.data(), hea_bytes.size());
  write_file(base + ".dat", dat, dat_len);
  write_file(base + ".atr", atr, atr_len);

  try {
    const ecg::DigitizedRecord rec = store::read_wfdb(base + ".hea", /*signal=*/data[0] & 1u);
    // A record that decoded must be internally consistent: peaks sorted,
    // strictly increasing and inside the sample range (the decode_annotations
    // postcondition the store writer depends on).
    for (std::size_t i = 0; i < rec.r_peaks.size(); ++i) {
      if (rec.r_peaks[i] >= rec.adu.size() ||
          (i > 0 && rec.r_peaks[i] < rec.r_peaks[i - 1])) {
        std::fprintf(stderr, "fuzz_wfdb: decoded record violates the peak invariant\n");
        std::abort();
      }
    }
  } catch (const std::runtime_error&) {
    // The documented rejection path for malformed records.
  }
  return 0;
}
