/// \file fuzz_frame_decoder.cpp
/// \brief Fuzz the XBSP framing layer: arbitrary byte streams — torn at
/// fuzzer-chosen points into multi-frame feeds — through net::FrameDecoder,
/// then every payload decoder over each extracted frame.
///
/// Invariants asserted (beyond "no crash / no sanitizer report"):
///   - the decoder is sticky-dead: after one framing Error, next() keeps
///     returning Error and never yields another frame;
///   - a yielded frame's payload length matches its validated header;
///   - payload decoders return WireError, never throw, and on success leave
///     enums inside their legal ranges (the OpenFrame::config() contract).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "harness.hpp"
#include "xbs/net/protocol.hpp"

namespace {

using namespace xbs;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_frame_decoder: invariant violated: %s\n", what);
    std::abort();
  }
}

/// Run every decoder whose frame type matches — and, for coverage of the
/// mismatch paths, the whole decoder set on every payload (each must fail
/// closed, not crash).
void dispatch_payload(net::FrameType type, const std::vector<u8>& payload) {
  const std::span<const u8> p(payload);
  {
    net::HelloFrame f;
    (void)net::decode_hello(p, f);
  }
  {
    net::OpenFrame f;
    if (net::decode_open(p, f) == net::WireError::None) {
      // A decoded OPEN must be directly usable as a pipeline config.
      (void)f.config();
      for (const i32 lsb : f.lsbs) check(lsb >= 0 && lsb <= 32, "OPEN lsb out of range");
    }
  }
  {
    net::DrainFrame f;
    (void)net::decode_drain(p, f);
  }
  {
    net::ResetFrame f;
    (void)net::decode_reset(p, f);
  }
  {
    std::vector<stream::Event> evs;
    (void)net::decode_events(p, evs);
  }
  {
    net::StatsFrame f;
    (void)net::decode_stats(p, f);
  }
  {
    net::ErrorFrame f;
    (void)net::decode_error(p, f);
  }
  {
    std::vector<i32> samples;
    if (net::decode_chunk(p, samples) == net::WireError::None) {
      check(samples.size() * 4 == payload.size(), "CHUNK sample count vs payload size");
    }
  }
  (void)type;
}

// Knuth LCG step — modular u64 multiplication by design; exempt from the
// widened sanitizer leg's -fsanitize=integer wrap checks.
XBS_NO_SANITIZE_INTEGER inline u64 lcg_step(u64 s) noexcept {
  return s * 6364136223846793005ULL + 1442695040888963407ULL;
}

}  // namespace

XBS_FUZZ_TARGET(frame_decoder) {
  net::FrameDecoder dec;

  // The first byte seeds a tiny LCG that chooses feed() slice sizes, so the
  // fuzzer itself controls how the stream is torn (1..37-byte slices cover
  // the header-split and payload-split states).
  u64 lcg = size > 0 ? u64{data[0]} * 2654435761u + 1 : 1;
  std::size_t off = size > 0 ? 1 : 0;

  net::FrameHeader hdr;
  std::vector<u8> payload;
  net::WireError err = net::WireError::None;
  bool dead = false;

  while (off < size) {
    lcg = lcg_step(lcg);
    std::size_t chunk = 1 + static_cast<std::size_t>((lcg >> 33) % 37);
    chunk = std::min(chunk, size - off);
    dec.feed(std::span<const u8>(data + off, chunk));
    off += chunk;

    for (;;) {
      const net::FrameDecoder::Next r = dec.next(hdr, payload, err);
      if (r == net::FrameDecoder::Next::NeedMore) break;
      if (r == net::FrameDecoder::Next::Error) {
        check(net::is_fatal(err), "framing error must be a fatal code");
        dead = true;
        break;
      }
      check(!dead, "frame yielded after a fatal framing error");
      check(payload.size() == hdr.payload_len, "payload length vs header");
      dispatch_payload(hdr.type, payload);
    }
    if (dead) {
      // Sticky-dead: more bytes must never revive the stream.
      dec.feed(std::span<const u8>(data + (off < size ? off : 0),
                                   off < size ? std::min<std::size_t>(size - off, 8) : 0));
      check(dec.next(hdr, payload, err) == net::FrameDecoder::Next::Error,
            "decoder revived after a fatal framing error");
      break;
    }
  }

  // Whatever the stream did, decoding its raw bytes as each payload type
  // must also fail closed (the server hands payloads around as spans).
  const std::vector<u8> whole(data, data + size);
  dispatch_payload(net::FrameType::Hello, whole);
  return 0;
}
