/// \file harness.cpp
/// \brief Target registry + the libFuzzer entry points (harness.hpp).
#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace xbs::fuzz {

namespace {
std::vector<Target>& registry() {
  static std::vector<Target> r;
  return r;
}
}  // namespace

const Target* targets(std::size_t* count) noexcept {
  *count = registry().size();
  return registry().data();
}

bool register_target(const char* name, TargetFn fn) noexcept {
  registry().push_back(Target{name, fn});
  return true;
}

}  // namespace xbs::fuzz

#if defined(XBS_FUZZ_LIBFUZZER)

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "fault_inject.hpp"

/// A libFuzzer binary links exactly one target; fuzzing a multi-target
/// binary would conflate coverage maps, so that shape is a build error at
/// runtime-entry rather than something we try to make work.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::size_t n = 0;
  const xbs::fuzz::Target* t = xbs::fuzz::targets(&n);
  if (n != 1) {
    std::fprintf(stderr, "fuzz harness: expected exactly 1 registered target, got %zu\n", n);
    std::abort();
  }
  return t[0].fn(data, size);
}

extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

/// Custom mutator: mostly delegate to libFuzzer's generic byte mutations,
/// but one draw in four applies the fault_inject.hpp corruption vocabulary
/// (bit rot, truncation, torn stale-tail overwrites, header mangles) — the
/// exact failure shapes the store/net readers are contractually required to
/// survive, which generic havoc mutations compose poorly. One engine, two
/// consumers: the property tests and the fuzzers share FaultInjector, so a
/// new fault class automatically reaches both.
// The seed scramble below is a modular u64 multiply by design.
extern "C" XBS_NO_SANITIZE_INTEGER std::size_t LLVMFuzzerCustomMutator(
    std::uint8_t* data, std::size_t size, std::size_t max_size, unsigned int seed) {
  if ((seed & 3u) != 0 || size == 0) return LLVMFuzzerMutate(data, size, max_size);
  std::vector<xbs::u8> image(data, data + size);
  // splitmix64-style scramble: adjacent libFuzzer seeds must not collapse to
  // adjacent Rng streams.
  xbs::testing::FaultInjector inj{(xbs::u64{seed} + 1) * 0x9E3779B97F4A7C15ULL};
  // 12 = the XBSP header size; for non-wire targets it is simply "the front
  // of the input", which is where every format keeps its magic anyway.
  (void)inj.mutate_any(image, std::min<std::size_t>(image.size(), 12));
  if (image.empty() || image.size() > max_size) {
    return LLVMFuzzerMutate(data, size, max_size);
  }
  std::memcpy(data, image.data(), image.size());
  return image.size();
}

#endif  // XBS_FUZZ_LIBFUZZER
