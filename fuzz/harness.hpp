/// \file harness.hpp
/// \brief The fuzz-target registry shared by every build shape of a harness.
///
/// Each fuzz_*.cpp defines exactly one target with XBS_FUZZ_TARGET(name).
/// The same TU compiles, unchanged, into three binaries:
///
///   - fuzz_<name>        libFuzzer binary (clang, -fsanitize=fuzzer):
///                        harness.cpp provides LLVMFuzzerTestOneInput and a
///                        custom mutator seeded from tests/fault_inject.hpp.
///   - fuzz_replay_<name> plain main() driver (any compiler): replays files
///                        or directories of inputs — the crash-triage and
///                        corpus-replay tool, and the reason GCC builds stay
///                        green without libFuzzer.
///   - test_fuzz_regressions  a gtest linking *all* targets, replaying every
///                        committed corpus + regression input in the normal
///                        build matrix (fuzz findings become permanent
///                        regression tests).
///
/// A target returns 0 (libFuzzer's "input processed" convention; nonzero is
/// reserved). Crashing, aborting, or tripping a sanitizer IS the failure
/// signal — harnesses catch only the exceptions their API contract
/// documents, so anything else escapes and kills the process.
#pragma once

#include <cstddef>

#include "xbs/common/types.hpp"

namespace xbs::fuzz {

using TargetFn = int (*)(const u8* data, std::size_t size);

struct Target {
  const char* name;
  TargetFn fn;
};

/// All targets linked into this binary, in registration order.
[[nodiscard]] const Target* targets(std::size_t* count) noexcept;

/// Called by the XBS_FUZZ_TARGET registrar; returns true so it can seed a
/// namespace-scope bool initializer.
bool register_target(const char* name, TargetFn fn) noexcept;

}  // namespace xbs::fuzz

/// Define + register one fuzz target. The function body follows the macro:
///
///   XBS_FUZZ_TARGET(frame_decoder) {
///     ... use data/size ...
///     return 0;
///   }
#define XBS_FUZZ_TARGET(name)                                                  \
  static int xbs_fuzz_entry_##name(const ::xbs::u8* data, std::size_t size);   \
  [[maybe_unused]] static const bool xbs_fuzz_registered_##name =              \
      ::xbs::fuzz::register_target(#name, &xbs_fuzz_entry_##name);             \
  static int xbs_fuzz_entry_##name(const ::xbs::u8* data, std::size_t size)
