/// \file fuzz_session_drive.cpp
/// \brief Structure-aware fuzz of the serving layer: decode the fuzz bytes
/// into a bounded (config, chunk-size schedule, control-op) program and run
/// it against a real StreamServer session.
///
/// The fuzzer explores the session lifecycle state machine — try_push /
/// drain / reset(warm|cold) / close / re-open interleavings, chunk sizes
/// straddling the max_chunk_samples protocol bound — while the harness
/// asserts the accounting contract from server.hpp: at quiescence (after
/// close()), chunks_in == chunks_processed + queued_chunks + dropped_chunks,
/// and the final state is one the lifecycle permits. Only non-blocking APIs
/// are driven, so a fuzzer input can never hang the process.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness.hpp"
#include "xbs/net/protocol.hpp"
#include "xbs/stream/server.hpp"

namespace {

using namespace xbs;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_session_drive: invariant violated: %s\n", what);
    std::abort();
  }
}

/// Sequential byte reader over the fuzz input; zeros once exhausted (keeps
/// every input a complete program).
struct Program {
  const u8* p;
  std::size_t n;
  std::size_t i = 0;
  u8 next() noexcept { return i < n ? p[i++] : u8{0}; }
};

constexpr std::size_t kMaxChunkSamples = 128;
constexpr std::size_t kMaxOps = 48;
constexpr std::size_t kMaxTotalSamples = 8192;

// Knuth LCG step — modular u64 multiplication by design; exempt from the
// widened sanitizer leg's -fsanitize=integer wrap checks.
XBS_NO_SANITIZE_INTEGER inline u64 lcg_step(u64 s) noexcept {
  return s * 6364136223846793005ULL + 1442695040888963407ULL;
}

}  // namespace

XBS_FUZZ_TARGET(session_drive) {
  Program prog{data, size};

  // --- config bytes: fold into the OPEN vocabulary (always in-range; the
  // out-of-range rejections belong to fuzz_frame_decoder).
  net::OpenFrame open;
  open.add_kind = static_cast<AdderKind>(prog.next() % 6);
  open.mult_kind = static_cast<MultKind>(prog.next() % 3);
  open.policy = static_cast<ApproxPolicy>(prog.next() % 3);
  for (i32& lsb : open.lsbs) lsb = prog.next() % 17;  // 0..16 LSBs per stage

  stream::StreamServer::Options opts;
  opts.max_sessions = 2;
  opts.queue_capacity_chunks = 4;
  opts.max_chunk_samples = kMaxChunkSamples;
  opts.workers = 1;
  opts.shards = 1;
  opts.event_queue_capacity = 8;
  stream::StreamServer server(opts);

  stream::SessionSpec spec;
  spec.config = open.config();
  spec.keep_detection = false;  // unbounded-stream shape: O(window) state

  stream::SessionId id = server.open(spec);
  bool closed = false;

  std::vector<i32> chunk;
  std::vector<stream::Event> events;
  std::size_t pushed_samples = 0;

  const std::size_t n_ops = 1 + prog.next() % kMaxOps;
  for (std::size_t op = 0; op < n_ops; ++op) {
    switch (prog.next() % 8) {
      case 0:
      case 1:
      case 2:
      case 3: {  // try_push a chunk; sizes 0..129 cross the protocol bound.
        // One byte sizes it, one byte seeds the sample LCG — the fill does
        // not consume program bytes, so op schedules stay compact.
        std::size_t n = prog.next() % 130;
        u64 g = u64{prog.next()} * 2654435761u + n;
        if (pushed_samples + n > kMaxTotalSamples) n = 0;
        chunk.assign(n, 0);
        for (i32& s : chunk) {
          g = lcg_step(g);
          s = static_cast<i32>((g >> 33) % 4096) - 2048;
        }
        const stream::PushResult r = server.try_push(id, chunk);
        if (r == stream::PushResult::Ok) pushed_samples += n;
        // An oversize chunk is a protocol violation: it must never be Ok.
        if (n > kMaxChunkSamples) check(r != stream::PushResult::Ok, "oversize chunk accepted");
        if (closed) check(r != stream::PushResult::Ok, "push accepted after close");
        break;
      }
      case 4:  // drain finalized events (non-blocking overload)
        events.clear();
        (void)server.drain_events(id, events);
        for (const stream::Event& e : events) {
          check(e.hr_bpm >= 0.0 || !e.is_beat(), "negative heart rate on a beat");
        }
        break;
      case 5: {  // reset: re-arms from any state, even Faulted/Closed
        const bool warm = (prog.next() & 1u) != 0;
        check(server.reset(id, warm ? pantompkins::WarmStart::KeepThresholds
                                    : pantompkins::WarmStart::Cold),
              "reset on a live id failed");
        closed = false;
        break;
      }
      case 6:  // close: graceful drain; safe to call twice
        (void)server.close(id);
        closed = true;
        break;
      default: {  // stats snapshot must be readable at any time
        const stream::StreamServer::SessionStats st = server.session_stats(id);
        check(st.chunks_in >= st.chunks_processed + st.queued_chunks,
              "ledger: chunks_in underflows its components");
        break;
      }
    }
  }

  // Quiesce: close() waits for the drain to land, making the ledger exact.
  const stream::SessionState final_state = server.close(id);
  check(final_state == stream::SessionState::Closed ||
            final_state == stream::SessionState::Faulted,
        "close() landed in a non-terminal state");
  const stream::StreamServer::SessionStats st = server.session_stats(id);
  check(st.queued_chunks == 0, "queued chunks after close");
  check(st.chunks_in == st.chunks_processed + st.dropped_chunks,
        "ledger violated at quiescence");

  // The slot must be recyclable whatever the episode did to it.
  check(server.release(id) != nullptr, "release lost the session");
  return 0;
}
