/// \file session.hpp
/// \brief The streaming session API: incremental chunked Pan-Tompkins with
/// online QRS events.
///
/// Real edge deployments consume ADC samples as they arrive and must emit
/// beat/arrhythmia events online — they cannot hold a whole recording before
/// anything happens. A Session is one long-lived monitored stream: it is
/// built from a declarative SessionSpec (pipeline arithmetic configuration +
/// detector parameters + retention/sink options), accepts arbitrarily sized
/// sample chunks via push(), and returns the QRS decisions those samples
/// finalized. Internally it owns one kernel and one resumable StageProcessor
/// per pipeline stage (explicit carry-over state) plus an OnlineDetector, so
/// memory stays bounded for unbounded streams while output remains
/// bit-identical to the whole-record PanTompkinsPipeline::run for any
/// chunking — one sample at a time included.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::stream {

/// One online detector decision, enriched with wall-clock/rate context.
/// Index fields inside `peak` are absolute stream positions.
struct Event {
  pantompkins::PeakEvent peak{};
  double time_s = 0.0;   ///< event time (R location for beats) in seconds
  double rr_s = 0.0;     ///< RR interval vs the previous beat (beats only; 0 for the first)
  double hr_bpm = 0.0;   ///< instantaneous heart rate (beats only)

  /// True for decisions that count as detected heartbeats.
  [[nodiscard]] bool is_beat() const noexcept {
    return peak.decision == pantompkins::PeakDecision::Accepted ||
           peak.decision == pantompkins::PeakDecision::SearchBackRecovered;
  }
};

/// Declarative description of a session: what to compute, what to retain,
/// where to deliver events. Copyable — a SessionPool stamps N sessions out
/// of one spec.
struct SessionSpec {
  /// Per-stage arithmetic + detector constants (as for the batch pipeline).
  pantompkins::PipelineConfig config{};

  /// Run the online QRS detector (off: filtering only).
  bool detection = true;

  /// Accumulate the cumulative DetectionResult (trace + peaks). Turn off for
  /// unbounded serving streams that only consume the emitted events — the
  /// session then holds O(window) state regardless of stream length.
  bool keep_detection = true;

  /// Retain every per-stage output signal (batch parity / debugging; grows
  /// with the stream).
  bool keep_signals = false;

  /// Optional push-time event sink, invoked for every finalized decision (in
  /// addition to the events returned by push/flush). Called on whichever
  /// thread drives the session — under a StreamServer/SessionPool that is a
  /// worker thread, and a sink sharing state across sessions must
  /// synchronize internally (see server.hpp and README "Serving"). A sink
  /// that throws quarantines its session when driven by the server.
  std::function<void(const Event&)> sink;
};

/// A stateful streaming session over the five-stage pipeline + detector.
///
///   stream::Session s({.config = cfg});
///   while (adc.has_data()) {
///     for (const Event& ev : s.push(adc.next_chunk())) {
///       if (ev.is_beat()) on_beat(ev);
///     }
///   }
///   s.flush();  // end-of-record: finalize tail decisions
///
/// Sessions are single-consumer objects (one stream each); many sessions run
/// concurrently on different threads, sharing only the immutable process-wide
/// multiplier/coefficient LUTs (see SessionPool).
class Session {
 public:
  explicit Session(SessionSpec spec);

  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  /// Feed one chunk of digitized samples (any size, zero included). Returns
  /// the events finalized by this chunk (valid until the next push/flush).
  std::span<const Event> push(std::span<const i32> chunk);

  /// End-of-record: finalize and emit everything still pending. Idempotent;
  /// push() after flush() throws.
  std::span<const Event> flush();

  /// Re-arm for a fresh record on the same wiring: resets every stage
  /// carry-over (delay lines/window rings in place), the online detector,
  /// retained signals, counters, kernel op counts and the flushed flag. With
  /// WarmStart::Cold (the default) the session behaves exactly like a newly
  /// constructed one afterwards — without rebuilding kernels or touching the
  /// shared LUT caches. WarmStart::KeepThresholds carries the detector's
  /// trained SPK/NPK/RR state across the reset (the reconnect warm start —
  /// see pantompkins::WarmStart for the bit-identity contract); the filter
  /// chain still restarts cold either way. This is what lets a serving slot
  /// be reused across patient reconnects.
  void reset(pantompkins::WarmStart warm = pantompkins::WarmStart::Cold);

  [[nodiscard]] const SessionSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool flushed() const noexcept { return flushed_; }
  [[nodiscard]] u64 samples_pushed() const noexcept { return n_; }
  [[nodiscard]] u64 events_emitted() const noexcept { return events_; }
  [[nodiscard]] u64 beats_detected() const noexcept { return beats_; }

  /// Cumulative detector output (empty unless spec.keep_detection; final
  /// after flush() and then bit-identical to the batch pipeline's).
  [[nodiscard]] const pantompkins::DetectionResult& detection() const noexcept;

  /// Per-stage / aggregate datapath operation counts so far (the energy
  /// accounting hook: price with hwmodel::SoftwareEnergyModel::ops_energy_j
  /// or the ASIC block costs).
  [[nodiscard]] std::array<arith::OpCounts, pantompkins::kNumStages> ops() const noexcept;
  [[nodiscard]] arith::OpCounts total_ops() const noexcept;

  /// Retained stage signal (empty unless spec.keep_signals).
  [[nodiscard]] const std::vector<i32>& stage_signal(pantompkins::Stage s) const noexcept {
    return signals_[static_cast<std::size_t>(s)];
  }

 private:
  void deliver(std::span<const pantompkins::PeakEvent> evs);

  SessionSpec spec_;
  std::array<std::unique_ptr<arith::Kernel>, pantompkins::kNumStages> kernels_;
  std::vector<pantompkins::StageProcessor> stages_;  ///< one per pipeline stage
  std::unique_ptr<pantompkins::OnlineDetector> detector_;  ///< null when detection off
  /// Per-stage chunk outputs, reused across pushes (allocation-free hot path).
  std::array<std::vector<i32>, pantompkins::kNumStages> chain_;
  std::array<std::vector<i32>, pantompkins::kNumStages> signals_;

  u64 n_ = 0;
  u64 events_ = 0;
  u64 beats_ = 0;
  std::ptrdiff_t last_beat_raw_ = -1;  ///< previous beat's raw index (RR/HR context)
  std::vector<Event> fresh_;           ///< events finalized by the current call
  bool flushed_ = false;
};

}  // namespace xbs::stream
