/// \file server.hpp
/// \brief The long-running serving layer: a sharded session-slot table with
/// per-shard worker pools, zero-copy loanable-buffer ingest, bounded queues
/// with explicit backpressure, per-session fault isolation, and a pull-based
/// event egress.
///
/// A continuously deployed sensor-node service is not a batch job: streams
/// connect, drop, reconnect and misbehave while every other stream keeps
/// flowing. StreamServer owns a set of id-addressed session slots split
/// across N independent *shards* — each shard has its own lock, ready list
/// and worker set, and a session is pinned to the shard its id hashes to, so
/// control-plane calls (open/close/reset/release) on one session never
/// contend with ingest on another shard's sessions. Results are bit-identical
/// for any shard count: a session's chunk sequence, events and op counts
/// depend only on its own feed.
///
/// Ingest is allocation- and copy-free on the hot path. Producers either
/// borrow a chunk buffer from the session's ring and fill it in place —
///
///   ChunkLoan loan;
///   if (server.acquire_buffer(id, n, loan) == PushResult::Ok) {
///     adc.read_into(loan.data());   // fill in place: no copy anywhere
///     server.commit(loan);
///   }
///
/// — or use push()/try_push(), thin wrappers that acquire, memcpy the
/// caller's span and commit (one copy, still no allocation: the buffer comes
/// from the ring). Buffer ownership: between acquire and commit/destruction
/// the producer owns the buffer exclusively; commit() hands it to the
/// server; a destroyed uncommitted loan returns the buffer and its reserved
/// queue slot. Loans count toward the session's queue capacity and must not
/// outlive the server. A session's chunk order is its commit order — one
/// producer thread per session (the Session contract) keeps it meaningful.
///
/// Event egress happens two ways. SessionSpec::sink remains the push-model:
/// invoked on worker threads, shared sinks must synchronize internally. With
/// Options::event_queue_capacity > 0 the server additionally retains each
/// session's finalized events in a per-session bounded queue that
/// single-threaded consumers poll with drain_events(id) — no locking
/// discipline needed, at the cost of the bound: when a consumer lags more
/// than the capacity, the oldest undrained events are dropped (counted in
/// SessionStats::events_dropped). reset() discards undrained events of the
/// abandoned episode the same way. On a fault, the egress queue holds the
/// events of fully processed chunks; a sink may additionally have observed
/// part of the chunk that faulted.
///
/// Lifecycle: open() provisions a slot (re-using released ones),
/// close() drains + flushes, reset() re-arms a slot mid-flight for a fresh
/// record (dropping whatever was queued; optionally warm-starting the
/// detector — see pantompkins::WarmStart), release() hands the quiescent
/// Session object back and frees the slot for the next tenant. Ids carry a
/// provisioning generation, so a stale id held across release()/open()
/// addresses nothing instead of the slot's new tenant.
///
/// Accounting contract (the "clean ledger"): all SessionStats counters are
/// cumulative over the slot's provisioning generation — open()/adopt()
/// zeroes them, reset() carries them (and increments `resets`). chunks_in
/// counts chunks accepted into the queue; rejected_chunks counts ingest
/// refusals that never entered it (try_push at the high-water mark, protocol
/// violations); dropped_chunks counts accepted chunks discarded before
/// processing (fault/reset queue drops). Whenever a slot is quiescent (no
/// worker mid-batch): chunks_in == chunks_processed + queued_chunks +
/// dropped_chunks.
///
/// Error isolation: anything a session throws inside a worker — a throwing
/// user sink, a push on an adopted already-flushed session — and any
/// protocol violation detected at ingest (a chunk over max_chunk_samples)
/// quarantines *that* session: state becomes Faulted, the error text is
/// captured in its stats, its queue is dropped, and pushes are refused until
/// reset() re-arms or release() retires it. Workers never re-throw, so one
/// bad stream can neither kill the process nor wedge its worker. A push()
/// blocked at the high-water mark wakes and returns the refusal reason the
/// moment its session closes, faults or is released — it never blocks on a
/// session that can no longer accept.
///
/// Thread safety: all public methods are safe to call concurrently from any
/// thread. Per-session event order is preserved (a session is drained by at
/// most one worker at a time). stats() aggregates shard-consistent
/// snapshots; across shards the totals are a sum of per-shard snapshots
/// taken in sequence.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "xbs/common/ring.hpp"
#include "xbs/common/sync.hpp"
#include "xbs/stream/session.hpp"

namespace xbs::stream {

/// Lifecycle state of a server slot.
enum class SessionState {
  Empty,     ///< not provisioned (or released)
  Open,      ///< streaming: accepts pushes, a worker drains its queue
  Draining,  ///< close() requested: queued chunks flush through, no new pushes
  Closed,    ///< flushed; Session retained for inspection until release()
  Faulted,   ///< quarantined: error captured, queue dropped, pushes refused
};

[[nodiscard]] const char* to_string(SessionState s) noexcept;

/// Outcome of an ingest attempt.
enum class PushResult {
  Ok,
  QueueFull,      ///< try_push only: bounded queue at capacity, chunk not taken
  Closed,         ///< session closed/closing: chunk refused
  Faulted,        ///< session quarantined: chunk refused
  NoSuchSession,  ///< unknown or stale id
};

[[nodiscard]] const char* to_string(PushResult r) noexcept;

/// Opaque session address: slot index + provisioning generation. The shard
/// a session lives on is a pure function of the id (consistent hash), so no
/// routing table is consulted on the ingest path.
struct SessionId {
  std::size_t slot = static_cast<std::size_t>(-1);
  u64 generation = 0;

  friend constexpr bool operator==(const SessionId&, const SessionId&) = default;
};

class StreamServer;

/// A chunk buffer on loan from a session's ring: the zero-copy ingest
/// handle. Fill data() in place, then StreamServer::commit() it. Destroying
/// an uncommitted loan returns the buffer and frees its reserved queue slot
/// (the abandon path). Move-only; must not outlive its server.
class ChunkLoan {
 public:
  ChunkLoan() = default;
  ChunkLoan(ChunkLoan&& other) noexcept { *this = std::move(other); }
  ChunkLoan& operator=(ChunkLoan&& other) noexcept;
  ~ChunkLoan();

  ChunkLoan(const ChunkLoan&) = delete;
  ChunkLoan& operator=(const ChunkLoan&) = delete;

  /// True between a successful acquire and commit/destruction.
  [[nodiscard]] bool valid() const noexcept { return server_ != nullptr; }

  /// The writable sample region (exactly the acquire()d length).
  [[nodiscard]] std::span<i32> data() noexcept { return buf_; }

  [[nodiscard]] SessionId id() const noexcept { return id_; }

 private:
  friend class StreamServer;
  StreamServer* server_ = nullptr;
  SessionId id_{};
  u64 epoch_ = 0;  ///< the slot's reset epoch at acquire time (stale loans die)
  std::vector<i32> buf_;
};

/// A long-running multi-session streaming server. See the file comment for
/// the sharding / ingest / lifecycle / backpressure / isolation semantics.
class StreamServer {
 public:
  struct Options {
    /// Hard ceiling on concurrently provisioned slots across all shards;
    /// open() beyond it throws std::runtime_error (admission control
    /// belongs to the caller).
    std::size_t max_sessions = 64;

    /// Per-session bound on accepted-but-unprocessed chunks: the high-water
    /// mark. Outstanding loans and the batch a worker is currently
    /// processing both count toward it, so the bound is exact — memory and
    /// worst-case ingest latency can be sized off it. try_push returns
    /// QueueFull at capacity; push blocks until processing frees space.
    std::size_t queue_capacity_chunks = 32;

    /// Protocol bound on one chunk, in samples (0 = unlimited). An oversize
    /// chunk is a malformed stream: the session faults (it is not a
    /// transient overload, so it is not a QueueFull).
    std::size_t max_chunk_samples = 0;

    /// Worker threads draining session queues, in total across shards
    /// (0 = hardware concurrency). Every shard runs at least one worker, so
    /// the effective total is max(workers, shards).
    unsigned workers = 0;

    /// Independent slot groups, each with its own lock, ready list and
    /// workers (0 = auto: one shard per worker, capped at 8). Sessions hash
    /// onto shards by id; results are bit-identical for any shard count.
    unsigned shards = 0;

    /// Per-session bound on the pull-egress event queue (0 = pull egress
    /// disabled; events reach sinks only). When a drain_events() consumer
    /// lags by more than this many events, the oldest undrained ones are
    /// dropped and counted in SessionStats::events_dropped.
    std::size_t event_queue_capacity = 0;
  };

  /// Per-session live statistics (a consistent snapshot; cumulative over the
  /// slot's provisioning generation — see the accounting contract above).
  struct SessionStats {
    SessionState state = SessionState::Empty;
    u64 chunks_in = 0;         ///< chunks accepted into the queue
    u64 chunks_processed = 0;  ///< chunks pushed through the Session
    u64 rejected_chunks = 0;   ///< ingest refusals: try_push QueueFull + protocol violations
    u64 dropped_chunks = 0;    ///< accepted chunks discarded on fault/reset
    /// Current queue depth — excluding loans in producer hands and the batch
    /// a worker is processing right now (those count toward the capacity
    /// bound but surface in chunks_processed once done).
    u64 queued_chunks = 0;
    u64 queued_samples = 0;
    u64 peak_queued_chunks = 0;///< deepest queue this provisioning has seen
    u64 resets = 0;            ///< reset() count this provisioning
    u64 samples = 0;           ///< samples processed
    u64 events = 0;            ///< detector decisions delivered
    u64 beats = 0;             ///< accepted QRS events
    u64 events_queued = 0;     ///< pull-egress events awaiting drain_events()
    u64 events_dropped = 0;    ///< egress events lost to the bound (or reset)
    std::string error;         ///< why the session faulted (empty otherwise)
  };

  /// Aggregate live statistics across the server's lifetime. Totals are a
  /// sum of per-shard snapshots taken in sequence (each internally
  /// consistent).
  struct ServerStats {
    u64 open = 0;      ///< slots currently Open or Draining
    u64 closed = 0;    ///< slots currently Closed (awaiting release)
    u64 faulted = 0;   ///< slots currently quarantined
    /// Lifetime open()/adopt() count. Counts admissions, not completions:
    /// an open() that passed admission but then failed slot allocation
    /// (OOM) is included — the value is the generation counter, which must
    /// never run backwards or stale ids could alias a later session.
    u64 sessions_opened = 0;
    u64 sessions_released = 0; ///< lifetime release() count
    u64 chunks_processed = 0;
    u64 rejected_chunks = 0;
    u64 dropped_chunks = 0;
    u64 queued_chunks = 0;     ///< current total queue depth
    u64 peak_queued_chunks = 0;///< highest single-session depth ever observed
    u64 samples = 0;
    u64 events = 0;
    u64 beats = 0;
    u64 events_dropped = 0;
  };

  StreamServer();  ///< default Options (a nested-class NSDMI cannot be a default argument)
  explicit StreamServer(Options opts);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Provision a slot with a fresh Session built from \p spec. Reuses a
  /// released slot when one exists; throws std::runtime_error at the
  /// max_sessions ceiling and propagates Session construction failures
  /// (e.g. invalid DetectorParams) without consuming a slot.
  SessionId open(SessionSpec spec);

  /// Provision a slot with an existing Session (the SessionPool
  /// compatibility path). The server takes ownership; the session's
  /// accumulated state is kept as-is (an already-flushed adoptee will fault
  /// on its first pushed chunk — that is the push-after-flush quarantine).
  SessionId adopt(std::unique_ptr<Session> session);

  /// Borrow a chunk buffer of \p n_samples from the session's ring, blocking
  /// while the queue (plus outstanding loans) sits at the high-water mark.
  /// Ok grants the loan; any other result means no loan was made (session
  /// closed/faulted/released while waiting, or \p n_samples violates
  /// max_chunk_samples — which faults the session, exactly like an oversize
  /// push).
  PushResult acquire_buffer(SessionId id, std::size_t n_samples, ChunkLoan& out);

  /// Non-blocking acquire: QueueFull at the high-water mark (counted in
  /// rejected_chunks), otherwise as acquire_buffer.
  PushResult try_acquire_buffer(SessionId id, std::size_t n_samples, ChunkLoan& out);

  /// Hand a filled loan to the server: the buffer enters the session's queue
  /// without being copied. \p n_samples trims the committed length (npos =
  /// everything acquired; more than acquired throws std::invalid_argument).
  /// The loan is consumed either way; on refusal (the session closed,
  /// faulted, was released — or was reset() since the acquire, in which case
  /// the loan belongs to the abandoned episode and commits as Closed rather
  /// than leaking stale samples into the fresh record) the samples are
  /// discarded and the buffer recycled.
  PushResult commit(ChunkLoan& loan, std::size_t n_samples = static_cast<std::size_t>(-1));

  /// Non-blocking copying ingest: acquire + memcpy + commit in one call.
  /// Refuses with QueueFull at the high-water mark (counted in
  /// rejected_chunks). Allocation-free in steady state (ring buffers).
  PushResult try_push(SessionId id, std::span<const i32> chunk);

  /// Blocking copying ingest: waits for queue space while the session stays
  /// Open. Returns the refusal reason instead if the session closes, faults
  /// or is released while waiting — including while already blocked.
  PushResult push(SessionId id, std::span<const i32> chunk);

  /// Drain the session's pull-egress queue (Options::event_queue_capacity
  /// must be > 0): appends every undrained finalized event to \p out in
  /// delivery order and returns how many were appended. Non-blocking; safe
  /// from any thread, though a single consumer per session is the intended
  /// shape. Works on Closed/Faulted sessions too (the tail of a drained
  /// record stays drainable until reset()/release()). 0 for a stale id.
  std::size_t drain_events(SessionId id, std::vector<Event>& out);

  /// Blocking drain: sleeps until at least one event is available (then
  /// drains everything queued at that instant), the session reaches a state
  /// that can produce no more events (Closed/Faulted with an empty queue,
  /// released, server shutdown), or \p timeout expires — whichever comes
  /// first. Returns how many events were appended (0 on timeout/terminal).
  /// This is what sleeping consumers — and the network egress path — use
  /// instead of spin-polling the non-blocking overload.
  std::size_t drain_events(SessionId id, std::vector<Event>& out,
                           std::chrono::milliseconds timeout);

  /// Graceful end-of-stream: stops admitting pushes, lets the queue drain,
  /// flushes the session, and waits for that to finish. Returns the final
  /// state (Closed, or Faulted if the tail faulted; Empty for a stale id).
  /// Safe to call twice. Wakes any producer blocked in push()/acquire_buffer.
  /// A reset() racing this call may re-arm the slot the instant the drain
  /// lands; close() still returns the state that drain reached (it observes
  /// the completion itself, not just the slot's current state).
  SessionState close(SessionId id);

  /// Re-arm a slot mid-flight for a fresh record: drops whatever is queued
  /// (counted in dropped_chunks) and any undrained egress events (counted in
  /// events_dropped), waits out in-flight work, resets the Session (stage
  /// carry-overs, detector, counters) and returns the slot to Open —
  /// including from Faulted (quarantine release) and Closed (slot reuse
  /// without re-provisioning). \p warm optionally carries the detector's
  /// trained thresholds across the reset (the reconnect warm start).
  /// Outstanding loans go stale: they commit as Closed instead of leaking
  /// the abandoned episode's samples into the fresh record. False for a
  /// stale id. Other sessions stream on, undisturbed, the whole time.
  bool reset(SessionId id, pantompkins::WarmStart warm = pantompkins::WarmStart::Cold);

  /// Retire a slot and hand its quiescent Session back (closing it first if
  /// still streaming). The slot returns to Empty and becomes reusable by the
  /// next open(); the id goes stale. Null for a stale id.
  std::unique_ptr<Session> release(SessionId id);

  /// Pause/resume every shard's workers (a maintenance gate: ingest keeps
  /// accepting until queues hit the high-water mark, nothing is processed
  /// while paused). Used by tests to make backpressure deterministic.
  void pause();
  void resume();

  /// Read-only view of a slot's Session. Stable while the id stays valid,
  /// but concurrently mutated by workers while Open/Draining — inspect
  /// results only once Closed or Faulted. Null for a stale id.
  [[nodiscard]] const Session* session(SessionId id) const;

  [[nodiscard]] SessionStats session_stats(SessionId id) const;
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] unsigned workers() const noexcept { return n_workers_; }
  [[nodiscard]] unsigned shards() const noexcept { return n_shards_; }

 private:
  friend class ChunkLoan;

  struct Slot {
    std::unique_ptr<Session> session;
    SessionState state = SessionState::Empty;
    u64 generation = 0;
    std::deque<std::vector<i32>> queue;
    u64 queued_samples = 0;
    BufferRing<std::vector<i32>> ring;  ///< recycled chunk buffers (kept across tenants)
    std::size_t loaned = 0;    ///< buffers in producer hands (reserve queue slots)
    std::size_t inflight = 0;  ///< chunks in a worker's batch (still hold queue slots)
    bool busy = false;         ///< a worker is draining this slot right now
    bool enqueued = false;     ///< slot is in the shard's ready list
    u64 ready_stamp = 0;       ///< when the slot entered the ready list (pop priority)
    u64 final_seq = 0;         ///< bumped whenever a drain lands Closed/Faulted
    SessionState final_state = SessionState::Empty;  ///< what that landing was
    u64 chunks_in = 0;
    u64 chunks_processed = 0;
    u64 rejected_chunks = 0;
    u64 dropped_chunks = 0;
    u64 peak_queued = 0;
    u64 resets = 0;
    u64 reset_epoch = 0;  ///< bumped by reset(): outstanding loans go stale
    u64 samples = 0;
    u64 events = 0;
    u64 beats = 0;
    std::deque<Event> egress;  ///< pull-model event queue (bounded)
    u64 events_dropped = 0;
    std::string error;
  };

  /// One independent slot group: its own lock, cvs, ready list and workers.
  /// `mu` has rank kShard: acquired after a net-conn lock (the front door
  /// calls open()/reset() under its registry lock), before any table-cache
  /// lock (Session::reset may rebuild LUTs under it).
  ///
  /// Slot *contents* are guarded by `mu` too, but `GUARDED_BY` cannot name a
  /// mutex living in a different struct — the `XBS_REQUIRES(sh.mu)` on every
  /// slot-touching helper below carries that half of the contract instead.
  struct Shard {
    mutable common::Mutex mu{common::LockRank::kShard};
    common::CondVar work_cv;    ///< workers: ready list / stop / resume
    common::CondVar space_cv;   ///< blocking acquire: queue space / state change
    common::CondVar state_cv;   ///< close/reset/release: state changes
    common::CondVar egress_cv;  ///< blocking drain_events: events / state
    std::vector<Slot> slots XBS_GUARDED_BY(mu);
    std::deque<std::size_t> ready XBS_GUARDED_BY(mu);  ///< local slot indices with runnable work
    u64 ready_seq XBS_GUARDED_BY(mu) = 0;              ///< monotonic ready_stamp source
    bool stop XBS_GUARDED_BY(mu) = false;
    bool paused XBS_GUARDED_BY(mu) = false;
    int space_waiters XBS_GUARDED_BY(mu) = 0;   ///< gates space_cv notifies off the hot path
    int egress_waiters XBS_GUARDED_BY(mu) = 0;  ///< gates egress_cv notifies off the hot path
    /// Currently provisioned (non-Empty) slots on this shard: the
    /// least-loaded placement signal read lock-free at open(). A hint, not
    /// an invariant — a stale read just places one session suboptimally.
    std::atomic<u32> live{0};
    // Totals carried past release(), so ServerStats survives churn.
    u64 retired_chunks_processed XBS_GUARDED_BY(mu) = 0;
    u64 retired_rejected_chunks XBS_GUARDED_BY(mu) = 0;
    u64 retired_dropped_chunks XBS_GUARDED_BY(mu) = 0;
    u64 retired_samples XBS_GUARDED_BY(mu) = 0;
    u64 retired_events XBS_GUARDED_BY(mu) = 0;
    u64 retired_beats XBS_GUARDED_BY(mu) = 0;
    u64 retired_events_dropped XBS_GUARDED_BY(mu) = 0;
    u64 peak_queued XBS_GUARDED_BY(mu) = 0;  ///< shard-lifetime peak (incl. retired slots)
    std::vector<std::thread> threads;  ///< ctor/dtor only: never touched by other threads
  };

  // Id <-> shard routing: shard = slot % n_shards, local index = slot / n_shards.
  [[nodiscard]] Shard& shard_of(SessionId id) const noexcept {
    return *shards_[id.slot % n_shards_];
  }
  [[nodiscard]] std::size_t local_index(SessionId id) const noexcept {
    return id.slot / n_shards_;
  }

  // Helpers taking a Shard expect (and statically require) its mu held;
  // provision/acquire_impl/cancel_loan lock the shard themselves.
  Slot* find(Shard& sh, SessionId id) XBS_REQUIRES(sh.mu);
  const Slot* find(Shard& sh, SessionId id) const XBS_REQUIRES(sh.mu);
  SessionId provision(std::unique_ptr<Session> session);
  PushResult refuse_reason(const Slot& s) const;  // reads one Slot: caller holds its shard's mu
  void enqueue_ready(Shard& sh, std::size_t local) XBS_REQUIRES(sh.mu);
  void drop_queue(Shard& sh, Slot& s) XBS_REQUIRES(sh.mu);
  void fault(Shard& sh, Slot& s, std::string why) XBS_REQUIRES(sh.mu);
  void append_egress(Shard& sh, Slot& s, std::vector<Event>& evs) XBS_REQUIRES(sh.mu);
  PushResult acquire_impl(SessionId id, std::size_t n_samples, ChunkLoan& out, bool blocking);
  void cancel_loan(SessionId id, std::vector<i32>&& buf) noexcept;
  void worker_loop(Shard& sh);
  /// Held on entry and exit; unlocks around Session work via `lock` (the
  /// relockable-scope pattern the static analysis cannot follow — the
  /// definition opts out and re-asserts the capability at runtime instead).
  void drain_slot(Shard& sh, common::MutexLock& lock, std::size_t local) XBS_REQUIRES(sh.mu);

  Options opts_;
  unsigned n_workers_ = 0;
  unsigned n_shards_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cross-shard coordination stays lock-free: the generation counter keeps
  // ids unique across shards (the chosen shard is encoded in the slot index),
  // the provisioned count enforces max_sessions.
  std::atomic<u64> sessions_opened_{0};
  std::atomic<u64> sessions_released_{0};
  std::atomic<std::size_t> provisioned_{0};
};

}  // namespace xbs::stream
