/// \file server.hpp
/// \brief The long-running serving layer: dynamic session lifecycle over a
/// worker pool, bounded ingest queues with explicit backpressure, and
/// per-session fault isolation.
///
/// A continuously deployed sensor-node service is not a batch job: streams
/// connect, drop, reconnect and misbehave while every other stream keeps
/// flowing. StreamServer owns a set of id-addressed session slots. Producers
/// enqueue sample chunks (try_push for lossy feeds that prefer dropping over
/// blocking, push for lossless feeds that accept backpressure); a pool of
/// worker threads drains the queues through the sessions and delivers
/// finalized events via each session's SessionSpec::sink.
///
/// Lifecycle: open() provisions a slot (re-using released ones),
/// close() drains + flushes, reset() re-arms a slot mid-flight for a fresh
/// record (dropping whatever was queued), release() hands the quiescent
/// Session object back and frees the slot for the next tenant. Ids carry a
/// provisioning generation, so a stale id held across release()/open()
/// addresses nothing instead of the slot's new tenant.
///
/// Error isolation: anything a session throws inside a worker — a throwing
/// user sink, a push on an adopted already-flushed session — and any
/// protocol violation detected at ingest (a chunk over max_chunk_samples)
/// quarantines *that* session: state becomes Faulted, the error text is
/// captured in its stats, its queue is dropped, and pushes are refused until
/// reset() re-arms or release() retires it. Workers never re-throw, so one
/// bad stream can neither kill the process nor wedge its worker.
///
/// Thread safety: all public methods are safe to call concurrently from any
/// thread. Per-session event order is preserved (a session is drained by at
/// most one worker at a time); sinks run on worker threads, so a sink shared
/// across sessions must synchronize internally (single-session sinks need
/// nothing — see README "Serving").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "xbs/stream/session.hpp"

namespace xbs::stream {

/// Lifecycle state of a server slot.
enum class SessionState {
  Empty,     ///< not provisioned (or released)
  Open,      ///< streaming: accepts pushes, a worker drains its queue
  Draining,  ///< close() requested: queued chunks flush through, no new pushes
  Closed,    ///< flushed; Session retained for inspection until release()
  Faulted,   ///< quarantined: error captured, queue dropped, pushes refused
};

[[nodiscard]] const char* to_string(SessionState s) noexcept;

/// Outcome of an ingest attempt.
enum class PushResult {
  Ok,
  QueueFull,      ///< try_push only: bounded queue at capacity, chunk not taken
  Closed,         ///< session closed/closing: chunk refused
  Faulted,        ///< session quarantined: chunk refused
  NoSuchSession,  ///< unknown or stale id
};

[[nodiscard]] const char* to_string(PushResult r) noexcept;

/// Opaque session address: slot index + provisioning generation.
struct SessionId {
  std::size_t slot = static_cast<std::size_t>(-1);
  u64 generation = 0;

  friend constexpr bool operator==(const SessionId&, const SessionId&) = default;
};

/// A long-running multi-session streaming server. See the file comment for
/// the lifecycle / backpressure / isolation semantics.
class StreamServer {
 public:
  struct Options {
    /// Hard ceiling on concurrently provisioned slots; open() beyond it
    /// throws std::runtime_error (admission control belongs to the caller).
    std::size_t max_sessions = 64;

    /// Per-session bounded ingest queue, in chunks: the high-water mark.
    /// try_push returns QueueFull at capacity; push blocks until a worker
    /// drains below it.
    std::size_t queue_capacity_chunks = 32;

    /// Protocol bound on one chunk, in samples (0 = unlimited). An oversize
    /// chunk is a malformed stream: the session faults (it is not a
    /// transient overload, so it is not a QueueFull).
    std::size_t max_chunk_samples = 0;

    /// Worker threads draining session queues (0 = hardware concurrency).
    unsigned workers = 0;
  };

  /// Per-session live statistics (a consistent snapshot).
  struct SessionStats {
    SessionState state = SessionState::Empty;
    u64 chunks_in = 0;         ///< chunks accepted into the queue
    u64 chunks_processed = 0;  ///< chunks pushed through the Session
    u64 dropped_chunks = 0;    ///< try_push rejects + chunks discarded on fault/reset
    u64 queued_chunks = 0;     ///< current queue depth
    u64 queued_samples = 0;
    u64 samples = 0;           ///< samples processed
    u64 events = 0;            ///< detector decisions delivered
    u64 beats = 0;             ///< accepted QRS events
    std::string error;         ///< why the session faulted (empty otherwise)
  };

  /// Aggregate live statistics across the server's lifetime.
  struct ServerStats {
    u64 open = 0;      ///< slots currently Open or Draining
    u64 closed = 0;    ///< slots currently Closed (awaiting release)
    u64 faulted = 0;   ///< slots currently quarantined
    u64 sessions_opened = 0;   ///< lifetime open()/adopt() count
    u64 sessions_released = 0; ///< lifetime release() count
    u64 chunks_processed = 0;
    u64 dropped_chunks = 0;
    u64 queued_chunks = 0;     ///< current total queue depth
    u64 peak_queued_chunks = 0;///< highest single-session depth ever observed
    u64 samples = 0;
    u64 events = 0;
    u64 beats = 0;
  };

  StreamServer();  ///< default Options (a nested-class NSDMI cannot be a default argument)
  explicit StreamServer(Options opts);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Provision a slot with a fresh Session built from \p spec. Reuses a
  /// released slot when one exists; throws std::runtime_error at the
  /// max_sessions ceiling and propagates Session construction failures
  /// (e.g. invalid DetectorParams) without consuming a slot.
  SessionId open(SessionSpec spec);

  /// Provision a slot with an existing Session (the SessionPool
  /// compatibility path). The server takes ownership; the session's
  /// accumulated state is kept as-is (an already-flushed adoptee will fault
  /// on its first pushed chunk — that is the push-after-flush quarantine).
  SessionId adopt(std::unique_ptr<Session> session);

  /// Non-blocking ingest: refuses with QueueFull at the high-water mark
  /// (counted in dropped_chunks). The chunk is copied on acceptance.
  PushResult try_push(SessionId id, std::span<const i32> chunk);

  /// Blocking ingest: waits for queue space while the session stays Open.
  /// Returns the refusal reason instead if the session closes, faults or is
  /// released while waiting.
  PushResult push(SessionId id, std::span<const i32> chunk);

  /// Graceful end-of-stream: stops admitting pushes, lets the queue drain,
  /// flushes the session, and waits for that to finish. Returns the final
  /// state (Closed, or Faulted if the tail faulted; Empty for a stale id).
  /// Safe to call twice.
  SessionState close(SessionId id);

  /// Re-arm a slot mid-flight for a fresh record: drops whatever is queued
  /// (counted in dropped_chunks), waits out any in-flight chunk, resets the
  /// Session (stage carry-overs, detector, counters) and returns the slot to
  /// Open — including from Faulted (quarantine release) and Closed (slot
  /// reuse without re-provisioning). False for a stale id. Other sessions
  /// stream on, undisturbed, the whole time.
  bool reset(SessionId id);

  /// Retire a slot and hand its quiescent Session back (closing it first if
  /// still streaming). The slot returns to Empty and becomes reusable by the
  /// next open(); the id goes stale. Null for a stale id.
  std::unique_ptr<Session> release(SessionId id);

  /// Pause/resume the worker pool (a maintenance gate: ingest keeps
  /// accepting until queues hit the high-water mark, nothing is processed
  /// while paused). Used by tests to make backpressure deterministic.
  void pause();
  void resume();

  /// Read-only view of a slot's Session. Stable while the id stays valid,
  /// but concurrently mutated by workers while Open/Draining — inspect
  /// results only once Closed or Faulted. Null for a stale id.
  [[nodiscard]] const Session* session(SessionId id) const;

  [[nodiscard]] SessionStats session_stats(SessionId id) const;
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] unsigned workers() const noexcept { return n_workers_; }

 private:
  struct Slot {
    std::unique_ptr<Session> session;
    SessionState state = SessionState::Empty;
    u64 generation = 0;
    std::deque<std::vector<i32>> queue;
    u64 queued_samples = 0;
    bool busy = false;      ///< a worker is draining this slot right now
    bool enqueued = false;  ///< slot is in the ready list
    u64 chunks_in = 0;
    u64 chunks_processed = 0;
    u64 dropped_chunks = 0;
    u64 samples = 0;
    u64 events = 0;
    u64 beats = 0;
    std::string error;
  };

  // All private helpers expect mu_ held.
  Slot* find(SessionId id);
  const Slot* find(SessionId id) const;
  SessionId provision(std::unique_ptr<Session> session);
  PushResult refuse_reason(const Slot& s) const;
  void enqueue_ready(std::size_t slot_index);
  void drop_queue(Slot& s);
  void fault(Slot& s, std::string why);
  void worker_loop();
  void drain_one(std::unique_lock<std::mutex>& lock, std::size_t slot_index);

  Options opts_;
  unsigned n_workers_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: ready list / stop / resume
  std::condition_variable space_cv_;  ///< blocking push: queue space
  std::condition_variable state_cv_;  ///< close/reset/release: state changes
  std::vector<Slot> slots_;
  std::deque<std::size_t> ready_;
  bool stop_ = false;
  bool paused_ = false;
  u64 sessions_opened_ = 0;
  u64 sessions_released_ = 0;
  u64 retired_chunks_processed_ = 0;  ///< totals carried past release()
  u64 retired_dropped_chunks_ = 0;
  u64 retired_samples_ = 0;
  u64 retired_events_ = 0;
  u64 retired_beats_ = 0;
  u64 peak_queued_chunks_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace xbs::stream
