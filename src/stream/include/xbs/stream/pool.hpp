/// \file pool.hpp
/// \brief Fixed-size multi-session drive: N identically configured sessions
/// fed to completion — now a thin compatibility wrapper over StreamServer.
///
/// SessionPool predates the dynamic serving layer (server.hpp) and remains
/// the convenient shape for benchmarks and batch-style comparisons: stamp N
/// sessions from one spec, drive one feed through each, inspect the results.
/// Since the drive runs on a StreamServer, it inherits the server's fault
/// isolation — a throwing sink or a poisoned feed quarantines one session
/// (surfaced in DriveStats::faulted_sessions) instead of terminating the
/// process, which is what the pre-server implementation did.
///
/// Thread-safety caveat for sinks (also in README "Serving"): the spec's
/// sink is copied into every session and invoked from server worker threads,
/// so a sink touching state shared across sessions must synchronize
/// internally.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "xbs/stream/session.hpp"

namespace xbs::stream {

/// A fixed-size pool of identically configured sessions.
class SessionPool {
 public:
  /// Builds \p n_sessions sessions from \p spec and pre-warms the shared
  /// multiplier/coefficient LUTs for the spec's stage configurations.
  SessionPool(SessionSpec spec, std::size_t n_sessions);

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] Session& session(std::size_t i) { return *sessions_[i]; }
  [[nodiscard]] const Session& session(std::size_t i) const { return *sessions_[i]; }

  /// Aggregate outcome of one drive() run.
  struct DriveStats {
    u64 sessions = 0;
    u64 samples = 0;        ///< total samples pushed across all sessions
    u64 chunks = 0;         ///< total ingest attempts
    u64 events = 0;         ///< detector decisions emitted
    u64 beats = 0;          ///< accepted QRS events
    u64 closed_sessions = 0;   ///< sessions that drained and flushed cleanly
    u64 faulted_sessions = 0;  ///< sessions quarantined mid-drive
    /// Chunks never processed: server-side discards + rejects (see the
    /// StreamServer accounting contract) plus feed chunks skipped after a
    /// session faulted mid-drive.
    u64 dropped_chunks = 0;
    u64 peak_queue_chunks = 0; ///< deepest single-session ingest queue observed
    unsigned threads = 0;
    double wall_s = 0.0;
    double p50_chunk_s = 0.0;  ///< median per-chunk ingest latency (incl. backpressure)
    double p99_chunk_s = 0.0;
    double max_chunk_s = 0.0;

    [[nodiscard]] double samples_per_sec() const noexcept {
      return wall_s > 0.0 ? static_cast<double>(samples) / wall_s : 0.0;
    }
  };

  /// Drive every session to completion over its feed (feeds.size() must
  /// equal size()): sessions are adopted into a StreamServer with \p threads
  /// workers, each feed is split into chunk_size-sample pushes delivered
  /// round-robin with blocking backpressure, then every session is closed
  /// and handed back. One-shot: sessions remain available for inspection
  /// afterwards, but are flushed (or faulted). threads == 0 picks hardware
  /// concurrency (clamped to the session count).
  DriveStats drive(std::span<const std::vector<i32>> feeds, std::size_t chunk_size,
                   unsigned threads = 0);

 private:
  std::vector<std::unique_ptr<Session>> sessions_;
  bool driven_ = false;  ///< drive() is one-shot; flushed() can't tell (a faulted session never flushes)
};

}  // namespace xbs::stream
