/// \file pool.hpp
/// \brief The multi-session serving layer: N independent streaming sessions
/// driven concurrently over shared immutable kernels/LUTs.
///
/// Thread safety is by construction: each worker thread owns a disjoint
/// subset of sessions (a Session is a single-consumer object), and the only
/// library state shared between threads is the process-wide
/// multiplier/coefficient LUT caches, which are internally synchronized and
/// hold immutable tables. The pool pre-warms those caches before any worker
/// starts, so the hot path never builds a table inside a timed region.
///
/// Caveat: SessionSpec::sink is copied into every session, so during drive()
/// it is invoked concurrently from all worker threads — a sink that touches
/// shared state (including shared captures-by-reference) must synchronize
/// internally. Sinks that only touch per-event data, or pools driven with
/// threads == 1, need nothing.
#pragma once

#include <span>
#include <vector>

#include "xbs/stream/session.hpp"

namespace xbs::stream {

/// A fixed-size pool of identically configured sessions.
class SessionPool {
 public:
  /// Builds \p n_sessions sessions from \p spec and pre-warms the shared
  /// multiplier/coefficient LUTs for the spec's stage configurations.
  SessionPool(SessionSpec spec, std::size_t n_sessions);

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] Session& session(std::size_t i) { return sessions_[i]; }
  [[nodiscard]] const Session& session(std::size_t i) const { return sessions_[i]; }

  /// Aggregate outcome of one drive() run.
  struct DriveStats {
    u64 sessions = 0;
    u64 samples = 0;        ///< total samples pushed across all sessions
    u64 chunks = 0;         ///< total push() calls
    u64 events = 0;         ///< detector decisions emitted
    u64 beats = 0;          ///< accepted QRS events
    unsigned threads = 0;
    double wall_s = 0.0;
    double p50_chunk_s = 0.0;  ///< median per-chunk push latency
    double p99_chunk_s = 0.0;
    double max_chunk_s = 0.0;

    [[nodiscard]] double samples_per_sec() const noexcept {
      return wall_s > 0.0 ? static_cast<double>(samples) / wall_s : 0.0;
    }
  };

  /// Drive every session to completion over its feed (feeds.size() must
  /// equal size()): each feed is split into chunk_size-sample pushes;
  /// workers round-robin chunks across the sessions they own — N concurrent
  /// long-lived streams, not one-record batch jobs — then flush. One-shot:
  /// sessions remain available for inspection afterwards, but are flushed.
  /// threads == 0 picks hardware concurrency (clamped to the session count).
  DriveStats drive(std::span<const std::vector<i32>> feeds, std::size_t chunk_size,
                   unsigned threads = 0);

 private:
  std::vector<Session> sessions_;
};

}  // namespace xbs::stream
