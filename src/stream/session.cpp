#include "xbs/stream/session.hpp"

#include <stdexcept>
#include <utility>

namespace xbs::stream {

Session::Session(SessionSpec spec) : spec_(std::move(spec)) {
  if (!spec_.config.detector.valid()) {
    throw std::invalid_argument("stream::Session: invalid DetectorParams");
  }
  stages_.reserve(pantompkins::kNumStages);
  for (int s = 0; s < pantompkins::kNumStages; ++s) {
    const auto su = static_cast<std::size_t>(s);
    kernels_[su] = arith::make_kernel(spec_.config.stage[su]);
    stages_.emplace_back(static_cast<pantompkins::Stage>(s), *kernels_[su]);
  }
  if (spec_.detection) {
    detector_ = std::make_unique<pantompkins::OnlineDetector>(spec_.config.detector,
                                                              spec_.keep_detection);
  }
}

void Session::deliver(std::span<const pantompkins::PeakEvent> evs) {
  const double fs = spec_.config.detector.fs_hz;
  for (const pantompkins::PeakEvent& pe : evs) {
    Event ev;
    ev.peak = pe;
    if (ev.is_beat()) {
      const auto raw = static_cast<std::ptrdiff_t>(pe.raw_index);
      ev.time_s = static_cast<double>(pe.raw_index) / fs;
      if (last_beat_raw_ >= 0 && raw > last_beat_raw_) {
        ev.rr_s = static_cast<double>(raw - last_beat_raw_) / fs;
        ev.hr_bpm = ev.rr_s > 0.0 ? 60.0 / ev.rr_s : 0.0;
      }
      last_beat_raw_ = std::max(last_beat_raw_, raw);
      ++beats_;
    } else {
      ev.time_s = static_cast<double>(pe.mwi_index) / fs;
    }
    ++events_;
    if (spec_.sink) spec_.sink(ev);
    fresh_.push_back(ev);
  }
}

std::span<const Event> Session::push(std::span<const i32> chunk) {
  if (flushed_) throw std::logic_error("stream::Session: push after flush");
  fresh_.clear();
  // One resumable chunk through each stage, in pipeline order, into reused
  // per-session buffers. Every stage is one-in-one-out, so the chunk
  // outputs stay index-aligned with the raw input — exactly the alignment
  // the detector's lag constants assume.
  stages_[0].process_chunk(chunk, chain_[0]);
  for (int s = 1; s < pantompkins::kNumStages; ++s) {
    const auto su = static_cast<std::size_t>(s);
    stages_[su].process_chunk(chain_[su - 1], chain_[su]);
  }
  n_ += chunk.size();
  if (spec_.keep_signals) {
    for (int s = 0; s < pantompkins::kNumStages; ++s) {
      const auto su = static_cast<std::size_t>(s);
      signals_[su].insert(signals_[su].end(), chain_[su].begin(), chain_[su].end());
    }
  }
  if (detector_) {
    deliver(detector_->push(chain_[4], chain_[1], chunk));  // MWI, HPF, raw
  }
  return fresh_;
}

std::span<const Event> Session::flush() {
  fresh_.clear();
  if (flushed_) return fresh_;
  flushed_ = true;
  if (detector_) deliver(detector_->flush());
  return fresh_;
}

void Session::reset(pantompkins::WarmStart warm) {
  for (pantompkins::StageProcessor& st : stages_) st.reset();
  if (detector_) detector_->reset(warm);
  for (auto& k : kernels_) k->reset_counts();
  for (auto& sig : signals_) sig.clear();
  n_ = 0;
  events_ = 0;
  beats_ = 0;
  last_beat_raw_ = -1;
  fresh_.clear();
  flushed_ = false;
}

const pantompkins::DetectionResult& Session::detection() const noexcept {
  static const pantompkins::DetectionResult kEmpty;
  return detector_ ? detector_->result() : kEmpty;
}

std::array<arith::OpCounts, pantompkins::kNumStages> Session::ops() const noexcept {
  std::array<arith::OpCounts, pantompkins::kNumStages> out{};
  for (int s = 0; s < pantompkins::kNumStages; ++s) {
    const auto su = static_cast<std::size_t>(s);
    out[su] = kernels_[su]->counts();
  }
  return out;
}

arith::OpCounts Session::total_ops() const noexcept {
  arith::OpCounts total;
  for (const auto& o : ops()) total += o;
  return total;
}

}  // namespace xbs::stream
