#include "xbs/stream/pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace xbs::stream {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

SessionPool::SessionPool(SessionSpec spec, std::size_t n_sessions) {
  // Pre-warm the process-wide LUT caches — multiplier models, per-coefficient
  // signed product tables and the squarer's square table — so worker threads
  // only ever read published immutable tables and every push() walks warm
  // tables regardless of chunk size (the kernels' cold-build threshold never
  // triggers on the serving hot path).
  pantompkins::warm_pipeline_tables(spec.config);
  sessions_.reserve(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) sessions_.emplace_back(spec);
}

SessionPool::DriveStats SessionPool::drive(std::span<const std::vector<i32>> feeds,
                                           std::size_t chunk_size, unsigned threads) {
  if (feeds.size() != sessions_.size()) {
    throw std::invalid_argument("SessionPool::drive: one feed per session required");
  }
  if (chunk_size == 0) throw std::invalid_argument("SessionPool::drive: chunk_size == 0");
  // drive() is one-shot: a second call would make push() throw inside the
  // worker threads (uncaught -> std::terminate), so refuse it here instead.
  // All sessions flush together, so checking one suffices.
  if (!sessions_.empty() && sessions_.front().flushed()) {
    throw std::logic_error("SessionPool::drive: sessions already driven");
  }

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (threads == 0) threads = hw;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(sessions_.size(), 1)));

  std::vector<std::vector<double>> latencies(threads);

  auto worker = [&](unsigned t) {
    std::vector<double>& lats = latencies[t];
    std::vector<std::size_t> mine;  // sessions t, t+threads, ... (disjoint ownership)
    for (std::size_t i = t; i < sessions_.size(); i += threads) mine.push_back(i);
    std::vector<std::size_t> pos(mine.size(), 0);
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t k = 0; k < mine.size(); ++k) {
        const std::vector<i32>& feed = feeds[mine[k]];
        if (pos[k] >= feed.size()) continue;
        const std::size_t len = std::min(chunk_size, feed.size() - pos[k]);
        const Clock::time_point t0 = Clock::now();
        (void)sessions_[mine[k]].push(std::span<const i32>(feed).subspan(pos[k], len));
        lats.push_back(seconds_between(t0, Clock::now()));
        pos[k] += len;
        any = true;
      }
    }
    for (const std::size_t i : mine) (void)sessions_[i].flush();
  };

  const Clock::time_point start = Clock::now();
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& th : pool) th.join();
  }
  const Clock::time_point stop = Clock::now();

  DriveStats stats;
  stats.sessions = sessions_.size();
  stats.threads = threads;
  stats.wall_s = seconds_between(start, stop);
  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  stats.chunks = all.size();
  stats.p50_chunk_s = percentile(all, 0.50);
  stats.p99_chunk_s = percentile(all, 0.99);
  stats.max_chunk_s = all.empty() ? 0.0 : all.back();
  for (const Session& s : sessions_) {
    stats.samples += s.samples_pushed();
    stats.events += s.events_emitted();
    stats.beats += s.beats_detected();
  }
  return stats;
}

}  // namespace xbs::stream
