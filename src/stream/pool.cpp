#include "xbs/stream/pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "xbs/stream/server.hpp"

namespace xbs::stream {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

SessionPool::SessionPool(SessionSpec spec, std::size_t n_sessions) {
  // Pre-warm the process-wide LUT caches — multiplier models, per-coefficient
  // signed product tables and the squarer's square table — so worker threads
  // only ever read published immutable tables and every push() walks warm
  // tables regardless of chunk size (the kernels' cold-build threshold never
  // triggers on the serving hot path).
  pantompkins::warm_pipeline_tables(spec.config);
  sessions_.reserve(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    sessions_.push_back(std::make_unique<Session>(spec));
  }
}

SessionPool::DriveStats SessionPool::drive(std::span<const std::vector<i32>> feeds,
                                           std::size_t chunk_size, unsigned threads) {
  if (feeds.size() != sessions_.size()) {
    throw std::invalid_argument("SessionPool::drive: one feed per session required");
  }
  if (chunk_size == 0) throw std::invalid_argument("SessionPool::drive: chunk_size == 0");
  // drive() is one-shot: the sessions are flushed (or faulted) afterwards,
  // and a second drive would only quarantine all of them with push-after-
  // flush faults. An explicit flag, not flushed(): a session that faulted
  // mid-drive never flushed, so probing one session cannot tell.
  if (driven_) {
    throw std::logic_error("SessionPool::drive: sessions already driven");
  }
  driven_ = true;

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (threads == 0) threads = hw;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(sessions_.size(), 1)));

  DriveStats stats;
  stats.sessions = sessions_.size();
  stats.threads = threads;

  std::vector<double> lats;
  {
    StreamServer server({.max_sessions = std::max<std::size_t>(sessions_.size(), 1),
                         .queue_capacity_chunks = 64,
                         .max_chunk_samples = 0,
                         .workers = threads});
    std::vector<SessionId> ids;
    ids.reserve(sessions_.size());
    for (auto& s : sessions_) ids.push_back(server.adopt(std::move(s)));

    // The timed region is ingest through close-completion (all sessions
    // drained and flushed) — worker spawn and session hand-back stay outside,
    // as for any long-running serving process.
    const Clock::time_point start = Clock::now();

    // Round-robin ingest across all sessions — N concurrent long-lived
    // streams, not one-record batch jobs. Blocking push supplies the
    // backpressure; a session that faults mid-feed has the rest of its feed
    // skipped (counted as dropped) while every other stream keeps flowing.
    std::vector<std::size_t> pos(ids.size(), 0);
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t k = 0; k < ids.size(); ++k) {
        const std::vector<i32>& feed = feeds[k];
        if (pos[k] >= feed.size()) continue;
        const std::size_t len = std::min(chunk_size, feed.size() - pos[k]);
        const Clock::time_point t0 = Clock::now();
        const PushResult r =
            server.push(ids[k], std::span<const i32>(feed).subspan(pos[k], len));
        lats.push_back(seconds_between(t0, Clock::now()));
        ++stats.chunks;
        if (r == PushResult::Ok) {
          pos[k] += len;
          any = true;
        } else {
          // Quarantined (or refused): skip the rest of this feed.
          stats.dropped_chunks += (feed.size() - pos[k] + chunk_size - 1) / chunk_size;
          pos[k] = feed.size();
        }
      }
    }
    for (const SessionId id : ids) {
      const SessionState final_state = server.close(id);
      if (final_state == SessionState::Faulted) {
        ++stats.faulted_sessions;
      } else {
        ++stats.closed_sessions;
      }
    }
    stats.wall_s = seconds_between(start, Clock::now());

    const StreamServer::ServerStats ss = server.stats();
    // Server-side rejects (there are none on this blocking lossless drive
    // unless a session faulted) and accepted-but-discarded chunks both count
    // as "never processed" here.
    stats.dropped_chunks += ss.dropped_chunks + ss.rejected_chunks;
    stats.peak_queue_chunks = ss.peak_queued_chunks;
    for (std::size_t k = 0; k < ids.size(); ++k) sessions_[k] = server.release(ids[k]);
  }

  std::sort(lats.begin(), lats.end());
  stats.p50_chunk_s = percentile(lats, 0.50);
  stats.p99_chunk_s = percentile(lats, 0.99);
  stats.max_chunk_s = lats.empty() ? 0.0 : lats.back();
  for (const auto& s : sessions_) {
    stats.samples += s->samples_pushed();
    stats.events += s->events_emitted();
    stats.beats += s->beats_detected();
  }
  return stats;
}

}  // namespace xbs::stream
