#include "xbs/stream/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::stream {

const char* to_string(SessionState s) noexcept {
  switch (s) {
    case SessionState::Empty: return "Empty";
    case SessionState::Open: return "Open";
    case SessionState::Draining: return "Draining";
    case SessionState::Closed: return "Closed";
    case SessionState::Faulted: return "Faulted";
  }
  return "?";
}

const char* to_string(PushResult r) noexcept {
  switch (r) {
    case PushResult::Ok: return "Ok";
    case PushResult::QueueFull: return "QueueFull";
    case PushResult::Closed: return "Closed";
    case PushResult::Faulted: return "Faulted";
    case PushResult::NoSuchSession: return "NoSuchSession";
  }
  return "?";
}

// ------------------------------------------------------------------ ChunkLoan

ChunkLoan& ChunkLoan::operator=(ChunkLoan&& other) noexcept {
  if (this != &other) {
    if (server_ != nullptr) server_->cancel_loan(id_, std::move(buf_));
    server_ = other.server_;
    id_ = other.id_;
    epoch_ = other.epoch_;
    buf_ = std::move(other.buf_);
    other.server_ = nullptr;
  }
  return *this;
}

ChunkLoan::~ChunkLoan() {
  if (server_ != nullptr) server_->cancel_loan(id_, std::move(buf_));
}

// ---------------------------------------------------------------- StreamServer

StreamServer::StreamServer() : StreamServer(Options{}) {}

StreamServer::StreamServer(Options opts) : opts_(opts) {
  if (opts_.max_sessions == 0) {
    throw std::invalid_argument("StreamServer: max_sessions == 0");
  }
  if (opts_.queue_capacity_chunks == 0) {
    throw std::invalid_argument("StreamServer: queue_capacity_chunks == 0");
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  n_workers_ = opts_.workers == 0 ? hw : opts_.workers;
  n_shards_ = opts_.shards == 0 ? std::min<unsigned>(n_workers_, 8) : opts_.shards;
  if (n_shards_ == 0) n_shards_ = 1;
  shards_.reserve(n_shards_);
  for (unsigned i = 0; i < n_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Spread the worker budget; every shard gets at least one (a worker-less
  // shard would never drain), so the spawned total can exceed the request.
  unsigned spawned = 0;
  for (unsigned i = 0; i < n_shards_; ++i) {
    unsigned k = n_workers_ / n_shards_ + (i < n_workers_ % n_shards_ ? 1u : 0u);
    if (k == 0) k = 1;
    Shard& sh = *shards_[i];
    sh.threads.reserve(k);
    for (unsigned t = 0; t < k; ++t) {
      sh.threads.emplace_back([this, &sh] { worker_loop(sh); });
    }
    spawned += k;
  }
  n_workers_ = spawned;
}

StreamServer::~StreamServer() {
  for (auto& shp : shards_) {
    {
      const common::MutexLock lock(shp->mu);
      shp->stop = true;
    }
    shp->work_cv.notify_all();
    shp->space_cv.notify_all();
    shp->state_cv.notify_all();
    shp->egress_cv.notify_all();
  }
  for (auto& shp : shards_) {
    for (std::thread& t : shp->threads) t.join();
  }
}

// ------------------------------------------------- shard-mu_-held helpers

StreamServer::Slot* StreamServer::find(Shard& sh, SessionId id) {
  const std::size_t li = local_index(id);  // a stale/garbage slot lands out of range
  if (li >= sh.slots.size()) return nullptr;
  Slot& s = sh.slots[li];
  if (s.state == SessionState::Empty || s.generation != id.generation) return nullptr;
  return &s;
}

const StreamServer::Slot* StreamServer::find(Shard& sh, SessionId id) const {
  return const_cast<StreamServer*>(this)->find(sh, id);
}

SessionId StreamServer::provision(std::unique_ptr<Session> session) {
  // Admission against the global ceiling stays lock-free across shards: the
  // reservation is taken (and on failure returned) before any shard lock.
  if (provisioned_.fetch_add(1, std::memory_order_relaxed) >= opts_.max_sessions) {
    provisioned_.fetch_sub(1, std::memory_order_relaxed);
    throw std::runtime_error("StreamServer: session limit reached (max_sessions)");
  }
  // The generation is globally monotonic; it keeps ids unique, while the
  // chosen shard is encoded in the slot index, so placement is free policy.
  const u64 g = sessions_opened_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Least-loaded placement hint (carried ROADMAP item): put the session on
  // the shard with the fewest provisioned slots, so one hot shard cannot
  // fill while others idle. The counts are read lock-free — a stale read
  // costs one suboptimal placement, never correctness. Ties keep the old
  // round-robin spread (start the scan's incumbent at g % shards).
  auto si = static_cast<std::size_t>(g % n_shards_);
  u32 best = shards_[si]->live.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < n_shards_; ++k) {
    const u32 l = shards_[k]->live.load(std::memory_order_relaxed);
    if (l < best) {
      best = l;
      si = k;
    }
  }
  Shard& sh = *shards_[si];
  const common::MutexLock lock(sh.mu);
  std::size_t li = sh.slots.size();
  for (std::size_t i = 0; i < sh.slots.size(); ++i) {
    if (sh.slots[i].state == SessionState::Empty) {
      li = i;
      break;
    }
  }
  if (li == sh.slots.size()) {
    try {
      sh.slots.emplace_back();
    } catch (...) {
      // Hand the admission reservation back, or a failed open under memory
      // pressure would permanently shrink max_sessions.
      provisioned_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
  }
  Slot& s = sh.slots[li];
  s.session = std::move(session);
  s.state = SessionState::Open;
  s.generation = g;
  s.queue.clear();
  s.queued_samples = 0;
  s.ring.set_capacity(opts_.queue_capacity_chunks);  // buffers survive tenants
  s.loaned = 0;
  s.inflight = 0;
  s.busy = false;
  s.enqueued = false;
  s.final_seq = 0;
  s.final_state = SessionState::Empty;
  s.chunks_in = 0;
  s.chunks_processed = 0;
  s.rejected_chunks = 0;
  s.dropped_chunks = 0;
  s.peak_queued = 0;
  s.resets = 0;
  s.reset_epoch = 0;  // stale cross-tenant loans already die on the generation check
  s.samples = 0;
  s.events = 0;
  s.beats = 0;
  s.egress.clear();
  s.events_dropped = 0;
  s.error.clear();
  sh.live.fetch_add(1, std::memory_order_relaxed);
  return SessionId{li * n_shards_ + si, g};
}

PushResult StreamServer::refuse_reason(const Slot& s) const {
  switch (s.state) {
    case SessionState::Open: return PushResult::Ok;
    case SessionState::Draining:
    case SessionState::Closed: return PushResult::Closed;
    case SessionState::Faulted: return PushResult::Faulted;
    case SessionState::Empty: return PushResult::NoSuchSession;
  }
  return PushResult::NoSuchSession;
}

void StreamServer::enqueue_ready(Shard& sh, std::size_t local) {
  Slot& s = sh.slots[local];
  if (s.enqueued || s.busy) return;
  s.enqueued = true;
  s.ready_stamp = ++sh.ready_seq;
  sh.ready.push_back(local);
  sh.work_cv.notify_one();
}

void StreamServer::drop_queue(Shard& sh, Slot& s) {
  s.dropped_chunks += s.queue.size();
  while (!s.queue.empty()) {
    (void)s.ring.put(std::move(s.queue.front()));
    s.queue.pop_front();
  }
  s.queued_samples = 0;
  if (sh.space_waiters > 0) sh.space_cv.notify_all();
}

void StreamServer::fault(Shard& sh, Slot& s, std::string why) {
  s.state = SessionState::Faulted;
  s.error = std::move(why);
  // Record the terminal landing as an edge: a close()/release() waiter must
  // observe it even if a racing reset() re-arms the slot before they wake.
  ++s.final_seq;
  s.final_state = SessionState::Faulted;
  drop_queue(sh, s);  // also wakes blocked producers: they surface Faulted
  sh.state_cv.notify_all();
  // Terminal state: a blocking drain_events must wake and observe it.
  if (sh.egress_waiters > 0) sh.egress_cv.notify_all();
}

void StreamServer::append_egress(Shard& sh, Slot& s, std::vector<Event>& evs) {
  if (opts_.event_queue_capacity == 0 || evs.empty()) return;
  for (Event& e : evs) s.egress.push_back(std::move(e));
  while (s.egress.size() > opts_.event_queue_capacity) {
    s.egress.pop_front();  // the consumer lags: shed oldest-first, keep counting
    ++s.events_dropped;
  }
  evs.clear();
  if (sh.egress_waiters > 0) sh.egress_cv.notify_all();
}

// ------------------------------------------------------------------- workers

void StreamServer::worker_loop(Shard& sh) {
  common::MutexLock lock(sh.mu);
  while (true) {
    // Explicit wait loop (not a predicate lambda): the guarded reads stay in
    // this annotated function, where the analysis can see the lock is held.
    while (!sh.stop && (sh.paused || sh.ready.empty())) sh.work_cv.wait(lock);
    if (sh.stop) return;
    // Oldest-stamp-first pop: deadline-aware service order. A session that
    // yielded mid-backlog re-enters with a fresh stamp, behind every session
    // that has been waiting — so service round-robins under contention.
    std::size_t best = 0;
    for (std::size_t i = 1; i < sh.ready.size(); ++i) {
      if (sh.slots[sh.ready[i]].ready_stamp < sh.slots[sh.ready[best]].ready_stamp) best = i;
    }
    const std::size_t li = sh.ready[best];
    sh.ready.erase(sh.ready.begin() + static_cast<std::ptrdiff_t>(best));
    sh.slots[li].enqueued = false;
    drain_slot(sh, lock, li);
  }
}

// Opted out of the static analysis: the relock-through-a-reference pattern
// (`lock` unlocks around Session work, relocks to publish) is beyond what
// clang can track for a scoped capability passed by reference. The REQUIRES
// on the declaration still checks every call site, and assert_held() keeps
// the entry contract checked at runtime in Debug.
void StreamServer::drain_slot(Shard& sh, common::MutexLock& lock,
                              std::size_t local) XBS_NO_THREAD_SAFETY_ANALYSIS {
  sh.mu.assert_held();
  sh.slots[local].busy = true;
  // The whole queue is popped as one batch, processed unlocked, and the
  // buffers recycled in bulk: lock traffic and producer wakeups amortize
  // over the batch instead of ping-ponging per chunk (the single-core drive
  // regression), and a blocked producer wakes once to refill a whole queue.
  std::vector<std::vector<i32>> batch;
  std::vector<Event> evbuf;
  const bool egress_on = opts_.event_queue_capacity > 0;
  while (true) {
    Slot& s = sh.slots[local];  // re-fetch: slots may have grown while unlocked
    if (sh.stop || sh.paused) {
      // Hand the remainder back to the ready list so resume() (or another
      // worker) picks it up; nothing is lost.
      if (s.state == SessionState::Open || s.state == SessionState::Draining) {
        s.busy = false;
        enqueue_ready(sh, local);
        sh.state_cv.notify_all();
        return;
      }
      break;
    }
    if (s.state != SessionState::Open && s.state != SessionState::Draining) break;
    if (s.queue.empty()) {
      if (s.state != SessionState::Draining) break;
      // close() requested and the queue is dry: flush outside the lock.
      Session* sess = s.session.get();
      lock.unlock();
      std::string err;
      u64 events = 0, beats = 0;
      evbuf.clear();
      try {
        for (const Event& ev : sess->flush()) {
          ++events;
          beats += ev.is_beat() ? 1 : 0;
          if (egress_on) evbuf.push_back(ev);
        }
      } catch (const std::exception& e) {
        err = e.what();
      } catch (...) {
        err = "unknown exception during flush";
      }
      lock.lock();
      Slot& sl = sh.slots[local];
      sl.events += events;
      sl.beats += beats;
      append_egress(sh, sl, evbuf);
      if (!err.empty()) {
        fault(sh, sl, std::move(err));
      } else {
        sl.state = SessionState::Closed;
        ++sl.final_seq;  // the edge a racing reset() cannot erase
        sl.final_state = SessionState::Closed;
        sh.state_cv.notify_all();
        if (sh.space_waiters > 0) sh.space_cv.notify_all();
        // Closed + dry queue can produce no more events: wake blocked drains.
        if (sh.egress_waiters > 0) sh.egress_cv.notify_all();
      }
      break;
    }
    batch.clear();
    // The popped batch still counts toward queue_capacity_chunks (inflight):
    // the documented bound on accepted-but-unprocessed chunks stays exact,
    // and producers wake once per *completed* batch, not per popped chunk.
    // Capping the batch at half the capacity leaves producers refill room
    // while the batch processes, so ingest and processing still pipeline.
    const std::size_t max_batch = std::max<std::size_t>(1, opts_.queue_capacity_chunks / 2);
    while (!s.queue.empty() && batch.size() < max_batch) {
      s.queued_samples -= s.queue.front().size();
      batch.push_back(std::move(s.queue.front()));
      s.queue.pop_front();
    }
    s.inflight = batch.size();
    Session* sess = s.session.get();
    lock.unlock();
    std::string err;
    u64 events = 0, beats = 0, samples = 0;
    std::size_t done = 0;
    evbuf.clear();
    for (; done < batch.size(); ++done) {
      try {
        for (const Event& ev : sess->push(batch[done])) {
          ++events;
          beats += ev.is_beat() ? 1 : 0;
          if (egress_on) evbuf.push_back(ev);
        }
      } catch (const std::exception& e) {
        err = e.what();
        break;
      } catch (...) {
        err = "unknown exception during push";
        break;
      }
      samples += batch[done].size();
    }
    const std::size_t not_processed = batch.size() - done;
    lock.lock();
    Slot& sl = sh.slots[local];
    for (std::vector<i32>& b : batch) (void)sl.ring.put(std::move(b));
    batch.clear();
    sl.inflight = 0;
    if (sh.space_waiters > 0) sh.space_cv.notify_all();
    sl.chunks_processed += done;
    sl.samples += samples;
    sl.events += events;
    sl.beats += beats;
    append_egress(sh, sl, evbuf);
    if (!err.empty()) {
      // The chunk that threw (and anything behind it in the batch) was
      // accepted but never fully processed: dropped, so the ledger closes.
      sl.dropped_chunks += not_processed;
      fault(sh, sl, std::move(err));
      break;
    }
    // Fairness yield: a deep session must not hold this worker for its whole
    // backlog while other sessions wait. If anyone else is ready, hand the
    // remainder back (fresh stamp: behind every current waiter) and return
    // to the pop loop instead of taking another batch.
    if (!sh.ready.empty() && !sl.queue.empty() &&
        (sl.state == SessionState::Open || sl.state == SessionState::Draining)) {
      sl.busy = false;
      enqueue_ready(sh, local);
      sh.state_cv.notify_all();
      return;
    }
  }
  sh.slots[local].busy = false;
  sh.state_cv.notify_all();
}

// --------------------------------------------------------------- public API

SessionId StreamServer::open(SessionSpec spec) {
  // Session construction (and LUT warming) happens outside any lock: it can
  // cold-build coefficient tables, and open() must not stall the data plane.
  pantompkins::warm_pipeline_tables(spec.config);
  auto session = std::make_unique<Session>(std::move(spec));
  return provision(std::move(session));
}

SessionId StreamServer::adopt(std::unique_ptr<Session> session) {
  if (!session) throw std::invalid_argument("StreamServer::adopt: null session");
  return provision(std::move(session));
}

PushResult StreamServer::acquire_impl(SessionId id, std::size_t n_samples, ChunkLoan& out,
                                      bool blocking) {
  const bool oversize =
      opts_.max_chunk_samples != 0 && n_samples > opts_.max_chunk_samples;
  Shard& sh = shard_of(id);
  std::vector<i32> buf;
  u64 epoch = 0;
  {
    common::MutexLock lock(sh.mu);
    while (true) {
      if (sh.stop) return PushResult::NoSuchSession;
      Slot* s = find(sh, id);
      if (s == nullptr) return PushResult::NoSuchSession;
      if (s->state != SessionState::Open) return refuse_reason(*s);
      if (oversize) {
        ++s->rejected_chunks;  // the offending chunk: refused, never queued
        fault(sh, *s,
              "protocol violation: chunk of " + std::to_string(n_samples) +
                  " samples exceeds max_chunk_samples = " +
                  std::to_string(opts_.max_chunk_samples));
        return PushResult::Faulted;
      }
      if (s->queue.size() + s->loaned + s->inflight < opts_.queue_capacity_chunks) {
        (void)s->ring.take(buf);  // recycled when available, fresh otherwise
        ++s->loaned;
        epoch = s->reset_epoch;
        break;
      }
      if (!blocking) {
        ++s->rejected_chunks;
        return PushResult::QueueFull;
      }
      ++sh.space_waiters;  // backpressure: high-water mark reached
      sh.space_cv.wait(lock);
      --sh.space_waiters;
    }
  }
  // The (possible) allocation and the loan handoff stay off the shard lock.
  // The loan handle is armed *before* the resize: if the resize throws
  // (oversize request with no protocol bound set, transient bad_alloc), the
  // handle's destructor returns the reservation instead of leaking it — a
  // leaked reservation would permanently shrink the session's capacity.
  // The region is *uninitialized* beyond what the producer writes — commit
  // only what you filled.
  ChunkLoan granted;
  granted.server_ = this;
  granted.id_ = id;
  granted.epoch_ = epoch;
  granted.buf_ = std::move(buf);
  granted.buf_.resize(n_samples);
  out = std::move(granted);  // move-assign cancels any loan the caller held in `out`
  return PushResult::Ok;
}

PushResult StreamServer::acquire_buffer(SessionId id, std::size_t n_samples, ChunkLoan& out) {
  return acquire_impl(id, n_samples, out, /*blocking=*/true);
}

PushResult StreamServer::try_acquire_buffer(SessionId id, std::size_t n_samples,
                                            ChunkLoan& out) {
  return acquire_impl(id, n_samples, out, /*blocking=*/false);
}

PushResult StreamServer::commit(ChunkLoan& loan, std::size_t n_samples) {
  constexpr auto kAll = static_cast<std::size_t>(-1);
  if (!loan.valid()) return PushResult::NoSuchSession;
  if (loan.server_ != this) {
    throw std::invalid_argument("StreamServer::commit: loan from a different server");
  }
  if (n_samples != kAll && n_samples > loan.buf_.size()) {
    throw std::invalid_argument("StreamServer::commit: n_samples exceeds the loan");
  }
  const SessionId id = loan.id_;
  std::vector<i32> buf = std::move(loan.buf_);
  loan.server_ = nullptr;  // the loan is consumed from here on
  if (n_samples != kAll) buf.resize(n_samples);

  Shard& sh = shard_of(id);
  const common::MutexLock lock(sh.mu);
  Slot* s = find(sh, id);
  if (s == nullptr) return PushResult::NoSuchSession;  // retired slot: buffer dies
  if (s->loaned > 0) --s->loaned;  // the reservation returns whatever happens next
  if (s->state != SessionState::Open || s->reset_epoch != loan.epoch_) {
    // Closed/faulted since the acquire — or the slot was reset() and this
    // loan belongs to the abandoned episode, whose samples must never leak
    // into the fresh record. Either way the samples are discarded (exactly
    // like a push racing a close) and the buffer is recycled.
    (void)s->ring.put(std::move(buf));
    if (sh.space_waiters > 0) sh.space_cv.notify_all();
    return s->state != SessionState::Open ? refuse_reason(*s) : PushResult::Closed;
  }
  s->queued_samples += buf.size();
  s->queue.push_back(std::move(buf));
  ++s->chunks_in;
  s->peak_queued = std::max<u64>(s->peak_queued, s->queue.size());
  sh.peak_queued = std::max(sh.peak_queued, s->peak_queued);
  enqueue_ready(sh, local_index(id));
  return PushResult::Ok;
}

void StreamServer::cancel_loan(SessionId id, std::vector<i32>&& buf) noexcept {
  Shard& sh = shard_of(id);
  const common::MutexLock lock(sh.mu);
  Slot* s = find(sh, id);
  if (s == nullptr) return;  // slot retired since the acquire: the buffer dies
  if (s->loaned > 0) --s->loaned;
  (void)s->ring.put(std::move(buf));
  if (sh.space_waiters > 0) sh.space_cv.notify_all();
}

PushResult StreamServer::try_push(SessionId id, std::span<const i32> chunk) {
  ChunkLoan loan;
  const PushResult r = try_acquire_buffer(id, chunk.size(), loan);
  if (r != PushResult::Ok) return r;
  std::copy(chunk.begin(), chunk.end(), loan.data().begin());
  return commit(loan);
}

PushResult StreamServer::push(SessionId id, std::span<const i32> chunk) {
  ChunkLoan loan;
  const PushResult r = acquire_buffer(id, chunk.size(), loan);
  if (r != PushResult::Ok) return r;
  std::copy(chunk.begin(), chunk.end(), loan.data().begin());
  return commit(loan);
}

std::size_t StreamServer::drain_events(SessionId id, std::vector<Event>& out) {
  Shard& sh = shard_of(id);
  const common::MutexLock lock(sh.mu);
  Slot* s = find(sh, id);
  if (s == nullptr || s->egress.empty()) return 0;
  const std::size_t n = s->egress.size();
  out.insert(out.end(), std::make_move_iterator(s->egress.begin()),
             std::make_move_iterator(s->egress.end()));
  s->egress.clear();
  return n;
}

std::size_t StreamServer::drain_events(SessionId id, std::vector<Event>& out,
                                       std::chrono::milliseconds timeout) {
  if (opts_.event_queue_capacity == 0) return 0;  // egress disabled: never waits
  Shard& sh = shard_of(id);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  common::MutexLock lock(sh.mu);
  while (true) {
    if (sh.stop) return 0;
    Slot* s = find(sh, id);
    if (s == nullptr) return 0;  // released/stale: nothing will ever arrive
    if (!s->egress.empty()) {
      const std::size_t n = s->egress.size();
      out.insert(out.end(), std::make_move_iterator(s->egress.begin()),
                 std::make_move_iterator(s->egress.end()));
      s->egress.clear();
      return n;
    }
    // Terminal with a dry queue: no worker will ever append again (a reset()
    // re-arms the slot and wakes this waiter, which then just keeps waiting
    // on the fresh episode).
    if (s->state == SessionState::Closed || s->state == SessionState::Faulted) {
      return 0;
    }
    if (std::chrono::steady_clock::now() >= deadline) return 0;
    ++sh.egress_waiters;
    sh.egress_cv.wait_until(lock, deadline);
    --sh.egress_waiters;
  }
}

SessionState StreamServer::close(SessionId id) {
  Shard& sh = shard_of(id);
  common::MutexLock lock(sh.mu);
  u64 seq0 = 0;
  {
    Slot* s = find(sh, id);
    if (s == nullptr) return SessionState::Empty;
    seq0 = s->final_seq;
    if (s->state == SessionState::Open) {
      s->state = SessionState::Draining;
      enqueue_ready(sh, local_index(id));  // even on an empty queue: a worker flushes
      // Producers blocked at the high-water mark must not wait out the drain:
      // wake them now so they surface Closed immediately.
      if (sh.space_waiters > 0) sh.space_cv.notify_all();
    }
  }
  while (true) {
    if (sh.stop) return SessionState::Empty;
    Slot* s = find(sh, id);
    if (s == nullptr) return SessionState::Empty;
    if (s->state == SessionState::Closed || s->state == SessionState::Faulted) {
      return s->state;
    }
    // The drain landed but a racing reset() re-armed the slot before this
    // waiter woke: the recorded edge still says how it landed.
    if (s->final_seq != seq0) return s->final_state;
    sh.state_cv.wait(lock);
  }
}

bool StreamServer::reset(SessionId id, pantompkins::WarmStart warm) {
  Shard& sh = shard_of(id);
  common::MutexLock lock(sh.mu);
  while (true) {
    if (sh.stop) return false;
    Slot* s = find(sh, id);
    if (s == nullptr) return false;
    if (s->state == SessionState::Draining) {
      // A close() is in flight; let it finish (the slot lands Closed or
      // Faulted, both re-armable) instead of yanking its state from under it.
      sh.state_cv.wait(lock);
      continue;
    }
    drop_queue(sh, *s);  // re-dropped each wait iteration: pushers may still land
    if (s->busy) {
      sh.state_cv.wait(lock);  // let the in-flight batch / flush finish
      continue;
    }
    // Quiescent: no worker owns the slot and the queue is empty. Re-arm.
    s->session->reset(warm);
    s->events_dropped += s->egress.size();  // the old episode's undrained tail
    s->egress.clear();
    ++s->resets;
    ++s->reset_epoch;  // outstanding loans now commit as Closed, not into the fresh record
    s->state = SessionState::Open;
    s->error.clear();
    sh.state_cv.notify_all();
    if (sh.space_waiters > 0) sh.space_cv.notify_all();
    // Blocked drains re-evaluate: the episode they were waiting on is gone.
    if (sh.egress_waiters > 0) sh.egress_cv.notify_all();
    return true;
  }
}

std::unique_ptr<Session> StreamServer::release(SessionId id) {
  Shard& sh = shard_of(id);
  common::MutexLock lock(sh.mu);
  while (true) {
    if (sh.stop) return nullptr;
    Slot* s = find(sh, id);
    if (s == nullptr) return nullptr;
    if (s->state == SessionState::Open) {
      // First iteration, or a racing reset() re-armed the slot while we
      // waited. Retirement is final: (re-)issue the drain so release()
      // always makes progress, and wake blocked producers as in close().
      s->state = SessionState::Draining;
      enqueue_ready(sh, local_index(id));
      if (sh.space_waiters > 0) sh.space_cv.notify_all();
    }
    if ((s->state == SessionState::Closed || s->state == SessionState::Faulted) &&
        !s->busy) {
      // Undrained egress events die with the slot: counted, as everywhere
      // else, so the events ledger still closes in the retired totals.
      s->events_dropped += s->egress.size();
      sh.retired_chunks_processed += s->chunks_processed;
      sh.retired_rejected_chunks += s->rejected_chunks;
      sh.retired_dropped_chunks += s->dropped_chunks;
      sh.retired_samples += s->samples;
      sh.retired_events += s->events;
      sh.retired_beats += s->beats;
      sh.retired_events_dropped += s->events_dropped;
      std::unique_ptr<Session> out = std::move(s->session);
      s->state = SessionState::Empty;
      s->queue.clear();
      s->queued_samples = 0;
      s->egress.clear();
      s->error.clear();
      // Purge any stale ready-list entry (a fault can leave one behind with
      // no worker ever popping it): the next tenant of this slot must not
      // inherit it, or the deque could hold the index twice and two workers
      // would drain the same Session concurrently.
      if (s->enqueued) {
        s->enqueued = false;
        std::erase(sh.ready, local_index(id));
      }
      // The buffer ring stays: the next tenant starts on warm memory.
      sessions_released_.fetch_add(1, std::memory_order_relaxed);
      provisioned_.fetch_sub(1, std::memory_order_relaxed);
      sh.live.fetch_sub(1, std::memory_order_relaxed);
      sh.state_cv.notify_all();
      if (sh.space_waiters > 0) {
        sh.space_cv.notify_all();  // blocked pushers wake to NoSuchSession
      }
      if (sh.egress_waiters > 0) {
        sh.egress_cv.notify_all();  // blocked drains wake to "session gone"
      }
      return out;
    }
    sh.state_cv.wait(lock);
  }
}

void StreamServer::pause() {
  for (auto& shp : shards_) {
    const common::MutexLock lock(shp->mu);
    shp->paused = true;
  }
}

void StreamServer::resume() {
  for (auto& shp : shards_) {
    {
      const common::MutexLock lock(shp->mu);
      shp->paused = false;
    }
    shp->work_cv.notify_all();
  }
}

const Session* StreamServer::session(SessionId id) const {
  Shard& sh = shard_of(id);
  const common::MutexLock lock(sh.mu);
  const Slot* s = find(sh, id);
  return s == nullptr ? nullptr : s->session.get();
}

StreamServer::SessionStats StreamServer::session_stats(SessionId id) const {
  Shard& sh = shard_of(id);
  const common::MutexLock lock(sh.mu);
  SessionStats out;
  const Slot* s = find(sh, id);
  if (s == nullptr) return out;  // state == Empty
  out.state = s->state;
  out.chunks_in = s->chunks_in;
  out.chunks_processed = s->chunks_processed;
  out.rejected_chunks = s->rejected_chunks;
  out.dropped_chunks = s->dropped_chunks;
  out.queued_chunks = s->queue.size();
  out.queued_samples = s->queued_samples;
  out.peak_queued_chunks = s->peak_queued;
  out.resets = s->resets;
  out.samples = s->samples;
  out.events = s->events;
  out.beats = s->beats;
  out.events_queued = s->egress.size();
  out.events_dropped = s->events_dropped;
  out.error = s->error;
  return out;
}

StreamServer::ServerStats StreamServer::stats() const {
  ServerStats out;
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.sessions_released = sessions_released_.load(std::memory_order_relaxed);
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    const common::MutexLock lock(sh.mu);
    out.peak_queued_chunks = std::max(out.peak_queued_chunks, sh.peak_queued);
    out.chunks_processed += sh.retired_chunks_processed;
    out.rejected_chunks += sh.retired_rejected_chunks;
    out.dropped_chunks += sh.retired_dropped_chunks;
    out.samples += sh.retired_samples;
    out.events += sh.retired_events;
    out.beats += sh.retired_beats;
    out.events_dropped += sh.retired_events_dropped;
    for (const Slot& s : sh.slots) {
      switch (s.state) {
        case SessionState::Open:
        case SessionState::Draining: ++out.open; break;
        case SessionState::Closed: ++out.closed; break;
        case SessionState::Faulted: ++out.faulted; break;
        case SessionState::Empty: continue;
      }
      out.chunks_processed += s.chunks_processed;
      out.rejected_chunks += s.rejected_chunks;
      out.dropped_chunks += s.dropped_chunks;
      out.queued_chunks += s.queue.size();
      out.samples += s.samples;
      out.events += s.events;
      out.beats += s.beats;
      out.events_dropped += s.events_dropped;
    }
  }
  return out;
}

}  // namespace xbs::stream
