#include "xbs/stream/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::stream {

const char* to_string(SessionState s) noexcept {
  switch (s) {
    case SessionState::Empty: return "Empty";
    case SessionState::Open: return "Open";
    case SessionState::Draining: return "Draining";
    case SessionState::Closed: return "Closed";
    case SessionState::Faulted: return "Faulted";
  }
  return "?";
}

const char* to_string(PushResult r) noexcept {
  switch (r) {
    case PushResult::Ok: return "Ok";
    case PushResult::QueueFull: return "QueueFull";
    case PushResult::Closed: return "Closed";
    case PushResult::Faulted: return "Faulted";
    case PushResult::NoSuchSession: return "NoSuchSession";
  }
  return "?";
}

StreamServer::StreamServer() : StreamServer(Options{}) {}

StreamServer::StreamServer(Options opts) : opts_(opts) {
  if (opts_.max_sessions == 0) {
    throw std::invalid_argument("StreamServer: max_sessions == 0");
  }
  if (opts_.queue_capacity_chunks == 0) {
    throw std::invalid_argument("StreamServer: queue_capacity_chunks == 0");
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  n_workers_ = opts_.workers == 0 ? hw : opts_.workers;
  workers_.reserve(n_workers_);
  for (unsigned t = 0; t < n_workers_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

StreamServer::~StreamServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  state_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

// ----------------------------------------------------------- mu_-held helpers

StreamServer::Slot* StreamServer::find(SessionId id) {
  if (id.slot >= slots_.size()) return nullptr;
  Slot& s = slots_[id.slot];
  if (s.state == SessionState::Empty || s.generation != id.generation) return nullptr;
  return &s;
}

const StreamServer::Slot* StreamServer::find(SessionId id) const {
  return const_cast<StreamServer*>(this)->find(id);
}

SessionId StreamServer::provision(std::unique_ptr<Session> session) {
  std::size_t idx = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == SessionState::Empty) {
      idx = i;
      break;
    }
  }
  if (idx == slots_.size()) {
    if (slots_.size() >= opts_.max_sessions) {
      throw std::runtime_error("StreamServer: session limit reached (max_sessions)");
    }
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.session = std::move(session);
  s.state = SessionState::Open;
  s.generation = ++sessions_opened_;  // monotonic: unique across all slots
  s.queue.clear();
  s.queued_samples = 0;
  s.busy = false;
  s.enqueued = false;
  s.chunks_in = 0;
  s.chunks_processed = 0;
  s.dropped_chunks = 0;
  s.samples = 0;
  s.events = 0;
  s.beats = 0;
  s.error.clear();
  return SessionId{idx, s.generation};
}

PushResult StreamServer::refuse_reason(const Slot& s) const {
  switch (s.state) {
    case SessionState::Open: return PushResult::Ok;
    case SessionState::Draining:
    case SessionState::Closed: return PushResult::Closed;
    case SessionState::Faulted: return PushResult::Faulted;
    case SessionState::Empty: return PushResult::NoSuchSession;
  }
  return PushResult::NoSuchSession;
}

void StreamServer::enqueue_ready(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  if (s.enqueued || s.busy) return;
  s.enqueued = true;
  ready_.push_back(slot_index);
  work_cv_.notify_one();
}

void StreamServer::drop_queue(Slot& s) {
  s.dropped_chunks += s.queue.size();
  s.queue.clear();
  s.queued_samples = 0;
  space_cv_.notify_all();
}

void StreamServer::fault(Slot& s, std::string why) {
  s.state = SessionState::Faulted;
  s.error = std::move(why);
  drop_queue(s);
  state_cv_.notify_all();
}

// ------------------------------------------------------------------- workers

void StreamServer::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || (!paused_ && !ready_.empty()); });
    if (stop_) return;
    const std::size_t idx = ready_.front();
    ready_.pop_front();
    slots_[idx].enqueued = false;
    drain_one(lock, idx);
  }
}

void StreamServer::drain_one(std::unique_lock<std::mutex>& lock, std::size_t slot_index) {
  slots_[slot_index].busy = true;
  while (true) {
    Slot& s = slots_[slot_index];  // re-fetch: slots_ may have grown while unlocked
    if (stop_ || paused_) {
      // Hand the remainder back to the ready list so resume() (or another
      // worker) picks it up; nothing is lost.
      if (s.state == SessionState::Open || s.state == SessionState::Draining) {
        s.busy = false;
        enqueue_ready(slot_index);
        state_cv_.notify_all();
        return;
      }
      break;
    }
    if (s.state != SessionState::Open && s.state != SessionState::Draining) break;
    if (s.queue.empty()) {
      if (s.state != SessionState::Draining) break;
      // close() requested and the queue is dry: flush outside the lock.
      Session* sess = s.session.get();
      lock.unlock();
      std::string err;
      u64 events = 0, beats = 0;
      try {
        for (const Event& ev : sess->flush()) {
          ++events;
          beats += ev.is_beat() ? 1 : 0;
        }
      } catch (const std::exception& e) {
        err = e.what();
      } catch (...) {
        err = "unknown exception during flush";
      }
      lock.lock();
      Slot& sl = slots_[slot_index];
      sl.events += events;
      sl.beats += beats;
      if (!err.empty()) {
        fault(sl, std::move(err));
      } else {
        sl.state = SessionState::Closed;
        state_cv_.notify_all();
      }
      break;
    }
    std::vector<i32> chunk = std::move(s.queue.front());
    s.queue.pop_front();
    s.queued_samples -= chunk.size();
    space_cv_.notify_all();
    Session* sess = s.session.get();
    lock.unlock();
    std::string err;
    u64 events = 0, beats = 0;
    try {
      for (const Event& ev : sess->push(chunk)) {
        ++events;
        beats += ev.is_beat() ? 1 : 0;
      }
    } catch (const std::exception& e) {
      err = e.what();
    } catch (...) {
      err = "unknown exception during push";
    }
    lock.lock();
    Slot& sl = slots_[slot_index];
    if (!err.empty()) {
      fault(sl, std::move(err));
      break;
    }
    ++sl.chunks_processed;
    sl.samples += chunk.size();
    sl.events += events;
    sl.beats += beats;
  }
  slots_[slot_index].busy = false;
  state_cv_.notify_all();
}

// --------------------------------------------------------------- public API

SessionId StreamServer::open(SessionSpec spec) {
  // Session construction (and LUT warming) happens outside the lock: it can
  // cold-build coefficient tables, and open() must not stall the data plane.
  pantompkins::warm_pipeline_tables(spec.config);
  auto session = std::make_unique<Session>(std::move(spec));
  std::lock_guard<std::mutex> lock(mu_);
  return provision(std::move(session));
}

SessionId StreamServer::adopt(std::unique_ptr<Session> session) {
  if (!session) throw std::invalid_argument("StreamServer::adopt: null session");
  std::lock_guard<std::mutex> lock(mu_);
  return provision(std::move(session));
}

PushResult StreamServer::try_push(SessionId id, std::span<const i32> chunk) {
  // The copy is built outside the lock: the server-wide mutex must never
  // hold an O(chunk) allocation+memcpy, or every session's ingest and every
  // worker serialize on it. Wasted work only on the (rare) refusal paths.
  const bool oversize =
      opts_.max_chunk_samples != 0 && chunk.size() > opts_.max_chunk_samples;
  std::vector<i32> copy;
  if (!oversize) copy.assign(chunk.begin(), chunk.end());
  std::lock_guard<std::mutex> lock(mu_);
  Slot* s = find(id);
  if (s == nullptr) return PushResult::NoSuchSession;
  if (s->state != SessionState::Open) return refuse_reason(*s);
  if (oversize) {
    ++s->dropped_chunks;  // the offending chunk itself
    fault(*s, "protocol violation: chunk of " + std::to_string(chunk.size()) +
                  " samples exceeds max_chunk_samples = " +
                  std::to_string(opts_.max_chunk_samples));
    return PushResult::Faulted;
  }
  if (s->queue.size() >= opts_.queue_capacity_chunks) {
    ++s->dropped_chunks;
    return PushResult::QueueFull;
  }
  s->queue.push_back(std::move(copy));
  s->queued_samples += chunk.size();
  ++s->chunks_in;
  peak_queued_chunks_ = std::max<u64>(peak_queued_chunks_, s->queue.size());
  enqueue_ready(id.slot);
  return PushResult::Ok;
}

PushResult StreamServer::push(SessionId id, std::span<const i32> chunk) {
  const bool oversize =
      opts_.max_chunk_samples != 0 && chunk.size() > opts_.max_chunk_samples;
  std::vector<i32> copy;  // built unlocked, moved in on acceptance (see try_push)
  if (!oversize) copy.assign(chunk.begin(), chunk.end());
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_) return PushResult::NoSuchSession;
    Slot* s = find(id);
    if (s == nullptr) return PushResult::NoSuchSession;
    if (s->state != SessionState::Open) return refuse_reason(*s);
    if (oversize) {
      ++s->dropped_chunks;
      fault(*s, "protocol violation: chunk of " + std::to_string(chunk.size()) +
                    " samples exceeds max_chunk_samples = " +
                    std::to_string(opts_.max_chunk_samples));
      return PushResult::Faulted;
    }
    if (s->queue.size() < opts_.queue_capacity_chunks) {
      s->queue.push_back(std::move(copy));
      s->queued_samples += chunk.size();
      ++s->chunks_in;
      peak_queued_chunks_ = std::max<u64>(peak_queued_chunks_, s->queue.size());
      enqueue_ready(id.slot);
      return PushResult::Ok;
    }
    space_cv_.wait(lock);  // backpressure: high-water mark reached
  }
}

SessionState StreamServer::close(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  {
    Slot* s = find(id);
    if (s == nullptr) return SessionState::Empty;
    if (s->state == SessionState::Open) {
      s->state = SessionState::Draining;
      enqueue_ready(id.slot);  // even on an empty queue: a worker runs the flush
    }
  }
  while (true) {
    if (stop_) return SessionState::Empty;
    Slot* s = find(id);
    if (s == nullptr) return SessionState::Empty;
    if (s->state == SessionState::Closed || s->state == SessionState::Faulted) {
      return s->state;
    }
    state_cv_.wait(lock);
  }
}

bool StreamServer::reset(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_) return false;
    Slot* s = find(id);
    if (s == nullptr) return false;
    if (s->state == SessionState::Draining) {
      // A close() is in flight; let it finish (the slot lands Closed or
      // Faulted, both re-armable) instead of yanking its state from under it.
      state_cv_.wait(lock);
      continue;
    }
    drop_queue(*s);  // re-dropped each wait iteration: pushers may still land
    if (s->busy) {
      state_cv_.wait(lock);  // let the in-flight chunk / flush finish
      continue;
    }
    // Quiescent: no worker owns the slot and the queue is empty. Re-arm.
    s->session->reset();
    s->state = SessionState::Open;
    s->error.clear();
    state_cv_.notify_all();
    space_cv_.notify_all();
    return true;
  }
}

std::unique_ptr<Session> StreamServer::release(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  {
    Slot* s = find(id);
    if (s == nullptr) return nullptr;
    if (s->state == SessionState::Open) {
      s->state = SessionState::Draining;
      enqueue_ready(id.slot);
    }
  }
  while (true) {
    if (stop_) return nullptr;
    Slot* s = find(id);
    if (s == nullptr) return nullptr;
    if ((s->state == SessionState::Closed || s->state == SessionState::Faulted) && !s->busy) {
      retired_chunks_processed_ += s->chunks_processed;
      retired_dropped_chunks_ += s->dropped_chunks;
      retired_samples_ += s->samples;
      retired_events_ += s->events;
      retired_beats_ += s->beats;
      std::unique_ptr<Session> out = std::move(s->session);
      s->state = SessionState::Empty;
      s->queue.clear();
      s->queued_samples = 0;
      s->error.clear();
      ++sessions_released_;
      state_cv_.notify_all();
      space_cv_.notify_all();  // pushers blocked on this id wake to NoSuchSession
      return out;
    }
    state_cv_.wait(lock);
  }
}

void StreamServer::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void StreamServer::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

const Session* StreamServer::session(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Slot* s = find(id);
  return s == nullptr ? nullptr : s->session.get();
}

StreamServer::SessionStats StreamServer::session_stats(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats out;
  const Slot* s = find(id);
  if (s == nullptr) return out;  // state == Empty
  out.state = s->state;
  out.chunks_in = s->chunks_in;
  out.chunks_processed = s->chunks_processed;
  out.dropped_chunks = s->dropped_chunks;
  out.queued_chunks = s->queue.size();
  out.queued_samples = s->queued_samples;
  out.samples = s->samples;
  out.events = s->events;
  out.beats = s->beats;
  out.error = s->error;
  return out;
}

StreamServer::ServerStats StreamServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out;
  out.sessions_opened = sessions_opened_;
  out.sessions_released = sessions_released_;
  out.peak_queued_chunks = peak_queued_chunks_;
  out.chunks_processed = retired_chunks_processed_;
  out.dropped_chunks = retired_dropped_chunks_;
  out.samples = retired_samples_;
  out.events = retired_events_;
  out.beats = retired_beats_;
  for (const Slot& s : slots_) {
    switch (s.state) {
      case SessionState::Open:
      case SessionState::Draining: ++out.open; break;
      case SessionState::Closed: ++out.closed; break;
      case SessionState::Faulted: ++out.faulted; break;
      case SessionState::Empty: continue;
    }
    out.chunks_processed += s.chunks_processed;
    out.dropped_chunks += s.dropped_chunks;
    out.queued_chunks += s.queue.size();
    out.samples += s.samples;
    out.events += s.events;
    out.beats += s.beats;
  }
  return out;
}

}  // namespace xbs::stream
