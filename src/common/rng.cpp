#include "xbs/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace xbs {
namespace {

constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

// splitmix64's increment and both mixing multiplies are modular u64
// arithmetic by construction — the wraps ARE the mixer.
XBS_NO_SANITIZE_INTEGER constexpr u64 splitmix64(u64& s) noexcept {
  s += 0x9E3779B97F4A7C15ull;
  u64 z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(u64 seed) noexcept {
  u64 s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

// xoshiro256**'s scrambler (*5, *9) is modular u64 multiplication.
XBS_NO_SANITIZE_INTEGER u64 Rng::next_u64() noexcept {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

// The span and the `lo + x` reconstruction are deliberate modular u64
// arithmetic: hi - lo is exact in u64 for any i64 pair (two's complement),
// and the full-range span wraps to 0, which the guard maps to "any u64".
XBS_NO_SANITIZE_INTEGER i64 Rng::uniform_int(i64 lo, i64 hi) noexcept {
  const u64 span = static_cast<u64>(hi) - static_cast<u64>(lo) + 1;
  if (span == 0) return static_cast<i64>(next_u64());
  return static_cast<i64>(static_cast<u64>(lo) + next_u64() % span);
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept { return mean + stddev * gaussian(); }

}  // namespace xbs
