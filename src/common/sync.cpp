#include "xbs/common/sync.hpp"

#include <cstdio>
#include <cstdlib>

namespace xbs::common {

const char* to_string(LockRank r) noexcept {
  switch (r) {
    case LockRank::kUnranked:
      return "unranked";
    case LockRank::kNetConn:
      return "net-conn";
    case LockRank::kShard:
      return "shard";
    case LockRank::kSlot:
      return "slot";
    case LockRank::kTableCache:
      return "table-cache";
    case LockRank::kStats:
      return "stats";
  }
  return "?";
}

namespace detail {
namespace {

// Per-thread stack of held *ranked* locks. Unranked mutexes never enter the
// stack, so they cost nothing here and are exempt from every check. The
// stack is tiny by design: holding more than a handful of ranked locks at
// once would itself be a hierarchy smell.
constexpr int kMaxHeld = 16;

struct HeldLock {
  const void* mu;
  LockRank rank;
};

thread_local HeldLock t_held[kMaxHeld];
thread_local int t_n_held = 0;

[[noreturn]] void die(const char* what, LockRank rank, LockRank held) noexcept {
  std::fprintf(stderr,
               "xbs sync: lock-rank violation: %s: lock of rank %d (%s) while the innermost "
               "held lock has rank %d (%s); acquisitions must strictly ascend the hierarchy "
               "net-conn(10) < shard(20) < slot(30) < table-cache(40) < stats(50)\n",
               what, static_cast<int>(rank), to_string(rank), static_cast<int>(held),
               to_string(held));
  std::abort();
}

[[noreturn]] void die_simple(const char* what, LockRank rank) noexcept {
  std::fprintf(stderr, "xbs sync: lock-rank violation: %s (rank %d, %s)\n", what,
               static_cast<int>(rank), to_string(rank));
  std::abort();
}

void push(const void* mu, LockRank rank) noexcept {
  if (t_n_held == kMaxHeld) die_simple("held-lock stack overflow", rank);
  t_held[t_n_held++] = HeldLock{mu, rank};
}

}  // namespace

void rank_acquire(const void* mu, LockRank rank) noexcept {
  if (rank == LockRank::kUnranked) return;
  if (t_n_held > 0) {
    // Pushes are ascending-only, so the top of the stack is the maximum and
    // the innermost held rank even after out-of-order releases.
    const HeldLock& top = t_held[t_n_held - 1];
    if (rank <= top.rank) die("acquiring", rank, top.rank);
  }
  push(mu, rank);
}

void rank_try_acquired(const void* mu, LockRank rank) noexcept {
  if (rank == LockRank::kUnranked) return;
  // try_lock never blocks, so it cannot complete a deadlock cycle and is
  // allowed out of order; the lock still joins the stack so that later
  // blocking acquisitions are checked against it.
  push(mu, rank);
}

void rank_release(const void* mu, LockRank rank) noexcept {
  if (rank == LockRank::kUnranked) return;
  for (int i = t_n_held - 1; i >= 0; --i) {
    if (t_held[i].mu != mu) continue;
    for (int j = i; j + 1 < t_n_held; ++j) t_held[j] = t_held[j + 1];
    --t_n_held;
    return;
  }
  die_simple("releasing a lock this thread does not hold", rank);
}

void rank_wait(const void* mu, LockRank rank) noexcept {
  if (rank == LockRank::kUnranked) return;
  // A condition wait releases exactly one mutex; blocking while a lock
  // acquired *after* it stays held would sleep inside a critical section.
  if (t_n_held == 0 || t_held[t_n_held - 1].mu != mu) {
    die_simple("condition wait on a lock that is not the innermost one held", rank);
  }
}

void rank_assert_held(const void* mu, LockRank rank) noexcept {
  if (rank == LockRank::kUnranked) return;
  for (int i = t_n_held - 1; i >= 0; --i) {
    if (t_held[i].mu == mu) return;
  }
  die_simple("assert_held on a lock this thread does not hold", rank);
}

int held_rank_count() noexcept { return t_n_held; }

}  // namespace detail
}  // namespace xbs::common
