#include "xbs/common/fixed.hpp"

namespace xbs {

std::vector<i32> quantize_signal(std::span<const double> signal, const QFormat& q) {
  std::vector<i32> out;
  out.reserve(signal.size());
  for (const double v : signal) out.push_back(static_cast<i32>(quantize(v, q)));
  return out;
}

std::vector<double> dequantize_signal(std::span<const i32> signal, const QFormat& q) {
  std::vector<double> out;
  out.reserve(signal.size());
  for (const i32 v : signal) out.push_back(dequantize(v, q));
  return out;
}

}  // namespace xbs
