/// \file rng.hpp
/// \brief Deterministic, platform-independent random number generation.
///
/// Standard-library distributions are not bit-reproducible across
/// implementations, so the synthetic ECG substrate and all property tests use
/// this self-contained xoshiro256** generator with hand-rolled uniform /
/// Gaussian draws. Every experiment in the repository is seeded, making bench
/// output identical run-to-run.
#pragma once

#include <array>
#include <cstdint>

#include "xbs/common/types.hpp"

namespace xbs {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] u64 next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] i64 uniform_int(i64 lo, i64 hi) noexcept;

  /// Standard normal draw (Box-Muller, cached pair).
  [[nodiscard]] double gaussian() noexcept;

  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept;

 private:
  std::array<u64, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace xbs
