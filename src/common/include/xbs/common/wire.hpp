/// \file wire.hpp
/// \brief Explicit little-endian wire encode/decode primitives.
///
/// The network framing protocol (xbs::net) defines its byte layout as
/// little-endian regardless of host order; these helpers are the single
/// place that contract is implemented. Encoding appends to a byte vector;
/// decoding goes through a bounds-checked cursor (WireReader) that turns
/// any overrun into a sticky `ok() == false` instead of UB — a truncated or
/// hostile frame must never read past its payload.
#pragma once

#include <bit>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "xbs/common/types.hpp"

namespace xbs::wire {

inline void put_u8(std::vector<u8>& out, u8 v) { out.push_back(v); }

inline void put_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
}

inline void put_u32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 24));
}

inline void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

inline void put_i32(std::vector<u8>& out, i32 v) { put_u32(out, static_cast<u32>(v)); }
inline void put_i64(std::vector<u8>& out, i64 v) { put_u64(out, static_cast<u64>(v)); }

/// Doubles travel as their IEEE-754 bit pattern: bit-exact round trips, which
/// the loopback bit-identity tests rely on.
inline void put_f64(std::vector<u8>& out, double v) {
  put_u64(out, std::bit_cast<u64>(v));
}

[[nodiscard]] inline u16 get_u16(const u8* p) {
  return static_cast<u16>(static_cast<u16>(p[0]) | (static_cast<u16>(p[1]) << 8));
}

[[nodiscard]] inline u32 get_u32(const u8* p) {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

[[nodiscard]] inline u64 get_u64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked decode cursor. Every read past the end (or after a failed
/// read) yields 0 and latches ok() to false; callers validate once at the
/// end instead of guarding every field.
class WireReader {
 public:
  explicit WireReader(std::span<const u8> buf) : buf_(buf) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return buf_.size() - pos_; }

  [[nodiscard]] u8 read_u8() {
    if (!take(1)) return 0;
    return buf_[pos_ - 1];
  }
  [[nodiscard]] u16 read_u16() {
    if (!take(2)) return 0;
    return get_u16(buf_.data() + pos_ - 2);
  }
  [[nodiscard]] u32 read_u32() {
    if (!take(4)) return 0;
    return get_u32(buf_.data() + pos_ - 4);
  }
  [[nodiscard]] u64 read_u64() {
    if (!take(8)) return 0;
    return get_u64(buf_.data() + pos_ - 8);
  }
  [[nodiscard]] i32 read_i32() { return static_cast<i32>(read_u32()); }
  [[nodiscard]] i64 read_i64() { return static_cast<i64>(read_u64()); }
  [[nodiscard]] double read_f64() { return std::bit_cast<double>(read_u64()); }

  /// View of the next \p n raw bytes (empty + !ok() on underrun).
  [[nodiscard]] std::span<const u8> read_bytes(std::size_t n) {
    if (!take(n)) return {};
    return buf_.subspan(pos_ - n, n);
  }

  void skip(std::size_t n) { (void)take(n); }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > buf_.size() - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const u8> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace xbs::wire
