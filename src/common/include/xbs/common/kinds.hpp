/// \file kinds.hpp
/// \brief Elementary approximate-module kinds shared across the library.
///
/// These enumerate the paper's elementary module library (Fig. 5 / Table 1):
/// the accurate 1-bit full adder plus the five approximate mirror adders of
/// Gupta et al. [8][9], and the accurate 2x2 multiplier plus the approximate
/// elementary multipliers of Kulkarni et al. [12] and Rehman et al. [19].
#pragma once

#include <array>
#include <string_view>

namespace xbs {

/// 1-bit full-adder variants (paper Fig. 5, left column).
enum class AdderKind {
  Accurate,     ///< exact full adder
  Approx1,      ///< AMA1: two Sum errors, exact carry
  Approx2,      ///< AMA2: Sum = NOT Cout, exact carry
  Approx3,      ///< AMA3: Cout = A | (B & Cin), Sum = NOT Cout
  Approx4,      ///< AMA4: Cout = A, Sum = NOT A (single inverter)
  Approx5,      ///< AMA5: Sum = B, Cout = A (pure wiring, zero transistors)
};

/// Elementary 2x2 multiplier variants (paper Fig. 5, right column).
enum class MultKind {
  Accurate,  ///< exact 2x2 multiplier
  V1,        ///< Kulkarni et al.: 3x3 -> 7, all other inputs exact
  V2,        ///< Rehman-style further simplification: 3x3 -> 3, cheaper logic
};

/// Which elementary 2x2 sub-multipliers of a recursive multiplier count as
/// "inside the k approximated LSBs". The paper does not pin this down; the
/// library implements three policies (see DESIGN.md §4.2) and defaults to
/// Moderate.
enum class ApproxPolicy {
  Conservative,  ///< approximate iff the whole 4-bit output lies below bit k
  Moderate,      ///< approximate iff the low half of the output lies below bit k
  Aggressive,    ///< approximate iff any output bit lies below bit k
};

/// All adder kinds in descending order of per-bit energy (Table 1), i.e. the
/// order AddList is traversed by the design-generation methodology.
inline constexpr std::array<AdderKind, 6> kAllAdderKinds = {
    AdderKind::Accurate, AdderKind::Approx1, AdderKind::Approx2,
    AdderKind::Approx3,  AdderKind::Approx4, AdderKind::Approx5,
};

/// All multiplier kinds in descending order of energy (Table 1).
inline constexpr std::array<MultKind, 3> kAllMultKinds = {
    MultKind::Accurate, MultKind::V1, MultKind::V2};

[[nodiscard]] constexpr std::string_view to_string(AdderKind k) noexcept {
  switch (k) {
    case AdderKind::Accurate: return "Accurate";
    case AdderKind::Approx1: return "ApproxAdd1";
    case AdderKind::Approx2: return "ApproxAdd2";
    case AdderKind::Approx3: return "ApproxAdd3";
    case AdderKind::Approx4: return "ApproxAdd4";
    case AdderKind::Approx5: return "ApproxAdd5";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(MultKind k) noexcept {
  switch (k) {
    case MultKind::Accurate: return "AccMult";
    case MultKind::V1: return "AppMultV1";
    case MultKind::V2: return "AppMultV2";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(ApproxPolicy p) noexcept {
  switch (p) {
    case ApproxPolicy::Conservative: return "Conservative";
    case ApproxPolicy::Moderate: return "Moderate";
    case ApproxPolicy::Aggressive: return "Aggressive";
  }
  return "?";
}

}  // namespace xbs
