/// \file bitops.hpp
/// \brief Bit-manipulation helpers for the bit-accurate arithmetic simulators.
#pragma once

#include <bit>
#include <cassert>

#include "xbs/common/types.hpp"

namespace xbs {

/// Extract bit \p i (0 = LSB) of \p v.
[[nodiscard]] constexpr bool bit_of(u64 v, int i) noexcept {
  return ((v >> i) & 1u) != 0;
}

/// Set bit \p i of \p v to \p b and return the result.
[[nodiscard]] constexpr u64 with_bit(u64 v, int i, bool b) noexcept {
  const u64 m = u64{1} << i;
  return b ? (v | m) : (v & ~m);
}

/// Mask keeping the low \p n bits (n in [0, 64]).
[[nodiscard]] constexpr u64 low_mask(int n) noexcept {
  return n >= 64 ? ~u64{0} : ((u64{1} << n) - 1);
}

/// Sign-extend the low \p bits bits of \p v into a signed 64-bit value.
/// `(x ^ m) - m` underflows u64 whenever the sign bit is set — that wrap IS
/// the two's-complement fold, so the -fsanitize=integer checks are off here.
XBS_NO_SANITIZE_INTEGER [[nodiscard]] constexpr i64 sign_extend(u64 v, int bits) noexcept {
  assert(bits > 0 && bits <= 64);
  if (bits == 64) return static_cast<i64>(v);
  const u64 m = u64{1} << (bits - 1);
  const u64 x = v & low_mask(bits);
  return static_cast<i64>((x ^ m) - m);
}

/// Truncate a signed value to its low \p bits bits (two's complement wrap).
[[nodiscard]] constexpr u64 to_unsigned_bits(i64 v, int bits) noexcept {
  return static_cast<u64>(v) & low_mask(bits);
}

/// Number of bits needed to represent \p v (v >= 0); bit_width(0) == 0.
[[nodiscard]] constexpr int bit_width_u(u64 v) noexcept {
  return std::bit_width(v);
}

}  // namespace xbs
