/// \file types.hpp
/// \brief Fundamental integer aliases and sample types used across XBioSiP.
#pragma once

#include <cstdint>

namespace xbs {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// A digitized bio-signal sample. The paper's front-end is a 16-bit ADC, but
/// intermediate datapath values (filter accumulators) are wider, so the
/// canonical in-library sample type is a signed 32-bit integer.
using Sample = i32;

/// Sampling frequency used throughout the paper's case study (Pan-Tompkins
/// assumes 200 Hz).
inline constexpr double kSampleRateHz = 200.0;

/// ADC resolution of the paper's acquisition front-end.
inline constexpr int kAdcBits = 16;

}  // namespace xbs
