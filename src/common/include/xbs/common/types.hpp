/// \file types.hpp
/// \brief Fundamental integer aliases and sample types used across XBioSiP.
#pragma once

#include <cstdint>

/// Marks a function whose arithmetic wraps *by design* (PRNG mixers, CRC-style
/// sign folds, two's-complement magnitude tricks), exempting it from clang's
/// -fsanitize=integer,implicit-conversion group that the widened CI sanitizer
/// leg enables. Plain UBSan (signed overflow, bad shifts) still applies — the
/// exemption covers only the well-defined-but-suspicious unsigned/implicit
/// checks. Every use site must carry a comment saying which operation wraps
/// and why that is the intended semantics.
#if defined(__clang__)
#define XBS_NO_SANITIZE_INTEGER __attribute__((no_sanitize("integer", "implicit-conversion")))
#else
#define XBS_NO_SANITIZE_INTEGER
#endif

namespace xbs {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// A digitized bio-signal sample. The paper's front-end is a 16-bit ADC, but
/// intermediate datapath values (filter accumulators) are wider, so the
/// canonical in-library sample type is a signed 32-bit integer.
using Sample = i32;

/// Sampling frequency used throughout the paper's case study (Pan-Tompkins
/// assumes 200 Hz).
inline constexpr double kSampleRateHz = 200.0;

/// ADC resolution of the paper's acquisition front-end.
inline constexpr int kAdcBits = 16;

}  // namespace xbs
