/// \file aligned.hpp
/// \brief Minimal over-aligned allocator for table storage.
#pragma once

#include <cstddef>
#include <new>

namespace xbs {

/// std::allocator drop-in that over-aligns every allocation to \p Alignment
/// bytes. The kernel LUTs use it at cache-line (64 B) alignment so per-lane
/// gathers never split a line at the table head and adjacent heap blocks
/// cannot share the table's first line.
template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no weaker than alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  template <class U>
  friend constexpr bool operator==(const AlignedAllocator&,
                                   const AlignedAllocator<U, Alignment>&) noexcept {
    return true;
  }
};

}  // namespace xbs
