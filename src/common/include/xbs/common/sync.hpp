/// \file sync.hpp
/// \brief Annotated synchronization primitives: clang thread-safety-checked
/// `Mutex`/`MutexLock`/`CondVar` wrappers plus a Debug-build lock-rank
/// deadlock detector.
///
/// Every lock in the serving stack goes through these wrappers so the locking
/// discipline is enforced twice:
///
///   1. **Statically** — under clang, the `XBS_GUARDED_BY` / `XBS_REQUIRES` /
///      `XBS_ACQUIRE` / `XBS_RELEASE` annotations make `-Wthread-safety`
///      prove at compile time that guarded members are only touched with
///      their mutex held and that `REQUIRES`-bearing helpers are only called
///      under the right lock. On non-clang compilers the macros expand to
///      nothing and `Mutex` is a plain `std::mutex` wrapper.
///
///   2. **Dynamically** — in Debug builds (`XBS_LOCK_RANK_CHECKS`, default on
///      when `NDEBUG` is not defined) every ranked `Mutex` acquisition is
///      checked against a per-thread held-lock stack: acquiring a lock whose
///      rank is not strictly greater than the innermost held rank aborts
///      with a diagnostic. Strict ascent over a global hierarchy makes lock
///      cycles — and therefore lock-order deadlocks — impossible by
///      construction.
///
/// The lock hierarchy (see docs/concurrency.md for the full discipline):
///
///   | rank | level        | locks at this level                              |
///   |-----:|--------------|--------------------------------------------------|
///   |   10 | net-conn     | `net::NetServer` registry + per-connection
///   |      |              | egress/command locks                             |
///   |   20 | shard        | `stream::StreamServer` shard locks, the explore
///   |      |              | `WorkerPool` coordination lock                   |
///   |   30 | slot         | explore per-worker work-stealing queue locks     |
///   |   40 | table-cache  | arith kernel LUT caches, multiplier-model cache,
///   |      |              | kernel-ISA + CRC32C dispatch state, the
///   |      |              | energy-model synthesis memo                      |
///   |   50 | stats        | leaf-level counters (reserved; stats are
///   |      |              | currently atomics)                               |
///
/// A thread may acquire a lock only if its rank is strictly greater than
/// every rank it already holds; same-rank nesting is a violation too (locks
/// of equal rank must never be held together). Unranked mutexes
/// (`LockRank::kUnranked`, the default) are exempt from ordering — use them
/// for leaf locks in tests and tools, never in the serving stack.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// --------------------------------------------------------------------------
// Clang thread-safety annotation macros. Empty on other compilers.
// --------------------------------------------------------------------------
#if defined(__clang__)
#define XBS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define XBS_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define XBS_CAPABILITY(x) XBS_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime acquires/releases a capability.
#define XBS_SCOPED_CAPABILITY XBS_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only with the named mutex held.
#define XBS_GUARDED_BY(x) XBS_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named mutex.
#define XBS_PT_GUARDED_BY(x) XBS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function that must be called with the named mutex(es) already held.
#define XBS_REQUIRES(...) XBS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the named mutex(es) (held on return, not on entry).
#define XBS_ACQUIRE(...) XBS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the named mutex(es).
#define XBS_RELEASE(...) XBS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the mutex only when it returns the given value.
#define XBS_TRY_ACQUIRE(...) XBS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be called with the named mutex(es) held (it
/// acquires them itself; holding them would self-deadlock).
#define XBS_EXCLUDES(...) XBS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function that dynamically asserts the capability is held (e.g. via the
/// Debug held-lock stack) — the analysis trusts it from there on.
#define XBS_ASSERT_CAPABILITY(x) XBS_THREAD_ANNOTATION(assert_capability(x))
/// Function returning a reference to the mutex guarding its result.
#define XBS_RETURN_CAPABILITY(x) XBS_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch for locking patterns beyond the static analysis (documented
/// at every use site; the Debug rank checker still covers them at runtime).
#define XBS_NO_THREAD_SAFETY_ANALYSIS XBS_THREAD_ANNOTATION(no_thread_safety_analysis)

// --------------------------------------------------------------------------
// Debug lock-rank checking. On by default whenever assertions are on; can be
// forced either way with -DXBS_LOCK_RANK_CHECKS=0/1.
// --------------------------------------------------------------------------
#ifndef XBS_LOCK_RANK_CHECKS
#ifdef NDEBUG
#define XBS_LOCK_RANK_CHECKS 0
#else
#define XBS_LOCK_RANK_CHECKS 1
#endif
#endif

namespace xbs::common {

/// The global lock hierarchy (see the file comment). Values are spaced so a
/// future level can slot in between without renumbering.
enum class LockRank : int {
  kUnranked = -1,   ///< exempt from ordering (leaf locks in tests/tools only)
  kNetConn = 10,    ///< net front door: registry + per-connection locks
  kShard = 20,      ///< stream shard locks, explore pool coordination
  kSlot = 30,       ///< explore per-worker stealing-queue locks
  kTableCache = 40, ///< process-wide LUT/model/dispatch caches
  kStats = 50,      ///< leaf counters (reserved)
};

/// Human-readable level name for diagnostics ("shard", "table-cache", ...).
[[nodiscard]] const char* to_string(LockRank r) noexcept;

namespace detail {
// Out-of-line Debug bookkeeping (sync.cpp): a per-thread stack of held
// ranked locks. `rank_acquire` aborts on any non-ascending acquisition,
// `rank_wait` aborts when a condition wait would release a lock that is not
// the innermost one held (sleeping while holding an outer lock is a latent
// deadlock). All are no-ops for unranked mutexes.
void rank_acquire(const void* mu, LockRank rank) noexcept;
void rank_try_acquired(const void* mu, LockRank rank) noexcept;
void rank_release(const void* mu, LockRank rank) noexcept;
void rank_wait(const void* mu, LockRank rank) noexcept;
void rank_assert_held(const void* mu, LockRank rank) noexcept;
/// Ranked locks the calling thread currently holds (test observability).
[[nodiscard]] int held_rank_count() noexcept;
}  // namespace detail

/// A standard mutex carrying a clang capability and a static lock rank.
/// Release builds compile down to a bare `std::mutex`.
class XBS_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() noexcept = default;
  constexpr explicit Mutex(LockRank rank) noexcept : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XBS_ACQUIRE() {
#if XBS_LOCK_RANK_CHECKS
    detail::rank_acquire(this, rank_);
#endif
    mu_.lock();
  }

  void unlock() XBS_RELEASE() {
    mu_.unlock();
#if XBS_LOCK_RANK_CHECKS
    detail::rank_release(this, rank_);
#endif
  }

  bool try_lock() XBS_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#if XBS_LOCK_RANK_CHECKS
    // A successful try_lock cannot deadlock (it never blocks), so it skips
    // the order assert but still joins the held stack for later checks.
    if (ok) detail::rank_try_acquired(this, rank_);
#endif
    return ok;
  }

  /// Debug-assert the calling thread holds this mutex; tells the static
  /// analysis the capability is held from here on. Used at the top of
  /// `XBS_NO_THREAD_SAFETY_ANALYSIS` bodies to keep the runtime check.
  void assert_held() XBS_ASSERT_CAPABILITY(this) {
#if XBS_LOCK_RANK_CHECKS
    detail::rank_assert_held(this, rank_);
#endif
  }

  [[nodiscard]] LockRank rank() const noexcept { return rank_; }

  /// The wrapped native mutex — for CondVar only; locking it directly would
  /// bypass both the annotations and the rank checker.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

/// RAII scoped lock over `Mutex`, relockable mid-scope (the worker batch
/// pattern: unlock around the expensive work, relock to publish results).
class XBS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XBS_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }

  ~MutexLock() XBS_RELEASE() {
    if (owns_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() XBS_ACQUIRE() {
    mu_->lock();
    owns_ = true;
  }

  void unlock() XBS_RELEASE() {
    mu_->unlock();
    owns_ = false;
  }

  [[nodiscard]] bool owns() const noexcept { return owns_; }
  [[nodiscard]] Mutex* mutex() const noexcept { return mu_; }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool owns_ = true;
};

/// Condition variable over `Mutex`. No predicate overloads on purpose: a
/// predicate lambda is a separate function to the static analysis, so its
/// guarded reads would need their own annotations — explicit
/// `while (!cond) cv.wait(lock);` loops keep every guarded read inside the
/// annotated caller. Waiting is only legal on the *innermost* held lock
/// (checked in Debug): a wait releases exactly one mutex, so sleeping while
/// holding an outer one is a latent deadlock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) {
    Mutex& mu = pre_wait(lock);
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with `lock`
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& d) {
    Mutex& mu = pre_wait(lock);
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, d);
    native.release();
    return st;
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& tp) {
    Mutex& mu = pre_wait(lock);
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_until(native, tp);
    native.release();
    return st;
  }

 private:
  static Mutex& pre_wait(MutexLock& lock) noexcept {
    Mutex& mu = *lock.mutex();
#if XBS_LOCK_RANK_CHECKS
    detail::rank_wait(&mu, mu.rank());
#endif
    return mu;
  }

  std::condition_variable cv_;
};

}  // namespace xbs::common
