/// \file ring.hpp
/// \brief Ring-buffer helpers shared by every streaming delay line.
///
/// Convention (used by the fixed-point stages, the reference FirFilter, and
/// any carry-over State struct): the ring holds the most recent |ring|
/// samples, `head` is the next write slot and therefore always holds the
/// oldest retained sample; a fresh state is all zeros with head == 0.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace xbs {

/// Copy the newest min(|ring|, |x|) samples of \p x into the ring, leaving
/// it exactly as if every sample of \p x had been streamed through one at a
/// time.
template <typename Ring, typename Sample>
void ring_carry(Ring& ring, std::size_t& head, std::span<const Sample> x) {
  const std::size_t w = ring.size();
  const std::size_t n = x.size();
  // A zero-width ring retains nothing: explicit no-op so the `% w` advance
  // below can never divide by zero (reachable from a hand-built degenerate
  // stage config; head stays pinned at its only valid value).
  if (w == 0) {
    head = 0;
    return;
  }
  assert(head < w);
  if (n >= w) {
    for (std::size_t i = 0; i < w; ++i) ring[i] = x[n - w + i];
    head = 0;
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      ring[head] = x[i];
      head = (head + 1) % w;
    }
  }
}

/// Write the last |ring|-1 retained samples, oldest first, into
/// dst[0 .. |ring|-2] — the history prefix a resumable chunked transform
/// prepends to its padded input (tap/window j of chunk output i then reads
/// the same operand the streaming scalar path would).
template <typename Ring, typename Dst>
void ring_history_prefix(const Ring& ring, std::size_t head, Dst& dst) {
  const std::size_t w = ring.size();
  // Zero-width rings have no history (and `% w` must never run): no-op.
  if (w == 0) return;
  assert(head < w);
  for (std::size_t j = 0; j + 1 < w; ++j) dst[j] = ring[(head + 1 + j) % w];
}

}  // namespace xbs
