/// \file ring.hpp
/// \brief Ring-buffer helpers shared by every streaming delay line, plus the
/// bounded buffer ring behind the serving layer's loanable-chunk ingest.
///
/// Convention (used by the fixed-point stages, the reference FirFilter, and
/// any carry-over State struct): the ring holds the most recent |ring|
/// samples, `head` is the next write slot and therefore always holds the
/// oldest retained sample; a fresh state is all zeros with head == 0.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace xbs {

/// A bounded LIFO ring of reusable heap buffers (or any movable object that
/// is expensive to re-create). Producers take() a recycled buffer instead of
/// allocating; consumers put() it back instead of freeing. LIFO order keeps
/// the hottest buffer (the one most recently touched, still in cache) first
/// in line. The bound caps idle memory: put() on a full ring tells the
/// caller to let the buffer die.
///
/// Not thread-safe by itself — the serving layer keeps one ring per session
/// slot under the owning shard's lock, where take/put are O(1) moves.
template <typename T>
class BufferRing {
 public:
  BufferRing() = default;
  explicit BufferRing(std::size_t capacity) : cap_(capacity) { items_.reserve(capacity); }

  /// Adjust the bound. Items beyond the new bound are released immediately;
  /// storage for the bound is reserved up front so put() never allocates
  /// (it runs under locks and inside noexcept cleanup paths).
  void set_capacity(std::size_t capacity) {
    cap_ = capacity;
    if (items_.size() > cap_) items_.resize(cap_);
    items_.reserve(cap_);
  }

  /// Take the most recently recycled item. False when empty (caller makes a
  /// fresh one).
  [[nodiscard]] bool take(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.back());
    items_.pop_back();
    return true;
  }

  /// Recycle an item. False when the ring is at capacity (caller drops it).
  bool put(T&& item) {
    if (items_.size() >= cap_) return false;
    items_.push_back(std::move(item));
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }

 private:
  std::vector<T> items_;
  std::size_t cap_ = 0;
};

/// Copy the newest min(|ring|, |x|) samples of \p x into the ring, leaving
/// it exactly as if every sample of \p x had been streamed through one at a
/// time.
template <typename Ring, typename Sample>
void ring_carry(Ring& ring, std::size_t& head, std::span<const Sample> x) {
  const std::size_t w = ring.size();
  const std::size_t n = x.size();
  // A zero-width ring retains nothing: explicit no-op so the `% w` advance
  // below can never divide by zero (reachable from a hand-built degenerate
  // stage config; head stays pinned at its only valid value).
  if (w == 0) {
    head = 0;
    return;
  }
  assert(head < w);
  if (n >= w) {
    for (std::size_t i = 0; i < w; ++i) ring[i] = x[n - w + i];
    head = 0;
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      ring[head] = x[i];
      head = (head + 1) % w;
    }
  }
}

/// Write the last |ring|-1 retained samples, oldest first, into
/// dst[0 .. |ring|-2] — the history prefix a resumable chunked transform
/// prepends to its padded input (tap/window j of chunk output i then reads
/// the same operand the streaming scalar path would).
template <typename Ring, typename Dst>
void ring_history_prefix(const Ring& ring, std::size_t head, Dst& dst) {
  const std::size_t w = ring.size();
  // Zero-width rings have no history (and `% w` must never run): no-op.
  if (w == 0) return;
  assert(head < w);
  for (std::size_t j = 0; j + 1 < w; ++j) dst[j] = ring[(head + 1 + j) % w];
}

}  // namespace xbs
