/// \file fixed.hpp
/// \brief Fixed-point (Qm.n) helpers and saturating conversions.
///
/// The Pan-Tompkins datapath in the paper is an integer/fixed-point ASIC
/// pipeline fed by a 16-bit ADC. These helpers centralize quantization,
/// saturation and rescaling so every stage states its numeric contract
/// explicitly.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "xbs/common/types.hpp"

namespace xbs {

/// Saturate a 64-bit value into the signed range of \p bits bits.
[[nodiscard]] constexpr i64 saturate_to_bits(i64 v, int bits) noexcept {
  assert(bits >= 2 && bits <= 64);
  if (bits == 64) return v;
  const i64 hi = (i64{1} << (bits - 1)) - 1;
  const i64 lo = -(i64{1} << (bits - 1));
  return std::clamp(v, lo, hi);
}

/// Saturate to the canonical 16-bit ADC range.
[[nodiscard]] constexpr i32 saturate_i16(i64 v) noexcept {
  return static_cast<i32>(saturate_to_bits(v, 16));
}

/// Saturate to 32-bit.
[[nodiscard]] constexpr i32 saturate_i32(i64 v) noexcept {
  return static_cast<i32>(
      std::clamp<i64>(v, std::numeric_limits<i32>::min(), std::numeric_limits<i32>::max()));
}

/// Arithmetic shift right with rounding-to-nearest (ties away from zero).
/// A non-positive \p shift means a left shift by -shift, saturated to the
/// i64 range. All intermediate arithmetic runs on u64 magnitudes: the naive
/// forms (`v << -shift`, `v + bias`, `-v`) are signed-overflow UB at the
/// range boundaries (e.g. INT64_MIN), which long-running streams will
/// eventually feed through accumulated datapaths.
/// The u64 magnitude trick below (`u64{0} - mag` two's-complement negation,
/// left-shifting a sign-extended bit pattern) is deliberate modular
/// arithmetic — exempt from the -fsanitize=integer wrap checks.
XBS_NO_SANITIZE_INTEGER [[nodiscard]] constexpr i64 shift_round(i64 v, int shift) noexcept {
  assert(shift > -64 && shift < 64);
  constexpr i64 hi = std::numeric_limits<i64>::max();
  constexpr i64 lo = std::numeric_limits<i64>::min();
  if (shift <= 0) {
    const int left = -shift;
    if (v == 0 || left == 0) return v;
    if (left >= 64 || v > (hi >> left) || v < (lo >> left)) return v > 0 ? hi : lo;
    return static_cast<i64>(static_cast<u64>(v) << left);
  }
  if (shift >= 64) return 0;
  // Round the magnitude in u64 (no overflow: |v| + bias <= 2^63 + 2^62),
  // then restore the sign; the rounded magnitude never exceeds 2^62, so the
  // cast back and the negation are in range.
  u64 mag = static_cast<u64>(v);
  if (v < 0) mag = u64{0} - mag;
  const u64 r = (mag + (u64{1} << (shift - 1))) >> shift;
  return v < 0 ? -static_cast<i64>(r) : static_cast<i64>(r);
}

/// Description of a Qm.n fixed-point format (m integer bits incl. sign, n
/// fractional bits).
struct QFormat {
  int integer_bits = 16;   ///< including the sign bit
  int fraction_bits = 0;   ///< number of fractional bits

  [[nodiscard]] constexpr int total_bits() const noexcept {
    return integer_bits + fraction_bits;
  }
  [[nodiscard]] constexpr double scale() const noexcept {
    return static_cast<double>(u64{1} << fraction_bits);
  }
  [[nodiscard]] constexpr double max_value() const noexcept {
    return (std::pow(2.0, total_bits() - 1) - 1.0) / scale();
  }
  [[nodiscard]] constexpr double min_value() const noexcept {
    return -std::pow(2.0, total_bits() - 1) / scale();
  }
};

/// Quantize a real value into a Qm.n integer with saturation.
[[nodiscard]] inline i64 quantize(double v, const QFormat& q) noexcept {
  const double scaled = std::nearbyint(v * q.scale());
  const double hi = std::pow(2.0, q.total_bits() - 1) - 1.0;
  const double lo = -std::pow(2.0, q.total_bits() - 1);
  return static_cast<i64>(std::clamp(scaled, lo, hi));
}

/// Convert a Qm.n integer back to a real value.
[[nodiscard]] constexpr double dequantize(i64 v, const QFormat& q) noexcept {
  return static_cast<double>(v) / q.scale();
}

/// Quantize a whole real-valued signal into fixed point (saturating).
[[nodiscard]] std::vector<i32> quantize_signal(std::span<const double> signal, const QFormat& q);

/// Convert a fixed-point signal back to doubles.
[[nodiscard]] std::vector<double> dequantize_signal(std::span<const i32> signal, const QFormat& q);

}  // namespace xbs
