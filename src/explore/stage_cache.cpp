#include "xbs/explore/stage_cache.hpp"

namespace xbs::explore {
namespace {

using pantompkins::PipelineResult;
using pantompkins::Stage;

std::vector<i32>& mutable_signal(PipelineResult& r, int s) {
  switch (static_cast<Stage>(s)) {
    case Stage::Lpf: return r.lpf;
    case Stage::Hpf: return r.hpf;
    case Stage::Der: return r.der;
    case Stage::Sqr: return r.sqr;
    case Stage::Mwi: return r.mwi;
  }
  return r.mwi;  // unreachable
}

}  // namespace

MemoizedPipelineRunner::MemoizedPipelineRunner(std::vector<ecg::DigitizedRecord> records)
    : MemoizedPipelineRunner(share_records(std::move(records))) {}

MemoizedPipelineRunner::MemoizedPipelineRunner(SharedRecords records)
    : records_(std::move(records)), cache_(records_->size()) {}

const PipelineResult& MemoizedPipelineRunner::run_filters(
    std::size_t i, const pantompkins::PipelineConfig& cfg) {
  RecordCache& rc = cache_[i];
  // The longest cached prefix whose configuration is unchanged stays as-is.
  int first_dirty = 0;
  while (first_dirty < rc.valid_stages &&
         cfg.stage[static_cast<std::size_t>(first_dirty)] ==
             rc.cfg[static_cast<std::size_t>(first_dirty)]) {
    ++first_dirty;
  }
  ++stats_.runs;
  stats_.stage_hits += static_cast<u64>(first_dirty);
  stats_.stage_recomputes += static_cast<u64>(pantompkins::kNumStages - first_dirty);
  if (first_dirty < pantompkins::kNumStages) {
    rc.detect_valid = false;
    for (int s = first_dirty; s < pantompkins::kNumStages; ++s) {
      const auto su = static_cast<std::size_t>(s);
      const std::span<const i32> input =
          s == 0 ? std::span<const i32>((*records_)[i].adu)
                 : std::span<const i32>(mutable_signal(rc.result, s - 1));
      mutable_signal(rc.result, s) =
          pantompkins::run_stage(static_cast<Stage>(s), cfg.stage[su], input,
                                 &rc.result.ops[su]);
      rc.cfg[su] = cfg.stage[su];
    }
    rc.valid_stages = pantompkins::kNumStages;
  }
  return rc.result;
}

const PipelineResult& MemoizedPipelineRunner::run(std::size_t i,
                                                  const pantompkins::PipelineConfig& cfg) {
  RecordCache& rc = cache_[i];
  (void)run_filters(i, cfg);
  if (rc.detect_valid && rc.detect_params == cfg.detector) {
    ++stats_.detect_hits;
  } else {
    rc.result.detection =
        pantompkins::detect_qrs(rc.result.mwi, rc.result.hpf, (*records_)[i].adu, cfg.detector);
    rc.detect_valid = true;
    rc.detect_params = cfg.detector;
    ++stats_.detect_recomputes;
  }
  return rc.result;
}

}  // namespace xbs::explore
