#include "xbs/explore/timing.hpp"

#include <cmath>

namespace xbs::explore {

double ExplorationTimeModel::exhaustive_evaluations(int n_stages) const noexcept {
  const double per_stage =
      static_cast<double>(lsb_options_full) * adder_kinds * mult_kinds;
  return std::pow(per_stage, n_stages);
}

double ExplorationTimeModel::heuristic_evaluations(int n_stages) const noexcept {
  const double lsb_grid = std::pow(static_cast<double>(lsb_options_step2), n_stages);
  return static_cast<double>(adder_kinds) * mult_kinds * lsb_grid;
}

}  // namespace xbs::explore
