#include "xbs/explore/exhaustive.hpp"

namespace xbs::explore {

const GridPoint* GridResult::best() const noexcept {
  const GridPoint* best = nullptr;
  for (const auto& p : points) {
    if (!p.satisfied) continue;
    if (best == nullptr || p.energy_reduction > best->energy_reduction) best = &p;
  }
  return best;
}

namespace {

/// Recursively enumerate per-stage (LSB, Add, Mult) choices.
void enumerate(const std::vector<StageSpace>& spaces, const ModuleLists& lists,
               bool per_stage_modules, std::size_t stage_idx, Design& current,
               const std::function<void(const Design&)>& visit) {
  if (stage_idx == spaces.size()) {
    visit(current);
    return;
  }
  const StageSpace& sp = spaces[stage_idx];
  for (const int lsb : sp.lsb_list_ascending) {
    if (lsb == 0) {
      current.push_back(StageDesign{sp.stage, 0, lists.adders.front(), lists.mults.front()});
      enumerate(spaces, lists, per_stage_modules, stage_idx + 1, current, visit);
      current.pop_back();
      continue;
    }
    for (const MultKind mult : lists.mults) {
      for (const AdderKind add : lists.adders) {
        current.push_back(StageDesign{sp.stage, lsb, add, mult});
        enumerate(spaces, lists, per_stage_modules, stage_idx + 1, current, visit);
        current.pop_back();
        if (!per_stage_modules) break;  // module pair fixed globally: handled by caller
      }
      if (!per_stage_modules) break;
    }
  }
}

GridResult run_grid(const std::vector<StageSpace>& spaces, const ModuleLists& lists,
                    bool per_stage_modules, QualityEvaluator& evaluator,
                    const StageEnergyModel& energy, double quality_constraint) {
  GridResult result;
  // The enumeration varies the last stage in `spaces` fastest, so when the
  // caller lists stages in pipeline order every inner-loop step changes only
  // a suffix of the pipeline and the evaluator's stage cache serves the
  // unchanged prefix without re-simulation.
  const StageCacheStats cache_before =
      evaluator.cache_stats() != nullptr ? *evaluator.cache_stats() : StageCacheStats{};
  for (const Design& d : enumerate_grid_designs(spaces, lists, per_stage_modules)) {
    GridPoint p;
    p.design = d;
    p.quality = evaluator.evaluate(d);
    p.energy_reduction = energy.energy_reduction(d);
    p.satisfied = p.quality >= quality_constraint;
    result.points.push_back(std::move(p));
  }
  result.evaluations = static_cast<int>(result.points.size());
  if (evaluator.cache_stats() != nullptr) {
    result.cache = *evaluator.cache_stats() - cache_before;
  }
  return result;
}

}  // namespace

std::vector<Design> enumerate_grid_designs(const std::vector<StageSpace>& spaces,
                                           const ModuleLists& lists,
                                           bool per_stage_modules) {
  std::vector<Design> designs;
  Design current;
  const auto visit = [&](const Design& d) { designs.push_back(d); };
  if (per_stage_modules) {
    enumerate(spaces, lists, true, 0, current, visit);
  } else {
    // Heuristic: one (Add, Mult) pair for the entire design.
    for (const MultKind mult : lists.mults) {
      for (const AdderKind add : lists.adders) {
        const ModuleLists fixed{{add}, {mult}};
        enumerate(spaces, fixed, false, 0, current, visit);
      }
    }
  }
  return designs;
}

GridResult exhaustive_explore(const std::vector<StageSpace>& spaces, const ModuleLists& lists,
                              QualityEvaluator& evaluator, const StageEnergyModel& energy,
                              double quality_constraint) {
  return run_grid(spaces, lists, true, evaluator, energy, quality_constraint);
}

GridResult heuristic_explore(const std::vector<StageSpace>& spaces, const ModuleLists& lists,
                             QualityEvaluator& evaluator, const StageEnergyModel& energy,
                             double quality_constraint) {
  return run_grid(spaces, lists, false, evaluator, energy, quality_constraint);
}

}  // namespace xbs::explore
