#include "xbs/explore/design.hpp"

#include <sstream>

namespace xbs::explore {

std::string StageDesign::to_string() const {
  std::ostringstream os;
  os << xbs::pantompkins::to_string(stage) << ":" << lsbs << "/" << xbs::to_string(add_kind)
     << "/" << xbs::to_string(mult_kind);
  return os.str();
}

std::string to_string(const Design& d) {
  std::ostringstream os;
  bool first = true;
  for (const auto& sd : d) {
    if (!first) os << " ";
    os << sd.to_string();
    first = false;
  }
  if (d.empty()) os << "(accurate)";
  return os.str();
}

std::optional<StageDesign> find_stage(const Design& d, pantompkins::Stage s) {
  for (const auto& sd : d) {
    if (sd.stage == s) return sd;
  }
  return std::nullopt;
}

Design merge(const Design& base, const Design& overlay) {
  Design out = base;
  for (const auto& sd : overlay) {
    bool replaced = false;
    for (auto& existing : out) {
      if (existing.stage == sd.stage) {
        existing = sd;
        replaced = true;
        break;
      }
    }
    if (!replaced) out.push_back(sd);
  }
  return out;
}

pantompkins::PipelineConfig to_pipeline_config(const Design& d) {
  pantompkins::PipelineConfig cfg;  // all stages exact by default
  for (const auto& sd : d) {
    cfg.stage[static_cast<std::size_t>(sd.stage)] = sd.arith_config();
  }
  return cfg;
}

std::vector<int> default_lsb_list(pantompkins::Stage s) {
  const int max = pantompkins::stage_inventory(s).max_lsbs;
  std::vector<int> list;
  for (int k = 0; k <= max; k += 2) list.push_back(k);
  return list;
}

}  // namespace xbs::explore
