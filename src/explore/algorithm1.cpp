#include "xbs/explore/algorithm1.hpp"

#include <algorithm>
#include <stdexcept>

namespace xbs::explore {
namespace {

/// Current committed configuration: one (possibly accurate) StageDesign per
/// stage in stage-list order.
Design committed_design(const std::vector<StageDesign>& per_stage) {
  Design d;
  for (const auto& sd : per_stage) {
    if (sd.lsbs > 0) d.push_back(sd);
  }
  return d;
}

}  // namespace

Algorithm1Result design_generation(std::vector<StageSpace> spaces, const ModuleLists& lists,
                                   QualityEvaluator& evaluator, const StageEnergyModel& energy,
                                   double quality_constraint) {
  if (spaces.empty()) throw std::invalid_argument("design_generation: no stages");
  if (lists.adders.empty() || lists.mults.empty()) {
    throw std::invalid_argument("design_generation: empty module lists");
  }
  Algorithm1Result result;
  evaluator.reset_evaluations();
  const StageCacheStats cache_before =
      evaluator.cache_stats() != nullptr ? *evaluator.cache_stats() : StageCacheStats{};

  // Line 3: AscendingSort(StageList, EnergySavings) — least-saving stage
  // first.
  std::stable_sort(spaces.begin(), spaces.end(), [](const StageSpace& a, const StageSpace& b) {
    return a.max_energy_savings < b.max_energy_savings;
  });

  // Committed architecture per stage (starts accurate: 0 LSBs).
  std::vector<StageDesign> arch;
  arch.reserve(spaces.size());
  for (const auto& sp : spaces) {
    arch.push_back(StageDesign{sp.stage, 0, lists.adders.front(), lists.mults.front()});
  }

  auto evaluate_point = [&](int phase) -> double {
    const Design d = committed_design(arch);
    const double q = evaluator.evaluate(d);
    result.log.push_back(ExploredPoint{d, q, q >= quality_constraint, phase});
    return q;
  };

  // ---- Phase 1 (lines 4-16): first stage, aggressive end first, accept the
  // first satisfying design.
  {
    const StageSpace& sp = spaces.front();
    StageDesign& sd = arch.front();
    std::vector<int> lsb_desc(sp.lsb_list_ascending.rbegin(), sp.lsb_list_ascending.rend());
    bool found = false;
    for (const int lsb : lsb_desc) {
      for (const MultKind mult : lists.mults) {
        for (const AdderKind add : lists.adders) {
          sd = StageDesign{sp.stage, lsb, add, mult};
          if (evaluate_point(1) >= quality_constraint) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (found) break;
    }
    if (!found) sd = StageDesign{sp.stage, 0, lists.adders.front(), lists.mults.front()};
  }

  // Satisfying designs of the previous stage (Stage1 array of the
  // pseudo-code) and of the current stage (Stage2).
  std::vector<StageDesign> stage1{arch.front()};
  std::vector<StageDesign> stage2;

  // ---- Lines 17-51: phases 2 and 3 for every remaining stage.
  for (std::size_t i = 1; i < spaces.size(); ++i) {
    const StageSpace& sp = spaces[i];
    StageDesign& cur = arch[i];
    StageDesign& prev = arch[i - 1];
    stage2.clear();

    // Phase 2 (lines 19-31): reversed lists — gentle end first; keep going
    // while the constraint holds, stop at the first violation.
    {
      bool violated = false;
      for (const int lsb : sp.lsb_list_ascending) {
        if (lsb == 0) continue;  // zero approximation == the committed start
        for (auto mult_it = lists.mults.rbegin(); mult_it != lists.mults.rend(); ++mult_it) {
          for (auto add_it = lists.adders.rbegin(); add_it != lists.adders.rend(); ++add_it) {
            cur = StageDesign{sp.stage, lsb, *add_it, *mult_it};
            if (evaluate_point(2) < quality_constraint) {
              violated = true;
              break;
            }
            stage2.push_back(cur);
          }
          if (violated) break;
        }
        if (violated) break;
      }
      // Roll back to the last satisfying configuration of this stage.
      cur = stage2.empty() ? StageDesign{sp.stage, 0, lists.adders.front(), lists.mults.front()}
                           : stage2.back();
    }

    // Phase 3 (lines 32-46): diagonal +/-2 LSB trade between stage i-1 and i.
    {
      const StageDesign prev_before = prev;
      const StageDesign cur_before = cur;
      int lsb1 = prev.lsbs;
      int lsb2 = cur.lsbs;
      const int cur_max = sp.lsb_list_ascending.empty() ? 0 : sp.lsb_list_ascending.back();
      while (lsb1 >= 2) {
        lsb1 -= 2;
        lsb2 = std::min(lsb2 + 2, cur_max);
        for (const MultKind mult : lists.mults) {
          for (const AdderKind add : lists.adders) {
            prev = StageDesign{spaces[i - 1].stage, lsb1, add, mult};
            cur = StageDesign{sp.stage, lsb2, add, mult};
            if (evaluate_point(3) >= quality_constraint) {
              stage1.push_back(prev);
              stage2.push_back(cur);
            }
          }
        }
      }
      prev = prev_before;
      cur = cur_before;
    }

    // Lines 47-48: commit the maximum-energy-saving satisfying design of
    // each stage (independently, per the pseudo-code).
    auto best_of = [&](const std::vector<StageDesign>& cands,
                       const StageDesign& fallback) -> StageDesign {
      StageDesign best = fallback;
      double best_red = energy.stage_energy_reduction(fallback.stage,
                                                      fallback.arith_config());
      for (const auto& c : cands) {
        const double red = energy.stage_energy_reduction(c.stage, c.arith_config());
        if (red > best_red) {
          best = c;
          best_red = red;
        }
      }
      return best;
    };
    const StageDesign acc_prev{spaces[i - 1].stage, 0, lists.adders.front(),
                               lists.mults.front()};
    const StageDesign acc_cur{sp.stage, 0, lists.adders.front(), lists.mults.front()};
    prev = best_of(stage1, acc_prev);
    cur = best_of(stage2, acc_cur);

    // The pseudo-code selects the two stages independently, which can pair
    // configurations never evaluated together; re-validate and fall back to
    // the last jointly-satisfying point if needed.
    if (evaluate_point(3) < quality_constraint) {
      for (auto it = result.log.rbegin(); it != result.log.rend(); ++it) {
        if (it->satisfied) {
          for (std::size_t s = 0; s < spaces.size(); ++s) {
            const auto sd = find_stage(it->design, spaces[s].stage);
            arch[s] = sd ? *sd
                         : StageDesign{spaces[s].stage, 0, lists.adders.front(),
                                       lists.mults.front()};
          }
          break;
        }
      }
    }

    // Lines 49-50: roll the arrays.
    stage1 = stage2;
    stage2.clear();
  }

  // Final re-validation of the committed configuration.
  result.best = committed_design(arch);
  result.best_quality = evaluator.evaluate(result.best);
  result.log.push_back(ExploredPoint{result.best, result.best_quality,
                                     result.best_quality >= quality_constraint, 3});
  result.feasible = result.best_quality >= quality_constraint;
  result.energy_reduction = energy.energy_reduction(result.best);
  result.evaluations = static_cast<int>(result.log.size());
  if (evaluator.cache_stats() != nullptr) {
    result.cache = *evaluator.cache_stats() - cache_before;
  }
  return result;
}

}  // namespace xbs::explore
