/// \file pareto.hpp
/// \brief Pareto-front extraction over (quality, energy reduction) — used
/// for the Fig. 12 design selection (§6.2: "we obtain two Pareto-optimal
/// points from the design space by extracting the Pareto-frontier").
#pragma once

#include <vector>

#include "xbs/explore/exhaustive.hpp"

namespace xbs::explore {

/// Indices of the Pareto-optimal points of \p points, maximizing both
/// quality and energy reduction. Output is sorted by descending quality.
[[nodiscard]] std::vector<std::size_t> pareto_front(const std::vector<GridPoint>& points);

}  // namespace xbs::explore
