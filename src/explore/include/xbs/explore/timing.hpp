/// \file timing.hpp
/// \brief Exploration-duration model (paper Fig. 11).
///
/// The paper times one behavioural evaluation of a 20,000-sample recording
/// at ~300 s (§6.1) and compares three search strategies as the number of
/// approximated stages grows:
///  - *exhaustive*: the joint cross product of every stage's full parameter
///    range — LSBs 0..16 at step 1, all 6 adders, all 3 multipliers;
///  - *heuristic*: the restricted grid of §6.1 — one global module pair,
///    LSBs at multiples of two;
///  - *Algorithm 1*: the measured number of evaluations of the three-phase
///    methodology.
#pragma once

#include "xbs/common/types.hpp"

namespace xbs::explore {

/// Duration model: evaluations x seconds-per-evaluation.
struct ExplorationTimeModel {
  double seconds_per_evaluation = 300.0;  ///< paper §6.1: 20k samples ~ 300 s
  int lsb_options_full = 17;              ///< 0..16 step 1
  int lsb_options_step2 = 9;              ///< 0..16 step 2
  int adder_kinds = 6;
  int mult_kinds = 3;

  /// Joint exhaustive evaluations for n approximated stages.
  [[nodiscard]] double exhaustive_evaluations(int n_stages) const noexcept;

  /// Heuristic evaluations for n stages (global module pair, step-2 LSBs).
  [[nodiscard]] double heuristic_evaluations(int n_stages) const noexcept;

  [[nodiscard]] double hours(double evaluations) const noexcept {
    return evaluations * seconds_per_evaluation / 3600.0;
  }
  [[nodiscard]] double years(double evaluations) const noexcept {
    return evaluations * seconds_per_evaluation / (3600.0 * 24.0 * 365.25);
  }
};

}  // namespace xbs::explore
