/// \file algorithm1.hpp
/// \brief The paper's three-phase design generation methodology
/// (Algorithm 1, §4.3).
///
/// Phase 1 configures the *least* energy-lucrative stage first (the stage
/// list is sorted ascending by maximum energy savings), scanning from the
/// aggressive end of the approximation spectrum (maximum LSBs, cheapest
/// modules) and accepting the first quality-satisfying design. Phase 2 walks
/// each subsequent stage from the gentle end (reversed lists), collecting
/// satisfying designs until the first violation. Phase 3 trades LSBs
/// diagonally between the current stage pair (+/- 2), keeping satisfying
/// pairs, then commits the maximum-energy-saving design of each stage.
///
/// Where the pseudo-code is ambiguous the implementation follows the
/// surrounding prose and re-validates the committed configuration at the
/// end, falling back to the last known-satisfying combination if the
/// independently-selected pair violates the constraint (the paper's final
/// designs are always re-validated against the constraint too).
#pragma once

#include <vector>

#include "xbs/explore/design.hpp"
#include "xbs/explore/energy_model.hpp"
#include "xbs/explore/evaluator.hpp"

namespace xbs::explore {

/// One evaluated point in the exploration log.
struct ExploredPoint {
  Design design;        ///< the full candidate (all configured stages)
  double quality = 0;   ///< evaluator metric
  bool satisfied = false;
  int phase = 0;        ///< 1, 2 or 3
};

/// Outcome of the design generation methodology.
struct Algorithm1Result {
  Design best;                        ///< committed per-stage configuration
  double best_quality = 0.0;          ///< re-validated quality of `best`
  double energy_reduction = 1.0;      ///< vs the accurate pipeline
  std::vector<ExploredPoint> log;     ///< every evaluated design, in order
  int evaluations = 0;                ///< == log.size()
  bool feasible = false;              ///< some satisfying design was found
  StageCacheStats cache{};            ///< stage-cache activity during the run
};

/// Run Algorithm 1 over the given stages.
///
/// \param spaces     one search space per stage to approximate
/// \param lists      elementary module lists, cheapest-first
/// \param evaluator  quality evaluation (PSNR stage or accuracy stage)
/// \param energy     energy model used for the sort and Best() selection
/// \param quality_constraint  the user-defined constraint (same unit as the
///        evaluator's metric)
[[nodiscard]] Algorithm1Result design_generation(std::vector<StageSpace> spaces,
                                                 const ModuleLists& lists,
                                                 QualityEvaluator& evaluator,
                                                 const StageEnergyModel& energy,
                                                 double quality_constraint);

}  // namespace xbs::explore
