/// \file exhaustive.hpp
/// \brief Exhaustive and heuristic baseline explorers (paper §6.1, Fig. 11).
#pragma once

#include <functional>
#include <vector>

#include "xbs/explore/design.hpp"
#include "xbs/explore/energy_model.hpp"
#include "xbs/explore/evaluator.hpp"

namespace xbs::explore {

/// One fully evaluated grid point.
struct GridPoint {
  Design design;
  double quality = 0.0;
  double energy_reduction = 1.0;
  bool satisfied = false;
};

/// Result of a grid exploration.
struct GridResult {
  std::vector<GridPoint> points;
  int evaluations = 0;
  /// Stage-cache activity during this exploration (zeroes when the evaluator
  /// does not memoize). The enumeration varies the deepest stage fastest, so
  /// unchanged pipeline prefixes are served from cache.
  StageCacheStats cache{};
  /// Best = maximum energy reduction among constraint-satisfying points.
  [[nodiscard]] const GridPoint* best() const noexcept;
};

/// Materialize the grid a run would evaluate, in evaluation order (deepest
/// stage varies fastest — the stage-cache-friendly order). `per_stage_modules
/// = true` is the exhaustive grid (every module pair per stage);
/// `false` is the heuristic grid (one global module pair per design). The
/// parallel engine shards this list; the serial explorers walk it directly,
/// so both evaluate the identical design sequence.
[[nodiscard]] std::vector<Design> enumerate_grid_designs(
    const std::vector<StageSpace>& spaces, const ModuleLists& lists,
    bool per_stage_modules);

/// Exhaustively evaluate the cross product of every stage's LSB list with
/// the given module lists applied per stage (the 9x9 = 81-combination
/// experiment of Table 2 when called with the two pre-processing stages and
/// singleton module lists).
[[nodiscard]] GridResult exhaustive_explore(const std::vector<StageSpace>& spaces,
                                            const ModuleLists& lists,
                                            QualityEvaluator& evaluator,
                                            const StageEnergyModel& energy,
                                            double quality_constraint);

/// The paper's "heuristic" baseline (§6.1): one elementary adder and
/// multiplier pair for the whole design, LSBs restricted to multiples of two
/// — i.e. the same grid as exhaustive_explore but with the module pair
/// chosen globally instead of per stage.
[[nodiscard]] GridResult heuristic_explore(const std::vector<StageSpace>& spaces,
                                           const ModuleLists& lists,
                                           QualityEvaluator& evaluator,
                                           const StageEnergyModel& energy,
                                           double quality_constraint);

}  // namespace xbs::explore
