/// \file evaluator.hpp
/// \brief Behavioural quality evaluation of candidate designs — the
/// Evaluate() step of Algorithm 1, run on the bit-accurate pipeline.
///
/// The methodology evaluates quality twice (paper §4): after data
/// pre-processing (signal quality of the HPF output, PSNR or SSIM) and after
/// signal processing (peak-detection accuracy). Each evaluator owns its
/// workload records, caches the accurate reference, and counts evaluations —
/// the count drives the Fig. 11 exploration-time analysis.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "xbs/ecg/record.hpp"
#include "xbs/explore/design.hpp"
#include "xbs/explore/stage_cache.hpp"

namespace xbs::explore {

/// Interface: higher return value = better quality.
class QualityEvaluator {
 public:
  virtual ~QualityEvaluator() = default;

  /// Evaluate the quality metric of a design (absent stages accurate).
  [[nodiscard]] double evaluate(const Design& d) {
    ++evaluations_;
    return evaluate_impl(d);
  }

  [[nodiscard]] virtual std::string_view metric_name() const noexcept = 0;
  /// 64-bit: large exhaustive sweeps (16^5 designs x records x repeats)
  /// overflow an int counter.
  [[nodiscard]] i64 evaluations() const noexcept { return evaluations_; }
  void reset_evaluations() noexcept { evaluations_ = 0; }

  /// Stage-cache activity, when this evaluator memoizes pipeline stages
  /// (both built-in evaluators do); nullptr otherwise.
  [[nodiscard]] virtual const StageCacheStats* cache_stats() const noexcept {
    return nullptr;
  }

 protected:
  [[nodiscard]] virtual double evaluate_impl(const Design& d) = 0;

 private:
  i64 evaluations_ = 0;
};

/// The accurate per-record HPF reference signals a PreprocPsnrEvaluator
/// compares against — computed once and shared between the per-shard
/// evaluators of a parallel exploration.
using SharedPsnrReference = std::shared_ptr<const std::vector<std::vector<double>>>;

/// Compute the accurate reference for a workload (one accurate pipeline run
/// per record).
[[nodiscard]] SharedPsnrReference make_psnr_reference(
    const std::vector<ecg::DigitizedRecord>& records);

/// Pre-processing quality stage: mean PSNR (dB) of the approximate HPF
/// output against the accurate HPF output across the workload records.
class PreprocPsnrEvaluator final : public QualityEvaluator {
 public:
  explicit PreprocPsnrEvaluator(std::vector<ecg::DigitizedRecord> records);
  /// Shared-workload construction (parallel shards): records and the
  /// accurate reference are shared immutably; pass a null reference to
  /// compute it locally.
  explicit PreprocPsnrEvaluator(SharedRecords records,
                                SharedPsnrReference reference = nullptr);
  ~PreprocPsnrEvaluator() override;

  [[nodiscard]] std::string_view metric_name() const noexcept override { return "PSNR [dB]"; }
  [[nodiscard]] const StageCacheStats* cache_stats() const noexcept override;

  /// Mean SSIM of the same comparison (reported alongside PSNR).
  [[nodiscard]] double ssim_of(const Design& d) const;

 protected:
  [[nodiscard]] double evaluate_impl(const Design& d) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Final quality stage: aggregate peak-detection accuracy (%) across the
/// workload records, with an optional fixed base design (the pre-processing
/// configuration chosen earlier) merged under every candidate.
class AccuracyEvaluator final : public QualityEvaluator {
 public:
  AccuracyEvaluator(std::vector<ecg::DigitizedRecord> records, Design base = {});
  /// Shared-workload construction (parallel shards): the records — including
  /// the ground-truth r_peaks the accuracy is scored against — are shared
  /// immutably across evaluators.
  explicit AccuracyEvaluator(SharedRecords records, Design base = {});
  ~AccuracyEvaluator() override;

  [[nodiscard]] std::string_view metric_name() const noexcept override {
    return "Peak detection accuracy [%]";
  }
  [[nodiscard]] const StageCacheStats* cache_stats() const noexcept override;

  /// Aggregate counts of the last evaluation (for misclassification drill-in).
  struct Counts {
    int true_positives = 0;
    int false_positives = 0;
    int false_negatives = 0;
    int truth = 0;
  };
  [[nodiscard]] Counts last_counts() const noexcept;

 protected:
  [[nodiscard]] double evaluate_impl(const Design& d) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xbs::explore
