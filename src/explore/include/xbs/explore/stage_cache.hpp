/// \file stage_cache.hpp
/// \brief Per-stage memoized pipeline evaluation for the design-space
/// explorers.
///
/// Stage s of the Pan-Tompkins chain depends only on the record and on the
/// arithmetic configurations of stages 0..s. During exploration (Algorithm 1,
/// the exhaustive/heuristic grids), consecutive candidate designs usually
/// differ in a suffix of the pipeline — the enumeration loops vary the
/// deepest stages fastest — so the runner caches each stage's output per
/// record, keyed by its StageArithConfig, and recomputes only from the first
/// stage whose configuration changed. An unchanged prefix is never
/// re-simulated. Detection (native control logic) is likewise reused when no
/// filter stage changed.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "xbs/common/types.hpp"
#include "xbs/ecg/record.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::explore {

/// A workload shared between runners/evaluators without copying: the records
/// are immutable for the lifetime of every runner holding the pointer. The
/// parallel exploration engine hands one SharedRecords to per-shard
/// evaluators so N workers share a single in-memory copy of the (potentially
/// large) record set and of its ground-truth annotations.
using SharedRecords = std::shared_ptr<const std::vector<ecg::DigitizedRecord>>;

/// Wrap a workload for sharing (one copy, then reference-counted).
[[nodiscard]] inline SharedRecords share_records(std::vector<ecg::DigitizedRecord> records) {
  return std::make_shared<const std::vector<ecg::DigitizedRecord>>(std::move(records));
}

/// Activity counters of a MemoizedPipelineRunner (per record-evaluation).
struct StageCacheStats {
  u64 runs = 0;              ///< record evaluations served
  u64 stage_hits = 0;        ///< stage outputs reused from cache
  u64 stage_recomputes = 0;  ///< stage outputs recomputed
  u64 detect_hits = 0;       ///< detections reused from cache
  u64 detect_recomputes = 0; ///< detections recomputed

  /// Fraction of stage evaluations served from cache, in [0, 1].
  [[nodiscard]] double stage_hit_rate() const noexcept {
    const u64 total = stage_hits + stage_recomputes;
    return total == 0 ? 0.0 : static_cast<double>(stage_hits) / static_cast<double>(total);
  }

  friend constexpr bool operator==(StageCacheStats, StageCacheStats) = default;
};

/// Delta between two cumulative counter snapshots (later minus earlier).
[[nodiscard]] constexpr StageCacheStats operator-(StageCacheStats a,
                                                  StageCacheStats b) noexcept {
  return StageCacheStats{a.runs - b.runs, a.stage_hits - b.stage_hits,
                         a.stage_recomputes - b.stage_recomputes,
                         a.detect_hits - b.detect_hits,
                         a.detect_recomputes - b.detect_recomputes};
}

/// Counter aggregation (merging per-shard deltas of a parallel exploration).
[[nodiscard]] constexpr StageCacheStats operator+(StageCacheStats a,
                                                  StageCacheStats b) noexcept {
  return StageCacheStats{a.runs + b.runs, a.stage_hits + b.stage_hits,
                         a.stage_recomputes + b.stage_recomputes,
                         a.detect_hits + b.detect_hits,
                         a.detect_recomputes + b.detect_recomputes};
}

/// Owns a workload of digitized records and serves pipeline evaluations with
/// per-stage prefix memoization. Results are bit-identical to a fresh
/// PanTompkinsPipeline run (the stages are deterministic block transforms;
/// asserted in tests/test_stage_cache.cpp).
class MemoizedPipelineRunner {
 public:
  explicit MemoizedPipelineRunner(std::vector<ecg::DigitizedRecord> records);
  /// Shared-workload construction: the runner keeps per-record caches of its
  /// own but reads the records through the shared immutable pointer — the
  /// form the parallel exploration workers use.
  explicit MemoizedPipelineRunner(SharedRecords records);

  [[nodiscard]] std::size_t num_records() const noexcept { return records_->size(); }
  [[nodiscard]] const ecg::DigitizedRecord& record(std::size_t i) const {
    return (*records_)[i];
  }
  [[nodiscard]] const SharedRecords& records() const noexcept { return records_; }

  /// Filter-only evaluation. The returned reference is valid until the next
  /// run/run_filters call for the same record.
  [[nodiscard]] const pantompkins::PipelineResult& run_filters(
      std::size_t i, const pantompkins::PipelineConfig& cfg);

  /// Filter + detection evaluation (same reference lifetime rule).
  [[nodiscard]] const pantompkins::PipelineResult& run(
      std::size_t i, const pantompkins::PipelineConfig& cfg);

  [[nodiscard]] const StageCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = StageCacheStats{}; }

 private:
  struct RecordCache {
    std::array<arith::StageArithConfig, pantompkins::kNumStages> cfg{};
    int valid_stages = 0;  ///< stages [0, valid_stages) of `result` match `cfg`
    bool detect_valid = false;
    pantompkins::DetectorParams detect_params{};
    pantompkins::PipelineResult result;
  };

  SharedRecords records_;
  std::vector<RecordCache> cache_;
  StageCacheStats stats_;
};

}  // namespace xbs::explore
