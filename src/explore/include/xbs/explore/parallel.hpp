/// \file parallel.hpp
/// \brief The multi-core exploration engine: a small work-stealing worker
/// pool running exhaustive/heuristic grid shards and independent Algorithm 1
/// problems, with deterministic merging.
///
/// Design for determinism: the unit of work is a *shard* — a contiguous
/// slice of the enumeration order whose boundaries depend only on the
/// problem (fixed shard grain), never on the thread count or on scheduling.
/// Each shard is evaluated by a fresh evaluator built from a caller-supplied
/// factory (per-thread MemoizedPipelineRunners over a shared immutable
/// workload/accurate reference — see SharedRecords / SharedPsnrReference),
/// so a shard's points *and its stage-cache deltas* are a pure function of
/// the shard. Results are merged in shard order. Consequently the merged
/// GridResult — points, evaluation count and cache counters — is
/// bit-identical for 1, 2 or N threads (asserted in
/// tests/test_parallel_explore.cpp), and the engine can work-steal freely
/// for load balance without losing reproducibility.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "xbs/explore/algorithm1.hpp"
#include "xbs/explore/exhaustive.hpp"

namespace xbs::explore {

/// A small fork-join worker pool with per-worker deques and work stealing:
/// parallel_for seeds the workers round-robin, each worker pops its own
/// deque from the back and steals from a victim's front when empty. Task
/// outputs must go to per-task slots (the engine's shards do), which keeps
/// results independent of the stealing order.
class WorkerPool {
 public:
  /// \p threads == 0 picks hardware concurrency. The pool spawns its workers
  /// once and reuses them across parallel_for calls.
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept;

  /// Run fn(0) .. fn(n-1) across the workers; returns when all completed.
  /// The first exception thrown by any task is rethrown here (remaining
  /// tasks are skipped on a best-effort basis).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Builds one evaluator per shard. Capture a SharedRecords (and, for PSNR, a
/// SharedPsnrReference) so shards share the workload instead of copying it:
///
///   auto recs = share_records(std::move(records));
///   auto factory = [recs] { return std::make_unique<AccuracyEvaluator>(recs); };
using EvaluatorFactory = std::function<std::unique_ptr<QualityEvaluator>()>;

/// Tuning knobs of the parallel engine.
struct ParallelExploreOptions {
  unsigned threads = 0;  ///< 0 = hardware concurrency
  /// Designs per shard. Shard boundaries are a function of this grain and the
  /// problem only, so two runs with different thread counts produce
  /// bit-identical merged results; the grain trades evaluator-construction
  /// overhead against load-balance granularity.
  std::size_t shard_designs = 64;
};

/// exhaustive_explore over all cores: identical design sequence, identical
/// points, deterministic cache counters (the sum of the per-shard deltas).
[[nodiscard]] GridResult exhaustive_explore_parallel(const std::vector<StageSpace>& spaces,
                                                     const ModuleLists& lists,
                                                     const EvaluatorFactory& factory,
                                                     const StageEnergyModel& energy,
                                                     double quality_constraint,
                                                     const ParallelExploreOptions& opts = {});

/// heuristic_explore over all cores (same contract).
[[nodiscard]] GridResult heuristic_explore_parallel(const std::vector<StageSpace>& spaces,
                                                    const ModuleLists& lists,
                                                    const EvaluatorFactory& factory,
                                                    const StageEnergyModel& energy,
                                                    double quality_constraint,
                                                    const ParallelExploreOptions& opts = {});

/// One independent Algorithm 1 problem of a batch (serving many users'
/// design-generation requests, or sweeping constraints/stage subsets).
struct Algorithm1Job {
  std::vector<StageSpace> spaces;
  ModuleLists lists;
  double quality_constraint = 0.0;
};

/// Run a batch of Algorithm 1 problems across the pool, one evaluator per
/// job, results in job order — Algorithm 1 itself is inherently sequential
/// (each phase depends on the previous accept/reject), so the engine
/// parallelizes across problems, not within one. Bit-identical to running
/// the jobs serially in order.
[[nodiscard]] std::vector<Algorithm1Result> design_generation_batch(
    const std::vector<Algorithm1Job>& jobs, const EvaluatorFactory& factory,
    const StageEnergyModel& energy, unsigned threads = 0);

}  // namespace xbs::explore
