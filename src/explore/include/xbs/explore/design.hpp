/// \file design.hpp
/// \brief Design-space vocabulary: per-stage approximation choices.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "xbs/arith/unit.hpp"
#include "xbs/common/kinds.hpp"
#include "xbs/pantompkins/pipeline.hpp"
#include "xbs/pantompkins/stages.hpp"

namespace xbs::explore {

/// One stage's approximation parameters — the (LSB, Mult, Add) triple of
/// Algorithm 1.
struct StageDesign {
  pantompkins::Stage stage = pantompkins::Stage::Lpf;
  int lsbs = 0;
  AdderKind add_kind = AdderKind::Approx5;
  MultKind mult_kind = MultKind::V1;
  ApproxPolicy policy = ApproxPolicy::Moderate;

  [[nodiscard]] arith::StageArithConfig arith_config() const noexcept {
    return arith::StageArithConfig::uniform(lsbs, add_kind, mult_kind, policy);
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const StageDesign&, const StageDesign&) = default;
};

/// A (partial) design: approximation parameters for a subset of stages;
/// unlisted stages are accurate.
using Design = std::vector<StageDesign>;

/// Render a design like "LPF:10/Add5/V1 HPF:8/Add5/V1".
[[nodiscard]] std::string to_string(const Design& d);

/// Find the entry for a stage, if present.
[[nodiscard]] std::optional<StageDesign> find_stage(const Design& d, pantompkins::Stage s);

/// Merge designs (later entries override earlier ones for the same stage).
[[nodiscard]] Design merge(const Design& base, const Design& overlay);

/// Convert a design to a full pipeline configuration (absent stages exact).
[[nodiscard]] pantompkins::PipelineConfig to_pipeline_config(const Design& d);

/// The search space of one stage: the LSB sweep list (ascending) plus the
/// maximum achievable energy savings found by the resilience analysis (used
/// by Algorithm 1's stage ordering).
struct StageSpace {
  pantompkins::Stage stage = pantompkins::Stage::Lpf;
  std::vector<int> lsb_list_ascending;  ///< e.g. {0, 2, ..., 16}
  double max_energy_savings = 1.0;
};

/// Elementary module lists in *cheapest-first* order (the aggressive end of
/// the approximation spectrum, where phase 1 of Algorithm 1 starts).
struct ModuleLists {
  std::vector<AdderKind> adders{AdderKind::Approx5};
  std::vector<MultKind> mults{MultKind::V1};
};

/// Default per-stage sweep lists: step-2 LSBs up to the stage's limit
/// (paper §6.1-6.2: 16 for LPF/HPF, 4 for DER, 8 for SQR, 16 for MWI).
[[nodiscard]] std::vector<int> default_lsb_list(pantompkins::Stage s);

}  // namespace xbs::explore
