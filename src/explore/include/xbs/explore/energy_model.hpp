/// \file energy_model.hpp
/// \brief Per-stage hardware cost model backed by the netlist synthesis flow.
///
/// Stage costs are obtained by building each stage's netlist (coefficients as
/// constants), running the synthesis optimizer (constant propagation + dead
/// logic elimination — what Design Compiler does to the paper's RTL) and
/// pricing the surviving modules with the Table 1 cell data. Results are
/// cached per (stage, arithmetic configuration). A naive structural mode
/// (no optimization) is available for the ablation bench.
#pragma once

#include <vector>

#include "xbs/common/sync.hpp"
#include "xbs/explore/design.hpp"
#include "xbs/hwmodel/cell_library.hpp"

namespace xbs::explore {

/// Cost model over the five Pan-Tompkins stages.
class StageEnergyModel {
 public:
  enum class Mode {
    Optimized,  ///< netlist-built, synthesis-optimized, energy = sum of module
                ///< switching energies (default)
    Naive,      ///< structural roll-up, no optimization
    PowerDelay, ///< netlist-built, synthesis-optimized, energy = total power x
                ///< critical-path delay (the E = P*t accounting; rewards the
                ///< carry-chain cuts of the wiring adder quadratically)
  };

  explicit StageEnergyModel(Mode mode = Mode::Optimized);

  /// Full synthesis cost of one stage under the given configuration.
  [[nodiscard]] hwmodel::Cost stage_cost(pantompkins::Stage s,
                                         const arith::StageArithConfig& cfg) const;

  /// Per-sample energy (fJ) of one configured stage.
  [[nodiscard]] double stage_energy_fj(pantompkins::Stage s,
                                       const arith::StageArithConfig& cfg) const;

  /// Per-sample energy of a whole design (absent stages accurate).
  [[nodiscard]] double design_energy_fj(const Design& d) const;

  /// Energy of the fully accurate pipeline.
  [[nodiscard]] double accurate_energy_fj() const;

  /// Energy-reduction factor of a design vs the accurate pipeline.
  [[nodiscard]] double energy_reduction(const Design& d) const;

  /// Energy-reduction factor of a single stage vs its accurate self.
  [[nodiscard]] double stage_energy_reduction(pantompkins::Stage s,
                                              const arith::StageArithConfig& cfg) const;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

 private:
  struct CacheEntry {
    pantompkins::Stage stage;
    arith::StageArithConfig cfg;
    hwmodel::Cost cost;
  };
  [[nodiscard]] hwmodel::Cost compute(pantompkins::Stage s,
                                      const arith::StageArithConfig& cfg) const;

  Mode mode_;
  /// The synthesis-cost memo is shared by the parallel exploration workers
  /// (one model serves every shard), so lookups/inserts are serialized; the
  /// costs themselves are deterministic pure functions of (stage, cfg).
  /// Rank kTableCache: a leaf — synthesis runs outside the lock.
  mutable common::Mutex cache_mutex_{common::LockRank::kTableCache};
  mutable std::vector<CacheEntry> cache_ XBS_GUARDED_BY(cache_mutex_);
};

}  // namespace xbs::explore
