#include "xbs/explore/energy_model.hpp"

#include <cmath>
#include <limits>

#include "xbs/dsp/pt_coeffs.hpp"
#include "xbs/hwmodel/block_cost.hpp"
#include "xbs/netlist/builders.hpp"
#include "xbs/netlist/optimizer.hpp"
#include "xbs/netlist/synth_report.hpp"

namespace xbs::explore {
namespace {

using pantompkins::Stage;

/// Live word width feeding the MWI adder tree: squared 16-bit slope values
/// scaled by >> kSqrShift occupy up to 30 - kSqrShift bits.
constexpr int kMwiInputBits = 30 - dsp::pt::kSqrShift;

std::vector<u32> coeff_magnitudes(Stage s) {
  std::vector<u32> mags;
  switch (s) {
    case Stage::Lpf:
      for (const int t : dsp::pt::kLpfTaps) mags.push_back(static_cast<u32>(std::abs(t)));
      break;
    case Stage::Hpf:
      for (const int t : dsp::pt::kHpfTaps) mags.push_back(static_cast<u32>(std::abs(t)));
      break;
    case Stage::Der:
      for (const int t : dsp::pt::kDerTaps) mags.push_back(static_cast<u32>(std::abs(t)));
      break;
    default:
      break;
  }
  return mags;
}

}  // namespace

StageEnergyModel::StageEnergyModel(Mode mode) : mode_(mode) {}

hwmodel::Cost StageEnergyModel::compute(Stage s, const arith::StageArithConfig& cfg) const {
  if (mode_ == Mode::Naive) {
    const auto& inv = pantompkins::stage_inventory(s);
    return hwmodel::stage_cost(inv.n_adders, inv.n_mults, cfg);
  }
  netlist::Netlist nl = [&] {
    switch (s) {
      case Stage::Sqr:
        return netlist::build_squarer_stage(cfg.mult);
      case Stage::Mwi:
        return netlist::build_mwi_stage(dsp::pt::kMwiWindow, cfg.adder, kMwiInputBits);
      default:
        return netlist::build_fir_stage(netlist::FirStageSpec{coeff_magnitudes(s), cfg});
    }
  }();
  netlist::optimize(nl);
  hwmodel::Cost cost = netlist::report(nl).cost;
  if (mode_ == Mode::PowerDelay) {
    // E = P * t: total switching power times the critical combinational path.
    // Units: uW * ns = fJ.
    cost.energy_fj = cost.power_uw * cost.delay_ns;
  }
  return cost;
}

hwmodel::Cost StageEnergyModel::stage_cost(Stage s, const arith::StageArithConfig& cfg) const {
  {
    const common::MutexLock lock(cache_mutex_);
    for (const auto& e : cache_) {
      if (e.stage == s && e.cfg == cfg) return e.cost;
    }
  }
  // Synthesize outside the lock; a racing duplicate insert is harmless (the
  // cost is a pure function of the key, so both entries agree).
  const hwmodel::Cost c = compute(s, cfg);
  const common::MutexLock lock(cache_mutex_);
  cache_.push_back(CacheEntry{s, cfg, c});
  return c;
}

double StageEnergyModel::stage_energy_fj(Stage s, const arith::StageArithConfig& cfg) const {
  return stage_cost(s, cfg).energy_fj;
}

double StageEnergyModel::design_energy_fj(const Design& d) const {
  double total = 0.0;
  for (const Stage s : pantompkins::kAllStages) {
    const auto sd = find_stage(d, s);
    const arith::StageArithConfig cfg =
        sd ? sd->arith_config() : arith::StageArithConfig{};  // accurate default
    total += stage_energy_fj(s, cfg);
  }
  return total;
}

double StageEnergyModel::accurate_energy_fj() const { return design_energy_fj(Design{}); }

double StageEnergyModel::energy_reduction(const Design& d) const {
  const double approx = design_energy_fj(d);
  if (approx <= 0.0) return std::numeric_limits<double>::infinity();
  return accurate_energy_fj() / approx;
}

double StageEnergyModel::stage_energy_reduction(Stage s,
                                                const arith::StageArithConfig& cfg) const {
  const double approx = stage_energy_fj(s, cfg);
  const double acc = stage_energy_fj(s, arith::StageArithConfig{});
  if (approx <= 0.0) return std::numeric_limits<double>::infinity();
  return acc / approx;
}

}  // namespace xbs::explore
