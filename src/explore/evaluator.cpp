#include "xbs/explore/evaluator.hpp"

#include <algorithm>

#include "xbs/metrics/peaks.hpp"
#include "xbs/metrics/signal_quality.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::explore {
namespace {

std::vector<double> to_double(std::span<const i32> v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

struct PreprocPsnrEvaluator::Impl {
  std::vector<ecg::DigitizedRecord> records;
  std::vector<std::vector<double>> ref_hpf;  ///< accurate HPF output per record

  explicit Impl(std::vector<ecg::DigitizedRecord> recs) : records(std::move(recs)) {
    const pantompkins::PanTompkinsPipeline accurate;
    for (const auto& rec : records) {
      ref_hpf.push_back(to_double(accurate.run_filters(rec.adu).hpf));
    }
  }

  template <typename Metric>
  [[nodiscard]] double mean_metric(const Design& d, Metric metric) const {
    const pantompkins::PanTompkinsPipeline pipe(to_pipeline_config(d));
    double total = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto out = pipe.run_filters(records[i].adu);
      total += metric(ref_hpf[i], to_double(out.hpf));
    }
    return total / static_cast<double>(records.size());
  }
};

PreprocPsnrEvaluator::PreprocPsnrEvaluator(std::vector<ecg::DigitizedRecord> records)
    : impl_(std::make_unique<Impl>(std::move(records))) {}

PreprocPsnrEvaluator::~PreprocPsnrEvaluator() = default;

double PreprocPsnrEvaluator::evaluate_impl(const Design& d) {
  return impl_->mean_metric(d, [](const auto& ref, const auto& test) {
    return metrics::psnr_db(ref, test);
  });
}

double PreprocPsnrEvaluator::ssim_of(const Design& d) const {
  return impl_->mean_metric(d, [](const auto& ref, const auto& test) {
    return metrics::ssim(ref, test);
  });
}

struct AccuracyEvaluator::Impl {
  std::vector<ecg::DigitizedRecord> records;
  Design base;
  Counts last{};
};

AccuracyEvaluator::AccuracyEvaluator(std::vector<ecg::DigitizedRecord> records, Design base)
    : impl_(std::make_unique<Impl>()) {
  impl_->records = std::move(records);
  impl_->base = std::move(base);
}

AccuracyEvaluator::~AccuracyEvaluator() = default;

double AccuracyEvaluator::evaluate_impl(const Design& d) {
  const Design full = merge(impl_->base, d);
  const pantompkins::PanTompkinsPipeline pipe(to_pipeline_config(full));
  Counts c{};
  for (const auto& rec : impl_->records) {
    const auto out = pipe.run(rec.adu);
    const auto m = metrics::match_peaks(rec.r_peaks, out.detection.peaks,
                                        metrics::default_tolerance_samples(rec.fs_hz));
    c.true_positives += m.true_positives;
    c.false_positives += m.false_positives;
    c.false_negatives += m.false_negatives;
    c.truth += m.truth_count();
  }
  impl_->last = c;
  if (c.truth == 0) return c.false_positives == 0 ? 100.0 : 0.0;
  const double err = static_cast<double>(c.false_negatives + c.false_positives) / c.truth;
  return 100.0 * std::max(0.0, 1.0 - err);
}

AccuracyEvaluator::Counts AccuracyEvaluator::last_counts() const noexcept { return impl_->last; }

}  // namespace xbs::explore
