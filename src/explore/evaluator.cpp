#include "xbs/explore/evaluator.hpp"

#include <algorithm>

#include "xbs/metrics/peaks.hpp"
#include "xbs/metrics/signal_quality.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::explore {
namespace {

std::vector<double> to_double(std::span<const i32> v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

SharedPsnrReference make_psnr_reference(const std::vector<ecg::DigitizedRecord>& records) {
  // References come from a plain pipeline run so the memo caches stay primed
  // for candidate configurations only.
  const pantompkins::PanTompkinsPipeline accurate;
  auto ref = std::make_shared<std::vector<std::vector<double>>>();
  ref->reserve(records.size());
  for (const ecg::DigitizedRecord& rec : records) {
    ref->push_back(to_double(accurate.run_filters(rec.adu).hpf));
  }
  return ref;
}

struct PreprocPsnrEvaluator::Impl {
  MemoizedPipelineRunner runner;
  SharedPsnrReference ref_hpf;  ///< accurate HPF output per record (shared)

  Impl(SharedRecords recs, SharedPsnrReference ref)
      : runner(std::move(recs)),
        ref_hpf(ref != nullptr ? std::move(ref) : make_psnr_reference(*runner.records())) {}

  template <typename Metric>
  [[nodiscard]] double mean_metric(const Design& d, Metric metric) {
    const pantompkins::PipelineConfig cfg = to_pipeline_config(d);
    double total = 0.0;
    for (std::size_t i = 0; i < runner.num_records(); ++i) {
      const auto& out = runner.run_filters(i, cfg);
      total += metric((*ref_hpf)[i], to_double(out.hpf));
    }
    return total / static_cast<double>(runner.num_records());
  }
};

PreprocPsnrEvaluator::PreprocPsnrEvaluator(std::vector<ecg::DigitizedRecord> records)
    : PreprocPsnrEvaluator(share_records(std::move(records))) {}

PreprocPsnrEvaluator::PreprocPsnrEvaluator(SharedRecords records, SharedPsnrReference reference)
    : impl_(std::make_unique<Impl>(std::move(records), std::move(reference))) {}

PreprocPsnrEvaluator::~PreprocPsnrEvaluator() = default;

double PreprocPsnrEvaluator::evaluate_impl(const Design& d) {
  return impl_->mean_metric(d, [](const auto& ref, const auto& test) {
    return metrics::psnr_db(ref, test);
  });
}

double PreprocPsnrEvaluator::ssim_of(const Design& d) const {
  return impl_->mean_metric(d, [](const auto& ref, const auto& test) {
    return metrics::ssim(ref, test);
  });
}

const StageCacheStats* PreprocPsnrEvaluator::cache_stats() const noexcept {
  return &impl_->runner.stats();
}

struct AccuracyEvaluator::Impl {
  MemoizedPipelineRunner runner;
  Design base;
  Counts last{};

  Impl(SharedRecords recs, Design b) : runner(std::move(recs)), base(std::move(b)) {}
};

AccuracyEvaluator::AccuracyEvaluator(std::vector<ecg::DigitizedRecord> records, Design base)
    : AccuracyEvaluator(share_records(std::move(records)), std::move(base)) {}

AccuracyEvaluator::AccuracyEvaluator(SharedRecords records, Design base)
    : impl_(std::make_unique<Impl>(std::move(records), std::move(base))) {}

AccuracyEvaluator::~AccuracyEvaluator() = default;

double AccuracyEvaluator::evaluate_impl(const Design& d) {
  const Design full = merge(impl_->base, d);
  const pantompkins::PipelineConfig cfg = to_pipeline_config(full);
  Counts c{};
  for (std::size_t i = 0; i < impl_->runner.num_records(); ++i) {
    const ecg::DigitizedRecord& rec = impl_->runner.record(i);
    const auto& out = impl_->runner.run(i, cfg);
    const auto m = metrics::match_peaks(rec.r_peaks, out.detection.peaks,
                                        metrics::default_tolerance_samples(rec.fs_hz));
    c.true_positives += m.true_positives;
    c.false_positives += m.false_positives;
    c.false_negatives += m.false_negatives;
    c.truth += m.truth_count();
  }
  impl_->last = c;
  if (c.truth == 0) return c.false_positives == 0 ? 100.0 : 0.0;
  const double err = static_cast<double>(c.false_negatives + c.false_positives) / c.truth;
  return 100.0 * std::max(0.0, 1.0 - err);
}

const StageCacheStats* AccuracyEvaluator::cache_stats() const noexcept {
  return &impl_->runner.stats();
}

AccuracyEvaluator::Counts AccuracyEvaluator::last_counts() const noexcept { return impl_->last; }

}  // namespace xbs::explore
