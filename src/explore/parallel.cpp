#include "xbs/explore/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <utility>

#include "xbs/common/sync.hpp"

namespace xbs::explore {

// ------------------------------------------------------------------ WorkerPool

struct WorkerPool::Impl {
  unsigned nthreads = 1;
  std::vector<std::thread> workers;

  // Pool coordination lock. Rank kShard: the per-worker queue locks (rank
  // kSlot) sit above it, though the two are never actually nested today.
  common::Mutex m{common::LockRank::kShard};
  common::CondVar cv_start;
  common::CondVar cv_done;
  bool stop XBS_GUARDED_BY(m) = false;
  u64 generation XBS_GUARDED_BY(m) = 0;

  // Current job (valid between a generation bump and the matching cv_done).
  // `fn` and `queues` are not GUARDED_BY-annotatable: `fn` is read lock-free
  // by workers (safe via the generation handshake under m), and each queues[i]
  // is guarded by its own queue_locks[i] — a per-element relationship the
  // analysis cannot express.
  const std::function<void(std::size_t)>* fn XBS_GUARDED_BY(m) = nullptr;
  std::vector<std::deque<std::size_t>> queues;               // one per worker
  std::vector<std::unique_ptr<common::Mutex>> queue_locks;   // one per worker
  std::atomic<unsigned> workers_running{0};
  std::atomic<bool> abort{false};
  std::exception_ptr error XBS_GUARDED_BY(m);

  bool pop_own(unsigned id, std::size_t& idx) {
    const common::MutexLock lock(*queue_locks[id]);
    if (queues[id].empty()) return false;
    idx = queues[id].back();  // LIFO on the owner side: freshest = most local
    queues[id].pop_back();
    return true;
  }

  bool steal(unsigned id, std::size_t& idx) {
    for (unsigned off = 1; off < nthreads; ++off) {
      const unsigned victim = (id + off) % nthreads;
      const common::MutexLock lock(*queue_locks[victim]);
      if (queues[victim].empty()) continue;
      idx = queues[victim].front();  // FIFO on the thief side: largest chunk of
      queues[victim].pop_front();    // the victim's remaining range
      return true;
    }
    return false;
  }

  void run_tasks(unsigned id, const std::function<void(std::size_t)>& job) {
    std::size_t idx = 0;
    while (!abort.load(std::memory_order_relaxed)) {
      if (!pop_own(id, idx) && !steal(id, idx)) break;
      try {
        job(idx);
      } catch (...) {
        const common::MutexLock lock(m);
        if (error == nullptr) error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  }

  void worker_main(unsigned id) {
    u64 seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      {
        common::MutexLock lock(m);
        // Explicit wait loop (not a predicate lambda) so the guarded reads
        // stay in this annotated function where the analysis sees the lock.
        while (!stop && generation == seen) cv_start.wait(lock);
        if (stop) return;
        seen = generation;
        job = fn;
      }
      run_tasks(id, *job);
      if (workers_running.fetch_sub(1) == 1) {
        const common::MutexLock lock(m);
        cv_done.notify_all();
      }
    }
  }
};

WorkerPool::WorkerPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  impl_->nthreads = threads == 0 ? hw : threads;
  impl_->queues.resize(impl_->nthreads);
  impl_->queue_locks.reserve(impl_->nthreads);
  for (unsigned t = 0; t < impl_->nthreads; ++t) {
    impl_->queue_locks.push_back(std::make_unique<common::Mutex>(common::LockRank::kSlot));
  }
  impl_->workers.reserve(impl_->nthreads);
  for (unsigned t = 0; t < impl_->nthreads; ++t) {
    impl_->workers.emplace_back([this, t] { impl_->worker_main(t); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const common::MutexLock lock(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_start.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

unsigned WorkerPool::size() const noexcept { return impl_->nthreads; }

void WorkerPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  Impl& im = *impl_;
  // Seed the deques in contiguous blocks (worker w owns a slice of the
  // range); stealing rebalances from the front of a victim's remainder.
  for (unsigned t = 0; t < im.nthreads; ++t) im.queues[t].clear();
  for (std::size_t i = 0; i < n; ++i) {
    im.queues[(i * im.nthreads) / n].push_back(i);
  }
  im.abort.store(false, std::memory_order_relaxed);
  im.workers_running.store(im.nthreads, std::memory_order_relaxed);
  {
    const common::MutexLock lock(im.m);
    im.fn = &fn;
    im.error = nullptr;
    ++im.generation;
  }
  im.cv_start.notify_all();
  // The error slot is written by workers under the pool mutex; collect it
  // inside the same critical section that observes completion instead of
  // reading it after the lock is dropped (correct before only via a
  // transitive happens-before through the final worker's decrement).
  std::exception_ptr error;
  {
    common::MutexLock lock(im.m);
    while (im.workers_running.load() != 0) im.cv_done.wait(lock);
    error = std::exchange(im.error, nullptr);
    im.fn = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

// ------------------------------------------------------------- grid sharding

namespace {

struct ShardResult {
  std::vector<GridPoint> points;
  StageCacheStats cache{};
};

GridResult run_grid_parallel(const std::vector<StageSpace>& spaces, const ModuleLists& lists,
                             bool per_stage_modules, const EvaluatorFactory& factory,
                             const StageEnergyModel& energy, double quality_constraint,
                             const ParallelExploreOptions& opts) {
  const std::vector<Design> designs =
      enumerate_grid_designs(spaces, lists, per_stage_modules);
  const std::size_t grain = std::max<std::size_t>(1, opts.shard_designs);
  // Shard boundaries depend on the grain and the grid only — never on the
  // thread count — so the merged result is bit-identical for any pool size.
  const std::size_t n_shards = (designs.size() + grain - 1) / grain;
  std::vector<ShardResult> shards(n_shards);

  WorkerPool pool(opts.threads);
  pool.parallel_for(n_shards, [&](std::size_t s) {
    const std::size_t begin = s * grain;
    const std::size_t end = std::min(designs.size(), begin + grain);
    const std::unique_ptr<QualityEvaluator> evaluator = factory();
    ShardResult& out = shards[s];
    out.points.reserve(end - begin);
    const StageCacheStats before =
        evaluator->cache_stats() != nullptr ? *evaluator->cache_stats() : StageCacheStats{};
    for (std::size_t i = begin; i < end; ++i) {
      GridPoint p;
      p.design = designs[i];
      p.quality = evaluator->evaluate(designs[i]);
      p.energy_reduction = energy.energy_reduction(designs[i]);
      p.satisfied = p.quality >= quality_constraint;
      out.points.push_back(std::move(p));
    }
    if (evaluator->cache_stats() != nullptr) {
      out.cache = *evaluator->cache_stats() - before;
    }
  });

  GridResult result;
  result.points.reserve(designs.size());
  for (ShardResult& s : shards) {
    for (GridPoint& p : s.points) result.points.push_back(std::move(p));
    result.cache = result.cache + s.cache;
  }
  result.evaluations = static_cast<int>(result.points.size());
  return result;
}

}  // namespace

GridResult exhaustive_explore_parallel(const std::vector<StageSpace>& spaces,
                                       const ModuleLists& lists,
                                       const EvaluatorFactory& factory,
                                       const StageEnergyModel& energy,
                                       double quality_constraint,
                                       const ParallelExploreOptions& opts) {
  return run_grid_parallel(spaces, lists, true, factory, energy, quality_constraint, opts);
}

GridResult heuristic_explore_parallel(const std::vector<StageSpace>& spaces,
                                      const ModuleLists& lists,
                                      const EvaluatorFactory& factory,
                                      const StageEnergyModel& energy,
                                      double quality_constraint,
                                      const ParallelExploreOptions& opts) {
  return run_grid_parallel(spaces, lists, false, factory, energy, quality_constraint, opts);
}

// ------------------------------------------------------- Algorithm 1 batches

std::vector<Algorithm1Result> design_generation_batch(const std::vector<Algorithm1Job>& jobs,
                                                      const EvaluatorFactory& factory,
                                                      const StageEnergyModel& energy,
                                                      unsigned threads) {
  std::vector<Algorithm1Result> results(jobs.size());
  WorkerPool pool(threads);
  pool.parallel_for(jobs.size(), [&](std::size_t j) {
    const std::unique_ptr<QualityEvaluator> evaluator = factory();
    results[j] = design_generation(jobs[j].spaces, jobs[j].lists, *evaluator, energy,
                                   jobs[j].quality_constraint);
  });
  return results;
}

}  // namespace xbs::explore
