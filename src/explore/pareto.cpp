#include "xbs/explore/pareto.hpp"

#include <algorithm>

namespace xbs::explore {

std::vector<std::size_t> pareto_front(const std::vector<GridPoint>& points) {
  std::vector<std::size_t> idx(points.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  // Sort by quality desc, then energy reduction desc.
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].quality != points[b].quality) return points[a].quality > points[b].quality;
    return points[a].energy_reduction > points[b].energy_reduction;
  });
  std::vector<std::size_t> front;
  double best_energy = -1.0;
  for (const std::size_t i : idx) {
    if (points[i].energy_reduction > best_energy) {
      front.push_back(i);
      best_energy = points[i].energy_reduction;
    }
  }
  return front;
}

}  // namespace xbs::explore
