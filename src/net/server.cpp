#include "xbs/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

namespace xbs::net {

using namespace std::chrono_literals;

namespace {

/// Control (non-CHUNK) payloads are all tiny fixed layouts; anything bigger
/// than this is hostile even when it fits the frame bound.
constexpr std::size_t kMaxControlPayload = 4096;
/// Events per EVENT frame, so one drain burst never overflows the peer's
/// frame bound (1024 * 72B + 8B header comfortably under 1 MiB).
constexpr std::size_t kMaxEventsPerFrame = 1024;
/// Upper bound the server enforces on DRAIN waits, so a hostile timeout
/// cannot wedge a pump thread for minutes.
constexpr u32 kMaxDrainTimeoutMs = 5000;

stream::StreamServer::Options normalize(stream::StreamServer::Options so) {
  // The wire has no event path without pull-model egress: raise a zero.
  if (so.event_queue_capacity == 0) so.event_queue_capacity = 1024;
  return so;
}

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) (void)::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

}  // namespace

struct NetServer::StatsAtomics {
  std::atomic<u64> accepted{0};
  std::atomic<u64> closed{0};
  std::atomic<u64> protocol_errors{0};
  std::atomic<u64> opened{0};
  std::atomic<u64> resumed{0};
  std::atomic<u64> parked{0};
  std::atomic<u64> evicted{0};
  std::atomic<u64> events_sent{0};
  std::atomic<u64> events_shed{0};
  std::atomic<u64> bytes_in{0};
  std::atomic<u64> bytes_out{0};
};

/// Loop -> pump commands (executed in arrival order, so an Attach from a
/// re-OPEN always lands after the Close/Park of the previous record).
struct NetServer::Cmd {
  enum class Kind { Attach, Drain, Close, Reset, Park };
  Kind kind = Kind::Attach;
  stream::SessionId sid{};
  u64 token = 0;
  u32 timeout_ms = 0;
  bool warm = false;
};

struct NetServer::Conn {
  int fd = -1;

  // Receive state machine — event-loop thread only.
  enum class Rx { Header, Payload, Chunk, Discard };
  Rx rx = Rx::Header;
  std::array<u8, kHeaderBytes> hdr_raw{};
  std::size_t hdr_fill = 0;
  FrameHeader hdr{};
  std::vector<u8> payload;
  std::size_t fill = 0;
  std::size_t discard_left = 0;
  std::size_t chunk_samples = 0;
  stream::ChunkLoan loan;  ///< armed while a CHUNK payload lands in place
  bool hello_done = false;
  bool has_session = false;
  u64 token = 0;
  stream::SessionId sid{};
  bool stalled = false;  ///< session at its high-water mark: EPOLLIN off
  bool dead = false;
  bool epoll_in = true;
  bool epoll_out = false;

  // Egress buffer — shared between the loop (flush) and the pump (append).
  // Rank kNetConn, like every front-door lock; out_mu, cmd_mu and the
  // registry lock are never held together (same-rank nesting asserts in
  // Debug), they just all sit below the stream layer's shard locks.
  common::Mutex out_mu{common::LockRank::kNetConn};
  std::vector<u8> out XBS_GUARDED_BY(out_mu);
  std::size_t out_off XBS_GUARDED_BY(out_mu) = 0;
  std::atomic<bool> kill_requested{false};

  // Command queue + pump lifecycle.
  common::Mutex cmd_mu{common::LockRank::kNetConn};
  common::CondVar cmd_cv;
  std::deque<Cmd> cmds XBS_GUARDED_BY(cmd_mu);
  std::atomic<bool> pump_stop{false};
  std::atomic<bool> pump_done{false};
  std::thread pump;

  // Per-connection counters (surfaced in STATS frames).
  std::atomic<u64> n_events_sent{0};
  std::atomic<u64> n_events_shed{0};
  std::atomic<u64> n_bytes_in{0};
  std::atomic<u64> n_bytes_out{0};
};

// ------------------------------------------------------------- construction

NetServer::NetServer(Options opts)
    : opts_(std::move(opts)), stream_(normalize(opts_.stream)) {
  stats_ = std::make_unique<StatsAtomics>();
  auto fail = [&](const char* what) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    throw std::runtime_error(std::string("NetServer: ") + what + ": " +
                             std::strerror(errno));
  };
  if (opts_.listen_fd >= 0) {
    listen_fd_ = opts_.listen_fd;  // adopted: the bench binds before forking
    set_nonblocking(listen_fd_);
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) fail("socket");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
      errno = EINVAL;
      fail("bind address");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      fail("bind");
    }
    if (::listen(listen_fd_, 64) != 0) fail("listen");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) fail("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) fail("epoll add");
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) fail("epoll add");

  loop_thread_ = std::thread([this] { loop(); });
}

NetServer::~NetServer() { stop(); }

void NetServer::stop() {
  // Owner-thread lifecycle call (the destructor path); not for concurrent use.
  if (!stop_.exchange(true)) wake_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Post-join: every thread that could write wake_fd_ (the loop, the pumps
  // it joined before exiting, the wake in this call) happens-before here.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void NetServer::wake_loop() {
  const u64 one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

NetServer::Stats NetServer::stats() const noexcept {
  Stats s;
  s.connections_accepted = stats_->accepted.load(std::memory_order_relaxed);
  s.connections_closed = stats_->closed.load(std::memory_order_relaxed);
  s.protocol_errors = stats_->protocol_errors.load(std::memory_order_relaxed);
  s.sessions_opened = stats_->opened.load(std::memory_order_relaxed);
  s.sessions_resumed = stats_->resumed.load(std::memory_order_relaxed);
  s.sessions_parked = stats_->parked.load(std::memory_order_relaxed);
  s.sessions_evicted = stats_->evicted.load(std::memory_order_relaxed);
  s.events_sent = stats_->events_sent.load(std::memory_order_relaxed);
  s.events_shed = stats_->events_shed.load(std::memory_order_relaxed);
  s.bytes_in = stats_->bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_->bytes_out.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------------------------------------------ registry

WireError NetServer::admit(const OpenFrame& f, stream::SessionId& sid, StatsAck& ack) {
  const common::MutexLock lock(reg_mu_);
  auto it = registry_.find(f.token);
  if (it != registry_.end()) {
    TokenEntry& e = it->second;
    if (e.st == TokenState::Attached) {
      // Its previous connection has not parked it yet (parking is
      // asynchronous after a disconnect): the client retries shortly.
      return WireError::SessionBusy;
    }
    if (e.st == TokenState::Parked) {
      // Warm re-pair: the OPEN's pipeline config is ignored, the parked
      // session keeps its trained detector thresholds.
      e.st = TokenState::Attached;
      e.lru_seq = ++lru_counter_;
      sid = e.sid;
      ack = StatsAck::Resumed;
      stats_->resumed.fetch_add(1, std::memory_order_relaxed);
      return WireError::None;
    }
    // ClosedKept: the finished record is discarded and the token starts a
    // fresh session with the OPEN's configuration.
    (void)stream_.release(e.sid);
    registry_.erase(it);
  }
  stream::SessionSpec spec;
  try {
    spec.config = f.config();
  } catch (const std::exception&) {
    return WireError::Internal;
  }
  spec.keep_detection = false;  // unbounded serving stream: O(window) state
  while (true) {
    try {
      sid = stream_.open(spec);
      break;
    } catch (const std::exception&) {
      // At the stream layer's ceiling the front door evicts instead of
      // refusing: stalest Closed-but-unreleased record first, then the
      // stalest parked session.
      if (!evict_one_locked()) return WireError::SessionLimit;
    }
  }
  registry_[f.token] = TokenEntry{sid, TokenState::Attached, ++lru_counter_};
  ack = StatsAck::Open;
  stats_->opened.fetch_add(1, std::memory_order_relaxed);
  return WireError::None;
}

bool NetServer::evict_one_locked() {
  auto pick = [&](TokenState st) {
    auto best = registry_.end();
    for (auto it = registry_.begin(); it != registry_.end(); ++it) {
      if (it->second.st != st) continue;
      if (best == registry_.end() || it->second.lru_seq < best->second.lru_seq) {
        best = it;
      }
    }
    return best;
  };
  auto victim = pick(TokenState::ClosedKept);
  if (victim == registry_.end()) victim = pick(TokenState::Parked);
  if (victim == registry_.end()) return false;  // only live connections remain
  (void)stream_.release(victim->second.sid);
  registry_.erase(victim);
  stats_->evicted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// -------------------------------------------------------------------- egress

void NetServer::send_frame(Conn& c, const std::vector<u8>& bytes, std::size_t n_events) {
  bool kill = false;
  {
    const common::MutexLock lock(c.out_mu);
    const std::size_t pending = c.out.size() - c.out_off;
    if (n_events > 0 && pending + bytes.size() > opts_.egress_buffer_bytes) {
      // Slow-reader shedding: whole EVENT frames drop (frames must never
      // tear), counted instead of growing the buffer without bound.
      c.n_events_shed.fetch_add(n_events, std::memory_order_relaxed);
      stats_->events_shed.fetch_add(n_events, std::memory_order_relaxed);
      return;
    }
    if (n_events == 0 && pending + bytes.size() > 2 * opts_.egress_buffer_bytes) {
      kill = true;  // cannot even absorb control replies: broken reader
    } else {
      c.out.insert(c.out.end(), bytes.begin(), bytes.end());
      if (n_events > 0) {
        c.n_events_sent.fetch_add(n_events, std::memory_order_relaxed);
        stats_->events_sent.fetch_add(n_events, std::memory_order_relaxed);
      }
    }
  }
  if (kill) c.kill_requested.store(true, std::memory_order_relaxed);
  wake_loop();
}

void NetServer::send_error(Conn& c, WireError code, std::string_view message) {
  std::vector<u8> buf;
  encode_error(buf, code, message);
  send_frame(c, buf, 0);
}

StatsFrame NetServer::make_stats(const Conn& c, StatsAck ack, stream::SessionId sid) const {
  StatsFrame f;
  f.ack = ack;
  const auto ss = stream_.session_stats(sid);  // Empty defaults for a stale id
  f.session_state = static_cast<u8>(ss.state);
  f.chunks_in = ss.chunks_in;
  f.chunks_processed = ss.chunks_processed;
  f.rejected_chunks = ss.rejected_chunks;
  f.dropped_chunks = ss.dropped_chunks;
  f.samples = ss.samples;
  f.events = ss.events;
  f.beats = ss.beats;
  f.events_queued = ss.events_queued;
  f.events_dropped = ss.events_dropped;
  f.resets = ss.resets;
  f.net_events_sent = c.n_events_sent.load(std::memory_order_relaxed);
  f.net_events_shed = c.n_events_shed.load(std::memory_order_relaxed);
  f.net_bytes_in = c.n_bytes_in.load(std::memory_order_relaxed);
  f.net_bytes_out = c.n_bytes_out.load(std::memory_order_relaxed);
  return f;
}

// ---------------------------------------------------------------- pump thread

void NetServer::pump_loop(Conn& c) {
  bool attached = false;
  bool idle = false;  // session terminal: stop draining until a command
  stream::SessionId sid{};
  u64 token = 0;
  std::vector<stream::Event> evs;
  std::vector<u8> frame;
  auto send_events = [&](std::vector<stream::Event>& batch) {
    for (std::size_t i = 0; i < batch.size(); i += kMaxEventsPerFrame) {
      const std::size_t n = std::min(kMaxEventsPerFrame, batch.size() - i);
      frame.clear();
      encode_events(frame, std::span<const stream::Event>(batch).subspan(i, n));
      send_frame(c, frame, n);
    }
  };
  auto send_stats = [&](StatsAck ack, stream::SessionId id) {
    frame.clear();
    encode_stats(frame, make_stats(c, ack, id));
    send_frame(c, frame, 0);
  };
  while (true) {
    Cmd cmd;
    bool have = false;
    {
      common::MutexLock lock(c.cmd_mu);
      if (!c.cmds.empty()) {
        cmd = c.cmds.front();
        c.cmds.pop_front();
        have = true;
      } else if (c.pump_stop.load(std::memory_order_relaxed)) {
        break;
      } else if (!attached || idle) {
        c.cmd_cv.wait_for(lock, 50ms);
        continue;
      }
    }
    if (have) {
      switch (cmd.kind) {
        case Cmd::Kind::Attach:
          attached = true;
          idle = false;
          sid = cmd.sid;
          token = cmd.token;
          break;
        case Cmd::Kind::Drain: {
          if (!attached) break;
          evs.clear();
          if (cmd.timeout_ms > 0) {
            (void)stream_.drain_events(
                sid, evs,
                std::chrono::milliseconds(std::min(cmd.timeout_ms, kMaxDrainTimeoutMs)));
          } else {
            (void)stream_.drain_events(sid, evs);
          }
          send_events(evs);
          send_stats(StatsAck::Drain, sid);
          break;
        }
        case Cmd::Kind::Close: {
          if (!attached) break;
          (void)stream_.close(sid);  // waits for the drain + flush to land
          evs.clear();
          (void)stream_.drain_events(sid, evs);  // the flush tail
          send_events(evs);
          send_stats(StatsAck::Close, sid);
          {
            const common::MutexLock lock(reg_mu_);
            auto it = registry_.find(token);
            if (it != registry_.end() && it->second.st == TokenState::Attached &&
                it->second.sid == sid) {
              // Closed-but-unreleased: inspectable/evictable until an OPEN
              // reuses the token or LRU admission reclaims the slot.
              it->second.st = TokenState::ClosedKept;
              it->second.lru_seq = ++lru_counter_;
            }
          }
          attached = false;
          break;
        }
        case Cmd::Kind::Reset: {
          if (!attached) break;
          const bool ok = stream_.reset(sid, cmd.warm
                                                 ? pantompkins::WarmStart::KeepThresholds
                                                 : pantompkins::WarmStart::Cold);
          if (ok) {
            idle = false;
            send_stats(StatsAck::Reset, sid);
          } else {
            send_error(c, WireError::Refused, "RESET: session no longer exists");
          }
          break;
        }
        case Cmd::Kind::Park:
          if (attached) {
            pump_park(c, token, sid);
            attached = false;
          }
          break;
      }
      continue;
    }
    // Attached and live: sleep in the stream layer until events arrive (the
    // blocking drain — no spin-polling), then stream them out.
    evs.clear();
    if (stream_.drain_events(sid, evs, 20ms) > 0) {
      send_events(evs);
      continue;
    }
    // Timed out — or the session went terminal, which returns 0 immediately
    // and would otherwise busy-spin this thread.
    const auto st = stream_.session_stats(sid).state;
    if (st == stream::SessionState::Closed || st == stream::SessionState::Faulted ||
        st == stream::SessionState::Empty) {
      idle = true;
    }
  }
  c.pump_done.store(true, std::memory_order_release);
  wake_loop();  // the reaper notices promptly
}

void NetServer::pump_park(Conn& c, u64 token, stream::SessionId sid) {
  (void)c;
  // Disconnect -> warm park: the detector's trained thresholds survive for
  // the client's reconnect (OPEN with the same token resumes them).
  const bool ok = stream_.reset(sid, pantompkins::WarmStart::KeepThresholds);
  const common::MutexLock lock(reg_mu_);
  auto it = registry_.find(token);
  if (it == registry_.end() || it->second.st != TokenState::Attached ||
      !(it->second.sid == sid)) {
    return;
  }
  if (ok) {
    it->second.st = TokenState::Parked;
    it->second.lru_seq = ++lru_counter_;
    stats_->parked.fetch_add(1, std::memory_order_relaxed);
  } else {
    registry_.erase(it);  // released under us: nothing left to resume
  }
}

// ----------------------------------------------------------- event-loop thread

void NetServer::loop() {
  std::array<epoll_event, 64> events{};
  while (!stop_.load(std::memory_order_relaxed)) {
    bool any_stalled = false;
    for (const auto& [fd, c] : conns_) {
      if (c->stalled) {
        any_stalled = true;
        break;
      }
    }
    // A stalled connection retries its acquire on a millisecond tick; the
    // graveyard is swept on a slower one; otherwise sleep long (every state
    // change that matters also writes the eventfd).
    const int timeout_ms = any_stalled ? 1 : (graveyard_.empty() ? 200 : 10);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const u32 flags = events[i].events;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd_) {
        u64 v = 0;
        while (::read(wake_fd_, &v, sizeof v) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // killed earlier in this batch
      Conn& c = *it->second;
      if ((flags & EPOLLIN) != 0) read_ready(c);
      if (!c.dead && (flags & EPOLLOUT) != 0) flush_out(c);
      if (!c.dead && (flags & (EPOLLHUP | EPOLLERR)) != 0) kill_conn(c, false);
    }
    // Housekeeping sweep: pump-requested kills, pending egress, stall
    // retries. Connection counts are small; the scan is cheaper than
    // tracking dirtiness per wakeup source.
    std::vector<Conn*> sweep;
    sweep.reserve(conns_.size());
    for (const auto& [fd, c] : conns_) sweep.push_back(c.get());
    for (Conn* c : sweep) {
      if (c->dead) continue;
      if (c->kill_requested.load(std::memory_order_relaxed)) {
        kill_conn(*c, true);
        continue;
      }
      if (c->stalled) (void)try_start_chunk(*c);
      if (!c->dead) flush_out(*c);
    }
    reap_graveyard(false);
  }
  // Shutdown: every connection closes (sessions park warm) and every pump
  // joins before the embedded StreamServer is torn down.
  std::vector<Conn*> all;
  all.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) all.push_back(c.get());
  for (Conn* c : all) kill_conn(*c, false);
  reap_graveyard(true);
  // The fds are closed by stop() after this thread joins: wake_loop() may
  // still be mid-write on another thread, and closing under it would race
  // (worse, the fd number could be recycled).
}

void NetServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient error): nothing more to take
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Conn>();
    Conn& c = *conn;
    c.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    c.pump = std::thread([this, &c] { pump_loop(c); });
    conns_.emplace(fd, std::move(conn));
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::update_epoll(Conn& c) {
  if (c.dead) return;
  epoll_event ev{};
  ev.events = (c.epoll_in ? EPOLLIN : 0u) | (c.epoll_out ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void NetServer::read_ready(Conn& c) {
  // Budgeted so one flooding connection cannot starve the others; the
  // level-triggered EPOLLIN re-fires for the remainder.
  std::size_t budget = 256 * 1024;
  u8 scratch[4096];
  while (!c.dead && !c.stalled && budget > 0) {
    ssize_t r = 0;
    switch (c.rx) {
      case Conn::Rx::Header:
        r = ::recv(c.fd, c.hdr_raw.data() + c.hdr_fill, kHeaderBytes - c.hdr_fill, 0);
        if (r > 0) {
          c.hdr_fill += static_cast<std::size_t>(r);
          if (c.hdr_fill == kHeaderBytes) {
            c.hdr_fill = 0;
            count_in(c, static_cast<std::size_t>(r));
            if (!on_header(c)) return;
            budget -= std::min(budget, static_cast<std::size_t>(r));
            continue;
          }
        }
        break;
      case Conn::Rx::Payload:
        r = ::recv(c.fd, c.payload.data() + c.fill, c.payload.size() - c.fill, 0);
        if (r > 0) {
          c.fill += static_cast<std::size_t>(r);
          if (c.fill == c.payload.size()) {
            c.rx = Conn::Rx::Header;
            count_in(c, static_cast<std::size_t>(r));
            if (!handle_frame(c)) return;
            budget -= std::min(budget, static_cast<std::size_t>(r));
            continue;
          }
        }
        break;
      case Conn::Rx::Chunk: {
        // The zero-copy contract: CHUNK payload bytes land directly in the
        // StreamServer buffer loan; commit() hands them to a worker with no
        // intermediate copy anywhere.
        u8* base = reinterpret_cast<u8*>(c.loan.data().data());
        r = ::recv(c.fd, base + c.fill, c.hdr.payload_len - c.fill, 0);
        if (r > 0) {
          c.fill += static_cast<std::size_t>(r);
          if (c.fill == c.hdr.payload_len) {
            count_in(c, static_cast<std::size_t>(r));
            finish_chunk(c);
            if (c.dead) return;
            budget -= std::min(budget, static_cast<std::size_t>(r));
            continue;
          }
        }
        break;
      }
      case Conn::Rx::Discard:
        r = ::recv(c.fd, scratch, std::min(sizeof scratch, c.discard_left), 0);
        if (r > 0) {
          c.discard_left -= static_cast<std::size_t>(r);
          if (c.discard_left == 0) c.rx = Conn::Rx::Header;
        }
        break;
    }
    if (r > 0) {
      count_in(c, static_cast<std::size_t>(r));
      budget -= std::min(budget, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) {  // EOF: the client hung up; its session parks warm
      kill_conn(c, false);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    kill_conn(c, false);
    return;
  }
}

void NetServer::count_in(Conn& c, std::size_t n) {
  c.n_bytes_in.fetch_add(n, std::memory_order_relaxed);
  stats_->bytes_in.fetch_add(n, std::memory_order_relaxed);
}

bool NetServer::protocol_fatal(Conn& c, WireError code, std::string_view message) {
  stats_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
  send_error(c, code, message);
  kill_conn(c, true);  // best-effort flush so the peer sees the ERROR first
  return false;
}

bool NetServer::on_header(Conn& c) {
  const WireError e =
      decode_header(std::span<const u8>(c.hdr_raw), c.hdr, opts_.max_frame_bytes);
  if (e != WireError::None) return protocol_fatal(c, e, "invalid frame header");
  switch (c.hdr.type) {
    case FrameType::Event:
    case FrameType::Stats:
    case FrameType::Error:
      return protocol_fatal(c, WireError::Malformed, "client-bound frame type");
    default:
      break;
  }
  if (!c.hello_done && c.hdr.type != FrameType::Hello) {
    return protocol_fatal(c, WireError::HelloRequired, "first frame must be HELLO");
  }
  if (c.hdr.type == FrameType::Chunk) return begin_chunk(c);
  if (c.hdr.payload_len > kMaxControlPayload) {
    return protocol_fatal(c, WireError::Malformed, "oversized control payload");
  }
  if (c.hdr.payload_len == 0) {
    c.payload.clear();
    return handle_frame(c);
  }
  c.payload.resize(c.hdr.payload_len);
  c.fill = 0;
  c.rx = Conn::Rx::Payload;
  return true;
}

bool NetServer::begin_chunk(Conn& c) {
  if (!c.has_session) {
    send_error(c, WireError::NoSession, "CHUNK without an open session");
    return start_discard(c);
  }
  if (c.hdr.payload_len % 4 != 0) {
    return protocol_fatal(c, WireError::Malformed, "CHUNK payload not a sample multiple");
  }
  const std::size_t n = c.hdr.payload_len / 4;
  if (opts_.stream.max_chunk_samples != 0 && n > opts_.stream.max_chunk_samples) {
    // Protocol bound enforced at the front door: the connection dies but the
    // session is NOT faulted — it parks warm like any other disconnect (the
    // stream layer's oversize quarantine is for in-process producers).
    return protocol_fatal(c, WireError::Oversize, "CHUNK exceeds max_chunk_samples");
  }
  c.chunk_samples = n;
  return try_start_chunk(c);
}

bool NetServer::try_start_chunk(Conn& c) {
  stream::ChunkLoan loan;
  const stream::PushResult r = stream_.try_acquire_buffer(c.sid, c.chunk_samples, loan);
  if (r == stream::PushResult::QueueFull) {
    // High-water mark: park the connection (EPOLLIN off, so TCP backpressure
    // reaches the client) and retry on the loop's millisecond tick. Each
    // failed attempt counts in the session's rejected_chunks — documented.
    if (!c.stalled) {
      c.stalled = true;
      c.epoll_in = false;
      update_epoll(c);
    }
    return true;
  }
  if (c.stalled) {
    c.stalled = false;
    c.epoll_in = true;
    update_epoll(c);
  }
  if (r == stream::PushResult::Ok) {
    c.loan = std::move(loan);
    if (c.hdr.payload_len == 0) {
      finish_chunk(c);
      return !c.dead;
    }
    c.fill = 0;
    c.rx = Conn::Rx::Chunk;
    return true;
  }
  send_error(c, WireError::Refused,
             std::string("chunk refused: ") + stream::to_string(r));
  return start_discard(c);
}

bool NetServer::start_discard(Conn& c) {
  if (c.hdr.payload_len == 0) {
    c.rx = Conn::Rx::Header;
    return true;
  }
  c.discard_left = c.hdr.payload_len;
  c.rx = Conn::Rx::Discard;
  return true;
}

void NetServer::finish_chunk(Conn& c) {
  chunk_payload_to_samples(c.loan.data());  // no-op on little-endian hosts
  const stream::PushResult r = stream_.commit(c.loan);
  if (r != stream::PushResult::Ok) {
    // The session closed/faulted/reset between acquire and commit: the
    // samples were discarded by the stream layer; tell the client once.
    send_error(c, WireError::Refused,
               std::string("chunk discarded: ") + stream::to_string(r));
  }
  c.rx = Conn::Rx::Header;
}

void NetServer::push_cmd(Conn& c, Cmd cmd) {
  {
    const common::MutexLock lock(c.cmd_mu);
    c.cmds.push_back(cmd);
  }
  c.cmd_cv.notify_all();
}

bool NetServer::handle_frame(Conn& c) {
  const std::span<const u8> p(c.payload);
  switch (c.hdr.type) {
    case FrameType::Hello: {
      HelloFrame h;
      const WireError e = decode_hello(p, h);
      if (e != WireError::None) return protocol_fatal(c, e, "bad HELLO");
      c.hello_done = true;
      std::vector<u8> buf;
      encode_stats(buf, make_stats(c, StatsAck::Hello,
                                   c.has_session ? c.sid : stream::SessionId{}));
      send_frame(c, buf, 0);
      return true;
    }
    case FrameType::Open: {
      OpenFrame f;
      const WireError e = decode_open(p, f);
      if (e != WireError::None) return protocol_fatal(c, e, "bad OPEN");
      if (c.has_session) {
        send_error(c, WireError::SessionExists, "connection already has a session");
        return true;
      }
      stream::SessionId sid{};
      StatsAck ack = StatsAck::Open;
      const WireError ae = admit(f, sid, ack);
      if (ae != WireError::None) {
        send_error(c, ae, "OPEN refused");
        return true;
      }
      c.has_session = true;
      c.token = f.token;
      c.sid = sid;
      push_cmd(c, Cmd{Cmd::Kind::Attach, sid, f.token, 0, false});
      std::vector<u8> buf;
      encode_stats(buf, make_stats(c, ack, sid));
      send_frame(c, buf, 0);
      return true;
    }
    case FrameType::Drain: {
      DrainFrame f;
      const WireError e = decode_drain(p, f);
      if (e != WireError::None) return protocol_fatal(c, e, "bad DRAIN");
      if (!c.has_session) {
        send_error(c, WireError::NoSession, "DRAIN without an open session");
        return true;
      }
      push_cmd(c, Cmd{Cmd::Kind::Drain, c.sid, c.token, f.timeout_ms, false});
      return true;
    }
    case FrameType::Close: {
      if (!p.empty()) return protocol_fatal(c, WireError::Malformed, "bad CLOSE");
      if (!c.has_session) {
        send_error(c, WireError::NoSession, "CLOSE without an open session");
        return true;
      }
      push_cmd(c, Cmd{Cmd::Kind::Close, c.sid, c.token, 0, false});
      // The connection can OPEN a fresh session right away; the pump's
      // command order keeps the records serialized.
      c.has_session = false;
      return true;
    }
    case FrameType::Reset: {
      ResetFrame f;
      const WireError e = decode_reset(p, f);
      if (e != WireError::None) return protocol_fatal(c, e, "bad RESET");
      if (!c.has_session) {
        send_error(c, WireError::NoSession, "RESET without an open session");
        return true;
      }
      push_cmd(c, Cmd{Cmd::Kind::Reset, c.sid, c.token, 0, f.warm});
      return true;
    }
    default:
      return protocol_fatal(c, WireError::UnknownType, "unexpected frame");
  }
}

void NetServer::flush_out(Conn& c) {
  if (c.dead) return;
  bool failed = false;
  bool want_write = false;
  {
    const common::MutexLock lock(c.out_mu);
    while (c.out_off < c.out.size()) {
      const ssize_t w = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (w > 0) {
        c.out_off += static_cast<std::size_t>(w);
        c.n_bytes_out.fetch_add(static_cast<u64>(w), std::memory_order_relaxed);
        stats_->bytes_out.fetch_add(static_cast<u64>(w), std::memory_order_relaxed);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      failed = true;
      break;
    }
    if (c.out_off == c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    } else if (c.out_off > (1u << 16)) {
      c.out.erase(c.out.begin(), c.out.begin() + static_cast<std::ptrdiff_t>(c.out_off));
      c.out_off = 0;
    }
    want_write = c.out_off < c.out.size();
  }
  if (failed) {
    kill_conn(c, false);
    return;
  }
  if (want_write != c.epoll_out) {
    c.epoll_out = want_write;
    update_epoll(c);
  }
}

void NetServer::kill_conn(Conn& c, bool flush_first) {
  if (c.dead) return;
  c.dead = true;
  if (flush_first) {
    // Best-effort: push the pending bytes (typically the fatal ERROR reply)
    // out before the reset, so the peer learns why it was dropped.
    const common::MutexLock lock(c.out_mu);
    while (c.out_off < c.out.size()) {
      const ssize_t w = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (w <= 0) break;
      c.out_off += static_cast<std::size_t>(w);
      stats_->bytes_out.fetch_add(static_cast<u64>(w), std::memory_order_relaxed);
    }
  }
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  (void)::shutdown(c.fd, SHUT_RDWR);
  c.stalled = false;
  // An armed loan dies with the Conn (destructor = abandon: the reserved
  // queue slot returns). Tell the pump to park the session and exit.
  {
    const common::MutexLock lock(c.cmd_mu);
    if (c.has_session) {
      c.cmds.push_back(Cmd{Cmd::Kind::Park, c.sid, c.token, 0, false});
    }
    c.pump_stop.store(true, std::memory_order_relaxed);
  }
  c.cmd_cv.notify_all();
  c.has_session = false;
  stats_->closed.fetch_add(1, std::memory_order_relaxed);
  auto it = conns_.find(c.fd);
  if (it != conns_.end()) {
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
  }
}

void NetServer::reap_graveyard(bool wait_all) {
  for (auto it = graveyard_.begin(); it != graveyard_.end();) {
    Conn& c = **it;
    if (wait_all || c.pump_done.load(std::memory_order_acquire)) {
      if (c.pump.joinable()) c.pump.join();
      ::close(c.fd);
      it = graveyard_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace xbs::net
