/// \file server.hpp
/// \brief The network ingest plane: an epoll-based non-blocking TCP front
/// door over the StreamServer, speaking the XBSP framing protocol.
///
/// NetServer turns the in-process serving layer into a deployable service
/// without giving up its zero-copy contract: a CHUNK frame's samples are
/// read off the socket *directly into* a StreamServer buffer loan
/// (socket -> loan.data() -> commit — no intermediate copy anywhere), and
/// finalized detector events stream back to the client as EVENT frames fed
/// by the blocking drain_events() overload, so the egress path sleeps
/// instead of polling.
///
/// Threading model (one listener, C connections):
///   - one *event-loop* thread owns the listening socket, every connection
///     fd, all epoll state and all socket reads/writes. It never blocks:
///     chunk ingest uses try_acquire_buffer, and a session at its high-water
///     mark parks the connection (EPOLLIN off — TCP backpressure reaches the
///     client) and retries on a millisecond tick;
///   - one *egress pump* thread per connection idles in the stream layer's
///     blocking drain, encodes EVENT frames into the connection's bounded
///     out-buffer and wakes the loop via an eventfd to flush them. DRAIN /
///     CLOSE / RESET commands also execute on the pump (they can legally
///     wait on the stream layer), keeping the loop wait-free.
///
/// The front door owns serving policy, not the stream layer:
///   - *admission with LRU eviction*: where StreamServer::open() throws at
///     max_sessions, NetServer instead evicts the least-recently-used
///     evictable slot — Closed-but-unreleased record first, then parked
///     (disconnected) sessions — and retries; ERROR SessionLimit only when
///     nothing is evictable;
///   - *warm re-pair*: a client disconnect parks its session via
///     reset(WarmStart::KeepThresholds); a later OPEN bearing the same token
///     re-attaches to the trained detector (STATS ack = Resumed);
///   - *slow-reader shedding*: each connection's egress buffer is bounded;
///     EVENT frames that would overflow it are dropped whole and counted
///     (events_shed) instead of wedging the loop or growing without bound.
///     Control replies (STATS/ERROR) are never shed — a connection that
///     cannot even absorb those is broken and gets closed.
///
/// Error isolation mirrors the stream layer: a malformed or hostile frame
/// quarantines only its own connection (fatal ERROR reply, then close); the
/// session it carried parks warm like any other disconnect, and every other
/// connection streams on undisturbed.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "xbs/common/sync.hpp"
#include "xbs/net/protocol.hpp"
#include "xbs/stream/server.hpp"

namespace xbs::net {

class NetServer {
 public:
  struct Options {
    /// Address to bind (ignored when listen_fd is given).
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 = ephemeral (read the outcome back with port()).
    u16 port = 0;
    /// Adopt an already-listening socket instead of binding one. The server
    /// takes ownership (closes it on stop). This is how the multi-process
    /// bench binds before forking clients.
    int listen_fd = -1;
    /// Ceiling on one frame's payload; a header advertising more is a fatal
    /// Oversize before anything is read or allocated.
    std::size_t max_frame_bytes = kDefaultMaxPayload;
    /// Per-connection bound on buffered egress bytes. EVENT frames that
    /// would overflow it are shed (counted); control frames that would
    /// overflow 2x the bound kill the connection.
    std::size_t egress_buffer_bytes = 256 * 1024;
    /// The embedded stream layer's configuration. event_queue_capacity must
    /// be > 0 (the egress path needs pull-model events); the constructor
    /// raises a zero to a default rather than serving an event-less wire.
    stream::StreamServer::Options stream{};
  };

  /// Server-lifetime counters (relaxed atomics; read with stats()).
  struct Stats {
    u64 connections_accepted = 0;
    u64 connections_closed = 0;
    u64 protocol_errors = 0;    ///< fatal framing/payload violations
    u64 sessions_opened = 0;    ///< OPEN acks (fresh provisions)
    u64 sessions_resumed = 0;   ///< OPEN acks re-attaching a parked token
    u64 sessions_parked = 0;    ///< disconnects that parked a session warm
    u64 sessions_evicted = 0;   ///< slots reclaimed by LRU admission
    u64 events_sent = 0;        ///< events delivered in EVENT frames
    u64 events_shed = 0;        ///< events dropped by slow-reader shedding
    u64 bytes_in = 0;
    u64 bytes_out = 0;
  };

  explicit NetServer(Options opts);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolved when Options::port was 0).
  [[nodiscard]] u16 port() const noexcept { return port_; }

  /// The embedded stream layer (for in-process inspection in tests/benches;
  /// all StreamServer methods are thread-safe).
  [[nodiscard]] stream::StreamServer& stream() noexcept { return stream_; }

  [[nodiscard]] Stats stats() const noexcept;

  /// Stop accepting, close every connection (their sessions park warm), join
  /// all threads. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Conn;
  struct Cmd;

  // --- event-loop thread ---
  void loop();
  void accept_ready();
  void read_ready(Conn& c);
  void count_in(Conn& c, std::size_t n);
  bool on_header(Conn& c);
  bool handle_frame(Conn& c);
  bool begin_chunk(Conn& c);
  bool try_start_chunk(Conn& c);
  bool start_discard(Conn& c);
  void finish_chunk(Conn& c);
  bool protocol_fatal(Conn& c, WireError code, std::string_view message);
  void push_cmd(Conn& c, Cmd cmd);
  void flush_out(Conn& c);
  void update_epoll(Conn& c);
  void kill_conn(Conn& c, bool flush_first);
  void reap_graveyard(bool wait_all);

  // --- pump thread (one per connection) ---
  void pump_loop(Conn& c);
  void pump_park(Conn& c, u64 token, stream::SessionId sid);
  StatsFrame make_stats(const Conn& c, StatsAck ack, stream::SessionId sid) const;

  // --- either thread ---
  void send_frame(Conn& c, const std::vector<u8>& bytes, std::size_t n_events);
  void send_error(Conn& c, WireError code, std::string_view message);
  void wake_loop();

  // --- registry (reg_mu_) ---
  enum class TokenState { Attached, Parked, ClosedKept };
  struct TokenEntry {
    stream::SessionId sid{};
    TokenState st = TokenState::Attached;
    u64 lru_seq = 0;
  };
  WireError admit(const OpenFrame& f, stream::SessionId& sid, StatsAck& ack)
      XBS_EXCLUDES(reg_mu_);
  bool evict_one_locked() XBS_REQUIRES(reg_mu_);

  Options opts_;
  stream::StreamServer stream_;
  u16 port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: pumps (and stop()) nudge the loop
  std::atomic<bool> stop_{false};
  std::thread loop_thread_;

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;   ///< loop thread only
  std::vector<std::unique_ptr<Conn>> graveyard_;           ///< loop thread only

  /// Rank kNetConn: the front door's locks sit at the bottom of the
  /// hierarchy — admit() calls into the stream layer (shard locks, rank
  /// kShard) while holding reg_mu_, never the other way around.
  mutable common::Mutex reg_mu_{common::LockRank::kNetConn};
  std::unordered_map<u64, TokenEntry> registry_ XBS_GUARDED_BY(reg_mu_);
  u64 lru_counter_ XBS_GUARDED_BY(reg_mu_) = 0;

  struct StatsAtomics;
  std::unique_ptr<StatsAtomics> stats_;
};

}  // namespace xbs::net
