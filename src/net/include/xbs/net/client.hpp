/// \file client.hpp
/// \brief A small blocking XBSP client: the counterpart tests, benches and
/// examples use to drive a NetServer over TCP.
///
/// NetClient is deliberately simple — one blocking socket, synchronous
/// request/ack control calls, and a pull API for the EVENT frames the server
/// streams unprompted. It is a reference protocol implementation and a test
/// harness, not a production SDK: no reconnect automation beyond
/// open()'s SessionBusy retry window, no internal threads.
///
/// EVENT frames can arrive at any time between control acks; every blocking
/// wait collects them into an internal queue that poll_events()/
/// take_events() expose. An ERROR frame surfaces as a thrown RemoteError
/// carrying the wire code; fatal codes also mean the server hung up.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "xbs/net/protocol.hpp"

namespace xbs::net {

/// An ERROR frame from the server, rethrown locally.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(WireError code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] WireError code() const noexcept { return code_; }

 private:
  WireError code_;
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { disconnect(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connect to \p host:\p port and complete the HELLO handshake. Retries
  /// refused connections (the server may still be binding — the bench's
  /// forked clients race its startup) until \p retry_for elapses.
  void connect(const std::string& host, u16 port,
               std::chrono::milliseconds retry_for = std::chrono::milliseconds(5000));

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// OPEN a session. Throws RemoteError on refusal; SessionBusy (a parked
  /// token whose previous connection has not finished parking — the
  /// reconnect race) is retried until \p busy_retry_for elapses.
  StatsFrame open(const OpenFrame& frame,
                  std::chrono::milliseconds busy_retry_for = std::chrono::milliseconds(0));

  /// Send one CHUNK of samples (fire-and-forget; the server replies only on
  /// refusal, surfaced by the next blocking call or poll_events()).
  void send_chunk(std::span<const i32> samples);

  /// DRAIN: ask the server to flush finalized events now (waiting up to
  /// \p timeout_ms server-side for the first one) and ack with stats.
  StatsFrame drain(u32 timeout_ms = 0);

  /// CLOSE: end of record — flushes the detector tail (arriving as EVENT
  /// frames before the ack) and leaves the record inspectable server-side.
  StatsFrame close_session();

  /// RESET: re-arm the session mid-stream (warm keeps trained thresholds).
  StatsFrame reset_session(bool warm);

  /// Non-blocking: pull any EVENT frames sitting in the socket, then move
  /// every collected event into \p out. Returns how many were appended.
  std::size_t take_events(std::vector<stream::Event>& out);

  /// Events collected so far (blocking calls and take_events feed this).
  [[nodiscard]] const std::vector<stream::Event>& events() const noexcept {
    return pending_;
  }

  void disconnect() noexcept;

 private:
  void send_all(const std::vector<u8>& bytes);
  void poll_socket();           ///< non-blocking read into the decoder
  StatsFrame wait_stats();      ///< blocking read until a STATS frame lands
  bool dispatch(const FrameHeader& hdr, const std::vector<u8>& payload,
                StatsFrame& stats);  ///< true when \p stats was filled

  int fd_ = -1;
  FrameDecoder dec_{};
  std::vector<stream::Event> pending_;
};

}  // namespace xbs::net
