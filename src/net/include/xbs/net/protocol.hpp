/// \file protocol.hpp
/// \brief The XBSP length-prefixed binary framing protocol.
///
/// The wire format the network ingest plane speaks (full grammar, versioning
/// and backpressure semantics in docs/wire-protocol.md). Every frame is a
/// fixed 12-byte header followed by `payload_len` bytes of payload, all
/// fields explicit little-endian (xbs::wire):
///
///   offset  size  field
///        0     4  magic   = 0x50534258 ("XBSP")
///        4     1  type    (FrameType)
///        5     1  flags   (must be 0 in version 1)
///        6     2  reserved (must be 0 in version 1)
///        8     4  payload_len
///
/// Client -> server: HELLO (version handshake, required first), OPEN
/// (provision/re-attach a session), CHUNK (raw little-endian i32 samples —
/// the server reads these straight into a StreamServer buffer loan), DRAIN
/// (flush finalized events + stats ack), CLOSE (end of record), RESET
/// (re-arm mid-stream). Server -> client: EVENT (batched finalized detector
/// events), STATS (command acks + live counters), ERROR (refusal or protocol
/// violation; fatal framing errors also close the connection).
///
/// This header owns encode/decode for every frame; the codec never trusts a
/// length or enum from the wire — hostile payloads decode to WireError, not
/// UB (fuzzed in tests/test_net.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xbs/pantompkins/pipeline.hpp"
#include "xbs/stream/session.hpp"

namespace xbs::net {

inline constexpr u32 kMagic = 0x50534258u;  ///< "XBSP" little-endian
inline constexpr u16 kProtoVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Default ceiling on one frame's payload; connections advertising more are
/// a protocol violation (the header is rejected before anything is
/// allocated or read).
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;
/// Encoded size of one Event on the wire.
inline constexpr std::size_t kEventWireBytes = 72;

enum class FrameType : u8 {
  // client -> server
  Hello = 0x01,
  Open = 0x02,
  Chunk = 0x03,
  Drain = 0x04,
  Close = 0x05,
  Reset = 0x06,
  // server -> client
  Event = 0x81,
  Stats = 0x82,
  Error = 0x83,
};

[[nodiscard]] const char* to_string(FrameType t) noexcept;

/// Wire-level refusal/violation codes carried by ERROR frames (and returned
/// by the decoders). Codes < Malformed are framing-fatal: the server sends
/// the ERROR and closes the connection. The rest are semantic refusals on a
/// healthy connection.
enum class WireError : u16 {
  None = 0,
  BadMagic = 1,       ///< header magic mismatch (fatal)
  BadVersion = 2,     ///< HELLO version not supported (fatal)
  BadHeader = 3,      ///< nonzero flags/reserved, bad length (fatal)
  UnknownType = 4,    ///< unrecognized frame type (fatal)
  Oversize = 5,       ///< payload_len over the negotiated bound (fatal)
  Malformed = 6,      ///< payload failed validation (fatal)
  HelloRequired = 7,  ///< first frame was not HELLO (fatal)
  NoSession = 8,      ///< CHUNK/DRAIN/CLOSE/RESET with no session open
  SessionExists = 9,  ///< OPEN on a connection that already has one
  SessionBusy = 10,   ///< OPEN for a token attached to another live connection
  SessionLimit = 11,  ///< admission failed and nothing was evictable
  Refused = 12,       ///< session can no longer accept (closed/faulted/evicted)
  Internal = 13,      ///< server-side failure opening the session
};

[[nodiscard]] const char* to_string(WireError e) noexcept;

/// True for errors after which the server hangs up (see WireError).
[[nodiscard]] constexpr bool is_fatal(WireError e) noexcept {
  return e != WireError::None && static_cast<u16>(e) <= static_cast<u16>(WireError::HelloRequired);
}

struct FrameHeader {
  FrameType type = FrameType::Hello;
  u8 flags = 0;
  std::size_t payload_len = 0;
};

/// Decode and validate a 12-byte header. \p max_payload bounds payload_len
/// (use kDefaultMaxPayload unless negotiated otherwise).
[[nodiscard]] WireError decode_header(std::span<const u8> hdr, FrameHeader& out,
                                      std::size_t max_payload = kDefaultMaxPayload);

/// Append a frame header for \p payload_len payload bytes.
void put_header(std::vector<u8>& out, FrameType type, std::size_t payload_len);

// --------------------------------------------------------------- payloads

struct HelloFrame {
  u16 version = kProtoVersion;
};

/// OPEN: provision a session (or re-attach to a parked one by token). The
/// pipeline configuration travels in the paper's (LSB vector, adder,
/// multiplier, policy) vocabulary; all-zero LSBs is the exact datapath.
struct OpenFrame {
  u64 token = 0;  ///< client/device identity: reconnects with the same token re-pair warm
  AdderKind add_kind = AdderKind::Approx5;
  MultKind mult_kind = MultKind::V1;
  ApproxPolicy policy = ApproxPolicy::Moderate;
  std::array<i32, pantompkins::kNumStages> lsbs{};

  [[nodiscard]] pantompkins::PipelineConfig config() const;
};

struct DrainFrame {
  u32 timeout_ms = 0;  ///< how long the server may wait for a first event
};

struct ResetFrame {
  bool warm = false;  ///< true = WarmStart::KeepThresholds
};

/// What a STATS frame acknowledges.
enum class StatsAck : u8 {
  Hello = 1,
  Open = 2,
  Resumed = 3,  ///< OPEN re-attached a parked session (warm re-pair)
  Drain = 4,
  Close = 5,
  Reset = 6,
};

struct StatsFrame {
  u16 version = kProtoVersion;
  StatsAck ack = StatsAck::Hello;
  u8 session_state = 0;  ///< stream::SessionState as u8 (Empty when no session)
  // Session counters (zero when no session is attached).
  u64 chunks_in = 0;
  u64 chunks_processed = 0;
  u64 rejected_chunks = 0;
  u64 dropped_chunks = 0;
  u64 samples = 0;
  u64 events = 0;
  u64 beats = 0;
  u64 events_queued = 0;
  u64 events_dropped = 0;
  u64 resets = 0;
  // Connection counters.
  u64 net_events_sent = 0;
  u64 net_events_shed = 0;  ///< events dropped at the egress bound (slow reader)
  u64 net_bytes_in = 0;
  u64 net_bytes_out = 0;
};

struct ErrorFrame {
  WireError code = WireError::None;
  std::string message;
};

// --------------------------------------------------------------- encoders

void encode_hello(std::vector<u8>& out, u16 version = kProtoVersion);
void encode_open(std::vector<u8>& out, const OpenFrame& f);
void encode_chunk(std::vector<u8>& out, std::span<const i32> samples);
void encode_drain(std::vector<u8>& out, u32 timeout_ms);
void encode_close(std::vector<u8>& out);
void encode_reset(std::vector<u8>& out, bool warm);
void encode_events(std::vector<u8>& out, std::span<const stream::Event> events);
void encode_stats(std::vector<u8>& out, const StatsFrame& f);
void encode_error(std::vector<u8>& out, WireError code, std::string_view message);

// ------------------------------------------------- payload decoders
// Each takes the payload (header already stripped) and returns
// WireError::None on success; anything else means the payload is invalid
// and `out` must not be used.

[[nodiscard]] WireError decode_hello(std::span<const u8> p, HelloFrame& out);
[[nodiscard]] WireError decode_open(std::span<const u8> p, OpenFrame& out);
[[nodiscard]] WireError decode_drain(std::span<const u8> p, DrainFrame& out);
[[nodiscard]] WireError decode_reset(std::span<const u8> p, ResetFrame& out);
[[nodiscard]] WireError decode_events(std::span<const u8> p, std::vector<stream::Event>& out);
[[nodiscard]] WireError decode_stats(std::span<const u8> p, StatsFrame& out);
[[nodiscard]] WireError decode_error(std::span<const u8> p, ErrorFrame& out);

/// CHUNK payloads are raw samples: decode in place (used by tests; the
/// server instead lands the bytes directly in a loaned buffer and calls
/// chunk_payload_to_samples on it).
[[nodiscard]] WireError decode_chunk(std::span<const u8> p, std::vector<i32>& out);

/// Convert a CHUNK payload that was received in place over an i32 buffer
/// into host samples. On little-endian hosts this is a no-op (the zero-copy
/// contract); on big-endian hosts it byte-swaps in place.
void chunk_payload_to_samples(std::span<i32> samples) noexcept;

// ----------------------------------------------------------- FrameDecoder

/// Incremental frame extractor over a TCP byte stream: feed() arbitrary
/// slices (torn anywhere, one byte at a time included), next() yields
/// complete frames or a fatal framing error. Used by the client and the
/// codec tests; the server's ingest state machine reads CHUNK payloads
/// directly into buffer loans instead and only shares decode_header.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const u8> bytes);

  enum class Next {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< hdr/payload filled with one complete frame
    Error,     ///< fatal framing error (err filled); the stream is dead
  };

  [[nodiscard]] Next next(FrameHeader& hdr, std::vector<u8>& payload, WireError& err);

 private:
  std::vector<u8> buf_;
  std::size_t pos_ = 0;
  std::size_t max_payload_;
  bool dead_ = false;
};

}  // namespace xbs::net
