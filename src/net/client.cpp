#include "xbs/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace xbs::net {

using namespace std::chrono_literals;

void NetClient::connect(const std::string& host, u16 port,
                        std::chrono::milliseconds retry_for) {
  disconnect();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("NetClient: bad host address: " + host);
  }
  const auto deadline = std::chrono::steady_clock::now() + retry_for;
  while (true) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw std::runtime_error("NetClient: socket failed");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) break;
    ::close(fd_);
    fd_ = -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("NetClient: connect timed out");
    }
    std::this_thread::sleep_for(5ms);  // the server may still be starting
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  // A dead server must not hang a blocking wait forever.
  timeval tv{};
  tv.tv_sec = 10;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  dec_ = FrameDecoder{};
  pending_.clear();
  std::vector<u8> buf;
  encode_hello(buf);
  send_all(buf);
  (void)wait_stats();  // ack = Hello
}

void NetClient::disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::send_all(const std::vector<u8>& bytes) {
  if (fd_ < 0) throw std::runtime_error("NetClient: not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    disconnect();
    throw std::runtime_error("NetClient: send failed (connection lost)");
  }
}

bool NetClient::dispatch(const FrameHeader& hdr, const std::vector<u8>& payload,
                         StatsFrame& stats) {
  switch (hdr.type) {
    case FrameType::Event: {
      if (decode_events(payload, pending_) != WireError::None) {
        throw std::runtime_error("NetClient: malformed EVENT frame");
      }
      return false;
    }
    case FrameType::Stats: {
      if (decode_stats(payload, stats) != WireError::None) {
        throw std::runtime_error("NetClient: malformed STATS frame");
      }
      return true;
    }
    case FrameType::Error: {
      ErrorFrame e;
      if (decode_error(payload, e) != WireError::None) {
        throw std::runtime_error("NetClient: malformed ERROR frame");
      }
      if (is_fatal(e.code)) disconnect();  // the server hung up after this
      throw RemoteError(e.code, std::string(to_string(e.code)) + ": " + e.message);
    }
    default:
      throw std::runtime_error("NetClient: unexpected server frame");
  }
}

void NetClient::poll_socket() {
  u8 buf[16384];
  while (fd_ >= 0) {
    const ssize_t r = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (r > 0) {
      dec_.feed(std::span<const u8>(buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (r < 0 && errno == EINTR) continue;
    disconnect();  // EOF or hard error
    return;
  }
}

StatsFrame NetClient::wait_stats() {
  FrameHeader hdr;
  std::vector<u8> payload;
  WireError err = WireError::None;
  u8 buf[16384];
  while (true) {
    while (true) {
      const FrameDecoder::Next nx = dec_.next(hdr, payload, err);
      if (nx == FrameDecoder::Next::NeedMore) break;
      if (nx == FrameDecoder::Next::Error) {
        disconnect();
        throw std::runtime_error(std::string("NetClient: framing error: ") +
                                 to_string(err));
      }
      StatsFrame stats;
      if (dispatch(hdr, payload, stats)) return stats;
    }
    if (fd_ < 0) throw std::runtime_error("NetClient: connection closed");
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      dec_.feed(std::span<const u8>(buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    disconnect();
    throw std::runtime_error(r == 0 ? "NetClient: connection closed"
                                    : "NetClient: receive failed/timed out");
  }
}

StatsFrame NetClient::open(const OpenFrame& frame, std::chrono::milliseconds busy_retry_for) {
  const auto deadline = std::chrono::steady_clock::now() + busy_retry_for;
  while (true) {
    std::vector<u8> buf;
    encode_open(buf, frame);
    send_all(buf);
    try {
      return wait_stats();
    } catch (const RemoteError& e) {
      // The reconnect race: the previous connection's park has not landed
      // yet. Non-fatal — retry on the same healthy connection.
      if (e.code() != WireError::SessionBusy ||
          std::chrono::steady_clock::now() >= deadline) {
        throw;
      }
      std::this_thread::sleep_for(5ms);
    }
  }
}

void NetClient::send_chunk(std::span<const i32> samples) {
  std::vector<u8> buf;
  encode_chunk(buf, samples);
  send_all(buf);
}

StatsFrame NetClient::drain(u32 timeout_ms) {
  std::vector<u8> buf;
  encode_drain(buf, timeout_ms);
  send_all(buf);
  return wait_stats();
}

StatsFrame NetClient::close_session() {
  std::vector<u8> buf;
  encode_close(buf);
  send_all(buf);
  return wait_stats();
}

StatsFrame NetClient::reset_session(bool warm) {
  std::vector<u8> buf;
  encode_reset(buf, warm);
  send_all(buf);
  return wait_stats();
}

std::size_t NetClient::take_events(std::vector<stream::Event>& out) {
  poll_socket();
  FrameHeader hdr;
  std::vector<u8> payload;
  WireError err = WireError::None;
  while (true) {
    const FrameDecoder::Next nx = dec_.next(hdr, payload, err);
    if (nx == FrameDecoder::Next::NeedMore) break;
    if (nx == FrameDecoder::Next::Error) {
      disconnect();
      throw std::runtime_error(std::string("NetClient: framing error: ") +
                               to_string(err));
    }
    StatsFrame stats;
    (void)dispatch(hdr, payload, stats);  // unsolicited STATS is dropped
  }
  const std::size_t n = pending_.size();
  out.insert(out.end(), pending_.begin(), pending_.end());
  pending_.clear();
  return n;
}

}  // namespace xbs::net
