#include "xbs/net/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "xbs/common/wire.hpp"

namespace xbs::net {

const char* to_string(FrameType t) noexcept {
  switch (t) {
    case FrameType::Hello: return "HELLO";
    case FrameType::Open: return "OPEN";
    case FrameType::Chunk: return "CHUNK";
    case FrameType::Drain: return "DRAIN";
    case FrameType::Close: return "CLOSE";
    case FrameType::Reset: return "RESET";
    case FrameType::Event: return "EVENT";
    case FrameType::Stats: return "STATS";
    case FrameType::Error: return "ERROR";
  }
  return "?";
}

const char* to_string(WireError e) noexcept {
  switch (e) {
    case WireError::None: return "None";
    case WireError::BadMagic: return "BadMagic";
    case WireError::BadVersion: return "BadVersion";
    case WireError::BadHeader: return "BadHeader";
    case WireError::UnknownType: return "UnknownType";
    case WireError::Oversize: return "Oversize";
    case WireError::Malformed: return "Malformed";
    case WireError::HelloRequired: return "HelloRequired";
    case WireError::NoSession: return "NoSession";
    case WireError::SessionExists: return "SessionExists";
    case WireError::SessionBusy: return "SessionBusy";
    case WireError::SessionLimit: return "SessionLimit";
    case WireError::Refused: return "Refused";
    case WireError::Internal: return "Internal";
  }
  return "?";
}

namespace {

[[nodiscard]] bool known_type(u8 t) noexcept {
  switch (static_cast<FrameType>(t)) {
    case FrameType::Hello:
    case FrameType::Open:
    case FrameType::Chunk:
    case FrameType::Drain:
    case FrameType::Close:
    case FrameType::Reset:
    case FrameType::Event:
    case FrameType::Stats:
    case FrameType::Error:
      return true;
  }
  return false;
}

}  // namespace

WireError decode_header(std::span<const u8> hdr, FrameHeader& out, std::size_t max_payload) {
  if (hdr.size() < kHeaderBytes) return WireError::BadHeader;
  if (wire::get_u32(hdr.data()) != kMagic) return WireError::BadMagic;
  const u8 type = hdr[4];
  const u8 flags = hdr[5];
  const u16 reserved = wire::get_u16(hdr.data() + 6);
  const u32 len = wire::get_u32(hdr.data() + 8);
  if (!known_type(type)) return WireError::UnknownType;
  // Version-1 frames carry zero flags/reserved; a nonzero value is either
  // corruption or a future version this peer cannot speak.
  if (flags != 0 || reserved != 0) return WireError::BadHeader;
  if (len > max_payload) return WireError::Oversize;
  out.type = static_cast<FrameType>(type);
  out.flags = flags;
  out.payload_len = len;
  return WireError::None;
}

void put_header(std::vector<u8>& out, FrameType type, std::size_t payload_len) {
  wire::put_u32(out, kMagic);
  wire::put_u8(out, static_cast<u8>(type));
  wire::put_u8(out, 0);
  wire::put_u16(out, 0);
  wire::put_u32(out, static_cast<u32>(payload_len));
}

// --------------------------------------------------------------- encoders

void encode_hello(std::vector<u8>& out, u16 version) {
  put_header(out, FrameType::Hello, 4);
  wire::put_u16(out, version);
  wire::put_u16(out, 0);
}

void encode_open(std::vector<u8>& out, const OpenFrame& f) {
  put_header(out, FrameType::Open, 8 + 4 + 4 * pantompkins::kNumStages);
  wire::put_u64(out, f.token);
  wire::put_u8(out, static_cast<u8>(f.add_kind));
  wire::put_u8(out, static_cast<u8>(f.mult_kind));
  wire::put_u8(out, static_cast<u8>(f.policy));
  wire::put_u8(out, 0);
  for (const i32 l : f.lsbs) wire::put_i32(out, l);
}

void encode_chunk(std::vector<u8>& out, std::span<const i32> samples) {
  put_header(out, FrameType::Chunk, samples.size() * 4);
  for (const i32 s : samples) wire::put_i32(out, s);
}

void encode_drain(std::vector<u8>& out, u32 timeout_ms) {
  put_header(out, FrameType::Drain, 4);
  wire::put_u32(out, timeout_ms);
}

void encode_close(std::vector<u8>& out) { put_header(out, FrameType::Close, 0); }

void encode_reset(std::vector<u8>& out, bool warm) {
  put_header(out, FrameType::Reset, 4);
  wire::put_u8(out, warm ? 1 : 0);
  wire::put_u8(out, 0);
  wire::put_u16(out, 0);
}

void encode_events(std::vector<u8>& out, std::span<const stream::Event> events) {
  put_header(out, FrameType::Event, 8 + events.size() * kEventWireBytes);
  wire::put_u32(out, static_cast<u32>(events.size()));
  wire::put_u32(out, 0);
  for (const stream::Event& e : events) {
    wire::put_u64(out, static_cast<u64>(e.peak.raw_index));
    wire::put_u64(out, static_cast<u64>(e.peak.mwi_index));
    wire::put_u64(out, static_cast<u64>(e.peak.hpf_index));
    wire::put_i64(out, e.peak.mwi_value);
    wire::put_i64(out, e.peak.hpf_value);
    wire::put_u8(out, static_cast<u8>(e.peak.decision));
    for (int i = 0; i < 7; ++i) wire::put_u8(out, 0);
    wire::put_f64(out, e.time_s);
    wire::put_f64(out, e.rr_s);
    wire::put_f64(out, e.hr_bpm);
  }
}

void encode_stats(std::vector<u8>& out, const StatsFrame& f) {
  put_header(out, FrameType::Stats, 4 + 14 * 8);
  wire::put_u16(out, f.version);
  wire::put_u8(out, static_cast<u8>(f.ack));
  wire::put_u8(out, f.session_state);
  wire::put_u64(out, f.chunks_in);
  wire::put_u64(out, f.chunks_processed);
  wire::put_u64(out, f.rejected_chunks);
  wire::put_u64(out, f.dropped_chunks);
  wire::put_u64(out, f.samples);
  wire::put_u64(out, f.events);
  wire::put_u64(out, f.beats);
  wire::put_u64(out, f.events_queued);
  wire::put_u64(out, f.events_dropped);
  wire::put_u64(out, f.resets);
  wire::put_u64(out, f.net_events_sent);
  wire::put_u64(out, f.net_events_shed);
  wire::put_u64(out, f.net_bytes_in);
  wire::put_u64(out, f.net_bytes_out);
}

void encode_error(std::vector<u8>& out, WireError code, std::string_view message) {
  // Error text is advisory: cap it so an ERROR frame always fits well below
  // any sane payload bound.
  const std::size_t n = std::min<std::size_t>(message.size(), 512);
  put_header(out, FrameType::Error, 8 + n);
  wire::put_u16(out, static_cast<u16>(code));
  wire::put_u16(out, 0);
  wire::put_u32(out, static_cast<u32>(n));
  out.insert(out.end(), message.begin(), message.begin() + static_cast<std::ptrdiff_t>(n));
}

// --------------------------------------------------------------- decoders

pantompkins::PipelineConfig OpenFrame::config() const {
  pantompkins::LsbVector v{};
  std::copy(lsbs.begin(), lsbs.end(), v.begin());
  return pantompkins::PipelineConfig::from_lsbs(v, add_kind, mult_kind, policy);
}

WireError decode_hello(std::span<const u8> p, HelloFrame& out) {
  wire::WireReader r(p);
  out.version = r.read_u16();
  const u16 reserved = r.read_u16();
  if (!r.ok() || r.remaining() != 0 || reserved != 0) return WireError::Malformed;
  if (out.version != kProtoVersion) return WireError::BadVersion;
  return WireError::None;
}

WireError decode_open(std::span<const u8> p, OpenFrame& out) {
  wire::WireReader r(p);
  out.token = r.read_u64();
  const u8 add = r.read_u8();
  const u8 mult = r.read_u8();
  const u8 policy = r.read_u8();
  const u8 pad = r.read_u8();
  for (i32& l : out.lsbs) l = r.read_i32();
  if (!r.ok() || r.remaining() != 0 || pad != 0) return WireError::Malformed;
  // Enum ranges are a trust boundary: an out-of-range kind from the wire
  // must be a Malformed reply, never an out-of-range enum in the library.
  if (add > static_cast<u8>(AdderKind::Approx5)) return WireError::Malformed;
  if (mult > static_cast<u8>(MultKind::V2)) return WireError::Malformed;
  if (policy > static_cast<u8>(ApproxPolicy::Aggressive)) return WireError::Malformed;
  for (const i32 l : out.lsbs) {
    if (l < 0 || l > 32) return WireError::Malformed;
  }
  out.add_kind = static_cast<AdderKind>(add);
  out.mult_kind = static_cast<MultKind>(mult);
  out.policy = static_cast<ApproxPolicy>(policy);
  return WireError::None;
}

WireError decode_drain(std::span<const u8> p, DrainFrame& out) {
  wire::WireReader r(p);
  out.timeout_ms = r.read_u32();
  if (!r.ok() || r.remaining() != 0) return WireError::Malformed;
  return WireError::None;
}

WireError decode_reset(std::span<const u8> p, ResetFrame& out) {
  wire::WireReader r(p);
  const u8 warm = r.read_u8();
  const u8 pad8 = r.read_u8();
  const u16 pad16 = r.read_u16();
  if (!r.ok() || r.remaining() != 0 || warm > 1 || pad8 != 0 || pad16 != 0) {
    return WireError::Malformed;
  }
  out.warm = warm == 1;
  return WireError::None;
}

WireError decode_events(std::span<const u8> p, std::vector<stream::Event>& out) {
  wire::WireReader r(p);
  const u32 count = r.read_u32();
  const u32 reserved = r.read_u32();
  if (!r.ok() || reserved != 0) return WireError::Malformed;
  if (r.remaining() != static_cast<std::size_t>(count) * kEventWireBytes) {
    return WireError::Malformed;
  }
  out.reserve(out.size() + count);
  for (u32 i = 0; i < count; ++i) {
    stream::Event e;
    e.peak.raw_index = static_cast<std::size_t>(r.read_u64());
    e.peak.mwi_index = static_cast<std::size_t>(r.read_u64());
    e.peak.hpf_index = static_cast<std::size_t>(r.read_u64());
    e.peak.mwi_value = r.read_i64();
    e.peak.hpf_value = r.read_i64();
    const u8 decision = r.read_u8();
    r.skip(7);
    e.time_s = r.read_f64();
    e.rr_s = r.read_f64();
    e.hr_bpm = r.read_f64();
    if (!r.ok() ||
        decision > static_cast<u8>(pantompkins::PeakDecision::SearchBackRecovered)) {
      return WireError::Malformed;
    }
    e.peak.decision = static_cast<pantompkins::PeakDecision>(decision);
    out.push_back(e);
  }
  return WireError::None;
}

WireError decode_stats(std::span<const u8> p, StatsFrame& out) {
  wire::WireReader r(p);
  out.version = r.read_u16();
  const u8 ack = r.read_u8();
  out.session_state = r.read_u8();
  out.chunks_in = r.read_u64();
  out.chunks_processed = r.read_u64();
  out.rejected_chunks = r.read_u64();
  out.dropped_chunks = r.read_u64();
  out.samples = r.read_u64();
  out.events = r.read_u64();
  out.beats = r.read_u64();
  out.events_queued = r.read_u64();
  out.events_dropped = r.read_u64();
  out.resets = r.read_u64();
  out.net_events_sent = r.read_u64();
  out.net_events_shed = r.read_u64();
  out.net_bytes_in = r.read_u64();
  out.net_bytes_out = r.read_u64();
  if (!r.ok() || r.remaining() != 0) return WireError::Malformed;
  if (ack < static_cast<u8>(StatsAck::Hello) || ack > static_cast<u8>(StatsAck::Reset)) {
    return WireError::Malformed;
  }
  out.ack = static_cast<StatsAck>(ack);
  return WireError::None;
}

WireError decode_error(std::span<const u8> p, ErrorFrame& out) {
  wire::WireReader r(p);
  const u16 code = r.read_u16();
  const u16 reserved = r.read_u16();
  const u32 len = r.read_u32();
  if (!r.ok() || reserved != 0 || r.remaining() != len) return WireError::Malformed;
  if (code == 0 || code > static_cast<u16>(WireError::Internal)) return WireError::Malformed;
  const std::span<const u8> msg = r.read_bytes(len);
  out.code = static_cast<WireError>(code);
  out.message.assign(msg.begin(), msg.end());
  return WireError::None;
}

WireError decode_chunk(std::span<const u8> p, std::vector<i32>& out) {
  if (p.size() % 4 != 0) return WireError::Malformed;
  out.resize(p.size() / 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<i32>(wire::get_u32(p.data() + 4 * i));
  }
  return WireError::None;
}

void chunk_payload_to_samples(std::span<i32> samples) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    (void)samples;  // wire layout == memory layout: the zero-copy fast path
  } else {
    for (i32& s : samples) {
      u32 v = std::bit_cast<u32>(s);
      v = ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
          ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
      s = std::bit_cast<i32>(v);
    }
  }
}

// ----------------------------------------------------------- FrameDecoder

void FrameDecoder::feed(std::span<const u8> bytes) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so long-running connections don't grow the buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Next FrameDecoder::next(FrameHeader& hdr, std::vector<u8>& payload,
                                      WireError& err) {
  if (dead_) {
    err = WireError::BadHeader;
    return Next::Error;
  }
  if (buf_.size() - pos_ < kHeaderBytes) return Next::NeedMore;
  const WireError he =
      decode_header(std::span<const u8>(buf_).subspan(pos_, kHeaderBytes), hdr, max_payload_);
  if (he != WireError::None) {
    // A framing error is unrecoverable: without a trustworthy length there
    // is no way to resynchronize the stream.
    dead_ = true;
    err = he;
    return Next::Error;
  }
  if (buf_.size() - pos_ - kHeaderBytes < hdr.payload_len) return Next::NeedMore;
  payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kHeaderBytes),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kHeaderBytes +
                                                            hdr.payload_len));
  pos_ += kHeaderBytes + hdr.payload_len;
  return Next::Frame;
}

}  // namespace xbs::net
