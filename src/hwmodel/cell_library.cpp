#include "xbs/hwmodel/cell_library.hpp"

#include <array>

namespace xbs::hwmodel {
namespace {

// Paper Table 1 (65 nm, Synopsys Design Compiler): area [um^2], delay [ns],
// power [uW], energy [fJ].
constexpr std::array<Cost, 6> kAdderCosts = {{
    {10.08, 0.18, 2.27, 0.409},  // Accurate
    {8.28, 0.11, 1.34, 0.147},   // ApproxAdd1
    {3.96, 0.08, 0.61, 0.049},   // ApproxAdd2
    {3.60, 0.06, 0.41, 0.025},   // ApproxAdd3
    {3.24, 0.06, 0.33, 0.020},   // ApproxAdd4
    {0.00, 0.00, 0.00, 0.000},   // ApproxAdd5 (wiring only)
}};

constexpr std::array<Cost, 3> kMultCosts = {{
    {14.40, 0.16, 1.80, 0.288},  // Accurate 2x2
    {11.52, 0.13, 1.67, 0.167},  // AppMultV1
    {9.72, 0.06, 1.37, 0.137},   // AppMultV2
}};

}  // namespace

Cost cell_cost(AdderKind kind) noexcept { return kAdderCosts[static_cast<std::size_t>(kind)]; }

Cost cell_cost(MultKind kind) noexcept { return kMultCosts[static_cast<std::size_t>(kind)]; }

Cost register_bit_cost() noexcept {
  // Typical 65 nm DFF: ~2x the accurate FA area, clocked power dominated by
  // the clock tree (excluded here, as in the paper).
  return Cost{20.2, 0.0, 0.0, 0.0};
}

}  // namespace xbs::hwmodel
