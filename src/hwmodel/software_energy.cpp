#include "xbs/hwmodel/software_energy.hpp"

// Header-only model; this translation unit exists so the target has a
// non-interface source and the header stays self-contained.
