#include "xbs/hwmodel/software_energy.hpp"

namespace xbs::hwmodel {

// Calibration note: the accurate pipeline performs, per sample,
//   adds:  10 (LPF) + 31 (HPF) + 3 (DER) + 0 (SQR) + 29 (MWI) = 73
//   mults: 11 (LPF) + 32 (HPF) + 4 (DER) + 1 (SQR) +  0 (MWI) = 48
// With the default per-op timings, 73 * 25 ns + 48 * 35 ns = 3.505 us; the
// remaining 1.495 us of the published ~5 us/sample aggregate is attributed
// to loads/stores, loop control and the detector — the overhead term. The
// defaults therefore satisfy
//   ops_time_s(accurate mix) + overhead_per_sample_s == time_per_sample_s
// exactly, which tests/test_software_energy.cpp pins down.

double SoftwareEnergyModel::ops_time_s(const arith::OpCounts& ops) const noexcept {
  return static_cast<double>(ops.adds) * time_per_add_s +
         static_cast<double>(ops.mults) * time_per_mult_s;
}

double SoftwareEnergyModel::ops_energy_j(const arith::OpCounts& ops) const noexcept {
  return active_power_w * ops_time_s(ops);
}

double SoftwareEnergyModel::record_time_s(std::span<const arith::OpCounts> stage_ops,
                                          u64 n_samples) const noexcept {
  double t = static_cast<double>(n_samples) * overhead_per_sample_s;
  for (const arith::OpCounts& ops : stage_ops) t += ops_time_s(ops);
  return t;
}

double SoftwareEnergyModel::record_energy_j(std::span<const arith::OpCounts> stage_ops,
                                            u64 n_samples) const noexcept {
  return active_power_w * record_time_s(stage_ops, n_samples);
}

double SoftwareEnergyModel::record_energy_per_sample_fj(
    std::span<const arith::OpCounts> stage_ops, u64 n_samples) const noexcept {
  if (n_samples == 0) return 0.0;
  return record_energy_j(stage_ops, n_samples) / static_cast<double>(n_samples) * 1e15;
}

arith::OpCounts accurate_pipeline_ops_per_sample() noexcept {
  return arith::OpCounts{73, 48};
}

}  // namespace xbs::hwmodel
