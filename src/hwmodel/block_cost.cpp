#include "xbs/hwmodel/block_cost.hpp"

#include <algorithm>
#include <limits>

#include "xbs/arith/structure.hpp"

namespace xbs::hwmodel {
namespace {

double ratio(double acc, double approx) noexcept {
  if (approx <= 0.0) {
    return acc <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return acc / approx;
}

}  // namespace

Cost adder_block_cost(const arith::AdderConfig& cfg) {
  Cost total{};
  for (int i = 0; i < cfg.width; ++i) {
    const bool approx = arith::fa_is_approx(cfg.weight_offset + i, cfg.approx_lsbs);
    total += cell_cost(approx ? cfg.kind : AdderKind::Accurate);
  }
  return total;
}

Cost mult_block_cost(const arith::MultiplierConfig& cfg) {
  const arith::MultStructure s = arith::compute_mult_structure(cfg.width);
  Cost total{};
  // Elementary 2x2 modules.
  for (const auto& e : s.elems) {
    const bool approx = arith::elem_is_approx(cfg.policy, e.out_offset, cfg.approx_lsbs);
    const Cost c = cell_cost(approx ? cfg.mult_kind : MultKind::Accurate);
    total.area_um2 += c.area_um2;
    total.power_uw += c.power_uw;
    total.energy_fj += c.energy_fj;
  }
  // Partial-product accumulation adders.
  for (const auto& a : s.adders) {
    for (int i = 0; i < a.width; ++i) {
      const bool approx = arith::fa_is_approx(a.out_offset + i, cfg.approx_lsbs);
      const Cost c = cell_cost(approx ? cfg.adder_kind : AdderKind::Accurate);
      total.area_um2 += c.area_um2;
      total.power_uw += c.power_uw;
      total.energy_fj += c.energy_fj;
    }
  }
  // First-order critical path: one elementary module at offset 0, then the
  // three sequential combine adders of each level on the base-0 path.
  const bool elem0_approx = arith::elem_is_approx(cfg.policy, 0, cfg.approx_lsbs);
  double delay = cell_cost(elem0_approx ? cfg.mult_kind : MultKind::Accurate).delay_ns;
  for (int n = 4; n <= cfg.width; n *= 2) {
    const arith::AdderConfig level{2 * n, cfg.approx_lsbs, cfg.adder_kind, 0};
    delay += 3.0 * adder_block_cost(level).delay_ns;
  }
  total.delay_ns = delay;
  return total;
}

Cost stage_cost(int n_adders, int n_mults, const arith::StageArithConfig& cfg) {
  const Cost add = adder_block_cost(cfg.adder);
  const Cost mult = mult_block_cost(cfg.mult);
  Cost total = static_cast<double>(n_adders) * add + static_cast<double>(n_mults) * mult;
  // Stage latency is one multiplier followed by the accumulation adder chain,
  // not the sum over all parallel instances.
  total.delay_ns = (n_mults > 0 ? mult.delay_ns : 0.0) + (n_adders > 0 ? add.delay_ns : 0.0);
  return total;
}

Reductions reductions(const Cost& accurate, const Cost& approximate) noexcept {
  Reductions r;
  r.area = ratio(accurate.area_um2, approximate.area_um2);
  r.delay = ratio(accurate.delay_ns, approximate.delay_ns);
  r.power = ratio(accurate.power_uw, approximate.power_uw);
  r.energy = ratio(accurate.energy_fj, approximate.energy_fj);
  return r;
}

}  // namespace xbs::hwmodel
