#include "xbs/hwmodel/sensor_node.hpp"

#include <cmath>

namespace xbs::hwmodel {

double SensorNodeSpec::sensing_gap_orders() const noexcept {
  return std::log10(total_j_per_day / sensing_j_per_day);
}

double SensorNodeSpec::total_after_processing_reduction(double factor) const noexcept {
  const double proc = processing_j_per_day();
  return total_j_per_day - proc + proc / factor;
}

const std::array<SensorNodeSpec, 5>& standard_nodes() noexcept {
  // Constants adapted from the studies Fig. 1 cites ([16], [18]): totals span
  // ~20 J/day (temperature) to ~2.4 kJ/day (EEG); sensing energy sits 6-7
  // orders below the respective total; processing share within 40-60 %.
  static const std::array<SensorNodeSpec, 5> nodes = {{
      {"Heart Rate", 45.0, 3.1e-5, 0.42},
      {"Oxygen Sat.", 160.0, 1.1e-4, 0.55},
      {"Temp.", 18.0, 6.0e-6, 0.40},
      {"ECG", 650.0, 4.2e-4, 0.60},
      {"EEG", 2400.0, 1.6e-3, 0.58},
  }};
  return nodes;
}

}  // namespace xbs::hwmodel
