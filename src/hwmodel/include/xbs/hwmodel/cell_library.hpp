/// \file cell_library.hpp
/// \brief 65 nm cost data of the elementary modules (paper Table 1).
///
/// These numbers stand in for the Synopsys Design Compiler synthesis reports
/// the paper generated for its 65 nm technology library; the paper publishes
/// them verbatim in Table 1, so per-module costs in this reproduction match
/// the paper by construction.
#pragma once

#include "xbs/common/kinds.hpp"

namespace xbs::hwmodel {

/// Synthesis cost of a hardware block (units follow Table 1).
struct Cost {
  double area_um2 = 0.0;
  double delay_ns = 0.0;
  double power_uw = 0.0;
  double energy_fj = 0.0;

  constexpr Cost& operator+=(const Cost& o) noexcept {
    area_um2 += o.area_um2;
    delay_ns += o.delay_ns;
    power_uw += o.power_uw;
    energy_fj += o.energy_fj;
    return *this;
  }
  friend constexpr Cost operator+(Cost a, const Cost& b) noexcept { return a += b; }
  friend constexpr Cost operator*(double s, const Cost& c) noexcept {
    return Cost{s * c.area_um2, s * c.delay_ns, s * c.power_uw, s * c.energy_fj};
  }
  friend constexpr bool operator==(const Cost&, const Cost&) = default;
};

/// Table 1, adder half: per 1-bit full adder.
[[nodiscard]] Cost cell_cost(AdderKind kind) noexcept;

/// Table 1, multiplier half: per elementary 2x2 multiplier.
[[nodiscard]] Cost cell_cost(MultKind kind) noexcept;

/// Per-bit register (flip-flop) cost; the paper excludes registers from the
/// approximation analysis, so this is only used for absolute-area context.
[[nodiscard]] Cost register_bit_cost() noexcept;

}  // namespace xbs::hwmodel
