/// \file sensor_node.hpp
/// \brief Energy model of bio-signal monitoring sensor nodes (paper Fig. 1).
///
/// Fig. 1 of the paper adapts per-day energy figures for five wearable
/// sensor-node types from Nia et al. (IEEE TMSCS'15) and Rault (PhD'15): the
/// sensing front-end consumes at least six orders of magnitude less than the
/// node total, and on-sensor processing accounts for 40-60 % of the total.
/// This model reproduces those published relationships and is used by the
/// Fig. 1 bench and the energy-budget example.
#pragma once

#include <array>
#include <string_view>

namespace xbs::hwmodel {

/// Per-day energy profile of one sensor-node type.
struct SensorNodeSpec {
  std::string_view name;
  double total_j_per_day = 0.0;
  double sensing_j_per_day = 0.0;
  double processing_share = 0.5;  ///< fraction of total spent on processing

  [[nodiscard]] double processing_j_per_day() const noexcept {
    return processing_share * total_j_per_day;
  }
  [[nodiscard]] double communication_j_per_day() const noexcept {
    return total_j_per_day - processing_j_per_day() - sensing_j_per_day;
  }
  /// Orders of magnitude between sensing and total energy.
  [[nodiscard]] double sensing_gap_orders() const noexcept;

  /// New total after scaling processing energy down by \p factor (>= 1).
  [[nodiscard]] double total_after_processing_reduction(double factor) const noexcept;

  /// Battery-lifetime extension factor achieved by the processing reduction.
  [[nodiscard]] double lifetime_extension(double factor) const noexcept {
    return total_j_per_day / total_after_processing_reduction(factor);
  }
};

/// The five node types of Fig. 1: heart rate, oxygen saturation, skin
/// temperature, ECG, EEG.
[[nodiscard]] const std::array<SensorNodeSpec, 5>& standard_nodes() noexcept;

}  // namespace xbs::hwmodel
