/// \file software_energy.hpp
/// \brief Software-execution energy model (Fig. 12 configuration A1).
///
/// The paper measures the Pan-Tompkins application on a Raspberry Pi 3 B+
/// (ARMv8, HDMI and WiFi off) and reports its energy to be ~7 orders of
/// magnitude above the accurate ASIC datapath (A2). This analytical model
/// substitutes that measurement: energy = SoC active power x processing
/// time, with processing time attributed per datapath operation so the
/// batched OpCounts the pipeline reports can be priced directly. The default
/// per-op timings are calibrated so that the accurate pipeline's operation
/// mix (73 adds + 48 multiplies per sample, plus control/detection overhead)
/// reproduces the published ~5 us/sample aggregate (see DESIGN.md §1).
#pragma once

#include <span>

#include "xbs/arith/kernel.hpp"
#include "xbs/common/types.hpp"

namespace xbs::hwmodel {

/// Raspberry-Pi-class software execution model with per-op attribution.
struct SoftwareEnergyModel {
  double active_power_w = 2.1;      ///< SoC busy power, HDMI/WiFi disabled
  double time_per_sample_s = 5e-6;  ///< aggregate per-sample filtering +
                                    ///< detection time (~7k cycles at 1.4 GHz)

  /// Per-operation timing used for OpCounts-based attribution. Defaults are
  /// chosen so the accurate pipeline's per-sample mix sums exactly to
  /// time_per_sample_s (adds_per_sample * t_add + mults_per_sample * t_mult +
  /// overhead == aggregate); see software_energy.cpp.
  double time_per_add_s = 25e-9;        ///< 32-bit add/sub on the A53 pipeline
  double time_per_mult_s = 35e-9;       ///< 16x16 multiply (MUL + widening)
  double overhead_per_sample_s = 1.495e-6;  ///< loads/stores, control, detection

  // --- aggregate view (configuration A1 of Fig. 12) ---
  [[nodiscard]] double energy_per_sample_j() const noexcept {
    return active_power_w * time_per_sample_s;
  }
  [[nodiscard]] double energy_per_sample_fj() const noexcept {
    return energy_per_sample_j() * 1e15;
  }

  // --- per-op attribution over batched OpCounts ---
  /// Execution time of the given operation mix (no per-sample overhead).
  [[nodiscard]] double ops_time_s(const arith::OpCounts& ops) const noexcept;

  /// Energy of the given operation mix (no per-sample overhead).
  [[nodiscard]] double ops_energy_j(const arith::OpCounts& ops) const noexcept;

  /// Execution time of a whole record: summed per-stage operation mixes
  /// (e.g. PipelineResult::ops) plus per-sample overhead.
  [[nodiscard]] double record_time_s(std::span<const arith::OpCounts> stage_ops,
                                     u64 n_samples) const noexcept;

  /// Energy of a whole record (power x record_time_s).
  [[nodiscard]] double record_energy_j(std::span<const arith::OpCounts> stage_ops,
                                       u64 n_samples) const noexcept;

  /// Per-sample energy of a record, in femtojoules — directly comparable to
  /// the ASIC datapath numbers of the cell-library cost model.
  [[nodiscard]] double record_energy_per_sample_fj(
      std::span<const arith::OpCounts> stage_ops, u64 n_samples) const noexcept;
};

/// The accurate pipeline's per-sample operation mix (sum of the five stage
/// inventories): 73 adds and 48 multiplies. Exposed so calibration can be
/// asserted in tests.
[[nodiscard]] arith::OpCounts accurate_pipeline_ops_per_sample() noexcept;

}  // namespace xbs::hwmodel
