/// \file software_energy.hpp
/// \brief Software-execution energy model (Fig. 12 configuration A1).
///
/// The paper measures the Pan-Tompkins application on a Raspberry Pi 3 B+
/// (ARMv8, HDMI and WiFi off) and reports its energy to be ~7 orders of
/// magnitude above the accurate ASIC datapath (A2). This analytical model
/// substitutes that measurement: energy/sample = SoC active power x per-sample
/// processing time. The default parameters are calibrated to the published
/// gap (see DESIGN.md §1).
#pragma once

namespace xbs::hwmodel {

/// Raspberry-Pi-class software execution model.
struct SoftwareEnergyModel {
  double active_power_w = 2.1;      ///< SoC busy power, HDMI/WiFi disabled
  double time_per_sample_s = 5e-6;  ///< per-sample filtering + detection time
                                    ///< (~7k cycles at 1.4 GHz)

  [[nodiscard]] double energy_per_sample_j() const noexcept {
    return active_power_w * time_per_sample_s;
  }
  [[nodiscard]] double energy_per_sample_fj() const noexcept {
    return energy_per_sample_j() * 1e15;
  }
};

}  // namespace xbs::hwmodel
