/// \file block_cost.hpp
/// \brief Structural (pre-optimization) cost roll-up for composed blocks.
///
/// Costs are computed directly from the structural decomposition shared with
/// the behavioural simulator: an N-bit RCA is N full adders with k of them
/// approximate (Fig. 6); a recursive multiplier is the Fig. 7 tree of
/// elementary 2x2 modules plus three 2N-bit accumulation adders per level.
/// These are the "naive" numbers before synthesis optimization; the netlist
/// library provides post-optimization reports (constant propagation + dead
/// logic elimination), which is what the paper's synthesized designs reflect.
#pragma once

#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/arith/unit.hpp"
#include "xbs/hwmodel/cell_library.hpp"

namespace xbs::hwmodel {

/// Cost of an approximate ripple-carry adder block. Delay is the carry-chain
/// delay (sum of per-FA delays).
[[nodiscard]] Cost adder_block_cost(const arith::AdderConfig& cfg);

/// Cost of a recursive multiplier block. Delay is a first-order critical-path
/// model: one elementary module plus the three sequential accumulation adders
/// of every combine level on the base-offset-0 path.
[[nodiscard]] Cost mult_block_cost(const arith::MultiplierConfig& cfg);

/// Cost of an application stage containing \p n_adders 32-bit adder blocks
/// and \p n_mults 16x16 multiplier blocks, all configured per \p cfg.
/// Registers are excluded, as in the paper's analysis.
[[nodiscard]] Cost stage_cost(int n_adders, int n_mults, const arith::StageArithConfig& cfg);

/// Reduction factors of an approximate block vs its accurate counterpart
/// (the paper's "Magnitude Reductions [x1]" axes). A zero-cost approximate
/// metric yields +infinity.
struct Reductions {
  double area = 1.0;
  double delay = 1.0;
  double power = 1.0;
  double energy = 1.0;
};

[[nodiscard]] Reductions reductions(const Cost& accurate, const Cost& approximate) noexcept;

}  // namespace xbs::hwmodel
