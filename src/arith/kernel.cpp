#include "xbs/arith/kernel.hpp"

#include <algorithm>
#include <mutex>

#include "xbs/common/bitops.hpp"

namespace xbs::arith {
namespace {

/// Blocks shorter than this fall back to the scalar multiplier instead of
/// building a per-coefficient product table (2^(w-1)+1 multiplies to fill):
/// below the threshold the table cannot pay for itself within one process
/// unless it is already cached.
constexpr std::size_t kCoeffTableThreshold = 512;

}  // namespace

// ---------------------------------------------------------------- Kernel base

void Kernel::add_n_impl(std::span<const i64> a, std::span<const i64> b,
                        std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = add1(a[i], b[i]);
}

void Kernel::sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                        std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = sub1(a[i], b[i]);
}

void Kernel::mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                        std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mul1(a[i], b[i]);
}

void Kernel::mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mul1(c, x[i]);
}

void Kernel::mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = add1(acc[i], mul1(c, x[i]));
}

// ----------------------------------------------------------------- ExactKernel

i64 ExactKernel::add1(i64 a, i64 b) const {
  return sign_extend(to_unsigned_bits(a + b, 32), 32);
}

i64 ExactKernel::sub1(i64 a, i64 b) const {
  return sign_extend(to_unsigned_bits(a - b, 32), 32);
}

i64 ExactKernel::mul1(i64 a, i64 b) const {
  const i64 sa = sign_extend(to_unsigned_bits(a, 16), 16);
  const i64 sb = sign_extend(to_unsigned_bits(b, 16), 16);
  return sa * sb;
}

void ExactKernel::add_n_impl(std::span<const i64> a, std::span<const i64> b,
                             std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = sign_extend(to_unsigned_bits(a[i] + b[i], 32), 32);
  }
}

void ExactKernel::sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                             std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = sign_extend(to_unsigned_bits(a[i] - b[i], 32), 32);
  }
}

void ExactKernel::mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                             std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = sign_extend(to_unsigned_bits(a[i], 16), 16) *
             sign_extend(to_unsigned_bits(b[i], 16), 16);
  }
}

void ExactKernel::mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const {
  const i64 sc = sign_extend(to_unsigned_bits(c, 16), 16);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = sc * sign_extend(to_unsigned_bits(x[i], 16), 16);
  }
}

void ExactKernel::mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const {
  const i64 sc = sign_extend(to_unsigned_bits(c, 16), 16);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const i64 p = sc * sign_extend(to_unsigned_bits(x[i], 16), 16);
    acc[i] = sign_extend(to_unsigned_bits(acc[i] + p, 32), 32);
  }
}

// ---------------------------------------------------------------- ApproxKernel

ApproxKernel::ApproxKernel(const StageArithConfig& cfg)
    : cfg_(cfg),
      adder_(cfg.adder),
      mult_owner_(get_multiplier(cfg.mult)),
      mult_(mult_owner_.get()) {
  // Decode the adder once: the carry-free mirror adders evaluate in closed
  // form (see AddFastPath). Positions below `approx_bits_` are approximate.
  approx_bits_ = std::clamp(cfg.adder.approx_lsbs - cfg.adder.weight_offset, 0,
                            cfg.adder.width);
  if (approx_bits_ > 0 && cfg.adder.width <= 63) {
    if (cfg.adder.kind == AdderKind::Approx5) add_path_ = AddFastPath::SumIsB;
    if (cfg.adder.kind == AdderKind::Approx4) add_path_ = AddFastPath::SumIsNotA;
  }
}

i64 ApproxKernel::wired_add(u64 ua, u64 ub) const noexcept {
  // Approximate low region of a carry-free mirror adder: the low sum bits
  // are pure wiring (B for AMA5, NOT A for AMA4) and the carry into the
  // accurate high region is A's top approximate bit (Cout = A in both
  // kinds; the carry-in is ignored by the first approximate FA, so this
  // covers the subtractor's injected carry too). The accurate high region
  // is one native add, exactly like RippleCarryAdder's fast path.
  const int w = cfg_.adder.width;
  const int k = approx_bits_;
  const u64 low =
      (add_path_ == AddFastPath::SumIsB ? ub : ~ua) & low_mask(k);
  if (k >= w) return sign_extend(low & low_mask(w), w);
  const u64 carry = (ua >> (k - 1)) & 1u;
  const u64 hi = ((ua >> k) + (ub >> k) + carry) & low_mask(w - k);
  return sign_extend((hi << k) | low, w);
}

i64 ApproxKernel::add_signed_fast(i64 a, i64 b) const noexcept {
  if (add_path_ == AddFastPath::Generic) return adder_.add_signed(a, b);
  const int w = cfg_.adder.width;
  return wired_add(to_unsigned_bits(a, w), to_unsigned_bits(b, w));
}

i64 ApproxKernel::sub_signed_fast(i64 a, i64 b) const noexcept {
  if (add_path_ == AddFastPath::Generic) return adder_.sub_signed(a, b);
  const int w = cfg_.adder.width;
  // One's complement + carry-in, as in the adder-subtractor datapath; the
  // injected carry-in dies at the first approximate FA (see wired_add).
  return wired_add(to_unsigned_bits(a, w), (~to_unsigned_bits(b, w)) & low_mask(w));
}

i64 ApproxKernel::add1(i64 a, i64 b) const { return adder_.add_signed(a, b); }

i64 ApproxKernel::sub1(i64 a, i64 b) const { return adder_.sub_signed(a, b); }

i64 ApproxKernel::mul1(i64 a, i64 b) const { return mult_->multiply_signed(a, b); }

void ApproxKernel::add_n_impl(std::span<const i64> a, std::span<const i64> b,
                              std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = add_signed_fast(a[i], b[i]);
}

void ApproxKernel::sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                              std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = sub_signed_fast(a[i], b[i]);
}

void ApproxKernel::mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                              std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mult_->multiply_signed(a[i], b[i]);
}

const ApproxKernel::CoeffTable& ApproxKernel::coeff_table(i64 c) const {
  for (const CoeffTable& t : coeff_tables_) {
    if (t.coeff == c) return t;
  }
  const int w = cfg_.mult.width;
  const i64 sc = sign_extend(to_unsigned_bits(c, w), w);
  const u64 mag = sc < 0 ? static_cast<u64>(-sc) : static_cast<u64>(sc);
  CoeffTable t;
  t.coeff = c;
  t.negate = sc < 0;
  t.products = get_coeff_products(cfg_.mult, mag);
  coeff_tables_.push_back(std::move(t));
  return coeff_tables_.back();
}

const ApproxKernel::CoeffTable* ApproxKernel::coeff_table_if_warm(i64 c) const {
  for (const CoeffTable& t : coeff_tables_) {
    if (t.coeff == c) return &t;
  }
  const int w = cfg_.mult.width;
  const i64 sc = sign_extend(to_unsigned_bits(c, w), w);
  const u64 mag = sc < 0 ? static_cast<u64>(-sc) : static_cast<u64>(sc);
  auto products = peek_coeff_products(cfg_.mult, mag);
  if (products == nullptr) return nullptr;
  CoeffTable t;
  t.coeff = c;
  t.negate = sc < 0;
  t.products = std::move(products);
  coeff_tables_.push_back(std::move(t));
  return &coeff_tables_.back();
}

void ApproxKernel::mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const {
  // Below the threshold a cold table build cannot pay for itself, but a warm
  // one (kernel-local or process-wide) is still the fast path.
  const CoeffTable* t =
      out.size() >= kCoeffTableThreshold ? &coeff_table(c) : coeff_table_if_warm(c);
  if (t == nullptr) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = mult_->multiply_signed(c, x[i]);
    return;
  }
  const std::vector<i64>& prod = *t->products;
  const int w = cfg_.mult.width;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const i64 sx = sign_extend(to_unsigned_bits(x[i], w), w);
    const u64 m = sx < 0 ? static_cast<u64>(-sx) : static_cast<u64>(sx);
    const i64 p = prod[m];
    out[i] = (t->negate != (sx < 0)) ? -p : p;
  }
}

void ApproxKernel::mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const {
  const CoeffTable* t =
      acc.size() >= kCoeffTableThreshold ? &coeff_table(c) : coeff_table_if_warm(c);
  if (t == nullptr) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] = add_signed_fast(acc[i], mult_->multiply_signed(c, x[i]));
    }
    return;
  }
  const std::vector<i64>& prod = *t->products;
  const int w = cfg_.mult.width;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const i64 sx = sign_extend(to_unsigned_bits(x[i], w), w);
    const u64 m = sx < 0 ? static_cast<u64>(-sx) : static_cast<u64>(sx);
    const i64 p = prod[m];
    acc[i] = add_signed_fast(acc[i], (t->negate != (sx < 0)) ? -p : p);
  }
}

// -------------------------------------------------------------------- factory

std::unique_ptr<Kernel> make_kernel(const StageArithConfig& cfg) {
  if (cfg.is_exact()) return std::make_unique<ExactKernel>();
  return std::make_unique<ApproxKernel>(cfg);
}

// ---------------------------------------------- coefficient product table cache

namespace {

struct CoeffCacheEntry {
  MultiplierConfig cfg;
  u64 magnitude;
  std::shared_ptr<const std::vector<i64>> table;
};

// The cache is shared by every kernel in the process and may now be hit from
// the concurrent sessions of a stream::SessionPool, so reads and inserts are
// serialized. The tables themselves are immutable once published.
std::mutex& coeff_cache_mutex() {
  static std::mutex m;
  return m;
}

std::vector<CoeffCacheEntry>& coeff_cache() {
  static std::vector<CoeffCacheEntry> cache;
  return cache;
}

}  // namespace

std::shared_ptr<const std::vector<i64>> peek_coeff_products(const MultiplierConfig& cfg,
                                                            u64 magnitude) noexcept {
  const std::lock_guard<std::mutex> lock(coeff_cache_mutex());
  for (const CoeffCacheEntry& e : coeff_cache()) {
    if (e.magnitude == magnitude && e.cfg == cfg) return e.table;
  }
  return nullptr;
}

std::shared_ptr<const std::vector<i64>> get_coeff_products(const MultiplierConfig& cfg,
                                                           u64 magnitude) {
  {
    const std::lock_guard<std::mutex> lock(coeff_cache_mutex());
    for (const CoeffCacheEntry& e : coeff_cache()) {
      if (e.magnitude == magnitude && e.cfg == cfg) return e.table;
    }
  }
  // Build outside the lock (the fill is the expensive part); a racing
  // builder of the same table just publishes an equivalent duplicate.
  const auto model = get_multiplier(cfg);
  // Operand magnitudes of a w-bit signed multiplier span [0, 2^(w-1)]
  // (the upper bound is the magnitude of the most negative value).
  const std::size_t n = (std::size_t{1} << (cfg.width - 1)) + 1;
  auto table = std::make_shared<std::vector<i64>>(n);
  for (std::size_t m = 0; m < n; ++m) {
    // Same operand order as multiply_signed(c, x): the coefficient drives
    // the A port. Approximate arrays are not commutative, so this matters.
    (*table)[m] = static_cast<i64>(model->multiply_u(magnitude, static_cast<u64>(m)));
  }
  const std::lock_guard<std::mutex> lock(coeff_cache_mutex());
  coeff_cache().push_back(CoeffCacheEntry{cfg, magnitude, table});
  return table;
}

}  // namespace xbs::arith
