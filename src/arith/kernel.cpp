#include "xbs/arith/kernel.hpp"

#include <algorithm>
#include <atomic>

#include "xbs/arith/isa.hpp"
#include "xbs/common/bitops.hpp"
#include "xbs/common/sync.hpp"

namespace xbs::arith {
namespace {

/// Blocks shorter than this fall back to the scalar multiplier instead of
/// building a per-coefficient product/square table (2^w multiplies to fill):
/// below the threshold a *cold* build cannot pay for itself within one call.
/// Warm tables (pre-built by stream::SessionPool / pantompkins::warm_* or by
/// any earlier large block) are used at every size, so the threshold is moot
/// for long-running streaming processes.
constexpr std::size_t kCoeffTableThreshold = 512;

#if defined(_MSC_VER)
#define XBS_RESTRICT __restrict
#else
#define XBS_RESTRICT __restrict__
#endif

}  // namespace

// ---------------------------------------------------------------- Kernel base

void Kernel::add_n_impl(std::span<const i64> a, std::span<const i64> b,
                        std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = add1(a[i], b[i]);
}

void Kernel::sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                        std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = sub1(a[i], b[i]);
}

void Kernel::mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                        std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mul1(a[i], b[i]);
}

void Kernel::mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = mul1(c, x[i]);
}

void Kernel::mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = add1(acc[i], mul1(c, x[i]));
}

void Kernel::fir_n_impl(std::span<const int> taps, std::span<const i64> padded,
                        std::span<i64> acc) const {
  // Reference chain: one mul_cn for the first non-zero tap, one mac_n per
  // subsequent one, in tap order — the scalar per-sample dataflow, batched.
  const std::size_t T = taps.size();
  const std::size_t n = acc.size();
  bool first = true;
  for (std::size_t j = 0; j < T; ++j) {
    if (taps[j] == 0) continue;
    const std::span<const i64> xs = padded.subspan(T - 1 - j, n);
    if (first) {
      mul_cn_impl(taps[j], xs, acc);
      first = false;
    } else {
      mac_n_impl(taps[j], xs, acc);
    }
  }
  if (first) std::fill(acc.begin(), acc.end(), i64{0});
}

// ----------------------------------------------------------------- ExactKernel

i64 ExactKernel::add1(i64 a, i64 b) const {
  return sign_extend(to_unsigned_bits(a + b, 32), 32);
}

i64 ExactKernel::sub1(i64 a, i64 b) const {
  return sign_extend(to_unsigned_bits(a - b, 32), 32);
}

i64 ExactKernel::mul1(i64 a, i64 b) const {
  const i64 sa = sign_extend(to_unsigned_bits(a, 16), 16);
  const i64 sb = sign_extend(to_unsigned_bits(b, 16), 16);
  return sa * sb;
}

// The exact loops avoid per-element helper calls: truncate-then-sign-extend
// of the low 32 (16) bits is exactly a cast through i32 (i16) in C++20
// two's-complement arithmetic, which the compiler auto-vectorizes.

void ExactKernel::add_n_impl(std::span<const i64> a, std::span<const i64> b,
                             std::span<i64> out) const {
  // No restrict: element-wise aliasing with `out` is part of the contract;
  // out[i] depends only on index i, so the loop still vectorizes (the
  // compiler versions it with a runtime overlap check).
  const i64* pa = a.data();
  const i64* pb = b.data();
  i64* po = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = static_cast<i32>(static_cast<u32>(pa[i] + pb[i]));
  }
}

void ExactKernel::sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                             std::span<i64> out) const {
  const i64* pa = a.data();
  const i64* pb = b.data();
  i64* po = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = static_cast<i32>(static_cast<u32>(pa[i] - pb[i]));
  }
}

void ExactKernel::mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                             std::span<i64> out) const {
  const i64* pa = a.data();
  const i64* pb = b.data();
  i64* po = out.data();  // may alias pa/pb element-wise (kernel contract)
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = static_cast<i64>(static_cast<i16>(static_cast<u16>(pa[i]))) *
            static_cast<i64>(static_cast<i16>(static_cast<u16>(pb[i])));
  }
}

void ExactKernel::mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const {
  const i64 sc = static_cast<i16>(static_cast<u16>(c));
  const i64* XBS_RESTRICT px = x.data();
  i64* XBS_RESTRICT po = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = sc * static_cast<i64>(static_cast<i16>(static_cast<u16>(px[i])));
  }
}

void ExactKernel::mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const {
  const i64 sc = static_cast<i16>(static_cast<u16>(c));
  const i64* XBS_RESTRICT px = x.data();
  i64* XBS_RESTRICT pa = acc.data();
  const std::size_t n = acc.size();
  for (std::size_t i = 0; i < n; ++i) {
    const i64 p = sc * static_cast<i64>(static_cast<i16>(static_cast<u16>(px[i])));
    pa[i] = static_cast<i32>(static_cast<u32>(pa[i] + p));
  }
}

// ---------------------------------------------------------------- ApproxKernel

ApproxKernel::ApproxKernel(const StageArithConfig& cfg)
    : cfg_(cfg),
      adder_(cfg.adder),
      mult_owner_(get_multiplier(cfg.mult)),
      mult_(mult_owner_.get()) {
  // Decode the adder once: the carry-free mirror adders evaluate in closed
  // form (see AddFastPath). Positions below `approx_bits_` are approximate.
  approx_bits_ = std::clamp(cfg.adder.approx_lsbs - cfg.adder.weight_offset, 0,
                            cfg.adder.width);
  if (approx_bits_ > 0 && cfg.adder.width <= 63) {
    if (cfg.adder.kind == AdderKind::Approx5) add_path_ = AddFastPath::SumIsB;
    if (cfg.adder.kind == AdderKind::Approx4) add_path_ = AddFastPath::SumIsNotA;
  }
  wired_params_.width = cfg.adder.width;
  wired_params_.approx_bits = approx_bits_;
  wired_params_.sum_is_b = add_path_ == AddFastPath::SumIsB;
  wired_params_.negate_b = false;
}

i64 ApproxKernel::wired_add(u64 ua, u64 ub) const noexcept {
  // Approximate low region of a carry-free mirror adder: the low sum bits
  // are pure wiring (B for AMA5, NOT A for AMA4) and the carry into the
  // accurate high region is A's top approximate bit (Cout = A in both
  // kinds; the carry-in is ignored by the first approximate FA, so this
  // covers the subtractor's injected carry too). The accurate high region
  // is one native add, exactly like RippleCarryAdder's fast path.
  const int w = cfg_.adder.width;
  const int k = approx_bits_;
  const u64 low =
      (add_path_ == AddFastPath::SumIsB ? ub : ~ua) & low_mask(k);
  if (k >= w) return sign_extend(low & low_mask(w), w);
  const u64 carry = (ua >> (k - 1)) & 1u;
  const u64 hi = ((ua >> k) + (ub >> k) + carry) & low_mask(w - k);
  return sign_extend((hi << k) | low, w);
}

i64 ApproxKernel::add_signed_fast(i64 a, i64 b) const noexcept {
  if (add_path_ == AddFastPath::Generic) return adder_.add_signed(a, b);
  const int w = cfg_.adder.width;
  return wired_add(to_unsigned_bits(a, w), to_unsigned_bits(b, w));
}

i64 ApproxKernel::sub_signed_fast(i64 a, i64 b) const noexcept {
  if (add_path_ == AddFastPath::Generic) return adder_.sub_signed(a, b);
  const int w = cfg_.adder.width;
  // One's complement + carry-in, as in the adder-subtractor datapath; the
  // injected carry-in dies at the first approximate FA (see wired_add).
  return wired_add(to_unsigned_bits(a, w), (~to_unsigned_bits(b, w)) & low_mask(w));
}

i64 ApproxKernel::add1(i64 a, i64 b) const { return adder_.add_signed(a, b); }

i64 ApproxKernel::sub1(i64 a, i64 b) const { return adder_.sub_signed(a, b); }

i64 ApproxKernel::mul1(i64 a, i64 b) const { return mult_->multiply_signed(a, b); }

// The batched loop bodies live behind the runtime ISA dispatch (isa.hpp):
// one atomic table-pointer load per *_n call selects the scalar baseline or
// the AVX2/AVX-512 vector loops, all bit-identical to the closed forms
// above (asserted per forced ISA in tests/test_kernel_dispatch.cpp).

void ApproxKernel::add_n_impl(std::span<const i64> a, std::span<const i64> b,
                              std::span<i64> out) const {
  const std::size_t n = out.size();
  if (add_path_ != AddFastPath::Generic) {
    kernel_ops().wired_add_n(a.data(), b.data(), out.data(), n, wired_params_);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = adder_.add_signed(a[i], b[i]);
}

void ApproxKernel::sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                              std::span<i64> out) const {
  const std::size_t n = out.size();
  if (add_path_ != AddFastPath::Generic) {
    WiredAddParams p = wired_params_;
    p.negate_b = true;  // one's complement + injected carry (see wired_add)
    kernel_ops().wired_add_n(a.data(), b.data(), out.data(), n, p);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = adder_.sub_signed(a[i], b[i]);
}

void ApproxKernel::mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                              std::span<i64> out) const {
  const std::size_t n = out.size();
  if (a.data() == b.data()) {
    // The squaring pattern (SQR stage): one masked (per-lane gathered) load
    // per sample from the per-config square table. Full in-place aliasing
    // with `out` is fine — out[i] is written strictly after a[i] is read.
    if (const i64* sq = square_table(n)) {
      kernel_ops().gather_lut_n(sq, low_mask(cfg_.mult.width), a.data(),
                                out.data(), n);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = mult_->multiply_signed(a[i], b[i]);
}

const i64* ApproxKernel::coeff_table(i64 c, std::size_t n) const {
  for (const CoeffTable& t : coeff_tables_) {
    if (t.coeff == c) return t.data;
  }
  auto products = n >= kCoeffTableThreshold ? get_signed_coeff_products(cfg_.mult, c)
                                            : peek_signed_coeff_products(cfg_.mult, c);
  if (products == nullptr) return nullptr;
  CoeffTable t;
  t.coeff = c;
  t.data = products->data();
  t.owner = std::move(products);
  coeff_tables_.push_back(std::move(t));
  return coeff_tables_.back().data;
}

const i64* ApproxKernel::square_table(std::size_t n) const {
  if (square_ != nullptr) return square_;
  auto table = n >= kCoeffTableThreshold ? get_square_products(cfg_.mult)
                                         : peek_square_products(cfg_.mult);
  if (table == nullptr) return nullptr;
  square_owner_ = std::move(table);
  square_ = square_owner_->data();
  return square_;
}

void ApproxKernel::mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const {
  // Below the threshold a cold table build cannot pay for itself, but a warm
  // one (kernel-local or process-wide) is still the fast path. The signed
  // table folds the coefficient's and operand's signs in, so the walk is one
  // masked load per sample. `out` must not alias `x` (FIR contract).
  const std::size_t n = out.size();
  const i64* prod = coeff_table(c, n);
  if (prod == nullptr) {
    for (std::size_t i = 0; i < n; ++i) out[i] = mult_->multiply_signed(c, x[i]);
    return;
  }
  kernel_ops().gather_lut_n(prod, low_mask(cfg_.mult.width), x.data(), out.data(), n);
}

void ApproxKernel::fir_n_impl(std::span<const int> taps, std::span<const i64> padded,
                              std::span<i64> acc) const {
  // Product-row compilation: the tap loop re-reads the same input samples
  // once per tap, so gather the signed products P_c[x] once per *distinct*
  // coefficient over the whole padded window and reduce the tap loop to pure
  // carry-free adds over shifted row views. Bit-identical to the per-tap
  // chain: the products are the same table loads, the adds the same wired
  // closed forms, in the same tap order.
  const std::size_t T = taps.size();
  const std::size_t n = acc.size();
  if (n == 0) return;

  // Distinct non-zero coefficients, and each tap's row index.
  i32 distinct[64];
  std::size_t n_distinct = 0;
  std::size_t nonzero = 0;
  bool tables_ok = true;
  for (std::size_t j = 0; j < T && tables_ok; ++j) {
    const int c = taps[j];
    if (c == 0) continue;
    ++nonzero;
    bool seen = false;
    for (std::size_t d = 0; d < n_distinct; ++d) seen |= (distinct[d] == c);
    if (!seen) {
      if (n_distinct == 64 || coeff_table(c, n) == nullptr) {
        tables_ok = false;  // cold table (or absurd tap set): take the chain
        break;
      }
      distinct[n_distinct++] = c;
    }
  }
  if (!tables_ok || nonzero == 0 || add_path_ == AddFastPath::Generic) {
    Kernel::fir_n_impl(taps, padded, acc);
    return;
  }

  const u64 mmask = low_mask(cfg_.mult.width);
  const KernelOps& ops = kernel_ops();
  fir_rows_.resize(n_distinct);
  for (std::size_t d = 0; d < n_distinct; ++d) {
    const i64* prod = coeff_table(distinct[d], n);
    std::vector<i64>& row = fir_rows_[d];
    row.resize(padded.size());
    ops.gather_lut_n(prod, mmask, padded.data(), row.data(), padded.size());
  }
  auto row_of = [&](int c) -> const i64* {
    for (std::size_t d = 0; d < n_distinct; ++d) {
      if (distinct[d] == c) return fir_rows_[d].data();
    }
    return nullptr;  // unreachable
  };

  bool first = true;
  for (std::size_t j = 0; j < T; ++j) {
    if (taps[j] == 0) continue;
    const i64* row = row_of(taps[j]) + (T - 1 - j);
    if (first) {
      std::copy_n(row, n, acc.data());
      first = false;
    } else {
      // In-place accumulate (out aliases a element-wise — loop contract).
      ops.wired_add_n(acc.data(), row, acc.data(), n, wired_params_);
    }
  }
}

void ApproxKernel::mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const {
  const std::size_t n = acc.size();
  const i64* prod = coeff_table(c, n);
  if (prod == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = add_signed_fast(acc[i], mult_->multiply_signed(c, x[i]));
    }
    return;
  }
  if (add_path_ != AddFastPath::Generic) {
    // Fused gathered table walk + carry-free accumulate: the accumulator on
    // the A port, the product on the B port — the same operand order as the
    // scalar chain add(acc, mul(c, x)).
    kernel_ops().wired_mac_n(prod, low_mask(cfg_.mult.width), x.data(), acc.data(),
                             n, wired_params_);
    return;
  }
  const u64 mmask = low_mask(cfg_.mult.width);
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = adder_.add_signed(acc[i], prod[static_cast<u64>(x[i]) & mmask]);
  }
}

// -------------------------------------------------------------------- factory

std::unique_ptr<Kernel> make_kernel(const StageArithConfig& cfg) {
  if (cfg.is_exact()) return std::make_unique<ExactKernel>();
  return std::make_unique<ApproxKernel>(cfg);
}

// ------------------------------------------------- product table caches

namespace {

// Cache entries are cache-line aligned: the process-wide caches are walked
// concurrently by every stream::SessionPool / StreamServer worker, and a
// 64-byte entry stride keeps one worker's entry (and the vector growth that
// publishes a neighbour) from false-sharing another's hot line.

/// Magnitude-indexed product rows M[m] = multiply_u(|c|, m) — the expensive
/// build, shared between +c and -c (and reused for the square diagonal).
struct alignas(64) MagnitudeCacheEntry {
  MultiplierConfig cfg;
  u64 magnitude;
  std::shared_ptr<const TableVec> table;
};

/// Full signed per-coefficient tables P[u] = mul1(c, sign_extend(u, w)),
/// keyed by the sign-extended coefficient value.
struct alignas(64) SignedCacheEntry {
  MultiplierConfig cfg;
  i64 coeff;
  std::shared_ptr<const TableVec> table;
};

/// Per-config square tables S[u] = mul1(x, x), x = sign_extend(u, w).
struct alignas(64) SquareCacheEntry {
  MultiplierConfig cfg;
  std::shared_ptr<const TableVec> table;
};

// The caches are shared by every kernel in the process and are hit from the
// concurrent sessions of a stream::SessionPool and the parallel exploration
// workers, so reads and inserts are serialized. The tables themselves are
// immutable once published; racing builders of the same table publish
// equivalent duplicates (last one wins, both bit-identical). The build
// counters count actual cold fills (not hits) and feed table_cache_stats().
// Rank kTableCache: a leaf — table fills run *outside* the lock, and nothing
// else is ever acquired under it.
struct TableCaches {
  common::Mutex mutex{common::LockRank::kTableCache};
  std::vector<MagnitudeCacheEntry> magnitude XBS_GUARDED_BY(mutex);
  std::vector<SignedCacheEntry> signed_coeff XBS_GUARDED_BY(mutex);
  std::vector<SquareCacheEntry> square XBS_GUARDED_BY(mutex);
  u64 magnitude_builds XBS_GUARDED_BY(mutex) = 0;
  u64 signed_builds XBS_GUARDED_BY(mutex) = 0;
  u64 square_builds XBS_GUARDED_BY(mutex) = 0;
};

TableCaches& caches() {
  static TableCaches c;
  return c;
}

std::shared_ptr<const TableVec> get_magnitude_products(const MultiplierConfig& cfg,
                                                       u64 magnitude) {
  {
    TableCaches& tc = caches();
    const common::MutexLock lock(tc.mutex);
    for (const MagnitudeCacheEntry& e : tc.magnitude) {
      if (e.magnitude == magnitude && e.cfg == cfg) return e.table;
    }
  }
  // Build outside the lock (the fill is the expensive part).
  const auto model = get_multiplier(cfg);
  // Operand magnitudes of a w-bit signed multiplier span [0, 2^(w-1)]
  // (the upper bound is the magnitude of the most negative value).
  const std::size_t n = (std::size_t{1} << (cfg.width - 1)) + 1;
  auto table = std::make_shared<TableVec>(n);
  for (std::size_t m = 0; m < n; ++m) {
    // Same operand order as multiply_signed(c, x): the coefficient drives
    // the A port. Approximate arrays are not commutative, so this matters.
    (*table)[m] = static_cast<i64>(model->multiply_u(magnitude, static_cast<u64>(m)));
  }
  TableCaches& tc = caches();
  const common::MutexLock lock(tc.mutex);
  tc.magnitude.push_back(MagnitudeCacheEntry{cfg, magnitude, table});
  ++tc.magnitude_builds;
  return table;
}

}  // namespace

std::shared_ptr<const TableVec> peek_signed_coeff_products(
    const MultiplierConfig& cfg, i64 coeff) noexcept {
  const i64 sc = sign_extend(to_unsigned_bits(coeff, cfg.width), cfg.width);
  TableCaches& tc = caches();
  const common::MutexLock lock(tc.mutex);
  for (const SignedCacheEntry& e : tc.signed_coeff) {
    if (e.coeff == sc && e.cfg == cfg) return e.table;
  }
  return nullptr;
}

std::shared_ptr<const TableVec> get_signed_coeff_products(const MultiplierConfig& cfg,
                                                          i64 coeff) {
  if (auto warm = peek_signed_coeff_products(cfg, coeff)) return warm;
  const int w = cfg.width;
  const i64 sc = sign_extend(to_unsigned_bits(coeff, w), w);
  const bool neg = sc < 0;
  const u64 mag = neg ? static_cast<u64>(-sc) : static_cast<u64>(sc);
  // Derive the full signed table from the magnitude row: one load and one
  // conditional negate per entry — cheap next to the row's multiply_u fill,
  // and bit-identical to mul1(c, x) by the sign-magnitude wrapper identity.
  const auto row = get_magnitude_products(cfg, mag);
  const std::size_t n = std::size_t{1} << w;
  auto table = std::make_shared<TableVec>(n);
  for (std::size_t u = 0; u < n; ++u) {
    const i64 sx = sign_extend(static_cast<u64>(u), w);
    const u64 mx = sx < 0 ? static_cast<u64>(-sx) : static_cast<u64>(sx);
    const i64 p = (*row)[mx];
    (*table)[u] = (neg != (sx < 0)) ? -p : p;
  }
  TableCaches& tc = caches();
  const common::MutexLock lock(tc.mutex);
  tc.signed_coeff.push_back(SignedCacheEntry{cfg, sc, table});
  ++tc.signed_builds;
  return table;
}

std::shared_ptr<const TableVec> peek_square_products(
    const MultiplierConfig& cfg) noexcept {
  TableCaches& tc = caches();
  const common::MutexLock lock(tc.mutex);
  for (const SquareCacheEntry& e : tc.square) {
    if (e.cfg == cfg) return e.table;
  }
  return nullptr;
}

std::shared_ptr<const TableVec> get_square_products(const MultiplierConfig& cfg) {
  if (auto warm = peek_square_products(cfg)) return warm;
  const auto model = get_multiplier(cfg);
  const int w = cfg.width;
  // Square diagonal per magnitude, then spread over both sign halves: the
  // sign-magnitude wrapper makes mul1(x, x) = +multiply_u(|x|, |x|) always.
  const std::size_t half = (std::size_t{1} << (w - 1)) + 1;
  std::vector<i64> diag(half);
  for (std::size_t m = 0; m < half; ++m) {
    diag[m] =
        static_cast<i64>(model->multiply_u(static_cast<u64>(m), static_cast<u64>(m)));
  }
  const std::size_t n = std::size_t{1} << w;
  auto table = std::make_shared<TableVec>(n);
  for (std::size_t u = 0; u < n; ++u) {
    const i64 sx = sign_extend(static_cast<u64>(u), w);
    const u64 mx = sx < 0 ? static_cast<u64>(-sx) : static_cast<u64>(sx);
    (*table)[u] = diag[mx];
  }
  TableCaches& tc = caches();
  const common::MutexLock lock(tc.mutex);
  tc.square.push_back(SquareCacheEntry{cfg, table});
  ++tc.square_builds;
  return table;
}

TableCacheStats table_cache_stats() noexcept {
  TableCacheStats s;
  s.multiplier_models = multiplier_model_builds();
  TableCaches& tc = caches();
  const common::MutexLock lock(tc.mutex);
  s.magnitude_tables = tc.magnitude_builds;
  s.signed_tables = tc.signed_builds;
  s.square_tables = tc.square_builds;
  return s;
}

}  // namespace xbs::arith
