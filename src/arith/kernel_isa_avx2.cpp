/// \file kernel_isa_avx2.cpp
/// \brief AVX2 tier of the kernel inner loops: 4 x i64 lanes per iteration.
///
/// LUT walks use `vpgatherqq` (one gather per 4 samples instead of 4
/// dependent scalar loads), and the wired-add closed forms run as 256-bit
/// integer bit arithmetic. Bit-identity with the baseline tier holds by
/// construction: a gather loads exactly the entries the scalar walk loads,
/// and every lane performs the same 64-bit mask/shift/add sequence; the
/// ragged tail (n % 4) runs the shared scalar reference element.
///
/// This TU — and only this TU — is compiled with -mavx2; it is added to the
/// build only when the compiler targets x86 and accepts the flag. Runtime
/// selection (isa.cpp) ensures these functions are never called on a CPU
/// without AVX2.
#include "isa_ops.hpp"

#if !defined(__AVX2__)
#error "kernel_isa_avx2.cpp must be compiled with -mavx2 (build system bug)"
#endif

#include <immintrin.h>

namespace xbs::arith::detail {
namespace {

inline __m256i bcast(u64 v) noexcept {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

void gather_lut_n_avx2(const i64* table, u64 mask, const i64* x, i64* out,
                       std::size_t n) {
  const __m256i vmask = bcast(mask);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i idx = _mm256_and_si256(vx, vmask);
    const __m256i v =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(table), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = table[static_cast<u64>(x[i]) & mask];
}

/// One vector step of the wired-add closed form over already-masked w-bit
/// operand vectors (ub pre-negated when subtracting). Mirrors
/// wired_add_one() lane for lane.
template <bool kSumIsB>
inline __m256i wired_add_vec(__m256i ua, __m256i ub, __m256i wmask, __m256i sbit,
                             __m256i kmask, __m256i himask, __m256i one,
                             __m128i shk, __m128i shk1, bool low_only) noexcept {
  if (low_only) {
    const __m256i low = kSumIsB ? ub : _mm256_andnot_si256(ua, wmask);
    return _mm256_sub_epi64(_mm256_xor_si256(low, sbit), sbit);
  }
  const __m256i low =
      kSumIsB ? _mm256_and_si256(ub, kmask) : _mm256_andnot_si256(ua, kmask);
  const __m256i carry = _mm256_and_si256(_mm256_srl_epi64(ua, shk1), one);
  const __m256i hi = _mm256_and_si256(
      _mm256_add_epi64(
          _mm256_add_epi64(_mm256_srl_epi64(ua, shk), _mm256_srl_epi64(ub, shk)),
          carry),
      himask);
  const __m256i r = _mm256_or_si256(_mm256_sll_epi64(hi, shk), low);
  return _mm256_sub_epi64(_mm256_xor_si256(r, sbit), sbit);
}

template <bool kSumIsB, bool kNegateB>
void wired_add_loop_avx2(const i64* a, const i64* b, i64* out, std::size_t n,
                         int w, int k) noexcept {
  const bool low_only = k >= w;
  const __m256i wmask = bcast(low_mask(w));
  const __m256i sbit = bcast(u64{1} << (w - 1));
  const __m256i kmask = bcast(low_mask(low_only ? w : k));
  const __m256i himask = bcast(low_mask(low_only ? 1 : w - k));
  const __m256i one = bcast(1);
  const __m128i shk = _mm_cvtsi32_si128(low_only ? 0 : k);
  const __m128i shk1 = _mm_cvtsi32_si128(low_only ? 0 : k - 1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), wmask);
    __m256i vb = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), wmask);
    if (kNegateB) vb = _mm256_andnot_si256(vb, wmask);
    const __m256i r = wired_add_vec<kSumIsB>(va, vb, wmask, sbit, kmask, himask,
                                             one, shk, shk1, low_only);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  for (; i < n; ++i) out[i] = wired_add_one(a[i], b[i], w, k, kSumIsB, kNegateB);
}

void wired_add_n_avx2(const i64* a, const i64* b, i64* out, std::size_t n,
                      const WiredAddParams& p) {
  if (p.sum_is_b) {
    if (p.negate_b) {
      wired_add_loop_avx2<true, true>(a, b, out, n, p.width, p.approx_bits);
    } else {
      wired_add_loop_avx2<true, false>(a, b, out, n, p.width, p.approx_bits);
    }
  } else {
    if (p.negate_b) {
      wired_add_loop_avx2<false, true>(a, b, out, n, p.width, p.approx_bits);
    } else {
      wired_add_loop_avx2<false, false>(a, b, out, n, p.width, p.approx_bits);
    }
  }
}

template <bool kSumIsB>
void wired_mac_loop_avx2(const i64* table, u64 mask, const i64* x, i64* acc,
                         std::size_t n, int w, int k) noexcept {
  const bool low_only = k >= w;
  const __m256i vmask = bcast(mask);
  const __m256i wmask = bcast(low_mask(w));
  const __m256i sbit = bcast(u64{1} << (w - 1));
  const __m256i kmask = bcast(low_mask(low_only ? w : k));
  const __m256i himask = bcast(low_mask(low_only ? 1 : w - k));
  const __m256i one = bcast(1);
  const __m128i shk = _mm_cvtsi32_si128(low_only ? 0 : k);
  const __m128i shk1 = _mm_cvtsi32_si128(low_only ? 0 : k - 1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i idx = _mm256_and_si256(vx, vmask);
    const __m256i prod =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(table), idx, 8);
    const __m256i ua = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)), wmask);
    const __m256i ub = _mm256_and_si256(prod, wmask);
    const __m256i r = wired_add_vec<kSumIsB>(ua, ub, wmask, sbit, kmask, himask,
                                             one, shk, shk1, low_only);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), r);
  }
  for (; i < n; ++i) {
    acc[i] = wired_add_one(acc[i], table[static_cast<u64>(x[i]) & mask], w, k,
                           kSumIsB, false);
  }
}

void wired_mac_n_avx2(const i64* table, u64 mask, const i64* x, i64* acc,
                      std::size_t n, const WiredAddParams& p) {
  if (p.sum_is_b) {
    wired_mac_loop_avx2<true>(table, mask, x, acc, n, p.width, p.approx_bits);
  } else {
    wired_mac_loop_avx2<false>(table, mask, x, acc, n, p.width, p.approx_bits);
  }
}

}  // namespace

const KernelOps& avx2_ops() noexcept {
  static constexpr KernelOps ops{&gather_lut_n_avx2, &wired_add_n_avx2,
                                 &wired_mac_n_avx2};
  return ops;
}

}  // namespace xbs::arith::detail
