#include "xbs/arith/multiplier.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <utility>

#include "xbs/arith/mult2x2.hpp"
#include "xbs/common/bitops.hpp"
#include "xbs/common/sync.hpp"

namespace xbs::arith {
namespace {

/// Distinct base offsets (off_a + off_b) at which sub-multipliers of size
/// \p sub occur inside a width-\p width recursive multiplier.
std::vector<int> sub_bases(int width, int sub) {
  std::vector<int> bases;
  const MultStructure s = compute_mult_structure(width);
  if (sub == 2) {
    for (const auto& e : s.elems) bases.push_back(e.out_offset);
  } else {
    // Sub-multipliers of size `sub` start at offsets that are multiples of
    // `sub` in each operand; their base offsets are the sums.
    for (int oa = 0; oa < width; oa += sub)
      for (int ob = 0; ob < width; ob += sub) bases.push_back(oa + ob);
  }
  std::sort(bases.begin(), bases.end());
  bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
  return bases;
}

}  // namespace

RecursiveMultiplier::RecursiveMultiplier(const MultiplierConfig& cfg) : cfg_(cfg) {
  if (cfg.width < 2 || cfg.width > 32 ||
      !std::has_single_bit(static_cast<unsigned>(cfg.width))) {
    throw std::invalid_argument("multiplier width must be a power of two in [2, 32]");
  }
  if (cfg.approx_lsbs < 0 || cfg.approx_lsbs > 2 * cfg.width) {
    throw std::invalid_argument("approx_lsbs must be in [0, 2*width]");
  }
  // Memoize 4x4 sub-multipliers (and, for width >= 16, 8x8) keyed by base
  // weight offset. Tables are built through the plain recursive simulation so
  // they are bit-identical to the unmemoized path. Each level's pointer index
  // is published only after all of its tables are built (the table vector
  // must stop reallocating before addresses are taken), so the 8x8 builds run
  // on top of the already-indexed 4x4 tables.
  if (cfg.width >= 4) {
    const std::vector<int> bases = sub_bases(cfg.width, 4);
    for (const int base : bases) {
      std::vector<u8>& t = lut4_tables_.emplace_back(256);
      for (u32 a = 0; a < 16; ++a)
        for (u32 b = 0; b < 16; ++b)
          t[(a << 4) | b] = static_cast<u8>(simulate(4, a, b, base, 0));
    }
    lut4_by_base_.assign(static_cast<std::size_t>(2 * cfg.width + 1), nullptr);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      lut4_by_base_[static_cast<std::size_t>(bases[i])] = lut4_tables_[i].data();
    }
  }
  if (cfg.width >= 16) {
    const std::vector<int> bases = sub_bases(cfg.width, 8);
    for (const int base : bases) {
      std::vector<u16>& t = lut8_tables_.emplace_back(65536);
      for (u32 a = 0; a < 256; ++a)
        for (u32 b = 0; b < 256; ++b)
          t[(a << 8) | b] = static_cast<u16>(simulate(8, a, b, base, 0));
    }
    lut8_by_base_.assign(static_cast<std::size_t>(2 * cfg.width + 1), nullptr);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      lut8_by_base_[static_cast<std::size_t>(bases[i])] = lut8_tables_[i].data();
    }
  }
}

u64 RecursiveMultiplier::combine(int n, u64 ll, u64 hl, u64 lh, u64 hh,
                                 int base) const noexcept {
  const int h = n / 2;
  const AdderConfig acfg{2 * n, cfg_.approx_lsbs, cfg_.adder_kind, base};
  const RippleCarryAdder adder(acfg);
  // Operand-port convention: where one operand is structurally zero (the
  // shifted partial products), it is wired to the A port. The zero-cost
  // wiring adder (ApproxAdd5: Sum = B, Cout = A) then passes the live data
  // through and keeps the carry lane constant — the port assignment any RTL
  // designer would pick, and the one the netlist builders mirror.
  const u64 s1 = adder.add_u(hl << h, lh << h).sum;
  const u64 s2 = adder.add_u(s1, ll).sum;
  const u64 s3 = adder.add_u(hh << n, s2).sum;
  return s3;
}

u64 RecursiveMultiplier::simulate(int n, u64 a, u64 b, int off_a, int off_b) const noexcept {
  a &= low_mask(n);
  b &= low_mask(n);
  const int base = off_a + off_b;
  if (n == 2) {
    const MultKind kind =
        elem_is_approx(cfg_.policy, base, cfg_.approx_lsbs) ? cfg_.mult_kind : MultKind::Accurate;
    return mult2(kind, static_cast<u32>(a), static_cast<u32>(b));
  }
  if (n == 8) {
    if (const u16* t = find_lut8(base)) {
      return t[(static_cast<std::size_t>(a) << 8) | b];
    }
  }
  if (n == 4) {
    if (const u8* t = find_lut4(base)) {
      return t[(static_cast<std::size_t>(a) << 4) | b];
    }
  }
  const int h = n / 2;
  const u64 al = a & low_mask(h), ah = a >> h;
  const u64 bl = b & low_mask(h), bh = b >> h;
  const u64 ll = simulate(h, al, bl, off_a, off_b);
  const u64 hl = simulate(h, ah, bl, off_a + h, off_b);
  const u64 lh = simulate(h, al, bh, off_a, off_b + h);
  const u64 hh = simulate(h, ah, bh, off_a + h, off_b + h);
  return combine(n, ll, hl, lh, hh, base);
}

u64 RecursiveMultiplier::multiply_u(u64 a, u64 b) const noexcept {
  return simulate(cfg_.width, a & low_mask(cfg_.width), b & low_mask(cfg_.width), 0, 0);
}

i64 RecursiveMultiplier::multiply_signed(i64 a, i64 b) const noexcept {
  const i64 sa = sign_extend(to_unsigned_bits(a, cfg_.width), cfg_.width);
  const i64 sb = sign_extend(to_unsigned_bits(b, cfg_.width), cfg_.width);
  const bool neg = (sa < 0) != (sb < 0);
  const u64 ma = static_cast<u64>(sa < 0 ? -sa : sa);
  const u64 mb = static_cast<u64>(sb < 0 ? -sb : sb);
  const u64 p = multiply_u(ma, mb);
  return neg ? -static_cast<i64>(p) : static_cast<i64>(p);
}

u64 RecursiveMultiplier::exact_u(u64 a, u64 b) const noexcept {
  return (a & low_mask(cfg_.width)) * (b & low_mask(cfg_.width));
}

namespace {

struct MultCacheEntry {
  MultiplierConfig cfg;
  std::shared_ptr<const RecursiveMultiplier> model;
};

std::atomic<u64> g_model_builds{0};

// Rank kTableCache: a leaf like the kernel LUT caches — nothing else is
// ever acquired under it. Namespace scope (constexpr-constructible Mutex)
// rather than function-static so the guarded members can be annotated.
common::Mutex g_cache_mutex{common::LockRank::kTableCache};
std::vector<MultCacheEntry>& mult_cache() XBS_REQUIRES(g_cache_mutex) {
  static std::vector<MultCacheEntry> cache;
  return cache;
}

}  // namespace

std::shared_ptr<const RecursiveMultiplier> get_multiplier(const MultiplierConfig& cfg) {
  // Serialized: kernels are built concurrently by stream::SessionPool
  // sessions. The models themselves are immutable once published.
  const common::MutexLock lock(g_cache_mutex);
  std::vector<MultCacheEntry>& cache = mult_cache();
  for (const auto& e : cache)
    if (e.cfg == cfg) return e.model;
  auto model = std::make_shared<const RecursiveMultiplier>(cfg);
  cache.push_back(MultCacheEntry{cfg, model});
  g_model_builds.fetch_add(1, std::memory_order_relaxed);
  return model;
}

u64 multiplier_model_builds() noexcept {
  return g_model_builds.load(std::memory_order_relaxed);
}

}  // namespace xbs::arith
