#include "xbs/arith/structure.hpp"

#include <bit>
#include <stdexcept>

namespace xbs::arith {
namespace {

void enumerate(int n, int off_a, int off_b, MultStructure& out) {
  if (n == 2) {
    out.elems.push_back(ElemMultSlot{off_a, off_b, off_a + off_b});
    return;
  }
  const int h = n / 2;
  enumerate(h, off_a, off_b, out);          // LL
  enumerate(h, off_a + h, off_b, out);      // HL
  enumerate(h, off_a, off_b + h, out);      // LH
  enumerate(h, off_a + h, off_b + h, out);  // HH
  const int base = off_a + off_b;
  for (int i = 0; i < 3; ++i) out.adders.push_back(AdderBlockSlot{2 * n, base, n});
}

}  // namespace

int MultStructure::total_fa_slots() const noexcept {
  int n = 0;
  for (const auto& a : adders) n += a.width;
  return n;
}

MultStructure compute_mult_structure(int width) {
  if (width < 2 || width > 32 || !std::has_single_bit(static_cast<unsigned>(width))) {
    throw std::invalid_argument("multiplier width must be a power of two in [2, 32]");
  }
  MultStructure s;
  s.width = width;
  enumerate(width, 0, 0, s);
  return s;
}

}  // namespace xbs::arith
