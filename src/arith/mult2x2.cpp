#include "xbs/arith/mult2x2.hpp"

#include <cstdlib>

namespace xbs::arith {
namespace {

constexpr Mult2Table make_accurate() noexcept {
  Mult2Table t{};
  for (u32 a = 0; a < 4; ++a)
    for (u32 b = 0; b < 4; ++b) t[(a << 2) | b] = static_cast<u8>(a * b);
  return t;
}

// Kulkarni et al.: O3 removed; O1 computed with an OR instead of the
// half-adder, which only mis-evaluates 3x3 (9 -> 0b0111 = 7).
constexpr Mult2Table make_v1() noexcept {
  Mult2Table t = make_accurate();
  t[(3u << 2) | 3u] = 7;
  return t;
}

// Rehman-style elementary module: additionally gates the O2 term with
// !(A0&B0), collapsing 3x3 to 0b0011 = 3. Larger error magnitude, smaller
// area/power (Table 1: 9.72 um^2 / 0.137 fJ vs V1's 11.52 / 0.167).
constexpr Mult2Table make_v2() noexcept {
  Mult2Table t = make_accurate();
  t[(3u << 2) | 3u] = 3;
  return t;
}

constexpr std::array<Mult2Table, 3> kTables = {make_accurate(), make_v1(), make_v2()};

}  // namespace

const Mult2Table& mult2_table(MultKind kind) noexcept {
  return kTables[static_cast<std::size_t>(kind)];
}

int mult2_max_error(MultKind kind) noexcept {
  const Mult2Table& acc = mult2_table(MultKind::Accurate);
  const Mult2Table& t = mult2_table(kind);
  int worst = 0;
  for (std::size_t i = 0; i < 16; ++i)
    worst = std::max(worst, std::abs(static_cast<int>(t[i]) - static_cast<int>(acc[i])));
  return worst;
}

int mult2_error_count(MultKind kind) noexcept {
  const Mult2Table& acc = mult2_table(MultKind::Accurate);
  const Mult2Table& t = mult2_table(kind);
  int n = 0;
  for (std::size_t i = 0; i < 16; ++i) n += (t[i] != acc[i]) ? 1 : 0;
  return n;
}

}  // namespace xbs::arith
