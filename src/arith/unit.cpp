#include "xbs/arith/unit.hpp"

namespace xbs::arith {

i64 ExactUnit::add(i64 a, i64 b) {
  ++counts_.adds;
  return sign_extend(to_unsigned_bits(a + b, 32), 32);
}

i64 ExactUnit::sub(i64 a, i64 b) {
  ++counts_.adds;
  return sign_extend(to_unsigned_bits(a - b, 32), 32);
}

i64 ExactUnit::mul(i64 a, i64 b) {
  ++counts_.mults;
  const i64 sa = sign_extend(to_unsigned_bits(a, 16), 16);
  const i64 sb = sign_extend(to_unsigned_bits(b, 16), 16);
  return sa * sb;
}

ApproxUnit::ApproxUnit(const StageArithConfig& cfg)
    : cfg_(cfg), adder_(cfg.adder), mult_(get_multiplier(cfg.mult)) {}

i64 ApproxUnit::add(i64 a, i64 b) {
  ++counts_.adds;
  return adder_.add_signed(a, b);
}

i64 ApproxUnit::sub(i64 a, i64 b) {
  ++counts_.adds;
  return adder_.sub_signed(a, b);
}

i64 ApproxUnit::mul(i64 a, i64 b) {
  ++counts_.mults;
  return mult_->multiply_signed(a, b);
}

}  // namespace xbs::arith
