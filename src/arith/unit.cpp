#include "xbs/arith/unit.hpp"

namespace xbs::arith {

i64 ExactUnit::add(i64 a, i64 b) {
  ++counts_.adds;
  return kernel_.add1(a, b);
}

i64 ExactUnit::sub(i64 a, i64 b) {
  ++counts_.adds;
  return kernel_.sub1(a, b);
}

i64 ExactUnit::mul(i64 a, i64 b) {
  ++counts_.mults;
  return kernel_.mul1(a, b);
}

ApproxUnit::ApproxUnit(const StageArithConfig& cfg) : kernel_(cfg) {}

i64 ApproxUnit::add(i64 a, i64 b) {
  ++counts_.adds;
  return kernel_.add1(a, b);
}

i64 ApproxUnit::sub(i64 a, i64 b) {
  ++counts_.adds;
  return kernel_.sub1(a, b);
}

i64 ApproxUnit::mul(i64 a, i64 b) {
  ++counts_.mults;
  return kernel_.mul1(a, b);
}

}  // namespace xbs::arith
