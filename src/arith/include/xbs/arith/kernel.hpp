/// \file kernel.hpp
/// \brief Batched arithmetic kernels — the block-granular datapath API.
///
/// The scalar ArithmeticUnit interface pays one virtual dispatch, one config
/// decode and one lookup-table resolution *per sample operation*. A Kernel
/// amortizes all of that over a whole signal block: config decoding, LUT
/// pointer resolution and operation counting happen once per `*_n` call, and
/// the inner loops are tight non-virtual code. The scalar units in unit.hpp
/// are thin adapters over these kernels, so both views of the datapath are
/// bit-identical by construction (asserted in tests/test_kernel_equivalence).
///
/// Operand convention: every value is a sign-extended signed 64-bit integer
/// carrying the block's `width`-bit two's-complement result, exactly like the
/// scalar API. Adds/subs model the 32-bit adder block; multiplies model the
/// 16x16 signed multiplier block.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "xbs/arith/isa.hpp"
#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/common/aligned.hpp"
#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Storage of the process-wide product/square tables: cache-line aligned so
/// per-lane gathers (isa.hpp) start on a 64-byte boundary and the table head
/// never false-shares with neighbouring allocations.
using TableVec = std::vector<i64, AlignedAllocator<i64, 64>>;

/// Datapath operation counters (shared vocabulary with the scalar units;
/// reset between runs to attribute operations to stages).
struct OpCounts {
  u64 adds = 0;
  u64 mults = 0;

  constexpr OpCounts& operator+=(OpCounts o) noexcept {
    adds += o.adds;
    mults += o.mults;
    return *this;
  }
  friend constexpr OpCounts operator+(OpCounts a, OpCounts b) noexcept { return a += b; }
  friend constexpr bool operator==(OpCounts, OpCounts) = default;
};

/// Arithmetic configuration of one application stage: a 32-bit adder block
/// and a 16x16 multiplier block sharing the same number of approximated LSBs,
/// mirroring how the paper configures each stage with a single (LSB, Add,
/// Mult) triple.
struct StageArithConfig {
  AdderConfig adder{32, 0, AdderKind::Accurate, 0};
  MultiplierConfig mult{16, 0, AdderKind::Accurate, MultKind::Accurate,
                        ApproxPolicy::Moderate};

  /// Uniform configuration: k LSBs approximated in both blocks.
  [[nodiscard]] static StageArithConfig uniform(
      int approx_lsbs, AdderKind add_kind = AdderKind::Approx5,
      MultKind mult_kind = MultKind::V1,
      ApproxPolicy policy = ApproxPolicy::Moderate) noexcept {
    StageArithConfig c;
    c.adder = AdderConfig{32, approx_lsbs, add_kind, 0};
    c.mult = MultiplierConfig{16, approx_lsbs, add_kind, mult_kind, policy};
    return c;
  }

  /// True when this configuration is exactly the accurate native datapath.
  [[nodiscard]] constexpr bool is_exact() const noexcept {
    return adder.approx_lsbs == 0 && mult.approx_lsbs == 0;
  }

  friend constexpr bool operator==(const StageArithConfig&, const StageArithConfig&) = default;
};

/// Block-granular datapath. The public `*_n` entry points count operations
/// once per block (n ops per call, identical totals to the scalar path) and
/// dispatch a single virtual call; the `*_impl` hooks run the tight loops.
///
/// The uncounted scalar hooks (`add1/sub1/mul1`) exist for the ArithmeticUnit
/// adapters and for streaming single-sample use; they compute exactly one
/// element of the corresponding batched op.
class Kernel {
 public:
  virtual ~Kernel() = default;

  // --- uncounted scalar compute (one element of the batched ops) ---
  [[nodiscard]] virtual i64 add1(i64 a, i64 b) const = 0;
  [[nodiscard]] virtual i64 sub1(i64 a, i64 b) const = 0;
  [[nodiscard]] virtual i64 mul1(i64 a, i64 b) const = 0;

  // --- counted scalar ops (streaming use; 1 op each) ---
  [[nodiscard]] i64 add(i64 a, i64 b) {
    ++counts_.adds;
    return add1(a, b);
  }
  [[nodiscard]] i64 sub(i64 a, i64 b) {
    ++counts_.adds;
    return sub1(a, b);
  }
  [[nodiscard]] i64 mul(i64 a, i64 b) {
    ++counts_.mults;
    return mul1(a, b);
  }

  // --- counted batched ops ---
  /// out[i] = add(a[i], b[i]). Spans must be equally sized; aliasing with
  /// `out` is allowed element-wise (in-place accumulate).
  void add_n(std::span<const i64> a, std::span<const i64> b, std::span<i64> out) {
    counts_.adds += out.size();
    add_n_impl(a, b, out);
  }
  /// out[i] = sub(a[i], b[i]).
  void sub_n(std::span<const i64> a, std::span<const i64> b, std::span<i64> out) {
    counts_.adds += out.size();
    sub_n_impl(a, b, out);
  }
  /// out[i] = mul(a[i], b[i]).
  void mul_n(std::span<const i64> a, std::span<const i64> b, std::span<i64> out) {
    counts_.mults += out.size();
    mul_n_impl(a, b, out);
  }
  /// Constant-coefficient multiply: out[i] = mul(c, x[i]) — the FIR tap
  /// primitive (note the operand order: approximate multiplies are not
  /// commutative).
  void mul_cn(i64 c, std::span<const i64> x, std::span<i64> out) {
    counts_.mults += out.size();
    mul_cn_impl(c, x, out);
  }
  /// Fused multiply-accumulate: acc[i] = add(acc[i], mul(c, x[i])).
  /// Counts one multiply and one add per element, like the scalar chain.
  /// \p x must not alias \p acc.
  void mac_n(i64 c, std::span<const i64> x, std::span<i64> acc) {
    counts_.mults += acc.size();
    counts_.adds += acc.size();
    mac_n_impl(c, x, acc);
  }

  /// Whole FIR convolution over a history-prefixed input: with T = taps.size()
  /// and n = acc.size(), `padded` holds T-1 carried samples followed by the n
  /// new ones (padded.size() == n + T - 1), and tap j of output i reads
  /// padded[T-1-j+i]. Per output sample the non-zero taps are multiplied in
  /// tap order and accumulated through the chain
  /// acc = add(acc, mul(c_j, x_j)) — exactly the per-tap mul_cn/mac_n
  /// sequence, and counted identically (n multiplies per non-zero tap, n adds
  /// per accumulation) — but exposed as one call so a backend can hoist
  /// per-coefficient work out of the tap loop (ApproxKernel computes one
  /// product row per *distinct* coefficient and turns the tap loop into pure
  /// adds). \p padded must not alias \p acc.
  void fir_n(std::span<const int> taps, std::span<const i64> padded, std::span<i64> acc) {
    std::size_t nonzero = 0;
    for (const int c : taps) nonzero += (c != 0);
    counts_.mults += acc.size() * nonzero;
    counts_.adds += acc.size() * (nonzero > 0 ? nonzero - 1 : 0);
    fir_n_impl(taps, padded, acc);
  }

  [[nodiscard]] const OpCounts& counts() const noexcept { return counts_; }
  void reset_counts() noexcept { counts_ = OpCounts{}; }

 protected:
  virtual void add_n_impl(std::span<const i64> a, std::span<const i64> b,
                          std::span<i64> out) const;
  virtual void sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                          std::span<i64> out) const;
  virtual void mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                          std::span<i64> out) const;
  virtual void mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const;
  virtual void mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const;
  virtual void fir_n_impl(std::span<const int> taps, std::span<const i64> padded,
                          std::span<i64> acc) const;

 private:
  OpCounts counts_;
};

/// Exact native backend (the golden reference datapath): 32-bit wrapping
/// adds, sign-extended 16x16 multiplies, all in tight native loops.
class ExactKernel final : public Kernel {
 public:
  [[nodiscard]] i64 add1(i64 a, i64 b) const override;
  [[nodiscard]] i64 sub1(i64 a, i64 b) const override;
  [[nodiscard]] i64 mul1(i64 a, i64 b) const override;

 protected:
  void add_n_impl(std::span<const i64> a, std::span<const i64> b,
                  std::span<i64> out) const override;
  void sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                  std::span<i64> out) const override;
  void mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                  std::span<i64> out) const override;
  void mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const override;
  void mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const override;
};

/// Bit-accurate approximate backend for one stage configuration, compiled
/// into branch-free table-driven inner loops.
///
/// Hoisted out of the inner loops, once per kernel lifetime:
///  - the ripple-carry adder model (config decode + approx-region clamp),
///  - the recursive-multiplier behavioural model (its 4x4/8x8 LUTs),
/// and, lazily per distinct coefficient, a full *signed* product table
/// `P[u] = mul1(c, sign_extend(u, w))` covering every w-bit operand pattern —
/// so the FIR-critical `mul_cn`/`mac_n` are pure table walks: one masked
/// load (plus one closed-form approximate add for the MAC) per sample, no
/// sign fix, no multiplier simulation. The squaring pattern `mul_n` with
/// `a.data() == b.data()` likewise resolves to a per-config 2^w-entry square
/// table (`S[u] = mul1(x, x)`), turning the Pan-Tompkins SQR stage into one
/// load per sample. The table walks and the wired-add loops run through the
/// runtime-dispatched vector tier (isa.hpp): gathered LUT loads and 4/8-lane
/// closed-form adds on AVX2/AVX-512 hardware, the scalar loops elsewhere —
/// every tier bit-identical by construction. Tables are cached process-wide
/// keyed by
/// (MultiplierConfig, coefficient), matching the get_multiplier() cache
/// idiom; the caches are internally synchronized and the published tables
/// immutable, so kernels in different threads (one per stream::SessionPool
/// session) share them safely. A Kernel instance itself is single-consumer
/// (mutable op counters and per-kernel table pointers) — give each session
/// its own.
class ApproxKernel final : public Kernel {
 public:
  explicit ApproxKernel(const StageArithConfig& cfg);

  [[nodiscard]] const StageArithConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] i64 add1(i64 a, i64 b) const override;
  [[nodiscard]] i64 sub1(i64 a, i64 b) const override;
  [[nodiscard]] i64 mul1(i64 a, i64 b) const override;

 protected:
  void add_n_impl(std::span<const i64> a, std::span<const i64> b,
                  std::span<i64> out) const override;
  void sub_n_impl(std::span<const i64> a, std::span<const i64> b,
                  std::span<i64> out) const override;
  void mul_n_impl(std::span<const i64> a, std::span<const i64> b,
                  std::span<i64> out) const override;
  void mul_cn_impl(i64 c, std::span<const i64> x, std::span<i64> out) const override;
  void mac_n_impl(i64 c, std::span<const i64> x, std::span<i64> acc) const override;
  void fir_n_impl(std::span<const int> taps, std::span<const i64> padded,
                  std::span<i64> acc) const override;

 private:
  /// Signed product table of mul1(c, .) for one coefficient, indexed by the
  /// w-bit operand pattern (sign already folded in — a pure walk).
  struct CoeffTable {
    i64 coeff = 0;
    const i64* data = nullptr;  ///< hoisted raw pointer, 2^w entries
    std::shared_ptr<const TableVec> owner;
  };
  /// Resolve the coefficient's table: always when `n` is large enough to
  /// amortize a cold build, otherwise only if it is already warm
  /// (kernel-local or process-wide); nullptr when using it would require a
  /// cold build that cannot pay for itself.
  [[nodiscard]] const i64* coeff_table(i64 c, std::size_t n) const;
  /// Same policy for the per-config square table (mul_n with a == b).
  [[nodiscard]] const i64* square_table(std::size_t n) const;

  /// Closed-form evaluation of the adder's approximate low region, decoded
  /// once at construction. AMA5 (Sum=B, Cout=A) and AMA4 (Sum=NOT A, Cout=A)
  /// have no carry chain through the approximated LSBs, so the whole add
  /// collapses to masks plus one native add of the accurate high region —
  /// bit-identical to the per-FA simulation (tests/test_kernel_equivalence).
  enum class AddFastPath { Generic, SumIsB, SumIsNotA };
  [[nodiscard]] i64 add_signed_fast(i64 a, i64 b) const noexcept;
  [[nodiscard]] i64 sub_signed_fast(i64 a, i64 b) const noexcept;
  [[nodiscard]] i64 wired_add(u64 ua, u64 ub) const noexcept;

  StageArithConfig cfg_;
  RippleCarryAdder adder_;
  AddFastPath add_path_ = AddFastPath::Generic;
  int approx_bits_ = 0;  ///< adder LSBs in the approximate region (clamped)
  /// Decoded wired-add parameters handed to the dispatched vector loops
  /// (valid only when add_path_ != Generic).
  WiredAddParams wired_params_{};
  std::shared_ptr<const RecursiveMultiplier> mult_owner_;
  const RecursiveMultiplier* mult_;  ///< hoisted raw pointer for the loops
  mutable std::vector<CoeffTable> coeff_tables_;  ///< tiny per-kernel LRU-less cache
  mutable const i64* square_ = nullptr;  ///< hoisted square-table pointer
  mutable std::shared_ptr<const TableVec> square_owner_;
  /// fir_n scratch: one product row per distinct coefficient (reused across
  /// chunks; single-consumer like the op counters).
  mutable std::vector<std::vector<i64>> fir_rows_;
};

/// Build the right backend for a stage configuration: the exact native kernel
/// when the configuration is accurate, the bit-accurate approximate kernel
/// otherwise.
[[nodiscard]] std::unique_ptr<Kernel> make_kernel(const StageArithConfig& cfg);

/// Process-wide cache of full signed per-coefficient product tables
/// (see ApproxKernel): 2^width entries, `P[u] = mul1(c, sign_extend(u, w))`.
/// Exposed so serving layers (stream::SessionPool) and benches can pre-warm
/// tables outside timed regions — once warm, every kernel in the process
/// walks them regardless of chunk size.
[[nodiscard]] std::shared_ptr<const TableVec> get_signed_coeff_products(
    const MultiplierConfig& cfg, i64 coeff);

/// Cache peek: the table if it has already been built, nullptr otherwise.
/// Lets small-block paths use a warm table without paying a cold build.
[[nodiscard]] std::shared_ptr<const TableVec> peek_signed_coeff_products(
    const MultiplierConfig& cfg, i64 coeff) noexcept;

/// Process-wide cache of per-config square tables: 2^width entries,
/// `S[u] = mul1(x, x)` for `x = sign_extend(u, w)` — the SQR-stage kernel.
[[nodiscard]] std::shared_ptr<const TableVec> get_square_products(
    const MultiplierConfig& cfg);

/// Cache peek for the square table (same policy as the coefficient peek).
[[nodiscard]] std::shared_ptr<const TableVec> peek_square_products(
    const MultiplierConfig& cfg) noexcept;

/// Cumulative build counters of the process-wide table caches (plus the
/// multiplier behavioural-model cache) — each counts actual cold builds,
/// not cache hits. Serving layers warm tables outside their latency-
/// sensitive regions; tests snapshot these counters around a streaming run
/// to prove nothing is built lazily on the hot path
/// (tests/test_kernel_dispatch.cpp).
struct TableCacheStats {
  u64 multiplier_models = 0;  ///< RecursiveMultiplier behavioural models
  u64 magnitude_tables = 0;   ///< magnitude-indexed product rows
  u64 signed_tables = 0;      ///< full signed per-coefficient tables
  u64 square_tables = 0;      ///< per-config square tables

  friend constexpr bool operator==(const TableCacheStats&,
                                   const TableCacheStats&) = default;
};
[[nodiscard]] TableCacheStats table_cache_stats() noexcept;

}  // namespace xbs::arith
