/// \file error_stats.hpp
/// \brief Error characterization of approximate arithmetic configurations.
///
/// Standard approximate-computing error metrics (error rate, mean error
/// distance, mean relative error distance, worst case) for any adder or
/// multiplier configuration — the numbers designers quote when choosing a
/// module from the library, computed exhaustively for narrow operands and by
/// seeded Monte-Carlo sampling for wide ones.
#pragma once

#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Aggregate error statistics of an approximate operator vs its exact result.
struct ErrorStats {
  double error_rate = 0.0;      ///< fraction of inputs with any error
  double mean_abs_error = 0.0;  ///< mean |approx - exact| (error distance)
  double mean_rel_error = 0.0;  ///< mean |approx - exact| / max(1, |exact|)
  i64 max_abs_error = 0;        ///< worst-case error distance
  double rms_error = 0.0;       ///< root-mean-square error distance
  u64 samples = 0;              ///< number of evaluated input pairs
};

/// Characterize an adder configuration. Exhaustive when the input space
/// (2^(2*width)) does not exceed \p exhaustive_limit; otherwise Monte-Carlo
/// with \p mc_samples seeded draws.
[[nodiscard]] ErrorStats characterize_adder(const AdderConfig& cfg,
                                            u64 exhaustive_limit = 1u << 20,
                                            u64 mc_samples = 200000, u64 seed = 1);

/// Characterize a multiplier configuration (same sampling rules).
[[nodiscard]] ErrorStats characterize_multiplier(const MultiplierConfig& cfg,
                                                 u64 exhaustive_limit = 1u << 20,
                                                 u64 mc_samples = 200000, u64 seed = 1);

}  // namespace xbs::arith
