/// \file unit.hpp
/// \brief Scalar arithmetic datapath — a thin adapter over the batched
/// kernels in kernel.hpp.
///
/// Every add/sub/multiply the Pan-Tompkins stages perform can go through an
/// ArithmeticUnit, so a stage can be re-targeted from exact native arithmetic
/// to any (k LSBs, adder kind, multiplier kind) configuration without
/// touching the signal-processing code — the software analogue of swapping
/// RTL arithmetic blocks. Block-oriented consumers (the pipeline, the
/// explorers) use the Kernel API directly; this scalar view remains for
/// streaming single-sample use, the netlist-level cross-validation and the
/// existing tests, and is bit-identical to the kernels by construction.
#pragma once

#include "xbs/arith/kernel.hpp"
#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Abstract scalar datapath: all stage arithmetic can funnel through here.
class ArithmeticUnit {
 public:
  virtual ~ArithmeticUnit() = default;

  /// 32-bit adder block.
  [[nodiscard]] virtual i64 add(i64 a, i64 b) = 0;
  /// 32-bit adder-subtractor block.
  [[nodiscard]] virtual i64 sub(i64 a, i64 b) = 0;
  /// 16x16 signed multiplier block (32-bit product).
  [[nodiscard]] virtual i64 mul(i64 a, i64 b) = 0;

  [[nodiscard]] const OpCounts& counts() const noexcept { return counts_; }
  void reset_counts() noexcept { counts_ = OpCounts{}; }

 protected:
  OpCounts counts_;
};

/// Exact native arithmetic (the golden reference datapath).
class ExactUnit final : public ArithmeticUnit {
 public:
  [[nodiscard]] i64 add(i64 a, i64 b) override;
  [[nodiscard]] i64 sub(i64 a, i64 b) override;
  [[nodiscard]] i64 mul(i64 a, i64 b) override;

 private:
  ExactKernel kernel_;
};

/// Bit-accurate approximate datapath for one stage configuration.
class ApproxUnit final : public ArithmeticUnit {
 public:
  explicit ApproxUnit(const StageArithConfig& cfg);

  [[nodiscard]] const StageArithConfig& config() const noexcept { return kernel_.config(); }

  [[nodiscard]] i64 add(i64 a, i64 b) override;
  [[nodiscard]] i64 sub(i64 a, i64 b) override;
  [[nodiscard]] i64 mul(i64 a, i64 b) override;

 private:
  ApproxKernel kernel_;
};

/// Adapter in the other direction: presents any scalar ArithmeticUnit as a
/// Kernel, so block-oriented code (the stage transforms) can also run over a
/// caller-supplied unit — e.g. a counting or instrumented datapath in tests.
/// Batched calls devolve to the scalar loop; operation counts accrue on the
/// wrapped unit exactly as if the caller had streamed sample by sample.
class UnitKernel final : public Kernel {
 public:
  explicit UnitKernel(ArithmeticUnit& unit) noexcept : unit_(&unit) {}

  [[nodiscard]] i64 add1(i64 a, i64 b) const override { return unit_->add(a, b); }
  [[nodiscard]] i64 sub1(i64 a, i64 b) const override { return unit_->sub(a, b); }
  [[nodiscard]] i64 mul1(i64 a, i64 b) const override { return unit_->mul(a, b); }

 private:
  ArithmeticUnit* unit_;
};

}  // namespace xbs::arith
