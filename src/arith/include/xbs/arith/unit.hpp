/// \file unit.hpp
/// \brief Pluggable arithmetic datapath used by the bio-signal pipeline.
///
/// Every add/sub/multiply the Pan-Tompkins stages perform goes through an
/// ArithmeticUnit, so a stage can be re-targeted from exact native arithmetic
/// to any (k LSBs, adder kind, multiplier kind) configuration without
/// touching the signal-processing code — the software analogue of swapping
/// RTL arithmetic blocks.
#pragma once

#include <memory>

#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Datapath operation counters (per unit; reset between runs to attribute
/// operations to stages).
struct OpCounts {
  u64 adds = 0;
  u64 mults = 0;

  friend constexpr bool operator==(OpCounts, OpCounts) = default;
};

/// Arithmetic configuration of one application stage: a 32-bit adder block
/// and a 16x16 multiplier block sharing the same number of approximated LSBs,
/// mirroring how the paper configures each stage with a single (LSB, Add,
/// Mult) triple.
struct StageArithConfig {
  AdderConfig adder{32, 0, AdderKind::Accurate, 0};
  MultiplierConfig mult{16, 0, AdderKind::Accurate, MultKind::Accurate,
                        ApproxPolicy::Moderate};

  /// Uniform configuration: k LSBs approximated in both blocks.
  [[nodiscard]] static StageArithConfig uniform(
      int approx_lsbs, AdderKind add_kind = AdderKind::Approx5,
      MultKind mult_kind = MultKind::V1,
      ApproxPolicy policy = ApproxPolicy::Moderate) noexcept {
    StageArithConfig c;
    c.adder = AdderConfig{32, approx_lsbs, add_kind, 0};
    c.mult = MultiplierConfig{16, approx_lsbs, add_kind, mult_kind, policy};
    return c;
  }

  friend constexpr bool operator==(const StageArithConfig&, const StageArithConfig&) = default;
};

/// Abstract datapath: all stage arithmetic funnels through here.
class ArithmeticUnit {
 public:
  virtual ~ArithmeticUnit() = default;

  /// 32-bit adder block.
  [[nodiscard]] virtual i64 add(i64 a, i64 b) = 0;
  /// 32-bit adder-subtractor block.
  [[nodiscard]] virtual i64 sub(i64 a, i64 b) = 0;
  /// 16x16 signed multiplier block (32-bit product).
  [[nodiscard]] virtual i64 mul(i64 a, i64 b) = 0;

  [[nodiscard]] const OpCounts& counts() const noexcept { return counts_; }
  void reset_counts() noexcept { counts_ = OpCounts{}; }

 protected:
  OpCounts counts_;
};

/// Exact native arithmetic (the golden reference datapath).
class ExactUnit final : public ArithmeticUnit {
 public:
  [[nodiscard]] i64 add(i64 a, i64 b) override;
  [[nodiscard]] i64 sub(i64 a, i64 b) override;
  [[nodiscard]] i64 mul(i64 a, i64 b) override;
};

/// Bit-accurate approximate datapath for one stage configuration.
class ApproxUnit final : public ArithmeticUnit {
 public:
  explicit ApproxUnit(const StageArithConfig& cfg);

  [[nodiscard]] const StageArithConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] i64 add(i64 a, i64 b) override;
  [[nodiscard]] i64 sub(i64 a, i64 b) override;
  [[nodiscard]] i64 mul(i64 a, i64 b) override;

 private:
  StageArithConfig cfg_;
  RippleCarryAdder adder_;
  std::shared_ptr<const RecursiveMultiplier> mult_;
};

}  // namespace xbs::arith
