/// \file multiplier.hpp
/// \brief Bit-accurate recursive approximate multiplier (paper Fig. 7).
#pragma once

#include <memory>
#include <vector>

#include "xbs/arith/rca.hpp"
#include "xbs/arith/structure.hpp"
#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Configuration of a width x width recursive multiplier with k approximated
/// LSBs. The k LSB rule selects both which elementary 2x2 modules use the
/// approximate \p mult_kind (per \p policy) and which full adders of the
/// partial-product accumulation tree use the approximate \p adder_kind
/// (absolute output weight < k).
struct MultiplierConfig {
  int width = 16;                          ///< operand width (power of two, 2..32)
  int approx_lsbs = 0;                     ///< k: approximated output LSBs
  AdderKind adder_kind = AdderKind::Accurate;
  MultKind mult_kind = MultKind::Accurate;
  ApproxPolicy policy = ApproxPolicy::Moderate;

  friend constexpr bool operator==(const MultiplierConfig&, const MultiplierConfig&) = default;
};

/// Behavioural model of the recursive array multiplier.
///
/// Evaluation is bit-identical to simulating the module-level netlist
/// (cross-validated in tests) but memoizes the 4x4 and 8x8 sub-multiplier
/// functions in lookup tables, making a 16x16 multiply a handful of table
/// lookups plus three 32-bit ripple-carry adds.
class RecursiveMultiplier {
 public:
  explicit RecursiveMultiplier(const MultiplierConfig& cfg);

  [[nodiscard]] const MultiplierConfig& config() const noexcept { return cfg_; }

  /// Unsigned multiply of the low `width` bits of a and b; result is the
  /// 2*width-bit product of the (approximate) array.
  [[nodiscard]] u64 multiply_u(u64 a, u64 b) const noexcept;

  /// Signed multiply via the sign-magnitude wrapper the paper's RTL uses
  /// around the unsigned array (operands truncated to `width`-bit signed).
  [[nodiscard]] i64 multiply_signed(i64 a, i64 b) const noexcept;

  /// Reference exact product (for error measurements).
  [[nodiscard]] u64 exact_u(u64 a, u64 b) const noexcept;

 private:
  /// Simulate a sub-multiplier of size n whose operand slices sit at bit
  /// offsets (off_a, off_b). Returns the raw 2n-bit (approximate) product.
  [[nodiscard]] u64 simulate(int n, u64 a, u64 b, int off_a, int off_b) const noexcept;

  /// Combine four sub-products with three 2n-bit adders at weight offset
  /// off_a + off_b (P = LL + ((HL + LH) << h) + (HH << n)).
  [[nodiscard]] u64 combine(int n, u64 ll, u64 hl, u64 lh, u64 hh, int base) const noexcept;

  MultiplierConfig cfg_;
  // Memoized sub-multiplier functions keyed by base weight offset
  // (off_a + off_b); behaviour depends on offsets only through the base.
  // Base offsets are small and dense (0..2*width in steps of the sub size),
  // so lookup is a direct index into a per-base pointer array instead of a
  // linear scan — one load on the multiply hot path.
  std::vector<std::vector<u8>> lut4_tables_;   // 256 entries each
  std::vector<std::vector<u16>> lut8_tables_;  // 65536 entries each
  std::vector<const u8*> lut4_by_base_;        // index = base, nullptr = none
  std::vector<const u16*> lut8_by_base_;
  [[nodiscard]] const u8* find_lut4(int base) const noexcept {
    return static_cast<std::size_t>(base) < lut4_by_base_.size()
               ? lut4_by_base_[static_cast<std::size_t>(base)]
               : nullptr;
  }
  [[nodiscard]] const u16* find_lut8(int base) const noexcept {
    return static_cast<std::size_t>(base) < lut8_by_base_.size()
               ? lut8_by_base_[static_cast<std::size_t>(base)]
               : nullptr;
  }
};

/// Process-wide cache of multiplier behavioural models: exploration sweeps
/// re-use configurations heavily, and each model owns non-trivial lookup
/// tables. Thread-compatible (not thread-safe): the explorers are
/// single-threaded by design for determinism.
[[nodiscard]] std::shared_ptr<const RecursiveMultiplier> get_multiplier(
    const MultiplierConfig& cfg);

/// Cumulative count of behavioural models actually constructed by
/// get_multiplier (cache misses, not hits) — one input of
/// arith::table_cache_stats(), which tests snapshot to prove the streaming
/// hot path never builds a model lazily.
[[nodiscard]] u64 multiplier_model_builds() noexcept;

}  // namespace xbs::arith
