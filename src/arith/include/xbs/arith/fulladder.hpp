/// \file fulladder.hpp
/// \brief Bit-accurate behavioural models of the elementary 1-bit full adders.
///
/// The six variants are the paper's adder library (Fig. 5): the accurate
/// mirror adder plus the five approximate mirror adders (AMA1..AMA5) of
/// Gupta et al., "IMPACT: imprecise adders for low-power approximate
/// computing" (ISLPED'11) and "Low-power digital signal processing using
/// approximate adders" (TCAD'13). Each variant is a total function of
/// (A, B, Cin) encoded as an 8-entry truth table, which is exactly how the
/// netlist simulator and the fast behavioural simulator both evaluate it —
/// keeping the two bit-identical by construction.
#pragma once

#include <array>

#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Output of a 1-bit full adder.
struct FaOut {
  bool sum;
  bool cout;

  friend constexpr bool operator==(FaOut, FaOut) = default;
};

/// Truth table of one full-adder variant, indexed by (A<<2)|(B<<1)|Cin.
using FaTable = std::array<FaOut, 8>;

/// Truth table for the given adder kind.
///
/// Variant definitions (see DESIGN.md §4.1):
///  - Accurate: Sum = A^B^Cin, Cout = majority(A,B,Cin)
///  - Approx1 (AMA1): Sum errors at (1,0,0)->0 and (1,1,0)->1; Cout exact
///  - Approx2 (AMA2): Sum = !Cout; Cout exact (errors at 000 and 111)
///  - Approx3 (AMA3): Cout = A | (B&Cin); Sum = !Cout
///  - Approx4 (AMA4): Cout = A; Sum = !A (one inverter)
///  - Approx5 (AMA5): Sum = B; Cout = A (zero transistors — wiring only)
[[nodiscard]] const FaTable& fa_table(AdderKind kind) noexcept;

/// Evaluate one full adder.
[[nodiscard]] inline FaOut full_add(AdderKind kind, bool a, bool b, bool cin) noexcept {
  const std::size_t idx =
      (static_cast<std::size_t>(a) << 2) | (static_cast<std::size_t>(b) << 1) |
      static_cast<std::size_t>(cin);
  return fa_table(kind)[idx];
}

/// Number of input combinations (out of 8) where the variant's Sum differs
/// from the accurate adder.
[[nodiscard]] int fa_sum_error_count(AdderKind kind) noexcept;

/// Number of input combinations (out of 8) where the variant's Cout differs
/// from the accurate adder.
[[nodiscard]] int fa_cout_error_count(AdderKind kind) noexcept;

}  // namespace xbs::arith
