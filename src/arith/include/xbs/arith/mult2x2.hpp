/// \file mult2x2.hpp
/// \brief Bit-accurate behavioural models of the elementary 2x2 multipliers.
///
/// The three variants are the paper's multiplier library (Fig. 5): the
/// accurate 2x2 multiplier, the under-designed multiplier of Kulkarni et al.
/// (VLSI Design'11) which returns 7 instead of 9 for 3x3 (all other 15 input
/// combinations exact, and the 4th output bit is removed entirely), and a
/// Rehman-style (ICCAD'16) further-simplified variant that additionally gates
/// the O2 product term, returning 3 for 3x3 at lower area/power (see Table 1
/// ordering and DESIGN.md §4.1).
#pragma once

#include <array>

#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Truth table of one 2x2 multiplier variant, indexed by (A<<2)|B where A and
/// B are the 2-bit operands. Values are the 4-bit products.
using Mult2Table = std::array<u8, 16>;

/// Truth table for the given elementary multiplier kind.
[[nodiscard]] const Mult2Table& mult2_table(MultKind kind) noexcept;

/// Evaluate one elementary 2x2 multiplication (operands masked to 2 bits).
[[nodiscard]] inline u32 mult2(MultKind kind, u32 a, u32 b) noexcept {
  return mult2_table(kind)[((a & 3u) << 2) | (b & 3u)];
}

/// Maximum absolute error of the variant over all 16 input combinations.
[[nodiscard]] int mult2_max_error(MultKind kind) noexcept;

/// Number of erroneous input combinations (out of 16).
[[nodiscard]] int mult2_error_count(MultKind kind) noexcept;

}  // namespace xbs::arith
