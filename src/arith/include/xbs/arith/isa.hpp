/// \file isa.hpp
/// \brief Runtime CPU dispatch for the vector kernel inner loops.
///
/// The table-driven approximate kernels (kernel.hpp) spend their time in
/// three loop shapes: gathered LUT walks (square table, signed
/// per-coefficient product tables), the carry-free wired-add closed forms
/// (AMA4/AMA5), and the fused gather+wired-add MAC. Each shape has one
/// implementation per instruction-set tier — portable scalar baseline,
/// AVX2 (4 x i64 lanes, `vpgatherqq`), AVX-512F (8 x i64 lanes) — compiled
/// in separate translation units so only those TUs carry `-mavx2` /
/// `-mavx512f`. A function-pointer table (`KernelOps`) is selected once at
/// startup from CPUID, overridable with the `XBS_KERNEL_ISA` environment
/// variable (`baseline` | `avx2` | `avx512`) for testing and CI.
///
/// Every tier is bit-identical by construction: the vector loops perform
/// exactly the baseline's 64-bit integer arithmetic per lane, and gathers
/// load exactly the entries the scalar walk loads. Identity is asserted
/// per Fig. 12 configuration, forced per ISA, in
/// tests/test_kernel_dispatch.cpp.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Instruction-set tiers of the kernel inner loops, widest last.
enum class Isa { Baseline = 0, Avx2 = 1, Avx512 = 2 };

inline constexpr Isa kAllIsas[] = {Isa::Baseline, Isa::Avx2, Isa::Avx512};

[[nodiscard]] constexpr std::string_view to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::Baseline: return "baseline";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "baseline";  // unreachable
}

/// Parse an ISA name (the XBS_KERNEL_ISA vocabulary). Nullopt on anything
/// else — the caller decides whether that is a fallback or an error.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name) noexcept;

/// Whether vector code for \p isa was compiled into this binary (the build
/// gates the AVX TUs on compiler/architecture support).
[[nodiscard]] bool isa_compiled(Isa isa) noexcept;

/// Whether the running CPU (and OS context-save state) can execute \p isa.
[[nodiscard]] bool isa_cpu_supported(Isa isa) noexcept;

/// compiled-in AND executable here — i.e. selectable.
[[nodiscard]] bool isa_usable(Isa isa) noexcept;

/// The widest usable ISA on this machine (what auto-selection picks).
[[nodiscard]] Isa best_isa() noexcept;

/// Outcome of an ISA selection: what was requested, what was actually
/// selected, and a human-readable note when they differ. The note is the
/// "visible report" of a graceful fallback — it is also printed once to
/// stderr when an explicit request (env var or force call) cannot be
/// honoured, so a misconfigured deployment is never silently slow or,
/// worse, silently crashy.
struct IsaSelection {
  Isa selected = Isa::Baseline;
  Isa requested = Isa::Baseline;
  bool fallback = false;  ///< requested tier was unusable; fell back
  bool from_env = false;  ///< request came from XBS_KERNEL_ISA
  std::string note;       ///< non-empty exactly when fallback (or bad name)
};

/// The process-wide selection, resolved once on first use: XBS_KERNEL_ISA
/// if set (unusable or unknown values fall back to best_isa() with a
/// visible report), otherwise best_isa() from CPUID.
[[nodiscard]] const IsaSelection& kernel_isa();

/// Force a selection (tests / benches). An unusable request falls back
/// exactly like the env path and reports it in the returned selection.
/// Takes effect for subsequent batched kernel calls; call it only while no
/// other thread is inside a kernel batch (test/bench setup, not a
/// serving-time knob).
IsaSelection force_kernel_isa(Isa isa);

/// Re-run startup resolution (XBS_KERNEL_ISA / CPUID) — lets tests restore
/// the default after forcing tiers, and exercise the env-var path.
IsaSelection force_kernel_isa_auto();

// ----------------------------------------------------------- dispatch seam

/// Parameters of the carry-free wired-add closed form, decoded once per
/// kernel construction (see ApproxKernel::AddFastPath in kernel.hpp).
struct WiredAddParams {
  int width = 32;        ///< adder width w
  int approx_bits = 0;   ///< k: approximate LSB region, in [1, w]
  bool sum_is_b = true;  ///< AMA5 low sum = B; AMA4 low sum = NOT A
  bool negate_b = false; ///< subtract path: B arrives one's-complemented
};

/// Per-ISA implementations of the three hot loop shapes. All pointers are
/// always non-null in a published table.
struct KernelOps {
  /// out[i] = table[(u64)x[i] & mask]. `out` may alias `x` element-wise
  /// (the in-place SQR walk); `table` never aliases either.
  void (*gather_lut_n)(const i64* table, u64 mask, const i64* x, i64* out,
                       std::size_t n);
  /// out[i] = wired_add(a[i], b[i]) under \p p. `out` may alias `a` or `b`
  /// element-wise (the FIR row accumulate runs in place).
  void (*wired_add_n)(const i64* a, const i64* b, i64* out, std::size_t n,
                      const WiredAddParams& p);
  /// acc[i] = wired_add(acc[i], table[(u64)x[i] & mask]) under \p p
  /// (p.negate_b ignored — MACs only add). `x` must not alias `acc`.
  void (*wired_mac_n)(const i64* table, u64 mask, const i64* x, i64* acc,
                      std::size_t n, const WiredAddParams& p);
};

/// The dispatch table of the currently selected ISA: one atomic pointer
/// load, done once per batched kernel call.
[[nodiscard]] const KernelOps& kernel_ops() noexcept;

/// The table of a specific tier, or nullptr when that tier is not usable
/// in this process (benches iterate usable tiers with this).
[[nodiscard]] const KernelOps* kernel_ops_for(Isa isa) noexcept;

}  // namespace xbs::arith
