/// \file rca.hpp
/// \brief Bit-accurate ripple-carry adder with k approximated LSBs (Fig. 6).
#pragma once

#include "xbs/arith/fulladder.hpp"
#include "xbs/common/bitops.hpp"
#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// Configuration of an N-bit ripple-carry adder whose k least-significant
/// full adders are replaced by an approximate variant (paper Fig. 6).
struct AdderConfig {
  int width = 32;                         ///< adder width in bits (2..63)
  int approx_lsbs = 0;                    ///< k: number of approximated LSBs
  AdderKind kind = AdderKind::Accurate;   ///< approximate FA variant for the LSBs
  int weight_offset = 0;                  ///< absolute weight of bit 0 (for use
                                          ///< inside multipliers; 0 standalone)

  friend constexpr bool operator==(const AdderConfig&, const AdderConfig&) = default;
};

/// Result of an unsigned addition.
struct AddResult {
  u64 sum = 0;
  bool carry_out = false;

  friend constexpr bool operator==(AddResult, AddResult) = default;
};

/// Behavioural model of the approximate ripple-carry adder.
///
/// The approximated low region is simulated full-adder by full-adder from the
/// truth tables; the accurate high region is evaluated natively (bit-exact
/// shortcut for a chain of accurate FAs), so adds cost O(k) instead of
/// O(width).
class RippleCarryAdder {
 public:
  explicit RippleCarryAdder(const AdderConfig& cfg);

  [[nodiscard]] const AdderConfig& config() const noexcept { return cfg_; }

  /// Unsigned add of the low `width` bits of a and b.
  [[nodiscard]] AddResult add_u(u64 a, u64 b, bool carry_in = false) const noexcept;

  /// Two's-complement signed add: operands are truncated to `width` bits,
  /// added through the (possibly approximate) adder, and the `width`-bit
  /// result is sign-extended back — exactly what the hardware block computes.
  [[nodiscard]] i64 add_signed(i64 a, i64 b) const noexcept;

  /// Two's-complement signed subtract (b negated via one's complement +
  /// carry-in, the standard adder-subtractor datapath).
  [[nodiscard]] i64 sub_signed(i64 a, i64 b) const noexcept;

 private:
  AdderConfig cfg_;
  int approx_in_range_ = 0;  ///< number of low FA positions that are approximate
};

}  // namespace xbs::arith
