/// \file structure.hpp
/// \brief Structural decomposition of the recursive multiplier (paper Fig. 7).
///
/// A width-N multiplier (N a power of two) is recursively partitioned into
/// four width-N/2 sub-multipliers whose partial products are accumulated by
/// three 2N-bit ripple-carry adders per level:
///
///     P = LL + ((HL + LH) << N/2) + (HH << N)
///
/// For 16x16 this yields exactly the paper's structure: four 8x8 blocks
/// combined by three 32-bit adders; each 8x8 is four 4x4 blocks + three
/// 16-bit adders; each 4x4 is four elementary 2x2 multipliers + three 8-bit
/// adders. The decomposition below is the single source of truth shared by
/// the behavioural simulator (`RecursiveMultiplier`), the netlist builders
/// and the hardware cost model, so approximation decisions and module counts
/// can never diverge.
#pragma once

#include <vector>

#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::arith {

/// One elementary 2x2 multiplier instance inside a recursive multiplier.
struct ElemMultSlot {
  int off_a = 0;       ///< bit offset of the 2-bit slice of operand A
  int off_b = 0;       ///< bit offset of the 2-bit slice of operand B
  int out_offset = 0;  ///< absolute weight of the product's LSB (= off_a + off_b)
};

/// One partial-product accumulation adder inside a recursive multiplier.
struct AdderBlockSlot {
  int width = 0;       ///< adder width in bits (2N at a level of size N)
  int out_offset = 0;  ///< absolute weight of the adder's LSB
  int level = 0;       ///< sub-multiplier size N whose products it combines
};

/// Full structural inventory of a width-N recursive multiplier.
struct MultStructure {
  int width = 0;
  std::vector<ElemMultSlot> elems;
  std::vector<AdderBlockSlot> adders;

  /// Total number of 1-bit full-adder slots across all accumulation adders.
  [[nodiscard]] int total_fa_slots() const noexcept;
};

/// Enumerate the structure of a width-N multiplier. \p width must be a power
/// of two in [2, 32]. Throws std::invalid_argument otherwise.
[[nodiscard]] MultStructure compute_mult_structure(int width);

/// Whether a full adder whose output has absolute weight \p weight falls in
/// the approximated region of k LSBs (Fig. 6 rule: bit i approximate iff
/// i < k).
[[nodiscard]] constexpr bool fa_is_approx(int weight, int approx_lsbs) noexcept {
  return weight < approx_lsbs;
}

/// Whether an elementary 2x2 multiplier whose 4-bit output starts at absolute
/// weight \p out_offset counts as approximated under \p policy for k LSBs.
[[nodiscard]] constexpr bool elem_is_approx(ApproxPolicy policy, int out_offset,
                                            int approx_lsbs) noexcept {
  switch (policy) {
    case ApproxPolicy::Conservative: return out_offset + 3 < approx_lsbs;
    case ApproxPolicy::Moderate: return out_offset + 1 < approx_lsbs;
    case ApproxPolicy::Aggressive: return out_offset < approx_lsbs;
  }
  return false;
}

}  // namespace xbs::arith
