/// \file isa_ops.hpp
/// \brief Internal seam between the dispatch (isa.cpp) and the per-ISA
/// kernel-loop translation units. Not installed: the public surface is
/// xbs/arith/isa.hpp.
#pragma once

#include "xbs/arith/isa.hpp"
#include "xbs/common/bitops.hpp"

namespace xbs::arith::detail {

/// Scalar reference element of the wired-add closed form — the single
/// source of truth every tier's tail loop (and the baseline loop) reduces
/// to. Mirrors ApproxKernel's decoded AMA4/AMA5 semantics exactly.
/// The `(x ^ sbit) - sbit` sign folds below wrap u64 by design (see
/// sign_extend in bitops.hpp) — exempt from the -fsanitize=integer checks.
XBS_NO_SANITIZE_INTEGER [[nodiscard]] inline i64 wired_add_one(
    i64 a, i64 b, int w, int k, bool sum_is_b, bool negate_b) noexcept {
  const u64 wmask = low_mask(w);
  const u64 ua = static_cast<u64>(a) & wmask;
  u64 ub = static_cast<u64>(b) & wmask;
  if (negate_b) ub = ~ub & wmask;
  const u64 sbit = u64{1} << (w - 1);
  if (k >= w) {
    const u64 low = (sum_is_b ? ub : ~ua) & wmask;
    return static_cast<i64>((low ^ sbit) - sbit);
  }
  const u64 low = (sum_is_b ? ub : ~ua) & low_mask(k);
  const u64 carry = (ua >> (k - 1)) & 1u;
  const u64 hi = ((ua >> k) + (ub >> k) + carry) & low_mask(w - k);
  const u64 r = (hi << k) | low;
  return static_cast<i64>((r ^ sbit) - sbit);
}

/// Portable scalar tier (always compiled; also the tail reference).
[[nodiscard]] const KernelOps& baseline_ops() noexcept;

/// Vector tiers, defined in kernel_isa_avx2.cpp / kernel_isa_avx512.cpp —
/// those TUs (and only those) are compiled with -mavx2 / -mavx512f, and are
/// only added to the build when the compiler targets x86 and accepts the
/// flag (XBS_HAVE_AVX2 / XBS_HAVE_AVX512).
#if defined(XBS_HAVE_AVX2)
[[nodiscard]] const KernelOps& avx2_ops() noexcept;
#endif
#if defined(XBS_HAVE_AVX512)
[[nodiscard]] const KernelOps& avx512_ops() noexcept;
#endif

}  // namespace xbs::arith::detail
