#include "xbs/arith/fulladder.hpp"

namespace xbs::arith {
namespace {

constexpr bool maj(bool a, bool b, bool c) noexcept { return (a && b) || (b && c) || (a && c); }

constexpr FaTable make_accurate() noexcept {
  FaTable t{};
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0, c = (i & 1) != 0;
    t[static_cast<std::size_t>(i)] = FaOut{static_cast<bool>(a ^ b ^ c), maj(a, b, c)};
  }
  return t;
}

constexpr FaTable make_ama1() noexcept {
  FaTable t = make_accurate();
  // Transistor-reduced mirror adder: two Sum errors, carry chain untouched.
  t[0b100].sum = false;  // exact 1
  t[0b110].sum = true;   // exact 0
  return t;
}

constexpr FaTable make_ama2() noexcept {
  FaTable t{};
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0, c = (i & 1) != 0;
    const bool co = maj(a, b, c);
    t[static_cast<std::size_t>(i)] = FaOut{!co, co};  // Sum tied to inverted carry
  }
  return t;
}

constexpr FaTable make_ama3() noexcept {
  FaTable t{};
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0, c = (i & 1) != 0;
    const bool co = a || (b && c);  // simplified carry (error at A=1,B=0,Cin=0)
    t[static_cast<std::size_t>(i)] = FaOut{!co, co};
  }
  return t;
}

constexpr FaTable make_ama4() noexcept {
  FaTable t{};
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0;
    t[static_cast<std::size_t>(i)] = FaOut{!a, a};  // Cout = A, Sum = inverter on A
  }
  return t;
}

constexpr FaTable make_ama5() noexcept {
  FaTable t{};
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0;
    t[static_cast<std::size_t>(i)] = FaOut{b, a};  // pure wiring: Sum = B, Cout = A
  }
  return t;
}

constexpr std::array<FaTable, 6> kTables = {
    make_accurate(), make_ama1(), make_ama2(), make_ama3(), make_ama4(), make_ama5(),
};

}  // namespace

const FaTable& fa_table(AdderKind kind) noexcept {
  return kTables[static_cast<std::size_t>(kind)];
}

int fa_sum_error_count(AdderKind kind) noexcept {
  const FaTable& acc = fa_table(AdderKind::Accurate);
  const FaTable& t = fa_table(kind);
  int n = 0;
  for (std::size_t i = 0; i < 8; ++i) n += (t[i].sum != acc[i].sum) ? 1 : 0;
  return n;
}

int fa_cout_error_count(AdderKind kind) noexcept {
  const FaTable& acc = fa_table(AdderKind::Accurate);
  const FaTable& t = fa_table(kind);
  int n = 0;
  for (std::size_t i = 0; i < 8; ++i) n += (t[i].cout != acc[i].cout) ? 1 : 0;
  return n;
}

}  // namespace xbs::arith
