/// \file kernel_isa_baseline.cpp
/// \brief Portable scalar tier of the kernel inner loops.
///
/// These are the loops ApproxKernel ran before the dispatch seam existed,
/// ported verbatim: the path booleans are template parameters so the inner
/// bodies stay branch-free and auto-vectorizable, exactly as before. Every
/// other tier must be bit-identical to this one.
#include "isa_ops.hpp"

namespace xbs::arith::detail {
namespace {

#if defined(_MSC_VER)
#define XBS_RESTRICT __restrict
#else
#define XBS_RESTRICT __restrict__
#endif

void gather_lut_n_baseline(const i64* table, u64 mask, const i64* x, i64* out,
                           std::size_t n) {
  // No restrict on x/out: the in-place SQR walk aliases them fully, and
  // out[i] is written strictly after x[i] is read.
  const i64* XBS_RESTRICT t = table;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = t[static_cast<u64>(x[i]) & mask];
  }
}

// The `(x ^ sbit) - sbit` sign folds in both loop bodies wrap u64 by design
// (two's-complement sign extension, see bitops.hpp) — exempt from the
// -fsanitize=integer checks.
template <bool kSumIsB, bool kNegateB>
XBS_NO_SANITIZE_INTEGER void wired_add_loop(const i64* a, const i64* b, i64* out, std::size_t n,
                                            int w, int k) noexcept {
  const u64 wmask = low_mask(w);
  const u64 sbit = u64{1} << (w - 1);
  if (k >= w) {
    for (std::size_t i = 0; i < n; ++i) {
      const u64 ua = static_cast<u64>(a[i]) & wmask;
      u64 ub = static_cast<u64>(b[i]) & wmask;
      if (kNegateB) ub = ~ub & wmask;
      const u64 low = (kSumIsB ? ub : ~ua) & wmask;
      out[i] = static_cast<i64>((low ^ sbit) - sbit);
    }
    return;
  }
  const u64 kmask = low_mask(k);
  const u64 himask = low_mask(w - k);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 ua = static_cast<u64>(a[i]) & wmask;
    u64 ub = static_cast<u64>(b[i]) & wmask;
    if (kNegateB) ub = ~ub & wmask;
    const u64 low = (kSumIsB ? ub : ~ua) & kmask;
    const u64 carry = (ua >> (k - 1)) & 1u;
    const u64 hi = ((ua >> k) + (ub >> k) + carry) & himask;
    const u64 r = (hi << k) | low;
    out[i] = static_cast<i64>((r ^ sbit) - sbit);
  }
}

void wired_add_n_baseline(const i64* a, const i64* b, i64* out, std::size_t n,
                          const WiredAddParams& p) {
  if (p.sum_is_b) {
    if (p.negate_b) {
      wired_add_loop<true, true>(a, b, out, n, p.width, p.approx_bits);
    } else {
      wired_add_loop<true, false>(a, b, out, n, p.width, p.approx_bits);
    }
  } else {
    if (p.negate_b) {
      wired_add_loop<false, true>(a, b, out, n, p.width, p.approx_bits);
    } else {
      wired_add_loop<false, false>(a, b, out, n, p.width, p.approx_bits);
    }
  }
}

template <bool kSumIsB>
XBS_NO_SANITIZE_INTEGER void wired_mac_loop(const i64* XBS_RESTRICT table, u64 mask,
                                            const i64* XBS_RESTRICT x, i64* XBS_RESTRICT acc,
                                            std::size_t n, int w, int k) noexcept {
  const u64 wmask = low_mask(w);
  const u64 sbit = u64{1} << (w - 1);
  if (k >= w) {
    for (std::size_t i = 0; i < n; ++i) {
      const u64 ua = static_cast<u64>(acc[i]) & wmask;
      const u64 ub = static_cast<u64>(table[static_cast<u64>(x[i]) & mask]) & wmask;
      const u64 low = (kSumIsB ? ub : ~ua) & wmask;
      acc[i] = static_cast<i64>((low ^ sbit) - sbit);
    }
    return;
  }
  const u64 kmask = low_mask(k);
  const u64 himask = low_mask(w - k);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 ua = static_cast<u64>(acc[i]) & wmask;
    const u64 ub = static_cast<u64>(table[static_cast<u64>(x[i]) & mask]) & wmask;
    const u64 low = (kSumIsB ? ub : ~ua) & kmask;
    const u64 carry = (ua >> (k - 1)) & 1u;
    const u64 hi = ((ua >> k) + (ub >> k) + carry) & himask;
    const u64 r = (hi << k) | low;
    acc[i] = static_cast<i64>((r ^ sbit) - sbit);
  }
}

void wired_mac_n_baseline(const i64* table, u64 mask, const i64* x, i64* acc,
                          std::size_t n, const WiredAddParams& p) {
  if (p.sum_is_b) {
    wired_mac_loop<true>(table, mask, x, acc, n, p.width, p.approx_bits);
  } else {
    wired_mac_loop<false>(table, mask, x, acc, n, p.width, p.approx_bits);
  }
}

}  // namespace

const KernelOps& baseline_ops() noexcept {
  static constexpr KernelOps ops{&gather_lut_n_baseline, &wired_add_n_baseline,
                                 &wired_mac_n_baseline};
  return ops;
}

}  // namespace xbs::arith::detail
