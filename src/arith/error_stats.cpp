#include "xbs/arith/error_stats.hpp"

#include <cmath>
#include <cstdlib>

#include "xbs/common/bitops.hpp"
#include "xbs/common/rng.hpp"

namespace xbs::arith {
namespace {

class Accumulator {
 public:
  void add(u64 exact, u64 approx) {
    const i64 err = std::llabs(static_cast<i64>(approx) - static_cast<i64>(exact));
    errors_ += (err != 0) ? 1 : 0;
    sum_abs_ += static_cast<double>(err);
    sum_sq_ += static_cast<double>(err) * static_cast<double>(err);
    sum_rel_ += static_cast<double>(err) /
                std::max<double>(1.0, static_cast<double>(exact));
    max_ = std::max(max_, err);
    ++n_;
  }

  [[nodiscard]] ErrorStats finish() const {
    ErrorStats s;
    s.samples = n_;
    if (n_ == 0) return s;
    const double n = static_cast<double>(n_);
    s.error_rate = static_cast<double>(errors_) / n;
    s.mean_abs_error = sum_abs_ / n;
    s.mean_rel_error = sum_rel_ / n;
    s.rms_error = std::sqrt(sum_sq_ / n);
    s.max_abs_error = max_;
    return s;
  }

 private:
  u64 n_ = 0;
  u64 errors_ = 0;
  double sum_abs_ = 0.0;
  double sum_sq_ = 0.0;
  double sum_rel_ = 0.0;
  i64 max_ = 0;
};

}  // namespace

ErrorStats characterize_adder(const AdderConfig& cfg, u64 exhaustive_limit, u64 mc_samples,
                              u64 seed) {
  const RippleCarryAdder adder(cfg);
  Accumulator acc;
  const u64 space = (cfg.width >= 32) ? ~u64{0} : (u64{1} << (2 * cfg.width));
  const u64 mask = low_mask(cfg.width);
  // Compare the full (width+1)-bit result including carry-out, so modular
  // wrap does not masquerade as a near-full-scale error.
  const auto approx_full = [&](u64 a, u64 b) {
    const AddResult r = adder.add_u(a, b);
    return r.sum | (static_cast<u64>(r.carry_out) << cfg.width);
  };
  if (cfg.width < 32 && space <= exhaustive_limit) {
    const u64 n = u64{1} << cfg.width;
    for (u64 a = 0; a < n; ++a) {
      for (u64 b = 0; b < n; ++b) {
        acc.add(a + b, approx_full(a, b));
      }
    }
  } else {
    Rng rng(seed);
    for (u64 t = 0; t < mc_samples; ++t) {
      const u64 a = rng.next_u64() & mask;
      const u64 b = rng.next_u64() & mask;
      acc.add(a + b, approx_full(a, b));
    }
  }
  return acc.finish();
}

ErrorStats characterize_multiplier(const MultiplierConfig& cfg, u64 exhaustive_limit,
                                   u64 mc_samples, u64 seed) {
  const RecursiveMultiplier mult(cfg);
  Accumulator acc;
  const u64 space = u64{1} << (2 * cfg.width);
  const u64 mask = low_mask(cfg.width);
  if (space <= exhaustive_limit) {
    const u64 n = u64{1} << cfg.width;
    for (u64 a = 0; a < n; ++a) {
      for (u64 b = 0; b < n; ++b) {
        acc.add(a * b, mult.multiply_u(a, b));
      }
    }
  } else {
    Rng rng(seed);
    for (u64 t = 0; t < mc_samples; ++t) {
      const u64 a = rng.next_u64() & mask;
      const u64 b = rng.next_u64() & mask;
      acc.add(a * b, mult.multiply_u(a, b));
    }
  }
  return acc.finish();
}

}  // namespace xbs::arith
