/// \file isa.cpp
/// \brief Runtime CPU detection and selection of the kernel-loop tier.
#include "xbs/arith/isa.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "isa_ops.hpp"
#include "xbs/common/sync.hpp"

namespace xbs::arith {
namespace {

// Selection state. Writes (startup resolution, test/bench forcing) are
// serialized by the mutex; the hot path reads only the atomic table
// pointer. kernel_isa()'s returned reference is stable storage — callers
// that force tiers concurrently with readers get torn notes, which is why
// forcing is documented as a setup-time knob.
// Rank kTableCache: process-wide dispatch state, a leaf like the LUT caches.
common::Mutex g_mutex{common::LockRank::kTableCache};
IsaSelection g_selection XBS_GUARDED_BY(g_mutex);  // NOLINT(cert-err58-cpp) — trivial until first use
bool g_resolved XBS_GUARDED_BY(g_mutex) = false;
std::atomic<const KernelOps*> g_ops{nullptr};

const KernelOps* compiled_ops(Isa isa) noexcept {
  switch (isa) {
    case Isa::Baseline: return &detail::baseline_ops();
    case Isa::Avx2:
#if defined(XBS_HAVE_AVX2)
      return &detail::avx2_ops();
#else
      return nullptr;
#endif
    case Isa::Avx512:
#if defined(XBS_HAVE_AVX512)
      return &detail::avx512_ops();
#else
      return nullptr;
#endif
  }
  return nullptr;  // unreachable
}

/// Build the selection for an explicit request, falling back to the widest
/// usable tier with an explanatory note when the request cannot run here.
IsaSelection resolve_request(Isa requested, bool from_env) {
  IsaSelection s;
  s.requested = requested;
  s.from_env = from_env;
  if (isa_usable(requested)) {
    s.selected = requested;
    return s;
  }
  s.selected = best_isa();
  s.fallback = true;
  const char* why = isa_compiled(requested) ? "the CPU does not support it"
                                            : "it was not compiled into this binary";
  s.note = "requested kernel ISA \"" + std::string(to_string(requested)) +
           (from_env ? "\" (XBS_KERNEL_ISA)" : "\"") + " is unavailable (" + why +
           "); falling back to \"" + std::string(to_string(s.selected)) + "\"";
  return s;
}

/// Publish a selection: swap the dispatch table and make the fallback
/// visible on stderr (once per publication, i.e. once at startup for the
/// env path).
const IsaSelection& apply_locked(IsaSelection s) XBS_REQUIRES(g_mutex) {
  g_selection = std::move(s);
  g_resolved = true;
  g_ops.store(compiled_ops(g_selection.selected), std::memory_order_release);
  if (g_selection.fallback) {
    std::fprintf(stderr, "xbs::arith: %s\n", g_selection.note.c_str());
  }
  return g_selection;
}

IsaSelection resolve_auto() {
  const char* env = std::getenv("XBS_KERNEL_ISA");
  if (env != nullptr && *env != '\0') {
    if (const std::optional<Isa> parsed = parse_isa(env)) {
      return resolve_request(*parsed, /*from_env=*/true);
    }
    IsaSelection s;
    s.requested = best_isa();
    s.selected = s.requested;
    s.fallback = true;
    s.from_env = true;
    s.note = "unknown XBS_KERNEL_ISA value \"" + std::string(env) +
             "\" (expected baseline|avx2|avx512); using \"" +
             std::string(to_string(s.selected)) + "\"";
    return s;
  }
  IsaSelection s;
  s.requested = best_isa();
  s.selected = s.requested;
  return s;
}

}  // namespace

std::optional<Isa> parse_isa(std::string_view name) noexcept {
  for (const Isa isa : kAllIsas) {
    if (name == to_string(isa)) return isa;
  }
  return std::nullopt;
}

bool isa_compiled(Isa isa) noexcept { return compiled_ops(isa) != nullptr; }

bool isa_cpu_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::Baseline: return true;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    // __builtin_cpu_supports also checks the OS's XSAVE state for the AVX
    // register files, so "supported" means "will not fault".
    case Isa::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512: return __builtin_cpu_supports("avx512f") != 0;
#else
    case Isa::Avx2:
    case Isa::Avx512: return false;
#endif
  }
  return false;  // unreachable
}

bool isa_usable(Isa isa) noexcept {
  return isa_compiled(isa) && isa_cpu_supported(isa);
}

Isa best_isa() noexcept {
  if (isa_usable(Isa::Avx512)) return Isa::Avx512;
  if (isa_usable(Isa::Avx2)) return Isa::Avx2;
  return Isa::Baseline;
}

const IsaSelection& kernel_isa() {
  const common::MutexLock lock(g_mutex);
  if (!g_resolved) return apply_locked(resolve_auto());
  return g_selection;
}

IsaSelection force_kernel_isa(Isa isa) {
  const common::MutexLock lock(g_mutex);
  return apply_locked(resolve_request(isa, /*from_env=*/false));
}

IsaSelection force_kernel_isa_auto() {
  const common::MutexLock lock(g_mutex);
  return apply_locked(resolve_auto());
}

const KernelOps& kernel_ops() noexcept {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    (void)kernel_isa();  // first use: run startup resolution
    ops = g_ops.load(std::memory_order_acquire);
  }
  return *ops;
}

const KernelOps* kernel_ops_for(Isa isa) noexcept {
  return isa_usable(isa) ? compiled_ops(isa) : nullptr;
}

}  // namespace xbs::arith
