/// \file kernel_isa_avx512.cpp
/// \brief AVX-512F tier of the kernel inner loops: 8 x i64 lanes per
/// iteration.
///
/// Same structure as the AVX2 tier, at twice the width: `vpgatherqq` over
/// zmm gathers 8 table entries per instruction, and the wired-add closed
/// forms run as 512-bit integer bit arithmetic (all AVX-512F). The ragged
/// tail (n % 8) runs the shared scalar reference element, so every lane —
/// vector or tail — computes exactly the baseline's 64-bit sequence.
///
/// Compiled with -mavx512f on this TU only; added to the build only when
/// the compiler targets x86 and accepts the flag, and called only when
/// CPUID (plus OS state-save support) reports AVX-512F at runtime.
#include "isa_ops.hpp"

#if !defined(__AVX512F__)
#error "kernel_isa_avx512.cpp must be compiled with -mavx512f (build system bug)"
#endif

#include <immintrin.h>

namespace xbs::arith::detail {
namespace {

inline __m512i bcast(u64 v) noexcept {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

/// Full-mask gather with an explicit zero pass-through: identical loads to
/// the plain gather, but avoids the _mm512_undefined_* source operand that
/// GCC's -Wmaybe-uninitialized (correctly, pedantically) flags.
inline __m512i gather8(__m512i idx, const i64* table) noexcept {
  return _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                     static_cast<__mmask8>(0xFF), idx, table, 8);
}

void gather_lut_n_avx512(const i64* table, u64 mask, const i64* x, i64* out,
                         std::size_t n) {
  const __m512i vmask = bcast(mask);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i idx = _mm512_and_si512(vx, vmask);
    const __m512i v = gather8(idx, table);
    _mm512_storeu_si512(out + i, v);
  }
  for (; i < n; ++i) out[i] = table[static_cast<u64>(x[i]) & mask];
}

template <bool kSumIsB>
inline __m512i wired_add_vec(__m512i ua, __m512i ub, __m512i wmask, __m512i sbit,
                             __m512i kmask, __m512i himask, __m512i one,
                             __m128i shk, __m128i shk1, bool low_only) noexcept {
  if (low_only) {
    const __m512i low = kSumIsB ? ub : _mm512_andnot_si512(ua, wmask);
    return _mm512_sub_epi64(_mm512_xor_si512(low, sbit), sbit);
  }
  const __m512i low =
      kSumIsB ? _mm512_and_si512(ub, kmask) : _mm512_andnot_si512(ua, kmask);
  const __m512i carry = _mm512_and_si512(_mm512_srl_epi64(ua, shk1), one);
  const __m512i hi = _mm512_and_si512(
      _mm512_add_epi64(
          _mm512_add_epi64(_mm512_srl_epi64(ua, shk), _mm512_srl_epi64(ub, shk)),
          carry),
      himask);
  const __m512i r = _mm512_or_si512(_mm512_sll_epi64(hi, shk), low);
  return _mm512_sub_epi64(_mm512_xor_si512(r, sbit), sbit);
}

template <bool kSumIsB, bool kNegateB>
void wired_add_loop_avx512(const i64* a, const i64* b, i64* out, std::size_t n,
                           int w, int k) noexcept {
  const bool low_only = k >= w;
  const __m512i wmask = bcast(low_mask(w));
  const __m512i sbit = bcast(u64{1} << (w - 1));
  const __m512i kmask = bcast(low_mask(low_only ? w : k));
  const __m512i himask = bcast(low_mask(low_only ? 1 : w - k));
  const __m512i one = bcast(1);
  const __m128i shk = _mm_cvtsi32_si128(low_only ? 0 : k);
  const __m128i shk1 = _mm_cvtsi32_si128(low_only ? 0 : k - 1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_and_si512(_mm512_loadu_si512(a + i), wmask);
    __m512i vb = _mm512_and_si512(_mm512_loadu_si512(b + i), wmask);
    if (kNegateB) vb = _mm512_andnot_si512(vb, wmask);
    const __m512i r = wired_add_vec<kSumIsB>(va, vb, wmask, sbit, kmask, himask,
                                             one, shk, shk1, low_only);
    _mm512_storeu_si512(out + i, r);
  }
  for (; i < n; ++i) out[i] = wired_add_one(a[i], b[i], w, k, kSumIsB, kNegateB);
}

void wired_add_n_avx512(const i64* a, const i64* b, i64* out, std::size_t n,
                        const WiredAddParams& p) {
  if (p.sum_is_b) {
    if (p.negate_b) {
      wired_add_loop_avx512<true, true>(a, b, out, n, p.width, p.approx_bits);
    } else {
      wired_add_loop_avx512<true, false>(a, b, out, n, p.width, p.approx_bits);
    }
  } else {
    if (p.negate_b) {
      wired_add_loop_avx512<false, true>(a, b, out, n, p.width, p.approx_bits);
    } else {
      wired_add_loop_avx512<false, false>(a, b, out, n, p.width, p.approx_bits);
    }
  }
}

template <bool kSumIsB>
void wired_mac_loop_avx512(const i64* table, u64 mask, const i64* x, i64* acc,
                           std::size_t n, int w, int k) noexcept {
  const bool low_only = k >= w;
  const __m512i vmask = bcast(mask);
  const __m512i wmask = bcast(low_mask(w));
  const __m512i sbit = bcast(u64{1} << (w - 1));
  const __m512i kmask = bcast(low_mask(low_only ? w : k));
  const __m512i himask = bcast(low_mask(low_only ? 1 : w - k));
  const __m512i one = bcast(1);
  const __m128i shk = _mm_cvtsi32_si128(low_only ? 0 : k);
  const __m128i shk1 = _mm_cvtsi32_si128(low_only ? 0 : k - 1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i idx = _mm512_and_si512(vx, vmask);
    const __m512i prod = gather8(idx, table);
    const __m512i ua = _mm512_and_si512(_mm512_loadu_si512(acc + i), wmask);
    const __m512i ub = _mm512_and_si512(prod, wmask);
    const __m512i r = wired_add_vec<kSumIsB>(ua, ub, wmask, sbit, kmask, himask,
                                             one, shk, shk1, low_only);
    _mm512_storeu_si512(acc + i, r);
  }
  for (; i < n; ++i) {
    acc[i] = wired_add_one(acc[i], table[static_cast<u64>(x[i]) & mask], w, k,
                           kSumIsB, false);
  }
}

void wired_mac_n_avx512(const i64* table, u64 mask, const i64* x, i64* acc,
                        std::size_t n, const WiredAddParams& p) {
  if (p.sum_is_b) {
    wired_mac_loop_avx512<true>(table, mask, x, acc, n, p.width, p.approx_bits);
  } else {
    wired_mac_loop_avx512<false>(table, mask, x, acc, n, p.width, p.approx_bits);
  }
}

}  // namespace

const KernelOps& avx512_ops() noexcept {
  static constexpr KernelOps ops{&gather_lut_n_avx512, &wired_add_n_avx512,
                                 &wired_mac_n_avx512};
  return ops;
}

}  // namespace xbs::arith::detail
