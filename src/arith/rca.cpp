#include "xbs/arith/rca.hpp"

#include <algorithm>
#include <stdexcept>

namespace xbs::arith {

RippleCarryAdder::RippleCarryAdder(const AdderConfig& cfg) : cfg_(cfg) {
  if (cfg.width < 2 || cfg.width > 63) {
    throw std::invalid_argument("adder width must be in [2, 63]");
  }
  if (cfg.approx_lsbs < 0) throw std::invalid_argument("approx_lsbs must be >= 0");
  // Bit i of this adder has absolute weight weight_offset + i; it is
  // approximate iff that weight is below k (Fig. 6).
  approx_in_range_ = std::clamp(cfg.approx_lsbs - cfg.weight_offset, 0, cfg.width);
}

AddResult RippleCarryAdder::add_u(u64 a, u64 b, bool carry_in) const noexcept {
  const u64 mask = low_mask(cfg_.width);
  a &= mask;
  b &= mask;
  u64 sum = 0;
  bool carry = carry_in;
  const FaTable& t = fa_table(cfg_.kind);
  for (int i = 0; i < approx_in_range_; ++i) {
    const std::size_t idx = (static_cast<std::size_t>(bit_of(a, i)) << 2) |
                            (static_cast<std::size_t>(bit_of(b, i)) << 1) |
                            static_cast<std::size_t>(carry);
    const FaOut o = t[idx];
    sum = with_bit(sum, i, o.sum);
    carry = o.cout;
  }
  // Accurate high region: a single native add is bit-identical to the
  // remaining chain of exact full adders.
  const int hi_bits = cfg_.width - approx_in_range_;
  if (hi_bits > 0) {
    const u64 ah = a >> approx_in_range_;
    const u64 bh = b >> approx_in_range_;
    const u64 s = ah + bh + (carry ? 1u : 0u);
    sum |= (s & low_mask(hi_bits)) << approx_in_range_;
    carry = bit_of(s, hi_bits);
  }
  return AddResult{sum & mask, carry};
}

i64 RippleCarryAdder::add_signed(i64 a, i64 b) const noexcept {
  const u64 ua = to_unsigned_bits(a, cfg_.width);
  const u64 ub = to_unsigned_bits(b, cfg_.width);
  return sign_extend(add_u(ua, ub).sum, cfg_.width);
}

i64 RippleCarryAdder::sub_signed(i64 a, i64 b) const noexcept {
  const u64 ua = to_unsigned_bits(a, cfg_.width);
  const u64 ub = (~to_unsigned_bits(b, cfg_.width)) & low_mask(cfg_.width);
  return sign_extend(add_u(ua, ub, /*carry_in=*/true).sum, cfg_.width);
}

}  // namespace xbs::arith
