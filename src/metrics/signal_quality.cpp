#include "xbs/metrics/signal_quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace xbs::metrics {
namespace {

void check_sizes(std::span<const double> ref, std::span<const double> test) {
  if (ref.size() != test.size() || ref.empty()) {
    throw std::invalid_argument("signal metrics require equal, non-zero sizes");
  }
}

double dynamic_range(std::span<const double> ref) noexcept {
  const auto [lo, hi] = std::minmax_element(ref.begin(), ref.end());
  return *hi - *lo;
}

}  // namespace

double mse(std::span<const double> ref, std::span<const double> test) {
  check_sizes(ref, test);
  double acc = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = ref[i] - test[i];
    acc += d * d;
  }
  return acc / static_cast<double>(ref.size());
}

double rmse(std::span<const double> ref, std::span<const double> test) {
  return std::sqrt(mse(ref, test));
}

double mae(std::span<const double> ref, std::span<const double> test) {
  check_sizes(ref, test);
  double acc = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) acc += std::abs(ref[i] - test[i]);
  return acc / static_cast<double>(ref.size());
}

double psnr_db(std::span<const double> ref, std::span<const double> test) {
  const double m = mse(ref, test);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  const double peak = dynamic_range(ref);
  if (peak <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / m);
}

double ssim(std::span<const double> ref, std::span<const double> test, const SsimParams& p) {
  check_sizes(ref, test);
  if (p.window < 2 || p.stride < 1) throw std::invalid_argument("bad SSIM parameters");
  const std::size_t n = ref.size();
  if (n < 2) return 1.0;
  const double range = std::max(dynamic_range(ref), 1e-12);
  const double c1 = (p.k1 * range) * (p.k1 * range);
  const double c2 = (p.k2 * range) * (p.k2 * range);

  // Signals shorter than one window are scored over a single full-signal
  // window.
  const std::size_t w = std::min<std::size_t>(static_cast<std::size_t>(p.window), n);
  double total = 0.0;
  std::size_t count = 0;
  const std::size_t last = n - w;
  for (std::size_t start = 0; start <= last; start += static_cast<std::size_t>(p.stride)) {
    double mu_r = 0.0, mu_t = 0.0;
    for (std::size_t i = start; i < start + w; ++i) {
      mu_r += ref[i];
      mu_t += test[i];
    }
    mu_r /= static_cast<double>(w);
    mu_t /= static_cast<double>(w);
    double var_r = 0.0, var_t = 0.0, cov = 0.0;
    for (std::size_t i = start; i < start + w; ++i) {
      const double dr = ref[i] - mu_r;
      const double dt = test[i] - mu_t;
      var_r += dr * dr;
      var_t += dt * dt;
      cov += dr * dt;
    }
    var_r /= static_cast<double>(w - 1);
    var_t /= static_cast<double>(w - 1);
    cov /= static_cast<double>(w - 1);
    const double num = (2.0 * mu_r * mu_t + c1) * (2.0 * cov + c2);
    const double den = (mu_r * mu_r + mu_t * mu_t + c1) * (var_r + var_t + c2);
    total += num / den;
    ++count;
  }
  return total / static_cast<double>(count);
}

}  // namespace xbs::metrics
