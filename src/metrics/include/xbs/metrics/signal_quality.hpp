/// \file signal_quality.hpp
/// \brief Signal-quality metrics for the pre-processing quality stage:
/// PSNR and 1-D SSIM (the paper's intermediate constraints), plus RMSE/MAE.
#pragma once

#include <span>

namespace xbs::metrics {

/// Mean squared error between reference and test (sizes must match).
[[nodiscard]] double mse(std::span<const double> ref, std::span<const double> test);

/// Root-mean-square error.
[[nodiscard]] double rmse(std::span<const double> ref, std::span<const double> test);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> ref, std::span<const double> test);

/// Peak signal-to-noise ratio in dB. The peak value is the reference's
/// dynamic range (max - min); identical signals yield +infinity.
[[nodiscard]] double psnr_db(std::span<const double> ref, std::span<const double> test);

/// Parameters of the 1-D SSIM metric (Wang et al. adapted to signals):
/// mean SSIM over sliding windows, with stabilizers derived from the
/// reference dynamic range.
struct SsimParams {
  int window = 64;   ///< sliding-window length in samples
  int stride = 16;   ///< hop between windows
  double k1 = 0.01;  ///< luminance stabilizer coefficient
  double k2 = 0.03;  ///< contrast stabilizer coefficient
};

/// Mean structural similarity index in [-1, 1] (1 = identical).
[[nodiscard]] double ssim(std::span<const double> ref, std::span<const double> test,
                          const SsimParams& params = {});

}  // namespace xbs::metrics
