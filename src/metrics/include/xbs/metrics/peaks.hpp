/// \file peaks.hpp
/// \brief R-peak matching and the paper's peak-detection-accuracy metric
/// (the final quality-evaluation stage of the methodology).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xbs::metrics {

/// Outcome of matching detected peaks against ground-truth annotations.
struct PeakMatchResult {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  std::vector<std::size_t> matched_truth;     ///< truth indices that were found
  std::vector<std::size_t> missed_truth;      ///< truth indices with no detection
  std::vector<std::size_t> spurious_detected; ///< detections with no truth peak

  [[nodiscard]] int truth_count() const noexcept { return true_positives + false_negatives; }
  /// Sensitivity (recall): TP / (TP + FN), in percent.
  [[nodiscard]] double sensitivity_pct() const noexcept;
  /// Positive predictive value: TP / (TP + FP), in percent.
  [[nodiscard]] double ppv_pct() const noexcept;
  /// F1 score in percent.
  [[nodiscard]] double f1_pct() const noexcept;
  /// The paper's peak-detection accuracy: the fraction of heartbeats
  /// correctly detected, penalizing both misses and spurious detections:
  /// 100 * max(0, 1 - (FN + FP) / truth). Identical counts with garbage
  /// placement therefore still score 0, matching the paper's observation
  /// that accuracy collapses past the error-resilience threshold.
  [[nodiscard]] double detection_accuracy_pct() const noexcept;
};

/// Greedily match detections to truth annotations within +/- tolerance
/// samples (nearest-first, one-to-one). Both inputs must be sorted.
[[nodiscard]] PeakMatchResult match_peaks(std::span<const std::size_t> truth,
                                          std::span<const std::size_t> detected,
                                          std::size_t tolerance_samples);

/// Default matching tolerance: 150 ms (the AAMI-style acceptance window) at
/// the given sampling rate.
[[nodiscard]] std::size_t default_tolerance_samples(double fs_hz) noexcept;

}  // namespace xbs::metrics
