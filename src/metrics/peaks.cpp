#include "xbs/metrics/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace xbs::metrics {

double PeakMatchResult::sensitivity_pct() const noexcept {
  const int denom = true_positives + false_negatives;
  return denom > 0 ? 100.0 * true_positives / denom : 100.0;
}

double PeakMatchResult::ppv_pct() const noexcept {
  const int denom = true_positives + false_positives;
  return denom > 0 ? 100.0 * true_positives / denom : 100.0;
}

double PeakMatchResult::f1_pct() const noexcept {
  const double se = sensitivity_pct();
  const double pp = ppv_pct();
  return (se + pp) > 0.0 ? 2.0 * se * pp / (se + pp) : 0.0;
}

double PeakMatchResult::detection_accuracy_pct() const noexcept {
  const int truth = truth_count();
  if (truth == 0) return false_positives == 0 ? 100.0 : 0.0;
  const double err = static_cast<double>(false_negatives + false_positives) / truth;
  return 100.0 * std::max(0.0, 1.0 - err);
}

PeakMatchResult match_peaks(std::span<const std::size_t> truth,
                            std::span<const std::size_t> detected,
                            std::size_t tolerance_samples) {
  PeakMatchResult r;
  std::vector<bool> truth_used(truth.size(), false);
  std::vector<bool> det_used(detected.size(), false);

  // Nearest-first greedy matching: enumerate candidate pairs within
  // tolerance, sort by distance, accept one-to-one.
  struct Pair {
    std::size_t d_truth;
    std::size_t ti;
    std::size_t di;
  };
  std::vector<Pair> pairs;
  std::size_t di_start = 0;
  for (std::size_t ti = 0; ti < truth.size(); ++ti) {
    // Advance the lower bound (both arrays sorted).
    while (di_start < detected.size() &&
           detected[di_start] + tolerance_samples < truth[ti]) {
      ++di_start;
    }
    for (std::size_t di = di_start; di < detected.size(); ++di) {
      if (detected[di] > truth[ti] + tolerance_samples) break;
      const std::size_t dist = detected[di] > truth[ti] ? detected[di] - truth[ti]
                                                        : truth[ti] - detected[di];
      pairs.push_back(Pair{dist, ti, di});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.d_truth != b.d_truth) return a.d_truth < b.d_truth;
    if (a.ti != b.ti) return a.ti < b.ti;
    return a.di < b.di;
  });
  for (const Pair& p : pairs) {
    if (truth_used[p.ti] || det_used[p.di]) continue;
    truth_used[p.ti] = true;
    det_used[p.di] = true;
    ++r.true_positives;
    r.matched_truth.push_back(p.ti);
  }
  for (std::size_t ti = 0; ti < truth.size(); ++ti) {
    if (!truth_used[ti]) {
      ++r.false_negatives;
      r.missed_truth.push_back(ti);
    }
  }
  for (std::size_t di = 0; di < detected.size(); ++di) {
    if (!det_used[di]) {
      ++r.false_positives;
      r.spurious_detected.push_back(di);
    }
  }
  std::sort(r.matched_truth.begin(), r.matched_truth.end());
  return r;
}

std::size_t default_tolerance_samples(double fs_hz) noexcept {
  return static_cast<std::size_t>(std::llround(0.150 * fs_hz));
}

}  // namespace xbs::metrics
