/// \file table.hpp
/// \brief ASCII table / CSV rendering used by every bench binary, so each
/// experiment prints the same rows the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xbs::report {

/// Simple column-aligned ASCII table with an optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  AsciiTable& set_title(std::string title);
  AsciiTable& add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision ("12.34").
[[nodiscard]] std::string fmt(double v, int precision = 2);

/// Format a reduction factor ("12.3x"; infinities as "inf").
[[nodiscard]] std::string fmt_factor(double v, int precision = 2);

/// Format a value in scientific notation ("1.2e+03").
[[nodiscard]] std::string fmt_sci(double v, int precision = 2);

/// Format a percentage ("99.1%").
[[nodiscard]] std::string fmt_pct(double v, int precision = 1);

}  // namespace xbs::report
