#include "xbs/report/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace xbs::report {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

AsciiTable& AsciiTable::set_title(std::string title) {
  title_ = std::move(title);
  return *this;
}

AsciiTable& AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::size_t total = width.empty() ? 0 : (3 * (width.size() - 1));
  for (const std::size_t w : width) total += w;

  if (!title_.empty()) os << title_ << "\n";
  auto rule = [&] { os << std::string(total, '-') << "\n"; };
  rule();
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << headers_[c] << std::string(width[c] - headers_[c].size(), ' ');
    if (c + 1 < headers_.size()) os << " | ";
  }
  os << "\n";
  rule();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << " | ";
    }
    os << "\n";
  }
  rule();
}

void AsciiTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ",";
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_factor(double v, int precision) {
  if (std::isinf(v)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

}  // namespace xbs::report
