/// \file pt_reference.hpp
/// \brief Double-precision reference implementation of the Pan-Tompkins
/// filtering chain (validation golden model for the fixed-point pipeline).
#pragma once

#include <span>
#include <vector>

namespace xbs::dsp {

/// Per-stage outputs of the reference chain (all same length as the input).
struct PtReferenceOutput {
  std::vector<double> lpf;
  std::vector<double> hpf;
  std::vector<double> der;
  std::vector<double> sqr;
  std::vector<double> mwi;
};

/// Run the double-precision Pan-Tompkins filter chain on a raw signal
/// (normalized stage gains: LPF /36, HPF /32, DER /8, MWI /window).
[[nodiscard]] PtReferenceOutput pt_reference_chain(std::span<const double> x);

}  // namespace xbs::dsp
