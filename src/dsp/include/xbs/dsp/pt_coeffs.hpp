/// \file pt_coeffs.hpp
/// \brief Canonical Pan-Tompkins stage coefficients (integer FIR forms).
///
/// The paper implements the five Pan-Tompkins stages as FIR filters (its §5:
/// "the five stages (FIR filters)"), with the per-stage adder/multiplier
/// counts of §2 and §4.2. These tap sets reproduce those counts exactly:
///
///  - **LPF** (fc = 12 Hz): H(z) = (1 - z^-6)^2 / (1 - z^-1)^2 expanded to
///    its 11-tap triangular FIR [1,2,3,4,5,6,5,4,3,2,1] — a 10th-order,
///    11-tap filter with 11 multipliers and 10 adders, matching the paper's
///    "10 adders, 11 multipliers, and 10 registers". Gain 36, renormalized
///    by >> 5.
///  - **HPF** (fc = 5 Hz): all-pass minus moving average,
///    y[n] = 32 x[n-16] - sum_{i=0..31} x[n-i], i.e. 32 non-zero taps
///    (c_16 = +31, all others -1) — 32 multipliers and 31 adders, matching
///    §4.2. Gain 32, renormalized by >> 5.
///  - **Differentiator**: the classic 5-tap slope filter
///    y[n] = (1/8)(2 x[n] + x[n-1] - x[n-3] - 2 x[n-4]); coefficient
///    magnitudes 2 and 1, exactly as §4.2 notes.
///  - **Squarer**: y[n] = x[n]^2 (one 16x16 multiplier).
///  - **MWI**: 30-sample moving-window integral (150 ms at 200 Hz, the
///    window Pan & Tompkins recommend), adder-only; the hardware divide is
///    the shift-by-5 variant (gain 30/32).
///
/// Every consumer (double-precision reference, fixed-point pipeline, netlist
/// stage builders, cost model) derives from these arrays, so stage structure
/// can never diverge between the quality simulation and the energy model.
#pragma once

#include <array>

namespace xbs::dsp::pt {

inline constexpr std::array<int, 11> kLpfTaps = {1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1};
inline constexpr int kLpfShift = 5;  ///< output >> 5 (gain 36/32)

/// HPF taps: c_16 = +31, all other 32 taps are -1.
[[nodiscard]] constexpr std::array<int, 32> hpf_taps() noexcept {
  std::array<int, 32> taps{};
  for (auto& t : taps) t = -1;
  taps[16] = 31;
  return taps;
}
inline constexpr std::array<int, 32> kHpfTaps = hpf_taps();
inline constexpr int kHpfShift = 5;  ///< output >> 5 (gain 32/32)

inline constexpr std::array<int, 5> kDerTaps = {2, 1, 0, -1, -2};
inline constexpr int kDerShift = 3;  ///< output >> 3 (gain 8/8)

/// Squarer output scaling: with near-full-scale 16-bit inputs the squared
/// slope reaches 2^30; dropping two LSBs keeps the 30-term MWI sum inside the
/// 32-bit adder datapath in the worst case.
inline constexpr int kSqrShift = 2;

inline constexpr int kMwiWindow = 30;  ///< 150 ms at 200 Hz
inline constexpr int kMwiShift = 5;    ///< output >> 5 (gain 30/32)

/// Group delays in samples (used to align detections with the raw signal).
inline constexpr double kLpfDelay = 5.0;
inline constexpr double kHpfDelay = 15.5;
inline constexpr double kDerDelay = 2.0;
inline constexpr double kMwiDelay = (kMwiWindow - 1) / 2.0;  // 14.5

/// Total pipeline group delay (raw signal -> MWI output), in samples.
inline constexpr double kPipelineDelay = kLpfDelay + kHpfDelay + kDerDelay + kMwiDelay;

}  // namespace xbs::dsp::pt
