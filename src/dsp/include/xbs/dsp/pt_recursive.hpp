/// \file pt_recursive.hpp
/// \brief The original recursive (IIR) Pan & Tompkins 1985 filter forms.
///
/// Pan & Tompkins published the LPF and HPF as integer recursive filters:
///
///   LPF:  y[n] = 2 y[n-1] - y[n-2] + x[n] - 2 x[n-6] + x[n-12]
///         (H(z) = (1 - z^-6)^2 / (1 - z^-1)^2, gain 36, delay 5)
///   HPF:  y[n] = y[n-1] - x[n]/32 + x[n-16] - x[n-17] + x[n-32]/32
///         (all-pass minus moving average, gain 1 at the passband, delay 16)
///
/// The paper's hardware implements the mathematically equivalent FIR
/// expansions (pt_coeffs.hpp); these recursive forms are provided as an
/// independent reference — the equivalence of the two is asserted in the
/// test suite, which pins the FIR tap derivation to the original
/// publication.
///
/// Both filters are exposed as streaming classes with an explicit carry-over
/// State (the recursive taps: recent inputs plus output feedback), so they
/// compose with the chunked session API; the whole-record functions are
/// fresh-state one-chunk wrappers and remain bit-identical to the original
/// batch evaluation.
#pragma once

#include <array>
#include <span>
#include <vector>

namespace xbs::dsp {

/// Streaming recursive LPF, unnormalized integer gain 36 (like the FIR
/// accumulator).
class PtRecursiveLpf {
 public:
  /// Recursive-filter taps carried across chunks: the last 12 inputs (ring,
  /// `head` = next write slot = x[n-12]) and the last two outputs.
  struct State {
    std::array<double, 12> x{};
    std::size_t head = 0;
    double y1 = 0.0, y2 = 0.0;

    /// Back to the fresh-record state.
    void reset() noexcept { *this = State{}; }
  };

  [[nodiscard]] static State make_state() noexcept { return State{}; }
  [[nodiscard]] static double process(State& st, double x) noexcept;
  [[nodiscard]] static std::vector<double> process_chunk(State& st,
                                                         std::span<const double> x);
};

/// Streaming recursive HPF over the *normalized* LPF output, gain 32 (like
/// the FIR accumulator before its >>5).
class PtRecursiveHpf {
 public:
  /// The last 32 inputs (ring, `head` = next write slot = x[n-32]) and the
  /// last output.
  struct State {
    std::array<double, 32> x{};
    std::size_t head = 0;
    double y1 = 0.0;

    /// Back to the fresh-record state.
    void reset() noexcept { *this = State{}; }
  };

  [[nodiscard]] static State make_state() noexcept { return State{}; }
  [[nodiscard]] static double process(State& st, double x) noexcept;
  [[nodiscard]] static std::vector<double> process_chunk(State& st,
                                                         std::span<const double> x);
};

/// Whole-record recursive LPF (fresh-state wrapper over PtRecursiveLpf).
[[nodiscard]] std::vector<double> pt_recursive_lpf(std::span<const double> x);

/// Whole-record recursive HPF (fresh-state wrapper over PtRecursiveHpf).
[[nodiscard]] std::vector<double> pt_recursive_hpf(std::span<const double> x);

}  // namespace xbs::dsp
