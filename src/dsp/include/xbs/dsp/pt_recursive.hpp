/// \file pt_recursive.hpp
/// \brief The original recursive (IIR) Pan & Tompkins 1985 filter forms.
///
/// Pan & Tompkins published the LPF and HPF as integer recursive filters:
///
///   LPF:  y[n] = 2 y[n-1] - y[n-2] + x[n] - 2 x[n-6] + x[n-12]
///         (H(z) = (1 - z^-6)^2 / (1 - z^-1)^2, gain 36, delay 5)
///   HPF:  y[n] = y[n-1] - x[n]/32 + x[n-16] - x[n-17] + x[n-32]/32
///         (all-pass minus moving average, gain 1 at the passband, delay 16)
///
/// The paper's hardware implements the mathematically equivalent FIR
/// expansions (pt_coeffs.hpp); these recursive forms are provided as an
/// independent reference — the equivalence of the two is asserted in the
/// test suite, which pins the FIR tap derivation to the original
/// publication.
#pragma once

#include <span>
#include <vector>

namespace xbs::dsp {

/// Recursive LPF, unnormalized integer gain 36 (like the FIR accumulator).
[[nodiscard]] std::vector<double> pt_recursive_lpf(std::span<const double> x);

/// Recursive HPF over the *normalized* LPF output, gain 32 (like the FIR
/// accumulator before its >>5).
[[nodiscard]] std::vector<double> pt_recursive_hpf(std::span<const double> x);

}  // namespace xbs::dsp
