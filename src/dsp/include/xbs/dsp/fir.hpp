/// \file fir.hpp
/// \brief Double-precision FIR filtering (golden reference engine).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace xbs::dsp {

/// Direct-form FIR filter with a ring-buffer delay line.
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> taps);

  /// Push one sample, get the filtered output y[n] = sum_i c_i x[n-i].
  [[nodiscard]] double process(double x);

  /// Filter a whole signal as one tap-major block transform (state starts
  /// from zero; same length out; bit-identical to streaming via process()).
  [[nodiscard]] std::vector<double> filter(std::span<const double> x);

  /// Reset the delay line to zeros.
  void reset();

  [[nodiscard]] const std::vector<double>& taps() const noexcept { return taps_; }

  /// Group delay of a linear-phase (symmetric/antisymmetric) FIR in samples.
  [[nodiscard]] double group_delay() const noexcept {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

 private:
  std::vector<double> taps_;
  std::vector<double> delay_;
  std::size_t head_ = 0;
};

/// Complex frequency response H(e^{j 2 pi f / fs}) of a tap set.
[[nodiscard]] std::complex<double> frequency_response(std::span<const double> taps, double f_hz,
                                                      double fs_hz);

/// Magnitude response |H| at the given frequency.
[[nodiscard]] double magnitude_response(std::span<const double> taps, double f_hz, double fs_hz);

}  // namespace xbs::dsp
