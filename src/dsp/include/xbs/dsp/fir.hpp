/// \file fir.hpp
/// \brief Double-precision FIR filtering (golden reference engine).
#pragma once

#include <algorithm>
#include <complex>
#include <span>
#include <vector>

namespace xbs::dsp {

/// Carry-over state of a FirFilter: the delay-line ring. `head` is the next
/// write slot, which always holds the oldest retained sample.
struct FirFilterState {
  std::vector<double> delay;
  std::size_t head = 0;

  /// Zero the delay line in place (no reallocation): a fresh-record state.
  void reset() noexcept {
    std::fill(delay.begin(), delay.end(), 0.0);
    head = 0;
  }
};

/// Direct-form FIR filter with a ring-buffer delay line. The tap set is
/// immutable; streaming state is either held internally (single-consumer
/// convenience API) or passed explicitly (FirFilterState) so many concurrent
/// streams can share one filter object.
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> taps);

  /// A zeroed delay line sized for this filter.
  [[nodiscard]] FirFilterState make_state() const {
    return FirFilterState{std::vector<double>(taps_.size(), 0.0), 0};
  }

  /// Push one sample through \p st, get y[n] = sum_i c_i x[n-i].
  [[nodiscard]] double process(FirFilterState& st, double x) const;

  /// Resumable chunked transform: continues from \p st and carries it
  /// forward — bit-identical to streaming the chunk through process().
  [[nodiscard]] std::vector<double> filter_chunk(FirFilterState& st,
                                                 std::span<const double> x) const;

  // --- internal-state convenience view ---
  [[nodiscard]] double process(double x) { return process(state_, x); }

  /// Filter a whole signal as one tap-major chunk (state starts from zero;
  /// same length out; bit-identical to streaming via process()).
  [[nodiscard]] std::vector<double> filter(std::span<const double> x);

  /// Reset the internal delay line to zeros.
  void reset();

  [[nodiscard]] const std::vector<double>& taps() const noexcept { return taps_; }

  /// Group delay of a linear-phase (symmetric/antisymmetric) FIR in samples.
  [[nodiscard]] double group_delay() const noexcept {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

 private:
  std::vector<double> taps_;
  FirFilterState state_;  ///< internal state backing the convenience view
};

/// Complex frequency response H(e^{j 2 pi f / fs}) of a tap set.
[[nodiscard]] std::complex<double> frequency_response(std::span<const double> taps, double f_hz,
                                                      double fs_hz);

/// Magnitude response |H| at the given frequency.
[[nodiscard]] double magnitude_response(std::span<const double> taps, double f_hz, double fs_hz);

}  // namespace xbs::dsp
