#include "xbs/dsp/fir.hpp"

#include <numbers>
#include <stdexcept>

#include "xbs/common/ring.hpp"

namespace xbs::dsp {

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty tap set");
  state_ = make_state();
}

double FirFilter::process(FirFilterState& st, double x) const {
  st.delay[st.head] = x;
  double acc = 0.0;
  std::size_t idx = st.head;
  for (const double c : taps_) {
    acc += c * st.delay[idx];
    idx = (idx == 0) ? st.delay.size() - 1 : idx - 1;
  }
  st.head = (st.head + 1) % st.delay.size();
  return acc;
}

std::vector<double> FirFilter::filter_chunk(FirFilterState& st,
                                            std::span<const double> x) const {
  // Chunked transform: tap-major accumulation over a history-prefixed
  // contiguous buffer. Each output element receives its products in the same
  // tap order as the streaming path, so results are bit-identical to calling
  // process() per sample — without the per-sample ring-buffer walk.
  const std::size_t n = x.size();
  const std::size_t taps = taps_.size();
  std::vector<double> padded(n + taps - 1);
  ring_history_prefix(st.delay, st.head, padded);
  for (std::size_t i = 0; i < n; ++i) padded[taps - 1 + i] = x[i];
  std::vector<double> y(n, 0.0);
  for (std::size_t j = 0; j < taps; ++j) {
    const double c = taps_[j];
    const double* xs = padded.data() + (taps - 1 - j);
    for (std::size_t i = 0; i < n; ++i) y[i] += c * xs[i];
  }
  ring_carry(st.delay, st.head, x);
  return y;
}

std::vector<double> FirFilter::filter(std::span<const double> x) {
  reset();
  return filter_chunk(state_, x);
}

void FirFilter::reset() { state_.reset(); }

std::complex<double> frequency_response(std::span<const double> taps, double f_hz, double fs_hz) {
  const double w = 2.0 * std::numbers::pi * f_hz / fs_hz;
  std::complex<double> h{0.0, 0.0};
  for (std::size_t i = 0; i < taps.size(); ++i) {
    h += taps[i] * std::polar(1.0, -w * static_cast<double>(i));
  }
  return h;
}

double magnitude_response(std::span<const double> taps, double f_hz, double fs_hz) {
  return std::abs(frequency_response(taps, f_hz, fs_hz));
}

}  // namespace xbs::dsp
