#include "xbs/dsp/fir.hpp"

#include <numbers>
#include <stdexcept>

namespace xbs::dsp {

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty tap set");
  delay_.assign(taps_.size(), 0.0);
}

double FirFilter::process(double x) {
  delay_[head_] = x;
  double acc = 0.0;
  std::size_t idx = head_;
  for (const double c : taps_) {
    acc += c * delay_[idx];
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

std::vector<double> FirFilter::filter(std::span<const double> x) {
  // Block transform: tap-major accumulation over a zero-prefixed contiguous
  // buffer. Each output element receives its products in the same tap order
  // as the streaming path (including the zero-history products), so results
  // are bit-identical to calling process() per sample — without the
  // per-sample ring-buffer walk.
  const std::size_t n = x.size();
  const std::size_t taps = taps_.size();
  std::vector<double> padded(n + taps - 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) padded[taps - 1 + i] = x[i];
  std::vector<double> y(n, 0.0);
  for (std::size_t j = 0; j < taps; ++j) {
    const double c = taps_[j];
    const double* xs = padded.data() + (taps - 1 - j);
    for (std::size_t i = 0; i < n; ++i) y[i] += c * xs[i];
  }
  // Leave the filter as if the samples had been streamed.
  reset();
  for (std::size_t i = n > taps ? n - taps : 0; i < n; ++i) {
    delay_[head_] = x[i];
    head_ = (head_ + 1) % delay_.size();
  }
  return y;
}

void FirFilter::reset() {
  delay_.assign(taps_.size(), 0.0);
  head_ = 0;
}

std::complex<double> frequency_response(std::span<const double> taps, double f_hz, double fs_hz) {
  const double w = 2.0 * std::numbers::pi * f_hz / fs_hz;
  std::complex<double> h{0.0, 0.0};
  for (std::size_t i = 0; i < taps.size(); ++i) {
    h += taps[i] * std::polar(1.0, -w * static_cast<double>(i));
  }
  return h;
}

double magnitude_response(std::span<const double> taps, double f_hz, double fs_hz) {
  return std::abs(frequency_response(taps, f_hz, fs_hz));
}

}  // namespace xbs::dsp
