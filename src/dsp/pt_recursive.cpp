#include "xbs/dsp/pt_recursive.hpp"

namespace xbs::dsp {

// Each scalar step evaluates the published difference equation with the same
// term order as the original batch loops (and zeros where the history has
// not filled yet), so any chunking — including the whole-record wrappers —
// is bit-identical to the historical batch evaluation.

double PtRecursiveLpf::process(State& st, double x) noexcept {
  // y[n] = 2 y[n-1] - y[n-2] + x[n] - 2 x[n-6] + x[n-12]
  const double x6 = st.x[(st.head + 6) % 12];   // head - 6 == head + 6 (mod 12)
  const double x12 = st.x[st.head];
  const double y = 2.0 * st.y1 - st.y2 + x - 2.0 * x6 + x12;
  st.x[st.head] = x;
  st.head = (st.head + 1) % 12;
  st.y2 = st.y1;
  st.y1 = y;
  return y;
}

std::vector<double> PtRecursiveLpf::process_chunk(State& st, std::span<const double> x) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(st, x[i]);
  return y;
}

double PtRecursiveHpf::process(State& st, double x) noexcept {
  // y[n] = y[n-1] - x[n] + 32 x[n-16] - 32 x[n-17] + x[n-32], gain 32
  // (the integer form of allpass - moving average).
  const double x16 = st.x[(st.head + 16) % 32];
  const double x17 = st.x[(st.head + 15) % 32];  // head - 17 == head + 15 (mod 32)
  const double x32 = st.x[st.head];
  const double y = st.y1 - x + 32.0 * x16 - 32.0 * x17 + x32;
  st.x[st.head] = x;
  st.head = (st.head + 1) % 32;
  st.y1 = y;
  return y;
}

std::vector<double> PtRecursiveHpf::process_chunk(State& st, std::span<const double> x) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(st, x[i]);
  return y;
}

std::vector<double> pt_recursive_lpf(std::span<const double> x) {
  PtRecursiveLpf::State st;
  return PtRecursiveLpf::process_chunk(st, x);
}

std::vector<double> pt_recursive_hpf(std::span<const double> x) {
  PtRecursiveHpf::State st;
  return PtRecursiveHpf::process_chunk(st, x);
}

}  // namespace xbs::dsp
