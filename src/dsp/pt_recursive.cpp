#include "xbs/dsp/pt_recursive.hpp"

namespace xbs::dsp {

std::vector<double> pt_recursive_lpf(std::span<const double> x) {
  std::vector<double> y(x.size(), 0.0);
  auto at = [&](const std::vector<double>& v, std::ptrdiff_t i) -> double {
    return i >= 0 ? v[static_cast<std::size_t>(i)] : 0.0;
  };
  auto xin = [&](std::ptrdiff_t i) -> double {
    return i >= 0 ? x[static_cast<std::size_t>(i)] : 0.0;
  };
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(x.size()); ++n) {
    y[static_cast<std::size_t>(n)] = 2.0 * at(y, n - 1) - at(y, n - 2) + xin(n) -
                                     2.0 * xin(n - 6) + xin(n - 12);
  }
  return y;
}

std::vector<double> pt_recursive_hpf(std::span<const double> x) {
  // y[n] = y[n-1] - x[n] + 32 x[n-16] - 32 x[n-17] + x[n-32], gain 32
  // (the integer form of allpass - moving average).
  std::vector<double> y(x.size(), 0.0);
  auto at = [&](const std::vector<double>& v, std::ptrdiff_t i) -> double {
    return i >= 0 ? v[static_cast<std::size_t>(i)] : 0.0;
  };
  auto xin = [&](std::ptrdiff_t i) -> double {
    return i >= 0 ? x[static_cast<std::size_t>(i)] : 0.0;
  };
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(x.size()); ++n) {
    y[static_cast<std::size_t>(n)] = at(y, n - 1) - xin(n) + 32.0 * xin(n - 16) -
                                     32.0 * xin(n - 17) + xin(n - 32);
  }
  return y;
}

}  // namespace xbs::dsp
