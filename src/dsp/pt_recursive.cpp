#include "xbs/dsp/pt_recursive.hpp"

#include <algorithm>

namespace xbs::dsp {
namespace {

/// Shared shape of both recursive forms: a short zero-history prologue, then
/// a branch-free steady-state loop over the contiguous buffers. The term
/// order inside each expression matches the published difference equations,
/// so outputs are bit-identical to the naive guarded-index evaluation.
template <typename Prologue, typename Steady>
std::vector<double> run_recurrence(std::size_t n, std::size_t warmup, Prologue prologue,
                                   Steady steady) {
  std::vector<double> y(n, 0.0);
  const std::size_t split = std::min(n, warmup);
  for (std::size_t i = 0; i < split; ++i) y[i] = prologue(y, i);
  for (std::size_t i = split; i < n; ++i) y[i] = steady(y, i);
  return y;
}

}  // namespace

std::vector<double> pt_recursive_lpf(std::span<const double> x) {
  // y[n] = 2 y[n-1] - y[n-2] + x[n] - 2 x[n-6] + x[n-12]
  auto z = [](std::span<const double> v, std::size_t i, std::size_t back) -> double {
    return i >= back ? v[i - back] : 0.0;
  };
  return run_recurrence(
      x.size(), 12,
      [&](const std::vector<double>& y, std::size_t i) {
        return 2.0 * z(y, i, 1) - z(y, i, 2) + x[i] - 2.0 * z(x, i, 6) + z(x, i, 12);
      },
      [&](const std::vector<double>& y, std::size_t i) {
        return 2.0 * y[i - 1] - y[i - 2] + x[i] - 2.0 * x[i - 6] + x[i - 12];
      });
}

std::vector<double> pt_recursive_hpf(std::span<const double> x) {
  // y[n] = y[n-1] - x[n] + 32 x[n-16] - 32 x[n-17] + x[n-32], gain 32
  // (the integer form of allpass - moving average).
  auto z = [](std::span<const double> v, std::size_t i, std::size_t back) -> double {
    return i >= back ? v[i - back] : 0.0;
  };
  return run_recurrence(
      x.size(), 32,
      [&](const std::vector<double>& y, std::size_t i) {
        return z(y, i, 1) - x[i] + 32.0 * z(x, i, 16) - 32.0 * z(x, i, 17) + z(x, i, 32);
      },
      [&](const std::vector<double>& y, std::size_t i) {
        return y[i - 1] - x[i] + 32.0 * x[i - 16] - 32.0 * x[i - 17] + x[i - 32];
      });
}

}  // namespace xbs::dsp
