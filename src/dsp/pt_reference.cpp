#include "xbs/dsp/pt_reference.hpp"

#include "xbs/dsp/fir.hpp"
#include "xbs/dsp/pt_coeffs.hpp"

namespace xbs::dsp {
namespace {

std::vector<double> normalized_taps(std::span<const int> taps, double gain) {
  std::vector<double> out;
  out.reserve(taps.size());
  for (const int t : taps) out.push_back(static_cast<double>(t) / gain);
  return out;
}

}  // namespace

PtReferenceOutput pt_reference_chain(std::span<const double> x) {
  PtReferenceOutput out;
  FirFilter lpf(normalized_taps(pt::kLpfTaps, 36.0));
  FirFilter hpf(normalized_taps(pt::kHpfTaps, 32.0));
  FirFilter der(normalized_taps(pt::kDerTaps, 8.0));
  out.lpf = lpf.filter(x);
  out.hpf = hpf.filter(out.lpf);
  out.der = der.filter(out.hpf);
  out.sqr.reserve(x.size());
  for (const double v : out.der) out.sqr.push_back(v * v);
  out.mwi.assign(x.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < out.sqr.size(); ++i) {
    acc += out.sqr[i];
    if (i >= static_cast<std::size_t>(pt::kMwiWindow)) {
      acc -= out.sqr[i - static_cast<std::size_t>(pt::kMwiWindow)];
    }
    out.mwi[i] = acc / pt::kMwiWindow;
  }
  return out;
}

}  // namespace xbs::dsp
