#include "xbs/ecg/noise.hpp"

#include <cmath>
#include <numbers>

namespace xbs::ecg {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void add_baseline_wander(EcgRecord& rec, double amplitude_mv, Rng& rng) {
  const double f1 = rng.uniform(0.05, 0.15);
  const double f2 = rng.uniform(0.2, 0.35);
  const double p1 = rng.uniform(0.0, kTwoPi);
  const double p2 = rng.uniform(0.0, kTwoPi);
  double walk = 0.0;
  const double walk_sd = amplitude_mv * 0.02;
  for (std::size_t i = 0; i < rec.mv.size(); ++i) {
    const double t = static_cast<double>(i) / rec.fs_hz;
    walk = 0.999 * walk + rng.gaussian(0.0, walk_sd);
    rec.mv[i] += amplitude_mv * (0.7 * std::sin(kTwoPi * f1 * t + p1) +
                                 0.3 * std::sin(kTwoPi * f2 * t + p2)) +
                 walk;
  }
}

void add_powerline(EcgRecord& rec, double amplitude_mv, double mains_hz, Rng& rng) {
  const double phase = rng.uniform(0.0, kTwoPi);
  const double mod_f = rng.uniform(0.05, 0.2);
  const double mod_phase = rng.uniform(0.0, kTwoPi);
  for (std::size_t i = 0; i < rec.mv.size(); ++i) {
    const double t = static_cast<double>(i) / rec.fs_hz;
    const double am = 1.0 + 0.2 * std::sin(kTwoPi * mod_f * t + mod_phase);
    rec.mv[i] += amplitude_mv * am * std::sin(kTwoPi * mains_hz * t + phase);
  }
}

void add_emg_noise(EcgRecord& rec, double rms_mv, Rng& rng) {
  double w0 = 0.0, w1 = 0.0;
  for (double& v : rec.mv) {
    const double w = rng.gaussian(0.0, rms_mv * 1.7);  // ~unit rms after smoothing
    v += (w + w0 + w1) / 3.0;
    w1 = w0;
    w0 = w;
  }
}

void add_motion_artifacts(EcgRecord& rec, double amplitude_mv, double events_per_min, Rng& rng) {
  const double p_event = events_per_min / (60.0 * rec.fs_hz);
  double level = 0.0;
  for (double& v : rec.mv) {
    if (rng.uniform() < p_event) {
      level += rng.uniform(-amplitude_mv, amplitude_mv);
    }
    level *= std::exp(-1.0 / (0.5 * rec.fs_hz));  // ~0.5 s decay
    v += level;
  }
}

void add_standard_noise(EcgRecord& rec, Rng& rng) {
  add_baseline_wander(rec, 0.12, rng);
  add_powerline(rec, 0.03, 50.0, rng);
  add_emg_noise(rec, 0.015, rng);
  add_motion_artifacts(rec, 0.25, 0.5, rng);
}

}  // namespace xbs::ecg
