#include "xbs/ecg/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xbs::ecg {

void write_csv(std::ostream& os, const DigitizedRecord& rec) {
  os << "# name," << rec.name << "\n";
  os << "# fs_hz," << rec.fs_hz << "\n";
  os << "# gain_adu_per_mv," << rec.gain_adu_per_mv << "\n";
  os << "index,adu,is_r_peak\n";
  std::size_t next_peak = 0;
  for (std::size_t i = 0; i < rec.adu.size(); ++i) {
    bool is_peak = false;
    if (next_peak < rec.r_peaks.size() && rec.r_peaks[next_peak] == i) {
      is_peak = true;
      ++next_peak;
    }
    os << i << "," << rec.adu[i] << "," << (is_peak ? 1 : 0) << "\n";
  }
}

DigitizedRecord read_csv(std::istream& is) {
  DigitizedRecord rec;
  std::string line;
  bool header_done = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto comma = line.find(',');
      if (comma == std::string::npos) throw std::runtime_error("bad header line: " + line);
      const std::string key = line.substr(2, comma - 2);
      const std::string value = line.substr(comma + 1);
      if (key == "name") {
        rec.name = value;
      } else if (key == "fs_hz") {
        rec.fs_hz = std::stod(value);
      } else if (key == "gain_adu_per_mv") {
        rec.gain_adu_per_mv = std::stod(value);
      }
      continue;
    }
    if (!header_done) {  // the column-title row
      header_done = true;
      continue;
    }
    std::istringstream row(line);
    std::string idx_s, adu_s, peak_s;
    if (!std::getline(row, idx_s, ',') || !std::getline(row, adu_s, ',') ||
        !std::getline(row, peak_s)) {
      throw std::runtime_error("bad data row: " + line);
    }
    const auto idx = static_cast<std::size_t>(std::stoull(idx_s));
    if (idx != rec.adu.size()) throw std::runtime_error("non-contiguous sample index");
    rec.adu.push_back(std::stoi(adu_s));
    if (std::stoi(peak_s) != 0) rec.r_peaks.push_back(idx);
  }
  if (rec.adu.empty()) throw std::runtime_error("empty record");
  return rec;
}

void save_csv(const std::string& path, const DigitizedRecord& rec) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(os, rec);
}

DigitizedRecord load_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(is);
}

}  // namespace xbs::ecg
