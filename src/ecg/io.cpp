#include "xbs/ecg/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "xbs/ecg/parse.hpp"

namespace xbs::ecg {
namespace {

// Checked field parsing lives in xbs/ecg/parse.hpp, shared with the WFDB
// converter and the store loaders so all external-input paths reject
// malformed fields through one tested implementation. This module's error
// prefix is "read_csv".
constexpr const char* kCtx = "read_csv";

[[noreturn]] void fail_field(const char* what, const std::string& text) {
  ecg::fail_field(kCtx, what, text);
}

double parse_double_field(const std::string& s, const char* what) {
  return ecg::parse_double_field(s, kCtx, what);
}

i64 parse_i64_field(const std::string& s, const char* what) {
  return ecg::parse_i64_field(s, kCtx, what);
}

i32 parse_i32_field(const std::string& s, const char* what) {
  return ecg::parse_i32_field(s, kCtx, what);
}

}  // namespace

void write_csv(std::ostream& os, const DigitizedRecord& rec) {
  os << "# name," << rec.name << "\n";
  os << "# fs_hz," << rec.fs_hz << "\n";
  os << "# gain_adu_per_mv," << rec.gain_adu_per_mv << "\n";
  os << "index,adu,is_r_peak\n";
  std::size_t next_peak = 0;
  for (std::size_t i = 0; i < rec.adu.size(); ++i) {
    bool is_peak = false;
    if (next_peak < rec.r_peaks.size() && rec.r_peaks[next_peak] == i) {
      is_peak = true;
      ++next_peak;
    }
    os << i << "," << rec.adu[i] << "," << (is_peak ? 1 : 0) << "\n";
  }
}

DigitizedRecord read_csv(std::istream& is) {
  DigitizedRecord rec;
  std::string line;
  bool header_done = false;
  while (std::getline(is, line)) {
    // Tolerate CRLF records: getline leaves the '\r', which would otherwise
    // fail the strict full-consumption field parsing below.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Header lines are exactly "# key,value": a truncated "#", a missing
      // "# " prefix, or a comma inside the prefix is a malformed header, not
      // a row to silently skip.
      const auto comma = line.find(',');
      if (comma == std::string::npos || comma < 2 || line.compare(0, 2, "# ") != 0) {
        throw std::runtime_error("read_csv: bad header line: '" + line + "'");
      }
      const std::string key = line.substr(2, comma - 2);
      const std::string value = line.substr(comma + 1);
      if (key == "name") {
        rec.name = value;
      } else if (key == "fs_hz") {
        rec.fs_hz = parse_double_field(value, "bad fs_hz header value");
        if (!(rec.fs_hz > 0.0)) fail_field("non-positive fs_hz", value);
      } else if (key == "gain_adu_per_mv") {
        rec.gain_adu_per_mv = parse_double_field(value, "bad gain_adu_per_mv header value");
      }
      continue;
    }
    if (!header_done) {  // the column-title row
      if (line != "index,adu,is_r_peak") {
        throw std::runtime_error("read_csv: bad column-title row: '" + line + "'");
      }
      header_done = true;
      continue;
    }
    std::istringstream row(line);
    std::string idx_s, adu_s, peak_s;
    if (!std::getline(row, idx_s, ',') || !std::getline(row, adu_s, ',') ||
        !std::getline(row, peak_s) || peak_s.find(',') != std::string::npos) {
      throw std::runtime_error("read_csv: bad data row: '" + line + "'");
    }
    const i64 idx_v = parse_i64_field(idx_s, "bad sample index");
    if (idx_v < 0 || static_cast<std::size_t>(idx_v) != rec.adu.size()) {
      throw std::runtime_error("read_csv: non-contiguous sample index: '" + idx_s + "'");
    }
    const auto idx = static_cast<std::size_t>(idx_v);
    // adu is the 16/32-bit ADC word stream: anything a digitizer could never
    // emit (non-numeric, outside i32) is a corrupt record, not a zero.
    rec.adu.push_back(parse_i32_field(adu_s, "adu value out of i32 range or non-numeric"));
    if (parse_i32_field(peak_s, "bad is_r_peak flag") != 0) rec.r_peaks.push_back(idx);
  }
  if (rec.adu.empty()) throw std::runtime_error("empty record");
  return rec;
}

void save_csv(const std::string& path, const DigitizedRecord& rec) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(os, rec);
}

DigitizedRecord load_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(is);
}

}  // namespace xbs::ecg
