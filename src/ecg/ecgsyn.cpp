#include "xbs/ecg/ecgsyn.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace xbs::ecg {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

struct State {
  double x = 1.0;
  double y = 0.0;
  double z = 0.0;
};

struct Deriv {
  double dx = 0.0, dy = 0.0, dz = 0.0;
};

Deriv dynamics(const State& s, double omega, double z0, const EcgSynParams& p) {
  const double alpha = 1.0 - std::sqrt(s.x * s.x + s.y * s.y);
  Deriv d;
  d.dx = alpha * s.x - omega * s.y;
  d.dy = alpha * s.y + omega * s.x;
  const double theta = std::atan2(s.y, s.x);
  double dz = 0.0;
  for (int i = 0; i < 5; ++i) {
    double dth = std::fmod(theta - p.theta[i], kTwoPi);
    if (dth < -std::numbers::pi) dth += kTwoPi;
    if (dth > std::numbers::pi) dth -= kTwoPi;
    dz -= p.a[i] * dth * std::exp(-0.5 * (dth * dth) / (p.b[i] * p.b[i]));
  }
  d.dz = dz - (s.z - z0);
  return d;
}

State rk4_step(const State& s, double dt, double omega, double z0, const EcgSynParams& p) {
  const Deriv k1 = dynamics(s, omega, z0, p);
  const State s2{s.x + 0.5 * dt * k1.dx, s.y + 0.5 * dt * k1.dy, s.z + 0.5 * dt * k1.dz};
  const Deriv k2 = dynamics(s2, omega, z0, p);
  const State s3{s.x + 0.5 * dt * k2.dx, s.y + 0.5 * dt * k2.dy, s.z + 0.5 * dt * k2.dz};
  const Deriv k3 = dynamics(s3, omega, z0, p);
  const State s4{s.x + dt * k3.dx, s.y + dt * k3.dy, s.z + dt * k3.dz};
  const Deriv k4 = dynamics(s4, omega, z0, p);
  return State{
      s.x + dt / 6.0 * (k1.dx + 2.0 * k2.dx + 2.0 * k3.dx + k4.dx),
      s.y + dt / 6.0 * (k1.dy + 2.0 * k2.dy + 2.0 * k3.dy + k4.dy),
      s.z + dt / 6.0 * (k1.dz + 2.0 * k2.dz + 2.0 * k3.dz + k4.dz),
  };
}

/// Spectrally synthesized RR-interval modulation rr(t) (zero-mean), using the
/// bimodal LF/HF heart-rate-variability spectrum with random phases.
class RrTachogram {
 public:
  RrTachogram(const EcgSynParams& p, double duration_s, Rng& rng) {
    const double total_var = p.hrv_sd_s * p.hrv_sd_s;
    const double lf_var = total_var * p.lf_hf_ratio / (1.0 + p.lf_hf_ratio);
    const double hf_var = total_var - lf_var;
    const double df = 1.0 / std::max(duration_s, 64.0);
    const double c_lf = 0.01, c_hf = 0.01;
    for (double f = df; f <= 0.45; f += df) {
      const double s_lf =
          lf_var / std::sqrt(kTwoPi * c_lf * c_lf) *
          std::exp(-0.5 * (f - p.f_lf_hz) * (f - p.f_lf_hz) / (c_lf * c_lf));
      const double s_hf =
          hf_var / std::sqrt(kTwoPi * c_hf * c_hf) *
          std::exp(-0.5 * (f - p.f_hf_hz) * (f - p.f_hf_hz) / (c_hf * c_hf));
      const double s = s_lf + s_hf;
      if (s < 1e-12) continue;
      comps_.push_back(Component{f, std::sqrt(2.0 * s * df), rng.uniform(0.0, kTwoPi)});
    }
  }

  [[nodiscard]] double modulation(double t) const noexcept {
    double v = 0.0;
    for (const auto& c : comps_) v += c.amp * std::cos(kTwoPi * c.f * t + c.phase);
    return v;
  }

 private:
  struct Component {
    double f, amp, phase;
  };
  std::vector<Component> comps_;
};

}  // namespace

EcgRecord generate_ecgsyn(const EcgSynParams& p, std::size_t n_samples, u64 seed) {
  EcgRecord rec;
  rec.fs_hz = p.fs_hz;
  Rng rng(seed);

  const double duration_s = static_cast<double>(n_samples) / p.fs_hz;
  const RrTachogram tachogram(p, duration_s, rng);
  const double rr_mean = 60.0 / p.hr_bpm;

  const double dt = 1.0 / p.fs_internal_hz;
  const auto decim = static_cast<std::size_t>(std::llround(p.fs_internal_hz / p.fs_hz));
  const std::size_t n_steps = n_samples * decim;

  State s;
  std::vector<double> raw;
  raw.reserve(n_samples);
  std::vector<std::size_t> r_candidates;
  double prev_theta = std::atan2(s.y, s.x);
  // The published ECGSYN holds the RR interval constant within each beat
  // (staircase tachogram): a continuously-modulated omega integrates the
  // antisymmetric event kernels asymmetrically and injects a spurious
  // respiratory-rate baseline oscillation.
  double current_rr = std::max(0.3, rr_mean + tachogram.modulation(0.0));
  // Discard one second of transient before recording.
  const auto warmup = static_cast<std::size_t>(p.fs_internal_hz);
  for (std::size_t step = 0; step < n_steps + warmup; ++step) {
    const double t = static_cast<double>(step) * dt;
    const double omega = kTwoPi / current_rr;
    const double z0 =
        p.baseline_coupling_z * std::sin(kTwoPi * p.f_hf_hz * t);
    s = rk4_step(s, dt, omega, z0, p);
    const double theta = std::atan2(s.y, s.x);
    // Phase wrap (+pi -> -pi): a new beat begins; resample its RR interval.
    if (theta < prev_theta - std::numbers::pi) {
      current_rr = std::max(0.3, rr_mean + tachogram.modulation(t));
    }
    if (step >= warmup) {
      const std::size_t rec_step = step - warmup;
      // Upward crossing of the R angle (theta_R = 0).
      if (prev_theta < 0.0 && theta >= 0.0 && (theta - prev_theta) < std::numbers::pi) {
        const std::size_t out_idx = rec_step / decim;
        if (out_idx < n_samples) r_candidates.push_back(out_idx);
      }
      if (rec_step % decim == 0) raw.push_back(s.z);
    }
    prev_theta = theta;
  }
  raw.resize(n_samples, 0.0);

  // Rescale so the R amplitude matches target_r_mv and the median sits at 0.
  std::vector<double> sorted = raw;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2),
                   sorted.end());
  const double med = sorted[sorted.size() / 2];
  double peak = 1e-9;
  for (const double v : raw) peak = std::max(peak, v - med);
  const double scale = p.target_r_mv / peak;
  rec.mv.reserve(n_samples);
  for (const double v : raw) rec.mv.push_back((v - med) * scale);

  // Refine R annotations to the local maximum within +/- 40 ms.
  const auto halfwin = static_cast<std::ptrdiff_t>(std::llround(0.04 * p.fs_hz));
  for (const std::size_t c : r_candidates) {
    std::ptrdiff_t best = static_cast<std::ptrdiff_t>(c);
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(c) - halfwin;
         i <= static_cast<std::ptrdiff_t>(c) + halfwin; ++i) {
      if (i < 0 || i >= static_cast<std::ptrdiff_t>(n_samples)) continue;
      if (rec.mv[static_cast<std::size_t>(i)] > rec.mv[static_cast<std::size_t>(best)]) best = i;
    }
    rec.r_peaks.push_back(static_cast<std::size_t>(best));
  }
  return rec;
}

}  // namespace xbs::ecg
