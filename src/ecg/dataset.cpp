#include "xbs/ecg/dataset.hpp"

#include <stdexcept>
#include <string>

#include "xbs/common/rng.hpp"
#include "xbs/ecg/adc.hpp"
#include "xbs/ecg/noise.hpp"
#include "xbs/ecg/template_gen.hpp"

namespace xbs::ecg {

EcgRecord nsrdb_like_record(int index, std::size_t n_samples) {
  if (index < 0 || index >= kNsrdbSubjects) {
    throw std::invalid_argument("nsrdb_like_record: index must be in [0, 18)");
  }
  const u64 seed = 0xB105F00Dull + static_cast<u64>(index) * 7919u;
  Rng param_rng(seed);
  TemplateEcgParams p;
  p.hr_bpm = param_rng.uniform(55.0, 88.0);
  p.hrv_rel_sd = param_rng.uniform(0.02, 0.05);
  p.rsa_rel = param_rng.uniform(0.015, 0.035);
  p.amplitude_scale = param_rng.uniform(0.85, 1.2);
  p.t.amplitude_mv = param_rng.uniform(0.22, 0.38);
  p.p.amplitude_mv = param_rng.uniform(0.08, 0.16);

  EcgRecord rec = generate_template_ecg(p, n_samples, seed ^ 0xECDA7A5Eull);
  rec.name = "nsr" + std::to_string(16265 + index * 7);  // NSRDB-style record ids
  Rng noise_rng(seed ^ 0x9015EEDull);
  add_standard_noise(rec, noise_rng);
  return rec;
}

DigitizedRecord nsrdb_like_digitized(int index, std::size_t n_samples) {
  const AdcFrontEnd adc;
  return adc.digitize(nsrdb_like_record(index, n_samples));
}

std::vector<DigitizedRecord> nsrdb_like_dataset(int n_records, std::size_t n_samples) {
  std::vector<DigitizedRecord> out;
  out.reserve(static_cast<std::size_t>(n_records));
  for (int i = 0; i < n_records; ++i) out.push_back(nsrdb_like_digitized(i, n_samples));
  return out;
}

}  // namespace xbs::ecg
