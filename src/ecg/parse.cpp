/// \file parse.cpp
/// \brief Shared checked field parsers (see parse.hpp for the contract).
#include "xbs/ecg/parse.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace xbs::ecg {

void fail_field(const char* ctx, const char* what, const std::string& text) {
  throw std::runtime_error(std::string(ctx) + ": " + what + ": '" + text + "'");
}

double parse_double_field(const std::string& s, const char* ctx, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) fail_field(ctx, what, s);
  return v;
}

i64 parse_i64_field(const std::string& s, const char* ctx, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) fail_field(ctx, what, s);
  return v;
}

i32 parse_i32_field(const std::string& s, const char* ctx, const char* what) {
  const i64 v = parse_i64_field(s, ctx, what);
  if (v < std::numeric_limits<i32>::min() || v > std::numeric_limits<i32>::max()) {
    fail_field(ctx, what, s);
  }
  return static_cast<i32>(v);
}

}  // namespace xbs::ecg
