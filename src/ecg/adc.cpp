#include "xbs/ecg/adc.hpp"

#include <cmath>

#include "xbs/common/fixed.hpp"

namespace xbs::ecg {

DigitizedRecord AdcFrontEnd::digitize(const EcgRecord& rec) const {
  DigitizedRecord out;
  out.name = rec.name;
  out.fs_hz = rec.fs_hz;
  out.gain_adu_per_mv = gain_adu_per_mv;
  out.r_peaks = rec.r_peaks;
  out.adu.reserve(rec.mv.size());
  for (const double v : rec.mv) {
    const double scaled = std::nearbyint(v * gain_adu_per_mv);
    out.adu.push_back(static_cast<i32>(saturate_to_bits(static_cast<i64>(scaled), bits)));
  }
  return out;
}

double EcgRecord::mean_hr_bpm() const noexcept {
  if (r_peaks.size() < 2) return 0.0;
  const double beats = static_cast<double>(r_peaks.size() - 1);
  const double span_s =
      static_cast<double>(r_peaks.back() - r_peaks.front()) / fs_hz;
  return span_s > 0.0 ? 60.0 * beats / span_s : 0.0;
}

}  // namespace xbs::ecg
