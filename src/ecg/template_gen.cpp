#include "xbs/ecg/template_gen.hpp"

#include <cmath>
#include <numbers>

namespace xbs::ecg {
namespace {

/// Add one Gaussian wave centred at time \p center_s into the signal.
void add_wave(std::vector<double>& mv, double fs, double center_s, const Wave& w,
              double scale) {
  if (w.amplitude_mv == 0.0) return;
  const double half_support = 4.0 * w.width_s;
  const auto first =
      static_cast<std::ptrdiff_t>(std::floor((center_s + w.center_s - half_support) * fs));
  const auto last =
      static_cast<std::ptrdiff_t>(std::ceil((center_s + w.center_s + half_support) * fs));
  for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(first, 0);
       i <= last && i < static_cast<std::ptrdiff_t>(mv.size()); ++i) {
    const double t = static_cast<double>(i) / fs - (center_s + w.center_s);
    mv[static_cast<std::size_t>(i)] +=
        scale * w.amplitude_mv * std::exp(-0.5 * (t / w.width_s) * (t / w.width_s));
  }
}

}  // namespace

EcgRecord generate_template_ecg(const TemplateEcgParams& p, std::size_t n_samples, u64 seed) {
  EcgRecord rec;
  rec.fs_hz = p.fs_hz;
  rec.mv.assign(n_samples, 0.0);
  Rng rng(seed);

  const double duration_s = static_cast<double>(n_samples) / p.fs_hz;
  const double rr_mean = 60.0 / p.hr_bpm;

  // RR series: AR(1) fluctuation + respiratory modulation.
  double ar = 0.0;
  const double rho = 0.9;
  const double ar_sd = p.hrv_rel_sd * std::sqrt(1.0 - rho * rho);
  // First beat after the filter warm-up transient (LPF+HPF startup spans
  // ~43 samples); starting at 1 s keeps every annotated beat detectable.
  double t_beat = 1.0;
  // Stop placing beats 300 ms before the record ends: a QRS closer to the
  // edge than the pipeline group delay is undetectable by construction (its
  // filtered energy lies beyond the last sample), so it would only inject a
  // boundary artifact into every accuracy measurement.
  while (t_beat < duration_s - 0.3) {
    ar = rho * ar + rng.gaussian(0.0, ar_sd);
    const double rsa = p.rsa_rel * std::sin(2.0 * std::numbers::pi * p.resp_rate_hz * t_beat);
    const bool ectopic = rng.uniform() < p.ectopic_probability;

    const double r_center = t_beat;
    const auto r_idx = static_cast<std::ptrdiff_t>(std::llround(r_center * p.fs_hz));
    if (r_idx >= 0 && r_idx < static_cast<std::ptrdiff_t>(n_samples)) {
      rec.r_peaks.push_back(static_cast<std::size_t>(r_idx));
    }
    if (!ectopic) {
      const double s = p.amplitude_scale;
      add_wave(rec.mv, p.fs_hz, r_center, p.p, s);
      add_wave(rec.mv, p.fs_hz, r_center, p.q, s);
      add_wave(rec.mv, p.fs_hz, r_center, p.r, s);
      add_wave(rec.mv, p.fs_hz, r_center, p.s, s);
      add_wave(rec.mv, p.fs_hz, r_center, p.t, s);
    } else {
      // PVC-like ectopic: premature, wide QRS, tall R, inverted T, no P.
      const double s = p.amplitude_scale;
      add_wave(rec.mv, p.fs_hz, r_center, Wave{1.45 * p.r.amplitude_mv, 0.0, 2.6 * p.r.width_s},
               s);
      add_wave(rec.mv, p.fs_hz, r_center,
               Wave{-0.5 * p.s.amplitude_mv - 0.35, 0.07, 2.0 * p.s.width_s}, s);
      add_wave(rec.mv, p.fs_hz, r_center, Wave{-0.8 * p.t.amplitude_mv, 0.30, p.t.width_s}, s);
    }

    double rr = rr_mean * (1.0 + ar + rsa);
    if (ectopic) rr *= 0.72;  // premature coupling followed by pause
    rr = std::max(rr, 0.3);
    t_beat += rr;
  }
  return rec;
}

}  // namespace xbs::ecg
