/// \file template_gen.hpp
/// \brief Template-based synthetic ECG generator (Gaussian PQRST kernels).
///
/// Beats are placed along an RR-interval series with physiological
/// variability (autocorrelated heart-rate fluctuation plus respiratory sinus
/// arrhythmia); each beat is a sum of five Gaussian waves (P, Q, R, S, T)
/// with per-record morphology scaling. The generator is fast, fully
/// deterministic under a seed, and yields exact R-peak annotations — the
/// workload substrate for all paper experiments (DESIGN.md §1).
#pragma once

#include "xbs/common/rng.hpp"
#include "xbs/ecg/record.hpp"

namespace xbs::ecg {

/// One Gaussian wave component of the beat template.
struct Wave {
  double amplitude_mv = 0.0;  ///< signed peak amplitude
  double center_s = 0.0;      ///< offset from the R peak
  double width_s = 0.01;      ///< Gaussian sigma
};

/// Generator parameters (defaults give a normal-sinus-rhythm adult ECG).
struct TemplateEcgParams {
  double fs_hz = 200.0;
  double hr_bpm = 70.0;          ///< mean heart rate
  double hrv_rel_sd = 0.03;      ///< autocorrelated RR fluctuation (relative)
  double rsa_rel = 0.025;        ///< respiratory sinus arrhythmia depth
  double resp_rate_hz = 0.25;    ///< respiration frequency
  double amplitude_scale = 1.0;  ///< global morphology scale
  double ectopic_probability = 0.0;  ///< chance a beat is a PVC-like ectopic
  Wave p{0.12, -0.18, 0.025};
  Wave q{-0.14, -0.028, 0.010};
  Wave r{1.10, 0.0, 0.011};
  Wave s{-0.22, 0.030, 0.012};
  Wave t{0.30, 0.24, 0.055};
};

/// Generate \p n_samples of synthetic ECG. Ectopic (PVC-like) beats, if
/// enabled, are premature, wide, high-amplitude and P-wave-free; their R
/// peaks are still annotated (they are true heartbeats).
[[nodiscard]] EcgRecord generate_template_ecg(const TemplateEcgParams& params,
                                              std::size_t n_samples, u64 seed);

}  // namespace xbs::ecg
