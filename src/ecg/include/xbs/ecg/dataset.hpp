/// \file dataset.hpp
/// \brief Deterministic NSRDB-like dataset (MIT-BIH NSRDB substitute).
///
/// The paper evaluates on recordings from the MIT-BIH Normal Sinus Rhythm
/// Database (18 subjects, PhysioNet). This module generates a seeded
/// stand-in: 18 synthetic normal-sinus-rhythm records with per-record heart
/// rate, morphology and contamination variation, digitized by the 200 Hz /
/// 16-bit front-end of §3. Ground-truth R annotations come from the
/// generator. See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <vector>

#include "xbs/ecg/record.hpp"

namespace xbs::ecg {

/// Number of subjects in the MIT-BIH NSRDB.
inline constexpr int kNsrdbSubjects = 18;

/// The paper's simulation unit: one recording of 20,000 samples (§6.1).
inline constexpr std::size_t kPaperRecordSamples = 20000;

/// Generate record \p index (0..17) of the NSRDB-like dataset in the analog
/// (mV) domain. Deterministic in (index, n_samples).
[[nodiscard]] EcgRecord nsrdb_like_record(int index, std::size_t n_samples = kPaperRecordSamples);

/// Generate and digitize record \p index.
[[nodiscard]] DigitizedRecord nsrdb_like_digitized(
    int index, std::size_t n_samples = kPaperRecordSamples);

/// Generate the first \p n_records digitized records.
[[nodiscard]] std::vector<DigitizedRecord> nsrdb_like_dataset(
    int n_records = kNsrdbSubjects, std::size_t n_samples = kPaperRecordSamples);

}  // namespace xbs::ecg
