/// \file parse.hpp
/// \brief Checked numeric field parsing for untrusted record input.
///
/// One tested rejection path shared by every loader that faces external
/// bytes: the CSV reader (io.cpp), the WFDB converter (xbs::store) and the
/// store tool. std::stod/stoi are the wrong tool for untrusted input: they
/// throw std::invalid_argument/out_of_range instead of the runtime_error the
/// loaders' contracts promise, accept trailing garbage ("12abc" parses as
/// 12), and stoi's int range silently depends on the platform. These helpers
/// demand full consumption, reject ERANGE, and fail with a runtime_error
/// naming the caller's context and the offending text.
#pragma once

#include <string>

#include "xbs/common/types.hpp"

namespace xbs::ecg {

/// Throw the canonical malformed-field error: "<ctx>: <what>: '<text>'".
[[noreturn]] void fail_field(const char* ctx, const char* what, const std::string& text);

/// Parse a double; the whole string must be consumed and in range.
double parse_double_field(const std::string& s, const char* ctx, const char* what);

/// Parse a base-10 signed 64-bit integer; full consumption, no overflow.
i64 parse_i64_field(const std::string& s, const char* ctx, const char* what);

/// parse_i64_field plus an explicit i32 range check (platform-independent).
i32 parse_i32_field(const std::string& s, const char* ctx, const char* what);

}  // namespace xbs::ecg
