/// \file ecgsyn.hpp
/// \brief Dynamical-model ECG generator (McSharry et al., IEEE TBME 2003).
///
/// Implements the ECGSYN coupled-ODE model: a trajectory circling the unit
/// limit cycle in the (x, y) plane, with the z (voltage) equation pulled
/// toward Gaussian event kernels at the P, Q, R, S and T angles. Angular
/// velocity follows an RR-interval tachogram synthesized from the standard
/// bimodal (Mayer-wave + respiratory) HRV spectrum. Integration is RK4 at an
/// internal rate, decimated to the output rate. R peaks are annotated at the
/// upward zero-crossings of the phase through the R event angle, refined to
/// the local signal maximum.
#pragma once

#include "xbs/common/rng.hpp"
#include "xbs/ecg/record.hpp"

namespace xbs::ecg {

/// Parameters of the dynamical model (defaults follow the published model).
struct EcgSynParams {
  double fs_hz = 200.0;            ///< output sampling rate
  double fs_internal_hz = 1000.0;  ///< integration rate
  double hr_bpm = 65.0;            ///< mean heart rate
  double hrv_sd_s = 0.035;         ///< RR standard deviation
  double lf_hf_ratio = 0.5;        ///< Mayer-wave vs respiratory power ratio
  double f_lf_hz = 0.1;            ///< low-frequency (Mayer) peak
  double f_hf_hz = 0.25;           ///< high-frequency (respiratory) peak
  /// Respiratory baseline coupling amplitude, in model z-units *before* the
  /// output rescaling (the intrinsic R height in z-units is ~0.1, so 0.004
  /// yields a ~4 % baseline oscillation relative to the R wave).
  double baseline_coupling_z = 0.004;
  // Event kernels: angles [rad], magnitudes, widths [rad].
  double theta[5] = {-1.0471975512, -0.2617993878, 0.0, 0.2617993878, 1.5707963268};
  double a[5] = {1.2, -5.0, 30.0, -7.5, 0.75};
  double b[5] = {0.25, 0.1, 0.1, 0.1, 0.4};
  double target_r_mv = 1.1;  ///< output is rescaled so the R peak ~ this value
};

/// Generate \p n_samples of dynamical-model ECG.
[[nodiscard]] EcgRecord generate_ecgsyn(const EcgSynParams& params, std::size_t n_samples,
                                        u64 seed);

}  // namespace xbs::ecg
