/// \file io.hpp
/// \brief CSV persistence for digitized records and annotations, so
/// workloads can be exported to / imported from other toolchains (e.g. to
/// compare against a PhysioNet record converted offline).
#pragma once

#include <iosfwd>
#include <string>

#include "xbs/ecg/record.hpp"

namespace xbs::ecg {

/// Write a digitized record as CSV: a header block (name, fs, gain) followed
/// by one `index,adu,is_r_peak` row per sample.
void write_csv(std::ostream& os, const DigitizedRecord& rec);

/// Parse a record written by write_csv. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] DigitizedRecord read_csv(std::istream& is);

/// File-path conveniences.
void save_csv(const std::string& path, const DigitizedRecord& rec);
[[nodiscard]] DigitizedRecord load_csv(const std::string& path);

}  // namespace xbs::ecg
