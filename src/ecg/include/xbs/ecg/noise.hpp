/// \file noise.hpp
/// \brief ECG contamination models: the in-band and out-of-band noise the
/// Pan-Tompkins pre-processing stages exist to remove.
#pragma once

#include "xbs/common/rng.hpp"
#include "xbs/ecg/record.hpp"

namespace xbs::ecg {

/// Low-frequency baseline wander (respiration / electrode drift): a sum of
/// slow sinusoids (0.05-0.4 Hz) plus a bounded random walk.
void add_baseline_wander(EcgRecord& rec, double amplitude_mv, Rng& rng);

/// Mains interference at \p mains_hz (50 or 60 Hz) with slow amplitude
/// modulation.
void add_powerline(EcgRecord& rec, double amplitude_mv, double mains_hz, Rng& rng);

/// Muscle (EMG) noise: Gaussian noise smoothed with a 3-tap average, giving a
/// broadband high-frequency floor.
void add_emg_noise(EcgRecord& rec, double rms_mv, Rng& rng);

/// Electrode-motion artifacts: sparse exponential-decay steps, the kind of
/// transient that can fool a naive detector.
void add_motion_artifacts(EcgRecord& rec, double amplitude_mv, double events_per_min, Rng& rng);

/// Standard mild contamination used by the NSRDB-like dataset.
void add_standard_noise(EcgRecord& rec, Rng& rng);

}  // namespace xbs::ecg
