/// \file adc.hpp
/// \brief 16-bit / 200 Hz acquisition front-end model (paper §3).
#pragma once

#include "xbs/ecg/record.hpp"

namespace xbs::ecg {

/// ADC front-end: maps millivolts to signed counts with saturation.
///
/// The paper samples with a 16-bit converter (§3); the default gain maps a
/// +/-1.8 mV analog window onto the full signed 16-bit range (a typical
/// wearable analog front-end), so a ~1.1 mV R peak lands around 20k counts.
/// Near-full-scale occupancy is what positions the approximation-vs-quality
/// cliffs where the paper sees them: stages tolerate approximated LSBs
/// precisely because the signal lives in the upper bits (see DESIGN.md §1).
struct AdcFrontEnd {
  double gain_adu_per_mv = 18000.0;
  int bits = 16;

  [[nodiscard]] DigitizedRecord digitize(const EcgRecord& rec) const;
};

}  // namespace xbs::ecg
