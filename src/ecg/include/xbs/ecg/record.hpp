/// \file record.hpp
/// \brief ECG record types with exact R-peak ground truth.
#pragma once

#include <string>
#include <vector>

#include "xbs/common/types.hpp"

namespace xbs::ecg {

/// An analog-domain ECG recording (millivolts) with beat annotations.
struct EcgRecord {
  std::string name;
  double fs_hz = 200.0;
  std::vector<double> mv;            ///< signal in millivolts
  std::vector<std::size_t> r_peaks;  ///< sample indices of true R peaks

  [[nodiscard]] double duration_s() const noexcept {
    return static_cast<double>(mv.size()) / fs_hz;
  }
  /// Mean heart rate over the record, in beats per minute.
  [[nodiscard]] double mean_hr_bpm() const noexcept;
};

/// A digitized recording (ADC output counts) with the same annotations.
struct DigitizedRecord {
  std::string name;
  double fs_hz = 200.0;
  double gain_adu_per_mv = 18000.0;
  std::vector<i32> adu;              ///< signed ADC counts
  std::vector<std::size_t> r_peaks;  ///< sample indices of true R peaks
};

}  // namespace xbs::ecg
