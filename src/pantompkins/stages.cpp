#include "xbs/pantompkins/stages.hpp"

#include <stdexcept>

#include "xbs/common/fixed.hpp"
#include "xbs/dsp/pt_coeffs.hpp"

namespace xbs::pantompkins {

const StageInventory& stage_inventory(Stage s) noexcept {
  static const std::array<StageInventory, 5> inv = {{
      {Stage::Lpf, "LPF", 10, 11, 10, 16},
      {Stage::Hpf, "HPF", 31, 32, 31, 16},
      {Stage::Der, "DER", 3, 4, 4, 4},
      {Stage::Sqr, "SQR", 0, 1, 0, 8},
      {Stage::Mwi, "MWI", dsp::pt::kMwiWindow - 1, 0, dsp::pt::kMwiWindow - 1, 16},
  }};
  return inv[static_cast<std::size_t>(s)];
}

FirStage::FirStage(std::span<const int> taps, int out_shift, arith::ArithmeticUnit& unit)
    : out_shift_(out_shift), unit_(&unit) {
  if (taps.empty()) throw std::invalid_argument("FirStage: empty taps");
  taps_.assign(taps.begin(), taps.end());
  delay_.assign(taps_.size(), 0);
}

void FirStage::reset() {
  delay_.assign(taps_.size(), 0);
  head_ = 0;
}

i32 FirStage::process(i32 x) {
  delay_[head_] = x;
  // Products in tap order (zero taps skipped), accumulated through a chain of
  // 32-bit adds — the same structure the netlist stage builder emits.
  i64 acc = 0;
  bool first = true;
  std::size_t idx = head_;
  for (const i32 c : taps_) {
    if (c != 0) {
      const i64 p = unit_->mul(c, delay_[idx]);
      if (first) {
        acc = p;
        first = false;
      } else {
        acc = unit_->add(acc, p);
      }
    }
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  // Normalization shift (wiring) and 16-bit inter-stage register.
  return static_cast<i32>(saturate_to_bits(acc >> out_shift_, 16));
}

i32 SquarerStage::process(i32 x) {
  const i64 clamped = saturate_to_bits(x, 16);
  return static_cast<i32>(unit_->mul(clamped, clamped) >> out_shift_);
}

MwiStage::MwiStage(int window, int out_shift, arith::ArithmeticUnit& unit)
    : out_shift_(out_shift), unit_(&unit) {
  if (window < 2) throw std::invalid_argument("MwiStage: window must be >= 2");
  window_buf_.assign(static_cast<std::size_t>(window), 0);
}

void MwiStage::reset() {
  window_buf_.assign(window_buf_.size(), 0);
  head_ = 0;
}

i32 MwiStage::process(i32 x) {
  window_buf_[head_] = x;
  head_ = (head_ + 1) % window_buf_.size();
  // Balanced feed-forward adder tree over the window contents, oldest first;
  // pairwise reduction order mirrors netlist::build_mwi_stage.
  std::vector<i64> terms;
  terms.reserve(window_buf_.size());
  std::size_t idx = head_;  // oldest element
  for (std::size_t i = 0; i < window_buf_.size(); ++i) {
    terms.push_back(window_buf_[idx]);
    idx = (idx + 1) % window_buf_.size();
  }
  while (terms.size() > 1) {
    std::vector<i64> next;
    next.reserve(terms.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(unit_->add(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return static_cast<i32>(saturate_i32(terms[0] >> out_shift_));
}

}  // namespace xbs::pantompkins
