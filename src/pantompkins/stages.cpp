#include "xbs/pantompkins/stages.hpp"

#include <stdexcept>

#include "xbs/common/fixed.hpp"
#include "xbs/common/ring.hpp"
#include "xbs/dsp/pt_coeffs.hpp"

namespace xbs::pantompkins {

const StageInventory& stage_inventory(Stage s) noexcept {
  static const std::array<StageInventory, 5> inv = {{
      {Stage::Lpf, "LPF", 10, 11, 10, 16},
      {Stage::Hpf, "HPF", 31, 32, 31, 16},
      {Stage::Der, "DER", 3, 4, 4, 4},
      {Stage::Sqr, "SQR", 0, 1, 0, 8},
      {Stage::Mwi, "MWI", dsp::pt::kMwiWindow - 1, 0, dsp::pt::kMwiWindow - 1, 16},
  }};
  return inv[static_cast<std::size_t>(s)];
}

// ------------------------------------------------------------------- FirStage

FirStage::FirStage(std::span<const int> taps, int out_shift, arith::Kernel& kernel)
    : out_shift_(out_shift), kernel_(&kernel) {
  if (taps.empty()) throw std::invalid_argument("FirStage: empty taps");
  taps_.assign(taps.begin(), taps.end());
  state_ = make_state();
}

FirStage::FirStage(std::span<const int> taps, int out_shift, arith::ArithmeticUnit& unit)
    : out_shift_(out_shift),
      owned_(std::make_unique<arith::UnitKernel>(unit)),
      kernel_(owned_.get()) {
  if (taps.empty()) throw std::invalid_argument("FirStage: empty taps");
  taps_.assign(taps.begin(), taps.end());
  state_ = make_state();
}

void FirStage::reset() { state_.reset(); }

i32 FirStage::process(FirState& st, i32 x) {
  st.delay[st.head] = x;
  // Products in tap order (zero taps skipped), accumulated through a chain of
  // 32-bit adds — the same structure the netlist stage builder emits.
  i64 acc = 0;
  bool first = true;
  std::size_t idx = st.head;
  for (const i32 c : taps_) {
    if (c != 0) {
      const i64 p = kernel_->mul(c, st.delay[idx]);
      if (first) {
        acc = p;
        first = false;
      } else {
        acc = kernel_->add(acc, p);
      }
    }
    idx = (idx == 0) ? st.delay.size() - 1 : idx - 1;
  }
  st.head = (st.head + 1) % st.delay.size();
  // Normalization shift (wiring) and 16-bit inter-stage register.
  return static_cast<i32>(saturate_to_bits(acc >> out_shift_, 16));
}

void FirStage::process_chunk(FirState& st, std::span<const i32> x, std::vector<i32>& y) {
  const std::size_t n = x.size();
  const std::size_t taps = taps_.size();
  // History-prefixed copy of the input: the first T-1 elements are the last
  // T-1 carried samples oldest-first, element T-1+i is x[i]. Tap j of output
  // i reads offset T-1-j+i — exactly the carried delay line of the streaming
  // path (all zeros for a fresh state).
  padded_.resize(n + taps - 1);
  ring_history_prefix(st.delay, st.head, padded_);
  for (std::size_t i = 0; i < n; ++i) padded_[taps - 1 + i] = x[i];
  acc_.resize(n);

  // One batched FIR call: the kernel runs the per-sample accumulation chain
  // (operands and order identical to process()) and may hoist per-coefficient
  // product rows out of the tap loop.
  kernel_->fir_n(taps_, padded_, acc_);

  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<i32>(saturate_to_bits(acc_[i] >> out_shift_, 16));
  }

  ring_carry(st.delay, st.head, x);
}

std::vector<i32> FirStage::process_block(std::span<const i32> x) {
  reset();
  return process_chunk(state_, x);
}

// --------------------------------------------------------------- SquarerStage

SquarerStage::SquarerStage(int out_shift, arith::ArithmeticUnit& unit)
    : out_shift_(out_shift),
      owned_(std::make_unique<arith::UnitKernel>(unit)),
      kernel_(owned_.get()) {}

i32 SquarerStage::process(i32 x) {
  const i64 clamped = saturate_to_bits(x, 16);
  return static_cast<i32>(kernel_->mul(clamped, clamped) >> out_shift_);
}

void SquarerStage::process_chunk(std::span<const i32> x, std::vector<i32>& y) {
  const std::size_t n = x.size();
  in_.resize(n);
  for (std::size_t i = 0; i < n; ++i) in_[i] = saturate_to_bits(x[i], 16);
  // Element-wise aliasing with out is part of the kernel contract, so the
  // products overwrite the clamped operands in place.
  kernel_->mul_n(in_, in_, in_);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = static_cast<i32>(in_[i] >> out_shift_);
}

// ------------------------------------------------------------------- MwiStage

void MwiStage::validate_window(int window) {
  if (window < 2) throw std::invalid_argument("MwiStage: window must be >= 2");
  window_ = static_cast<std::size_t>(window);
  state_ = make_state();
}

MwiStage::MwiStage(int window, int out_shift, arith::Kernel& kernel)
    : out_shift_(out_shift), kernel_(&kernel) {
  validate_window(window);
}

MwiStage::MwiStage(int window, int out_shift, arith::ArithmeticUnit& unit)
    : out_shift_(out_shift),
      owned_(std::make_unique<arith::UnitKernel>(unit)),
      kernel_(owned_.get()) {
  validate_window(window);
}

void MwiStage::reset() { state_.reset(); }

i32 MwiStage::process(MwiState& st, i32 x) {
  st.window[st.head] = x;
  st.head = (st.head + 1) % st.window.size();
  // Balanced feed-forward adder tree over the window contents, oldest first;
  // pairwise reduction order mirrors netlist::build_mwi_stage.
  std::vector<i64> terms;
  terms.reserve(st.window.size());
  std::size_t idx = st.head;  // oldest element
  for (std::size_t i = 0; i < st.window.size(); ++i) {
    terms.push_back(st.window[idx]);
    idx = (idx + 1) % st.window.size();
  }
  while (terms.size() > 1) {
    std::vector<i64> next;
    next.reserve(terms.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(kernel_->add(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return static_cast<i32>(saturate_i32(terms[0] >> out_shift_));
}

void MwiStage::process_chunk(MwiState& st, std::span<const i32> x, std::vector<i32>& y) {
  const std::size_t n = x.size();
  const std::size_t w = window_;
  // History-prefixed input: for output i the window contents oldest-first
  // are term k = padded[i + k] (k = 0..w-1); the first w-1 elements are the
  // carried window samples oldest-first — the same window the streaming path
  // continues from (all zeros for a fresh state).
  padded_.resize(n + w - 1);
  ring_history_prefix(st.window, st.head, padded_);
  for (std::size_t i = 0; i < n; ++i) padded_[w - 1 + i] = x[i];

  // The streaming path's pairwise tree, one add_n per pair per level. Terms
  // are spans over either the padded input (level 0, leftovers) or buffers
  // from the scratch pool; pairing order and odd-leftover placement mirror
  // process() exactly.
  std::vector<std::span<const i64>> terms;
  terms.reserve(w);
  for (std::size_t k = 0; k < w; ++k) {
    terms.push_back(std::span<const i64>(padded_).subspan(k, n));
  }
  std::size_t parity = 0;
  std::size_t used = 0;
  auto next_buffer = [&]() -> std::vector<i64>& {
    std::vector<std::vector<i64>>& pool = pool_[parity];
    if (used == pool.size()) pool.emplace_back();
    std::vector<i64>& buf = pool[used++];
    buf.resize(n);
    return buf;
  };
  while (terms.size() > 1) {
    std::vector<std::span<const i64>> next;
    next.reserve(terms.size() / 2 + 1);
    used = 0;  // recycle this parity's buffers (written two levels up)
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      std::vector<i64>& out = next_buffer();
      kernel_->add_n(terms[i], terms[i + 1], out);
      next.push_back(out);
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
    parity ^= 1;
  }

  y.resize(n);
  const std::span<const i64> sum = terms.front();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<i32>(saturate_i32(sum[i] >> out_shift_));
  }

  ring_carry(st.window, st.head, x);
}

std::vector<i32> MwiStage::process_block(std::span<const i32> x) {
  reset();
  return process_chunk(state_, x);
}

// ------------------------------------------------------------- StageProcessor

namespace {

std::variant<FirStage, SquarerStage, MwiStage> make_stage_impl(Stage s,
                                                               arith::Kernel& kernel) {
  switch (s) {
    case Stage::Lpf: return FirStage(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, kernel);
    case Stage::Hpf: return FirStage(dsp::pt::kHpfTaps, dsp::pt::kHpfShift, kernel);
    case Stage::Der: return FirStage(dsp::pt::kDerTaps, dsp::pt::kDerShift, kernel);
    case Stage::Sqr: return SquarerStage(dsp::pt::kSqrShift, kernel);
    case Stage::Mwi: return MwiStage(dsp::pt::kMwiWindow, dsp::pt::kMwiShift, kernel);
  }
  throw std::invalid_argument("StageProcessor: unknown stage");
}

}  // namespace

StageProcessor::StageProcessor(Stage s, arith::Kernel& kernel)
    : stage_(s), impl_(make_stage_impl(s, kernel)) {}

void StageProcessor::process_chunk(std::span<const i32> x, std::vector<i32>& out) {
  std::visit([&](auto& stage) { stage.process_chunk(x, out); }, impl_);
}

void StageProcessor::reset() {
  std::visit([](auto& stage) { stage.reset(); }, impl_);
}

}  // namespace xbs::pantompkins
