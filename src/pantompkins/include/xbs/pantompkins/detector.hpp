/// \file detector.hpp
/// \brief Adaptive-threshold QRS decision logic (Pan & Tompkins 1985).
///
/// Operates on the MWI and band-passed (HPF) outputs of the filtering chain:
/// dual running thresholds (signal/noise estimates on both streams), a 200 ms
/// refractory, T-wave slope discrimination, RR-based search-back, and the
/// HPF-vs-MWI peak-alignment consistency check whose failure mode Fig. 13 of
/// the paper dissects ("misalignment of peaks between the HPF and MWI
/// signals ... the detected peak is omitted"). The decision logic is control
/// circuitry and always runs in native arithmetic — the paper approximates
/// only the filter datapaths.
///
/// The core is the incremental OnlineDetector: samples arrive in chunks and
/// decisions are emitted as soon as they are final (a fiducial mark is final
/// once the stream has advanced past its separation/search windows). The
/// whole-record detect_qrs() is a thin one-chunk wrapper over it, so both
/// entry points are bit-identical by construction.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "xbs/common/types.hpp"

namespace xbs::pantompkins {

/// Tunable constants of the decision logic (defaults follow the published
/// algorithm at 200 Hz).
struct DetectorParams {
  double fs_hz = 200.0;
  int refractory_samples = 40;        ///< 200 ms absolute refractory
  int t_wave_window_samples = 72;     ///< 360 ms T-wave discrimination zone
  double t_wave_slope_ratio = 0.5;    ///< candidate slope must exceed this x last QRS slope
  double threshold_coeff = 0.25;      ///< THR = NPK + coeff * (SPK - NPK)
  double search_back_factor = 1.66;   ///< missed-beat limit (x mean RR)
  double search_back_threshold = 0.5; ///< relaxed threshold factor for search-back
  int mwi_hpf_lag_samples = 16;       ///< expected MWI-peak lag behind the HPF peak
  int alignment_tolerance = 10;       ///< max |lag - expected| before omission
  int hpf_search_halfwidth = 12;      ///< +/- window when locating the HPF peak
  int raw_delay_samples = 20;         ///< HPF index -> raw index compensation
  int raw_refine_halfwidth = 8;       ///< local-max refinement on the raw signal

  /// Structural sanity of the constants: a positive finite sampling rate and
  /// non-negative windows/ratios. Checked by both the batch (detect_qrs) and
  /// streaming (OnlineDetector, stream::Session) entry points.
  [[nodiscard]] bool valid() const noexcept;

  /// Equality is what lets the exploration stage cache reuse a cached
  /// detection when only filter configurations changed.
  friend constexpr bool operator==(const DetectorParams&, const DetectorParams&) = default;
};

/// What a detector reset() carries over into the next record.
///
/// Cold is the default and the bit-identity contract: a cold-reset detector
/// is observably identical to a freshly constructed one, including the two
/// seconds of threshold training at the head of the new record.
/// KeepThresholds is the reconnect warm start: the trained SPK/NPK estimates
/// (both thresholds), the RR history and the last QRS slope survive, so a
/// session re-armed after a link drop resumes detecting immediately instead
/// of spending ~2 s retraining. A warm-started run is deliberately NOT
/// bit-identical to a fresh one — its thresholds embed the previous
/// episode — which is why it is opt-in. An untrained detector warm-resets
/// to the same state as a cold reset (there is nothing to carry).
enum class WarmStart {
  Cold,            ///< full re-arm: bit-identical to a new detector
  KeepThresholds,  ///< carry trained SPK/NPK + RR state across the reset
};

/// Why a candidate fiducial mark was or was not accepted (Fig. 13 analysis).
enum class PeakDecision {
  Accepted,            ///< classified as a QRS complex
  BelowThreshold,      ///< noise peak (below THRESHOLD I1)
  TWave,               ///< rejected by the slope discrimination
  MisalignedOmitted,   ///< above threshold but HPF/MWI peaks misaligned
  SearchBackRecovered, ///< accepted retroactively by RR search-back
};

/// One candidate event in the detector trace.
struct PeakEvent {
  std::size_t mwi_index = 0;  ///< fiducial mark in MWI coordinates
  std::size_t hpf_index = 0;  ///< matched band-passed peak (if located)
  std::size_t raw_index = 0;  ///< reported R location in raw-signal coordinates
  i64 mwi_value = 0;
  i64 hpf_value = 0;
  PeakDecision decision = PeakDecision::BelowThreshold;

  friend constexpr bool operator==(const PeakEvent&, const PeakEvent&) = default;
};

/// Full detector output.
struct DetectionResult {
  std::vector<std::size_t> peaks;  ///< accepted R locations (raw coordinates)
  std::vector<PeakEvent> trace;    ///< every candidate with its decision
};

/// Incremental QRS detector: the streaming core of the decision logic.
///
/// Feed equally sized, index-aligned (MWI, HPF, raw) chunks via push();
/// decisions come back as PeakEvents the moment they are final. flush()
/// marks end-of-record and finalizes the tail. After push(a); push(b); ...;
/// flush(), result() is bit-identical to detect_qrs() over the concatenated
/// record — for any chunking, including one sample at a time.
///
/// Memory stays bounded for arbitrarily long streams: the detector keeps a
/// sliding sample-history window (trimmed behind the earliest index any
/// future decision can still read) plus O(1) threshold/RR/search-back state
/// — the search-back candidate set collapses to its running argmax with the
/// decision context snapshotted at rejection time (see PendingCandidate).
/// Cumulative trace/peak accumulation into result() can be disabled for
/// long-lived serving sessions that only consume the emitted events.
class OnlineDetector {
 public:
  explicit OnlineDetector(const DetectorParams& params = {}, bool keep_result = true);

  /// Consume one chunk of aligned MWI/HPF/raw samples. Returns the events
  /// finalized by this chunk (valid until the next push/flush call).
  std::span<const PeakEvent> push(std::span<const i32> mwi, std::span<const i32> hpf,
                                  std::span<const i32> raw);

  /// End-of-record: finalize and emit everything still pending. Idempotent;
  /// push() after flush() throws.
  std::span<const PeakEvent> flush();

  /// Re-arm for a fresh record: drops the sample window, search-back state,
  /// any accumulated result, and the flushed flag. WarmStart::Cold (the
  /// default) also drops the trained thresholds and RR history — observably
  /// identical to constructing a new detector with the same params, but
  /// without re-deriving the wiring constants or reallocating.
  /// WarmStart::KeepThresholds carries the trained SPK/NPK/RR state into the
  /// next record (see the enum for the bit-identity contract).
  void reset(WarmStart warm = WarmStart::Cold) noexcept;

  [[nodiscard]] const DetectorParams& params() const noexcept { return p_; }
  [[nodiscard]] bool flushed() const noexcept { return flushed_; }
  [[nodiscard]] u64 samples_seen() const noexcept { return n_; }

  /// Cumulative detection output (empty when keep_result is off). Peaks are
  /// kept sorted and deduplicated at all times; after flush() this equals
  /// the batch detect_qrs() result exactly.
  [[nodiscard]] const DetectionResult& result() const noexcept { return result_; }
  [[nodiscard]] DetectionResult take_result() noexcept { return std::move(result_); }

 private:
  struct Thresholds {
    double spk = 0.0;  ///< running signal-peak estimate
    double npk = 0.0;  ///< running noise-peak estimate

    [[nodiscard]] double threshold1(double coeff) const noexcept {
      return npk + coeff * (spk - npk);
    }
    void signal_update(double peak) noexcept { spk = 0.125 * peak + 0.875 * spk; }
    void noise_update(double peak) noexcept { npk = 0.125 * peak + 0.875 * npk; }
  };

  // --- history access (absolute stream indices over the trimmed window) ---
  [[nodiscard]] i32 mwi_at(std::size_t i) const noexcept { return mwi_[i - base_]; }
  [[nodiscard]] i32 hpf_at(std::size_t i) const noexcept { return hpf_[i - base_]; }
  [[nodiscard]] i32 raw_at(std::size_t i) const noexcept { return raw_[i - base_]; }
  [[nodiscard]] std::size_t argmax_in(const std::vector<i32>& v, std::ptrdiff_t lo,
                                      std::ptrdiff_t hi) const;
  [[nodiscard]] double rising_slope(std::size_t peak, int lookback) const;
  [[nodiscard]] double rr_mean() const;

  void train_now();
  void advance(bool flushing);
  void on_candidate(std::size_t c);
  void process_mark(std::size_t mark);
  [[nodiscard]] int locate(std::size_t mark, std::size_t& hpf_idx, std::size_t& raw_idx) const;
  void emit(const PeakEvent& ev);
  void accept(PeakEvent ev, double slope);
  void note_rejected(std::size_t mark);
  void maybe_trim();

  DetectorParams p_;
  int min_sep_ = 0;             ///< fiducial-mark separation (refractory / 2)
  std::size_t train_target_ = 0;///< training-window length (2 s)
  std::size_t lookahead_ = 0;   ///< samples past a mark before it can be judged
  std::size_t back_need_ = 0;   ///< history depth behind the earliest live index

  // Sample history as a sliding window: absolute index i lives at [i - base_].
  std::size_t base_ = 0;
  std::vector<i32> mwi_, hpf_, raw_;
  std::size_t n_ = 0;  ///< total samples seen

  // Fiducial-mark scanning and separation merging.
  std::size_t scan_ = 1;     ///< next index to test as a local maximum
  bool have_cand_ = false;   ///< an unfinalized (possibly still replaceable) mark
  std::size_t cand_ = 0;
  std::deque<std::size_t> marks_;  ///< finalized marks awaiting judgement

  // Decision state (the batch loop's locals, made persistent).
  bool trained_ = false;
  Thresholds th_i_{}, th_f_{};
  std::ptrdiff_t last_accept_ = -1;
  double last_slope_ = 0.0;
  std::vector<double> rr_history_;  ///< last accepted RR intervals (capped at 8)

  /// The search-back candidate. The batch path keeps every rejected mark
  /// since the last accepted beat and scans them for the tallest (earliest
  /// wins ties); only that argmax ever feeds the search-back decision, so an
  /// incrementally maintained argmax is observably identical — with its
  /// decision context (slope, located HPF/raw peaks) snapshotted at
  /// rejection time, when the history around the mark is guaranteed
  /// resident, so the sliding window never has to reach back to it.
  struct PendingCandidate {
    bool active = false;  ///< any rejected mark since the last accepted beat
    std::size_t mark = 0;
    i64 mwi_value = 0;
    double slope = 0.0;  ///< rising_slope at the mark
    std::size_t hpf_idx = 0;
    std::size_t raw_idx = 0;
    i64 hpf_value = 0;
    int misalign = 0;
  };
  PendingCandidate pending_;

  bool keep_result_ = true;
  DetectionResult result_;
  std::vector<PeakEvent> fresh_;  ///< events finalized by the current call
  bool flushed_ = false;
};

/// Run the decision logic over a whole record. \p mwi, \p hpf and \p raw
/// must be equally sized. Implemented as OnlineDetector push+flush, so batch
/// and streaming results are identical by construction.
[[nodiscard]] DetectionResult detect_qrs(std::span<const i32> mwi, std::span<const i32> hpf,
                                         std::span<const i32> raw,
                                         const DetectorParams& params = {});

}  // namespace xbs::pantompkins
