/// \file detector.hpp
/// \brief Adaptive-threshold QRS decision logic (Pan & Tompkins 1985).
///
/// Operates on the MWI and band-passed (HPF) outputs of the filtering chain:
/// dual running thresholds (signal/noise estimates on both streams), a 200 ms
/// refractory, T-wave slope discrimination, RR-based search-back, and the
/// HPF-vs-MWI peak-alignment consistency check whose failure mode Fig. 13 of
/// the paper dissects ("misalignment of peaks between the HPF and MWI
/// signals ... the detected peak is omitted"). The decision logic is control
/// circuitry and always runs in native arithmetic — the paper approximates
/// only the filter datapaths.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "xbs/common/types.hpp"

namespace xbs::pantompkins {

/// Tunable constants of the decision logic (defaults follow the published
/// algorithm at 200 Hz).
struct DetectorParams {
  double fs_hz = 200.0;
  int refractory_samples = 40;        ///< 200 ms absolute refractory
  int t_wave_window_samples = 72;     ///< 360 ms T-wave discrimination zone
  double t_wave_slope_ratio = 0.5;    ///< candidate slope must exceed this x last QRS slope
  double threshold_coeff = 0.25;      ///< THR = NPK + coeff * (SPK - NPK)
  double search_back_factor = 1.66;   ///< missed-beat limit (x mean RR)
  double search_back_threshold = 0.5; ///< relaxed threshold factor for search-back
  int mwi_hpf_lag_samples = 16;       ///< expected MWI-peak lag behind the HPF peak
  int alignment_tolerance = 10;       ///< max |lag - expected| before omission
  int hpf_search_halfwidth = 12;      ///< +/- window when locating the HPF peak
  int raw_delay_samples = 20;         ///< HPF index -> raw index compensation
  int raw_refine_halfwidth = 8;       ///< local-max refinement on the raw signal

  /// Equality is what lets the exploration stage cache reuse a cached
  /// detection when only filter configurations changed.
  friend constexpr bool operator==(const DetectorParams&, const DetectorParams&) = default;
};

/// Why a candidate fiducial mark was or was not accepted (Fig. 13 analysis).
enum class PeakDecision {
  Accepted,            ///< classified as a QRS complex
  BelowThreshold,      ///< noise peak (below THRESHOLD I1)
  TWave,               ///< rejected by the slope discrimination
  MisalignedOmitted,   ///< above threshold but HPF/MWI peaks misaligned
  SearchBackRecovered, ///< accepted retroactively by RR search-back
};

/// One candidate event in the detector trace.
struct PeakEvent {
  std::size_t mwi_index = 0;  ///< fiducial mark in MWI coordinates
  std::size_t hpf_index = 0;  ///< matched band-passed peak (if located)
  std::size_t raw_index = 0;  ///< reported R location in raw-signal coordinates
  i64 mwi_value = 0;
  i64 hpf_value = 0;
  PeakDecision decision = PeakDecision::BelowThreshold;
};

/// Full detector output.
struct DetectionResult {
  std::vector<std::size_t> peaks;  ///< accepted R locations (raw coordinates)
  std::vector<PeakEvent> trace;    ///< every candidate with its decision
};

/// Run the decision logic. \p mwi, \p hpf and \p raw must be equally sized.
[[nodiscard]] DetectionResult detect_qrs(std::span<const i32> mwi, std::span<const i32> hpf,
                                         std::span<const i32> raw,
                                         const DetectorParams& params = {});

}  // namespace xbs::pantompkins
