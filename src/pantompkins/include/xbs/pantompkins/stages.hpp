/// \file stages.hpp
/// \brief The five Pan-Tompkins application stages as fixed-point datapaths
/// over the batched kernel API.
///
/// Each stage offers two bit-identical views of the same datapath:
///  - `process(x)` — the streaming scalar path (one sample in, one out),
///  - `process_block(x)` — the whole-record block transform, which issues
///    one batched kernel call per FIR tap / adder-tree level instead of one
///    virtual scalar call per sample-operation.
/// The block transform performs exactly the same dataflow graph per output
/// sample (same operands, same order, same operation counts), so outputs and
/// OpCounts match the scalar path bit for bit (tests/test_kernel_equivalence).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "xbs/arith/kernel.hpp"
#include "xbs/arith/unit.hpp"
#include "xbs/common/types.hpp"

namespace xbs::pantompkins {

/// The five stages, in pipeline order (paper Fig. 3).
enum class Stage { Lpf, Hpf, Der, Sqr, Mwi };
inline constexpr int kNumStages = 5;
inline constexpr std::array<Stage, 5> kAllStages = {Stage::Lpf, Stage::Hpf, Stage::Der,
                                                    Stage::Sqr, Stage::Mwi};

[[nodiscard]] constexpr std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::Lpf: return "LPF";
    case Stage::Hpf: return "HPF";
    case Stage::Der: return "DER";
    case Stage::Sqr: return "SQR";
    case Stage::Mwi: return "MWI";
  }
  return "?";
}

/// Hardware inventory of one stage: the module counts the paper quotes and
/// the LSB range it sweeps/allows for that stage (§2, §4.2, §6.2).
struct StageInventory {
  Stage stage = Stage::Lpf;
  std::string_view name;
  int n_adders = 0;  ///< 32-bit adder blocks
  int n_mults = 0;   ///< 16x16 multiplier blocks
  int n_registers = 0;
  int max_lsbs = 16;  ///< upper bound of the approximation sweep
};

/// Inventory for each stage: LPF 10+11 (11 taps), HPF 31+32 (32 taps),
/// DER 3+4 (4 non-zero taps), SQR 0+1, MWI 29+0 (30-input adder tree).
[[nodiscard]] const StageInventory& stage_inventory(Stage s) noexcept;

/// A fixed-point FIR stage: per-tap 16x16 multiplies by integer
/// coefficients, a chain of 32-bit accumulations, then an arithmetic
/// normalization shift and 16-bit saturation of the output (the inter-stage
/// register width). All arithmetic flows through the given kernel; the
/// block transform issues one mul_cn/mac_n per non-zero tap.
class FirStage {
 public:
  /// Kernel-backed construction (the fast path; kernel outlives the stage).
  FirStage(std::span<const int> taps, int out_shift, arith::Kernel& kernel);
  /// Scalar-unit construction: wraps the unit in a UnitKernel adapter so op
  /// counts accrue on the caller's unit.
  FirStage(std::span<const int> taps, int out_shift, arith::ArithmeticUnit& unit);

  /// Streaming scalar path: push one sample, get the filtered output.
  [[nodiscard]] i32 process(i32 x);

  /// Whole-record block transform. Starts from a zero delay line and leaves
  /// the stage exactly as if the samples had been streamed through process().
  [[nodiscard]] std::vector<i32> process_block(std::span<const i32> x);

  /// Reset the delay line to zeros.
  void reset();

 private:
  std::vector<i32> taps_;
  std::vector<i32> delay_;
  std::size_t head_ = 0;
  int out_shift_;
  std::unique_ptr<arith::Kernel> owned_;  ///< UnitKernel adapter, if any
  arith::Kernel* kernel_;
  std::vector<i64> padded_;  ///< block scratch: zero-prefixed input
  std::vector<i64> acc_;     ///< block scratch: accumulator chain
};

/// The squarer stage: y = (x * x) >> shift through the kernel's multiplier.
/// The output keeps wide precision (it feeds the adder-only MWI stage); the
/// shift keeps the downstream MWI sum inside its 32-bit adders.
class SquarerStage {
 public:
  SquarerStage(int out_shift, arith::Kernel& kernel)
      : out_shift_(out_shift), kernel_(&kernel) {}
  SquarerStage(int out_shift, arith::ArithmeticUnit& unit);

  [[nodiscard]] i32 process(i32 x);
  [[nodiscard]] std::vector<i32> process_block(std::span<const i32> x);

 private:
  int out_shift_;
  std::unique_ptr<arith::Kernel> owned_;
  arith::Kernel* kernel_ = nullptr;
  std::vector<i64> in_;  ///< block scratch: clamped operands, then products
};

/// The moving-window-integration stage: a feed-forward balanced tree of
/// window-1 adds per sample (adder-only, no error feedback), then >> shift.
/// The tree reduction order matches the netlist builder exactly; the block
/// transform issues one add_n per tree-level pair over the whole record.
class MwiStage {
 public:
  MwiStage(int window, int out_shift, arith::Kernel& kernel);
  MwiStage(int window, int out_shift, arith::ArithmeticUnit& unit);

  [[nodiscard]] i32 process(i32 x);
  [[nodiscard]] std::vector<i32> process_block(std::span<const i32> x);
  void reset();

 private:
  void validate_window(int window);

  std::vector<i32> window_buf_;
  std::size_t head_ = 0;
  int out_shift_;
  std::unique_ptr<arith::Kernel> owned_;
  arith::Kernel* kernel_ = nullptr;
  std::vector<i64> padded_;  ///< block scratch
  /// Block scratch: tree-level output buffers, ping-ponged by level parity
  /// so a level recycles its grandparent level's buffers (levels strictly
  /// shrink, and a carried odd leftover always has the highest index of its
  /// parity, so it is never overwritten before its final read). Caps scratch
  /// at ~two tree levels instead of one buffer per add of the whole tree.
  std::array<std::vector<std::vector<i64>>, 2> pool_;
};

}  // namespace xbs::pantompkins
