/// \file stages.hpp
/// \brief The five Pan-Tompkins application stages as fixed-point datapaths
/// over a pluggable ArithmeticUnit.
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "xbs/arith/unit.hpp"
#include "xbs/common/types.hpp"

namespace xbs::pantompkins {

/// The five stages, in pipeline order (paper Fig. 3).
enum class Stage { Lpf, Hpf, Der, Sqr, Mwi };
inline constexpr int kNumStages = 5;
inline constexpr std::array<Stage, 5> kAllStages = {Stage::Lpf, Stage::Hpf, Stage::Der,
                                                    Stage::Sqr, Stage::Mwi};

[[nodiscard]] constexpr std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::Lpf: return "LPF";
    case Stage::Hpf: return "HPF";
    case Stage::Der: return "DER";
    case Stage::Sqr: return "SQR";
    case Stage::Mwi: return "MWI";
  }
  return "?";
}

/// Hardware inventory of one stage: the module counts the paper quotes and
/// the LSB range it sweeps/allows for that stage (§2, §4.2, §6.2).
struct StageInventory {
  Stage stage = Stage::Lpf;
  std::string_view name;
  int n_adders = 0;  ///< 32-bit adder blocks
  int n_mults = 0;   ///< 16x16 multiplier blocks
  int n_registers = 0;
  int max_lsbs = 16;  ///< upper bound of the approximation sweep
};

/// Inventory for each stage: LPF 10+11 (11 taps), HPF 31+32 (32 taps),
/// DER 3+4 (4 non-zero taps), SQR 0+1, MWI 29+0 (30-input adder tree).
[[nodiscard]] const StageInventory& stage_inventory(Stage s) noexcept;

/// A fixed-point FIR stage: per-tap 16x16 multiplies by integer
/// coefficients, a chain of 32-bit accumulations, then an arithmetic
/// normalization shift and 16-bit saturation of the output (the inter-stage
/// register width). All arithmetic flows through the given unit.
class FirStage {
 public:
  FirStage(std::span<const int> taps, int out_shift, arith::ArithmeticUnit& unit);

  [[nodiscard]] i32 process(i32 x);
  void reset();

 private:
  std::vector<i32> taps_;
  std::vector<i32> delay_;
  std::size_t head_ = 0;
  int out_shift_;
  arith::ArithmeticUnit* unit_;
};

/// The squarer stage: y = (x * x) >> shift through the unit's multiplier.
/// The output keeps wide precision (it feeds the adder-only MWI stage); the
/// shift keeps the downstream MWI sum inside its 32-bit adders.
class SquarerStage {
 public:
  explicit SquarerStage(int out_shift, arith::ArithmeticUnit& unit)
      : out_shift_(out_shift), unit_(&unit) {}
  [[nodiscard]] i32 process(i32 x);

 private:
  int out_shift_;
  arith::ArithmeticUnit* unit_;
};

/// The moving-window-integration stage: a feed-forward balanced tree of
/// window-1 adds per sample (adder-only, no error feedback), then >> shift.
/// The tree reduction order matches the netlist builder exactly.
class MwiStage {
 public:
  MwiStage(int window, int out_shift, arith::ArithmeticUnit& unit);

  [[nodiscard]] i32 process(i32 x);
  void reset();

 private:
  std::vector<i32> window_buf_;
  std::size_t head_ = 0;
  int out_shift_;
  arith::ArithmeticUnit* unit_;
};

}  // namespace xbs::pantompkins
