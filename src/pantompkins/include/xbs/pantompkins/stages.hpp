/// \file stages.hpp
/// \brief The five Pan-Tompkins application stages as fixed-point datapaths
/// over the batched kernel API.
///
/// Each stage offers three bit-identical views of the same datapath:
///  - `process(state, x)` — the streaming scalar path (one sample in, one out),
///  - `process_chunk(state, xs)` — the resumable chunked transform: consumes
///    a chunk of any size, carries the delay/window state across calls, and
///    issues one batched kernel call per FIR tap / adder-tree level,
///  - `process_block(xs)` — the whole-record transform (a fresh-state
///    one-chunk wrapper over process_chunk).
/// Every view performs exactly the same dataflow graph per output sample
/// (same operands, same order, same operation counts), so outputs and
/// OpCounts match bit for bit for any chunking (tests/test_kernel_equivalence,
/// tests/test_stream).
///
/// The carry-over state of each stage is an explicit struct (FirState,
/// MwiState) so long-lived streaming sessions can own per-session state while
/// sharing the immutable stage wiring and kernels.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "xbs/arith/kernel.hpp"
#include "xbs/arith/unit.hpp"
#include "xbs/common/types.hpp"

namespace xbs::pantompkins {

/// The five stages, in pipeline order (paper Fig. 3).
enum class Stage { Lpf, Hpf, Der, Sqr, Mwi };
inline constexpr int kNumStages = 5;
inline constexpr std::array<Stage, 5> kAllStages = {Stage::Lpf, Stage::Hpf, Stage::Der,
                                                    Stage::Sqr, Stage::Mwi};

[[nodiscard]] constexpr std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::Lpf: return "LPF";
    case Stage::Hpf: return "HPF";
    case Stage::Der: return "DER";
    case Stage::Sqr: return "SQR";
    case Stage::Mwi: return "MWI";
  }
  return "?";
}

/// Hardware inventory of one stage: the module counts the paper quotes and
/// the LSB range it sweeps/allows for that stage (§2, §4.2, §6.2).
struct StageInventory {
  Stage stage = Stage::Lpf;
  std::string_view name;
  int n_adders = 0;  ///< 32-bit adder blocks
  int n_mults = 0;   ///< 16x16 multiplier blocks
  int n_registers = 0;
  int max_lsbs = 16;  ///< upper bound of the approximation sweep
};

/// Inventory for each stage: LPF 10+11 (11 taps), HPF 31+32 (32 taps),
/// DER 3+4 (4 non-zero taps), SQR 0+1, MWI 29+0 (30-input adder tree).
[[nodiscard]] const StageInventory& stage_inventory(Stage s) noexcept;

/// Carry-over state of a FIR stage: the delay-line ring. `head` is the next
/// write slot, which always holds the oldest retained sample.
struct FirState {
  std::vector<i32> delay;
  std::size_t head = 0;

  /// Zero the delay line in place (no reallocation): the state of a fresh
  /// record, reusable on the serving hot path (stream::Session::reset).
  void reset() noexcept {
    std::fill(delay.begin(), delay.end(), 0);
    head = 0;
  }
};

/// Carry-over state of the MWI stage: the window ring, same conventions.
struct MwiState {
  std::vector<i32> window;
  std::size_t head = 0;

  /// Zero the window in place (no reallocation).
  void reset() noexcept {
    std::fill(window.begin(), window.end(), 0);
    head = 0;
  }
};

/// The squarer is stateless; its state struct exists for API symmetry.
struct SqrState {
  void reset() noexcept {}
};

/// A fixed-point FIR stage: per-tap 16x16 multiplies by integer
/// coefficients, a chain of 32-bit accumulations, then an arithmetic
/// normalization shift and 16-bit saturation of the output (the inter-stage
/// register width). All arithmetic flows through the given kernel; the
/// chunked transform issues one mul_cn/mac_n per non-zero tap.
class FirStage {
 public:
  /// Kernel-backed construction (the fast path; kernel outlives the stage).
  FirStage(std::span<const int> taps, int out_shift, arith::Kernel& kernel);
  /// Scalar-unit construction: wraps the unit in a UnitKernel adapter so op
  /// counts accrue on the caller's unit.
  FirStage(std::span<const int> taps, int out_shift, arith::ArithmeticUnit& unit);

  /// A zeroed delay line sized for this stage's taps.
  [[nodiscard]] FirState make_state() const { return FirState{std::vector<i32>(taps_.size(), 0), 0}; }

  /// Streaming scalar path: push one sample through \p st, get the output.
  [[nodiscard]] i32 process(FirState& st, i32 x);

  /// Resumable chunked transform: continues from \p st and carries it
  /// forward — bit-identical to streaming the chunk through process().
  /// The write-into form is the allocation-free serving hot path; \p y is
  /// resized to the chunk length and must not alias \p x.
  void process_chunk(FirState& st, std::span<const i32> x, std::vector<i32>& y);
  [[nodiscard]] std::vector<i32> process_chunk(FirState& st, std::span<const i32> x) {
    std::vector<i32> y;
    process_chunk(st, x, y);
    return y;
  }

  // --- internal-state convenience view (single-consumer use) ---
  [[nodiscard]] i32 process(i32 x) { return process(state_, x); }
  void process_chunk(std::span<const i32> x, std::vector<i32>& y) {
    process_chunk(state_, x, y);
  }
  [[nodiscard]] std::vector<i32> process_chunk(std::span<const i32> x) {
    return process_chunk(state_, x);
  }
  /// Whole-record transform: fresh state, then one chunk.
  [[nodiscard]] std::vector<i32> process_block(std::span<const i32> x);
  /// Reset the internal delay line to zeros.
  void reset();

 private:
  std::vector<i32> taps_;
  FirState state_;  ///< internal state backing the convenience view
  int out_shift_;
  std::unique_ptr<arith::Kernel> owned_;  ///< UnitKernel adapter, if any
  arith::Kernel* kernel_;
  std::vector<i64> padded_;  ///< chunk scratch: history-prefixed input
  std::vector<i64> acc_;     ///< chunk scratch: accumulator chain
};

/// The squarer stage: y = (x * x) >> shift through the kernel's multiplier.
/// The output keeps wide precision (it feeds the adder-only MWI stage); the
/// shift keeps the downstream MWI sum inside its 32-bit adders.
class SquarerStage {
 public:
  SquarerStage(int out_shift, arith::Kernel& kernel)
      : out_shift_(out_shift), kernel_(&kernel) {}
  SquarerStage(int out_shift, arith::ArithmeticUnit& unit);

  [[nodiscard]] static SqrState make_state() noexcept { return SqrState{}; }

  [[nodiscard]] i32 process(i32 x);
  /// Stateless: chunked and whole-record views coincide. \p y must not
  /// alias \p x.
  void process_chunk(std::span<const i32> x, std::vector<i32>& y);
  [[nodiscard]] std::vector<i32> process_chunk(std::span<const i32> x) {
    std::vector<i32> y;
    process_chunk(x, y);
    return y;
  }
  [[nodiscard]] std::vector<i32> process_block(std::span<const i32> x) {
    return process_chunk(x);
  }
  void reset() noexcept {}

 private:
  int out_shift_;
  std::unique_ptr<arith::Kernel> owned_;
  arith::Kernel* kernel_ = nullptr;
  std::vector<i64> in_;  ///< chunk scratch: clamped operands, then products
};

/// The moving-window-integration stage: a feed-forward balanced tree of
/// window-1 adds per sample (adder-only, no error feedback), then >> shift.
/// The tree reduction order matches the netlist builder exactly; the chunked
/// transform issues one add_n per tree-level pair over the whole chunk.
class MwiStage {
 public:
  MwiStage(int window, int out_shift, arith::Kernel& kernel);
  MwiStage(int window, int out_shift, arith::ArithmeticUnit& unit);

  /// A zeroed window sized for this stage.
  [[nodiscard]] MwiState make_state() const {
    return MwiState{std::vector<i32>(window_, 0), 0};
  }

  [[nodiscard]] i32 process(MwiState& st, i32 x);
  /// \p y must not alias \p x.
  void process_chunk(MwiState& st, std::span<const i32> x, std::vector<i32>& y);
  [[nodiscard]] std::vector<i32> process_chunk(MwiState& st, std::span<const i32> x) {
    std::vector<i32> y;
    process_chunk(st, x, y);
    return y;
  }

  // --- internal-state convenience view ---
  [[nodiscard]] i32 process(i32 x) { return process(state_, x); }
  void process_chunk(std::span<const i32> x, std::vector<i32>& y) {
    process_chunk(state_, x, y);
  }
  [[nodiscard]] std::vector<i32> process_chunk(std::span<const i32> x) {
    return process_chunk(state_, x);
  }
  [[nodiscard]] std::vector<i32> process_block(std::span<const i32> x);
  void reset();

 private:
  void validate_window(int window);

  std::size_t window_ = 0;
  MwiState state_;  ///< internal state backing the convenience view
  int out_shift_;
  std::unique_ptr<arith::Kernel> owned_;
  arith::Kernel* kernel_ = nullptr;
  std::vector<i64> padded_;  ///< chunk scratch
  /// Chunk scratch: tree-level output buffers, ping-ponged by level parity
  /// so a level recycles its grandparent level's buffers (levels strictly
  /// shrink, and a carried odd leftover always has the highest index of its
  /// parity, so it is never overwritten before its final read). Caps scratch
  /// at ~two tree levels instead of one buffer per add of the whole tree.
  std::array<std::vector<std::vector<i64>>, 2> pool_;
};

/// One wired pipeline stage — taps/shift/window resolved from the paper's
/// coefficient set for the given Stage — bound to a kernel, with its
/// carry-over state held internally. This is the single source of stage
/// wiring shared by the batch pipeline (`run_stage`, one chunk per record),
/// the exploration stage cache, and the streaming `stream::Session`.
class StageProcessor {
 public:
  StageProcessor(Stage s, arith::Kernel& kernel);

  /// Resumable: consume a chunk of any size, carrying state across calls.
  /// The write-into form reuses \p out across calls (allocation-free hot
  /// path; must not alias \p x).
  void process_chunk(std::span<const i32> x, std::vector<i32>& out);
  [[nodiscard]] std::vector<i32> process_chunk(std::span<const i32> x) {
    std::vector<i32> out;
    process_chunk(x, out);
    return out;
  }

  /// Drop the carried state (start of a fresh record).
  void reset();

  [[nodiscard]] Stage stage() const noexcept { return stage_; }

 private:
  Stage stage_;
  std::variant<FirStage, SquarerStage, MwiStage> impl_;
};

}  // namespace xbs::pantompkins
