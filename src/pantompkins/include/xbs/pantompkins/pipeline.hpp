/// \file pipeline.hpp
/// \brief The end-to-end fixed-point Pan-Tompkins pipeline with per-stage
/// approximate arithmetic configuration.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "xbs/arith/unit.hpp"
#include "xbs/common/types.hpp"
#include "xbs/pantompkins/detector.hpp"
#include "xbs/pantompkins/stages.hpp"

namespace xbs::pantompkins {

/// Per-stage LSB counts — the paper's hardware-configuration vocabulary
/// (Fig. 12's table lists configurations exactly like this).
using LsbVector = std::array<int, kNumStages>;

/// Pipeline configuration: one arithmetic configuration per stage plus the
/// detector constants.
struct PipelineConfig {
  std::array<arith::StageArithConfig, kNumStages> stage{};
  DetectorParams detector{};

  /// All stages exact.
  [[nodiscard]] static PipelineConfig accurate() noexcept { return PipelineConfig{}; }

  /// Per-stage LSB counts with a common adder/multiplier kind — e.g.
  /// configuration B9 of Fig. 12 is from_lsbs({10, 12, 2, 8, 16}).
  [[nodiscard]] static PipelineConfig from_lsbs(
      const LsbVector& lsbs, AdderKind add_kind = AdderKind::Approx5,
      MultKind mult_kind = MultKind::V1,
      ApproxPolicy policy = ApproxPolicy::Moderate) noexcept;

  /// The same LSB count at every stage (the Fig. 10 experiment).
  [[nodiscard]] static PipelineConfig uniform(
      int lsbs, AdderKind add_kind = AdderKind::Approx5, MultKind mult_kind = MultKind::V1,
      ApproxPolicy policy = ApproxPolicy::Moderate) noexcept {
    return from_lsbs(LsbVector{lsbs, lsbs, lsbs, lsbs, lsbs}, add_kind, mult_kind, policy);
  }
};

/// Per-stage signals plus detection output.
struct PipelineResult {
  std::vector<i32> lpf;
  std::vector<i32> hpf;
  std::vector<i32> der;
  std::vector<i32> sqr;
  std::vector<i32> mwi;
  DetectionResult detection;
  std::array<arith::OpCounts, kNumStages> ops{};

  [[nodiscard]] const std::vector<i32>& stage_signal(Stage s) const noexcept;

  /// Aggregate datapath operation count across all five stages.
  [[nodiscard]] arith::OpCounts total_ops() const noexcept;
};

/// Run one stage as a whole-record transform over a freshly built kernel for
/// \p cfg (exact native backend when the configuration is accurate): a
/// one-chunk call into the streaming StageProcessor core, which owns the
/// stage wiring (taps, shifts, window) shared by the batch pipeline, the
/// exploration stage cache, and stream::Session. If \p ops is non-null it
/// receives the stage's operation counts.
[[nodiscard]] std::vector<i32> run_stage(Stage s, const arith::StageArithConfig& cfg,
                                         std::span<const i32> input,
                                         arith::OpCounts* ops = nullptr);

/// Pre-build every process-wide lookup table the given stage configuration
/// can use — the multiplier behavioural model, the signed product table of
/// each non-zero FIR tap, and (for the squarer) the square table — so
/// subsequent kernels walk warm tables at any chunk size. Streaming serving
/// layers call this outside their timed/latency-sensitive regions
/// (stream::SessionPool warms every stage of its spec before the first
/// session is built), making the cold-build block-size threshold inside the
/// kernels moot for streaming. The warmed tables are the layout every
/// dispatched kernel tier walks — 64-byte-aligned i64 rows serve the scalar
/// loads and the AVX2/AVX-512 gathers alike (arith::kernel_isa()), so a
/// warm-up stays valid if the selected tier is forced afterwards, and the
/// streaming hot path never builds a table lazily under any tier
/// (arith::table_cache_stats(), asserted in test_kernel_dispatch). Exact
/// configurations are no-ops.
void warm_stage_tables(Stage s, const arith::StageArithConfig& cfg);

/// warm_stage_tables for all five stages of a pipeline configuration.
void warm_pipeline_tables(const PipelineConfig& cfg);

/// The five-stage pipeline. Stages whose configuration is exact run on the
/// native datapath; approximated stages run bit-accurately through the
/// behavioural models. Records are processed as contiguous buffers: each
/// stage is one block transform over the whole signal (one batched kernel
/// call per tap / tree level), not a per-sample scalar loop.
class PanTompkinsPipeline {
 public:
  explicit PanTompkinsPipeline(const PipelineConfig& cfg = PipelineConfig::accurate());

  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }

  /// Filter + detect over a whole digitized record.
  [[nodiscard]] PipelineResult run(std::span<const i32> adu) const;

  /// Filter only (no detection) — used by quality evaluation sweeps that
  /// only need the intermediate signal.
  [[nodiscard]] PipelineResult run_filters(std::span<const i32> adu) const;

 private:
  PipelineConfig cfg_;
};

}  // namespace xbs::pantompkins
