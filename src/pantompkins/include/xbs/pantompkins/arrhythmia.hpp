/// \file arrhythmia.hpp
/// \brief RR-interval rhythm analysis over detected beats — the paper's
/// stated future-work direction ("extend ... to ECG-based arrhythmia
/// detection"), implemented as a library module so downstream users can run
/// it directly on the (approximate) detector output.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace xbs::pantompkins {

/// Kinds of rhythm events the classifier flags.
enum class RhythmEventKind {
  PrematureBeat,    ///< RR < premature_ratio x running mean (PVC-like)
  Pause,            ///< RR > pause_ratio x running mean
  Bradycardia,      ///< instantaneous HR below brady_bpm
  Tachycardia,      ///< instantaneous HR above tachy_bpm
  IrregularRhythm,  ///< sustained high RR variability (AF-like surrogate)
};

[[nodiscard]] constexpr std::string_view to_string(RhythmEventKind k) noexcept {
  switch (k) {
    case RhythmEventKind::PrematureBeat: return "premature beat";
    case RhythmEventKind::Pause: return "pause";
    case RhythmEventKind::Bradycardia: return "bradycardia";
    case RhythmEventKind::Tachycardia: return "tachycardia";
    case RhythmEventKind::IrregularRhythm: return "irregular rhythm";
  }
  return "?";
}

/// One flagged event, anchored at a detected beat.
struct RhythmEvent {
  std::size_t beat_index = 0;  ///< index into the detected peak list
  double time_s = 0.0;
  RhythmEventKind kind = RhythmEventKind::PrematureBeat;
};

/// Classifier thresholds (conventional screening defaults).
struct RhythmParams {
  double premature_ratio = 0.80;
  double pause_ratio = 1.60;
  double brady_bpm = 50.0;
  double tachy_bpm = 110.0;
  double irregular_rmssd_ms = 120.0;  ///< windowed RMSSD threshold
  int irregular_window_beats = 12;
  int warmup_beats = 4;  ///< beats used to seed the running RR mean
};

/// HRV summary statistics over the detected RR series.
struct HrvSummary {
  double mean_hr_bpm = 0.0;
  double sdnn_ms = 0.0;   ///< standard deviation of RR intervals
  double rmssd_ms = 0.0;  ///< root mean square of successive differences
  double pnn50_pct = 0.0; ///< fraction of successive RR diffs > 50 ms
};

/// Analyze a detected beat sequence (sample indices at \p fs_hz).
struct RhythmAnalysis {
  std::vector<RhythmEvent> events;
  HrvSummary hrv;
};

[[nodiscard]] RhythmAnalysis analyze_rhythm(std::span<const std::size_t> peaks, double fs_hz,
                                            const RhythmParams& params = {});

}  // namespace xbs::pantompkins
