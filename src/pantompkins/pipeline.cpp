#include "xbs/pantompkins/pipeline.hpp"

#include <memory>

#include "xbs/dsp/pt_coeffs.hpp"

namespace xbs::pantompkins {
namespace {

/// True when a stage configuration is exactly the accurate datapath.
bool is_exact(const arith::StageArithConfig& c) noexcept {
  return c.adder.approx_lsbs == 0 && c.mult.approx_lsbs == 0;
}

std::unique_ptr<arith::ArithmeticUnit> make_unit(const arith::StageArithConfig& c) {
  if (is_exact(c)) return std::make_unique<arith::ExactUnit>();
  return std::make_unique<arith::ApproxUnit>(c);
}

}  // namespace

PipelineConfig PipelineConfig::from_lsbs(const LsbVector& lsbs, AdderKind add_kind,
                                         MultKind mult_kind, ApproxPolicy policy) noexcept {
  PipelineConfig cfg;
  for (int s = 0; s < kNumStages; ++s) {
    cfg.stage[static_cast<std::size_t>(s)] =
        arith::StageArithConfig::uniform(lsbs[static_cast<std::size_t>(s)], add_kind, mult_kind,
                                         policy);
  }
  return cfg;
}

const std::vector<i32>& PipelineResult::stage_signal(Stage s) const noexcept {
  switch (s) {
    case Stage::Lpf: return lpf;
    case Stage::Hpf: return hpf;
    case Stage::Der: return der;
    case Stage::Sqr: return sqr;
    case Stage::Mwi: return mwi;
  }
  return mwi;  // unreachable
}

PanTompkinsPipeline::PanTompkinsPipeline(const PipelineConfig& cfg) : cfg_(cfg) {}

PipelineResult PanTompkinsPipeline::run_filters(std::span<const i32> adu) const {
  PipelineResult out;
  const std::size_t n = adu.size();
  out.lpf.reserve(n);
  out.hpf.reserve(n);
  out.der.reserve(n);
  out.sqr.reserve(n);
  out.mwi.reserve(n);

  auto u_lpf = make_unit(cfg_.stage[0]);
  auto u_hpf = make_unit(cfg_.stage[1]);
  auto u_der = make_unit(cfg_.stage[2]);
  auto u_sqr = make_unit(cfg_.stage[3]);
  auto u_mwi = make_unit(cfg_.stage[4]);

  FirStage lpf(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, *u_lpf);
  FirStage hpf(dsp::pt::kHpfTaps, dsp::pt::kHpfShift, *u_hpf);
  FirStage der(dsp::pt::kDerTaps, dsp::pt::kDerShift, *u_der);
  SquarerStage sqr(dsp::pt::kSqrShift, *u_sqr);
  MwiStage mwi(dsp::pt::kMwiWindow, dsp::pt::kMwiShift, *u_mwi);

  for (const i32 x : adu) {
    const i32 a = lpf.process(x);
    const i32 b = hpf.process(a);
    const i32 c = der.process(b);
    const i32 d = sqr.process(c);
    const i32 e = mwi.process(d);
    out.lpf.push_back(a);
    out.hpf.push_back(b);
    out.der.push_back(c);
    out.sqr.push_back(d);
    out.mwi.push_back(e);
  }
  out.ops = {u_lpf->counts(), u_hpf->counts(), u_der->counts(), u_sqr->counts(),
             u_mwi->counts()};
  return out;
}

PipelineResult PanTompkinsPipeline::run(std::span<const i32> adu) const {
  PipelineResult out = run_filters(adu);
  out.detection = detect_qrs(out.mwi, out.hpf, adu, cfg_.detector);
  return out;
}

}  // namespace xbs::pantompkins
