#include "xbs/pantompkins/pipeline.hpp"

#include "xbs/dsp/pt_coeffs.hpp"

namespace xbs::pantompkins {

PipelineConfig PipelineConfig::from_lsbs(const LsbVector& lsbs, AdderKind add_kind,
                                         MultKind mult_kind, ApproxPolicy policy) noexcept {
  PipelineConfig cfg;
  for (int s = 0; s < kNumStages; ++s) {
    cfg.stage[static_cast<std::size_t>(s)] =
        arith::StageArithConfig::uniform(lsbs[static_cast<std::size_t>(s)], add_kind, mult_kind,
                                         policy);
  }
  return cfg;
}

const std::vector<i32>& PipelineResult::stage_signal(Stage s) const noexcept {
  switch (s) {
    case Stage::Lpf: return lpf;
    case Stage::Hpf: return hpf;
    case Stage::Der: return der;
    case Stage::Sqr: return sqr;
    case Stage::Mwi: return mwi;
  }
  return mwi;  // unreachable
}

arith::OpCounts PipelineResult::total_ops() const noexcept {
  arith::OpCounts total;
  for (const arith::OpCounts& o : ops) total += o;
  return total;
}

void warm_stage_tables(Stage s, const arith::StageArithConfig& cfg) {
  if (cfg.is_exact()) return;
  (void)arith::get_multiplier(cfg.mult);
  switch (s) {
    case Stage::Lpf:
      for (const int c : dsp::pt::kLpfTaps) {
        if (c != 0) (void)arith::get_signed_coeff_products(cfg.mult, c);
      }
      break;
    case Stage::Hpf:
      for (const int c : dsp::pt::kHpfTaps) {
        if (c != 0) (void)arith::get_signed_coeff_products(cfg.mult, c);
      }
      break;
    case Stage::Der:
      for (const int c : dsp::pt::kDerTaps) {
        if (c != 0) (void)arith::get_signed_coeff_products(cfg.mult, c);
      }
      break;
    case Stage::Sqr:
      (void)arith::get_square_products(cfg.mult);
      break;
    case Stage::Mwi:
      break;  // adder-only: nothing to tabulate
  }
}

void warm_pipeline_tables(const PipelineConfig& cfg) {
  for (int s = 0; s < kNumStages; ++s) {
    warm_stage_tables(static_cast<Stage>(s), cfg.stage[static_cast<std::size_t>(s)]);
  }
}

std::vector<i32> run_stage(Stage s, const arith::StageArithConfig& cfg,
                           std::span<const i32> input, arith::OpCounts* ops) {
  const std::unique_ptr<arith::Kernel> kernel = arith::make_kernel(cfg);
  // The whole record as a single chunk through the streaming core: the batch
  // path is a thin wrapper over the same resumable stage it serves.
  std::vector<i32> out = StageProcessor(s, *kernel).process_chunk(input);
  if (ops != nullptr) *ops = kernel->counts();
  return out;
}

PanTompkinsPipeline::PanTompkinsPipeline(const PipelineConfig& cfg) : cfg_(cfg) {}

PipelineResult PanTompkinsPipeline::run_filters(std::span<const i32> adu) const {
  PipelineResult out;
  out.lpf = run_stage(Stage::Lpf, cfg_.stage[0], adu, &out.ops[0]);
  out.hpf = run_stage(Stage::Hpf, cfg_.stage[1], out.lpf, &out.ops[1]);
  out.der = run_stage(Stage::Der, cfg_.stage[2], out.hpf, &out.ops[2]);
  out.sqr = run_stage(Stage::Sqr, cfg_.stage[3], out.der, &out.ops[3]);
  out.mwi = run_stage(Stage::Mwi, cfg_.stage[4], out.sqr, &out.ops[4]);
  return out;
}

PipelineResult PanTompkinsPipeline::run(std::span<const i32> adu) const {
  PipelineResult out = run_filters(adu);
  out.detection = detect_qrs(out.mwi, out.hpf, adu, cfg_.detector);
  return out;
}

}  // namespace xbs::pantompkins
