#include "xbs/pantompkins/detector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace xbs::pantompkins {
namespace {

/// Candidate fiducial marks: strict local maxima of the MWI signal with a
/// minimum separation; among closer peaks the larger survives.
std::vector<std::size_t> fiducial_marks(std::span<const i32> mwi, int min_separation) {
  std::vector<std::size_t> cand;
  for (std::size_t i = 1; i + 1 < mwi.size(); ++i) {
    if (mwi[i] > mwi[i - 1] && mwi[i] >= mwi[i + 1]) cand.push_back(i);
  }
  // Enforce separation, keeping the taller peak.
  std::vector<std::size_t> out;
  for (const std::size_t c : cand) {
    if (!out.empty() &&
        c - out.back() < static_cast<std::size_t>(min_separation)) {
      if (mwi[c] > mwi[out.back()]) out.back() = c;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Index of the maximum of \p v in [lo, hi] (clamped); returns lo if empty.
std::size_t argmax_in(std::span<const i32> v, std::ptrdiff_t lo, std::ptrdiff_t hi) {
  lo = std::max<std::ptrdiff_t>(lo, 0);
  hi = std::min<std::ptrdiff_t>(hi, static_cast<std::ptrdiff_t>(v.size()) - 1);
  std::size_t best = static_cast<std::size_t>(std::max<std::ptrdiff_t>(lo, 0));
  for (std::ptrdiff_t i = lo; i <= hi; ++i) {
    if (v[static_cast<std::size_t>(i)] > v[best]) best = static_cast<std::size_t>(i);
  }
  return best;
}

/// Peak steepness proxy: max |first difference| of the MWI input's rising
/// edge near the fiducial mark.
double rising_slope(std::span<const i32> mwi, std::size_t peak, int lookback) {
  double slope = 0.0;
  const std::ptrdiff_t lo =
      std::max<std::ptrdiff_t>(1, static_cast<std::ptrdiff_t>(peak) - lookback);
  for (std::ptrdiff_t i = lo; i <= static_cast<std::ptrdiff_t>(peak); ++i) {
    slope = std::max(slope, static_cast<double>(mwi[static_cast<std::size_t>(i)]) -
                                static_cast<double>(mwi[static_cast<std::size_t>(i) - 1]));
  }
  return slope;
}

struct Thresholds {
  double spk = 0.0;  ///< running signal-peak estimate
  double npk = 0.0;  ///< running noise-peak estimate

  [[nodiscard]] double threshold1(double coeff) const noexcept {
    return npk + coeff * (spk - npk);
  }
  void signal_update(double peak) noexcept { spk = 0.125 * peak + 0.875 * spk; }
  void noise_update(double peak) noexcept { npk = 0.125 * peak + 0.875 * npk; }
};

}  // namespace

DetectionResult detect_qrs(std::span<const i32> mwi, std::span<const i32> hpf,
                           std::span<const i32> raw, const DetectorParams& p) {
  if (mwi.size() != hpf.size() || mwi.size() != raw.size()) {
    throw std::invalid_argument("detect_qrs: signal size mismatch");
  }
  DetectionResult result;
  if (mwi.size() < 8) return result;

  const std::vector<std::size_t> marks = fiducial_marks(mwi, p.refractory_samples / 2);

  // Threshold training on the first two seconds.
  const std::size_t train = std::min<std::size_t>(
      mwi.size(), static_cast<std::size_t>(std::llround(2.0 * p.fs_hz)));
  double train_max = 0.0, train_mean = 0.0;
  for (std::size_t i = 0; i < train; ++i) {
    train_max = std::max(train_max, static_cast<double>(mwi[i]));
    train_mean += static_cast<double>(mwi[i]);
  }
  train_mean /= static_cast<double>(std::max<std::size_t>(train, 1));
  Thresholds th_i{0.4 * train_max, 0.7 * train_mean};
  Thresholds th_f{0.0, 0.0};
  {
    double fmax = 0.0, fmean = 0.0;
    for (std::size_t i = 0; i < train; ++i) {
      fmax = std::max(fmax, static_cast<double>(hpf[i]));
      fmean += std::abs(static_cast<double>(hpf[i]));
    }
    fmean /= static_cast<double>(std::max<std::size_t>(train, 1));
    th_f = Thresholds{0.4 * fmax, 0.7 * fmean};
  }

  std::ptrdiff_t last_accept = -1;       // MWI index of last accepted QRS
  double last_slope = 0.0;               // rising slope of last accepted QRS
  std::vector<double> rr_history;        // last accepted RR intervals
  std::vector<std::size_t> pending;      // candidate marks since last accept (for search-back)

  auto rr_mean = [&]() -> double {
    if (rr_history.empty()) return p.fs_hz;  // prior: 60 bpm
    const std::size_t n = std::min<std::size_t>(rr_history.size(), 8);
    double s = 0.0;
    for (std::size_t i = rr_history.size() - n; i < rr_history.size(); ++i) s += rr_history[i];
    return s / static_cast<double>(n);
  };

  /// Locate the band-passed peak corresponding to a fiducial mark and report
  /// raw-domain location; returns alignment error in samples.
  auto locate = [&](std::size_t mark, std::size_t& hpf_idx, std::size_t& raw_idx) -> int {
    const std::ptrdiff_t expect =
        static_cast<std::ptrdiff_t>(mark) - p.mwi_hpf_lag_samples;
    hpf_idx = argmax_in(hpf, expect - p.hpf_search_halfwidth, expect + p.hpf_search_halfwidth);
    const std::ptrdiff_t est =
        static_cast<std::ptrdiff_t>(hpf_idx) - p.raw_delay_samples;
    raw_idx = argmax_in(raw, est - p.raw_refine_halfwidth, est + p.raw_refine_halfwidth);
    return static_cast<int>(std::abs(static_cast<std::ptrdiff_t>(hpf_idx) - expect));
  };

  auto accept = [&](PeakEvent ev) {
    if (last_accept >= 0) {
      rr_history.push_back(static_cast<double>(ev.mwi_index) -
                           static_cast<double>(last_accept));
    }
    last_accept = static_cast<std::ptrdiff_t>(ev.mwi_index);
    last_slope = rising_slope(mwi, ev.mwi_index, p.refractory_samples / 2);
    th_i.signal_update(static_cast<double>(ev.mwi_value));
    th_f.signal_update(static_cast<double>(ev.hpf_value));
    result.peaks.push_back(ev.raw_index);
    result.trace.push_back(ev);
    pending.clear();
  };

  for (const std::size_t mark : marks) {
    PeakEvent ev;
    ev.mwi_index = mark;
    ev.mwi_value = mwi[mark];

    if (last_accept >= 0 &&
        static_cast<std::ptrdiff_t>(mark) - last_accept <
            static_cast<std::ptrdiff_t>(p.refractory_samples)) {
      continue;  // inside the absolute refractory: physiologically impossible
    }

    const double thr1 = th_i.threshold1(p.threshold_coeff);
    if (static_cast<double>(ev.mwi_value) > thr1) {
      // T-wave discrimination inside the 360 ms zone.
      if (last_accept >= 0 &&
          static_cast<std::ptrdiff_t>(mark) - last_accept <
              static_cast<std::ptrdiff_t>(p.t_wave_window_samples)) {
        const double slope = rising_slope(mwi, mark, p.refractory_samples / 2);
        if (slope < p.t_wave_slope_ratio * last_slope) {
          ev.decision = PeakDecision::TWave;
          th_i.noise_update(static_cast<double>(ev.mwi_value));
          result.trace.push_back(ev);
          pending.push_back(mark);
          continue;
        }
      }
      // HPF/MWI alignment consistency (Fig. 13).
      std::size_t hpf_idx = 0, raw_idx = 0;
      const int misalign = locate(mark, hpf_idx, raw_idx);
      ev.hpf_index = hpf_idx;
      ev.raw_index = raw_idx;
      ev.hpf_value = hpf[hpf_idx];
      const double thrf = th_f.threshold1(p.threshold_coeff);
      if (misalign > p.alignment_tolerance ||
          static_cast<double>(ev.hpf_value) <= thrf) {
        ev.decision = PeakDecision::MisalignedOmitted;
        result.trace.push_back(ev);
        pending.push_back(mark);
        continue;
      }
      ev.decision = PeakDecision::Accepted;
      accept(ev);
    } else {
      ev.decision = PeakDecision::BelowThreshold;
      th_i.noise_update(static_cast<double>(ev.mwi_value));
      std::size_t hpf_idx = 0, raw_idx = 0;
      (void)locate(mark, hpf_idx, raw_idx);
      th_f.noise_update(static_cast<double>(hpf[hpf_idx]));
      result.trace.push_back(ev);
      pending.push_back(mark);
    }

    // RR search-back: if the gap since the last beat exceeds the missed-beat
    // limit, revisit the pending candidates with the relaxed threshold.
    if (last_accept >= 0 && !pending.empty()) {
      const double limit = p.search_back_factor * rr_mean();
      if (static_cast<double>(mark) - static_cast<double>(last_accept) > limit) {
        std::size_t best = pending.front();
        for (const std::size_t c : pending) {
          if (mwi[c] > mwi[best]) best = c;
        }
        const double relaxed = p.search_back_threshold * th_i.threshold1(p.threshold_coeff);
        if (static_cast<double>(mwi[best]) > relaxed &&
            static_cast<std::ptrdiff_t>(best) - last_accept >=
                static_cast<std::ptrdiff_t>(p.refractory_samples)) {
          PeakEvent sb;
          sb.mwi_index = best;
          sb.mwi_value = mwi[best];
          std::size_t hpf_idx = 0, raw_idx = 0;
          const int misalign = locate(best, hpf_idx, raw_idx);
          sb.hpf_index = hpf_idx;
          sb.raw_index = raw_idx;
          sb.hpf_value = hpf[hpf_idx];
          if (misalign <= p.alignment_tolerance) {
            sb.decision = PeakDecision::SearchBackRecovered;
            accept(sb);
          }
        }
      }
    }
  }

  // Detections are appended in acceptance order; search-back can insert
  // out-of-order indices.
  std::sort(result.peaks.begin(), result.peaks.end());
  result.peaks.erase(std::unique(result.peaks.begin(), result.peaks.end()),
                     result.peaks.end());
  return result;
}

}  // namespace xbs::pantompkins
