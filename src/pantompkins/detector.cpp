#include "xbs/pantompkins/detector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace xbs::pantompkins {

bool DetectorParams::valid() const noexcept {
  return std::isfinite(fs_hz) && fs_hz > 0.0 && refractory_samples >= 0 &&
         t_wave_window_samples >= 0 && t_wave_slope_ratio >= 0.0 && threshold_coeff >= 0.0 &&
         search_back_factor >= 0.0 && search_back_threshold >= 0.0 &&
         mwi_hpf_lag_samples >= 0 && alignment_tolerance >= 0 && hpf_search_halfwidth >= 0 &&
         raw_delay_samples >= 0 && raw_refine_halfwidth >= 0;
}

// ------------------------------------------------------------ OnlineDetector
//
// The decision logic is sequential in fiducial-mark order; everything it
// reads lies within a bounded window around the mark being judged (threshold
// training on the first two seconds aside). Streaming therefore reduces to
// bookkeeping about *when* a piece of work is final:
//  - index i can be tested as a local maximum once i+1 has arrived,
//  - a candidate mark is final once the stream is min_sep past it (no later
//    candidate can replace it in the separation merge),
//  - a final mark can be judged once the stream covers its HPF/raw search
//    windows (lookahead_), or unconditionally at flush, where the batch
//    path's clamp-to-record-end applies.
// Every threshold/RR/search-back rule is a verbatim port of the batch loop,
// so any chunking reproduces detect_qrs() bit for bit.

OnlineDetector::OnlineDetector(const DetectorParams& params, bool keep_result)
    : p_(params), keep_result_(keep_result) {
  if (!p_.valid()) {
    throw std::invalid_argument("OnlineDetector: invalid DetectorParams");
  }
  min_sep_ = p_.refractory_samples / 2;
  train_target_ = static_cast<std::size_t>(std::llround(2.0 * p_.fs_hz));
  const std::ptrdiff_t rel_hpf =
      static_cast<std::ptrdiff_t>(p_.hpf_search_halfwidth) - p_.mwi_hpf_lag_samples;
  const std::ptrdiff_t rel_raw = rel_hpf - p_.raw_delay_samples + p_.raw_refine_halfwidth;
  lookahead_ = static_cast<std::size_t>(std::max<std::ptrdiff_t>({0, rel_hpf, rel_raw}));
  const std::ptrdiff_t back = std::max<std::ptrdiff_t>(
      {1, p_.mwi_hpf_lag_samples + p_.hpf_search_halfwidth,
       p_.mwi_hpf_lag_samples + p_.hpf_search_halfwidth + p_.raw_delay_samples +
           p_.raw_refine_halfwidth,
       p_.refractory_samples / 2 + 1});
  back_need_ = static_cast<std::size_t>(back) + 4;
}

std::size_t OnlineDetector::argmax_in(const std::vector<i32>& v, std::ptrdiff_t lo,
                                      std::ptrdiff_t hi) const {
  lo = std::max<std::ptrdiff_t>(lo, 0);
  hi = std::min<std::ptrdiff_t>(hi, static_cast<std::ptrdiff_t>(n_) - 1);
  std::size_t best = static_cast<std::size_t>(std::max<std::ptrdiff_t>(lo, 0));
  for (std::ptrdiff_t i = lo; i <= hi; ++i) {
    if (v[static_cast<std::size_t>(i) - base_] > v[best - base_]) {
      best = static_cast<std::size_t>(i);
    }
  }
  return best;
}

double OnlineDetector::rising_slope(std::size_t peak, int lookback) const {
  double slope = 0.0;
  const std::ptrdiff_t lo =
      std::max<std::ptrdiff_t>(1, static_cast<std::ptrdiff_t>(peak) - lookback);
  for (std::ptrdiff_t i = lo; i <= static_cast<std::ptrdiff_t>(peak); ++i) {
    slope = std::max(slope, static_cast<double>(mwi_at(static_cast<std::size_t>(i))) -
                                static_cast<double>(mwi_at(static_cast<std::size_t>(i) - 1)));
  }
  return slope;
}

double OnlineDetector::rr_mean() const {
  if (rr_history_.empty()) return p_.fs_hz;  // prior: 60 bpm
  const std::size_t n = std::min<std::size_t>(rr_history_.size(), 8);
  double s = 0.0;
  for (std::size_t i = rr_history_.size() - n; i < rr_history_.size(); ++i) s += rr_history_[i];
  return s / static_cast<double>(n);
}

void OnlineDetector::train_now() {
  // Threshold training on the first two seconds (or the whole record when it
  // is shorter — the flush path). History has not been trimmed yet: trimming
  // is gated on trained_.
  const std::size_t train = std::min<std::size_t>(n_, train_target_);
  double train_max = 0.0, train_mean = 0.0;
  for (std::size_t i = 0; i < train; ++i) {
    train_max = std::max(train_max, static_cast<double>(mwi_at(i)));
    train_mean += static_cast<double>(mwi_at(i));
  }
  train_mean /= static_cast<double>(std::max<std::size_t>(train, 1));
  th_i_ = Thresholds{0.4 * train_max, 0.7 * train_mean};
  double fmax = 0.0, fmean = 0.0;
  for (std::size_t i = 0; i < train; ++i) {
    fmax = std::max(fmax, static_cast<double>(hpf_at(i)));
    fmean += std::abs(static_cast<double>(hpf_at(i)));
  }
  fmean /= static_cast<double>(std::max<std::size_t>(train, 1));
  th_f_ = Thresholds{0.4 * fmax, 0.7 * fmean};
  trained_ = true;
}

int OnlineDetector::locate(std::size_t mark, std::size_t& hpf_idx, std::size_t& raw_idx) const {
  const std::ptrdiff_t expect =
      static_cast<std::ptrdiff_t>(mark) - p_.mwi_hpf_lag_samples;
  hpf_idx = argmax_in(hpf_, expect - p_.hpf_search_halfwidth, expect + p_.hpf_search_halfwidth);
  const std::ptrdiff_t est =
      static_cast<std::ptrdiff_t>(hpf_idx) - p_.raw_delay_samples;
  raw_idx = argmax_in(raw_, est - p_.raw_refine_halfwidth, est + p_.raw_refine_halfwidth);
  return static_cast<int>(std::abs(static_cast<std::ptrdiff_t>(hpf_idx) - expect));
}

void OnlineDetector::emit(const PeakEvent& ev) {
  fresh_.push_back(ev);
  if (keep_result_) result_.trace.push_back(ev);
}

void OnlineDetector::accept(PeakEvent ev, double slope) {
  if (last_accept_ >= 0) {
    rr_history_.push_back(static_cast<double>(ev.mwi_index) -
                          static_cast<double>(last_accept_));
    // rr_mean() only ever reads the last 8 intervals; cap the history so a
    // long-lived session stays O(1).
    if (rr_history_.size() > 8) rr_history_.erase(rr_history_.begin());
  }
  last_accept_ = static_cast<std::ptrdiff_t>(ev.mwi_index);
  last_slope_ = slope;
  th_i_.signal_update(static_cast<double>(ev.mwi_value));
  th_f_.signal_update(static_cast<double>(ev.hpf_value));
  if (keep_result_) {
    // Keep peaks sorted and unique at all times (search-back accepts out of
    // order) — same final content as the batch path's end-of-run sort+unique.
    const auto it =
        std::lower_bound(result_.peaks.begin(), result_.peaks.end(), ev.raw_index);
    if (it == result_.peaks.end() || *it != ev.raw_index) {
      result_.peaks.insert(it, ev.raw_index);
    }
  }
  emit(ev);
  pending_.active = false;
}

void OnlineDetector::note_rejected(std::size_t mark) {
  // Maintain the argmax over the rejected marks since the last accepted
  // beat (strict > mirrors the batch scan: earliest wins ties), snapshotting
  // everything a later search-back acceptance would read — the values are
  // pure functions of the signal around the mark, which is fully resident
  // right now, so recomputing them later would yield the same bits.
  const i64 v = mwi_at(mark);
  if (pending_.active && v <= pending_.mwi_value) return;
  pending_.active = true;
  pending_.mark = mark;
  pending_.mwi_value = v;
  pending_.slope = rising_slope(mark, p_.refractory_samples / 2);
  pending_.misalign = locate(mark, pending_.hpf_idx, pending_.raw_idx);
  pending_.hpf_value = hpf_at(pending_.hpf_idx);
}

void OnlineDetector::on_candidate(std::size_t c) {
  // The separation merge: among candidates closer than min_sep the taller
  // survives; a candidate min_sep or further away finalizes its predecessor.
  if (have_cand_ && c - cand_ < static_cast<std::size_t>(min_sep_)) {
    if (mwi_at(c) > mwi_at(cand_)) cand_ = c;
  } else {
    if (have_cand_) marks_.push_back(cand_);
    cand_ = c;
    have_cand_ = true;
  }
}

void OnlineDetector::process_mark(std::size_t mark) {
  PeakEvent ev;
  ev.mwi_index = mark;
  ev.mwi_value = mwi_at(mark);

  if (last_accept_ >= 0 &&
      static_cast<std::ptrdiff_t>(mark) - last_accept_ <
          static_cast<std::ptrdiff_t>(p_.refractory_samples)) {
    return;  // inside the absolute refractory: physiologically impossible
  }

  const double thr1 = th_i_.threshold1(p_.threshold_coeff);
  if (static_cast<double>(ev.mwi_value) > thr1) {
    // T-wave discrimination inside the 360 ms zone.
    if (last_accept_ >= 0 &&
        static_cast<std::ptrdiff_t>(mark) - last_accept_ <
            static_cast<std::ptrdiff_t>(p_.t_wave_window_samples)) {
      const double slope = rising_slope(mark, p_.refractory_samples / 2);
      if (slope < p_.t_wave_slope_ratio * last_slope_) {
        ev.decision = PeakDecision::TWave;
        th_i_.noise_update(static_cast<double>(ev.mwi_value));
        emit(ev);
        note_rejected(mark);
        return;
      }
    }
    // HPF/MWI alignment consistency (Fig. 13).
    std::size_t hpf_idx = 0, raw_idx = 0;
    const int misalign = locate(mark, hpf_idx, raw_idx);
    ev.hpf_index = hpf_idx;
    ev.raw_index = raw_idx;
    ev.hpf_value = hpf_at(hpf_idx);
    const double thrf = th_f_.threshold1(p_.threshold_coeff);
    if (misalign > p_.alignment_tolerance ||
        static_cast<double>(ev.hpf_value) <= thrf) {
      ev.decision = PeakDecision::MisalignedOmitted;
      emit(ev);
      note_rejected(mark);
      return;
    }
    ev.decision = PeakDecision::Accepted;
    accept(ev, rising_slope(mark, p_.refractory_samples / 2));
  } else {
    ev.decision = PeakDecision::BelowThreshold;
    th_i_.noise_update(static_cast<double>(ev.mwi_value));
    std::size_t hpf_idx = 0, raw_idx = 0;
    (void)locate(mark, hpf_idx, raw_idx);
    th_f_.noise_update(static_cast<double>(hpf_at(hpf_idx)));
    emit(ev);
    note_rejected(mark);
  }

  // RR search-back: if the gap since the last beat exceeds the missed-beat
  // limit, revisit the tallest pending candidate with the relaxed threshold.
  if (last_accept_ >= 0 && pending_.active) {
    const double limit = p_.search_back_factor * rr_mean();
    if (static_cast<double>(mark) - static_cast<double>(last_accept_) > limit) {
      const double relaxed = p_.search_back_threshold * th_i_.threshold1(p_.threshold_coeff);
      if (static_cast<double>(pending_.mwi_value) > relaxed &&
          static_cast<std::ptrdiff_t>(pending_.mark) - last_accept_ >=
              static_cast<std::ptrdiff_t>(p_.refractory_samples)) {
        if (pending_.misalign <= p_.alignment_tolerance) {
          PeakEvent sb;
          sb.mwi_index = pending_.mark;
          sb.mwi_value = pending_.mwi_value;
          sb.hpf_index = pending_.hpf_idx;
          sb.raw_index = pending_.raw_idx;
          sb.hpf_value = pending_.hpf_value;
          sb.decision = PeakDecision::SearchBackRecovered;
          accept(sb, pending_.slope);
        }
      }
    }
  }
}

void OnlineDetector::advance(bool flushing) {
  // 1. Scan newly covered indices for candidate fiducial marks (strict local
  //    maxima need the right neighbour, hence the i+1 < n guard).
  while (scan_ + 1 < n_) {
    if (mwi_at(scan_) > mwi_at(scan_ - 1) && mwi_at(scan_) >= mwi_at(scan_ + 1)) {
      on_candidate(scan_);
    }
    ++scan_;
  }
  // 2. Finalize the merged candidate once no future candidate can replace it
  //    (all future candidates are at >= scan_), or unconditionally at flush.
  if (have_cand_ &&
      (flushing || scan_ - cand_ >= static_cast<std::size_t>(min_sep_))) {
    marks_.push_back(cand_);
    have_cand_ = false;
  }
  // 3. Judge finalized marks in order. The batch path does nothing on
  //    records shorter than 8 samples, and trains before the first mark.
  if (!trained_ || n_ < 8) return;
  while (!marks_.empty()) {
    const std::size_t mark = marks_.front();
    if (!flushing && n_ < mark + lookahead_ + 1) break;  // search window not covered yet
    marks_.pop_front();
    process_mark(mark);
  }
}

void OnlineDetector::maybe_trim() {
  if (!trained_) return;  // training still needs the record head
  // The search-back candidate does not pin the window: everything it would
  // read was snapshotted at rejection time (note_rejected).
  std::size_t active = scan_ > 0 ? scan_ - 1 : 0;
  if (have_cand_) active = std::min(active, cand_);
  if (!marks_.empty()) active = std::min(active, marks_.front());
  const std::size_t floor = active > back_need_ ? active - back_need_ : 0;
  if (floor <= base_ + 1024) return;  // trim in blocks, not per push
  const auto drop = static_cast<std::ptrdiff_t>(floor - base_);
  mwi_.erase(mwi_.begin(), mwi_.begin() + drop);
  hpf_.erase(hpf_.begin(), hpf_.begin() + drop);
  raw_.erase(raw_.begin(), raw_.begin() + drop);
  base_ = floor;
}

std::span<const PeakEvent> OnlineDetector::push(std::span<const i32> mwi,
                                                std::span<const i32> hpf,
                                                std::span<const i32> raw) {
  if (flushed_) throw std::logic_error("OnlineDetector: push after flush");
  if (mwi.size() != hpf.size() || mwi.size() != raw.size()) {
    throw std::invalid_argument("OnlineDetector: chunk size mismatch");
  }
  fresh_.clear();
  mwi_.insert(mwi_.end(), mwi.begin(), mwi.end());
  hpf_.insert(hpf_.end(), hpf.begin(), hpf.end());
  raw_.insert(raw_.end(), raw.begin(), raw.end());
  n_ += mwi.size();
  if (!trained_ && n_ >= train_target_) train_now();
  advance(/*flushing=*/false);
  maybe_trim();
  return fresh_;
}

void OnlineDetector::reset(WarmStart warm) noexcept {
  base_ = 0;
  mwi_.clear();
  hpf_.clear();
  raw_.clear();
  n_ = 0;
  scan_ = 1;
  have_cand_ = false;
  cand_ = 0;
  marks_.clear();
  // Indices restart at zero, so position-anchored state never carries — only
  // the position-free threshold statistics may survive a warm reset.
  last_accept_ = -1;
  pending_ = PendingCandidate{};
  result_.peaks.clear();
  result_.trace.clear();
  fresh_.clear();
  flushed_ = false;
  if (warm == WarmStart::KeepThresholds) return;
  trained_ = false;
  th_i_ = Thresholds{};
  th_f_ = Thresholds{};
  last_slope_ = 0.0;
  rr_history_.clear();
}

std::span<const PeakEvent> OnlineDetector::flush() {
  fresh_.clear();
  if (flushed_) return fresh_;
  flushed_ = true;
  if (n_ < 8) return fresh_;  // batch: records this short yield nothing
  if (!trained_) train_now();
  advance(/*flushing=*/true);
  return fresh_;
}

DetectionResult detect_qrs(std::span<const i32> mwi, std::span<const i32> hpf,
                           std::span<const i32> raw, const DetectorParams& p) {
  if (mwi.size() != hpf.size() || mwi.size() != raw.size()) {
    throw std::invalid_argument("detect_qrs: signal size mismatch");
  }
  OnlineDetector det(p);
  (void)det.push(mwi, hpf, raw);
  (void)det.flush();
  return det.take_result();
}

}  // namespace xbs::pantompkins
