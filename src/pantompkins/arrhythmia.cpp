#include "xbs/pantompkins/arrhythmia.hpp"

#include <algorithm>
#include <cmath>

namespace xbs::pantompkins {

RhythmAnalysis analyze_rhythm(std::span<const std::size_t> peaks, double fs_hz,
                              const RhythmParams& p) {
  RhythmAnalysis out;
  if (peaks.size() < 3 || fs_hz <= 0.0) return out;

  std::vector<double> rr_s;
  rr_s.reserve(peaks.size() - 1);
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    rr_s.push_back(static_cast<double>(peaks[i] - peaks[i - 1]) / fs_hz);
  }

  // --- Event scan with a robust running mean (flagged outliers excluded).
  double rr_mean = 0.0;
  int rr_count = 0;
  std::vector<double> recent_diffs;  // successive |dRR| for the irregularity window
  double prev_rr = rr_s.front();
  for (std::size_t i = 0; i < rr_s.size(); ++i) {
    const double rr = rr_s[i];
    const std::size_t beat = i + 1;
    const double t = static_cast<double>(peaks[beat]) / fs_hz;
    bool flagged = false;
    if (rr_count >= p.warmup_beats) {
      if (rr < p.premature_ratio * rr_mean) {
        out.events.push_back({beat, t, RhythmEventKind::PrematureBeat});
        flagged = true;
      } else if (rr > p.pause_ratio * rr_mean) {
        out.events.push_back({beat, t, RhythmEventKind::Pause});
        flagged = true;
      }
      const double hr = 60.0 / rr;
      if (hr < p.brady_bpm) out.events.push_back({beat, t, RhythmEventKind::Bradycardia});
      if (hr > p.tachy_bpm) out.events.push_back({beat, t, RhythmEventKind::Tachycardia});
    }
    if (!flagged || rr_count < p.warmup_beats) {
      rr_mean = (rr_mean * rr_count + rr) / (rr_count + 1);
      ++rr_count;
    }
    // Windowed RMSSD for irregularity.
    if (i > 0) {
      recent_diffs.push_back((rr - prev_rr) * 1000.0);
      if (static_cast<int>(recent_diffs.size()) > p.irregular_window_beats) {
        recent_diffs.erase(recent_diffs.begin());
      }
      if (static_cast<int>(recent_diffs.size()) == p.irregular_window_beats) {
        double sq = 0.0;
        for (const double d : recent_diffs) sq += d * d;
        const double rmssd = std::sqrt(sq / static_cast<double>(recent_diffs.size()));
        if (rmssd > p.irregular_rmssd_ms) {
          out.events.push_back({beat, t, RhythmEventKind::IrregularRhythm});
          recent_diffs.clear();  // one flag per episode
        }
      }
    }
    prev_rr = rr;
  }

  // --- HRV summary.
  double mean_rr = 0.0;
  for (const double rr : rr_s) mean_rr += rr;
  mean_rr /= static_cast<double>(rr_s.size());
  out.hrv.mean_hr_bpm = 60.0 / mean_rr;
  double var = 0.0;
  for (const double rr : rr_s) var += (rr - mean_rr) * (rr - mean_rr);
  out.hrv.sdnn_ms = std::sqrt(var / static_cast<double>(rr_s.size())) * 1000.0;
  double sq = 0.0;
  int nn50 = 0;
  for (std::size_t i = 1; i < rr_s.size(); ++i) {
    const double d = (rr_s[i] - rr_s[i - 1]) * 1000.0;
    sq += d * d;
    nn50 += (std::abs(d) > 50.0) ? 1 : 0;
  }
  if (rr_s.size() > 1) {
    out.hrv.rmssd_ms = std::sqrt(sq / static_cast<double>(rr_s.size() - 1));
    out.hrv.pnn50_pct = 100.0 * nn50 / static_cast<double>(rr_s.size() - 1);
  }
  return out;
}

}  // namespace xbs::pantompkins
