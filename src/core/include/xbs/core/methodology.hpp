/// \file methodology.hpp
/// \brief The XBioSiP methodology facade (paper Fig. 4): two-stage
/// quality-evaluation-based approximation of a bio-signal processor.
///
/// The flow, end to end:
///  1. characterize the elementary module library (Table 1 data);
///  2. analyze each application stage's error resilience (§4.2);
///  3. run the design generation methodology on the *data pre-processing*
///     section (LPF + HPF) against a signal-quality constraint (PSNR);
///  4. run it again on the *signal processing* section (DER + SQR + MWI)
///     against the final constraint (peak-detection accuracy), with the
///     pre-processing design fixed underneath;
///  5. characterize the resulting approximate bio-signal processor.
#pragma once

#include <vector>

#include "xbs/core/resilience.hpp"
#include "xbs/ecg/record.hpp"
#include "xbs/explore/algorithm1.hpp"
#include "xbs/explore/design.hpp"
#include "xbs/explore/energy_model.hpp"

namespace xbs::core {

/// The two user-defined quality constraints (paper §4: "evaluate the quality
/// of output signals at two stages to ensure fine-grained quality-control").
struct QualityConstraints {
  /// Pre-processing constraint on the HPF output signal. The paper uses
  /// PSNR >= 15 dB for its NSRDB scaling; with this library's full-scale
  /// 16-bit front-end the equivalent discrimination point sits at ~30 dB
  /// (see EXPERIMENTS.md).
  double preproc_psnr_db = 30.0;
  /// Final constraint on peak-detection accuracy (Fig. 12's 95 % line).
  double final_accuracy_pct = 95.0;
};

/// Methodology configuration.
struct MethodologyConfig {
  QualityConstraints constraints;
  explore::ModuleLists lists;  ///< cheapest-first; default {Approx5} x {V1}
  explore::StageEnergyModel::Mode energy_mode = explore::StageEnergyModel::Mode::Optimized;
  bool run_resilience_analysis = true;
};

/// Full methodology output.
struct MethodologyResult {
  std::vector<StageResilience> resilience;    ///< per-stage profiles (step 2)
  explore::Algorithm1Result preproc;          ///< step 3
  explore::Algorithm1Result sigproc;          ///< step 4
  explore::Design final_design;               ///< committed approximate processor
  double final_accuracy_pct = 0.0;
  double preproc_psnr_db = 0.0;
  double energy_reduction = 1.0;              ///< vs the accurate processor
  int total_evaluations = 0;                  ///< behavioural evaluations spent
};

/// Run the whole methodology on the given workload records.
[[nodiscard]] MethodologyResult run_methodology(const MethodologyConfig& cfg,
                                                const std::vector<ecg::DigitizedRecord>& records);

}  // namespace xbs::core
