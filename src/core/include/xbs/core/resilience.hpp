/// \file resilience.hpp
/// \brief Per-stage error-resilience analysis (paper §4.2, Figs. 2 and 8).
///
/// For every application stage, sweep the number of approximated LSBs with
/// the least-energy elementary modules and record, per point: the hardware
/// reductions (area/latency/power/energy, both synthesis-optimized and
/// naive), the stage output's structural similarity to the accurate stage
/// output, the PSNR of the pre-processing (HPF) signal, and the end-to-end
/// peak-detection accuracy. The per-stage maximum energy savings feed the
/// stage ordering of Algorithm 1.
#pragma once

#include <vector>

#include "xbs/ecg/record.hpp"
#include "xbs/explore/design.hpp"
#include "xbs/explore/energy_model.hpp"
#include "xbs/hwmodel/block_cost.hpp"

namespace xbs::core {

/// One sweep point of the resilience analysis.
struct ResiliencePoint {
  int lsbs = 0;
  hwmodel::Reductions optimized;  ///< reductions from the synthesis-optimized model
  hwmodel::Reductions naive;      ///< reductions from the structural model
  double stage_ssim = 1.0;        ///< SSIM of this stage's own output vs accurate
  double hpf_psnr_db = 0.0;       ///< PSNR of the pre-processing output vs accurate
  double hpf_ssim = 1.0;          ///< SSIM of the pre-processing output vs accurate
  double accuracy_pct = 100.0;    ///< end-to-end peak-detection accuracy
};

/// Full resilience profile of one stage.
struct StageResilience {
  pantompkins::Stage stage = pantompkins::Stage::Lpf;
  std::vector<ResiliencePoint> points;
  /// Error-resilience threshold: the largest swept LSB count that keeps the
  /// peak-detection accuracy at 100 % (paper: 14 for the LPF).
  int threshold_lsbs = 0;
  /// Maximum energy savings over the sweep (input to Algorithm 1's sort).
  double max_energy_savings = 1.0;
};

/// Sweep one stage. \p records is the evaluation workload; \p lsb_list the
/// ascending sweep (use explore::default_lsb_list for the paper's ranges).
[[nodiscard]] StageResilience analyze_stage_resilience(
    pantompkins::Stage stage, const std::vector<ecg::DigitizedRecord>& records,
    const std::vector<int>& lsb_list, const explore::StageEnergyModel& energy,
    AdderKind add_kind = AdderKind::Approx5, MultKind mult_kind = MultKind::V1);

/// Sweep all five stages with their default LSB lists.
[[nodiscard]] std::vector<StageResilience> analyze_all_stages(
    const std::vector<ecg::DigitizedRecord>& records, const explore::StageEnergyModel& energy,
    AdderKind add_kind = AdderKind::Approx5, MultKind mult_kind = MultKind::V1);

}  // namespace xbs::core
