/// \file paper_configs.hpp
/// \brief The named hardware configurations of the paper's evaluation
/// (Fig. 12's table: A1, A2, B1..B14).
#pragma once

#include <array>
#include <string_view>

#include "xbs/explore/design.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::core {

/// One row of Fig. 12's configuration table: per-stage approximated LSBs
/// {LPF, HPF, DER, SQR, MWI} with ApproxAdd5 + AppMultV1 modules.
struct NamedConfig {
  std::string_view name;
  pantompkins::LsbVector lsbs{};
};

/// B1..B14 exactly as printed in the paper's Fig. 12 table.
[[nodiscard]] const std::array<NamedConfig, 14>& fig12_b_configs() noexcept;

/// Convert a named configuration to a design (stages with 0 LSBs omitted).
[[nodiscard]] explore::Design to_design(const NamedConfig& cfg);

}  // namespace xbs::core
