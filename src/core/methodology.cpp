#include "xbs/core/methodology.hpp"

#include "xbs/explore/evaluator.hpp"
#include "xbs/metrics/signal_quality.hpp"

namespace xbs::core {
namespace {

using pantompkins::Stage;

explore::StageSpace make_space(Stage s, const std::vector<StageResilience>& resilience) {
  explore::StageSpace sp;
  sp.stage = s;
  sp.lsb_list_ascending = explore::default_lsb_list(s);
  for (const auto& r : resilience) {
    if (r.stage == s) sp.max_energy_savings = r.max_energy_savings;
  }
  return sp;
}

}  // namespace

MethodologyResult run_methodology(const MethodologyConfig& cfg,
                                  const std::vector<ecg::DigitizedRecord>& records) {
  MethodologyResult result;
  const explore::StageEnergyModel energy(cfg.energy_mode);

  // Step 2: error-resilience analysis (provides EnergySavings for the sort).
  if (cfg.run_resilience_analysis) {
    result.resilience = analyze_all_stages(records, energy, cfg.lists.adders.front(),
                                           cfg.lists.mults.front());
  } else {
    // Fall back to energy-model-only savings estimates (no quality sweep).
    for (const Stage s : pantompkins::kAllStages) {
      StageResilience r;
      r.stage = s;
      const int max_k = explore::default_lsb_list(s).back();
      const explore::StageDesign sd{s, max_k, cfg.lists.adders.front(),
                                    cfg.lists.mults.front()};
      r.max_energy_savings = energy.stage_energy_reduction(s, sd.arith_config());
      result.resilience.push_back(r);
    }
  }

  // Step 3: approximations in data pre-processing (LPF + HPF), PSNR constraint.
  {
    explore::PreprocPsnrEvaluator eval(records);
    std::vector<explore::StageSpace> spaces{make_space(Stage::Lpf, result.resilience),
                                            make_space(Stage::Hpf, result.resilience)};
    result.preproc = explore::design_generation(std::move(spaces), cfg.lists, eval, energy,
                                                cfg.constraints.preproc_psnr_db);
    result.total_evaluations += result.preproc.evaluations;
  }

  // Step 4: approximations in signal processing (DER + SQR + MWI), accuracy
  // constraint, pre-processing design fixed underneath.
  {
    explore::AccuracyEvaluator eval(records, result.preproc.best);
    std::vector<explore::StageSpace> spaces{make_space(Stage::Der, result.resilience),
                                            make_space(Stage::Sqr, result.resilience),
                                            make_space(Stage::Mwi, result.resilience)};
    result.sigproc = explore::design_generation(std::move(spaces), cfg.lists, eval, energy,
                                                cfg.constraints.final_accuracy_pct);
    result.total_evaluations += result.sigproc.evaluations;
  }

  // Step 5: characterize the approximate bio-signal processor.
  result.final_design = explore::merge(result.preproc.best, result.sigproc.best);
  result.energy_reduction = energy.energy_reduction(result.final_design);
  {
    explore::PreprocPsnrEvaluator psnr_eval(records);
    result.preproc_psnr_db = psnr_eval.evaluate(result.final_design);
    explore::AccuracyEvaluator acc_eval(records);
    result.final_accuracy_pct = acc_eval.evaluate(result.final_design);
    result.total_evaluations += 2;
  }
  return result;
}

}  // namespace xbs::core
