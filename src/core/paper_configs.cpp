#include "xbs/core/paper_configs.hpp"

namespace xbs::core {

const std::array<NamedConfig, 14>& fig12_b_configs() noexcept {
  // Paper Fig. 12, right-hand table: LSBs per {LPF, HPF, DER, SQR, MWI}.
  static const std::array<NamedConfig, 14> configs = {{
      {"B1", {10, 8, 0, 0, 0}},
      {"B2", {10, 12, 0, 0, 0}},
      {"B3", {12, 8, 0, 0, 0}},
      {"B4", {12, 12, 0, 0, 0}},
      {"B5", {0, 0, 2, 8, 16}},
      {"B6", {0, 0, 4, 8, 16}},
      {"B7", {10, 8, 2, 8, 16}},
      {"B8", {10, 8, 4, 8, 16}},
      {"B9", {10, 12, 2, 8, 16}},
      {"B10", {10, 12, 4, 8, 16}},
      {"B11", {12, 8, 2, 8, 16}},
      {"B12", {12, 8, 4, 8, 16}},
      {"B13", {12, 12, 2, 8, 16}},
      {"B14", {12, 12, 4, 8, 16}},
  }};
  return configs;
}

explore::Design to_design(const NamedConfig& cfg) {
  explore::Design d;
  for (int s = 0; s < pantompkins::kNumStages; ++s) {
    const int k = cfg.lsbs[static_cast<std::size_t>(s)];
    if (k > 0) {
      d.push_back(explore::StageDesign{static_cast<pantompkins::Stage>(s), k,
                                       AdderKind::Approx5, MultKind::V1});
    }
  }
  return d;
}

}  // namespace xbs::core
