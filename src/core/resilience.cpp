#include "xbs/core/resilience.hpp"

#include <algorithm>

#include "xbs/metrics/peaks.hpp"
#include "xbs/metrics/signal_quality.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::core {
namespace {

using pantompkins::PanTompkinsPipeline;
using pantompkins::Stage;

std::vector<double> to_double(const std::vector<i32>& v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

StageResilience analyze_stage_resilience(Stage stage,
                                         const std::vector<ecg::DigitizedRecord>& records,
                                         const std::vector<int>& lsb_list,
                                         const explore::StageEnergyModel& energy,
                                         AdderKind add_kind, MultKind mult_kind) {
  StageResilience out;
  out.stage = stage;

  // Accurate references per record.
  const PanTompkinsPipeline accurate;
  struct Ref {
    std::vector<double> stage_sig;
    std::vector<double> hpf;
  };
  std::vector<Ref> refs;
  refs.reserve(records.size());
  for (const auto& rec : records) {
    const auto res = accurate.run_filters(rec.adu);
    refs.push_back(Ref{to_double(res.stage_signal(stage)), to_double(res.hpf)});
  }

  const explore::StageEnergyModel naive_model(explore::StageEnergyModel::Mode::Naive);
  const arith::StageArithConfig acc_cfg{};
  const hwmodel::Cost acc_cost_opt = energy.stage_cost(stage, acc_cfg);
  const hwmodel::Cost acc_cost_naive = naive_model.stage_cost(stage, acc_cfg);

  for (const int k : lsb_list) {
    ResiliencePoint pt;
    pt.lsbs = k;
    const explore::StageDesign sd{stage, k, add_kind, mult_kind};
    const arith::StageArithConfig cfg = sd.arith_config();
    pt.optimized = hwmodel::reductions(acc_cost_opt, energy.stage_cost(stage, cfg));
    pt.naive = hwmodel::reductions(acc_cost_naive, naive_model.stage_cost(stage, cfg));

    const PanTompkinsPipeline pipe(explore::to_pipeline_config({sd}));
    double ssim_stage = 0.0, ssim_hpf = 0.0, psnr_hpf = 0.0;
    int tp = 0, fp = 0, fn = 0, truth = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto res = pipe.run(records[i].adu);
      const auto stage_sig = to_double(res.stage_signal(stage));
      ssim_stage += metrics::ssim(refs[i].stage_sig, stage_sig);
      const auto hpf = to_double(res.hpf);
      ssim_hpf += metrics::ssim(refs[i].hpf, hpf);
      const double p = metrics::psnr_db(refs[i].hpf, hpf);
      psnr_hpf += std::min(p, 120.0);  // cap +inf (identical signals) for averaging
      const auto m = metrics::match_peaks(records[i].r_peaks, res.detection.peaks,
                                          metrics::default_tolerance_samples(records[i].fs_hz));
      tp += m.true_positives;
      fp += m.false_positives;
      fn += m.false_negatives;
      truth += m.truth_count();
    }
    const double nrec = static_cast<double>(records.size());
    pt.stage_ssim = ssim_stage / nrec;
    pt.hpf_ssim = ssim_hpf / nrec;
    pt.hpf_psnr_db = psnr_hpf / nrec;
    pt.accuracy_pct =
        truth > 0 ? 100.0 * std::max(0.0, 1.0 - static_cast<double>(fn + fp) / truth) : 100.0;
    out.points.push_back(pt);
  }

  for (const auto& pt : out.points) {
    if (pt.accuracy_pct >= 100.0) out.threshold_lsbs = std::max(out.threshold_lsbs, pt.lsbs);
    if (pt.optimized.energy > out.max_energy_savings &&
        pt.optimized.energy < 1e9) {  // ignore infinities from zero-cost stages
      out.max_energy_savings = pt.optimized.energy;
    }
  }
  return out;
}

std::vector<StageResilience> analyze_all_stages(const std::vector<ecg::DigitizedRecord>& records,
                                                const explore::StageEnergyModel& energy,
                                                AdderKind add_kind, MultKind mult_kind) {
  std::vector<StageResilience> out;
  out.reserve(pantompkins::kAllStages.size());
  for (const Stage s : pantompkins::kAllStages) {
    out.push_back(analyze_stage_resilience(s, records, explore::default_lsb_list(s), energy,
                                           add_kind, mult_kind));
  }
  return out;
}

}  // namespace xbs::core
