/// \file wfdb.hpp
/// \brief WFDB (MIT-BIH) record converter: `.hea` header + format-212
/// signal file + MIT-format `.atr` annotation file → ecg::DigitizedRecord.
///
/// This is the ingestion bridge for the paper's actual evaluation corpus:
/// every Fig. 8–13 number is reported on MIT-BIH records, which PhysioNet
/// distributes in WFDB form. Only what MIT-BIH needs is implemented —
/// single-segment records, format 212 (two 12-bit two's-complement samples
/// packed in 3 bytes), and the standard annotation atom stream (SKIP / NUM /
/// SUB / CHN / AUX escapes, beat codes mapped to R-peaks). Anything else is
/// a strict, typed rejection through the shared xbs/ecg/parse.hpp helpers —
/// the same malformed-input discipline as read_csv.
///
/// A writer is provided too (round-trip testing without PhysioNet data, and
/// generating fixture corpora): it emits a single-signal 212 record with a
/// NORMAL beat annotation per R-peak.
#pragma once

#include <string>

#include "xbs/ecg/record.hpp"

namespace xbs::store {

/// Load a WFDB record from its `.hea` header path. Signal \p signal of the
/// 212-format `.dat` becomes the sample stream; a sibling `.atr` annotation
/// file (optional) provides R-peak ground truth via the standard beat codes.
/// Throws std::runtime_error ("read_wfdb: ...") on malformed or unsupported
/// input.
[[nodiscard]] ecg::DigitizedRecord read_wfdb(const std::string& hea_path,
                                             std::size_t signal = 0);

/// Write \p rec as a WFDB trio next to \p hea_path (`<base>.hea`,
/// `<base>.dat` in format 212, `<base>.atr` with one NORMAL beat per
/// R-peak). Samples must fit 12-bit two's complement ([-2048, 2047]);
/// anything else throws std::runtime_error.
void write_wfdb(const std::string& hea_path, const ecg::DigitizedRecord& rec);

}  // namespace xbs::store
