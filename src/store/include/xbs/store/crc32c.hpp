/// \file crc32c.hpp
/// \brief CRC32C (Castagnoli) with runtime hardware dispatch.
///
/// The record store tags every payload page with a CRC32C so silent bit-rot
/// is detected instead of served (docs/record-store.md). CRC32C rather than
/// plain CRC32 because x86 has carried a dedicated instruction for it since
/// SSE4.2 (`crc32`), which turns page verification into ~1 byte/cycle work —
/// cheap enough to run on every read path, not just scrubs.
///
/// Dispatch follows the kernel-ISA pattern (xbs/arith/isa.hpp): the SSE4.2
/// implementation lives in its own translation unit (the only one compiled
/// with -msse4.2), the portable slice-by-8 table implementation is always
/// available, and the tier is selected once at startup from CPUID —
/// overridable with the `XBS_CRC32C` environment variable
/// (`portable` | `sse42`) for testing, with an unusable request falling back
/// visibly. Both tiers produce identical digests by definition of the CRC;
/// tests/test_store.cpp pins them against each other and against published
/// check vectors.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "xbs/common/types.hpp"

namespace xbs::store {

/// Implementation tiers, fastest last.
enum class CrcImpl { Portable = 0, Sse42 = 1 };

[[nodiscard]] constexpr std::string_view to_string(CrcImpl impl) noexcept {
  switch (impl) {
    case CrcImpl::Portable: return "portable";
    case CrcImpl::Sse42: return "sse42";
  }
  return "portable";  // unreachable
}

/// Parse an implementation name (the XBS_CRC32C vocabulary). Nullopt on
/// anything else — the caller decides whether that is a fallback or an error.
[[nodiscard]] std::optional<CrcImpl> parse_crc_impl(std::string_view name) noexcept;

/// Whether hardware CRC code for \p impl was compiled into this binary.
[[nodiscard]] bool crc_impl_compiled(CrcImpl impl) noexcept;

/// compiled-in AND executable on this CPU — i.e. selectable.
[[nodiscard]] bool crc_impl_usable(CrcImpl impl) noexcept;

/// The tier the process resolved at startup (XBS_CRC32C if set and usable,
/// otherwise the fastest usable tier; unusable/unknown requests fall back
/// with one stderr note).
[[nodiscard]] CrcImpl crc32c_impl() noexcept;

/// Force a tier (tests/benches). Returns the tier actually selected — an
/// unusable request falls back exactly like the env path. Setup-time knob:
/// call only while no other thread is hashing.
CrcImpl force_crc32c_impl(CrcImpl impl) noexcept;

/// Re-run startup resolution (XBS_CRC32C / CPUID) — lets tests restore the
/// default after forcing tiers.
CrcImpl force_crc32c_impl_auto() noexcept;

/// Incremental CRC32C: extend \p crc (0 for a fresh digest) over \p n bytes.
/// Composable: crc32c(crc32c(0, a, la), b, lb) == crc32c(0, a+b, la+lb).
[[nodiscard]] u32 crc32c(u32 crc, const void* data, std::size_t n) noexcept;

/// The portable reference implementation, independent of the selected tier
/// (the digest every hardware tier must reproduce bit-for-bit).
[[nodiscard]] u32 crc32c_portable(u32 crc, const void* data, std::size_t n) noexcept;

}  // namespace xbs::store
