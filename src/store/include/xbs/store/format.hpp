/// \file format.hpp
/// \brief The XBS1 checksummed record container: layout constants, header
/// fields and the typed corruption-reporting vocabulary.
///
/// Full layout specification in docs/record-store.md. In one line: a
/// fixed-size header page, a CRC32C tag table (one u32 per payload page),
/// then the payload pages (LE i32 samples followed by LE u64 R-peak
/// indices, zero-padded to a page boundary). Every byte of the file is
/// covered by exactly one checksum — the header by `header_crc`, the tag
/// table by `tag_table_crc` (itself a header field), each payload page by
/// its tag — so any single corrupted byte is detectable, padding included.
///
/// The design follows the XrdOssCsi per-page integrity model: pages are
/// checksummed on write, verified on read (lazily, page-granular), and a
/// corrupt page is *reported* as a typed error carrying the page index and
/// both CRCs — never silently served, and never fatal to the process.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "xbs/common/types.hpp"

namespace xbs::store {

/// File magic: "XBS1", little-endian u32 at offset 0.
inline constexpr u32 kStoreMagic = 0x31534258u;

/// Format version this library reads and writes.
inline constexpr u16 kStoreVersion = 1;

/// Page size: checksum granularity AND the header/tag-table alignment unit.
/// 4096 matches the mmap granularity on every supported platform, so a page
/// verify touches exactly one file-cache page.
inline constexpr std::size_t kPageBytes = 4096;

/// Samples that fit one payload page (the replay driver's natural chunk).
inline constexpr std::size_t kSamplesPerPage = kPageBytes / sizeof(i32);

/// Bound on the record-name field (a header sanity limit, not a payload).
inline constexpr std::size_t kMaxNameLen = 256;

/// Fixed header field block (everything before the name bytes), in bytes.
/// Layout, all little-endian (see docs/record-store.md for the table):
///   [0,4)   magic            [4,6)   version        [6,8)   reserved (0)
///   [8,12)  page_bytes       [12,16) name_len
///   [16,24) fs_hz (f64 bits) [24,32) gain_adu_per_mv (f64 bits)
///   [32,40) n_samples        [40,48) n_peaks
///   [48,56) payload_bytes    [56,60) page_count
///   [60,64) tag_table_crc    [64,68) header_crc (computed with this = 0)
///   [68,..) name bytes, then zero padding to kPageBytes
inline constexpr std::size_t kHeaderFixedBytes = 68;

/// Decoded header of an open record file.
struct RecordHeader {
  double fs_hz = 0.0;
  double gain_adu_per_mv = 0.0;
  u64 n_samples = 0;
  u64 n_peaks = 0;
  u64 payload_bytes = 0;
  u32 page_count = 0;
  u32 tag_table_crc = 0;
  u32 header_crc = 0;
  std::string name;
};

/// What went wrong, precisely. Everything above `WriteFailed` is a
/// *corruption or format* verdict about the file's bytes; `OpenFailed` /
/// `WriteFailed` are environmental I/O failures.
enum class StoreErrc {
  OpenFailed,    ///< open/stat/mmap failed (errno in the message)
  WriteFailed,   ///< write/fsync/rename failed (errno in the message)
  TruncatedFile, ///< file shorter than its header claims: a torn write
  BadMagic,      ///< not an XBS1 record file
  BadVersion,    ///< a version this library does not read
  BadHeader,     ///< header CRC mismatch or impossible header fields
  BadTagTable,   ///< tag-table CRC mismatch: page tags untrustworthy
  PageCorrupt,   ///< payload page CRC mismatch (page/stored/computed filled)
  BadPayload,    ///< pages verify but decoded content is invalid (e.g. peaks
                 ///< out of order or past n_samples): a forged/buggy writer
  InvalidRecord, ///< the caller's record cannot be written (e.g. empty)
};

[[nodiscard]] const char* to_string(StoreErrc e) noexcept;

/// The typed store error. For PageCorrupt, `page` is the zero-based payload
/// page index and `stored_crc`/`computed_crc` carry both sides of the
/// mismatch — the caller can log exactly which 4 KiB went bad and what the
/// file claimed. `page == npos` for non-page-scoped errors.
class StoreError : public std::runtime_error {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  StoreError(StoreErrc errc, std::string message, std::size_t page = npos,
             u32 stored_crc = 0, u32 computed_crc = 0)
      : std::runtime_error(std::move(message)),
        errc_(errc),
        page_(page),
        stored_crc_(stored_crc),
        computed_crc_(computed_crc) {}

  [[nodiscard]] StoreErrc errc() const noexcept { return errc_; }
  [[nodiscard]] std::size_t page() const noexcept { return page_; }
  [[nodiscard]] u32 stored_crc() const noexcept { return stored_crc_; }
  [[nodiscard]] u32 computed_crc() const noexcept { return computed_crc_; }

 private:
  StoreErrc errc_;
  std::size_t page_;
  u32 stored_crc_;
  u32 computed_crc_;
};

}  // namespace xbs::store
