/// \file replay.hpp
/// \brief mmap'd record replay into a StreamServer session — the disk end
/// of the zero-copy loan contract.
///
/// The net plane (PR 7) moves bytes socket → ChunkLoan → commit with one
/// copy; replay extends the same contract to storage: the record file is
/// memory-mapped (RecordReader), each chunk's pages are CRC-verified lazily,
/// and the verified samples are copied file-cache → loan buffer → commit —
/// one copy, no intermediate staging, no allocation in steady state (loan
/// buffers come from the session's ring). Because the loan API is the same
/// one live producers use, a replayed record is processed bit-identically to
/// a live-streamed or CSV-ingested one (pinned in tests/test_store_replay).
///
/// Corruption behaves like the reader: a bad page throws StoreError mid-
/// replay with the partial chunk never committed — the session sees a clean
/// prefix, the record is quarantined, and the server (and every sibling
/// session) keeps running.
#pragma once

#include <cstddef>

#include "xbs/store/format.hpp"
#include "xbs/store/store.hpp"
#include "xbs/stream/server.hpp"

namespace xbs::store {

/// What a replay accomplished. `status` is Ok after a full replay; any other
/// value is the server's refusal on the chunk numbered `chunks` (refusals
/// are a server-side outcome — corrupt pages throw instead).
struct ReplayResult {
  std::size_t chunks = 0;        ///< chunks committed
  u64 samples = 0;               ///< samples committed
  stream::PushResult status = stream::PushResult::Ok;
};

/// Stream \p reader's samples into session \p id in \p chunk_samples-sized
/// chunks (default: one payload page per chunk, the mmap-natural size) via
/// blocking acquire_buffer/commit. Verifies covering pages before any byte
/// of a chunk is committed; throws StoreError on corruption. Does not
/// close() the session — the caller owns the lifecycle.
ReplayResult replay_record(RecordReader& reader, stream::StreamServer& server,
                           stream::SessionId id,
                           std::size_t chunk_samples = kSamplesPerPage);

}  // namespace xbs::store
