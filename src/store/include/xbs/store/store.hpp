/// \file store.hpp
/// \brief Crash-safe writer and mmap'd verifying reader for XBS1 record
/// files (format.hpp; full spec in docs/record-store.md).
///
/// Write path: the record is serialized and checksummed in memory, written
/// to `<path>.tmp`, fsync'd, atomically renamed over `<path>`, and the
/// parent directory fsync'd — a crash at any point leaves either the old
/// file or the new file, never a torn hybrid. A leftover tmp from a crashed
/// writer is never adopted by the reader (wrong name, and a truncated rename
/// target fails the exact-size check).
///
/// Read path: the file is memory-mapped; the header and tag table are
/// verified eagerly on open, payload pages lazily on first access. A page
/// CRC mismatch throws a `StoreError{PageCorrupt, page, stored, computed}`
/// and latches the reader corrupt — every subsequent access re-throws, so a
/// bad record is quarantined without poisoning the process or any sibling
/// session (the PR 4 fault-quarantine philosophy applied to storage).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "xbs/common/types.hpp"
#include "xbs/ecg/record.hpp"
#include "xbs/store/format.hpp"

namespace xbs::store {

/// Serialize \p rec to \p path crash-safely (tmp + fsync + rename + dir
/// fsync). Throws StoreError{InvalidRecord} for an unwritable record (empty,
/// oversized name, non-positive/non-finite fs, unsorted or out-of-range
/// R-peaks) and StoreError{WriteFailed} on I/O failure (tmp file removed).
void write_record(const std::string& path, const ecg::DigitizedRecord& rec);

/// Serialize \p rec to the in-memory image write_record would produce —
/// the fault-injection seam: tests corrupt this image byte-for-byte and
/// assert the reader's verdict.
[[nodiscard]] std::vector<u8> encode_record(const ecg::DigitizedRecord& rec);

/// One page that failed verification during a scrub.
struct PageFault {
  std::size_t page = 0;
  u32 stored_crc = 0;
  u32 computed_crc = 0;
};

/// Result of a full-file verification pass.
struct ScrubReport {
  std::size_t pages_total = 0;
  std::vector<PageFault> faults;
  [[nodiscard]] bool ok() const noexcept { return faults.empty(); }
};

/// Memory-mapped verifying reader. Move-only; the mapping lives for the
/// reader's lifetime, and spans returned by samples() are valid only while
/// the reader is alive and un-moved.
class RecordReader {
 public:
  /// Open and eagerly verify magic, version, header CRC, header-field
  /// consistency, exact file size, and the tag-table CRC. Throws StoreError
  /// (OpenFailed / TruncatedFile / BadMagic / BadVersion / BadHeader /
  /// BadTagTable) — a torn or foreign file is rejected here, before any
  /// payload byte is trusted.
  explicit RecordReader(const std::string& path);
  ~RecordReader();

  RecordReader(RecordReader&& other) noexcept;
  RecordReader& operator=(RecordReader&& other) noexcept;
  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  [[nodiscard]] const RecordHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t file_bytes() const noexcept { return map_bytes_; }
  [[nodiscard]] std::size_t page_count() const noexcept { return header_.page_count; }

  /// Number of samples stored in payload page \p page (kSamplesPerPage for
  /// every page that lies fully inside the sample region; less for the page
  /// where samples end; 0 for pure R-peak/padding pages).
  [[nodiscard]] std::size_t page_samples(std::size_t page) const;

  /// Whether a previous access detected corruption (the quarantine latch).
  [[nodiscard]] bool quarantined() const noexcept { return quarantined_; }

  /// Samples [first, first+n) as a span into the mapping, verifying the
  /// covering pages first (each page at most once per reader). Zero-copy on
  /// little-endian hosts; on big-endian hosts the samples are byte-swapped
  /// into an internal buffer (valid until the next samples() call). Throws
  /// StoreError{PageCorrupt} — and latches — on a bad page;
  /// std::out_of_range on a range outside [0, n_samples).
  [[nodiscard]] std::span<const i32> samples(std::size_t first, std::size_t n);

  /// Decode the whole record (verifies every page, validates the R-peak
  /// index list). Throws StoreError{PageCorrupt|BadPayload}.
  [[nodiscard]] ecg::DigitizedRecord record();

  /// Verify every payload page and report, without throwing and without
  /// latching the quarantine — the diagnostics pass behind
  /// `xbs_store_tool verify/scrub`.
  [[nodiscard]] ScrubReport scrub() const;

 private:
  [[nodiscard]] const u8* payload_base() const noexcept;
  [[nodiscard]] u32 stored_tag(std::size_t page) const noexcept;
  void verify_page(std::size_t page);
  [[noreturn]] void rethrow_quarantined() const;

  std::string path_;
  RecordHeader header_;
  const u8* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t tag_pages_ = 0;
  std::vector<bool> page_verified_;
  bool quarantined_ = false;
  PageFault fault_{};  // the latched mismatch, for rethrow
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
  std::vector<i32> swap_buf_;
#endif
};

/// Convenience: open, fully verify and decode (load_csv's binary sibling).
[[nodiscard]] ecg::DigitizedRecord load_record(const std::string& path);

}  // namespace xbs::store
