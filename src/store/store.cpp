/// \file store.cpp
/// \brief XBS1 record serialization, crash-safe persistence and the
/// mmap'd verifying reader (contract in store.hpp / docs/record-store.md).
#include "xbs/store/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "xbs/store/crc32c.hpp"

namespace xbs::store {

namespace {

// ---- little-endian field access (memcpy keeps every access aligned) ------

#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
inline u16 to_le(u16 v) noexcept { return __builtin_bswap16(v); }
inline u32 to_le(u32 v) noexcept { return __builtin_bswap32(v); }
inline u64 to_le(u64 v) noexcept { return __builtin_bswap64(v); }
#else
inline u16 to_le(u16 v) noexcept { return v; }
inline u32 to_le(u32 v) noexcept { return v; }
inline u64 to_le(u64 v) noexcept { return v; }
#endif

template <typename T>
inline void put_le(u8* p, T v) noexcept {
  const T le = to_le(v);
  std::memcpy(p, &le, sizeof(T));
}

template <typename T>
inline T get_le(const u8* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return to_le(v);
}

inline u64 f64_bits(double v) noexcept {
  u64 b;
  std::memcpy(&b, &v, 8);
  return b;
}

inline double f64_from_bits(u64 b) noexcept {
  double v;
  std::memcpy(&v, &b, 8);
  return v;
}

// ---- error helpers -------------------------------------------------------

[[noreturn]] void fail(StoreErrc errc, const std::string& path, const std::string& detail,
                       std::size_t page = StoreError::npos, u32 stored = 0, u32 computed = 0) {
  throw StoreError(errc, std::string("xbs::store: ") + to_string(errc) + ": " + path +
                             (detail.empty() ? "" : ": " + detail),
                   page, stored, computed);
}

[[noreturn]] void fail_errno(StoreErrc errc, const std::string& path, const char* op) {
  fail(errc, path, std::string(op) + ": " + std::strerror(errno));
}

// Field offsets inside the header page (layout table in format.hpp).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffReserved = 6;
constexpr std::size_t kOffPageBytes = 8;
constexpr std::size_t kOffNameLen = 12;
constexpr std::size_t kOffFsHz = 16;
constexpr std::size_t kOffGain = 24;
constexpr std::size_t kOffNSamples = 32;
constexpr std::size_t kOffNPeaks = 40;
constexpr std::size_t kOffPayloadBytes = 48;
constexpr std::size_t kOffPageCount = 56;
constexpr std::size_t kOffTagTableCrc = 60;
constexpr std::size_t kOffHeaderCrc = 64;

// Sanity bound on header-declared element counts: generous (10^12 samples)
// but small enough that every size expression below provably cannot
// overflow u64. A hostile header past this is rejected before arithmetic.
constexpr u64 kMaxElements = u64{1} << 40;

inline std::size_t tag_pages_for(std::size_t page_count) noexcept {
  return (page_count * sizeof(u32) + kPageBytes - 1) / kPageBytes;
}

// write(2) the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, const u8* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

const char* to_string(StoreErrc e) noexcept {
  switch (e) {
    case StoreErrc::OpenFailed: return "open failed";
    case StoreErrc::WriteFailed: return "write failed";
    case StoreErrc::TruncatedFile: return "truncated file";
    case StoreErrc::BadMagic: return "bad magic";
    case StoreErrc::BadVersion: return "unsupported version";
    case StoreErrc::BadHeader: return "bad header";
    case StoreErrc::BadTagTable: return "bad tag table";
    case StoreErrc::PageCorrupt: return "page corrupt";
    case StoreErrc::BadPayload: return "bad payload";
    case StoreErrc::InvalidRecord: return "invalid record";
  }
  return "unknown error";
}

// ---- encoding ------------------------------------------------------------

std::vector<u8> encode_record(const ecg::DigitizedRecord& rec) {
  if (rec.adu.empty()) fail(StoreErrc::InvalidRecord, rec.name, "record has no samples");
  if (rec.name.size() > kMaxNameLen) {
    fail(StoreErrc::InvalidRecord, rec.name, "record name longer than 256 bytes");
  }
  if (!std::isfinite(rec.fs_hz) || rec.fs_hz <= 0.0) {
    fail(StoreErrc::InvalidRecord, rec.name, "non-positive or non-finite fs_hz");
  }
  if (!std::isfinite(rec.gain_adu_per_mv)) {
    fail(StoreErrc::InvalidRecord, rec.name, "non-finite gain_adu_per_mv");
  }
  for (std::size_t i = 0; i < rec.r_peaks.size(); ++i) {
    const bool ordered = i == 0 || rec.r_peaks[i] > rec.r_peaks[i - 1];
    if (!ordered || rec.r_peaks[i] >= rec.adu.size()) {
      fail(StoreErrc::InvalidRecord, rec.name, "r_peaks not strictly increasing in-range");
    }
  }

  const u64 n_samples = rec.adu.size();
  const u64 n_peaks = rec.r_peaks.size();
  const u64 payload_bytes = n_samples * sizeof(i32) + n_peaks * sizeof(u64);
  const std::size_t page_count = static_cast<std::size_t>((payload_bytes + kPageBytes - 1) / kPageBytes);
  const std::size_t tag_pages = tag_pages_for(page_count);
  const std::size_t payload_off = (1 + tag_pages) * kPageBytes;
  std::vector<u8> image(payload_off + page_count * kPageBytes, u8{0});

  // Payload: LE i32 samples, then LE u64 R-peak indices, then zero padding.
  u8* payload = image.data() + payload_off;
  for (std::size_t i = 0; i < rec.adu.size(); ++i) {
    put_le<u32>(payload + i * sizeof(i32), static_cast<u32>(rec.adu[i]));
  }
  u8* peaks = payload + n_samples * sizeof(i32);
  for (std::size_t i = 0; i < rec.r_peaks.size(); ++i) {
    put_le<u64>(peaks + i * sizeof(u64), static_cast<u64>(rec.r_peaks[i]));
  }

  // Per-page tags (padding included: every payload byte is covered).
  u8* tags = image.data() + kPageBytes;
  for (std::size_t p = 0; p < page_count; ++p) {
    put_le<u32>(tags + p * sizeof(u32), crc32c(0, payload + p * kPageBytes, kPageBytes));
  }
  const u32 tag_table_crc = crc32c(0, tags, tag_pages * kPageBytes);

  // Header page; header_crc is computed over the page with its field zero.
  u8* h = image.data();
  put_le<u32>(h + kOffMagic, kStoreMagic);
  put_le<u16>(h + kOffVersion, kStoreVersion);
  put_le<u16>(h + kOffReserved, 0);
  put_le<u32>(h + kOffPageBytes, static_cast<u32>(kPageBytes));
  put_le<u32>(h + kOffNameLen, static_cast<u32>(rec.name.size()));
  put_le<u64>(h + kOffFsHz, f64_bits(rec.fs_hz));
  put_le<u64>(h + kOffGain, f64_bits(rec.gain_adu_per_mv));
  put_le<u64>(h + kOffNSamples, n_samples);
  put_le<u64>(h + kOffNPeaks, n_peaks);
  put_le<u64>(h + kOffPayloadBytes, payload_bytes);
  put_le<u32>(h + kOffPageCount, static_cast<u32>(page_count));
  put_le<u32>(h + kOffTagTableCrc, tag_table_crc);
  std::memcpy(h + kHeaderFixedBytes, rec.name.data(), rec.name.size());
  put_le<u32>(h + kOffHeaderCrc, crc32c(0, h, kPageBytes));
  return image;
}

void write_record(const std::string& path, const ecg::DigitizedRecord& rec) {
  const std::vector<u8> image = encode_record(rec);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno(StoreErrc::WriteFailed, tmp, "open");
  if (!write_all(fd, image.data(), image.size()) || ::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    fail_errno(StoreErrc::WriteFailed, tmp, "write/fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail_errno(StoreErrc::WriteFailed, path, "rename");
  }
  // Persist the rename itself: fsync the parent directory. Failure here is
  // reported — the data is intact but its durability is not yet proven.
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) fail_errno(StoreErrc::WriteFailed, dir, "open parent dir");
  if (::fsync(dfd) != 0) {
    const int saved = errno;
    ::close(dfd);
    errno = saved;
    fail_errno(StoreErrc::WriteFailed, dir, "fsync parent dir");
  }
  ::close(dfd);
}

// ---- reading -------------------------------------------------------------

RecordReader::RecordReader(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_errno(StoreErrc::OpenFailed, path, "open");

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno(StoreErrc::OpenFailed, path, "fstat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);

  // Distinguish "not our file" from "our file, torn": check the magic via
  // pread before requiring a full header page.
  if (size >= sizeof(u32)) {
    u8 m[sizeof(u32)];
    if (::pread(fd, m, sizeof(m), 0) == static_cast<ssize_t>(sizeof(m)) &&
        get_le<u32>(m) != kStoreMagic) {
      ::close(fd);
      fail(StoreErrc::BadMagic, path, "not an XBS1 record file");
    }
  }
  if (size < kPageBytes) {
    ::close(fd);
    fail(StoreErrc::TruncatedFile, path, "shorter than one header page");
  }

  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno(StoreErrc::OpenFailed, path, "mmap");
  }
  ::close(fd);  // the mapping keeps the file alive
  map_ = static_cast<const u8*>(map);
  map_bytes_ = size;

  // The reader owns the mapping from here on: any validation failure must
  // release it, so route rejects through a helper lambda.
  const auto reject = [this](StoreErrc errc, const std::string& detail,
                             std::size_t page = StoreError::npos, u32 stored = 0,
                             u32 computed = 0) {
    const std::string p = path_;
    ::munmap(const_cast<u8*>(map_), map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
    fail(errc, p, detail, page, stored, computed);
  };

  const u8* h = map_;
  if (get_le<u32>(h + kOffMagic) != kStoreMagic) reject(StoreErrc::BadMagic, "not an XBS1 record file");
  const u16 version = get_le<u16>(h + kOffVersion);
  if (version != kStoreVersion) {
    reject(StoreErrc::BadVersion, "format version " + std::to_string(version));
  }

  // Header CRC before trusting any other field: compute over the header
  // page with the crc field zeroed.
  {
    u8 page[kPageBytes];
    std::memcpy(page, h, kPageBytes);
    std::memset(page + kOffHeaderCrc, 0, sizeof(u32));
    const u32 stored = get_le<u32>(h + kOffHeaderCrc);
    const u32 computed = crc32c(0, page, kPageBytes);
    if (stored != computed) {
      reject(StoreErrc::BadHeader, "header CRC mismatch", StoreError::npos, stored, computed);
    }
    header_.header_crc = stored;
  }

  if (get_le<u16>(h + kOffReserved) != 0) reject(StoreErrc::BadHeader, "nonzero reserved field");
  if (get_le<u32>(h + kOffPageBytes) != kPageBytes) {
    reject(StoreErrc::BadHeader, "unsupported page size");
  }
  const u32 name_len = get_le<u32>(h + kOffNameLen);
  if (name_len > kMaxNameLen) reject(StoreErrc::BadHeader, "record name longer than 256 bytes");

  header_.fs_hz = f64_from_bits(get_le<u64>(h + kOffFsHz));
  header_.gain_adu_per_mv = f64_from_bits(get_le<u64>(h + kOffGain));
  if (!std::isfinite(header_.fs_hz) || header_.fs_hz <= 0.0) {
    reject(StoreErrc::BadHeader, "non-positive or non-finite fs_hz");
  }
  if (!std::isfinite(header_.gain_adu_per_mv)) {
    reject(StoreErrc::BadHeader, "non-finite gain_adu_per_mv");
  }

  header_.n_samples = get_le<u64>(h + kOffNSamples);
  header_.n_peaks = get_le<u64>(h + kOffNPeaks);
  header_.payload_bytes = get_le<u64>(h + kOffPayloadBytes);
  header_.page_count = get_le<u32>(h + kOffPageCount);
  header_.tag_table_crc = get_le<u32>(h + kOffTagTableCrc);
  // Bound counts before any size arithmetic: a CRC proves integrity, not
  // honesty, and a forged header must not be able to overflow u64 below.
  if (header_.n_samples == 0 || header_.n_samples > kMaxElements ||
      header_.n_peaks > kMaxElements) {
    reject(StoreErrc::BadHeader, "implausible element counts");
  }
  if (header_.payload_bytes !=
      header_.n_samples * sizeof(i32) + header_.n_peaks * sizeof(u64)) {
    reject(StoreErrc::BadHeader, "payload_bytes inconsistent with element counts");
  }
  const u64 expect_pages = (header_.payload_bytes + kPageBytes - 1) / kPageBytes;
  if (header_.page_count != expect_pages) {
    reject(StoreErrc::BadHeader, "page_count inconsistent with payload_bytes");
  }
  tag_pages_ = tag_pages_for(header_.page_count);
  const u64 expect_size = (1 + tag_pages_ + u64{header_.page_count}) * kPageBytes;
  if (map_bytes_ < expect_size) {
    reject(StoreErrc::TruncatedFile,
           "have " + std::to_string(map_bytes_) + " bytes, header claims " +
               std::to_string(expect_size));
  }
  if (map_bytes_ > expect_size) {
    reject(StoreErrc::BadHeader, "file larger than header claims");
  }

  // Tag-table CRC: page tags are only trustworthy once the table itself is.
  {
    const u32 computed = crc32c(0, map_ + kPageBytes, tag_pages_ * kPageBytes);
    if (computed != header_.tag_table_crc) {
      reject(StoreErrc::BadTagTable, "tag table CRC mismatch", StoreError::npos,
             header_.tag_table_crc, computed);
    }
  }

  header_.name.assign(reinterpret_cast<const char*>(h + kHeaderFixedBytes), name_len);
  page_verified_.assign(header_.page_count, false);
}

RecordReader::~RecordReader() {
  if (map_ != nullptr) ::munmap(const_cast<u8*>(map_), map_bytes_);
}

RecordReader::RecordReader(RecordReader&& other) noexcept
    : path_(std::move(other.path_)),
      header_(std::move(other.header_)),
      map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      tag_pages_(other.tag_pages_),
      page_verified_(std::move(other.page_verified_)),
      quarantined_(other.quarantined_),
      fault_(other.fault_) {}

RecordReader& RecordReader::operator=(RecordReader&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(const_cast<u8*>(map_), map_bytes_);
    path_ = std::move(other.path_);
    header_ = std::move(other.header_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    tag_pages_ = other.tag_pages_;
    page_verified_ = std::move(other.page_verified_);
    quarantined_ = other.quarantined_;
    fault_ = other.fault_;
  }
  return *this;
}

const u8* RecordReader::payload_base() const noexcept {
  return map_ + (1 + tag_pages_) * kPageBytes;
}

u32 RecordReader::stored_tag(std::size_t page) const noexcept {
  return get_le<u32>(map_ + kPageBytes + page * sizeof(u32));
}

std::size_t RecordReader::page_samples(std::size_t page) const {
  if (page >= header_.page_count) throw std::out_of_range("xbs::store: page index out of range");
  const u64 sample_bytes = header_.n_samples * sizeof(i32);
  const u64 lo = page * u64{kPageBytes};
  const u64 hi = lo + kPageBytes;
  if (lo >= sample_bytes) return 0;
  return static_cast<std::size_t>((std::min(hi, sample_bytes) - lo) / sizeof(i32));
}

void RecordReader::rethrow_quarantined() const {
  throw StoreError(StoreErrc::PageCorrupt,
                   "xbs::store: page corrupt: " + path_ + ": record quarantined (page " +
                       std::to_string(fault_.page) + " failed verification)",
                   fault_.page, fault_.stored_crc, fault_.computed_crc);
}

void RecordReader::verify_page(std::size_t page) {
  if (page_verified_[page]) return;
  const u32 stored = stored_tag(page);
  const u32 computed = crc32c(0, payload_base() + page * kPageBytes, kPageBytes);
  if (stored != computed) {
    quarantined_ = true;
    fault_ = PageFault{page, stored, computed};
    fail(StoreErrc::PageCorrupt, path_,
         "page " + std::to_string(page) + " CRC mismatch (stored " + std::to_string(stored) +
             ", computed " + std::to_string(computed) + ")",
         page, stored, computed);
  }
  page_verified_[page] = true;
}

std::span<const i32> RecordReader::samples(std::size_t first, std::size_t n) {
  if (quarantined_) rethrow_quarantined();
  if (first > header_.n_samples || n > header_.n_samples - first) {
    throw std::out_of_range("xbs::store: sample range out of bounds");
  }
  if (n == 0) return {};
  const std::size_t p0 = first * sizeof(i32) / kPageBytes;
  const std::size_t p1 = ((first + n) * sizeof(i32) - 1) / kPageBytes;
  for (std::size_t p = p0; p <= p1; ++p) verify_page(p);
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
  // Big-endian fallback: decode into a reusable buffer (not zero-copy).
  swap_buf_.resize(n);
  const u8* base = payload_base() + first * sizeof(i32);
  for (std::size_t i = 0; i < n; ++i) {
    swap_buf_[i] = static_cast<i32>(get_le<u32>(base + i * sizeof(i32)));
  }
  return {swap_buf_.data(), n};
#else
  // payload pages are kPageBytes-aligned in the mapping, so the i32 view is
  // aligned; the sample region is contiguous across pages by construction.
  return {reinterpret_cast<const i32*>(payload_base()) + first, n};
#endif
}

ecg::DigitizedRecord RecordReader::record() {
  if (quarantined_) rethrow_quarantined();
  for (std::size_t p = 0; p < header_.page_count; ++p) verify_page(p);

  ecg::DigitizedRecord rec;
  rec.name = header_.name;
  rec.fs_hz = header_.fs_hz;
  rec.gain_adu_per_mv = header_.gain_adu_per_mv;

  const std::span<const i32> s = samples(0, static_cast<std::size_t>(header_.n_samples));
  rec.adu.assign(s.begin(), s.end());

  const u8* peaks = payload_base() + header_.n_samples * sizeof(i32);
  rec.r_peaks.reserve(static_cast<std::size_t>(header_.n_peaks));
  u64 prev = 0;
  for (u64 i = 0; i < header_.n_peaks; ++i) {
    const u64 v = get_le<u64>(peaks + i * sizeof(u64));
    const bool ordered = i == 0 || v > prev;
    if (!ordered || v >= header_.n_samples) {
      // Pages verified, so this is a writer bug or a forged-but-rehashed
      // file — either way a typed rejection, not a crash downstream.
      fail(StoreErrc::BadPayload, path_, "r_peaks not strictly increasing in-range");
    }
    rec.r_peaks.push_back(static_cast<std::size_t>(v));
    prev = v;
  }
  return rec;
}

ScrubReport RecordReader::scrub() const {
  ScrubReport report;
  report.pages_total = header_.page_count;
  for (std::size_t p = 0; p < header_.page_count; ++p) {
    const u32 stored = stored_tag(p);
    const u32 computed = crc32c(0, payload_base() + p * kPageBytes, kPageBytes);
    if (stored != computed) report.faults.push_back(PageFault{p, stored, computed});
  }
  return report;
}

ecg::DigitizedRecord load_record(const std::string& path) {
  RecordReader reader(path);
  return reader.record();
}

}  // namespace xbs::store
