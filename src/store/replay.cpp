/// \file replay.cpp
/// \brief Record-file replay through the loanable-buffer ingest path.
#include "xbs/store/replay.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace xbs::store {

ReplayResult replay_record(RecordReader& reader, stream::StreamServer& server,
                           stream::SessionId id, std::size_t chunk_samples) {
  if (chunk_samples == 0) throw std::invalid_argument("replay_record: chunk_samples == 0");

  ReplayResult result;
  const auto n_samples = static_cast<std::size_t>(reader.header().n_samples);
  for (std::size_t first = 0; first < n_samples; first += chunk_samples) {
    const std::size_t n = std::min(chunk_samples, n_samples - first);
    // Verify-then-loan: the chunk's pages are checked before a buffer is
    // even borrowed, so a corrupt page aborts with nothing half-committed.
    const std::span<const i32> src = reader.samples(first, n);

    stream::ChunkLoan loan;
    result.status = server.acquire_buffer(id, n, loan);
    if (result.status != stream::PushResult::Ok) return result;
    std::memcpy(loan.data().data(), src.data(), n * sizeof(i32));
    result.status = server.commit(loan);
    if (result.status != stream::PushResult::Ok) return result;
    ++result.chunks;
    result.samples += n;
  }
  return result;
}

}  // namespace xbs::store
