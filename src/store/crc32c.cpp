/// \file crc32c.cpp
/// \brief Portable slice-by-8 CRC32C and the runtime tier selection.
#include "xbs/store/crc32c.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "xbs/common/sync.hpp"

namespace xbs::store {

namespace detail {
// Implemented in crc32c_sse42.cpp when the build compiles it (the only TU
// carrying -msse4.2); resolved weakly here via the XBS_HAVE_SSE42_CRC gate.
u32 crc32c_sse42(u32 crc, const void* data, std::size_t n) noexcept;
}  // namespace detail

namespace {

// CRC32C: reflected polynomial 0x82F63B78 (Castagnoli). Slice-by-8 tables,
// built once on first use — 8 * 256 * 4 bytes, cheaper than shipping 8 KiB
// of constants in the binary and identical by construction.
struct Tables {
  u32 t[8][256];

  Tables() noexcept {
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (u32 i = 0; i < 256; ++i) {
      u32 c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

using CrcFn = u32 (*)(u32, const void*, std::size_t) noexcept;

// Rank kTableCache: process-wide dispatch state, a leaf like the LUT caches.
common::Mutex g_mutex{common::LockRank::kTableCache};
std::atomic<CrcFn> g_fn{nullptr};
std::atomic<CrcImpl> g_impl{CrcImpl::Portable};
bool g_resolved XBS_GUARDED_BY(g_mutex) = false;

CrcFn fn_for(CrcImpl impl) noexcept {
  switch (impl) {
    case CrcImpl::Portable: return &crc32c_portable;
    case CrcImpl::Sse42:
#if defined(XBS_HAVE_SSE42_CRC)
      return &detail::crc32c_sse42;
#else
      return nullptr;
#endif
  }
  return nullptr;  // unreachable
}

CrcImpl best_impl() noexcept {
  return crc_impl_usable(CrcImpl::Sse42) ? CrcImpl::Sse42 : CrcImpl::Portable;
}

/// Publish a tier, falling back visibly when the request is unusable.
CrcImpl apply_locked(CrcImpl requested, bool from_env) noexcept XBS_REQUIRES(g_mutex) {
  CrcImpl selected = requested;
  if (!crc_impl_usable(requested)) {
    selected = best_impl();
    std::fprintf(stderr,
                 "xbs::store: requested CRC32C tier \"%.*s\"%s is unavailable; "
                 "falling back to \"%.*s\"\n",
                 static_cast<int>(to_string(requested).size()), to_string(requested).data(),
                 from_env ? " (XBS_CRC32C)" : "",
                 static_cast<int>(to_string(selected).size()), to_string(selected).data());
  }
  g_impl.store(selected, std::memory_order_relaxed);
  g_fn.store(fn_for(selected), std::memory_order_release);
  g_resolved = true;
  return selected;
}

CrcImpl resolve_auto_locked() noexcept XBS_REQUIRES(g_mutex) {
  const char* env = std::getenv("XBS_CRC32C");
  if (env != nullptr && *env != '\0') {
    if (const std::optional<CrcImpl> parsed = parse_crc_impl(env)) {
      return apply_locked(*parsed, /*from_env=*/true);
    }
    std::fprintf(stderr,
                 "xbs::store: unknown XBS_CRC32C value \"%s\" (expected portable|sse42); "
                 "using \"%.*s\"\n",
                 env, static_cast<int>(to_string(best_impl()).size()),
                 to_string(best_impl()).data());
  }
  return apply_locked(best_impl(), /*from_env=*/false);
}

}  // namespace

std::optional<CrcImpl> parse_crc_impl(std::string_view name) noexcept {
  if (name == to_string(CrcImpl::Portable)) return CrcImpl::Portable;
  if (name == to_string(CrcImpl::Sse42)) return CrcImpl::Sse42;
  return std::nullopt;
}

bool crc_impl_compiled(CrcImpl impl) noexcept { return fn_for(impl) != nullptr; }

bool crc_impl_usable(CrcImpl impl) noexcept {
  if (!crc_impl_compiled(impl)) return false;
  switch (impl) {
    case CrcImpl::Portable: return true;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    case CrcImpl::Sse42: return __builtin_cpu_supports("sse4.2") != 0;
#else
    case CrcImpl::Sse42: return false;
#endif
  }
  return false;  // unreachable
}

CrcImpl crc32c_impl() noexcept {
  if (g_fn.load(std::memory_order_acquire) == nullptr) {
    const common::MutexLock lock(g_mutex);
    if (!g_resolved) (void)resolve_auto_locked();
  }
  return g_impl.load(std::memory_order_relaxed);
}

CrcImpl force_crc32c_impl(CrcImpl impl) noexcept {
  const common::MutexLock lock(g_mutex);
  return apply_locked(impl, /*from_env=*/false);
}

CrcImpl force_crc32c_impl_auto() noexcept {
  const common::MutexLock lock(g_mutex);
  return resolve_auto_locked();
}

u32 crc32c(u32 crc, const void* data, std::size_t n) noexcept {
  CrcFn fn = g_fn.load(std::memory_order_acquire);
  if (fn == nullptr) {
    (void)crc32c_impl();  // first use: run startup resolution
    fn = g_fn.load(std::memory_order_acquire);
  }
  return fn(crc, data, n);
}

u32 crc32c_portable(u32 crc, const void* data, std::size_t n) noexcept {
  const Tables& tb = tables();
  const u8* p = static_cast<const u8*>(data);
  u32 c = ~crc;
  // Byte-wise to 8-byte alignment, then slice-by-8, then the tail.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
    w = __builtin_bswap64(w);
#endif
    w ^= c;
    c = tb.t[7][w & 0xFFu] ^ tb.t[6][(w >> 8) & 0xFFu] ^ tb.t[5][(w >> 16) & 0xFFu] ^
        tb.t[4][(w >> 24) & 0xFFu] ^ tb.t[3][(w >> 32) & 0xFFu] ^
        tb.t[2][(w >> 40) & 0xFFu] ^ tb.t[1][(w >> 48) & 0xFFu] ^ tb.t[0][(w >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  return ~c;
}

}  // namespace xbs::store
