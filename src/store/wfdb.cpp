/// \file wfdb.cpp
/// \brief WFDB reader/writer (scope and contract in wfdb.hpp).
#include "xbs/store/wfdb.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "xbs/common/types.hpp"
#include "xbs/ecg/parse.hpp"

namespace xbs::store {

namespace {

constexpr const char* kCtx = "read_wfdb";

[[noreturn]] void fail(const std::string& detail) {
  throw std::runtime_error(std::string(kCtx) + ": " + detail);
}

// MIT annotation atom codes (ecgcodes.h vocabulary).
constexpr u16 kAnnSkip = 59;
constexpr u16 kAnnNum = 60;
constexpr u16 kAnnSub = 61;
constexpr u16 kAnnChn = 62;
constexpr u16 kAnnAux = 63;

/// The standard "is this annotation a QRS complex" set: beat codes
/// NORMAL..UNKNOWN (1–13) plus BBB (25), AESC (34), SVESC (35), PFUS (38).
bool is_beat_code(u16 code) noexcept {
  return (code >= 1 && code <= 13) || code == 25 || code == 34 || code == 35 || code == 38;
}

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string strip_hea(const std::string& hea_path) {
  constexpr std::string_view kExt = ".hea";
  if (hea_path.size() <= kExt.size() ||
      hea_path.compare(hea_path.size() - kExt.size(), kExt.size(), kExt) != 0) {
    fail("header path must end in .hea: '" + hea_path + "'");
  }
  return hea_path.substr(0, hea_path.size() - kExt.size());
}

std::vector<std::string> split_ws(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::vector<u8> read_binary(const std::string& path, bool required) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (required) fail("cannot open: " + path);
    return {};
  }
  return std::vector<u8>(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
}

struct HeaderInfo {
  std::string dat_name;
  std::size_t n_signals = 0;
  double fs_hz = 0.0;
  u64 n_samples = 0;
  double gain = 200.0;  // the WFDB default when the field is absent or 0
};

HeaderInfo parse_header(const std::string& hea_path, std::size_t signal,
                        std::string* record_name) {
  std::ifstream is(hea_path);
  if (!is) fail("cannot open: " + hea_path);

  HeaderInfo info;
  std::string line;
  bool record_line_done = false;
  std::size_t signals_seen = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tok = split_ws(line);
    if (!record_line_done) {
      // Record line: name nsig fs nsamples [btime [bdate]]. Multi-segment
      // records (name/nseg) and headers without an explicit sample count
      // are out of scope — reject, don't guess.
      if (tok.size() < 4) fail("bad record line: '" + line + "'");
      if (tok[0].find('/') != std::string::npos) {
        fail("multi-segment records are unsupported: '" + tok[0] + "'");
      }
      *record_name = tok[0];
      const i64 nsig = ecg::parse_i64_field(tok[1], kCtx, "bad signal count");
      if (nsig < 1 || nsig > 32) fail("bad signal count: '" + tok[1] + "'");
      info.n_signals = static_cast<std::size_t>(nsig);
      info.fs_hz = ecg::parse_double_field(tok[2], kCtx, "bad sampling frequency");
      if (!(info.fs_hz > 0.0)) fail("non-positive sampling frequency: '" + tok[2] + "'");
      const i64 ns = ecg::parse_i64_field(tok[3], kCtx, "bad sample count");
      if (ns < 1) fail("non-positive sample count: '" + tok[3] + "'");
      // Bound the declared count (same 2^40 ceiling as the XBS1 store) so the
      // decode_212 size arithmetic (n_samples * n_signals * 3 / 2) cannot wrap
      // u64 and vector::reserve cannot throw length_error — a hostile header
      // must fail with the documented runtime_error, nothing else.
      if (static_cast<u64>(ns) > (u64{1} << 40)) {
        fail("implausible sample count: '" + tok[3] + "'");
      }
      info.n_samples = static_cast<u64>(ns);
      record_line_done = true;
      continue;
    }
    if (signals_seen == info.n_signals) break;  // past the signal block
    // Signal line: filename format [gain[(baseline)][/units] [...]]. Only
    // plain format 212 is supported (no xN / :skew / +offset modifiers).
    if (tok.size() < 2) fail("bad signal line: '" + line + "'");
    if (tok[1] != "212") fail("unsupported signal format: '" + tok[1] + "' (only 212)");
    if (signals_seen == 0) {
      info.dat_name = tok[0];
    } else if (tok[0] != info.dat_name) {
      fail("signals split across files are unsupported: '" + tok[0] + "'");
    }
    if (signals_seen == signal && tok.size() >= 3) {
      // Gain may carry "(baseline)" and "/units" suffixes; the number is
      // everything before either.
      const std::string g = tok[2].substr(0, tok[2].find_first_of("(/"));
      const double gain = ecg::parse_double_field(g, kCtx, "bad signal gain");
      if (gain < 0.0) fail("negative signal gain: '" + tok[2] + "'");
      if (gain > 0.0) info.gain = gain;
    }
    ++signals_seen;
  }
  if (!record_line_done) fail("no record line in: " + hea_path);
  if (signals_seen < info.n_signals) fail("fewer signal lines than the declared count");
  if (signal >= info.n_signals) {
    fail("signal index " + std::to_string(signal) + " out of range (record has " +
         std::to_string(info.n_signals) + ")");
  }
  return info;
}

/// Decode format 212: successive 12-bit two's-complement values packed two
/// per 3 bytes, interleaved across signals frame by frame. Returns the
/// values of one signal.
std::vector<i32> decode_212(const std::vector<u8>& dat, u64 n_samples, std::size_t n_signals,
                            std::size_t signal) {
  const u64 total = n_samples * n_signals;
  const u64 pairs = total / 2;
  const u64 need = pairs * 3 + (total % 2 != 0 ? 2 : 0);
  // Exact by default; tolerate a single pad byte closing an odd final pair.
  if (dat.size() != need && dat.size() != need + 1) {
    fail("212 signal file has " + std::to_string(dat.size()) + " bytes, expected " +
         std::to_string(need));
  }
  std::vector<i32> out;
  out.reserve(static_cast<std::size_t>(n_samples));
  for (u64 v = 0; v < total; ++v) {
    const u64 pair = v / 2;
    const u8* b = dat.data() + pair * 3;
    u32 raw = (v % 2 == 0) ? (u32{b[0]} | (u32{b[1]} & 0x0Fu) << 8)
                           : (u32{b[2]} | (u32{b[1]} & 0xF0u) << 4);
    const i32 s = raw >= 2048u ? static_cast<i32>(raw) - 4096 : static_cast<i32>(raw);
    if (v % n_signals == signal) out.push_back(s);
  }
  return out;
}

/// Decode a MIT-format annotation stream into R-peak sample indices: 2-byte
/// LE atoms, code = A >> 10, delta-time = A & 0x3FF, with the standard
/// escape codes handled and beat codes kept.
std::vector<std::size_t> decode_annotations(const std::vector<u8>& atr, u64 n_samples) {
  std::vector<std::size_t> peaks;
  u64 t = 0;
  std::size_t i = 0;
  const auto need = [&](std::size_t n) {
    if (atr.size() - i < n) fail("annotation stream truncated mid-atom");
  };
  while (i + 1 < atr.size()) {
    const u16 atom = static_cast<u16>(u16{atr[i]} | u16{atr[i + 1]} << 8);
    i += 2;
    const u16 code = atom >> 10;
    const u16 field = atom & 0x3FFu;
    if (atom == 0) break;  // EOF atom
    switch (code) {
      case kAnnSkip: {
        // Interval in the next two words: high 16 bits first, then low.
        need(4);
        const u32 hi = u32{atr[i]} | u32{atr[i + 1]} << 8;
        const u32 lo = u32{atr[i + 2]} | u32{atr[i + 3]} << 8;
        i += 4;
        t += (u64{hi} << 16) | lo;
        break;
      }
      case kAnnNum:
      case kAnnSub:
      case kAnnChn:
        break;  // modifier atoms: value in `field`, no time advance
      case kAnnAux: {
        const std::size_t len = field + (field % 2);  // aux bytes, even-padded
        need(len);
        i += len;
        break;
      }
      default: {
        t += field;
        if (is_beat_code(code)) {
          if (t >= n_samples) fail("annotation time past the end of the record");
          peaks.push_back(static_cast<std::size_t>(t));
        }
        break;
      }
    }
  }
  return peaks;
}

std::string base_name(const std::string& base_path) {
  const auto slash = base_path.find_last_of('/');
  return slash == std::string::npos ? base_path : base_path.substr(slash + 1);
}

}  // namespace

ecg::DigitizedRecord read_wfdb(const std::string& hea_path, std::size_t signal) {
  std::string record_name;
  const HeaderInfo info = parse_header(hea_path, signal, &record_name);

  const std::vector<u8> dat = read_binary(dir_of(hea_path) + info.dat_name, /*required=*/true);
  ecg::DigitizedRecord rec;
  rec.name = record_name;
  rec.fs_hz = info.fs_hz;
  rec.gain_adu_per_mv = info.gain;
  rec.adu = decode_212(dat, info.n_samples, info.n_signals, signal);

  const std::vector<u8> atr = read_binary(strip_hea(hea_path) + ".atr", /*required=*/false);
  if (!atr.empty()) rec.r_peaks = decode_annotations(atr, info.n_samples);
  return rec;
}

void write_wfdb(const std::string& hea_path, const ecg::DigitizedRecord& rec) {
  if (rec.adu.empty()) fail("cannot write an empty record");
  for (const i32 s : rec.adu) {
    if (s < -2048 || s > 2047) {
      fail("sample out of 12-bit range for format 212: " + std::to_string(s));
    }
  }
  const std::string base = strip_hea(hea_path);
  const std::string name = base_name(base);

  {
    std::ofstream os(hea_path);
    if (!os) fail("cannot open for writing: " + hea_path);
    os << name << " 1 " << rec.fs_hz << " " << rec.adu.size() << "\n";
    os << name << ".dat 212 " << rec.gain_adu_per_mv << " 12 0\n";
    if (!os) fail("write failed: " + hea_path);
  }
  {
    std::ofstream os(base + ".dat", std::ios::binary);
    if (!os) fail("cannot open for writing: " + base + ".dat");
    for (std::size_t i = 0; i < rec.adu.size(); i += 2) {
      const u32 a = static_cast<u32>(rec.adu[i]) & 0xFFFu;
      const u32 b = (i + 1 < rec.adu.size() ? static_cast<u32>(rec.adu[i + 1]) : 0u) & 0xFFFu;
      const u8 bytes[3] = {static_cast<u8>(a & 0xFFu),
                           static_cast<u8>(((a >> 8) & 0x0Fu) | ((b >> 4) & 0xF0u)),
                           static_cast<u8>(b & 0xFFu)};
      os.write(reinterpret_cast<const char*>(bytes), 3);
    }
    if (!os) fail("write failed: " + base + ".dat");
  }
  {
    std::ofstream os(base + ".atr", std::ios::binary);
    if (!os) fail("cannot open for writing: " + base + ".atr");
    const auto put_atom = [&os](u16 code, u16 field) {
      const u16 atom = static_cast<u16>(code << 10 | (field & 0x3FFu));
      const u8 bytes[2] = {static_cast<u8>(atom & 0xFFu), static_cast<u8>(atom >> 8)};
      os.write(reinterpret_cast<const char*>(bytes), 2);
    };
    u64 prev = 0;
    for (const std::size_t peak : rec.r_peaks) {
      u64 delta = peak - prev;
      if (delta > 0x3FFu) {  // too far for one atom: emit a SKIP interval
        put_atom(kAnnSkip, 0);
        const u32 d32 = static_cast<u32>(delta);
        const u8 words[4] = {static_cast<u8>((d32 >> 16) & 0xFFu), static_cast<u8>(d32 >> 24),
                             static_cast<u8>(d32 & 0xFFu), static_cast<u8>((d32 >> 8) & 0xFFu)};
        os.write(reinterpret_cast<const char*>(words), 4);
        delta = 0;
      }
      put_atom(/*NORMAL=*/1, static_cast<u16>(delta));
      prev = peak;
    }
    put_atom(0, 0);  // EOF
    if (!os) fail("write failed: " + base + ".atr");
  }
}

}  // namespace xbs::store
