/// \file crc32c_sse42.cpp
/// \brief Hardware CRC32C: the only TU compiled with -msse4.2.
///
/// The `crc32` instruction implements exactly the Castagnoli polynomial the
/// portable tables implement, so the two tiers agree bit-for-bit on every
/// input (pinned in tests/test_store.cpp). Dispatch guarantees this code is
/// only reached when CPUID reports SSE4.2.
#if !defined(__SSE4_2__)
#error "crc32c_sse42.cpp must be compiled with -msse4.2 (see src/CMakeLists.txt)"
#endif

#include <nmmintrin.h>

#include <cstring>

#include "xbs/store/crc32c.hpp"

namespace xbs::store::detail {

u32 crc32c_sse42(u32 crc, const void* data, std::size_t n) noexcept {
  const u8* p = static_cast<const u8*>(data);
  u64 c = ~crc;
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = _mm_crc32_u8(static_cast<u32>(c), *p++);
    --n;
  }
  while (n >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = _mm_crc32_u8(static_cast<u32>(c), *p++);
    --n;
  }
  return ~static_cast<u32>(c);
}

}  // namespace xbs::store::detail
