#include "xbs/netlist/builders.hpp"

#include <stdexcept>

#include "xbs/arith/structure.hpp"
#include "xbs/common/bitops.hpp"

namespace xbs::netlist {
namespace {

/// Zero-extend or truncate a bus to the given width.
std::vector<NetId> resize_bus(std::span<const NetId> bus, int width) {
  std::vector<NetId> out(static_cast<std::size_t>(width), kConst0);
  for (std::size_t i = 0; i < out.size() && i < bus.size(); ++i) out[i] = bus[i];
  return out;
}

/// Shift a bus left by n bits (prepending constant zeros), keeping width.
std::vector<NetId> shift_bus(std::span<const NetId> bus, int n, int width) {
  std::vector<NetId> out(static_cast<std::size_t>(width), kConst0);
  for (int i = 0; i + n < width && i < static_cast<int>(bus.size()); ++i) {
    out[static_cast<std::size_t>(i + n)] = bus[static_cast<std::size_t>(i)];
  }
  return out;
}

/// Recursive multiplier core mirroring arith::RecursiveMultiplier::simulate.
std::vector<NetId> build_mult_rec(Netlist& nl, const arith::MultiplierConfig& cfg, int n,
                                  std::span<const NetId> a, std::span<const NetId> b, int off_a,
                                  int off_b) {
  const int base = off_a + off_b;
  if (n == 2) {
    const MultKind kind = arith::elem_is_approx(cfg.policy, base, cfg.approx_lsbs)
                              ? cfg.mult_kind
                              : MultKind::Accurate;
    const auto outs = nl.emit_mult2(kind, a[0], a[1], b[0], b[1], base);
    return {outs.begin(), outs.end()};
  }
  const int h = n / 2;
  const std::span<const NetId> al = a.subspan(0, static_cast<std::size_t>(h));
  const std::span<const NetId> ah = a.subspan(static_cast<std::size_t>(h));
  const std::span<const NetId> bl = b.subspan(0, static_cast<std::size_t>(h));
  const std::span<const NetId> bh = b.subspan(static_cast<std::size_t>(h));
  const std::vector<NetId> ll = build_mult_rec(nl, cfg, h, al, bl, off_a, off_b);
  const std::vector<NetId> hl = build_mult_rec(nl, cfg, h, ah, bl, off_a + h, off_b);
  const std::vector<NetId> lh = build_mult_rec(nl, cfg, h, al, bh, off_a, off_b + h);
  const std::vector<NetId> hh = build_mult_rec(nl, cfg, h, ah, bh, off_a + h, off_b + h);
  // P = LL + ((HL + LH) << h) + (HH << n), three 2n-bit adders at this base.
  // Port convention mirrors arith::RecursiveMultiplier::combine: the
  // structurally-zero operand goes to the A port so the wiring adder
  // (Sum = B, Cout = A) passes live data through.
  const arith::AdderConfig acfg{2 * n, cfg.approx_lsbs, cfg.adder_kind, base};
  const std::vector<NetId> hl_sh = shift_bus(hl, h, 2 * n);
  const std::vector<NetId> lh_sh = shift_bus(lh, h, 2 * n);
  const AdderNets s1 = build_rca(nl, acfg, hl_sh, lh_sh);
  const std::vector<NetId> ll_z = resize_bus(ll, 2 * n);
  const AdderNets s2 = build_rca(nl, acfg, s1.sum, ll_z);
  const std::vector<NetId> hh_sh = shift_bus(hh, n, 2 * n);
  const AdderNets s3 = build_rca(nl, acfg, hh_sh, s2.sum);
  return s3.sum;
}

}  // namespace

AdderNets build_rca(Netlist& nl, const arith::AdderConfig& cfg, std::span<const NetId> a,
                    std::span<const NetId> b, NetId carry_in) {
  if (static_cast<int>(a.size()) != cfg.width || static_cast<int>(b.size()) != cfg.width) {
    throw std::invalid_argument("build_rca: bus width mismatch");
  }
  AdderNets out;
  out.sum.reserve(a.size());
  NetId carry = carry_in;
  for (int i = 0; i < cfg.width; ++i) {
    const int weight = cfg.weight_offset + i;
    const AdderKind kind =
        arith::fa_is_approx(weight, cfg.approx_lsbs) ? cfg.kind : AdderKind::Accurate;
    const FaPins pins = nl.emit_fa(kind, a[static_cast<std::size_t>(i)],
                                   b[static_cast<std::size_t>(i)], carry, weight);
    out.sum.push_back(pins.sum);
    carry = pins.cout;
  }
  out.carry_out = carry;
  return out;
}

std::vector<NetId> build_multiplier(Netlist& nl, const arith::MultiplierConfig& cfg,
                                    std::span<const NetId> a, std::span<const NetId> b) {
  if (static_cast<int>(a.size()) != cfg.width || static_cast<int>(b.size()) != cfg.width) {
    throw std::invalid_argument("build_multiplier: bus width mismatch");
  }
  return build_mult_rec(nl, cfg, cfg.width, a, b, 0, 0);
}

Netlist build_fir_stage(const FirStageSpec& spec) {
  Netlist nl;
  std::vector<std::vector<NetId>> products;
  for (const u32 mag : spec.coeff_magnitudes) {
    if (mag == 0) continue;
    const std::vector<NetId> x = nl.new_input_bus(16);
    const std::vector<NetId> c = nl.const_bus(mag, 16);
    std::vector<NetId> p = build_multiplier(nl, spec.arith.mult, x, c);
    products.push_back(resize_bus(p, 32));
  }
  if (products.empty()) throw std::invalid_argument("build_fir_stage: all coefficients zero");
  // Accumulate with a chain of (n_products - 1) 32-bit adders. Sign handling
  // is polarity wiring in the real datapath; the adder count matches the
  // paper's per-stage inventory (e.g. LPF: 11 multipliers, 10 adders).
  std::vector<NetId> acc = products[0];
  const arith::AdderConfig acfg = spec.arith.adder;
  for (std::size_t i = 1; i < products.size(); ++i) {
    acc = build_rca(nl, acfg, acc, products[i]).sum;
  }
  for (const NetId n : acc) nl.mark_output(n);
  return nl;
}

Netlist build_squarer_stage(const arith::MultiplierConfig& cfg) {
  Netlist nl;
  const std::vector<NetId> x = nl.new_input_bus(cfg.width);
  const std::vector<NetId> p = build_multiplier(nl, cfg, x, x);
  for (const NetId n : p) nl.mark_output(n);
  return nl;
}

Netlist build_mwi_stage(int window, const arith::AdderConfig& cfg, int input_bits) {
  if (window < 2) throw std::invalid_argument("build_mwi_stage: window must be >= 2");
  if (input_bits < 1 || input_bits > cfg.width) {
    throw std::invalid_argument("build_mwi_stage: input_bits must be in [1, width]");
  }
  Netlist nl;
  std::vector<std::vector<NetId>> terms;
  terms.reserve(static_cast<std::size_t>(window));
  for (int i = 0; i < window; ++i) {
    terms.push_back(resize_bus(nl.new_input_bus(input_bits), cfg.width));
  }
  // Balanced feed-forward adder tree (window - 1 adders).
  while (terms.size() > 1) {
    std::vector<std::vector<NetId>> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(build_rca(nl, cfg, terms[i], terms[i + 1]).sum);
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  for (const NetId n : terms[0]) nl.mark_output(n);
  return nl;
}

}  // namespace xbs::netlist
