/// \file synth_report.hpp
/// \brief Area/power/energy/critical-path reporting (the Design Compiler
/// report substitute), priced with the paper's Table 1 cell data.
#pragma once

#include "xbs/hwmodel/cell_library.hpp"
#include "xbs/netlist/netlist.hpp"

namespace xbs::netlist {

/// Synthesis-style report of a (possibly optimized) netlist.
struct SynthesisReport {
  hwmodel::Cost cost;           ///< summed module costs; delay = critical path
  int live_modules = 0;         ///< modules remaining after optimization
  int removed_modules = 0;      ///< modules eliminated
  int full_adders = 0;          ///< live FA count
  int mult2s = 0;               ///< live elementary multiplier count
  int inverters = 0;            ///< live inverter count (zero-cost)
  double critical_path_ns = 0;  ///< longest combinational path
};

/// Price the live modules of \p nl and compute its critical path.
[[nodiscard]] SynthesisReport report(const Netlist& nl);

}  // namespace xbs::netlist
