/// \file optimizer.hpp
/// \brief Mini logic-synthesis optimization over module-level netlists.
///
/// Two passes run to fixpoint, substituting for what Synopsys DC does to the
/// paper's RTL once coefficients are constants and approximate modules
/// degenerate to wires:
///
///  1. **Constant propagation / functional wire collapse**: a module whose
///     outputs are constant under its known-constant inputs is folded away;
///     an output that equals one of the module's free inputs for every
///     assignment (e.g. ApproxAdd5's Sum = B) is collapsed to a wire.
///  2. **Dead-module elimination**: modules driving no primary output
///     (transitively) are removed.
///
/// This is what produces the paper's differentiator observation that
/// "approximating more than 4 LSBs truncates all active paths, effectively
/// connecting the outputs to either the inputs or to logic 0".
#pragma once

#include "xbs/netlist/netlist.hpp"

namespace xbs::netlist {

/// Statistics of one optimization run.
struct OptimizeStats {
  int const_folded = 0;    ///< modules removed by constant propagation
  int wire_collapsed = 0;  ///< modules removed because all outputs were wires/consts
  int dead_removed = 0;    ///< modules removed by dead-logic elimination
  int passes = 0;          ///< pass iterations until fixpoint
};

/// Run the optimization pipeline in place.
OptimizeStats optimize(Netlist& nl);

}  // namespace xbs::netlist
