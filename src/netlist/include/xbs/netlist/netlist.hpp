/// \file netlist.hpp
/// \brief Module-level netlist: the RTL/ASIC tool-flow substitute.
///
/// The paper implements its designs in VHDL, simulates them with ModelSim and
/// synthesizes them with Synopsys Design Compiler. This library plays those
/// roles: designs are built as netlists of elementary modules (1-bit full
/// adders, elementary 2x2 multipliers, inverters), simulated bit-accurately
/// (ModelSim substitute, cross-validated against the fast behavioural models)
/// and passed through a mini synthesis-optimization flow (constant
/// propagation, functional wire collapse, dead-module elimination) before
/// area/power/energy/critical-path reporting (Design Compiler substitute).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "xbs/common/kinds.hpp"
#include "xbs/common/types.hpp"

namespace xbs::netlist {

/// Identifier of a net (wire). Nets 0 and 1 are the constant-0 and constant-1
/// nets of every netlist.
using NetId = u32;

inline constexpr NetId kConst0 = 0;
inline constexpr NetId kConst1 = 1;

/// Kind of a hardware module instance.
enum class ModuleKind : u8 {
  FullAdder,  ///< 3 inputs (a, b, cin), 2 outputs (sum, cout)
  Mult2,      ///< 4 inputs (a0, a1, b0, b1), 4 outputs (o0..o3)
  Inverter,   ///< 1 input, 1 output; zero-cost polarity element (see DESIGN.md)
};

/// One module instance.
struct Module {
  ModuleKind kind = ModuleKind::FullAdder;
  AdderKind fa_kind = AdderKind::Accurate;  ///< valid when kind == FullAdder
  MultKind m2_kind = MultKind::Accurate;    ///< valid when kind == Mult2
  std::array<NetId, 4> in{};                ///< unused pins set to kConst0
  std::array<NetId, 4> out{};
  int n_in = 0;
  int n_out = 0;
  int weight = 0;        ///< absolute LSB weight of the output (diagnostics)
  bool removed = false;  ///< set by optimization passes
};

/// Output pin pair of an emitted full adder.
struct FaPins {
  NetId sum = kConst0;
  NetId cout = kConst0;
};

/// A module-level netlist under construction or analysis.
///
/// Construction is inherently topological: a module can only reference nets
/// that already exist, so simulating modules in emission order is always
/// correct — including after optimization, which only aliases nets to earlier
/// nets or constants.
class Netlist {
 public:
  Netlist();

  /// Constant net for the given value.
  [[nodiscard]] static NetId const_net(bool v) noexcept { return v ? kConst1 : kConst0; }

  /// Create one primary-input net.
  [[nodiscard]] NetId new_input();

  /// Create a bus of \p width primary-input nets (LSB first).
  [[nodiscard]] std::vector<NetId> new_input_bus(int width);

  /// Bus of constant nets holding the low \p width bits of \p value.
  [[nodiscard]] std::vector<NetId> const_bus(u64 value, int width) const;

  /// Emit a full adder of the given kind; \p weight is the absolute bit
  /// weight of the sum output (used by approximation decisions/diagnostics).
  FaPins emit_fa(AdderKind kind, NetId a, NetId b, NetId cin, int weight);

  /// Emit an elementary 2x2 multiplier; returns output nets o0..o3.
  std::array<NetId, 4> emit_mult2(MultKind kind, NetId a0, NetId a1, NetId b0, NetId b1,
                                  int weight);

  /// Emit an inverter.
  NetId emit_not(NetId a);

  /// Mark a net as a primary output.
  void mark_output(NetId n);

  [[nodiscard]] std::size_t net_count() const noexcept { return n_nets_; }
  [[nodiscard]] const std::vector<Module>& modules() const noexcept { return modules_; }
  [[nodiscard]] std::vector<Module>& modules() noexcept { return modules_; }
  [[nodiscard]] const std::vector<NetId>& inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const noexcept { return outputs_; }

  /// Resolve a net through the alias table installed by optimization.
  [[nodiscard]] NetId resolve(NetId n) const noexcept;

  /// Alias net \p n to \p target (must resolve to an earlier net or constant).
  void set_alias(NetId n, NetId target);

  /// Number of live (non-removed) modules.
  [[nodiscard]] std::size_t live_module_count() const noexcept;

  /// Bit-accurate simulation (the ModelSim substitute). \p input_values must
  /// match inputs() in size/order; returns the values of outputs() in order.
  [[nodiscard]] std::vector<bool> simulate(const std::vector<bool>& input_values) const;

  /// Convenience: drive input buses from integer words and read back integer
  /// outputs. \p input_words are consumed in the order the input nets were
  /// created; outputs are packed LSB-first in marked order.
  [[nodiscard]] u64 simulate_word(std::span<const u64> input_words,
                                  std::span<const int> input_widths) const;

 private:
  std::size_t n_nets_ = 0;
  std::vector<Module> modules_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<NetId> alias_;  ///< alias_[n] == n when unaliased
};

}  // namespace xbs::netlist
