/// \file verilog.hpp
/// \brief Structural Verilog export of module-level netlists.
///
/// The paper's open-source release contained "the RTL and behavioral models
/// of these approximate adders and multipliers, including a VHDL
/// implementation of the key stages". This exporter plays that role for this
/// reproduction: any netlist (adder, multiplier, FIR stage — optimized or
/// not) can be emitted as a self-contained structural Verilog module whose
/// gate-level bodies implement the exact truth tables of the elementary
/// library, so downstream users can push the designs through a real ASIC
/// flow.
#pragma once

#include <iosfwd>
#include <string>

#include "xbs/netlist/netlist.hpp"

namespace xbs::netlist {

/// Options for the Verilog emitter.
struct VerilogOptions {
  std::string module_name = "xbs_design";
  bool emit_primitives = true;  ///< include the FA/MUL2 primitive definitions
};

/// Emit the (live part of the) netlist as structural Verilog. Primary inputs
/// become a flat `in` bus in creation order; marked outputs become `out`.
void write_verilog(std::ostream& os, const Netlist& nl, const VerilogOptions& options = {});

/// Convenience: Verilog source as a string.
[[nodiscard]] std::string to_verilog(const Netlist& nl, const VerilogOptions& options = {});

}  // namespace xbs::netlist
