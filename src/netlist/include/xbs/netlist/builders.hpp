/// \file builders.hpp
/// \brief Netlist generators for the paper's hardware blocks (Figs. 6-7) and
/// the FIR application stages.
#pragma once

#include <span>
#include <vector>

#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/arith/unit.hpp"
#include "xbs/netlist/netlist.hpp"

namespace xbs::netlist {

/// Result of building an adder: the sum bus plus the carry-out net.
struct AdderNets {
  std::vector<NetId> sum;
  NetId carry_out = kConst0;
};

/// Build the Fig. 6 ripple-carry adder over existing nets. Buses must both be
/// `cfg.width` wide (LSB first). FA i uses the approximate kind iff its
/// absolute weight (cfg.weight_offset + i) < cfg.approx_lsbs.
AdderNets build_rca(Netlist& nl, const arith::AdderConfig& cfg, std::span<const NetId> a,
                    std::span<const NetId> b, NetId carry_in = kConst0);

/// Build the Fig. 7 recursive multiplier over existing nets; returns the
/// 2*width product bus. Structure and approximation decisions mirror
/// arith::RecursiveMultiplier exactly (cross-validated in tests).
std::vector<NetId> build_multiplier(Netlist& nl, const arith::MultiplierConfig& cfg,
                                    std::span<const NetId> a, std::span<const NetId> b);

/// Specification of one FIR application stage for netlist construction: one
/// 16-bit input bus per tap (the tap-register outputs), a constant
/// coefficient-magnitude per tap feeding a 16x16 multiplier core, and a chain
/// of 32-bit accumulation adders. Sign handling and the output normalization
/// shift are wiring-level (zero-cost) details, and registers are excluded, as
/// in the paper's analysis (see DESIGN.md).
struct FirStageSpec {
  std::vector<u32> coeff_magnitudes;  ///< one per tap; zero taps are skipped
  arith::StageArithConfig arith;
};

/// Build a whole FIR stage; the 32-bit accumulator bus is marked as the
/// primary output. Input buses are created inside (16 bits per non-zero tap).
Netlist build_fir_stage(const FirStageSpec& spec);

/// Build the squarer stage: one 16x16 multiplier with both operand ports fed
/// by the same input bus (y = x * x), so synthesis sees the true x^2 logic.
Netlist build_squarer_stage(const arith::MultiplierConfig& cfg);

/// Build a moving-window-integration stage: a feed-forward tree of
/// `window - 1` adders of width cfg.width summing `window` input buses of
/// \p input_bits live bits (zero-extended). Adder-only, as the paper notes
/// for this stage; \p input_bits reflects the squared-signal word width so
/// dead-logic elimination prices the real live datapath.
Netlist build_mwi_stage(int window, const arith::AdderConfig& cfg, int input_bits = 16);

}  // namespace xbs::netlist
