#include "xbs/netlist/synth_report.hpp"

#include <algorithm>
#include <vector>

namespace xbs::netlist {

SynthesisReport report(const Netlist& nl) {
  SynthesisReport rep;
  // Fanout of every (resolved) net over live modules and primary outputs:
  // needed to price modules at output-cone granularity below.
  std::vector<u32> fanout(nl.net_count(), 0);
  for (const NetId n : nl.outputs()) ++fanout[nl.resolve(n)];
  for (const Module& m : nl.modules()) {
    if (m.removed) continue;
    for (int i = 0; i < m.n_in; ++i) ++fanout[nl.resolve(m.in[static_cast<std::size_t>(i)])];
  }
  std::vector<double> arrival(nl.net_count(), 0.0);
  for (const Module& m : nl.modules()) {
    if (m.removed) {
      ++rep.removed_modules;
      continue;
    }
    ++rep.live_modules;
    hwmodel::Cost c{};
    switch (m.kind) {
      case ModuleKind::FullAdder:
        ++rep.full_adders;
        c = hwmodel::cell_cost(m.fa_kind);
        break;
      case ModuleKind::Mult2:
        ++rep.mult2s;
        c = hwmodel::cell_cost(m.m2_kind);
        break;
      case ModuleKind::Inverter:
        ++rep.inverters;
        break;  // polarity element: zero cost by convention
    }
    // Cone pricing: a surviving module is priced by the fraction of its
    // input/output cones that are still live — a full adder with a constant
    // operand is really a half adder, one with a dead carry-out loses its
    // majority gate, and an elementary multiplier with folded product bits
    // keeps only the cones of the live bits. This is what synthesis does to
    // partially-folded cells. Standalone blocks with all pins observable
    // keep full cost, so the Table 1 numbers are reproduced exactly.
    int live_outs = 0;
    for (int o = 0; o < m.n_out; ++o) {
      const NetId onet = m.out[static_cast<std::size_t>(o)];
      if (nl.resolve(onet) == onet && fanout[onet] > 0) ++live_outs;
    }
    int live_ins = 0;
    for (int i = 0; i < m.n_in; ++i) {
      const NetId inet = nl.resolve(m.in[static_cast<std::size_t>(i)]);
      if (inet != kConst0 && inet != kConst1) ++live_ins;
    }
    const double out_frac =
        m.n_out > 0 ? static_cast<double>(live_outs) / static_cast<double>(m.n_out) : 1.0;
    const double in_frac =
        m.n_in > 0 ? static_cast<double>(live_ins) / static_cast<double>(m.n_in) : 1.0;
    const double scale = 0.5 * (out_frac + in_frac);
    rep.cost.area_um2 += scale * c.area_um2;
    rep.cost.power_uw += scale * c.power_uw;
    rep.cost.energy_fj += scale * c.energy_fj;
    double in_arrival = 0.0;
    for (int i = 0; i < m.n_in; ++i) {
      in_arrival = std::max(in_arrival, arrival[nl.resolve(m.in[static_cast<std::size_t>(i)])]);
    }
    const double out_arrival = in_arrival + c.delay_ns;
    for (int o = 0; o < m.n_out; ++o) {
      const NetId onet = m.out[static_cast<std::size_t>(o)];
      if (nl.resolve(onet) == onet) arrival[onet] = out_arrival;
    }
  }
  double crit = 0.0;
  for (const NetId n : nl.outputs()) crit = std::max(crit, arrival[nl.resolve(n)]);
  // Also consider internal nets, in case outputs were folded to constants.
  for (const double a : arrival) crit = std::max(crit, a);
  rep.cost.delay_ns = crit;
  rep.critical_path_ns = crit;
  return rep;
}

}  // namespace xbs::netlist
