#include "xbs/netlist/netlist.hpp"

#include <cassert>
#include <stdexcept>

#include "xbs/arith/fulladder.hpp"
#include "xbs/arith/mult2x2.hpp"
#include "xbs/common/bitops.hpp"

namespace xbs::netlist {

Netlist::Netlist() {
  // Nets 0 and 1 are the constants.
  n_nets_ = 2;
  alias_.assign(2, 0);
  alias_[0] = kConst0;
  alias_[1] = kConst1;
}

NetId Netlist::new_input() {
  const NetId n = static_cast<NetId>(n_nets_++);
  alias_.push_back(n);
  inputs_.push_back(n);
  return n;
}

std::vector<NetId> Netlist::new_input_bus(int width) {
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(new_input());
  return bus;
}

std::vector<NetId> Netlist::const_bus(u64 value, int width) const {
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(const_net(bit_of(value, i)));
  return bus;
}

FaPins Netlist::emit_fa(AdderKind kind, NetId a, NetId b, NetId cin, int weight) {
  assert(a < n_nets_ && b < n_nets_ && cin < n_nets_);
  Module m;
  m.kind = ModuleKind::FullAdder;
  m.fa_kind = kind;
  m.in = {a, b, cin, kConst0};
  m.n_in = 3;
  m.n_out = 2;
  m.weight = weight;
  const NetId sum = static_cast<NetId>(n_nets_++);
  const NetId cout = static_cast<NetId>(n_nets_++);
  alias_.push_back(sum);
  alias_.push_back(cout);
  m.out = {sum, cout, kConst0, kConst0};
  modules_.push_back(m);
  return FaPins{sum, cout};
}

std::array<NetId, 4> Netlist::emit_mult2(MultKind kind, NetId a0, NetId a1, NetId b0, NetId b1,
                                         int weight) {
  assert(a0 < n_nets_ && a1 < n_nets_ && b0 < n_nets_ && b1 < n_nets_);
  Module m;
  m.kind = ModuleKind::Mult2;
  m.m2_kind = kind;
  m.in = {a0, a1, b0, b1};
  m.n_in = 4;
  m.n_out = 4;
  m.weight = weight;
  std::array<NetId, 4> outs{};
  for (auto& o : outs) {
    o = static_cast<NetId>(n_nets_++);
    alias_.push_back(o);
  }
  m.out = outs;
  modules_.push_back(m);
  return outs;
}

NetId Netlist::emit_not(NetId a) {
  assert(a < n_nets_);
  Module m;
  m.kind = ModuleKind::Inverter;
  m.in = {a, kConst0, kConst0, kConst0};
  m.n_in = 1;
  m.n_out = 1;
  const NetId o = static_cast<NetId>(n_nets_++);
  alias_.push_back(o);
  m.out = {o, kConst0, kConst0, kConst0};
  modules_.push_back(m);
  return o;
}

void Netlist::mark_output(NetId n) {
  assert(n < n_nets_);
  outputs_.push_back(n);
}

NetId Netlist::resolve(NetId n) const noexcept {
  // Alias chains are short (installed once per optimization), but follow them
  // fully for safety.
  NetId cur = n;
  while (alias_[cur] != cur) cur = alias_[cur];
  return cur;
}

void Netlist::set_alias(NetId n, NetId target) {
  const NetId t = resolve(target);
  if (t == n) throw std::logic_error("alias cycle");
  alias_[n] = t;
}

std::size_t Netlist::live_module_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : modules_) n += m.removed ? 0 : 1;
  return n;
}

std::vector<bool> Netlist::simulate(const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("simulate: wrong number of input values");
  }
  std::vector<bool> val(n_nets_, false);
  val[kConst1] = true;
  for (std::size_t i = 0; i < inputs_.size(); ++i) val[inputs_[i]] = input_values[i];
  for (const Module& m : modules_) {
    if (m.removed) continue;
    switch (m.kind) {
      case ModuleKind::FullAdder: {
        const bool a = val[resolve(m.in[0])];
        const bool b = val[resolve(m.in[1])];
        const bool c = val[resolve(m.in[2])];
        const arith::FaOut o = arith::full_add(m.fa_kind, a, b, c);
        val[m.out[0]] = o.sum;
        val[m.out[1]] = o.cout;
        break;
      }
      case ModuleKind::Mult2: {
        const u32 a = (val[resolve(m.in[1])] ? 2u : 0u) | (val[resolve(m.in[0])] ? 1u : 0u);
        const u32 b = (val[resolve(m.in[3])] ? 2u : 0u) | (val[resolve(m.in[2])] ? 1u : 0u);
        const u32 p = arith::mult2(m.m2_kind, a, b);
        for (int i = 0; i < 4; ++i) val[m.out[static_cast<std::size_t>(i)]] = bit_of(p, i);
        break;
      }
      case ModuleKind::Inverter:
        val[m.out[0]] = !val[resolve(m.in[0])];
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const NetId n : outputs_) out.push_back(val[resolve(n)]);
  return out;
}

u64 Netlist::simulate_word(std::span<const u64> input_words,
                           std::span<const int> input_widths) const {
  if (input_words.size() != input_widths.size()) {
    throw std::invalid_argument("simulate_word: words/widths mismatch");
  }
  std::vector<bool> bits;
  bits.reserve(inputs_.size());
  for (std::size_t w = 0; w < input_words.size(); ++w) {
    for (int i = 0; i < input_widths[w]; ++i) bits.push_back(bit_of(input_words[w], i));
  }
  if (bits.size() != inputs_.size()) {
    throw std::invalid_argument("simulate_word: total width != number of inputs");
  }
  const std::vector<bool> out = simulate(bits);
  if (out.size() > 64) throw std::invalid_argument("simulate_word: more than 64 output bits");
  u64 word = 0;
  for (std::size_t i = 0; i < out.size(); ++i) word = with_bit(word, static_cast<int>(i), out[i]);
  return word;
}

}  // namespace xbs::netlist
