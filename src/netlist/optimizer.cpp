#include "xbs/netlist/optimizer.hpp"

#include <array>
#include <optional>
#include <vector>

#include "xbs/arith/fulladder.hpp"
#include "xbs/arith/mult2x2.hpp"
#include "xbs/common/bitops.hpp"

namespace xbs::netlist {
namespace {

/// Constant value of a (resolved) net, if known.
std::optional<bool> const_value(NetId n) noexcept {
  if (n == kConst0) return false;
  if (n == kConst1) return true;
  return std::nullopt;
}

/// Evaluate a module's outputs for a concrete input assignment.
std::array<bool, 4> eval_module(const Module& m, const std::array<bool, 4>& in) noexcept {
  std::array<bool, 4> out{};
  switch (m.kind) {
    case ModuleKind::FullAdder: {
      const arith::FaOut o = arith::full_add(m.fa_kind, in[0], in[1], in[2]);
      out[0] = o.sum;
      out[1] = o.cout;
      break;
    }
    case ModuleKind::Mult2: {
      const u32 a = (in[1] ? 2u : 0u) | (in[0] ? 1u : 0u);
      const u32 b = (in[3] ? 2u : 0u) | (in[2] ? 1u : 0u);
      const u32 p = arith::mult2(m.m2_kind, a, b);
      for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] = bit_of(p, i);
      break;
    }
    case ModuleKind::Inverter:
      out[0] = !in[0];
      break;
  }
  return out;
}

/// Truth table of one module under its known-constant inputs: for each free
/// variable assignment, the value of each output.
struct ProjectedFunction {
  std::vector<NetId> vars;               ///< distinct free input nets
  std::vector<std::array<bool, 4>> out;  ///< out[assignment][output pin]
};

ProjectedFunction project(const Netlist& nl, const Module& m) {
  ProjectedFunction f;
  std::array<NetId, 4> rin{};
  std::array<std::optional<bool>, 4> cin{};
  std::array<int, 4> var_of{};
  for (int i = 0; i < m.n_in; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    rin[si] = nl.resolve(m.in[si]);
    cin[si] = const_value(rin[si]);
    if (!cin[si]) {
      int idx = -1;
      for (std::size_t v = 0; v < f.vars.size(); ++v)
        if (f.vars[v] == rin[si]) idx = static_cast<int>(v);
      if (idx < 0) {
        idx = static_cast<int>(f.vars.size());
        f.vars.push_back(rin[si]);
      }
      var_of[si] = idx;
    }
  }
  const int n_assign = 1 << f.vars.size();
  f.out.reserve(static_cast<std::size_t>(n_assign));
  for (int a = 0; a < n_assign; ++a) {
    std::array<bool, 4> in{};
    for (int i = 0; i < m.n_in; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      in[si] = cin[si] ? *cin[si] : (((a >> var_of[si]) & 1) != 0);
    }
    f.out.push_back(eval_module(m, in));
  }
  return f;
}

/// One forward partial-evaluation pass. Returns {const_folds, wire_collapses}.
std::pair<int, int> partial_eval_pass(Netlist& nl) {
  int const_folds = 0;
  int collapses = 0;
  for (Module& m : nl.modules()) {
    if (m.removed) continue;
    const ProjectedFunction f = project(nl, m);
    const int n_vars = static_cast<int>(f.vars.size());
    const int n_assign = 1 << n_vars;
    bool all_resolved = true;
    for (int o = 0; o < m.n_out; ++o) {
      const std::size_t so = static_cast<std::size_t>(o);
      const NetId onet = m.out[so];
      if (nl.resolve(onet) != onet) continue;  // already aliased
      // Constant output?
      bool is_const = true;
      for (int a = 1; a < n_assign && is_const; ++a)
        is_const = (f.out[static_cast<std::size_t>(a)][so] == f.out[0][so]);
      if (is_const) {
        nl.set_alias(onet, Netlist::const_net(f.out[0][so]));
        continue;
      }
      // Identity wire to one free variable?
      int wire_var = -1;
      for (int v = 0; v < n_vars && wire_var < 0; ++v) {
        bool all = true;
        for (int a = 0; a < n_assign && all; ++a)
          all = (f.out[static_cast<std::size_t>(a)][so] == (((a >> v) & 1) != 0));
        if (all) wire_var = v;
      }
      if (wire_var >= 0) {
        nl.set_alias(onet, f.vars[static_cast<std::size_t>(wire_var)]);
        continue;
      }
      all_resolved = false;
    }
    if (all_resolved) {
      m.removed = true;
      if (n_vars == 0) {
        ++const_folds;
      } else {
        ++collapses;
      }
    }
  }
  return {const_folds, collapses};
}

/// One dead-module elimination sweep. Returns removals.
int dce_pass(Netlist& nl) {
  std::vector<u32> fanout(nl.net_count(), 0);
  for (const NetId n : nl.outputs()) ++fanout[nl.resolve(n)];
  for (const Module& m : nl.modules()) {
    if (m.removed) continue;
    for (int i = 0; i < m.n_in; ++i) ++fanout[nl.resolve(m.in[static_cast<std::size_t>(i)])];
  }
  int removed = 0;
  auto& mods = nl.modules();
  // Walk backwards so removing a consumer can free its producers in the same
  // sweep.
  for (auto it = mods.rbegin(); it != mods.rend(); ++it) {
    Module& m = *it;
    if (m.removed) continue;
    bool used = false;
    for (int o = 0; o < m.n_out && !used; ++o) {
      const NetId onet = m.out[static_cast<std::size_t>(o)];
      // An aliased output is no longer driven by this module.
      if (nl.resolve(onet) == onet && fanout[onet] > 0) used = true;
    }
    if (!used) {
      m.removed = true;
      ++removed;
      for (int i = 0; i < m.n_in; ++i) {
        const NetId r = nl.resolve(m.in[static_cast<std::size_t>(i)]);
        if (fanout[r] > 0) --fanout[r];
      }
    }
  }
  return removed;
}

}  // namespace

OptimizeStats optimize(Netlist& nl) {
  OptimizeStats stats;
  for (;;) {
    ++stats.passes;
    const auto [folds, collapses] = partial_eval_pass(nl);
    const int dead = dce_pass(nl);
    stats.const_folded += folds;
    stats.wire_collapsed += collapses;
    stats.dead_removed += dead;
    if (folds + collapses + dead == 0) break;
    if (stats.passes > 64) break;  // defensive; fixpoint is reached in 2-3 passes
  }
  return stats;
}

}  // namespace xbs::netlist
