// Unit tests for fixed-point helpers.
#include <gtest/gtest.h>

#include <limits>

#include "xbs/common/fixed.hpp"

namespace xbs {
namespace {

TEST(Saturate, WithinRangePassesThrough) {
  EXPECT_EQ(saturate_to_bits(1234, 16), 1234);
  EXPECT_EQ(saturate_to_bits(-1234, 16), -1234);
  EXPECT_EQ(saturate_to_bits(32767, 16), 32767);
  EXPECT_EQ(saturate_to_bits(-32768, 16), -32768);
}

TEST(Saturate, ClampsOutOfRange) {
  EXPECT_EQ(saturate_to_bits(32768, 16), 32767);
  EXPECT_EQ(saturate_to_bits(-32769, 16), -32768);
  EXPECT_EQ(saturate_to_bits(1e15, 16), 32767);
  EXPECT_EQ(saturate_i16(1LL << 40), 32767);
  EXPECT_EQ(saturate_i16(-(1LL << 40)), -32768);
}

TEST(Saturate, I32Limits) {
  EXPECT_EQ(saturate_i32(i64{std::numeric_limits<i32>::max()} + 5),
            std::numeric_limits<i32>::max());
  EXPECT_EQ(saturate_i32(i64{std::numeric_limits<i32>::min()} - 5),
            std::numeric_limits<i32>::min());
  EXPECT_EQ(saturate_i32(12345), 12345);
}

TEST(ShiftRound, RoundsToNearest) {
  EXPECT_EQ(shift_round(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(shift_round(5, 2), 1);    // 1.25 -> 1
  EXPECT_EQ(shift_round(6, 2), 2);    // 1.5 -> 2 (ties away)
  EXPECT_EQ(shift_round(-7, 2), -2);
  EXPECT_EQ(shift_round(-6, 2), -2);
  EXPECT_EQ(shift_round(-5, 2), -1);
}

TEST(ShiftRound, NegativeShiftIsLeftShift) { EXPECT_EQ(shift_round(3, -2), 12); }

TEST(ShiftRound, BoundaryValuesAreDefinedAndSaturating) {
  constexpr i64 kMax = std::numeric_limits<i64>::max();
  constexpr i64 kMin = std::numeric_limits<i64>::min();

  // Shift 0 is the identity at both range ends.
  EXPECT_EQ(shift_round(kMax, 0), kMax);
  EXPECT_EQ(shift_round(kMin, 0), kMin);
  EXPECT_EQ(shift_round(i64{0}, 0), 0);

  // Left shifts of large magnitudes saturate instead of overflowing.
  EXPECT_EQ(shift_round(kMax, -1), kMax);
  EXPECT_EQ(shift_round(kMin, -1), kMin);
  EXPECT_EQ(shift_round(kMax / 2 + 1, -1), kMax);
  EXPECT_EQ(shift_round(i64{1}, -62), i64{1} << 62);
  EXPECT_EQ(shift_round(i64{1}, -63), kMax);     // 2^63 is out of range
  EXPECT_EQ(shift_round(i64{-1}, -63), kMin);    // -2^63 is exactly kMin
  EXPECT_EQ(shift_round(i64{-2}, -63), kMin);    // saturates
  EXPECT_EQ(shift_round(i64{0}, -63), 0);

  // The exact-fit cases still shift rather than saturate.
  EXPECT_EQ(shift_round(kMax / 2, -1), kMax - 1);
  EXPECT_EQ(shift_round(kMin / 2, -1), kMin);

  // Right shifts at the range ends round without intermediate overflow
  // (the naive v + bias / -v forms are UB here).
  EXPECT_EQ(shift_round(kMax, 1), i64{1} << 62);  // (2^63-1+1) >> 1
  EXPECT_EQ(shift_round(kMin, 1), -(i64{1} << 62));
  EXPECT_EQ(shift_round(kMax, 62), 2);  // 1.999... rounds to 2
  EXPECT_EQ(shift_round(kMin, 62), -2);
  EXPECT_EQ(shift_round(kMin, 63), -1);
  EXPECT_EQ(shift_round(kMax, 63), 1);  // 0.999... rounds away to 1
}

TEST(QFormat, ScaleAndRange) {
  const QFormat q{1, 15};  // Q1.15
  EXPECT_EQ(q.total_bits(), 16);
  EXPECT_DOUBLE_EQ(q.scale(), 32768.0);
  EXPECT_NEAR(q.max_value(), 0.99997, 1e-4);
  EXPECT_DOUBLE_EQ(q.min_value(), -1.0);
}

TEST(QFormat, QuantizeRoundTrip) {
  const QFormat q{8, 8};
  for (const double v : {0.0, 1.0, -1.0, 3.14159, -2.71828, 100.5}) {
    const i64 fix = quantize(v, q);
    EXPECT_NEAR(dequantize(fix, q), v, 1.0 / q.scale() * 0.51) << v;
  }
}

TEST(QFormat, QuantizeSaturates) {
  const QFormat q{8, 8};  // range [-128, ~127.996]
  EXPECT_EQ(quantize(1e9, q), (i64{1} << 15) - 1);
  EXPECT_EQ(quantize(-1e9, q), -(i64{1} << 15));
}

TEST(QuantizeSignal, VectorizedMatchesScalar) {
  const QFormat q{16, 0};
  const std::vector<double> sig = {0.2, 1.7, -3.5, 40000.0, -40000.0};
  const auto fixed = quantize_signal(sig, q);
  ASSERT_EQ(fixed.size(), sig.size());
  EXPECT_EQ(fixed[0], 0);
  EXPECT_EQ(fixed[1], 2);
  EXPECT_EQ(fixed[2], -4);  // ties away from zero via nearbyint -> -4? (-3.5 rounds to even = -4)
  EXPECT_EQ(fixed[3], 32767);
  EXPECT_EQ(fixed[4], -32768);
  const auto back = dequantize_signal(fixed, q);
  EXPECT_DOUBLE_EQ(back[1], 2.0);
}

}  // namespace
}  // namespace xbs
