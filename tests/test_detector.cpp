// Tests for the adaptive-threshold QRS decision logic.
#include <gtest/gtest.h>

#include "xbs/ecg/adc.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/ecg/template_gen.hpp"
#include "xbs/metrics/peaks.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::pantompkins {
namespace {

DetectionResult run_detection(const ecg::DigitizedRecord& rec) {
  const PanTompkinsPipeline pipe;
  return pipe.run(rec.adu).detection;
}

TEST(Detector, CleanRecordDetectedPerfectly) {
  ecg::TemplateEcgParams p;
  ecg::EcgRecord rec = ecg::generate_template_ecg(p, 20000, 1234);
  const auto digit = ecg::AdcFrontEnd{}.digitize(rec);
  const auto det = run_detection(digit);
  const auto m = metrics::match_peaks(digit.r_peaks, det.peaks, 30);
  EXPECT_EQ(m.false_negatives, 0);
  EXPECT_EQ(m.false_positives, 0);
}

TEST(Detector, NoisyDatasetAbove99Percent) {
  int fn = 0, fp = 0, truth = 0;
  for (int i = 0; i < 6; ++i) {
    const auto rec = ecg::nsrdb_like_digitized(i, 10000);
    const auto det = run_detection(rec);
    const auto m = metrics::match_peaks(rec.r_peaks, det.peaks, 30);
    fn += m.false_negatives;
    fp += m.false_positives;
    truth += m.truth_count();
  }
  EXPECT_GE(truth, 200);
  EXPECT_LE(fn + fp, truth / 100);  // >= 99 % aggregate accuracy
}

TEST(Detector, TallTWavesDoNotDouble) {
  // Exaggerated T waves must not produce double detections (slope rule).
  ecg::TemplateEcgParams p;
  p.t.amplitude_mv = 0.55;
  p.t.width_s = 0.07;
  const ecg::EcgRecord rec = ecg::generate_template_ecg(p, 20000, 77);
  const auto digit = ecg::AdcFrontEnd{}.digitize(rec);
  const auto det = run_detection(digit);
  const auto m = metrics::match_peaks(digit.r_peaks, det.peaks, 30);
  EXPECT_EQ(m.false_positives, 0);
  EXPECT_LE(m.false_negatives, 1);
}

TEST(Detector, RefractorySuppressesAdjacentMarks) {
  const auto rec = ecg::nsrdb_like_digitized(2, 10000);
  const auto det = run_detection(rec);
  for (std::size_t i = 1; i < det.peaks.size(); ++i) {
    EXPECT_GE(det.peaks[i] - det.peaks[i - 1], 40u) << i;  // 200 ms at 200 Hz
  }
}

TEST(Detector, TraceCoversDecisions) {
  const auto rec = ecg::nsrdb_like_digitized(0, 10000);
  const auto det = run_detection(rec);
  int accepted = 0;
  for (const auto& ev : det.trace) {
    if (ev.decision == PeakDecision::Accepted ||
        ev.decision == PeakDecision::SearchBackRecovered) {
      ++accepted;
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(accepted), det.peaks.size());
}

TEST(Detector, SizeMismatchThrows) {
  std::vector<i32> a(100, 0), b(99, 0);
  EXPECT_THROW((void)detect_qrs(a, b, a), std::invalid_argument);
}

TEST(Detector, EmptySignalYieldsNothing) {
  std::vector<i32> empty;
  const auto det = detect_qrs(empty, empty, empty);
  EXPECT_TRUE(det.peaks.empty());
}

TEST(Detector, AmplitudeStepAdapts) {
  // Halve the signal amplitude midway: adaptive thresholds must keep
  // detecting beats in the quieter half.
  ecg::TemplateEcgParams p;
  ecg::EcgRecord rec = ecg::generate_template_ecg(p, 30000, 5);
  for (std::size_t i = 15000; i < rec.mv.size(); ++i) rec.mv[i] *= 0.5;
  const auto digit = ecg::AdcFrontEnd{}.digitize(rec);
  const auto det = run_detection(digit);
  // Count detections in the second half.
  int truth_late = 0, det_late = 0;
  for (const auto r : digit.r_peaks) truth_late += (r >= 16000) ? 1 : 0;
  for (const auto d : det.peaks) det_late += (d >= 16000) ? 1 : 0;
  EXPECT_GE(det_late, truth_late - 2);
}

TEST(Detector, ColdResetIsBitIdenticalToFreshWarmResetIsNot) {
  // The reset contract at the detector layer: WarmStart::Cold reproduces a
  // freshly constructed detector bit for bit; WarmStart::KeepThresholds
  // skips the 2 s training window because the trained SPK/NPK survive.
  const auto rec = ecg::nsrdb_like_digitized(1, 6000);
  const PanTompkinsPipeline pipe;
  const auto sig = pipe.run(rec.adu);

  OnlineDetector det;
  (void)det.push(sig.mwi, sig.hpf, rec.adu);
  (void)det.flush();
  ASSERT_FALSE(det.result().peaks.empty());

  // Cold: the full record replays to the exact fresh-run result.
  det.reset();  // WarmStart::Cold is the default
  (void)det.push(sig.mwi, sig.hpf, rec.adu);
  (void)det.flush();
  const auto fresh = detect_qrs(sig.mwi, sig.hpf, rec.adu);
  EXPECT_EQ(det.result().peaks, fresh.peaks);
  ASSERT_EQ(det.result().trace.size(), fresh.trace.size());
  for (std::size_t i = 0; i < fresh.trace.size(); ++i) {
    EXPECT_EQ(det.result().trace[i], fresh.trace[i]) << "trace[" << i << "]";
  }

  // Warm: only the head of the record (inside the training window) arrives
  // after the reset. A cold/fresh detector emits nothing there; the warm one
  // detects beats immediately. The streamed prefix stays strictly below the
  // 2 s training target so the comparison isolates the carried thresholds.
  const std::size_t early = 300;
  det.reset(WarmStart::KeepThresholds);
  EXPECT_FALSE(det.flushed());
  std::size_t warm_beats = 0;
  for (const PeakEvent& ev : det.push(std::span<const i32>(sig.mwi).subspan(0, early),
                                      std::span<const i32>(sig.hpf).subspan(0, early),
                                      std::span<const i32>(rec.adu).subspan(0, early))) {
    warm_beats += (ev.decision == PeakDecision::Accepted ||
                   ev.decision == PeakDecision::SearchBackRecovered)
                      ? 1
                      : 0;
  }
  EXPECT_GT(warm_beats, 0u);

  OnlineDetector cold;
  const auto cold_evs = cold.push(std::span<const i32>(sig.mwi).subspan(0, early),
                                  std::span<const i32>(sig.hpf).subspan(0, early),
                                  std::span<const i32>(rec.adu).subspan(0, early));
  EXPECT_TRUE(cold_evs.empty());  // untrained: still inside the 2 s window
}

}  // namespace
}  // namespace xbs::pantompkins
