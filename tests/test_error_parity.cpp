/// \file test_error_parity.cpp
/// \brief Decoder error-path parity: every net::WireError and every
/// store::StoreErrc must be reachable from at least one committed fuzz
/// regression input (plus, for the environmental store errors, a
/// deterministic in-test construction).
///
/// This catches two rot modes the type system cannot: an error code that no
/// input can produce any more (dead enum value / unreachable branch), and a
/// committed regression input that stopped exercising the path it was
/// minimized for (e.g. an encoder change shifted an offset). The tables
/// below are exhaustive over both enums by construction — adding a code
/// without a committed input fails here, by design.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xbs/ecg/record.hpp"
#include "xbs/net/protocol.hpp"
#include "xbs/store/store.hpp"
#include "xbs/store/wfdb.hpp"

namespace {

using namespace xbs;

std::vector<u8> slurp(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  EXPECT_TRUE(is) << p;
  return std::vector<u8>(std::istreambuf_iterator<char>(is),
                         std::istreambuf_iterator<char>());
}

std::vector<std::filesystem::path> files_under(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  for (const auto& e : std::filesystem::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Feed one committed wire input (minus its split-steering lead byte)
/// through the framing layer, collecting every error the decoders *return*
/// and every code carried by a well-formed ERROR frame.
void classify_wire(const std::vector<u8>& bytes, std::set<net::WireError>& decoded,
                   std::set<net::WireError>& carried) {
  if (bytes.empty()) return;
  net::FrameDecoder dec;
  dec.feed(std::span<const u8>(bytes.data() + 1, bytes.size() - 1));
  net::FrameHeader hdr;
  std::vector<u8> payload;
  net::WireError err = net::WireError::None;
  for (;;) {
    const net::FrameDecoder::Next r = dec.next(hdr, payload, err);
    if (r == net::FrameDecoder::Next::NeedMore) return;
    if (r == net::FrameDecoder::Next::Error) {
      decoded.insert(err);
      return;
    }
    const std::span<const u8> p(payload);
    net::WireError e = net::WireError::None;
    switch (hdr.type) {
      case net::FrameType::Hello: {
        net::HelloFrame f;
        e = net::decode_hello(p, f);
        break;
      }
      case net::FrameType::Open: {
        net::OpenFrame f;
        e = net::decode_open(p, f);
        break;
      }
      case net::FrameType::Chunk: {
        std::vector<i32> samples;
        e = net::decode_chunk(p, samples);
        break;
      }
      case net::FrameType::Drain: {
        net::DrainFrame f;
        e = net::decode_drain(p, f);
        break;
      }
      case net::FrameType::Close:
        break;
      case net::FrameType::Reset: {
        net::ResetFrame f;
        e = net::decode_reset(p, f);
        break;
      }
      case net::FrameType::Event: {
        std::vector<stream::Event> evs;
        e = net::decode_events(p, evs);
        break;
      }
      case net::FrameType::Stats: {
        net::StatsFrame f;
        e = net::decode_stats(p, f);
        break;
      }
      case net::FrameType::Error: {
        net::ErrorFrame f;
        e = net::decode_error(p, f);
        if (e == net::WireError::None) carried.insert(f.code);
        break;
      }
    }
    if (e != net::WireError::None) decoded.insert(e);
  }
}

ecg::DigitizedRecord tiny_record() {
  ecg::DigitizedRecord rec;
  rec.name = "parity";
  rec.fs_hz = 360.0;
  rec.gain_adu_per_mv = 200.0;
  rec.adu = {0, 1, 2, 3};
  return rec;
}

}  // namespace

TEST(ErrorParity, EveryWireErrorReachableFromCommittedInputs) {
  const std::filesystem::path dir =
      std::filesystem::path(XBS_FUZZ_DIR) / "regressions/frame_decoder";
  ASSERT_TRUE(std::filesystem::is_directory(dir));

  std::set<net::WireError> decoded;
  std::set<net::WireError> carried;
  for (const auto& f : files_under(dir)) classify_wire(slurp(f), decoded, carried);

  // Framing/payload-level verdicts the client-side decoders must produce.
  const net::WireError from_decoders[] = {
      net::WireError::BadMagic,  net::WireError::BadVersion, net::WireError::BadHeader,
      net::WireError::UnknownType, net::WireError::Oversize, net::WireError::Malformed,
  };
  for (const net::WireError e : from_decoders) {
    EXPECT_TRUE(decoded.count(e)) << "no committed input makes a decoder return "
                                  << net::to_string(e);
  }
  // Server-originated refusals travel inside ERROR frames; the codec must
  // round-trip every one of them.
  const net::WireError from_error_frames[] = {
      net::WireError::HelloRequired, net::WireError::NoSession,
      net::WireError::SessionExists, net::WireError::SessionBusy,
      net::WireError::SessionLimit,  net::WireError::Refused,
      net::WireError::Internal,
  };
  for (const net::WireError e : from_error_frames) {
    EXPECT_TRUE(carried.count(e)) << "no committed ERROR frame carries "
                                  << net::to_string(e);
  }
}

TEST(ErrorParity, EveryStoreErrcReachable) {
  const std::filesystem::path dir =
      std::filesystem::path(XBS_FUZZ_DIR) / "regressions/store_reader";
  ASSERT_TRUE(std::filesystem::is_directory(dir));

  std::set<store::StoreErrc> observed;
  for (const auto& f : files_under(dir)) {
    SCOPED_TRACE(f.string());
    try {
      store::RecordReader reader(f.string());
      try {
        (void)reader.record();
      } catch (const store::StoreError& e) {
        observed.insert(e.errc());  // read-time verdict (PageCorrupt/BadPayload)
      }
    } catch (const store::StoreError& e) {
      observed.insert(e.errc());  // open-time verdict
    }
  }

  // File-byte verdicts: one committed image per code.
  const store::StoreErrc from_files[] = {
      store::StoreErrc::TruncatedFile, store::StoreErrc::BadMagic,
      store::StoreErrc::BadVersion,    store::StoreErrc::BadHeader,
      store::StoreErrc::BadTagTable,   store::StoreErrc::PageCorrupt,
      store::StoreErrc::BadPayload,
  };
  for (const store::StoreErrc e : from_files) {
    EXPECT_TRUE(observed.count(e)) << "no committed image produces "
                                   << store::to_string(e);
  }

  // Environmental verdicts: not file-byte properties, so they are
  // constructed here instead of committed as images.
  try {
    store::RecordReader reader("/nonexistent-xbs-parity-dir/nope.xbs");
    FAIL() << "open of a nonexistent path succeeded";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.errc(), store::StoreErrc::OpenFailed);
  }
  try {
    store::write_record("/nonexistent-xbs-parity-dir/nope.xbs", tiny_record());
    FAIL() << "write into a nonexistent directory succeeded";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.errc(), store::StoreErrc::WriteFailed);
  }
  try {
    (void)store::encode_record(ecg::DigitizedRecord{});
    FAIL() << "encoding an empty record succeeded";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.errc(), store::StoreErrc::InvalidRecord);
  }
}

TEST(ErrorParity, WfdbOverflowRegressionStaysARuntimeError) {
  // The committed wfdb-overflow-reserve.bin input: a header declaring 2^62
  // samples across 4 signals used to wrap the u64 size arithmetic in
  // decode_212, slip past the exact-size check with an empty .dat, and die
  // in vector::reserve with std::length_error — violating the documented
  // "throws std::runtime_error" contract. parse_header now bounds the
  // declared count; this pins the fix.
  const std::filesystem::path packed =
      std::filesystem::path(XBS_FUZZ_DIR) / "regressions/wfdb/wfdb-overflow-reserve.bin";
  const std::vector<u8> bytes = slurp(packed);
  ASSERT_GE(bytes.size(), 4u);
  const std::size_t hea_len = bytes[0] | std::size_t{bytes[1]} << 8;
  ASSERT_LE(4 + hea_len, bytes.size());

  const std::filesystem::path tmp =
      std::filesystem::path(::testing::TempDir()) / "xbs_parity_wfdb";
  std::filesystem::create_directories(tmp);
  {
    std::ofstream os(tmp / "fz.hea", std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data() + 4),
             static_cast<std::streamsize>(hea_len));
  }
  { std::ofstream os(tmp / "fz.dat", std::ios::binary); }  // empty signal file

  EXPECT_THROW((void)store::read_wfdb((tmp / "fz.hea").string(), 0), std::runtime_error);
  std::filesystem::remove_all(tmp);
}
