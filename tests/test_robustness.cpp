// Failure-injection / robustness suite: the pipeline and detector under
// pathological inputs — flatlines, saturated leads, extreme noise, lead
// dropouts — must degrade gracefully (no crashes, no absurd detections).
#include <gtest/gtest.h>

#include <algorithm>

#include "xbs/common/rng.hpp"
#include "xbs/ecg/adc.hpp"
#include "xbs/ecg/noise.hpp"
#include "xbs/ecg/template_gen.hpp"
#include "xbs/metrics/peaks.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::pantompkins {
namespace {

ecg::DigitizedRecord clean_record(std::size_t n = 12000, u64 seed = 5) {
  return ecg::AdcFrontEnd{}.digitize(ecg::generate_template_ecg({}, n, seed));
}

TEST(Robustness, FlatlineYieldsNoBeats) {
  std::vector<i32> flat(8000, 0);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run(flat);
  EXPECT_TRUE(res.detection.peaks.empty());
}

TEST(Robustness, ConstantOffsetYieldsNoBeats) {
  std::vector<i32> dc(8000, 20000);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run(dc);
  // The HPF kills DC; only the startup transient could look like energy.
  EXPECT_LE(res.detection.peaks.size(), 1u);
}

TEST(Robustness, FullScaleSaturatedLead) {
  // Rail-to-rail square wave at 1 Hz (a detached electrode bouncing):
  // the pipeline must not crash and must not detect hundreds of beats.
  std::vector<i32> rail(8000);
  for (std::size_t i = 0; i < rail.size(); ++i) {
    rail[i] = ((i / 100) % 2 == 0) ? 32767 : -32768;
  }
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run(rail);
  EXPECT_LE(res.detection.peaks.size(), 90u);  // edges occur at 80 transitions
}

TEST(Robustness, ExtremeNoiseDoesNotExplodeDetections) {
  ecg::EcgRecord rec = ecg::generate_template_ecg({}, 12000, 6);
  Rng rng(1);
  ecg::add_emg_noise(rec, 0.6, rng);  // ~half the R amplitude, brutal
  const auto digit = ecg::AdcFrontEnd{}.digitize(rec);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run(digit.adu);
  // Physiological ceiling: < 4 Hz beat rate over the record.
  EXPECT_LT(res.detection.peaks.size(), digit.adu.size() / 50);
}

TEST(Robustness, LeadDropoutRecovers) {
  // Zero out two seconds mid-record: detection must resume afterwards.
  auto rec = clean_record(16000, 8);
  std::fill(rec.adu.begin() + 8000, rec.adu.begin() + 8400, 0);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run(rec.adu);
  int late = 0;
  for (const auto p : res.detection.peaks) late += (p > 9000) ? 1 : 0;
  EXPECT_GE(late, 25);  // ~35 beats live after the dropout window
}

TEST(Robustness, VeryShortRecords) {
  const PanTompkinsPipeline pipe;
  for (const std::size_t n : {0u, 1u, 7u, 50u, 200u}) {
    std::vector<i32> x(n, 100);
    const auto res = pipe.run(x);  // must not crash
    EXPECT_LE(res.detection.peaks.size(), 2u);
  }
}

TEST(Robustness, ApproximatePipelineSurvivesPathologies) {
  const auto cfg = PipelineConfig::from_lsbs({12, 12, 4, 8, 16});
  const PanTompkinsPipeline pipe(cfg);
  std::vector<i32> rail(6000);
  Rng rng(2);
  for (auto& v : rail) v = static_cast<i32>(rng.uniform_int(-32768, 32767));
  const auto res = pipe.run(rail);  // white-noise lead
  EXPECT_LT(res.detection.peaks.size(), 300u);
}

TEST(Robustness, AlternansAmplitudePattern) {
  // Alternating strong/weak beats (electrical alternans): the adaptive
  // thresholds must keep both phases.
  ecg::EcgRecord rec = ecg::generate_template_ecg({}, 16000, 10);
  // Attenuate every other beat by 45%.
  for (std::size_t b = 0; b + 1 < rec.r_peaks.size(); b += 2) {
    const std::size_t lo = rec.r_peaks[b] > 60 ? rec.r_peaks[b] - 60 : 0;
    const std::size_t hi = std::min(rec.r_peaks[b] + 60, rec.mv.size() - 1);
    for (std::size_t i = lo; i <= hi; ++i) rec.mv[i] *= 0.55;
  }
  const auto digit = ecg::AdcFrontEnd{}.digitize(rec);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run(digit.adu);
  const auto m = metrics::match_peaks(digit.r_peaks, res.detection.peaks, 30);
  EXPECT_GE(m.sensitivity_pct(), 95.0);
}

}  // namespace
}  // namespace xbs::pantompkins
