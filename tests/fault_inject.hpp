/// \file fault_inject.hpp
/// \brief Deterministic byte-level fault injection for robustness property
/// tests.
///
/// Works on an in-memory file image (std::vector<u8>) so the same harness
/// corrupts anything that is ultimately a byte stream: XBS1 record files
/// (test_store) and net-protocol frame streams (test_net). Every fault is
/// drawn from a seeded xbs::Rng and returns a Fault descriptor, so a failing
/// property test prints exactly which corruption slipped through and the run
/// reproduces from its seed.
///
/// Fault classes:
///   - flip_bit      silent media bit-rot: one bit, anywhere (or in-range)
///   - truncate      a torn write that lost the tail (shorter file)
///   - torn_write    a same-size torn overwrite: the tail reverts to stale
///                   bytes (old contents or zeros), as when a non-atomic
///                   in-place writer died mid-file
///   - mangle_header a corrupted byte confined to a declared header region
#pragma once

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "xbs/common/rng.hpp"
#include "xbs/common/types.hpp"

namespace xbs::testing {

enum class FaultKind { BitFlip, Truncate, TornWrite, HeaderMangle };

/// What was injected, for failure messages and dedup.
struct Fault {
  FaultKind kind = FaultKind::BitFlip;
  std::size_t offset = 0;  ///< byte offset (BitFlip/HeaderMangle), or the cut point
  unsigned bit = 0;        ///< bit index within the byte (BitFlip only)

  [[nodiscard]] std::string describe() const {
    switch (kind) {
      case FaultKind::BitFlip:
        return "bit flip at byte " + std::to_string(offset) + " bit " + std::to_string(bit);
      case FaultKind::Truncate:
        return "truncated to " + std::to_string(offset) + " bytes";
      case FaultKind::TornWrite:
        return "torn write: stale tail from byte " + std::to_string(offset);
      case FaultKind::HeaderMangle:
        return "header byte mangled at offset " + std::to_string(offset);
    }
    return "unknown fault";
  }
};

/// Seeded source of the fault classes above. One injector per test (or per
/// property-test iteration) keeps runs reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(u64 seed) : rng_(seed) {}

  /// Flip one uniformly random bit in [lo, hi) (whole image by default).
  Fault flip_bit(std::vector<u8>& image, std::size_t lo = 0,
                 std::size_t hi = static_cast<std::size_t>(-1)) {
    hi = std::min(hi, image.size());
    if (lo >= hi) throw std::invalid_argument("flip_bit: empty range");
    Fault f;
    f.kind = FaultKind::BitFlip;
    f.offset = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<i64>(lo), static_cast<i64>(hi) - 1));
    f.bit = static_cast<unsigned>(rng_.uniform_int(0, 7));
    image[f.offset] = static_cast<u8>(image[f.offset] ^ (1u << f.bit));
    return f;
  }

  /// Chop the image to a uniformly random strictly smaller size (possibly 0).
  Fault truncate(std::vector<u8>& image) {
    if (image.empty()) throw std::invalid_argument("truncate: empty image");
    Fault f;
    f.kind = FaultKind::Truncate;
    f.offset = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<i64>(image.size()) - 1));
    image.resize(f.offset);
    return f;
  }

  /// Same-size torn overwrite: bytes from a random cut point onward revert
  /// to \p stale (padded with zeros when stale is shorter) — the failure
  /// shape of a crashed in-place writer, which the atomic-rename discipline
  /// exists to prevent and the reader must still detect when it meets one.
  Fault torn_write(std::vector<u8>& image, const std::vector<u8>& stale = {}) {
    if (image.empty()) throw std::invalid_argument("torn_write: empty image");
    Fault f;
    f.kind = FaultKind::TornWrite;
    f.offset = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<i64>(image.size()) - 1));
    for (std::size_t i = f.offset; i < image.size(); ++i) {
      image[i] = i < stale.size() ? stale[i] : u8{0};
    }
    return f;
  }

  /// Overwrite one random byte in [0, header_bytes) with a different value.
  Fault mangle_header(std::vector<u8>& image, std::size_t header_bytes) {
    header_bytes = std::min(header_bytes, image.size());
    if (header_bytes == 0) throw std::invalid_argument("mangle_header: empty header");
    Fault f;
    f.kind = FaultKind::HeaderMangle;
    f.offset = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<i64>(header_bytes) - 1));
    const u8 old = image[f.offset];
    u8 neu = old;
    while (neu == old) neu = static_cast<u8>(rng_.uniform_int(0, 255));
    image[f.offset] = neu;
    return f;
  }

  /// One uniformly random fault of any applicable class — the shared entry
  /// point for both the property tests and the libFuzzer custom mutators
  /// (fuzz/harness.cpp), which seed their mutation stage from this engine
  /// instead of maintaining a second corruption vocabulary. Classes whose
  /// preconditions the image cannot satisfy (empty image, zero-length header
  /// region) are excluded from the draw; an image that satisfies none is
  /// returned unchanged as a degenerate Truncate-to-0.
  Fault mutate_any(std::vector<u8>& image, std::size_t header_bytes = 0) {
    if (image.empty()) {
      Fault f;
      f.kind = FaultKind::Truncate;
      f.offset = 0;
      return f;
    }
    const i64 classes = header_bytes > 0 ? 4 : 3;
    switch (rng_.uniform_int(0, classes - 1)) {
      case 0: return flip_bit(image);
      case 1: return truncate(image);
      case 2: return torn_write(image);
      default: return mangle_header(image, header_bytes);
    }
  }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  Rng rng_;
};

/// Plain (deliberately non-crash-safe) byte dump — the fixture path for
/// planting a corrupted image on disk.
inline void write_file(const std::string& path, const std::vector<u8>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("fault_inject: cannot open " + path);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("fault_inject: write failed " + path);
}

/// Slurp a file back (verifying round-trips in tests).
inline std::vector<u8> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("fault_inject: cannot open " + path);
  return std::vector<u8>(std::istreambuf_iterator<char>(is),
                         std::istreambuf_iterator<char>());
}

}  // namespace xbs::testing
