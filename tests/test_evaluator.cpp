// Tests for the behavioural quality evaluators.
#include <gtest/gtest.h>

#include "xbs/ecg/dataset.hpp"
#include "xbs/explore/evaluator.hpp"

namespace xbs::explore {
namespace {

using pantompkins::Stage;

std::vector<ecg::DigitizedRecord> workload() { return {ecg::nsrdb_like_digitized(0, 6000)}; }

TEST(PreprocEvaluator, AccurateDesignScoresHighest) {
  PreprocPsnrEvaluator eval(workload());
  const double acc = eval.evaluate(Design{});
  const double mild = eval.evaluate(Design{{Stage::Lpf, 8}});
  const double heavy = eval.evaluate(Design{{Stage::Lpf, 16}, {Stage::Hpf, 16}});
  EXPECT_GT(acc, mild);
  EXPECT_GT(mild, heavy);
  EXPECT_LT(heavy, 40.0);
}

TEST(PreprocEvaluator, CountsEvaluations) {
  PreprocPsnrEvaluator eval(workload());
  EXPECT_EQ(eval.evaluations(), 0);
  (void)eval.evaluate(Design{});
  (void)eval.evaluate(Design{{Stage::Lpf, 4}});
  EXPECT_EQ(eval.evaluations(), 2);
  eval.reset_evaluations();
  EXPECT_EQ(eval.evaluations(), 0);
}

TEST(PreprocEvaluator, SsimTracksPsnr) {
  PreprocPsnrEvaluator eval(workload());
  EXPECT_NEAR(eval.ssim_of(Design{}), 1.0, 1e-9);
  EXPECT_LT(eval.ssim_of(Design{{Stage::Lpf, 16}, {Stage::Hpf, 16}}), 0.9);
}

TEST(AccuracyEvaluator, AccurateIs100) {
  AccuracyEvaluator eval(workload());
  EXPECT_DOUBLE_EQ(eval.evaluate(Design{}), 100.0);
  const auto c = eval.last_counts();
  EXPECT_GT(c.truth, 0);
  EXPECT_EQ(c.false_negatives, 0);
  EXPECT_EQ(c.false_positives, 0);
}

TEST(AccuracyEvaluator, BaseDesignMergedUnderCandidates) {
  // With a destructive base (DER 16), even an accurate candidate must fail.
  AccuracyEvaluator eval(workload(), Design{{Stage::Der, 16}});
  EXPECT_LT(eval.evaluate(Design{}), 60.0);
}

TEST(AccuracyEvaluator, CandidateOverridesBaseStage) {
  AccuracyEvaluator eval(workload(), Design{{Stage::Der, 16}});
  // Candidate resets DER to 0 LSBs: accuracy restored.
  EXPECT_DOUBLE_EQ(eval.evaluate(Design{{Stage::Der, 0}}), 100.0);
}

}  // namespace
}  // namespace xbs::explore
