// Tests for the netlist-backed stage energy model.
#include <gtest/gtest.h>

#include "xbs/explore/energy_model.hpp"

namespace xbs::explore {
namespace {

using pantompkins::Stage;

TEST(EnergyModel, AccuratePipelineEnergyPositiveAndStable) {
  const StageEnergyModel m;
  const double e1 = m.accurate_energy_fj();
  const double e2 = m.accurate_energy_fj();  // cached
  EXPECT_GT(e1, 100.0);
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(EnergyModel, NaiveExceedsOptimizedForAccurate) {
  // Synthesis (constant folding) can only shrink the accurate design.
  const StageEnergyModel opt(StageEnergyModel::Mode::Optimized);
  const StageEnergyModel naive(StageEnergyModel::Mode::Naive);
  for (const Stage s : pantompkins::kAllStages) {
    const arith::StageArithConfig acc{};
    EXPECT_GE(naive.stage_energy_fj(s, acc), opt.stage_energy_fj(s, acc)) << to_string(s);
  }
}

TEST(EnergyModel, DeepApproximationReducesEveryStage) {
  const StageEnergyModel m;
  for (const Stage s : pantompkins::kAllStages) {
    const double acc = m.stage_energy_fj(s, arith::StageArithConfig{});
    const double deep = m.stage_energy_fj(s, arith::StageArithConfig::uniform(16));
    EXPECT_LT(deep, acc) << to_string(s);
  }
}

TEST(EnergyModel, ReductionMonotoneForDeepK) {
  // In the k >= 8 regime (where all chosen designs live) stage reductions
  // grow monotonically with k.
  const StageEnergyModel m;
  for (const Stage s : {Stage::Lpf, Stage::Hpf, Stage::Mwi, Stage::Sqr}) {
    double prev = 0.0;
    for (const int k : {8, 12, 16}) {
      const double red = m.stage_energy_reduction(s, arith::StageArithConfig::uniform(k));
      EXPECT_GT(red, prev) << to_string(s) << " k=" << k;
      prev = red;
    }
  }
}

TEST(EnergyModel, DesignEnergyComposes) {
  const StageEnergyModel m;
  const Design d = {{Stage::Lpf, 16}};
  const double mixed = m.design_energy_fj(d);
  const double all_acc = m.accurate_energy_fj();
  EXPECT_LT(mixed, all_acc);
  // Difference equals the LPF stage delta.
  const double lpf_acc = m.stage_energy_fj(Stage::Lpf, arith::StageArithConfig{});
  const double lpf_apx =
      m.stage_energy_fj(Stage::Lpf, StageDesign{Stage::Lpf, 16}.arith_config());
  EXPECT_NEAR(all_acc - mixed, lpf_acc - lpf_apx, 1e-9);
}

TEST(EnergyModel, EnergyReductionOfAccurateIsOne) {
  const StageEnergyModel m;
  EXPECT_DOUBLE_EQ(m.energy_reduction(Design{}), 1.0);
}

TEST(EnergyModel, HpfIsMostExpensiveFilterStage) {
  // 32 multipliers / 31 adders: the HPF dominates the filter energy, which
  // is why the paper calls it the most lucrative approximation target.
  const StageEnergyModel m;
  const arith::StageArithConfig acc{};
  EXPECT_GT(m.stage_energy_fj(Stage::Hpf, acc), m.stage_energy_fj(Stage::Lpf, acc));
  EXPECT_GT(m.stage_energy_fj(Stage::Hpf, acc), m.stage_energy_fj(Stage::Der, acc));
}

TEST(EnergyModel, DerIsCheapestStage) {
  // Coefficients 2 and 1 fold to wiring: the differentiator is nearly free,
  // hence "limited energy reductions" from approximating it (paper §4.2).
  const StageEnergyModel m;
  const arith::StageArithConfig acc{};
  for (const Stage s : {Stage::Lpf, Stage::Hpf, Stage::Sqr, Stage::Mwi}) {
    EXPECT_LT(m.stage_energy_fj(Stage::Der, acc), m.stage_energy_fj(s, acc));
  }
}

}  // namespace
}  // namespace xbs::explore
