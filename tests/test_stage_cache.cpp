// Tests for the per-stage memoized pipeline runner used by the design-space
// explorers: cached evaluations must be bit-identical to fresh pipeline runs,
// and unchanged pipeline prefixes must be served from cache.
#include <gtest/gtest.h>

#include "xbs/ecg/dataset.hpp"
#include "xbs/explore/evaluator.hpp"
#include "xbs/explore/stage_cache.hpp"

namespace xbs::explore {
namespace {

using pantompkins::PipelineConfig;
using pantompkins::Stage;

std::vector<ecg::DigitizedRecord> workload() {
  return {ecg::nsrdb_like_digitized(0, 4000), ecg::nsrdb_like_digitized(1, 4000)};
}

TEST(StageCache, MatchesFreshPipelineAcrossConfigChanges) {
  MemoizedPipelineRunner runner(workload());
  const std::vector<PipelineConfig> configs = {
      PipelineConfig::accurate(),
      PipelineConfig::from_lsbs({10, 12, 2, 8, 16}),
      PipelineConfig::from_lsbs({10, 12, 2, 8, 12}),   // suffix change only
      PipelineConfig::from_lsbs({10, 12, 2, 8, 16}),   // revisit
      PipelineConfig::from_lsbs({0, 12, 2, 8, 16}),    // prefix change
      PipelineConfig::uniform(4),
  };
  for (const auto& cfg : configs) {
    const pantompkins::PanTompkinsPipeline fresh(cfg);
    for (std::size_t i = 0; i < runner.num_records(); ++i) {
      const auto want = fresh.run(runner.record(i).adu);
      const auto& got = runner.run(i, cfg);
      EXPECT_EQ(got.lpf, want.lpf);
      EXPECT_EQ(got.hpf, want.hpf);
      EXPECT_EQ(got.der, want.der);
      EXPECT_EQ(got.sqr, want.sqr);
      EXPECT_EQ(got.mwi, want.mwi);
      EXPECT_EQ(got.ops, want.ops);
      EXPECT_EQ(got.detection.peaks, want.detection.peaks);
    }
  }
}

TEST(StageCache, UnchangedPrefixIsNotRecomputed) {
  MemoizedPipelineRunner runner(workload());
  const auto base = PipelineConfig::from_lsbs({10, 12, 2, 8, 16});
  (void)runner.run_filters(0, base);
  EXPECT_EQ(runner.stats().stage_recomputes, 5u);
  EXPECT_EQ(runner.stats().stage_hits, 0u);

  // Same config again: all five stages served from cache.
  (void)runner.run_filters(0, base);
  EXPECT_EQ(runner.stats().stage_hits, 5u);
  EXPECT_EQ(runner.stats().stage_recomputes, 5u);

  // Only the MWI configuration changes: four hits, one recompute.
  auto mwi_only = base;
  mwi_only.stage[4] = arith::StageArithConfig::uniform(12);
  (void)runner.run_filters(0, mwi_only);
  EXPECT_EQ(runner.stats().stage_hits, 9u);
  EXPECT_EQ(runner.stats().stage_recomputes, 6u);

  // LPF changes: the whole chain is dirty.
  auto lpf_changed = mwi_only;
  lpf_changed.stage[0] = arith::StageArithConfig::uniform(4);
  (void)runner.run_filters(0, lpf_changed);
  EXPECT_EQ(runner.stats().stage_hits, 9u);
  EXPECT_EQ(runner.stats().stage_recomputes, 11u);
}

TEST(StageCache, DetectionReusedWhenFiltersUnchanged) {
  MemoizedPipelineRunner runner(workload());
  const auto cfg = PipelineConfig::uniform(4);
  (void)runner.run(0, cfg);
  EXPECT_EQ(runner.stats().detect_recomputes, 1u);
  (void)runner.run(0, cfg);
  EXPECT_EQ(runner.stats().detect_hits, 1u);
  EXPECT_EQ(runner.stats().detect_recomputes, 1u);
}

TEST(StageCache, RecordsAreCachedIndependently) {
  MemoizedPipelineRunner runner(workload());
  const auto cfg = PipelineConfig::uniform(2);
  (void)runner.run_filters(0, cfg);
  (void)runner.run_filters(1, cfg);  // different record: its own five recomputes
  EXPECT_EQ(runner.stats().stage_recomputes, 10u);
  EXPECT_EQ(runner.stats().stage_hits, 0u);
}

TEST(Evaluators, ExposeCacheStats) {
  PreprocPsnrEvaluator pre(workload());
  ASSERT_NE(pre.cache_stats(), nullptr);
  (void)pre.evaluate(Design{{Stage::Hpf, 8}});
  (void)pre.evaluate(Design{{Stage::Hpf, 10}});
  // Second evaluation changed only the HPF: the LPF stage (and nothing else
  // upstream) must have been served from cache for every record.
  EXPECT_GT(pre.cache_stats()->stage_hits, 0u);

  AccuracyEvaluator acc(workload());
  ASSERT_NE(acc.cache_stats(), nullptr);
  EXPECT_DOUBLE_EQ(acc.evaluate(Design{}), 100.0);
  (void)acc.evaluate(Design{{Stage::Mwi, 8}});
  EXPECT_GT(acc.cache_stats()->stage_hits, 0u);
}

TEST(StageCacheStatsArithmetic, DeltaAndHitRate) {
  const StageCacheStats a{10, 8, 2, 3, 1};
  const StageCacheStats b{4, 3, 1, 1, 1};
  const StageCacheStats d = a - b;
  EXPECT_EQ(d.runs, 6u);
  EXPECT_EQ(d.stage_hits, 5u);
  EXPECT_EQ(d.stage_recomputes, 1u);
  EXPECT_NEAR(a.stage_hit_rate(), 0.8, 1e-12);
  EXPECT_EQ(StageCacheStats{}.stage_hit_rate(), 0.0);
}

}  // namespace
}  // namespace xbs::explore
