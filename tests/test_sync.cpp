/// \file test_sync.cpp
/// \brief The annotated sync primitives and the Debug lock-rank checker.
///
/// The death tests are the checker's own regression suite: each one commits a
/// real hierarchy violation (a lock-order inversion, a same-rank nesting, a
/// wait on a non-innermost lock) and proves the process aborts with the
/// "lock-rank violation" diagnostic. In builds where the checker is compiled
/// out (Release, or -DXBS_LOCK_RANK_CHECKS=0) those tests are skipped — the
/// violations would silently succeed, which is exactly the gap the Debug legs
/// exist to close.
#include "xbs/common/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace xbs::common {
namespace {

TEST(Mutex, BasicExclusionAndRank) {
  Mutex mu{LockRank::kShard};
  EXPECT_EQ(mu.rank(), LockRank::kShard);
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::atomic<bool> second{true};
  // try_lock from another thread must fail while we hold the mutex
  // (same-thread retry would be UB on a std::mutex).
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second.load());
  mu.unlock();
}

TEST(MutexLock, RelockCycleWorks) {
  Mutex mu{LockRank::kShard};
  MutexLock lock(mu);
  EXPECT_TRUE(lock.owns());
  lock.unlock();
  EXPECT_FALSE(lock.owns());
  lock.lock();
  EXPECT_TRUE(lock.owns());
}

TEST(CondVar, WakesWaiter) {
  Mutex mu{LockRank::kShard};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    const MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
  }
  waker.join();
  EXPECT_TRUE(ready);
}

TEST(LockRank, AscendingAcquisitionIsClean) {
  // The full hierarchy in order, all held at once — the discipline every
  // serving-stack thread follows.
  Mutex net{LockRank::kNetConn};
  Mutex shard{LockRank::kShard};
  Mutex slot{LockRank::kSlot};
  Mutex cache{LockRank::kTableCache};
  Mutex stats{LockRank::kStats};
  const MutexLock l1(net);
  const MutexLock l2(shard);
  const MutexLock l3(slot);
  const MutexLock l4(cache);
  const MutexLock l5(stats);
#if XBS_LOCK_RANK_CHECKS
  EXPECT_EQ(detail::held_rank_count(), 5);
#endif
}

TEST(LockRank, OutOfOrderReleaseIsLegal) {
  // Hand-over-hand and similar patterns release outer locks first; only
  // *acquisition* order is constrained.
  Mutex shard{LockRank::kShard};
  Mutex cache{LockRank::kTableCache};
  shard.lock();
  cache.lock();
  shard.unlock();  // outer released while inner still held
  cache.unlock();
#if XBS_LOCK_RANK_CHECKS
  EXPECT_EQ(detail::held_rank_count(), 0);
#endif
}

TEST(LockRank, UnrankedLocksAreExempt) {
  // Unranked mutexes (test/tool leaf locks) may interleave with ranked ones
  // in any order without tripping the checker.
  Mutex cache{LockRank::kTableCache};
  Mutex plain;  // kUnranked
  const MutexLock l1(cache);
  const MutexLock l2(plain);
#if XBS_LOCK_RANK_CHECKS
  EXPECT_EQ(detail::held_rank_count(), 1);  // unranked locks are never pushed
#endif
}

#if XBS_LOCK_RANK_CHECKS

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InversionShardUnderTableCacheAborts) {
  // The seeded lock-order inversion from the issue: a thread holding a
  // table-cache mutex (rank 40) tries to take a shard mutex (rank 20).
  // Without the rank checker this runs to completion silently — the deadlock
  // only materializes when another thread locks in the correct order at the
  // same time. With the checker it dies deterministically, single-threaded.
  Mutex cache{LockRank::kTableCache};
  Mutex shard{LockRank::kShard};
  EXPECT_DEATH(
      {
        const MutexLock outer(cache);
        const MutexLock inner(shard);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  // Two locks of equal rank must never be held together (e.g. two shard
  // locks — the hierarchy has no defined order between them).
  Mutex a{LockRank::kShard};
  Mutex b{LockRank::kShard};
  EXPECT_DEATH(
      {
        const MutexLock la(a);
        const MutexLock lb(b);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, TryLockSkipsOrderButArmsStack) {
  // try_lock itself never deadlocks, so an out-of-order try_lock is legal —
  // but the lock it took joins the held stack, so a subsequent *blocking*
  // out-of-order acquisition still dies.
  Mutex cache{LockRank::kTableCache};
  Mutex shard{LockRank::kShard};
  EXPECT_DEATH(
      {
        const MutexLock outer(cache);
        if (shard.try_lock()) {  // legal: cannot block
          Mutex net{LockRank::kNetConn};
          net.lock();  // illegal: blocking descent below held rank 20
        }
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, WaitOnOuterLockAborts) {
  // A condition wait releases exactly one mutex; sleeping while an inner
  // lock stays held starves every other thread that needs it.
  Mutex shard{LockRank::kShard};
  Mutex cache{LockRank::kTableCache};
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock outer(shard);
        const MutexLock inner(cache);
        cv.wait(outer);  // shard is not the innermost held lock
      },
      "lock-rank violation");
}

#else  // !XBS_LOCK_RANK_CHECKS

TEST(LockRankDeathTest, CheckerCompiledOut) {
  GTEST_SKIP() << "lock-rank checks are compiled out (XBS_LOCK_RANK_CHECKS=0; "
                  "Release build) — death tests run in the Debug CI legs";
}

#endif  // XBS_LOCK_RANK_CHECKS

}  // namespace
}  // namespace xbs::common
