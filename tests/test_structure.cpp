// Tests for the recursive-multiplier structural decomposition shared by the
// behavioural simulator, the netlist builders and the cost model.
#include <gtest/gtest.h>

#include "xbs/arith/structure.hpp"

namespace xbs::arith {
namespace {

TEST(Structure, SixteenBitInventoryMatchesPaper) {
  // 16x16 -> 4 x 8x8 -> 16 x 4x4 -> 64 elementary 2x2 modules, with three
  // 2N-bit accumulation adders per combine level (paper Fig. 7).
  const MultStructure s = compute_mult_structure(16);
  EXPECT_EQ(s.elems.size(), 64u);
  int adders_by_level[3] = {0, 0, 0};  // level 4, 8, 16
  for (const auto& a : s.adders) {
    if (a.level == 4) {
      EXPECT_EQ(a.width, 8);
      ++adders_by_level[0];
    } else if (a.level == 8) {
      EXPECT_EQ(a.width, 16);
      ++adders_by_level[1];
    } else if (a.level == 16) {
      EXPECT_EQ(a.width, 32);
      ++adders_by_level[2];
    } else {
      FAIL() << "unexpected level " << a.level;
    }
  }
  EXPECT_EQ(adders_by_level[0], 48);  // 16 4x4 blocks x 3
  EXPECT_EQ(adders_by_level[1], 12);  // 4 8x8 blocks x 3
  EXPECT_EQ(adders_by_level[2], 3);   // top combine
  // Total FA slots: 48*8 + 12*16 + 3*32 = 672.
  EXPECT_EQ(s.total_fa_slots(), 672);
}

TEST(Structure, ElementaryOffsetsCoverOperands) {
  const MultStructure s = compute_mult_structure(8);
  EXPECT_EQ(s.elems.size(), 16u);
  for (const auto& e : s.elems) {
    EXPECT_EQ(e.off_a % 2, 0);
    EXPECT_EQ(e.off_b % 2, 0);
    EXPECT_GE(e.off_a, 0);
    EXPECT_LT(e.off_a, 8);
    EXPECT_EQ(e.out_offset, e.off_a + e.off_b);
  }
}

TEST(Structure, TwoBitBaseCase) {
  const MultStructure s = compute_mult_structure(2);
  EXPECT_EQ(s.elems.size(), 1u);
  EXPECT_TRUE(s.adders.empty());
}

TEST(Structure, InvalidWidthThrows) {
  EXPECT_THROW(compute_mult_structure(3), std::invalid_argument);
  EXPECT_THROW(compute_mult_structure(0), std::invalid_argument);
  EXPECT_THROW(compute_mult_structure(64), std::invalid_argument);
}

TEST(Policy, FaRule) {
  EXPECT_TRUE(fa_is_approx(0, 1));
  EXPECT_FALSE(fa_is_approx(1, 1));
  EXPECT_TRUE(fa_is_approx(15, 16));
  EXPECT_FALSE(fa_is_approx(16, 16));
}

TEST(Policy, ElemRulesOrderedByAggressiveness) {
  for (int off = 0; off <= 28; off += 2) {
    for (int k = 0; k <= 32; ++k) {
      const bool cons = elem_is_approx(ApproxPolicy::Conservative, off, k);
      const bool mod = elem_is_approx(ApproxPolicy::Moderate, off, k);
      const bool aggr = elem_is_approx(ApproxPolicy::Aggressive, off, k);
      // conservative => moderate => aggressive (set inclusion).
      EXPECT_LE(cons, mod);
      EXPECT_LE(mod, aggr);
    }
  }
  // Spot checks of the documented boundaries.
  EXPECT_TRUE(elem_is_approx(ApproxPolicy::Conservative, 0, 4));
  EXPECT_FALSE(elem_is_approx(ApproxPolicy::Conservative, 0, 3));
  EXPECT_TRUE(elem_is_approx(ApproxPolicy::Moderate, 0, 2));
  EXPECT_FALSE(elem_is_approx(ApproxPolicy::Moderate, 0, 1));
  EXPECT_TRUE(elem_is_approx(ApproxPolicy::Aggressive, 0, 1));
}

}  // namespace
}  // namespace xbs::arith
