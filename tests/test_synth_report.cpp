// Tests for the synthesis reporting (Design Compiler substitute).
#include <gtest/gtest.h>

#include "xbs/arith/rca.hpp"
#include "xbs/hwmodel/cell_library.hpp"
#include "xbs/netlist/builders.hpp"
#include "xbs/netlist/netlist.hpp"
#include "xbs/netlist/optimizer.hpp"
#include "xbs/netlist/synth_report.hpp"

namespace xbs::netlist {
namespace {

TEST(SynthReport, StandaloneFullAdderMatchesTable1) {
  for (const AdderKind kind : kAllAdderKinds) {
    Netlist nl;
    const NetId a = nl.new_input();
    const NetId b = nl.new_input();
    const NetId c = nl.new_input();
    const FaPins pins = nl.emit_fa(kind, a, b, c, 0);
    nl.mark_output(pins.sum);
    nl.mark_output(pins.cout);
    const SynthesisReport rep = report(nl);
    const hwmodel::Cost want = hwmodel::cell_cost(kind);
    EXPECT_DOUBLE_EQ(rep.cost.area_um2, want.area_um2) << to_string(kind);
    EXPECT_DOUBLE_EQ(rep.cost.energy_fj, want.energy_fj) << to_string(kind);
    EXPECT_DOUBLE_EQ(rep.critical_path_ns, want.delay_ns) << to_string(kind);
  }
}

TEST(SynthReport, StandaloneMult2MatchesTable1) {
  for (const MultKind kind : kAllMultKinds) {
    Netlist nl;
    const NetId a0 = nl.new_input(), a1 = nl.new_input();
    const NetId b0 = nl.new_input(), b1 = nl.new_input();
    const auto outs = nl.emit_mult2(kind, a0, a1, b0, b1, 0);
    for (const auto o : outs) nl.mark_output(o);
    const SynthesisReport rep = report(nl);
    const hwmodel::Cost want = hwmodel::cell_cost(kind);
    EXPECT_DOUBLE_EQ(rep.cost.area_um2, want.area_um2) << to_string(kind);
    EXPECT_DOUBLE_EQ(rep.cost.power_uw, want.power_uw) << to_string(kind);
  }
}

TEST(SynthReport, UnoptimizedAdderIsWidthTimesUnitCost) {
  Netlist nl;
  const arith::AdderConfig cfg{32, 0, AdderKind::Accurate, 0};
  const auto a = nl.new_input_bus(32);
  const auto b = nl.new_input_bus(32);
  const auto out = build_rca(nl, cfg, a, b);
  for (const auto n : out.sum) nl.mark_output(n);
  nl.mark_output(out.carry_out);
  const SynthesisReport rep = report(nl);
  const hwmodel::Cost fa = hwmodel::cell_cost(AdderKind::Accurate);
  // Cone pricing discounts the constant carry-in of bit 0 (a half adder in
  // real synthesis): 31 full cells + one at (1 + 2/3)/2 of unit cost.
  EXPECT_NEAR(rep.cost.energy_fj, (31.0 + 5.0 / 6.0) * fa.energy_fj, 1e-9);
  // Critical path = the full carry chain.
  EXPECT_NEAR(rep.critical_path_ns, 32 * fa.delay_ns, 1e-9);
  EXPECT_EQ(rep.full_adders, 32);
}

TEST(SynthReport, CarryChainCutByAma5ShortensCriticalPath) {
  // ApproxAdd5 has zero delay, so approximating k LSBs cuts the carry chain.
  const auto critical = [](int k) {
    Netlist nl;
    const arith::AdderConfig cfg{32, k, AdderKind::Approx5, 0};
    const auto a = nl.new_input_bus(32);
    const auto b = nl.new_input_bus(32);
    const auto out = build_rca(nl, cfg, a, b);
    for (const auto n : out.sum) nl.mark_output(n);
    nl.mark_output(out.carry_out);
    return report(nl).critical_path_ns;
  };
  EXPECT_GT(critical(0), critical(8));
  EXPECT_GT(critical(8), critical(16));
  EXPECT_NEAR(critical(16), 16 * hwmodel::cell_cost(AdderKind::Accurate).delay_ns, 1e-9);
}

TEST(SynthReport, ConePricingDiscountsDeadCarry) {
  // A lone FA whose carry-out is unobserved is priced as a partial cell.
  Netlist nl;
  const NetId a = nl.new_input();
  const NetId b = nl.new_input();
  const FaPins pins = nl.emit_fa(AdderKind::Accurate, a, b, Netlist::const_net(false), 0);
  nl.mark_output(pins.sum);  // cout unused
  optimize(nl);
  const SynthesisReport rep = report(nl);
  const hwmodel::Cost full = hwmodel::cell_cost(AdderKind::Accurate);
  EXPECT_LT(rep.cost.energy_fj, full.energy_fj);
  EXPECT_GT(rep.cost.energy_fj, 0.0);
}

TEST(SynthReport, MwiStageIsAdderOnly) {
  Netlist nl = build_mwi_stage(30, arith::AdderConfig{32, 0, AdderKind::Approx5, 0}, 16);
  const SynthesisReport rep = report(nl);
  EXPECT_EQ(rep.mult2s, 0);
  EXPECT_EQ(rep.full_adders, 29 * 32);  // window-1 adders x width
}

TEST(SynthReport, SquarerSeesSharedOperand) {
  Netlist nl = build_squarer_stage(arith::MultiplierConfig{16, 0});
  optimize(nl);
  // x*x folds partially (a handful of elementary products are symmetric),
  // but substantial live logic must remain.
  const SynthesisReport rep = report(nl);
  EXPECT_GT(rep.cost.energy_fj, 50.0);
  EXPECT_GT(rep.mult2s, 16);
}

}  // namespace
}  // namespace xbs::netlist
