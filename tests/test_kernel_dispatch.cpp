// The runtime kernel-ISA dispatch: selection and forcing never crash (an
// unavailable request falls back visibly to a usable tier), every compiled
// vector tier is bit-identical to the baseline loops op by op, whole
// pipelines are bit-identical per Fig. 12 configuration under every forced
// tier, StreamServer output is shard- AND tier-invariant, and the streaming
// hot path never builds a table lazily once the configuration is warmed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "xbs/arith/isa.hpp"
#include "xbs/arith/kernel.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/core/paper_configs.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/pantompkins/pipeline.hpp"
#include "xbs/stream/server.hpp"
#include "xbs/stream/session.hpp"

namespace xbs::arith {
namespace {

/// Every test that forces a tier restores startup auto-selection on exit, so
/// test order cannot leak a forced tier into unrelated tests.
class KernelDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { force_kernel_isa_auto(); }
};

TEST_F(KernelDispatchTest, ParseAndPrintRoundTrip) {
  for (const Isa isa : kAllIsas) {
    EXPECT_EQ(parse_isa(to_string(isa)), std::optional<Isa>(isa));
  }
  EXPECT_EQ(parse_isa("pentium"), std::nullopt);
  EXPECT_EQ(parse_isa(""), std::nullopt);
  EXPECT_EQ(parse_isa("AVX2"), std::nullopt);  // names are case-sensitive
}

TEST_F(KernelDispatchTest, BaselineTierAlwaysUsable) {
  EXPECT_TRUE(isa_compiled(Isa::Baseline));
  EXPECT_TRUE(isa_cpu_supported(Isa::Baseline));
  EXPECT_TRUE(isa_usable(Isa::Baseline));
  EXPECT_NE(kernel_ops_for(Isa::Baseline), nullptr);
  EXPECT_TRUE(isa_usable(best_isa()));
  const IsaSelection& sel = kernel_isa();
  EXPECT_TRUE(isa_usable(sel.selected));
}

TEST_F(KernelDispatchTest, ForcingAnyTierNeverCrashesAndFallsBackVisibly) {
  for (const Isa isa : kAllIsas) {
    const IsaSelection sel = force_kernel_isa(isa);
    ASSERT_TRUE(isa_usable(sel.selected)) << to_string(isa);
    EXPECT_EQ(sel.requested, isa);
    EXPECT_FALSE(sel.from_env);
    if (isa_usable(isa)) {
      EXPECT_EQ(sel.selected, isa);
      EXPECT_FALSE(sel.fallback);
      EXPECT_TRUE(sel.note.empty());
    } else {
      // The graceful path: a machine without the tier still runs — on the
      // widest tier it has — and says so instead of crashing.
      EXPECT_EQ(sel.selected, best_isa());
      EXPECT_TRUE(sel.fallback);
      EXPECT_NE(sel.note.find(std::string(to_string(isa))), std::string::npos);
      EXPECT_NE(sel.note.find("falling back"), std::string::npos);
    }
    // The dispatch table always lands on callable ops.
    std::vector<i64> x{1, 2, 3}, out(3);
    std::vector<i64> table(16, 7);
    kernel_ops().gather_lut_n(table.data(), 0xF, x.data(), out.data(), x.size());
    EXPECT_EQ(out, (std::vector<i64>{7, 7, 7}));
  }
}

TEST_F(KernelDispatchTest, EnvOverrideSelectsAndUnknownValueFallsBack) {
  const char* saved = std::getenv("XBS_KERNEL_ISA");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("XBS_KERNEL_ISA", "baseline", 1), 0);
  IsaSelection sel = force_kernel_isa_auto();
  EXPECT_EQ(sel.selected, Isa::Baseline);
  EXPECT_TRUE(sel.from_env);
  EXPECT_FALSE(sel.fallback);

  ASSERT_EQ(setenv("XBS_KERNEL_ISA", "sse9000", 1), 0);
  sel = force_kernel_isa_auto();
  EXPECT_TRUE(sel.from_env);
  EXPECT_TRUE(sel.fallback);
  EXPECT_EQ(sel.selected, best_isa());
  EXPECT_NE(sel.note.find("unknown XBS_KERNEL_ISA"), std::string::npos);

  if (saved != nullptr) {
    ASSERT_EQ(setenv("XBS_KERNEL_ISA", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("XBS_KERNEL_ISA"), 0);
  }
}

/// The raw dispatch-table ops, tier vs baseline, across ragged lengths,
/// aliasing, and the wired-add parameter space (both operand-port
/// conventions, add and subtract, and the k >= w low-only closed form).
TEST_F(KernelDispatchTest, VectorTiersBitIdenticalToBaselineOps) {
  const KernelOps& base = *kernel_ops_for(Isa::Baseline);
  Rng rng(2026);

  std::vector<i64> table(1u << 16);
  for (i64& t : table) t = rng.uniform_int(-(1 << 30), 1 << 30);
  const u64 mask = (1u << 16) - 1;

  const std::vector<std::size_t> lens{0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 700};
  for (const Isa isa : {Isa::Avx2, Isa::Avx512}) {
    const KernelOps* ops = kernel_ops_for(isa);
    if (ops == nullptr) continue;  // covered by the skip-notice pipeline test
    for (const std::size_t n : lens) {
      std::vector<i64> x(n), want(n), got(n);
      for (i64& v : x) v = rng.uniform_int(-(1 << 20), 1 << 20);

      base.gather_lut_n(table.data(), mask, x.data(), want.data(), n);
      ops->gather_lut_n(table.data(), mask, x.data(), got.data(), n);
      EXPECT_EQ(got, want) << to_string(isa) << " gather n=" << n;

      // In-place gather (out aliases x) — the SQR stage's calling shape.
      std::vector<i64> inplace = x;
      ops->gather_lut_n(table.data(), mask, inplace.data(), inplace.data(), n);
      EXPECT_EQ(inplace, want) << to_string(isa) << " aliased gather n=" << n;

      std::vector<i64> a(n), b(n);
      for (i64& v : a) v = rng.uniform_int(-2000000000, 2000000000);
      for (i64& v : b) v = rng.uniform_int(-2000000000, 2000000000);
      for (const bool sum_is_b : {true, false}) {
        for (const bool negate_b : {true, false}) {
          for (const int k : {0, 1, 10, 31, 32, 40}) {
            const WiredAddParams p{32, k, sum_is_b, negate_b};
            base.wired_add_n(a.data(), b.data(), want.data(), n, p);
            ops->wired_add_n(a.data(), b.data(), got.data(), n, p);
            EXPECT_EQ(got, want) << to_string(isa) << " add n=" << n << " k=" << k
                                 << " sum_is_b=" << sum_is_b
                                 << " negate_b=" << negate_b;
          }
        }
      }
      for (const bool sum_is_b : {true, false}) {
        const WiredAddParams p{32, 12, sum_is_b, false};
        std::vector<i64> acc_want = a, acc_got = a;
        base.wired_mac_n(table.data(), mask, x.data(), acc_want.data(), n, p);
        ops->wired_mac_n(table.data(), mask, x.data(), acc_got.data(), n, p);
        EXPECT_EQ(acc_got, acc_want)
            << to_string(isa) << " mac n=" << n << " sum_is_b=" << sum_is_b;
      }
    }
  }
}

}  // namespace
}  // namespace xbs::arith

namespace xbs::pantompkins {
namespace {

using arith::force_kernel_isa;
using arith::Isa;
using arith::isa_usable;
using arith::kAllIsas;
using arith::to_string;

class ForcedIsaPipeline : public ::testing::TestWithParam<Isa> {
 protected:
  void TearDown() override { arith::force_kernel_isa_auto(); }
};

/// Every Fig. 12 configuration, whole-pipeline, forced tier vs forced
/// baseline: per-stage signals, detected beats and op counts all equal.
TEST_P(ForcedIsaPipeline, Fig12ConfigsBitIdenticalToBaseline) {
  const Isa isa = GetParam();
  if (!isa_usable(isa)) {
    GTEST_SKIP() << "kernel ISA \"" << to_string(isa)
                 << "\" not usable on this host (not compiled or no CPU "
                    "support); baseline leg still covers the dispatch seam";
  }
  const auto rec = ecg::nsrdb_like_digitized(0, 3000);
  for (const core::NamedConfig& named : core::fig12_b_configs()) {
    const PipelineConfig cfg = PipelineConfig::from_lsbs(named.lsbs);

    force_kernel_isa(Isa::Baseline);
    const PipelineResult want = PanTompkinsPipeline(cfg).run(rec.adu);

    force_kernel_isa(isa);
    const PipelineResult got = PanTompkinsPipeline(cfg).run(rec.adu);

    ASSERT_EQ(got.mwi, want.mwi) << named.name << " on " << to_string(isa);
    EXPECT_EQ(got.lpf, want.lpf) << named.name;
    EXPECT_EQ(got.sqr, want.sqr) << named.name;
    EXPECT_EQ(got.detection.peaks, want.detection.peaks) << named.name;
    EXPECT_EQ(got.ops, want.ops) << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, ForcedIsaPipeline, ::testing::ValuesIn(kAllIsas),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace xbs::pantompkins

namespace xbs::stream {
namespace {

using arith::Isa;

/// StreamServer egress for one record: (event identity, sample totals).
struct ServedRecord {
  std::vector<Event> events;
  u64 samples = 0;
  u64 beats = 0;
};

void serve_record(const std::vector<i32>& adu, unsigned shards, ServedRecord& out) {
  StreamServer server({.max_sessions = 4,
                       .queue_capacity_chunks = 16,
                       .workers = shards,
                       .shards = shards,
                       .event_queue_capacity = 1u << 14});
  SessionSpec spec;
  spec.config = pantompkins::PipelineConfig::from_lsbs({10, 12, 2, 8, 16});
  spec.keep_detection = false;
  const SessionId id = server.open(spec);

  constexpr std::size_t kChunk = 257;  // deliberately ragged vs the vector width
  for (std::size_t at = 0; at < adu.size(); at += kChunk) {
    const std::size_t n = std::min(kChunk, adu.size() - at);
    ASSERT_EQ(server.push(id, std::span<const i32>(adu).subspan(at, n)),
              PushResult::Ok)
        << at;
    if ((at / kChunk) % 3 == 0) (void)server.drain_events(id, out.events);
  }
  EXPECT_EQ(server.close(id), SessionState::Closed);
  (void)server.drain_events(id, out.events);
  const StreamServer::SessionStats st = server.session_stats(id);
  out.samples = st.samples;
  out.beats = st.beats;
}

TEST(KernelDispatchServing, ServerOutputInvariantAcrossShardsAndTiers) {
  // Reference: baseline tier, single shard. Every usable tier at every shard
  // count must reproduce it event for event — the serving layer's
  // bit-identity contract is ISA-independent.
  const auto rec = ecg::nsrdb_like_digitized(3, 6000);

  arith::force_kernel_isa(Isa::Baseline);
  ServedRecord want;
  serve_record(rec.adu, 1, want);

  for (const Isa isa : arith::kAllIsas) {
    if (!arith::isa_usable(isa)) continue;
    for (const unsigned shards : {1u, 4u}) {
      arith::force_kernel_isa(isa);
      ServedRecord got;
      serve_record(rec.adu, shards, got);
      const std::string what = std::string(arith::to_string(isa)) + " shards=" +
                               std::to_string(shards);
      EXPECT_EQ(got.samples, want.samples) << what;
      EXPECT_EQ(got.beats, want.beats) << what;
      ASSERT_EQ(got.events.size(), want.events.size()) << what;
      for (std::size_t i = 0; i < want.events.size(); ++i) {
        EXPECT_EQ(got.events[i].peak, want.events[i].peak) << what << " event " << i;
        EXPECT_EQ(got.events[i].time_s, want.events[i].time_s) << what << " event " << i;
      }
    }
  }
  arith::force_kernel_isa_auto();
}

TEST(KernelDispatchServing, WarmedStreamingHotPathBuildsNoTables) {
  // The warm contract, tier-aware: once warm_pipeline_tables() ran for the
  // spec under the selected tier, streaming any chunk size must hit warm
  // tables only — zero lazy multiplier-model or product/square-table builds.
  const auto cfg = pantompkins::PipelineConfig::from_lsbs({10, 12, 2, 8, 16});
  pantompkins::warm_pipeline_tables(cfg);

  SessionSpec spec;
  spec.config = cfg;
  Session session(spec);  // kernels build from warm caches

  const auto rec = ecg::nsrdb_like_digitized(1, 5000);
  const arith::TableCacheStats before = arith::table_cache_stats();
  for (std::size_t at = 0; at < rec.adu.size(); at += 61) {
    const std::size_t n = std::min<std::size_t>(61, rec.adu.size() - at);
    (void)session.push(std::span<const i32>(rec.adu).subspan(at, n));
  }
  (void)session.flush();
  const arith::TableCacheStats after = arith::table_cache_stats();
  EXPECT_EQ(after, before) << "the streaming hot path built a table lazily";
}

}  // namespace
}  // namespace xbs::stream
