// Integration tests for the end-to-end fixed-point pipeline with per-stage
// approximate arithmetic.
#include <gtest/gtest.h>

#include "xbs/dsp/pt_coeffs.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/metrics/peaks.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::pantompkins {
namespace {

double accuracy(const PipelineConfig& cfg, int n_records, std::size_t n_samples) {
  int fn = 0, fp = 0, truth = 0;
  const PanTompkinsPipeline pipe(cfg);
  for (int i = 0; i < n_records; ++i) {
    const auto rec = ecg::nsrdb_like_digitized(i, n_samples);
    const auto res = pipe.run(rec.adu);
    const auto m = metrics::match_peaks(rec.r_peaks, res.detection.peaks, 30);
    fn += m.false_negatives;
    fp += m.false_positives;
    truth += m.truth_count();
  }
  return truth > 0 ? 100.0 * std::max(0.0, 1.0 - double(fn + fp) / truth) : 0.0;
}

TEST(Pipeline, AccurateDetects100Percent) {
  EXPECT_DOUBLE_EQ(accuracy(PipelineConfig::accurate(), 4, 10000), 100.0);
}

TEST(Pipeline, ApproxUnitAtZeroLsbsBitIdenticalToExact) {
  // Force the ApproxUnit path with k=0 on one stage by using an approximate
  // kind with zero approximated LSBs... k=0 means the exact fast path is
  // taken; instead configure k>0 with *accurate* elementary modules, which
  // must also be bit-identical to exact.
  const auto rec = ecg::nsrdb_like_digitized(0, 6000);
  const PanTompkinsPipeline exact;
  PipelineConfig cfg;
  for (auto& s : cfg.stage) {
    s = arith::StageArithConfig::uniform(12, AdderKind::Accurate, MultKind::Accurate);
  }
  const PanTompkinsPipeline accurate_modules(cfg);
  const auto a = exact.run_filters(rec.adu);
  const auto b = accurate_modules.run_filters(rec.adu);
  EXPECT_EQ(a.lpf, b.lpf);
  EXPECT_EQ(a.hpf, b.hpf);
  EXPECT_EQ(a.der, b.der);
  EXPECT_EQ(a.sqr, b.sqr);
  EXPECT_EQ(a.mwi, b.mwi);
}

TEST(Pipeline, PaperConfigB9Keeps100Percent) {
  // Fig. 12 B9 = {LPF 10, HPF 12, DER 2, SQR 8, MWI 16}: the paper's
  // zero-quality-loss design; ours must also detect every beat.
  const auto cfg = PipelineConfig::from_lsbs({10, 12, 2, 8, 16});
  EXPECT_DOUBLE_EQ(accuracy(cfg, 4, 10000), 100.0);
}

TEST(Pipeline, ExtremeApproximationCollapsesAccuracy) {
  // DER at 16 LSBs wipes the slope signal entirely (paper: past the
  // error-resilience threshold accuracy falls to zero).
  LsbVector lsbs{0, 0, 16, 0, 0};
  const auto cfg = PipelineConfig::from_lsbs(lsbs);
  EXPECT_LT(accuracy(cfg, 2, 10000), 50.0);
}

TEST(Pipeline, AccuracyMonotoneOverLpfSweepCoarse) {
  // Accuracy may only degrade (weakly) as LPF approximation deepens.
  double prev = 101.0;
  for (const int k : {0, 8, 14, 16}) {
    LsbVector lsbs{k, 0, 0, 0, 0};
    const double acc = accuracy(PipelineConfig::from_lsbs(lsbs), 2, 10000);
    EXPECT_LE(acc, prev + 1e-9) << k;
    prev = acc;
  }
}

TEST(Pipeline, OpCountsMatchStageInventory) {
  const auto rec = ecg::nsrdb_like_digitized(1, 2000);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run_filters(rec.adu);
  const u64 n = rec.adu.size();
  EXPECT_EQ(res.ops[0].mults, 11 * n);  // LPF taps
  EXPECT_EQ(res.ops[0].adds, 10 * n);
  EXPECT_EQ(res.ops[1].mults, 32 * n);  // HPF taps
  EXPECT_EQ(res.ops[1].adds, 31 * n);
  EXPECT_EQ(res.ops[2].mults, 4 * n);   // DER non-zero taps
  EXPECT_EQ(res.ops[3].mults, 1 * n);   // SQR
  EXPECT_EQ(res.ops[3].adds, 0u);
  EXPECT_EQ(res.ops[4].mults, 0u);      // MWI adder-only
  EXPECT_EQ(res.ops[4].adds, 29 * n);
}

TEST(Pipeline, StageSignalAccessor) {
  const auto rec = ecg::nsrdb_like_digitized(0, 2000);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run_filters(rec.adu);
  EXPECT_EQ(&res.stage_signal(Stage::Lpf), &res.lpf);
  EXPECT_EQ(&res.stage_signal(Stage::Mwi), &res.mwi);
  EXPECT_EQ(res.lpf.size(), rec.adu.size());
}

TEST(Pipeline, UniformFactoryAppliesAllStages) {
  const auto cfg = PipelineConfig::uniform(4);
  for (const auto& s : cfg.stage) {
    EXPECT_EQ(s.adder.approx_lsbs, 4);
    EXPECT_EQ(s.mult.approx_lsbs, 4);
    EXPECT_EQ(s.adder.kind, AdderKind::Approx5);
    EXPECT_EQ(s.mult.mult_kind, MultKind::V1);
  }
}

TEST(Pipeline, MwiOutputNonNegativeEvenApproximate) {
  // The squarer output is non-negative; the accurate MWI must preserve that.
  const auto rec = ecg::nsrdb_like_digitized(2, 4000);
  const PanTompkinsPipeline pipe;
  const auto res = pipe.run_filters(rec.adu);
  for (const i32 v : res.mwi) EXPECT_GE(v, 0);
}

}  // namespace
}  // namespace xbs::pantompkins
