// Tests for the synthetic ECG substrate (NSRDB substitute).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "xbs/ecg/adc.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/ecg/ecgsyn.hpp"
#include "xbs/ecg/noise.hpp"
#include "xbs/ecg/template_gen.hpp"

namespace xbs::ecg {
namespace {

TEST(TemplateGen, AnnotationsSitOnLocalMaxima) {
  TemplateEcgParams p;
  const EcgRecord rec = generate_template_ecg(p, 20000, 42);
  ASSERT_GT(rec.r_peaks.size(), 50u);
  for (const std::size_t r : rec.r_peaks) {
    // R peak is the local maximum within +/- 20 samples, up to the tiny
    // shift the preceding beat's T-wave tail can add to a neighbour sample.
    double local_max = -1e9;
    for (std::size_t i = (r > 20 ? r - 20 : 0); i <= std::min(r + 20, rec.mv.size() - 1); ++i) {
      local_max = std::max(local_max, rec.mv[i]);
    }
    EXPECT_NEAR(rec.mv[r], local_max, 0.02) << "r=" << r;
  }
}

TEST(TemplateGen, HeartRateMatchesParameter) {
  TemplateEcgParams p;
  p.hr_bpm = 72.0;
  const EcgRecord rec = generate_template_ecg(p, 40000, 7);
  EXPECT_NEAR(rec.mean_hr_bpm(), 72.0, 3.0);
}

TEST(TemplateGen, DeterministicUnderSeed) {
  TemplateEcgParams p;
  const EcgRecord a = generate_template_ecg(p, 5000, 99);
  const EcgRecord b = generate_template_ecg(p, 5000, 99);
  ASSERT_EQ(a.mv.size(), b.mv.size());
  for (std::size_t i = 0; i < a.mv.size(); ++i) EXPECT_DOUBLE_EQ(a.mv[i], b.mv[i]);
  EXPECT_EQ(a.r_peaks, b.r_peaks);
}

TEST(TemplateGen, RrVariabilityPresent) {
  TemplateEcgParams p;
  p.hrv_rel_sd = 0.04;
  const EcgRecord rec = generate_template_ecg(p, 40000, 5);
  std::vector<double> rr;
  for (std::size_t i = 1; i < rec.r_peaks.size(); ++i) {
    rr.push_back(static_cast<double>(rec.r_peaks[i] - rec.r_peaks[i - 1]));
  }
  double mean = 0;
  for (const double v : rr) mean += v;
  mean /= static_cast<double>(rr.size());
  double var = 0;
  for (const double v : rr) var += (v - mean) * (v - mean);
  var /= static_cast<double>(rr.size());
  EXPECT_GT(std::sqrt(var) / mean, 0.015);  // CV of RR > 1.5 %
}

TEST(TemplateGen, EctopicBeatsAnnotatedAndPremature) {
  TemplateEcgParams p;
  p.ectopic_probability = 0.15;
  const EcgRecord ect = generate_template_ecg(p, 40000, 11);
  p.ectopic_probability = 0.0;
  const EcgRecord nsr = generate_template_ecg(p, 40000, 11);
  // Prematurity shortens some RR intervals well below the NSR minimum.
  auto min_rr = [](const EcgRecord& r) {
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 1; i < r.r_peaks.size(); ++i) {
      best = std::min(best, r.r_peaks[i] - r.r_peaks[i - 1]);
    }
    return best;
  };
  EXPECT_LT(min_rr(ect), min_rr(nsr));
}

TEST(TemplateGen, NoBeatsInBoundaryGuard) {
  TemplateEcgParams p;
  const EcgRecord rec = generate_template_ecg(p, 20000, 3);
  // No annotation within the last 0.3 s (60 samples) — undetectable region.
  EXPECT_LT(rec.r_peaks.back(), 20000u - 60u);
}

TEST(EcgSyn, ProducesPlausibleRhythm) {
  EcgSynParams p;
  p.hr_bpm = 66.0;
  const EcgRecord rec = generate_ecgsyn(p, 8000, 17);
  ASSERT_EQ(rec.mv.size(), 8000u);
  // Beat count ~ 40 s * 66/60 = ~44.
  EXPECT_NEAR(static_cast<double>(rec.r_peaks.size()), 44.0, 6.0);
  // R amplitude rescaled to ~target.
  double peak = -1e9;
  for (const double v : rec.mv) peak = std::max(peak, v);
  EXPECT_NEAR(peak, p.target_r_mv, 0.15);
}

TEST(EcgSyn, AnnotationsNearSignalMaxima) {
  EcgSynParams p;
  const EcgRecord rec = generate_ecgsyn(p, 6000, 23);
  ASSERT_GT(rec.r_peaks.size(), 10u);
  for (const std::size_t r : rec.r_peaks) {
    EXPECT_GT(rec.mv[r], 0.6) << "annotation off-peak at " << r;
  }
}

TEST(Noise, AddsPowerWithoutResizing) {
  TemplateEcgParams p;
  EcgRecord rec = generate_template_ecg(p, 4000, 1);
  const EcgRecord clean = rec;
  Rng rng(2);
  add_baseline_wander(rec, 0.1, rng);
  add_powerline(rec, 0.05, 50.0, rng);
  add_emg_noise(rec, 0.02, rng);
  add_motion_artifacts(rec, 0.2, 2.0, rng);
  ASSERT_EQ(rec.mv.size(), clean.mv.size());
  double diff = 0;
  for (std::size_t i = 0; i < rec.mv.size(); ++i) diff += std::abs(rec.mv[i] - clean.mv[i]);
  EXPECT_GT(diff / static_cast<double>(rec.mv.size()), 0.01);
  EXPECT_EQ(rec.r_peaks, clean.r_peaks);  // annotations untouched
}

TEST(Adc, GainAndSaturation) {
  EcgRecord rec;
  rec.fs_hz = 200.0;
  rec.mv = {0.0, 1.0, -1.0, 100.0, -100.0};
  const AdcFrontEnd adc;  // 18000 ADU/mV, 16 bits
  const DigitizedRecord d = adc.digitize(rec);
  EXPECT_EQ(d.adu[0], 0);
  EXPECT_EQ(d.adu[1], 18000);
  EXPECT_EQ(d.adu[2], -18000);
  EXPECT_EQ(d.adu[3], 32767);   // saturated
  EXPECT_EQ(d.adu[4], -32768);  // saturated
}

TEST(Dataset, DeterministicAndDistinct) {
  const DigitizedRecord a0 = nsrdb_like_digitized(0, 4000);
  const DigitizedRecord a0_again = nsrdb_like_digitized(0, 4000);
  const DigitizedRecord a1 = nsrdb_like_digitized(1, 4000);
  EXPECT_EQ(a0.adu, a0_again.adu);
  EXPECT_NE(a0.adu, a1.adu);
  EXPECT_NE(a0.name, a1.name);
}

TEST(Dataset, EighteenRecordsWithVariedRates) {
  const auto ds = nsrdb_like_dataset(kNsrdbSubjects, 4000);
  ASSERT_EQ(ds.size(), 18u);
  double min_beats = 1e9, max_beats = 0;
  for (const auto& rec : ds) {
    EXPECT_FALSE(rec.r_peaks.empty());
    min_beats = std::min(min_beats, static_cast<double>(rec.r_peaks.size()));
    max_beats = std::max(max_beats, static_cast<double>(rec.r_peaks.size()));
  }
  EXPECT_GT(max_beats, min_beats);  // heart-rate diversity across subjects
}

TEST(Dataset, IndexOutOfRangeThrows) {
  EXPECT_THROW(nsrdb_like_record(-1), std::invalid_argument);
  EXPECT_THROW(nsrdb_like_record(18), std::invalid_argument);
}

}  // namespace
}  // namespace xbs::ecg
