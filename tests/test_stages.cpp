// Tests for the fixed-point Pan-Tompkins stage datapaths.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "xbs/common/rng.hpp"
#include "xbs/dsp/pt_coeffs.hpp"
#include "xbs/dsp/pt_reference.hpp"
#include "xbs/pantompkins/stages.hpp"

namespace xbs::pantompkins {
namespace {

TEST(Inventory, MatchesPaperCounts) {
  EXPECT_EQ(stage_inventory(Stage::Lpf).n_adders, 10);
  EXPECT_EQ(stage_inventory(Stage::Lpf).n_mults, 11);
  EXPECT_EQ(stage_inventory(Stage::Lpf).n_registers, 10);
  EXPECT_EQ(stage_inventory(Stage::Hpf).n_adders, 31);
  EXPECT_EQ(stage_inventory(Stage::Hpf).n_mults, 32);
  EXPECT_EQ(stage_inventory(Stage::Der).n_mults, 4);
  EXPECT_EQ(stage_inventory(Stage::Sqr).n_mults, 1);
  EXPECT_EQ(stage_inventory(Stage::Sqr).n_adders, 0);
  EXPECT_EQ(stage_inventory(Stage::Mwi).n_mults, 0);
  EXPECT_EQ(stage_inventory(Stage::Mwi).n_adders, 29);
  // Paper sweep limits (§6.2): DER 4, SQR 8, MWI 16.
  EXPECT_EQ(stage_inventory(Stage::Der).max_lsbs, 4);
  EXPECT_EQ(stage_inventory(Stage::Sqr).max_lsbs, 8);
  EXPECT_EQ(stage_inventory(Stage::Mwi).max_lsbs, 16);
}

TEST(FirStage, MatchesDoubleReferenceWithinQuantization) {
  // Exact-datapath LPF vs the double-precision reference (gain 36 vs >>5):
  // outputs must track within integer truncation error of the shift.
  arith::ExactUnit unit;
  FirStage lpf(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, unit);
  std::vector<double> x;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    x.push_back(8000.0 * std::sin(2.0 * std::numbers::pi * 3.0 * i / 200.0) +
                rng.gaussian(0.0, 500.0));
  }
  const auto ref = dsp::pt_reference_chain(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const i32 fixed = lpf.process(static_cast<i32>(std::lround(x[i])));
    const double expect = ref.lpf[i] * 36.0 / 32.0;  // reference uses /36, hw >>5
    EXPECT_NEAR(fixed, expect, 2.0) << i;
  }
}

TEST(FirStage, OutputSaturatesTo16Bit) {
  arith::ExactUnit unit;
  FirStage lpf(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, unit);
  i32 y = 0;
  for (int i = 0; i < 30; ++i) y = lpf.process(32767);  // step of full-scale
  EXPECT_EQ(y, 32767);  // 36*32767>>5 would exceed: must clamp
}

TEST(FirStage, ZeroTapsSkipped) {
  arith::ExactUnit unit;
  FirStage der(dsp::pt::kDerTaps, dsp::pt::kDerShift, unit);
  for (int i = 0; i < 100; ++i) (void)der.process(1000);
  // 4 non-zero taps -> 4 multiplies, 3 adds per sample.
  EXPECT_EQ(unit.counts().mults, 400u);
  EXPECT_EQ(unit.counts().adds, 300u);
}

TEST(FirStage, ResetRestoresInitialState) {
  arith::ExactUnit unit;
  FirStage f(dsp::pt::kDerTaps, dsp::pt::kDerShift, unit);
  const i32 first = f.process(5000);
  (void)f.process(-3000);
  f.reset();
  EXPECT_EQ(f.process(5000), first);
}

TEST(Squarer, SquaresAndShifts) {
  arith::ExactUnit unit;
  SquarerStage sqr(dsp::pt::kSqrShift, unit);
  EXPECT_EQ(sqr.process(100), (100 * 100) >> dsp::pt::kSqrShift);
  EXPECT_EQ(sqr.process(-100), (100 * 100) >> dsp::pt::kSqrShift);  // always positive
  EXPECT_EQ(sqr.process(0), 0);
  // Saturating clamp on the 16-bit input port.
  EXPECT_EQ(sqr.process(100000), (i64{32767} * 32767) >> dsp::pt::kSqrShift);
}

TEST(Mwi, MatchesRunningSumShifted) {
  arith::ExactUnit unit;
  MwiStage mwi(4, 2, unit);  // window 4, >>2 == /4 exactly
  const std::vector<i32> xs = {4, 8, 12, 16, 20, 24};
  std::vector<i32> got;
  for (const i32 x : xs) got.push_back(mwi.process(x));
  // Window contents: {4}, {4,8}, {4,8,12}, {4..16}, {8..20}, {12..24}.
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 3);
  EXPECT_EQ(got[2], 6);
  EXPECT_EQ(got[3], 10);
  EXPECT_EQ(got[4], 14);
  EXPECT_EQ(got[5], 18);
}

TEST(Mwi, AdderOnlyOpCounts) {
  arith::ExactUnit unit;
  MwiStage mwi(30, dsp::pt::kMwiShift, unit);
  for (int i = 0; i < 10; ++i) (void)mwi.process(100);
  EXPECT_EQ(unit.counts().mults, 0u);
  EXPECT_EQ(unit.counts().adds, 290u);  // 29 adds per sample
}

TEST(Mwi, InvalidWindowThrows) {
  arith::ExactUnit unit;
  EXPECT_THROW(MwiStage(1, 0, unit), std::invalid_argument);
}

TEST(ApproxUnitVsExact, IdenticalAtZeroLsbs) {
  // The bit-accurate datapath with k = 0 must match native arithmetic
  // exactly — the foundational correctness property of the whole pipeline.
  arith::ExactUnit exact;
  arith::ApproxUnit approx(arith::StageArithConfig::uniform(0));
  Rng rng(9);
  for (int t = 0; t < 2000; ++t) {
    const i64 a = rng.uniform_int(-2000000, 2000000);
    const i64 b = rng.uniform_int(-2000000, 2000000);
    EXPECT_EQ(approx.add(a, b), exact.add(a, b));
    EXPECT_EQ(approx.sub(a, b), exact.sub(a, b));
    const i64 ma = rng.uniform_int(-32768, 32767);
    const i64 mb = rng.uniform_int(-32768, 32767);
    EXPECT_EQ(approx.mul(ma, mb), exact.mul(ma, mb));
  }
}

}  // namespace
}  // namespace xbs::pantompkins
