// Tests for the approximate ripple-carry adder (paper Fig. 6), including a
// property sweep cross-checking the fast split evaluation against a plain
// full-adder-by-full-adder reference for every (kind, k) configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "xbs/arith/rca.hpp"
#include "xbs/arith/structure.hpp"
#include "xbs/common/rng.hpp"

namespace xbs::arith {
namespace {

/// Reference: simulate every FA from the truth tables, no fast path.
AddResult slow_add(const AdderConfig& cfg, u64 a, u64 b, bool cin) {
  const u64 mask = low_mask(cfg.width);
  a &= mask;
  b &= mask;
  u64 sum = 0;
  bool carry = cin;
  for (int i = 0; i < cfg.width; ++i) {
    const AdderKind kind =
        fa_is_approx(cfg.weight_offset + i, cfg.approx_lsbs) ? cfg.kind : AdderKind::Accurate;
    const FaOut o = full_add(kind, bit_of(a, i), bit_of(b, i), carry);
    sum = with_bit(sum, i, o.sum);
    carry = o.cout;
  }
  return AddResult{sum, carry};
}

TEST(Rca, AccurateMatchesNativeExhaustive8Bit) {
  const RippleCarryAdder adder(AdderConfig{8, 0, AdderKind::Accurate, 0});
  for (u64 a = 0; a < 256; ++a) {
    for (u64 b = 0; b < 256; ++b) {
      const AddResult r = adder.add_u(a, b);
      EXPECT_EQ(r.sum, (a + b) & 0xFF);
      EXPECT_EQ(r.carry_out, ((a + b) >> 8) != 0);
    }
  }
}

TEST(Rca, ZeroApproxLsbsIsAccurateForEveryKind) {
  Rng rng(1);
  for (const AdderKind kind : kAllAdderKinds) {
    const RippleCarryAdder adder(AdderConfig{32, 0, kind, 0});
    for (int t = 0; t < 200; ++t) {
      const u64 a = rng.next_u64() & low_mask(32);
      const u64 b = rng.next_u64() & low_mask(32);
      EXPECT_EQ(adder.add_u(a, b).sum, (a + b) & low_mask(32));
    }
  }
}

TEST(Rca, Ama5LowBitsAreOperandB) {
  const int k = 8;
  const RippleCarryAdder adder(AdderConfig{32, k, AdderKind::Approx5, 0});
  Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    const u64 a = rng.next_u64() & low_mask(32);
    const u64 b = rng.next_u64() & low_mask(32);
    const u64 s = adder.add_u(a, b).sum;
    EXPECT_EQ(s & low_mask(k), b & low_mask(k));
    // Carry into the accurate region is a[k-1] (Cout = A wiring).
    const u64 hi_expected = ((a >> k) + (b >> k) + (bit_of(a, k - 1) ? 1 : 0)) & low_mask(32 - k);
    EXPECT_EQ(s >> k, hi_expected);
  }
}

TEST(Rca, SignedAddWrapsLikeHardware) {
  const RippleCarryAdder adder(AdderConfig{16, 0, AdderKind::Accurate, 0});
  EXPECT_EQ(adder.add_signed(32767, 1), -32768);  // two's complement wrap
  EXPECT_EQ(adder.add_signed(-32768, -1), 32767);
  EXPECT_EQ(adder.add_signed(1000, -250), 750);
}

TEST(Rca, SignedSubViaOnesComplement) {
  const RippleCarryAdder adder(AdderConfig{32, 0, AdderKind::Accurate, 0});
  EXPECT_EQ(adder.sub_signed(100, 42), 58);
  EXPECT_EQ(adder.sub_signed(-100, -42), -58);
  EXPECT_EQ(adder.sub_signed(0, 1), -1);
}

TEST(Rca, InvalidConfigThrows) {
  EXPECT_THROW(RippleCarryAdder(AdderConfig{1, 0, AdderKind::Accurate, 0}),
               std::invalid_argument);
  EXPECT_THROW(RippleCarryAdder(AdderConfig{64, 0, AdderKind::Accurate, 0}),
               std::invalid_argument);
  EXPECT_THROW(RippleCarryAdder(AdderConfig{32, -1, AdderKind::Accurate, 0}),
               std::invalid_argument);
}

TEST(Rca, WeightOffsetShiftsApproxRegion) {
  // With offset 8 and k = 12, only bits 0..3 of this adder are approximate.
  const AdderConfig cfg{16, 12, AdderKind::Approx5, 8};
  const RippleCarryAdder adder(cfg);
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const u64 a = rng.next_u64() & low_mask(16);
    const u64 b = rng.next_u64() & low_mask(16);
    EXPECT_EQ(adder.add_u(a, b), slow_add(cfg, a, b, false));
  }
}

// Property sweep: fast evaluation == plain truth-table chain for every
// (kind, k) pair, across random vectors and random carry-in.
class RcaCrossCheck : public ::testing::TestWithParam<std::tuple<AdderKind, int>> {};

TEST_P(RcaCrossCheck, FastPathMatchesBitwiseReference) {
  const auto [kind, k] = GetParam();
  const AdderConfig cfg{32, k, kind, 0};
  const RippleCarryAdder adder(cfg);
  Rng rng(1000 + static_cast<u64>(k) * 7 + static_cast<u64>(kind));
  for (int t = 0; t < 400; ++t) {
    const u64 a = rng.next_u64() & low_mask(32);
    const u64 b = rng.next_u64() & low_mask(32);
    const bool cin = (rng.next_u64() & 1) != 0;
    EXPECT_EQ(adder.add_u(a, b, cin), slow_add(cfg, a, b, cin))
        << "kind=" << static_cast<int>(kind) << " k=" << k << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLsbs, RcaCrossCheck,
    ::testing::Combine(::testing::ValuesIn(kAllAdderKinds),
                       ::testing::Values(0, 1, 2, 4, 8, 15, 16, 31, 32)));

}  // namespace
}  // namespace xbs::arith
