// Tests for the double-precision DSP reference: FIR engine, frequency
// responses of the Pan-Tompkins tap sets, reference chain sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "xbs/dsp/fir.hpp"
#include "xbs/dsp/pt_coeffs.hpp"
#include "xbs/dsp/pt_recursive.hpp"
#include "xbs/dsp/pt_reference.hpp"

namespace xbs::dsp {
namespace {

std::vector<double> norm_taps(std::span<const int> taps, double gain) {
  std::vector<double> out;
  for (const int t : taps) out.push_back(t / gain);
  return out;
}

TEST(Fir, ImpulseResponseIsTaps) {
  FirFilter f({0.5, -0.25, 0.125});
  std::vector<double> x = {1, 0, 0, 0};
  const auto y = f.filter(x);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], -0.25);
  EXPECT_DOUBLE_EQ(y[2], 0.125);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(Fir, StepResponseConvergesToTapSum) {
  FirFilter f({0.2, 0.2, 0.2, 0.2, 0.2});
  double y = 0;
  for (int i = 0; i < 10; ++i) y = f.process(1.0);
  EXPECT_NEAR(y, 1.0, 1e-12);
}

TEST(Fir, ResetClearsState) {
  FirFilter f({1.0, 1.0});
  (void)f.process(5.0);
  f.reset();
  EXPECT_DOUBLE_EQ(f.process(1.0), 1.0);
}

TEST(Fir, EmptyTapsThrow) { EXPECT_THROW(FirFilter({}), std::invalid_argument); }

TEST(PtCoeffs, LpfStructureMatchesPaper) {
  // 11 taps, triangular, 10 adders / 11 multipliers / 10 registers (§2).
  EXPECT_EQ(pt::kLpfTaps.size(), 11u);
  int sum = 0;
  for (const int t : pt::kLpfTaps) sum += t;
  EXPECT_EQ(sum, 36);  // DC gain before the >>5 normalization
  // Triangular symmetry.
  for (std::size_t i = 0; i < pt::kLpfTaps.size(); ++i) {
    EXPECT_EQ(pt::kLpfTaps[i], pt::kLpfTaps[pt::kLpfTaps.size() - 1 - i]);
  }
}

TEST(PtCoeffs, HpfStructureMatchesPaper) {
  // 32 non-zero taps -> 32 multipliers, 31 adders (§4.2); zero DC gain.
  EXPECT_EQ(pt::kHpfTaps.size(), 32u);
  int nonzero = 0, sum = 0;
  for (const int t : pt::kHpfTaps) {
    nonzero += (t != 0) ? 1 : 0;
    sum += t;
  }
  EXPECT_EQ(nonzero, 32);
  EXPECT_EQ(sum, 0);  // perfect DC rejection
  EXPECT_EQ(pt::kHpfTaps[16], 31);
}

TEST(PtCoeffs, DerCoefficientMagnitudes) {
  // Magnitudes 2 and 1 only (§4.2).
  for (const int t : pt::kDerTaps) EXPECT_LE(std::abs(t), 2);
  EXPECT_EQ(pt::kDerTaps[0], 2);
  EXPECT_EQ(pt::kDerTaps[4], -2);
}

TEST(FrequencyResponse, LpfPassesLowBlocksHigh) {
  const auto taps = norm_taps(pt::kLpfTaps, 36.0);
  const double dc = magnitude_response(taps, 0.0, 200.0);
  const double at5 = magnitude_response(taps, 5.0, 200.0);
  const double at40 = magnitude_response(taps, 40.0, 200.0);
  EXPECT_NEAR(dc, 1.0, 1e-12);
  EXPECT_GT(at5, 0.8);
  EXPECT_LT(at40, 0.15);
}

TEST(FrequencyResponse, HpfBlocksDcAndBaselineWander) {
  const auto taps = norm_taps(pt::kHpfTaps, 32.0);
  EXPECT_NEAR(magnitude_response(taps, 0.0, 200.0), 0.0, 1e-12);
  EXPECT_LT(magnitude_response(taps, 0.3, 200.0), 0.12);  // baseline wander
  EXPECT_GT(magnitude_response(taps, 8.0, 200.0), 0.8);   // QRS band
}

TEST(FrequencyResponse, DifferentiatorIsLinearInLowBand) {
  const auto taps = norm_taps(pt::kDerTaps, 8.0);
  // |H(f)| approximately proportional to f in the low band (the response
  // flattens toward 30 Hz, so test well inside the linear region).
  const double h5 = magnitude_response(taps, 5.0, 200.0);
  const double h10 = magnitude_response(taps, 10.0, 200.0);
  EXPECT_NEAR(h10 / h5, 2.0, 0.25);
}

TEST(Reference, ChainShapesSane) {
  // A 2 Hz sine survives the LPF but dies in the HPF passband edge; MWI is
  // non-negative by construction.
  std::vector<double> x;
  for (int i = 0; i < 2000; ++i)
    x.push_back(std::sin(2.0 * std::numbers::pi * 2.0 * i / 200.0));
  const PtReferenceOutput out = pt_reference_chain(x);
  ASSERT_EQ(out.mwi.size(), x.size());
  for (const double v : out.mwi) EXPECT_GE(v, 0.0);
  // LPF keeps the 2 Hz component.
  double lpf_rms = 0, hpf_rms = 0;
  for (std::size_t i = 500; i < x.size(); ++i) {
    lpf_rms += out.lpf[i] * out.lpf[i];
    hpf_rms += out.hpf[i] * out.hpf[i];
  }
  EXPECT_GT(lpf_rms, 10.0 * hpf_rms);  // HPF attenuates 2 Hz strongly
}

TEST(Reference, PipelineDelayConstant) {
  EXPECT_DOUBLE_EQ(pt::kPipelineDelay, 5.0 + 15.5 + 2.0 + 14.5);
}

TEST(FirStreaming, ChunkedFilterBitIdenticalToBatchAndScalar) {
  FirFilter f(norm_taps(pt::kLpfTaps, 36.0));
  std::vector<double> x;
  for (int i = 0; i < 500; ++i) {
    x.push_back(std::sin(2.0 * std::numbers::pi * 7.0 * i / 200.0) + 0.2 * std::cos(0.11 * i));
  }
  const auto batch = f.filter(x);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{13}, std::size_t{128}}) {
    FirFilterState st = f.make_state();
    std::vector<double> streamed;
    for (std::size_t at = 0; at < x.size(); at += chunk) {
      const auto len = std::min(chunk, x.size() - at);
      const auto y = f.filter_chunk(st, std::span<const double>(x).subspan(at, len));
      streamed.insert(streamed.end(), y.begin(), y.end());
    }
    EXPECT_EQ(streamed, batch) << "chunk " << chunk;
  }
  // Scalar streaming via the same explicit state matches too.
  FirFilterState st = f.make_state();
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.process(st, x[i]), batch[i]) << i;
  }
}

TEST(PtRecursiveStreaming, ChunkedRecursiveFiltersMatchWholeRecord) {
  std::vector<double> x;
  for (int i = 0; i < 400; ++i) {
    x.push_back(std::sin(2.0 * std::numbers::pi * 5.0 * i / 200.0) + 0.1 * i / 400.0);
  }
  const auto lpf_batch = pt_recursive_lpf(x);
  const auto hpf_batch = pt_recursive_hpf(x);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{17}, std::size_t{100}}) {
    PtRecursiveLpf::State lst = PtRecursiveLpf::make_state();
    PtRecursiveHpf::State hst = PtRecursiveHpf::make_state();
    std::vector<double> lpf, hpf;
    for (std::size_t at = 0; at < x.size(); at += chunk) {
      const auto len = std::min(chunk, x.size() - at);
      const auto span = std::span<const double>(x).subspan(at, len);
      const auto l = PtRecursiveLpf::process_chunk(lst, span);
      const auto h = PtRecursiveHpf::process_chunk(hst, span);
      lpf.insert(lpf.end(), l.begin(), l.end());
      hpf.insert(hpf.end(), h.begin(), h.end());
    }
    EXPECT_EQ(lpf, lpf_batch) << "chunk " << chunk;
    EXPECT_EQ(hpf, hpf_batch) << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace xbs::dsp
