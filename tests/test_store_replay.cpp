// Replay ↔ CSV bit-identity and server-level quarantine semantics.
//
// The claim under test: a record replayed from a checksummed XBS1 file
// through the mmap zero-copy loan path produces EXACTLY the event stream,
// session stats and OpCounts that the CSV ingest path produces — for every
// Fig. 12 approximate configuration and for shard counts {1, 2}. And when
// the file is corrupt, replay fails as a typed StoreError that quarantines
// that record only: the session, its siblings and the process all survive.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "fault_inject.hpp"
#include "xbs/core/paper_configs.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/ecg/io.hpp"
#include "xbs/stream/server.hpp"
#include "xbs/store/replay.hpp"
#include "xbs/store/store.hpp"

namespace xbs::store {
namespace {

using pantompkins::PipelineConfig;
using stream::Event;
using stream::PushResult;
using stream::SessionId;
using stream::SessionSpec;
using stream::StreamServer;

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

/// Everything the two ingest paths must agree on, bit for bit.
struct DriveResult {
  std::vector<Event> events;
  u64 chunks_processed = 0;
  u64 samples = 0;
  u64 events_n = 0;
  u64 beats = 0;
  arith::OpCounts ops{};
};

void expect_identical(const DriveResult& a, const DriveResult& b, const std::string& what) {
  EXPECT_EQ(a.chunks_processed, b.chunks_processed) << what;
  EXPECT_EQ(a.samples, b.samples) << what;
  EXPECT_EQ(a.events_n, b.events_n) << what;
  EXPECT_EQ(a.beats, b.beats) << what;
  EXPECT_EQ(a.ops, b.ops) << what;
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].peak, b.events[i].peak) << what << " event " << i;
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s) << what << " event " << i;
    EXPECT_EQ(a.events[i].rr_s, b.events[i].rr_s) << what << " event " << i;
    EXPECT_EQ(a.events[i].hr_bpm, b.events[i].hr_bpm) << what << " event " << i;
  }
}

StreamServer::Options server_opts(unsigned shards) {
  StreamServer::Options opts;
  opts.shards = shards;
  opts.workers = shards;  // one worker per shard: deterministic per-session order
  opts.queue_capacity_chunks = 8;
  return opts;
}

/// Finish a drive: close, snapshot the identity-relevant state, release.
DriveResult finish(StreamServer& server, SessionId id, std::vector<Event>&& events) {
  EXPECT_EQ(server.close(id), stream::SessionState::Closed);
  DriveResult r;
  r.events = std::move(events);
  const StreamServer::SessionStats st = server.session_stats(id);
  r.chunks_processed = st.chunks_processed;
  r.samples = st.samples;
  r.events_n = st.events;
  r.beats = st.beats;
  const stream::Session* s = server.session(id);
  EXPECT_NE(s, nullptr);
  if (s != nullptr) r.ops = s->total_ops();
  (void)server.release(id);
  return r;
}

/// The CSV ingest shape: record → write_csv → read_csv → blocking push()
/// in fixed chunks.
DriveResult drive_csv(const PipelineConfig& cfg, const ecg::DigitizedRecord& rec,
                      unsigned shards, std::size_t chunk) {
  std::stringstream csv;
  ecg::write_csv(csv, rec);
  const ecg::DigitizedRecord loaded = ecg::read_csv(csv);

  StreamServer server(server_opts(shards));
  std::vector<Event> events;
  SessionSpec spec;
  spec.config = cfg;
  spec.sink = [&events](const Event& ev) { events.push_back(ev); };
  const SessionId id = server.open(std::move(spec));
  for (std::size_t at = 0; at < loaded.adu.size(); at += chunk) {
    const std::size_t n = std::min(chunk, loaded.adu.size() - at);
    EXPECT_EQ(server.push(id, std::span<const i32>(loaded.adu).subspan(at, n)),
              PushResult::Ok)
        << "at " << at;
  }
  return finish(server, id, std::move(events));
}

/// The storage shape: record → write_record → mmap replay via loans.
DriveResult drive_replay(const PipelineConfig& cfg, const std::string& path, unsigned shards,
                         std::size_t chunk) {
  StreamServer server(server_opts(shards));
  std::vector<Event> events;
  SessionSpec spec;
  spec.config = cfg;
  spec.sink = [&events](const Event& ev) { events.push_back(ev); };
  const SessionId id = server.open(std::move(spec));

  RecordReader reader(path);
  const ReplayResult rr = replay_record(reader, server, id, chunk);
  EXPECT_EQ(rr.status, PushResult::Ok);
  EXPECT_EQ(rr.samples, reader.header().n_samples);
  return finish(server, id, std::move(events));
}

TEST(StoreReplay, BitIdenticalToCsvAcrossFig12ConfigsAndShards) {
  const ecg::DigitizedRecord rec = ecg::nsrdb_like_digitized(9, 3000);
  const std::string path = tmp_path("replay_fig12.xbs");
  write_record(path, rec);

  for (const auto& named : core::fig12_b_configs()) {
    const PipelineConfig cfg = PipelineConfig::from_lsbs(named.lsbs);
    for (const unsigned shards : {1u, 2u}) {
      const std::string what =
          std::string(named.name) + " shards=" + std::to_string(shards);
      const DriveResult csv = drive_csv(cfg, rec, shards, kSamplesPerPage);
      const DriveResult replay = drive_replay(cfg, path, shards, kSamplesPerPage);
      expect_identical(csv, replay, what);
      EXPECT_EQ(replay.samples, rec.adu.size()) << what;
      EXPECT_GT(replay.events_n, 0u) << what;
    }
  }
}

TEST(StoreReplay, OddChunkSizesStayBitIdentical) {
  // Chunk sizes that straddle page boundaries force samples() to verify two
  // pages per loan — the span is still contiguous and the results identical.
  const ecg::DigitizedRecord rec = ecg::nsrdb_like_digitized(10, 2500);
  const std::string path = tmp_path("replay_odd.xbs");
  write_record(path, rec);
  const PipelineConfig cfg;  // exact-arithmetic default config
  for (const std::size_t chunk : {std::size_t{97}, std::size_t{1023}, std::size_t{1500}}) {
    const DriveResult csv = drive_csv(cfg, rec, 1, chunk);
    const DriveResult replay = drive_replay(cfg, path, 1, chunk);
    expect_identical(csv, replay, "chunk=" + std::to_string(chunk));
  }
}

TEST(StoreReplay, CorruptPageQuarantinesRecordNotSiblingSessions) {
  const ecg::DigitizedRecord rec = ecg::nsrdb_like_digitized(11, 4 * kSamplesPerPage);
  const std::string clean_path = tmp_path("replay_clean.xbs");
  write_record(clean_path, rec);

  // Corrupt payload page 2 of a copy: replay commits pages 0–1, then throws.
  std::vector<u8> img = encode_record(rec);
  const std::size_t tag_pages =
      (RecordReader(clean_path).page_count() * sizeof(u32) + kPageBytes - 1) / kPageBytes;
  img[(1 + tag_pages) * kPageBytes + 2 * kPageBytes + 5] ^= u8{0x01};
  const std::string bad_path = tmp_path("replay_bad.xbs");
  testing::write_file(bad_path, img);

  StreamServer server(server_opts(1));
  std::vector<Event> clean_events, bad_events;
  SessionSpec spec_clean, spec_bad;
  spec_clean.sink = [&clean_events](const Event& ev) { clean_events.push_back(ev); };
  spec_bad.sink = [&bad_events](const Event& ev) { bad_events.push_back(ev); };
  const SessionId ok_id = server.open(std::move(spec_clean));
  const SessionId bad_id = server.open(std::move(spec_bad));

  RecordReader bad_reader(bad_path);
  bool threw = false;
  std::size_t committed = 0;
  try {
    (void)replay_record(bad_reader, server, bad_id, kSamplesPerPage);
  } catch (const StoreError& e) {
    threw = true;
    EXPECT_EQ(e.errc(), StoreErrc::PageCorrupt);
    EXPECT_EQ(e.page(), 2u);
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(bad_reader.quarantined());
  committed = static_cast<std::size_t>(server.session_stats(bad_id).chunks_in);
  EXPECT_EQ(committed, 2u);  // the clean prefix, nothing from the bad page on

  // The sibling session replays the clean file to full fidelity afterwards.
  RecordReader clean_reader(clean_path);
  const ReplayResult rr = replay_record(clean_reader, server, ok_id, kSamplesPerPage);
  EXPECT_EQ(rr.status, PushResult::Ok);
  EXPECT_EQ(rr.samples, rec.adu.size());
  EXPECT_EQ(server.close(ok_id), stream::SessionState::Closed);
  EXPECT_EQ(server.session_stats(ok_id).samples, rec.adu.size());

  // The interrupted session is not faulted — the corruption stayed in the
  // storage layer. It closes cleanly with just the prefix processed.
  EXPECT_EQ(server.close(bad_id), stream::SessionState::Closed);
  EXPECT_EQ(server.session_stats(bad_id).chunks_processed, 2u);

  // And the same server keeps serving: a third session runs fine.
  const SessionId next = server.open(SessionSpec{});
  EXPECT_EQ(server.push(next, std::vector<i32>(256, 0)), PushResult::Ok);
  EXPECT_EQ(server.close(next), stream::SessionState::Closed);
}

}  // namespace
}  // namespace xbs::store
