// Tests for design-space vocabulary helpers.
#include <gtest/gtest.h>

#include "xbs/explore/design.hpp"

namespace xbs::explore {
namespace {

using pantompkins::Stage;

TEST(Design, ToStringReadable) {
  const StageDesign sd{Stage::Lpf, 10, AdderKind::Approx5, MultKind::V1};
  EXPECT_EQ(sd.to_string(), "LPF:10/ApproxAdd5/AppMultV1");
  EXPECT_EQ(to_string(Design{}), "(accurate)");
}

TEST(Design, FindStage) {
  const Design d = {{Stage::Lpf, 10}, {Stage::Hpf, 8}};
  ASSERT_TRUE(find_stage(d, Stage::Lpf).has_value());
  EXPECT_EQ(find_stage(d, Stage::Lpf)->lsbs, 10);
  EXPECT_FALSE(find_stage(d, Stage::Der).has_value());
}

TEST(Design, MergeOverridesAndAppends) {
  const Design base = {{Stage::Lpf, 10}, {Stage::Hpf, 8}};
  const Design overlay = {{Stage::Hpf, 12}, {Stage::Mwi, 16}};
  const Design merged = merge(base, overlay);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(find_stage(merged, Stage::Lpf)->lsbs, 10);
  EXPECT_EQ(find_stage(merged, Stage::Hpf)->lsbs, 12);
  EXPECT_EQ(find_stage(merged, Stage::Mwi)->lsbs, 16);
}

TEST(Design, ToPipelineConfigAbsentStagesAccurate) {
  const Design d = {{Stage::Hpf, 8}};
  const auto cfg = to_pipeline_config(d);
  EXPECT_EQ(cfg.stage[1].adder.approx_lsbs, 8);
  EXPECT_EQ(cfg.stage[0].adder.approx_lsbs, 0);
  EXPECT_EQ(cfg.stage[4].mult.approx_lsbs, 0);
}

TEST(Design, DefaultLsbListsFollowPaperLimits) {
  EXPECT_EQ(default_lsb_list(Stage::Lpf), (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14, 16}));
  EXPECT_EQ(default_lsb_list(Stage::Der), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(default_lsb_list(Stage::Sqr), (std::vector<int>{0, 2, 4, 6, 8}));
  EXPECT_EQ(default_lsb_list(Stage::Mwi).back(), 16);
}

TEST(Design, ArithConfigRoundTrip) {
  const StageDesign sd{Stage::Sqr, 6, AdderKind::Approx3, MultKind::V2,
                       ApproxPolicy::Aggressive};
  const auto cfg = sd.arith_config();
  EXPECT_EQ(cfg.adder.approx_lsbs, 6);
  EXPECT_EQ(cfg.adder.kind, AdderKind::Approx3);
  EXPECT_EQ(cfg.mult.mult_kind, MultKind::V2);
  EXPECT_EQ(cfg.mult.policy, ApproxPolicy::Aggressive);
}

}  // namespace
}  // namespace xbs::explore
