// Tests for the mini synthesis optimizer (constant propagation, functional
// wire collapse, dead-module elimination).
#include <gtest/gtest.h>

#include "xbs/arith/rca.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/netlist/builders.hpp"
#include "xbs/netlist/netlist.hpp"
#include "xbs/netlist/optimizer.hpp"
#include "xbs/netlist/synth_report.hpp"

namespace xbs::netlist {
namespace {

TEST(Optimizer, ConstantAdderFoldsCompletely) {
  // 8-bit adder of two constants: every module folds; outputs = const bits.
  Netlist nl;
  const arith::AdderConfig cfg{8, 0, AdderKind::Accurate, 0};
  const auto a = nl.const_bus(57, 8);
  const auto b = nl.const_bus(123, 8);
  const auto out = build_rca(nl, cfg, a, b);
  for (const auto n : out.sum) nl.mark_output(n);
  const OptimizeStats stats = optimize(nl);
  EXPECT_EQ(nl.live_module_count(), 0u);
  EXPECT_GT(stats.const_folded, 0);
  const u64 got = nl.simulate_word({}, {});
  EXPECT_EQ(got, (57 + 123) & 0xFF);
}

TEST(Optimizer, AddZeroCollapsesToWires) {
  // x + 0 must fold to pure wiring (accurate FA(a,0,0) -> sum=a, cout=0).
  Netlist nl;
  const arith::AdderConfig cfg{8, 0, AdderKind::Accurate, 0};
  const auto a = nl.new_input_bus(8);
  const auto b = nl.const_bus(0, 8);
  const auto out = build_rca(nl, cfg, a, b);
  for (const auto n : out.sum) nl.mark_output(n);
  optimize(nl);
  EXPECT_EQ(nl.live_module_count(), 0u);
  Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    const u64 x = rng.next_u64() & 0xFF;
    const u64 words[1] = {x};
    const int widths[1] = {8};
    EXPECT_EQ(nl.simulate_word(words, widths), x);
  }
}

TEST(Optimizer, Ama5CollapsesToWiresEvenWithLiveInputs) {
  // An all-AMA5 adder is pure wiring: sum = b, plus carry lane = a shifted.
  Netlist nl;
  const arith::AdderConfig cfg{8, 8, AdderKind::Approx5, 0};
  const auto a = nl.new_input_bus(8);
  const auto b = nl.new_input_bus(8);
  const auto out = build_rca(nl, cfg, a, b);
  for (const auto n : out.sum) nl.mark_output(n);
  const OptimizeStats stats = optimize(nl);
  EXPECT_EQ(nl.live_module_count(), 0u);
  EXPECT_GT(stats.wire_collapsed, 0);
}

TEST(Optimizer, DeadLogicEliminated) {
  // Build an adder but observe only its lowest sum bit: upper FAs whose
  // outputs feed nothing must be removed.
  Netlist nl;
  const arith::AdderConfig cfg{8, 0, AdderKind::Accurate, 0};
  const auto a = nl.new_input_bus(8);
  const auto b = nl.new_input_bus(8);
  const auto out = build_rca(nl, cfg, a, b);
  nl.mark_output(out.sum[0]);  // only bit 0 observable
  optimize(nl);
  // Bit 0's FA survives (a0 ^ b0 is not a wire); everything above is dead.
  EXPECT_EQ(nl.live_module_count(), 1u);
}

TEST(Optimizer, MultiplierByPowerOfTwoIsFree) {
  // x * 2 is a shift: after folding, no live modules should remain.
  Netlist nl;
  const arith::MultiplierConfig cfg{16, 0};
  const auto a = nl.new_input_bus(16);
  const auto b = nl.const_bus(2, 16);
  const auto out = build_multiplier(nl, cfg, a, b);
  for (const auto n : out) nl.mark_output(n);
  optimize(nl);
  EXPECT_EQ(nl.live_module_count(), 0u);
  Rng rng(2);
  for (int t = 0; t < 50; ++t) {
    const u64 x = rng.next_u64() & 0xFFFF;
    const u64 words[1] = {x};
    const int widths[1] = {16};
    EXPECT_EQ(nl.simulate_word(words, widths), 2 * x);
  }
}

TEST(Optimizer, FixpointReachedQuickly) {
  Netlist nl = build_fir_stage(FirStageSpec{{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1},
                                            arith::StageArithConfig::uniform(8)});
  const OptimizeStats stats = optimize(nl);
  EXPECT_LE(stats.passes, 6);
  // Second run is a no-op.
  const OptimizeStats again = optimize(nl);
  EXPECT_EQ(again.const_folded + again.wire_collapsed + again.dead_removed, 0);
}

TEST(Optimizer, InverterChainsFold) {
  Netlist nl;
  const NetId x = nl.new_input();
  const NetId n1 = nl.emit_not(x);
  const NetId n2 = nl.emit_not(n1);  // double inversion = wire... needs 2 passes
  nl.mark_output(n2);
  optimize(nl);
  // NOT(NOT(x)) cannot be collapsed by identity-wire detection (single NOT
  // output is not equal to its input), so both stay live — but a constant
  // input folds fully:
  Netlist nl2;
  const NetId c = Netlist::const_net(true);
  const NetId m1 = nl2.emit_not(c);
  const NetId m2 = nl2.emit_not(m1);
  nl2.mark_output(m2);
  optimize(nl2);
  EXPECT_EQ(nl2.live_module_count(), 0u);
  EXPECT_EQ(nl2.simulate({}).at(0), true);
}

TEST(Optimizer, ReportShrinksAfterOptimize) {
  Netlist raw = build_fir_stage(FirStageSpec{{2, 1, 1, 2}, arith::StageArithConfig{}});
  const SynthesisReport before = report(raw);
  optimize(raw);
  const SynthesisReport after = report(raw);
  EXPECT_LT(after.cost.energy_fj, before.cost.energy_fj);
  EXPECT_LT(after.live_modules, before.live_modules);
  EXPECT_EQ(after.live_modules + after.removed_modules,
            before.live_modules + before.removed_modules);
}

}  // namespace
}  // namespace xbs::netlist
