// Exhaustive bit-identity of the precompiled square tables (the SQR-stage
// kernel) against the behavioural multiplier, for every Fig. 12 SQR
// configuration, plus coverage of the aliased mul_n fast path and the signed
// per-coefficient tables the FIR stages walk.
#include <gtest/gtest.h>

#include <vector>

#include "xbs/arith/kernel.hpp"
#include "xbs/common/bitops.hpp"
#include "xbs/core/paper_configs.hpp"

namespace xbs::arith {
namespace {

/// Distinct approximate SQR-stage arithmetic configurations of the paper's
/// Fig. 12 table (B1..B14 all use ApproxAdd5 + AppMultV1), deduplicated.
std::vector<StageArithConfig> fig12_sqr_configs() {
  std::vector<StageArithConfig> cfgs;
  for (const auto& named : core::fig12_b_configs()) {
    const int lsbs = named.lsbs[3];  // SQR is stage index 3
    if (lsbs == 0) continue;         // exact: no table, native datapath
    const StageArithConfig cfg = StageArithConfig::uniform(lsbs);
    bool seen = false;
    for (const auto& c : cfgs) seen |= (c == cfg);
    if (!seen) cfgs.push_back(cfg);
  }
  return cfgs;
}

TEST(SquareTable, BitIdenticalToMul1OverAllInputsForFig12Configs) {
  const std::vector<StageArithConfig> cfgs = fig12_sqr_configs();
  ASSERT_FALSE(cfgs.empty());
  for (const StageArithConfig& cfg : cfgs) {
    const ApproxKernel kernel(cfg);
    const auto table = get_square_products(cfg.mult);
    ASSERT_EQ(table->size(), std::size_t{1} << cfg.mult.width);
    for (std::size_t u = 0; u < table->size(); ++u) {
      const i64 x = sign_extend(static_cast<u64>(u), cfg.mult.width);
      ASSERT_EQ((*table)[u], kernel.mul1(x, x))
          << "lsbs=" << cfg.mult.approx_lsbs << " u=" << u;
    }
  }
}

TEST(SquareTable, CoversOtherModuleKindsAndPolicies) {
  for (const MultKind mk : {MultKind::V1, MultKind::V2}) {
    for (const ApproxPolicy pol :
         {ApproxPolicy::Conservative, ApproxPolicy::Moderate, ApproxPolicy::Aggressive}) {
      const StageArithConfig cfg = StageArithConfig::uniform(8, AdderKind::Approx4, mk, pol);
      const ApproxKernel kernel(cfg);
      const auto table = get_square_products(cfg.mult);
      for (std::size_t u = 0; u < table->size(); u += 17) {  // stride sample
        const i64 x = sign_extend(static_cast<u64>(u), cfg.mult.width);
        ASSERT_EQ((*table)[u], kernel.mul1(x, x));
      }
    }
  }
}

TEST(SquareTable, AliasedMulNMatchesScalarHook) {
  const StageArithConfig cfg = StageArithConfig::uniform(8);
  ApproxKernel kernel(cfg);
  (void)get_square_products(cfg.mult);  // warm, so small blocks walk the table
  std::vector<i64> v;
  for (i64 x = -32768; x <= 32767; x += 191) v.push_back(x);
  std::vector<i64> expect;
  expect.reserve(v.size());
  for (const i64 x : v) expect.push_back(kernel.mul1(x, x));
  kernel.mul_n(v, v, v);  // full in-place aliasing is part of the contract
  EXPECT_EQ(v, expect);
}

TEST(SignedCoeffTable, MatchesMul1ForEveryOperandPattern) {
  const StageArithConfig cfg = StageArithConfig::uniform(12);
  const ApproxKernel kernel(cfg);
  for (const i64 c : {i64{31}, i64{-1}, i64{6}, i64{-2}}) {
    const auto table = get_signed_coeff_products(cfg.mult, c);
    ASSERT_EQ(table->size(), std::size_t{1} << cfg.mult.width);
    for (std::size_t u = 0; u < table->size(); u += 13) {  // stride sample
      const i64 x = sign_extend(static_cast<u64>(u), cfg.mult.width);
      ASSERT_EQ((*table)[u], kernel.mul1(c, x)) << "c=" << c << " u=" << u;
    }
  }
}

}  // namespace
}  // namespace xbs::arith
