/// \file test_net.cpp
/// \brief The network ingest plane: XBSP codec round-trips and hostile-input
/// behavior, loopback bit-identity against the in-process serving path, warm
/// reconnect re-pairing, connection-level fault isolation and LRU admission.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "fault_inject.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/net/client.hpp"
#include "xbs/net/protocol.hpp"
#include "xbs/net/server.hpp"
#include "xbs/pantompkins/pipeline.hpp"
#include "xbs/stream/server.hpp"

namespace xbs::net {
namespace {

using namespace std::chrono_literals;
using pantompkins::PipelineConfig;

constexpr std::array<i32, pantompkins::kNumStages> kB9Lsbs = {10, 12, 2, 8, 16};

void expect_events_equal(const std::vector<stream::Event>& a,
                         const std::vector<stream::Event>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].peak, b[i].peak) << what << " event " << i;
    // Doubles travel as IEEE-754 bit patterns: equality must be exact.
    EXPECT_EQ(a[i].time_s, b[i].time_s) << what << " event " << i;
    EXPECT_EQ(a[i].rr_s, b[i].rr_s) << what << " event " << i;
    EXPECT_EQ(a[i].hr_bpm, b[i].hr_bpm) << what << " event " << i;
  }
}

std::vector<std::size_t> ragged_plan(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<std::size_t> plan;
  std::size_t at = 0;
  while (at < n) {
    const auto len =
        std::min<std::size_t>(static_cast<std::size_t>(rng.uniform_int(1, 97)), n - at);
    plan.push_back(len);
    at += len;
  }
  return plan;
}

// ----------------------------------------------------------------- codec

TEST(NetCodec, EveryFrameTypeRoundTrips) {
  std::vector<u8> wire;
  encode_hello(wire);
  OpenFrame open;
  open.token = 0xDEADBEEFCAFE1234ull;
  open.add_kind = AdderKind::Approx3;
  open.mult_kind = MultKind::V2;
  open.policy = ApproxPolicy::Aggressive;
  open.lsbs = kB9Lsbs;
  encode_open(wire, open);
  const std::vector<i32> samples = {0, -1, 1, 1023, -1024, 0x7FFFFFFF, -0x7FFFFFFF};
  encode_chunk(wire, samples);
  encode_drain(wire, 1500);
  encode_close(wire);
  encode_reset(wire, true);
  std::vector<stream::Event> evs(3);
  evs[0].peak.raw_index = 123;
  evs[0].peak.mwi_index = 140;
  evs[0].peak.hpf_index = 130;
  evs[0].peak.mwi_value = -55;
  evs[0].peak.hpf_value = 99;
  evs[0].peak.decision = pantompkins::PeakDecision::Accepted;
  evs[0].time_s = 0.615;
  evs[0].rr_s = 0.83;
  evs[0].hr_bpm = 72.289156626506024;  // exercises non-representable decimals
  evs[1].peak.decision = pantompkins::PeakDecision::TWave;
  evs[1].time_s = -0.0;
  evs[2].peak.decision = pantompkins::PeakDecision::SearchBackRecovered;
  evs[2].hr_bpm = 1e300;
  encode_events(wire, evs);

  // Feed the whole stream one byte at a time: frames must reassemble across
  // arbitrary tears.
  FrameDecoder dec;
  std::vector<std::pair<FrameHeader, std::vector<u8>>> frames;
  for (const u8 b : wire) {
    dec.feed(std::span<const u8>(&b, 1));
    FrameHeader h;
    std::vector<u8> p;
    WireError e = WireError::None;
    while (dec.next(h, p, e) == FrameDecoder::Next::Frame) frames.emplace_back(h, p);
    ASSERT_EQ(e, WireError::None);
  }
  ASSERT_EQ(frames.size(), 7u);

  HelloFrame h2;
  EXPECT_EQ(decode_hello(frames[0].second, h2), WireError::None);
  EXPECT_EQ(h2.version, kProtoVersion);

  OpenFrame o2;
  ASSERT_EQ(decode_open(frames[1].second, o2), WireError::None);
  EXPECT_EQ(o2.token, open.token);
  EXPECT_EQ(o2.add_kind, open.add_kind);
  EXPECT_EQ(o2.mult_kind, open.mult_kind);
  EXPECT_EQ(o2.policy, open.policy);
  EXPECT_EQ(o2.lsbs, open.lsbs);

  std::vector<i32> s2;
  ASSERT_EQ(decode_chunk(frames[2].second, s2), WireError::None);
  EXPECT_EQ(s2, samples);

  DrainFrame d2;
  ASSERT_EQ(decode_drain(frames[3].second, d2), WireError::None);
  EXPECT_EQ(d2.timeout_ms, 1500u);

  EXPECT_EQ(frames[4].first.type, FrameType::Close);
  EXPECT_EQ(frames[4].second.size(), 0u);

  ResetFrame r2;
  ASSERT_EQ(decode_reset(frames[5].second, r2), WireError::None);
  EXPECT_TRUE(r2.warm);

  std::vector<stream::Event> evs2;
  ASSERT_EQ(decode_events(frames[6].second, evs2), WireError::None);
  expect_events_equal(evs, evs2, "event round trip");
  EXPECT_TRUE(std::signbit(evs2[1].time_s));  // -0.0 survives bit-exactly
}

TEST(NetCodec, StatsAndErrorRoundTrip) {
  std::vector<u8> wire;
  StatsFrame st;
  st.ack = StatsAck::Resumed;
  st.session_state = 1;
  st.chunks_in = 7;
  st.rejected_chunks = 2;
  st.resets = 1;
  st.net_events_shed = 42;
  encode_stats(wire, st);
  encode_error(wire, WireError::Oversize, "chunk too big");
  FrameDecoder dec;
  dec.feed(wire);
  FrameHeader h;
  std::vector<u8> p;
  WireError e = WireError::None;
  ASSERT_EQ(dec.next(h, p, e), FrameDecoder::Next::Frame);
  StatsFrame st2;
  ASSERT_EQ(decode_stats(p, st2), WireError::None);
  EXPECT_EQ(st2.ack, StatsAck::Resumed);
  EXPECT_EQ(st2.chunks_in, 7u);
  EXPECT_EQ(st2.rejected_chunks, 2u);
  EXPECT_EQ(st2.resets, 1u);
  EXPECT_EQ(st2.net_events_shed, 42u);
  ASSERT_EQ(dec.next(h, p, e), FrameDecoder::Next::Frame);
  ErrorFrame ef;
  ASSERT_EQ(decode_error(p, ef), WireError::None);
  EXPECT_EQ(ef.code, WireError::Oversize);
  EXPECT_EQ(ef.message, "chunk too big");
  EXPECT_EQ(dec.next(h, p, e), FrameDecoder::Next::NeedMore);
}

TEST(NetCodec, MalformedHeadersAreFatalAndSticky) {
  struct Case {
    const char* name;
    std::vector<u8> bytes;
    WireError want;
  };
  std::vector<u8> good;
  encode_close(good);
  std::vector<Case> cases;
  {
    auto b = good;
    b[0] ^= 0xFF;  // magic
    cases.push_back({"bad magic", b, WireError::BadMagic});
  }
  {
    auto b = good;
    b[4] = 0x7E;  // unknown frame type
    cases.push_back({"unknown type", b, WireError::UnknownType});
  }
  {
    auto b = good;
    b[5] = 1;  // nonzero flags
    cases.push_back({"nonzero flags", b, WireError::BadHeader});
  }
  {
    auto b = good;
    b[6] = 1;  // nonzero reserved
    cases.push_back({"nonzero reserved", b, WireError::BadHeader});
  }
  {
    auto b = good;
    b[11] = 0x7F;  // payload_len > bound
    cases.push_back({"oversize", b, WireError::Oversize});
  }
  for (const Case& c : cases) {
    FrameDecoder dec;
    dec.feed(c.bytes);
    FrameHeader h;
    std::vector<u8> p;
    WireError e = WireError::None;
    ASSERT_EQ(dec.next(h, p, e), FrameDecoder::Next::Error) << c.name;
    EXPECT_EQ(e, c.want) << c.name;
    EXPECT_TRUE(is_fatal(e)) << c.name;
    // Sticky: a framing error has no resync point, so the stream stays dead
    // even when valid bytes follow.
    dec.feed(good);
    EXPECT_EQ(dec.next(h, p, e), FrameDecoder::Next::Error) << c.name;
  }
}

TEST(NetCodec, TruncatedAndOverlongPayloadsAreMalformed) {
  OpenFrame f;
  std::vector<u8> wire;
  encode_open(wire, f);
  std::span<const u8> payload(wire.data() + kHeaderBytes, wire.size() - kHeaderBytes);
  OpenFrame out;
  // Every truncation of a valid payload must decode to Malformed, not UB.
  for (std::size_t n = 0; n < payload.size(); ++n) {
    EXPECT_EQ(decode_open(payload.subspan(0, n), out), WireError::Malformed) << n;
  }
  // Trailing garbage is Malformed too (exact layouts only).
  std::vector<u8> longer(payload.begin(), payload.end());
  longer.push_back(0);
  EXPECT_EQ(decode_open(longer, out), WireError::Malformed);
  // Out-of-range enums from the wire must not become out-of-range enums here.
  std::vector<u8> bad(payload.begin(), payload.end());
  bad[8] = 0xFF;
  EXPECT_EQ(decode_open(bad, out), WireError::Malformed);
  bad = {payload.begin(), payload.end()};
  bad[12] = 0xFF;  // lsbs[0] = negative/huge
  EXPECT_EQ(decode_open(bad, out), WireError::Malformed);

  HelloFrame hf;
  EXPECT_EQ(decode_hello(std::span<const u8>(), hf), WireError::Malformed);
  DrainFrame df;
  EXPECT_EQ(decode_drain(std::span<const u8>(), df), WireError::Malformed);
  ResetFrame rf;
  std::vector<u8> warm2 = {2, 0, 0, 0};
  EXPECT_EQ(decode_reset(warm2, rf), WireError::Malformed);
  // EVENT count lying about the payload size must be caught up front.
  std::vector<u8> evp = {0xFF, 0xFF, 0, 0, 0, 0, 0, 0};
  std::vector<stream::Event> evs;
  EXPECT_EQ(decode_events(evp, evs), WireError::Malformed);
  std::vector<i32> chunk;
  std::vector<u8> odd = {1, 2, 3};
  EXPECT_EQ(decode_chunk(odd, chunk), WireError::Malformed);
}

TEST(NetCodec, RandomBytesNeverCrashTheDecoder) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder dec;
    std::vector<u8> noise(static_cast<std::size_t>(rng.uniform_int(1, 512)));
    for (u8& b : noise) b = static_cast<u8>(rng.uniform_int(0, 255));
    // Occasionally start from a valid header so payload parsing is reached.
    if (trial % 3 == 0) {
      std::vector<u8> hdr;
      put_header(hdr, static_cast<FrameType>(rng.uniform_int(1, 6)),
                 noise.size() > kHeaderBytes ? noise.size() - kHeaderBytes : 0);
      std::copy(hdr.begin(), hdr.end(), noise.begin());
    }
    std::size_t at = 0;
    while (at < noise.size()) {
      const std::size_t len = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform_int(1, 64)), noise.size() - at);
      dec.feed(std::span<const u8>(noise.data() + at, len));
      at += len;
      FrameHeader h;
      std::vector<u8> p;
      WireError e = WireError::None;
      FrameDecoder::Next nx;
      while ((nx = dec.next(h, p, e)) == FrameDecoder::Next::Frame) {
        // Whatever came out, every payload decoder must reject or accept
        // without crashing or reading out of bounds.
        HelloFrame hf;
        (void)decode_hello(p, hf);
        OpenFrame of;
        (void)decode_open(p, of);
        DrainFrame df;
        (void)decode_drain(p, df);
        ResetFrame rf;
        (void)decode_reset(p, rf);
        std::vector<stream::Event> evs;
        (void)decode_events(p, evs);
        StatsFrame sf;
        (void)decode_stats(p, sf);
        ErrorFrame ef;
        (void)decode_error(p, ef);
        std::vector<i32> ch;
        (void)decode_chunk(p, ch);
      }
      if (nx == FrameDecoder::Next::Error) break;
    }
  }
}

// ------------------------------------------------------------- loopback

struct NetDrive {
  std::vector<stream::Event> events;
  StatsFrame final_stats;
};

/// Drive a whole record through the server over TCP and return everything
/// that came back.
NetDrive drive_over_net(NetServer& server, u64 token,
                        const std::array<i32, pantompkins::kNumStages>& lsbs,
                        std::span<const i32> adu, const std::vector<std::size_t>& plan) {
  NetClient cli;
  cli.connect("127.0.0.1", server.port());
  OpenFrame f;
  f.token = token;
  f.lsbs = lsbs;
  (void)cli.open(f);
  NetDrive out;
  std::size_t at = 0;
  for (const std::size_t len : plan) {
    cli.send_chunk(adu.subspan(at, len));
    at += len;
    (void)cli.take_events(out.events);  // keep the pipe flowing
  }
  out.final_stats = cli.close_session();  // EVENTs before the ack collect too
  (void)cli.take_events(out.events);
  return out;
}

TEST(NetLoopback, BitIdenticalToInProcessServingAcrossShardsAndConfigs) {
  const auto rec = ecg::nsrdb_like_digitized(0, 6000);
  const auto plan = ragged_plan(rec.adu.size(), 77);
  const std::array<i32, pantompkins::kNumStages> kExact{};
  int pass = 0;
  for (const unsigned shards : {1u, 2u}) {
    for (const auto& lsbs : {kExact, kB9Lsbs}) {
      ++pass;
      const std::string what =
          "shards=" + std::to_string(shards) + " pass=" + std::to_string(pass);
      stream::StreamServer::Options so;
      so.shards = shards;
      so.workers = 2;
      so.queue_capacity_chunks = 4096;  // >= chunk count: the stall path never fires
      so.event_queue_capacity = 1 << 16;

      // In-process reference: same options, same spec shape as admit().
      std::vector<stream::Event> ref_events;
      stream::StreamServer::SessionStats ref_stats;
      {
        stream::StreamServer ref(so);
        OpenFrame f;
        f.lsbs = lsbs;
        stream::SessionSpec spec;
        spec.config = f.config();
        spec.keep_detection = false;
        const auto id = ref.open(spec);
        std::size_t at = 0;
        for (const std::size_t len : plan) {
          ASSERT_EQ(ref.push(id, std::span<const i32>(rec.adu).subspan(at, len)),
                    stream::PushResult::Ok)
              << what;
          at += len;
        }
        EXPECT_EQ(ref.close(id), stream::SessionState::Closed) << what;
        (void)ref.drain_events(id, ref_events);
        ref_stats = ref.session_stats(id);
      }

      NetServer::Options no;
      no.stream = so;
      NetServer server(no);
      const NetDrive got = drive_over_net(server, 0xAB0000 + static_cast<u64>(pass),
                                          lsbs, rec.adu, plan);

      expect_events_equal(ref_events, got.events, what);
      EXPECT_GT(got.events.size(), 0u) << what;
      EXPECT_EQ(got.final_stats.samples, ref_stats.samples) << what;
      EXPECT_EQ(got.final_stats.events, ref_stats.events) << what;
      EXPECT_EQ(got.final_stats.beats, ref_stats.beats) << what;
      EXPECT_EQ(got.final_stats.chunks_in, plan.size()) << what;
      EXPECT_EQ(got.final_stats.chunks_processed, plan.size()) << what;
      EXPECT_EQ(got.final_stats.rejected_chunks, 0u) << what;
      EXPECT_EQ(got.final_stats.dropped_chunks, 0u) << what;
      EXPECT_EQ(got.final_stats.session_state,
                static_cast<u8>(stream::SessionState::Closed))
          << what;
      const auto ns = server.stats();
      EXPECT_EQ(ns.events_shed, 0u) << what;
      EXPECT_EQ(ns.protocol_errors, 0u) << what;
    }
  }
}

TEST(NetLoopback, DisconnectReconnectResumesWarm) {
  const auto rec = ecg::nsrdb_like_digitized(2, 8000);
  const std::span<const i32> adu(rec.adu);
  const std::size_t half = adu.size() / 2;
  const auto plan_a = ragged_plan(half, 11);
  const auto plan_b = ragged_plan(adu.size() - half, 12);

  stream::StreamServer::Options so;
  so.shards = 1;
  so.workers = 1;
  so.queue_capacity_chunks = 4096;
  so.event_queue_capacity = 1 << 16;

  // Reference: one in-process session, warm reset at the split point —
  // exactly what park + resume must reproduce.
  std::vector<stream::Event> ref_a;
  std::vector<stream::Event> ref_b;
  {
    stream::StreamServer ref(so);
    stream::SessionSpec spec;
    spec.config = OpenFrame{}.config();
    spec.keep_detection = false;
    const auto id = ref.open(spec);
    std::size_t at = 0;
    for (const std::size_t len : plan_a) {
      ASSERT_EQ(ref.push(id, adu.subspan(at, len)), stream::PushResult::Ok);
      at += len;
    }
    // Quiesce, then drain before the reset (reset drops undrained egress).
    while (ref.session_stats(id).chunks_processed < plan_a.size()) {
      std::this_thread::sleep_for(1ms);
    }
    (void)ref.drain_events(id, ref_a);
    ASSERT_TRUE(ref.reset(id, pantompkins::WarmStart::KeepThresholds));
    for (const std::size_t len : plan_b) {
      ASSERT_EQ(ref.push(id, adu.subspan(at, len)), stream::PushResult::Ok);
      at += len;
    }
    EXPECT_EQ(ref.close(id), stream::SessionState::Closed);
    (void)ref.drain_events(id, ref_b);
  }

  NetServer::Options no;
  no.stream = so;
  NetServer server(no);
  const u64 token = 0x517EA1;
  std::vector<stream::Event> got_a;
  std::vector<stream::Event> got_b;
  {
    NetClient cli;
    cli.connect("127.0.0.1", server.port());
    OpenFrame f;
    f.token = token;
    const auto ack = cli.open(f);
    EXPECT_EQ(ack.ack, StatsAck::Open);
    std::size_t at = 0;
    for (const std::size_t len : plan_a) {
      cli.send_chunk(adu.subspan(at, len));
      at += len;
    }
    // Everything processed and drained to this client before it "dies".
    while (cli.drain(50).chunks_processed < plan_a.size()) {
      std::this_thread::sleep_for(1ms);
    }
    // One more drain after quiescence: the final DRAIN above flushed events
    // before snapshotting stats, so a tail event could postdate that flush.
    (void)cli.drain(0);
    (void)cli.take_events(got_a);
    cli.disconnect();  // mid-record: the server parks the session warm
  }
  {
    NetClient cli;
    cli.connect("127.0.0.1", server.port());
    OpenFrame f;
    f.token = token;
    // The park is asynchronous: OPEN may race it and see SessionBusy, so
    // retry — this is the documented reconnect idiom.
    const auto ack = cli.open(f, /*busy_retry_for=*/2s);
    EXPECT_EQ(ack.ack, StatsAck::Resumed);
    EXPECT_EQ(ack.resets, 1u);  // the park's reset(KeepThresholds)
    std::size_t at = half;
    for (const std::size_t len : plan_b) {
      cli.send_chunk(adu.subspan(at, len));
      at += len;
    }
    (void)cli.close_session();
    (void)cli.take_events(got_b);
  }
  expect_events_equal(ref_a, got_a, "first half");
  expect_events_equal(ref_b, got_b, "second half (warm resume)");
  EXPECT_GT(got_b.size(), 0u);
  const auto ns = server.stats();
  EXPECT_EQ(ns.sessions_parked, 1u);
  EXPECT_EQ(ns.sessions_resumed, 1u);
}

// ------------------------------------------------------- hostile clients

int raw_connect(u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &a.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&a), sizeof a), 0);
  return fd;
}

/// Read until EOF (the server hung up) and return everything received.
std::vector<u8> read_to_eof(int fd) {
  std::vector<u8> all;
  u8 buf[4096];
  while (true) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) break;
    all.insert(all.end(), buf, buf + r);
  }
  return all;
}

WireError first_error_code(const std::vector<u8>& bytes) {
  FrameDecoder dec;
  dec.feed(bytes);
  FrameHeader h;
  std::vector<u8> p;
  WireError e = WireError::None;
  while (dec.next(h, p, e) == FrameDecoder::Next::Frame) {
    if (h.type != FrameType::Error) continue;
    ErrorFrame ef;
    if (decode_error(p, ef) == WireError::None) return ef.code;
  }
  return WireError::None;
}

TEST(NetHostile, MalformedFloodQuarantinesOnlyItsConnection) {
  const auto rec = ecg::nsrdb_like_digitized(1, 6000);
  const auto plan = ragged_plan(rec.adu.size(), 31);
  stream::StreamServer::Options so;
  so.queue_capacity_chunks = 4096;
  so.event_queue_capacity = 1 << 16;
  NetServer::Options no;
  no.stream = so;
  NetServer server(no);

  // A healthy client streams a record while hostile connections flood
  // garbage; the hostile connections die, the healthy one must not notice.
  auto healthy = std::async(std::launch::async, [&] {
    return drive_over_net(server, 0x600D, {}, rec.adu, plan);
  });

  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    const int fd = raw_connect(server.port());
    std::vector<u8> junk(256);
    for (u8& b : junk) b = static_cast<u8>(rng.uniform_int(0, 255));
    junk[0] = 0x00;  // guarantee the magic check fails up front
    (void)::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    const auto reply = read_to_eof(fd);  // ERROR frame, then the server hangs up
    EXPECT_TRUE(is_fatal(first_error_code(reply))) << "flood " << i;
    ::close(fd);
  }
  // Skipping HELLO is its own fatal violation.
  {
    const int fd = raw_connect(server.port());
    std::vector<u8> frame;
    encode_close(frame);
    (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    EXPECT_EQ(first_error_code(read_to_eof(fd)), WireError::HelloRequired);
    ::close(fd);
  }

  const NetDrive got = healthy.get();
  EXPECT_GT(got.events.size(), 0u);
  EXPECT_EQ(got.final_stats.chunks_processed, plan.size());
  EXPECT_EQ(got.final_stats.session_state,
            static_cast<u8>(stream::SessionState::Closed));
  const auto ns = server.stats();
  EXPECT_GE(ns.protocol_errors, 9u);
  EXPECT_EQ(server.stream().stats().faulted, 0u);  // no session was harmed
}

TEST(NetHostile, LruEvictionAdmitsNewSessionsPastTheCeiling) {
  stream::StreamServer::Options so;
  so.max_sessions = 2;
  so.event_queue_capacity = 64;
  NetServer::Options no;
  no.stream = so;
  NetServer server(no);

  NetClient cli;
  cli.connect("127.0.0.1", server.port());
  // Two finished records fill both slots with Closed-but-unreleased state.
  for (const u64 token : {1ull, 2ull}) {
    OpenFrame f;
    f.token = token;
    EXPECT_EQ(cli.open(f).ack, StatsAck::Open);
    cli.send_chunk(std::vector<i32>(64, 0));
    (void)cli.close_session();
  }
  // A third OPEN would exceed max_sessions: the front door evicts the
  // least-recently-used closed slot instead of refusing.
  OpenFrame f3;
  f3.token = 3;
  EXPECT_EQ(cli.open(f3).ack, StatsAck::Open);
  EXPECT_EQ(server.stats().sessions_evicted, 1u);

  // Both slots attached to live connections: nothing is evictable and the
  // refusal is explicit.
  NetClient cli2;
  cli2.connect("127.0.0.1", server.port());
  OpenFrame f4;
  f4.token = 4;
  EXPECT_EQ(cli2.open(f4).ack, StatsAck::Open);  // evicts the closed token-2 slot
  EXPECT_EQ(server.stats().sessions_evicted, 2u);
  NetClient cli3;
  cli3.connect("127.0.0.1", server.port());
  OpenFrame f5;
  f5.token = 5;
  try {
    (void)cli3.open(f5);
    FAIL() << "expected SessionLimit";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::SessionLimit);
  }
  // The connection survives a semantic refusal: a retry after capacity
  // frees (client 1 closes its record) succeeds on the same socket.
  (void)cli.close_session();
  EXPECT_EQ(cli3.open(f5).ack, StatsAck::Open);
}

TEST(NetHostile, OversizeChunkClosesConnectionWithoutFaultingSession) {
  stream::StreamServer::Options so;
  so.max_chunk_samples = 128;
  so.event_queue_capacity = 64;
  NetServer::Options no;
  no.stream = so;
  NetServer server(no);

  NetClient cli;
  cli.connect("127.0.0.1", server.port());
  OpenFrame f;
  f.token = 77;
  (void)cli.open(f);
  try {
    cli.send_chunk(std::vector<i32>(4096, 1));  // over max_chunk_samples
    // The refusal races the send; poll until the hangup surfaces.
    for (int i = 0; i < 100 && cli.connected(); ++i) {
      std::vector<stream::Event> sink;
      (void)cli.take_events(sink);
      std::this_thread::sleep_for(5ms);
    }
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::Oversize);
  } catch (const std::runtime_error&) {
    // send() hit the reset first: equally fine, the connection is gone.
  }
  // The session parked warm instead of faulting; the same token resumes.
  NetClient cli2;
  cli2.connect("127.0.0.1", server.port());
  const auto ack = cli2.open(f, /*busy_retry_for=*/2s);
  EXPECT_EQ(ack.ack, StatsAck::Resumed);
  EXPECT_EQ(server.stream().stats().faulted, 0u);
}

// ------------------------------------------------------- corruption fuzzing
//
// The shared fault-injection harness (tests/fault_inject.hpp, also used
// against the record store) drives the frame decoder with corrupted copies
// of a valid multi-frame stream. Frames carry no checksums, so a payload
// bit flip may legally decode — the properties under test are the decoder's
// survival guarantees, not detection:
//   - no crash, hang, or sanitizer report on any corrupted stream;
//   - a fatal framing error is sticky: once Error, always Error, no matter
//     what is fed afterwards (the stream is dead);
//   - whatever frames do come out decode through the typed payload decoders
//     without crashing (they may return Malformed — that's a valid outcome).

/// One valid wire stream exercising every frame type (seeded variation in
/// the chunk payload so different iterations corrupt different images).
std::vector<u8> valid_stream(u64 seed) {
  Rng rng(seed);
  std::vector<u8> wire;
  encode_hello(wire);
  OpenFrame open;
  open.token = rng.next_u64();
  open.lsbs = kB9Lsbs;
  encode_open(wire, open);
  std::vector<i32> samples(static_cast<std::size_t>(rng.uniform_int(1, 600)));
  for (i32& s : samples) s = static_cast<i32>(rng.uniform_int(-40000, 40000));
  encode_chunk(wire, samples);
  encode_drain(wire, 250);
  std::vector<stream::Event> evs(2);
  evs[0].time_s = 1.25;
  evs[0].hr_bpm = 71.0;
  evs[1].peak.decision = pantompkins::PeakDecision::TWave;
  encode_events(wire, evs);
  encode_stats(wire, StatsFrame{});
  encode_error(wire, WireError::Refused, "busy");
  encode_reset(wire, false);
  encode_close(wire);
  return wire;
}

/// Feed \p wire to \p dec in ragged slices, draining after every slice.
/// Returns the first fatal error (None if the stream decoded cleanly) and
/// runs every extracted frame through its typed payload decoder.
WireError pump(FrameDecoder& dec, const std::vector<u8>& wire, Rng& rng,
               std::size_t* frames_out = nullptr) {
  WireError fatal = WireError::None;
  std::size_t frames = 0;
  std::size_t at = 0;
  while (at < wire.size()) {
    const auto len =
        std::min<std::size_t>(static_cast<std::size_t>(rng.uniform_int(1, 97)),
                              wire.size() - at);
    dec.feed(std::span<const u8>(wire).subspan(at, len));
    at += len;
    FrameHeader h;
    std::vector<u8> p;
    WireError e = WireError::None;
    FrameDecoder::Next n;
    while ((n = dec.next(h, p, e)) == FrameDecoder::Next::Frame) {
      ++frames;
      // Typed decode of whatever came out: must not crash; Malformed is fine.
      HelloFrame hf;
      OpenFrame of;
      DrainFrame df;
      ResetFrame rf;
      StatsFrame sf;
      ErrorFrame ef;
      std::vector<stream::Event> evs;
      std::vector<i32> chunk;
      switch (h.type) {
        case FrameType::Hello: (void)decode_hello(p, hf); break;
        case FrameType::Open: (void)decode_open(p, of); break;
        case FrameType::Chunk: (void)decode_chunk(p, chunk); break;
        case FrameType::Drain: (void)decode_drain(p, df); break;
        case FrameType::Reset: (void)decode_reset(p, rf); break;
        case FrameType::Event: (void)decode_events(p, evs); break;
        case FrameType::Stats: (void)decode_stats(p, sf); break;
        case FrameType::Error: (void)decode_error(p, ef); break;
        default: break;
      }
    }
    if (n == FrameDecoder::Next::Error) {
      EXPECT_NE(e, WireError::None);
      fatal = e;
      break;
    }
  }
  if (frames_out != nullptr) *frames_out = frames;
  return fatal;
}

/// Once fatal, the decoder must stay fatal regardless of later input.
void expect_sticky_dead(FrameDecoder& dec, Rng& rng) {
  const std::vector<u8> more = valid_stream(rng.next_u64());
  dec.feed(more);
  FrameHeader h;
  std::vector<u8> p;
  WireError e = WireError::None;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(dec.next(h, p, e), FrameDecoder::Next::Error) << "decoder revived after fatal";
    EXPECT_NE(e, WireError::None);
  }
}

TEST(NetFuzz, BitFlippedStreamsNeverCrashAndFatalErrorsAreSticky) {
  std::size_t fatals = 0;
  for (u64 iter = 0; iter < 300; ++iter) {
    xbs::testing::FaultInjector inj(0xF1E1D000 + iter);
    std::vector<u8> wire = valid_stream(iter);
    const xbs::testing::Fault f = inj.flip_bit(wire);
    FrameDecoder dec;
    const WireError fatal = pump(dec, wire, inj.rng());
    if (fatal != WireError::None) {
      ++fatals;
      expect_sticky_dead(dec, inj.rng());
    }
    SCOPED_TRACE(f.describe());
  }
  // Header flips must be hitting the fatal path some of the time; payload
  // flips may legally decode, so not every iteration is fatal.
  EXPECT_GT(fatals, 0u);
}

TEST(NetFuzz, TruncatedAndTornStreamsNeverCrash) {
  for (u64 iter = 0; iter < 200; ++iter) {
    xbs::testing::FaultInjector inj(0xBADC0DE + iter);
    std::vector<u8> wire = valid_stream(iter);
    const std::vector<u8> stale = valid_stream(iter + 1000);
    if (iter % 2 == 0) {
      (void)inj.truncate(wire);
    } else {
      (void)inj.torn_write(wire, stale);
    }
    FrameDecoder dec;
    const WireError fatal = pump(dec, wire, inj.rng());
    if (fatal != WireError::None) expect_sticky_dead(dec, inj.rng());
    // A clean truncation mid-frame just leaves the decoder waiting for more
    // bytes — NeedMore forever is the correct, crash-free outcome.
  }
}

TEST(NetFuzz, HeaderMangledStreamsErrorOrResyncButNeverCrash) {
  std::size_t fatals = 0;
  for (u64 iter = 0; iter < 200; ++iter) {
    xbs::testing::FaultInjector inj(0x5EED + iter);
    std::vector<u8> wire = valid_stream(iter);
    // Mangle a byte inside the first frame header (12 bytes): magic, type,
    // flags, or length — the highest-leverage corruption for a framer.
    (void)inj.mangle_header(wire, 12);
    FrameDecoder dec;
    const WireError fatal = pump(dec, wire, inj.rng());
    if (fatal != WireError::None) {
      ++fatals;
      expect_sticky_dead(dec, inj.rng());
    }
  }
  // Nearly every header mangle is fatal (a length mangle that still parses
  // can shift framing instead); the fatal path must dominate.
  EXPECT_GT(fatals, 150u);
}

}  // namespace
}  // namespace xbs::net
