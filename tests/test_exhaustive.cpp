// Tests for the exhaustive/heuristic baseline explorers, the Pareto front
// and the exploration-time model.
#include <gtest/gtest.h>

#include <cmath>

#include "xbs/ecg/dataset.hpp"
#include "xbs/explore/exhaustive.hpp"
#include "xbs/explore/pareto.hpp"
#include "xbs/explore/timing.hpp"

namespace xbs::explore {
namespace {

using pantompkins::Stage;

TEST(Exhaustive, GridSizeIsProductOfLists) {
  std::vector<ecg::DigitizedRecord> recs = {ecg::nsrdb_like_digitized(0, 4000)};
  PreprocPsnrEvaluator eval(std::move(recs));
  const StageEnergyModel energy;
  StageSpace lpf{Stage::Lpf, {0, 8, 16}, 1.0};
  StageSpace hpf{Stage::Hpf, {0, 8}, 1.0};
  const auto grid = exhaustive_explore({lpf, hpf}, ModuleLists{}, eval, energy, 30.0);
  EXPECT_EQ(grid.evaluations, 6);  // 3 x 2 with singleton module lists
  EXPECT_EQ(grid.points.size(), 6u);
}

TEST(Exhaustive, ModuleListsMultiplyNonZeroPoints) {
  std::vector<ecg::DigitizedRecord> recs = {ecg::nsrdb_like_digitized(0, 4000)};
  PreprocPsnrEvaluator eval(std::move(recs));
  const StageEnergyModel energy;
  StageSpace lpf{Stage::Lpf, {0, 16}, 1.0};
  ModuleLists lists{{AdderKind::Approx5, AdderKind::Approx2}, {MultKind::V1}};
  const auto grid = exhaustive_explore({lpf}, lists, eval, energy, 30.0);
  // lsb=0 contributes 1 point; lsb=16 contributes 2 (adder kinds) x 1.
  EXPECT_EQ(grid.evaluations, 3);
}

TEST(Exhaustive, BestMaximizesEnergyAmongSatisfying) {
  std::vector<ecg::DigitizedRecord> recs = {ecg::nsrdb_like_digitized(0, 4000)};
  PreprocPsnrEvaluator eval(std::move(recs));
  const StageEnergyModel energy;
  StageSpace lpf{Stage::Lpf, default_lsb_list(Stage::Lpf), 1.0};
  const auto grid = exhaustive_explore({lpf}, ModuleLists{}, eval, energy, 30.0);
  const GridPoint* best = grid.best();
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->satisfied);
  for (const auto& p : grid.points) {
    if (p.satisfied) {
      EXPECT_LE(p.energy_reduction, best->energy_reduction + 1e-12);
    }
  }
}

TEST(Heuristic, GlobalModulePairGrid) {
  std::vector<ecg::DigitizedRecord> recs = {ecg::nsrdb_like_digitized(0, 4000)};
  PreprocPsnrEvaluator eval(std::move(recs));
  const StageEnergyModel energy;
  StageSpace lpf{Stage::Lpf, {0, 16}, 1.0};
  StageSpace hpf{Stage::Hpf, {0, 16}, 1.0};
  ModuleLists lists{{AdderKind::Approx5, AdderKind::Approx2}, {MultKind::V1}};
  const auto grid = heuristic_explore({lpf, hpf}, lists, eval, energy, 30.0);
  // 2 global module pairs x 2 x 2 LSB grid = 8 evaluations.
  EXPECT_EQ(grid.evaluations, 8);
}

TEST(Pareto, FrontExtractsNonDominated) {
  std::vector<GridPoint> pts(5);
  // (quality, energy): A(100, 2) B(99, 5) C(98, 4) D(95, 9) E(100, 1)
  pts[0].quality = 100;
  pts[0].energy_reduction = 2;
  pts[1].quality = 99;
  pts[1].energy_reduction = 5;
  pts[2].quality = 98;
  pts[2].energy_reduction = 4;  // dominated by B
  pts[3].quality = 95;
  pts[3].energy_reduction = 9;
  pts[4].quality = 100;
  pts[4].energy_reduction = 1;  // dominated by A
  const auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Pareto, EmptyAndSingle) {
  EXPECT_TRUE(pareto_front({}).empty());
  std::vector<GridPoint> one(1);
  one[0].quality = 50;
  one[0].energy_reduction = 3;
  EXPECT_EQ(pareto_front(one).size(), 1u);
}

TEST(TimeModel, PaperEvaluationUnit) {
  const ExplorationTimeModel t;
  // One 20k-sample evaluation ~ 300 s (paper §6.1): 81 evaluations ~ 6.75 h,
  // matching "an exhaustive exploration of 81 possible scenarios takes
  // roughly seven hours".
  EXPECT_NEAR(t.hours(81), 6.75, 0.01);
}

TEST(TimeModel, GrowthRates) {
  const ExplorationTimeModel t;
  EXPECT_DOUBLE_EQ(t.exhaustive_evaluations(1), 17.0 * 6 * 3);
  EXPECT_DOUBLE_EQ(t.exhaustive_evaluations(2), std::pow(17.0 * 6 * 3, 2));
  EXPECT_DOUBLE_EQ(t.heuristic_evaluations(1), 6.0 * 3 * 9);
  EXPECT_DOUBLE_EQ(t.heuristic_evaluations(3), 6.0 * 3 * 9 * 9 * 9);
  EXPECT_GT(t.years(t.exhaustive_evaluations(6)), 1e6);  // astronomically infeasible
}

}  // namespace
}  // namespace xbs::explore
