// End-to-end test of the XBioSiP methodology facade.
#include <gtest/gtest.h>

#include "xbs/core/methodology.hpp"
#include "xbs/ecg/dataset.hpp"

namespace xbs::core {
namespace {

using pantompkins::Stage;

TEST(Methodology, EndToEndSatisfiesBothConstraints) {
  MethodologyConfig cfg;
  cfg.constraints.preproc_psnr_db = 30.0;
  cfg.constraints.final_accuracy_pct = 99.0;
  cfg.run_resilience_analysis = false;  // keep the test fast; savings from energy model
  const std::vector<ecg::DigitizedRecord> records = {ecg::nsrdb_like_digitized(0, 6000)};
  const MethodologyResult result = run_methodology(cfg, records);

  EXPECT_GE(result.preproc_psnr_db, cfg.constraints.preproc_psnr_db);
  EXPECT_GE(result.final_accuracy_pct, cfg.constraints.final_accuracy_pct);
  EXPECT_GT(result.energy_reduction, 1.0);
  EXPECT_FALSE(result.final_design.empty());
  EXPECT_GT(result.total_evaluations, 5);
}

TEST(Methodology, ApproximatesBothSections) {
  MethodologyConfig cfg;
  cfg.run_resilience_analysis = false;
  const std::vector<ecg::DigitizedRecord> records = {ecg::nsrdb_like_digitized(1, 6000)};
  const MethodologyResult result = run_methodology(cfg, records);
  // Pre-processing design touches LPF/HPF only; signal processing the rest.
  for (const auto& sd : result.preproc.best) {
    EXPECT_TRUE(sd.stage == Stage::Lpf || sd.stage == Stage::Hpf);
  }
  for (const auto& sd : result.sigproc.best) {
    EXPECT_TRUE(sd.stage == Stage::Der || sd.stage == Stage::Sqr || sd.stage == Stage::Mwi);
  }
  // At least one section found real approximations.
  EXPECT_FALSE(result.preproc.best.empty() && result.sigproc.best.empty());
}

TEST(Methodology, ResilienceAnalysisProfilesAllStages) {
  const std::vector<ecg::DigitizedRecord> records = {ecg::nsrdb_like_digitized(2, 5000)};
  const explore::StageEnergyModel energy;
  const auto profiles = analyze_all_stages(records, energy);
  ASSERT_EQ(profiles.size(), 5u);
  for (const auto& p : profiles) {
    EXPECT_FALSE(p.points.empty());
    // First point (k = 0) must be lossless.
    EXPECT_DOUBLE_EQ(p.points.front().accuracy_pct, 100.0);
    EXPECT_NEAR(p.points.front().stage_ssim, 1.0, 1e-9);
    // Paper's headline: every stage tolerates a non-trivial number of LSBs.
    EXPECT_GE(p.threshold_lsbs, 2) << to_string(p.stage);
  }
}

TEST(Methodology, LpfResilienceThresholdMatchesPaper) {
  // Paper §2: "The error resilience threshold for this stage is 14 LSBs".
  const std::vector<ecg::DigitizedRecord> records = {ecg::nsrdb_like_digitized(0, 10000),
                                                     ecg::nsrdb_like_digitized(3, 10000)};
  const explore::StageEnergyModel energy;
  const auto prof = analyze_stage_resilience(pantompkins::Stage::Lpf, records,
                                             explore::default_lsb_list(pantompkins::Stage::Lpf),
                                             energy);
  EXPECT_GE(prof.threshold_lsbs, 12);
}

}  // namespace
}  // namespace xbs::core
