// Tests for the table/CSV rendering helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "xbs/report/table.hpp"

namespace xbs::report {
namespace {

TEST(Table, AlignsColumns) {
  AsciiTable t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Every data line has the separator at a consistent position.
  EXPECT_NE(s.find("alpha | 1"), std::string::npos);
}

TEST(Table, TitlePrinted) {
  AsciiTable t({"A"});
  t.set_title("My Table");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("My Table", 0), 0u);
}

TEST(Table, CsvOutput) {
  AsciiTable t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);  // must not throw
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
}

TEST(Fmt, Factors) {
  EXPECT_EQ(fmt_factor(19.7, 1), "19.7x");
  EXPECT_EQ(fmt_factor(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Fmt, SciAndPct) {
  EXPECT_EQ(fmt_sci(1234.5, 2), "1.23e+03");
  EXPECT_EQ(fmt_pct(99.123, 1), "99.1%");
}

}  // namespace
}  // namespace xbs::report
