// Ring-buffer helper edge cases: degenerate widths (w == 0 must be a no-op,
// not a division by zero; w == 1 retains exactly the newest sample and no
// history), plus the streaming-equivalence contract on a normal width.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "xbs/common/ring.hpp"
#include "xbs/common/types.hpp"

namespace xbs {
namespace {

TEST(Ring, ZeroWidthCarryIsANoOp) {
  std::vector<i32> ring;  // w == 0: a degenerate taps/window config
  std::size_t head = 0;
  const std::vector<i32> x = {1, 2, 3};
  ring_carry(ring, head, std::span<const i32>(x));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(head, 0u);

  ring_carry(ring, head, std::span<const i32>());  // empty chunk too
  EXPECT_EQ(head, 0u);
}

TEST(Ring, ZeroWidthHistoryPrefixWritesNothing) {
  const std::vector<i32> ring;
  std::vector<i32> dst = {7, 7, 7};
  ring_history_prefix(ring, 0, dst);
  EXPECT_EQ(dst, (std::vector<i32>{7, 7, 7}));
}

TEST(Ring, WidthOneKeepsOnlyTheNewestSample) {
  std::vector<i32> ring = {0};
  std::size_t head = 0;
  const std::vector<i32> x = {4, 5, 6};
  ring_carry(ring, head, std::span<const i32>(x));
  EXPECT_EQ(ring[0], 6);
  EXPECT_EQ(head, 0u);

  // One sample at a time lands in the same state.
  std::vector<i32> ring2 = {0};
  std::size_t head2 = 0;
  for (const i32 v : x) {
    ring_carry(ring2, head2, std::span<const i32>(&v, 1));
  }
  EXPECT_EQ(ring2, ring);
  EXPECT_EQ(head2, head);

  // A width-1 ring has zero history samples: the prefix is empty.
  std::vector<i32> dst = {9};
  ring_history_prefix(ring, head, dst);
  EXPECT_EQ(dst[0], 9);
}

TEST(Ring, CarryMatchesSampleAtATimeStreaming) {
  // Chunked carry must retain the same samples as streaming them one at a
  // time (the contract the resumable stages rely on). The physical layout
  // may differ (a full-chunk carry rebases head to 0), so compare the
  // logical oldest-first content — what ring_history_prefix actually reads.
  const auto logical = [](const std::vector<i32>& ring, std::size_t head) {
    std::vector<i32> out;
    for (std::size_t i = 0; i < ring.size(); ++i) out.push_back(ring[(head + i) % ring.size()]);
    return out;
  };
  const std::vector<i32> x = {10, 20, 30, 40, 50, 60, 70};
  for (std::size_t w = 2; w <= 9; ++w) {
    std::vector<i32> chunked(w, 0), streamed(w, 0);
    std::size_t head_c = 0, head_s = 0;
    ring_carry(chunked, head_c, std::span<const i32>(x).subspan(0, 3));
    ring_carry(chunked, head_c, std::span<const i32>(x).subspan(3));
    for (const i32 v : x) ring_carry(streamed, head_s, std::span<const i32>(&v, 1));
    EXPECT_EQ(logical(chunked, head_c), logical(streamed, head_s)) << "w=" << w;
  }
}

TEST(BufferRing, RecyclesLifoUpToCapacity) {
  BufferRing<std::vector<i32>> ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.empty());

  std::vector<i32> buf;
  EXPECT_FALSE(ring.take(buf));  // empty: caller allocates

  EXPECT_TRUE(ring.put(std::vector<i32>{1}));
  EXPECT_TRUE(ring.put(std::vector<i32>{2, 2}));
  EXPECT_FALSE(ring.put(std::vector<i32>{3, 3, 3}));  // at capacity: drop
  EXPECT_EQ(ring.size(), 2u);

  // LIFO: the most recently recycled (hottest) buffer comes back first.
  EXPECT_TRUE(ring.take(buf));
  EXPECT_EQ(buf, (std::vector<i32>{2, 2}));
  EXPECT_TRUE(ring.take(buf));
  EXPECT_EQ(buf, (std::vector<i32>{1}));
  EXPECT_FALSE(ring.take(buf));
}

TEST(BufferRing, ShrinkingCapacityReleasesTheExcess) {
  BufferRing<std::vector<i32>> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.put(std::vector<i32>(8, i)));
  ring.set_capacity(1);
  EXPECT_EQ(ring.size(), 1u);
  std::vector<i32> buf;
  EXPECT_TRUE(ring.take(buf));
  EXPECT_EQ(buf, std::vector<i32>(8, 0));  // the survivors are the oldest
  EXPECT_FALSE(ring.take(buf));

  // A zero-capacity ring recycles nothing (every put is a drop).
  ring.set_capacity(0);
  EXPECT_FALSE(ring.put(std::vector<i32>{1}));
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace xbs
