// Tests for the recursive approximate multiplier (paper Fig. 7).
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "xbs/arith/multiplier.hpp"
#include "xbs/common/rng.hpp"

namespace xbs::arith {
namespace {

TEST(Multiplier, AccurateExhaustive4x4) {
  const RecursiveMultiplier m(MultiplierConfig{4, 0});
  for (u64 a = 0; a < 16; ++a)
    for (u64 b = 0; b < 16; ++b) EXPECT_EQ(m.multiply_u(a, b), a * b);
}

TEST(Multiplier, AccurateExhaustive8x8) {
  const RecursiveMultiplier m(MultiplierConfig{8, 0});
  for (u64 a = 0; a < 256; ++a)
    for (u64 b = 0; b < 256; ++b) EXPECT_EQ(m.multiply_u(a, b), a * b);
}

TEST(Multiplier, AccurateRandom16x16) {
  const RecursiveMultiplier m(MultiplierConfig{16, 0});
  Rng rng(5);
  for (int t = 0; t < 2000; ++t) {
    const u64 a = rng.next_u64() & 0xFFFF;
    const u64 b = rng.next_u64() & 0xFFFF;
    EXPECT_EQ(m.multiply_u(a, b), a * b);
  }
}

TEST(Multiplier, SignedMultiplyViaSignMagnitude) {
  const RecursiveMultiplier m(MultiplierConfig{16, 0});
  EXPECT_EQ(m.multiply_signed(-3, 7), -21);
  EXPECT_EQ(m.multiply_signed(-3, -7), 21);
  EXPECT_EQ(m.multiply_signed(3, -7), -21);
  EXPECT_EQ(m.multiply_signed(0, -7), 0);
  EXPECT_EQ(m.multiply_signed(-32768, 2), -65536);
  EXPECT_EQ(m.multiply_signed(32767, 32767), i64{32767} * 32767);
}

TEST(Multiplier, InvalidWidthThrows) {
  EXPECT_THROW(RecursiveMultiplier(MultiplierConfig{3, 0}), std::invalid_argument);
  EXPECT_THROW(RecursiveMultiplier(MultiplierConfig{64, 0}), std::invalid_argument);
  EXPECT_THROW(RecursiveMultiplier(MultiplierConfig{16, 40}), std::invalid_argument);
}

TEST(Multiplier, CacheReturnsSharedInstance) {
  const MultiplierConfig cfg{16, 6, AdderKind::Approx5, MultKind::V1, ApproxPolicy::Moderate};
  const auto a = get_multiplier(cfg);
  const auto b = get_multiplier(cfg);
  EXPECT_EQ(a.get(), b.get());
  MultiplierConfig other = cfg;
  other.approx_lsbs = 8;
  EXPECT_NE(get_multiplier(other).get(), a.get());
}

/// Approximation error must be confined to (roughly) the approximated LSB
/// region: with k approximated output LSBs the error magnitude is bounded by
/// a small multiple of 2^k (carry displacement can nudge one bit above).
class MultErrorBound
    : public ::testing::TestWithParam<std::tuple<AdderKind, MultKind, ApproxPolicy, int>> {};

TEST_P(MultErrorBound, ErrorConfinedToApproxRegion) {
  const auto [add_kind, mult_kind, policy, k] = GetParam();
  const RecursiveMultiplier m(MultiplierConfig{16, k, add_kind, mult_kind, policy});
  Rng rng(7000 + static_cast<u64>(k));
  i64 max_err = 0;
  for (int t = 0; t < 800; ++t) {
    const u64 a = rng.next_u64() & 0xFFFF;
    const u64 b = rng.next_u64() & 0xFFFF;
    const i64 err = std::llabs(static_cast<i64>(m.multiply_u(a, b)) - static_cast<i64>(a * b));
    max_err = std::max(max_err, err);
  }
  // Error bound: displaced carries/sums below bit k can accumulate across the
  // three combine levels; 16 * 2^k is a conservative envelope, and exactness
  // is required at k == 0.
  const i64 bound = (k == 0) ? 0 : (i64{16} << k);
  EXPECT_LE(max_err, bound) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultErrorBound,
    ::testing::Combine(::testing::Values(AdderKind::Approx2, AdderKind::Approx5),
                       ::testing::Values(MultKind::V1, MultKind::V2),
                       ::testing::Values(ApproxPolicy::Conservative, ApproxPolicy::Moderate,
                                         ApproxPolicy::Aggressive),
                       ::testing::Values(0, 2, 4, 8, 12, 16)));

/// Policy ordering: a more aggressive policy approximates a superset of the
/// elementary modules, so its mean error can only grow.
TEST(MultiplierPolicy, MeanErrorOrderedByPolicy) {
  const int k = 8;
  double mean_err[3] = {0, 0, 0};
  const ApproxPolicy policies[3] = {ApproxPolicy::Conservative, ApproxPolicy::Moderate,
                                    ApproxPolicy::Aggressive};
  for (int p = 0; p < 3; ++p) {
    const RecursiveMultiplier m(
        MultiplierConfig{16, k, AdderKind::Approx5, MultKind::V1, policies[p]});
    Rng rng(99);
    for (int t = 0; t < 2000; ++t) {
      const u64 a = rng.next_u64() & 0xFFFF;
      const u64 b = rng.next_u64() & 0xFFFF;
      mean_err[p] += static_cast<double>(
          std::llabs(static_cast<i64>(m.multiply_u(a, b)) - static_cast<i64>(a * b)));
    }
    mean_err[p] /= 2000.0;
  }
  EXPECT_LE(mean_err[0], mean_err[1] + 1e-9);
  EXPECT_LE(mean_err[1], mean_err[2] + 1e-9);
}

TEST(Multiplier, FullyApproximateStillBounded) {
  // k = 32 (whole product approximated): result must stay within 32 bits.
  const RecursiveMultiplier m(
      MultiplierConfig{16, 32, AdderKind::Approx5, MultKind::V2, ApproxPolicy::Aggressive});
  Rng rng(123);
  for (int t = 0; t < 200; ++t) {
    const u64 a = rng.next_u64() & 0xFFFF;
    const u64 b = rng.next_u64() & 0xFFFF;
    EXPECT_LT(m.multiply_u(a, b), u64{1} << 32);
  }
}

}  // namespace
}  // namespace xbs::arith
