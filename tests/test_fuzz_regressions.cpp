/// \file test_fuzz_regressions.cpp
/// \brief Replay every committed fuzz corpus + regression input through the
/// real harness code in the normal build matrix.
///
/// This is the contract that makes fuzz findings permanent: a crash found by
/// a fuzzer is minimized and committed under fuzz/regressions/<target>/, and
/// from then on every CI leg — Release, Debug, ASan+UBSan, TSan — replays it
/// here as an ordinary gtest. The harness TUs themselves are compiled into
/// this binary (fuzz/ is in the include path; no libFuzzer involved), so the
/// replayed logic is byte-for-byte what the fuzzers run.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hpp"

namespace {

using namespace xbs;

std::vector<u8> slurp(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  EXPECT_TRUE(is) << p;
  return std::vector<u8>(std::istreambuf_iterator<char>(is),
                         std::istreambuf_iterator<char>());
}

std::vector<std::filesystem::path> files_under(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  for (const auto& e : std::filesystem::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

constexpr const char* kExpectedTargets[] = {"frame_decoder", "store_reader", "wfdb", "csv",
                                            "session_drive"};

}  // namespace

TEST(FuzzRegressions, AllFiveTargetsAreRegistered) {
  std::size_t n = 0;
  const fuzz::Target* t = fuzz::targets(&n);
  ASSERT_EQ(n, std::size(kExpectedTargets));
  for (const char* want : kExpectedTargets) {
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) found |= std::string(t[i].name) == want;
    EXPECT_TRUE(found) << "target not linked in: " << want;
  }
}

TEST(FuzzRegressions, ReplaysEveryCommittedInput) {
  const std::filesystem::path root(XBS_FUZZ_DIR);
  std::size_t n = 0;
  const fuzz::Target* targets = fuzz::targets(&n);
  ASSERT_GT(n, 0u);

  std::size_t replayed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const char* kind : {"corpus", "regressions"}) {
      const std::filesystem::path dir = root / kind / targets[i].name;
      // Every harness ships seeds AND regression inputs; a missing directory
      // means the committed set silently rotted.
      ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
      const auto files = files_under(dir);
      ASSERT_FALSE(files.empty()) << dir;
      for (const auto& f : files) {
        SCOPED_TRACE(f.string());
        const std::vector<u8> bytes = slurp(f);
        EXPECT_EQ(targets[i].fn(bytes.data(), bytes.size()), 0);
        ++replayed;
      }
    }
  }
  // A sanity floor so a glob mishap (empty dirs, bad path) cannot quietly
  // turn this suite into a no-op.
  EXPECT_GE(replayed, 25u);
}
