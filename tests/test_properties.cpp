// Cross-cutting property suites:
//  - every Fig. 12 B-configuration clears the paper's 95 % quality threshold
//    (parameterized over the whole table);
//  - the synthesis optimizer preserves netlist function on randomly
//    generated module DAGs (fuzz), not just on structured designs.
#include <gtest/gtest.h>

#include "xbs/common/rng.hpp"
#include "xbs/core/paper_configs.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/metrics/peaks.hpp"
#include "xbs/netlist/netlist.hpp"
#include "xbs/netlist/optimizer.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs {
namespace {

// ---------------------------------------------------------------- Fig. 12 --

class BConfigQuality : public ::testing::TestWithParam<core::NamedConfig> {};

TEST_P(BConfigQuality, ClearsThe95PercentThreshold) {
  const core::NamedConfig cfg = GetParam();
  const pantompkins::PanTompkinsPipeline pipe(pantompkins::PipelineConfig::from_lsbs(cfg.lsbs));
  int fn = 0, fp = 0, truth = 0;
  for (int i = 0; i < 2; ++i) {
    const auto rec = ecg::nsrdb_like_digitized(i, 8000);
    const auto res = pipe.run(rec.adu);
    const auto m = metrics::match_peaks(rec.r_peaks, res.detection.peaks, 30);
    fn += m.false_negatives;
    fp += m.false_positives;
    truth += m.truth_count();
  }
  ASSERT_GT(truth, 0);
  const double acc = 100.0 * std::max(0.0, 1.0 - static_cast<double>(fn + fp) / truth);
  EXPECT_GE(acc, 95.0) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(AllBConfigs, BConfigQuality,
                         ::testing::ValuesIn(core::fig12_b_configs()),
                         [](const ::testing::TestParamInfo<core::NamedConfig>& info) {
                           return std::string(info.param.name);
                         });

// ------------------------------------------------------------ netlist fuzz --

/// Build a random DAG of FA / MUL2 / NOT modules over a few primary inputs
/// and constants; outputs sample random internal nets.
netlist::Netlist random_netlist(Rng& rng, int n_modules) {
  netlist::Netlist nl;
  std::vector<netlist::NetId> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(nl.new_input());
  pool.push_back(netlist::kConst0);
  pool.push_back(netlist::kConst1);
  auto pick = [&]() { return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<i64>(pool.size()) - 1))]; };
  for (int i = 0; i < n_modules; ++i) {
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        const auto kind = kAllAdderKinds[static_cast<std::size_t>(rng.uniform_int(0, 5))];
        const auto pins = nl.emit_fa(kind, pick(), pick(), pick(), 0);
        pool.push_back(pins.sum);
        pool.push_back(pins.cout);
        break;
      }
      case 1: {
        const auto kind = kAllMultKinds[static_cast<std::size_t>(rng.uniform_int(0, 2))];
        const auto outs = nl.emit_mult2(kind, pick(), pick(), pick(), pick(), 0);
        for (const auto o : outs) pool.push_back(o);
        break;
      }
      default:
        pool.push_back(nl.emit_not(pick()));
        break;
    }
  }
  for (int i = 0; i < 8; ++i) nl.mark_output(pick());
  return nl;
}

class OptimizerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFuzz, OptimizePreservesFunctionOnRandomDags) {
  Rng rng(1000 + static_cast<u64>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    const int n_modules = static_cast<int>(rng.uniform_int(5, 60));
    Rng build_rng(rng.next_u64());
    Rng build_rng_copy = build_rng;
    netlist::Netlist raw = random_netlist(build_rng, n_modules);
    netlist::Netlist opt = random_netlist(build_rng_copy, n_modules);
    const auto stats = netlist::optimize(opt);
    (void)stats;
    for (int vec = 0; vec < 32; ++vec) {
      std::vector<bool> inputs;
      for (std::size_t i = 0; i < raw.inputs().size(); ++i) {
        inputs.push_back((rng.next_u64() & 1) != 0);
      }
      EXPECT_EQ(opt.simulate(inputs), raw.simulate(inputs))
          << "trial " << trial << " vec " << vec << " modules " << n_modules;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace xbs
