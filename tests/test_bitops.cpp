// Unit tests for the bit-manipulation helpers underlying the bit-accurate
// arithmetic simulators.
#include <gtest/gtest.h>

#include "xbs/common/bitops.hpp"
#include "xbs/common/rng.hpp"

namespace xbs {
namespace {

TEST(Bitops, BitOfExtractsBits) {
  EXPECT_TRUE(bit_of(0b1010, 1));
  EXPECT_FALSE(bit_of(0b1010, 0));
  EXPECT_TRUE(bit_of(0b1010, 3));
  EXPECT_TRUE(bit_of(u64{1} << 63, 63));
  EXPECT_FALSE(bit_of(0, 17));
}

TEST(Bitops, WithBitSetsAndClears) {
  EXPECT_EQ(with_bit(0, 3, true), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, false), 0b1011u);
  EXPECT_EQ(with_bit(0b1011, 2, true), 0b1111u);
  EXPECT_EQ(with_bit(0, 63, true), u64{1} << 63);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(32), 0xFFFFFFFFu);
  EXPECT_EQ(low_mask(64), ~u64{0});
}

TEST(Bitops, SignExtendPositive) {
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x0001, 16), 1);
  EXPECT_EQ(sign_extend(0, 16), 0);
}

TEST(Bitops, SignExtendNegative) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
}

TEST(Bitops, SignExtendIgnoresHighGarbage) {
  // Bits above `bits` must not affect the result.
  EXPECT_EQ(sign_extend(0xABCD00FF, 8), -1);
  EXPECT_EQ(sign_extend(0xABCD007F, 8), 127);
}

TEST(Bitops, ToUnsignedBitsWrapsTwosComplement) {
  EXPECT_EQ(to_unsigned_bits(-1, 8), 0xFFu);
  EXPECT_EQ(to_unsigned_bits(-128, 8), 0x80u);
  EXPECT_EQ(to_unsigned_bits(255, 8), 0xFFu);
  EXPECT_EQ(to_unsigned_bits(256, 8), 0u);
}

class BitopsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitopsRoundTrip, SignExtendInvertsToUnsignedBits) {
  const int bits = GetParam();
  Rng rng(42 + static_cast<u64>(bits));
  const i64 lo = -(i64{1} << (bits - 1));
  const i64 hi = (i64{1} << (bits - 1)) - 1;
  for (int trial = 0; trial < 200; ++trial) {
    const i64 v = rng.uniform_int(lo, hi);
    EXPECT_EQ(sign_extend(to_unsigned_bits(v, bits), bits), v) << "bits=" << bits << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitopsRoundTrip, ::testing::Values(2, 4, 8, 15, 16, 31, 32, 48, 63));

}  // namespace
}  // namespace xbs
