// Tests for the software-execution energy model's per-op attribution over
// batched OpCounts.
#include <gtest/gtest.h>

#include "xbs/ecg/dataset.hpp"
#include "xbs/hwmodel/software_energy.hpp"
#include "xbs/pantompkins/pipeline.hpp"

namespace xbs::hwmodel {
namespace {

TEST(SoftwareEnergy, DefaultsCalibratedToAggregate) {
  // Per-op attribution of the accurate pipeline's operation mix plus the
  // overhead term must reproduce the published per-sample aggregate exactly.
  const SoftwareEnergyModel m;
  const arith::OpCounts per_sample = accurate_pipeline_ops_per_sample();
  EXPECT_EQ(per_sample.adds, 73u);
  EXPECT_EQ(per_sample.mults, 48u);
  EXPECT_NEAR(m.ops_time_s(per_sample) + m.overhead_per_sample_s, m.time_per_sample_s,
              1e-12);
}

TEST(SoftwareEnergy, RecordAttributionMatchesPipelineCounts) {
  // Feeding the pipeline's actual batched OpCounts into the model must agree
  // with the closed-form per-sample mix: the block transforms count exactly
  // the same operations the scalar datapath would.
  const auto rec = ecg::nsrdb_like_digitized(0, 2000);
  const pantompkins::PanTompkinsPipeline pipe;
  const auto res = pipe.run_filters(rec.adu);

  const SoftwareEnergyModel m;
  const u64 n = rec.adu.size();
  const arith::OpCounts mix = accurate_pipeline_ops_per_sample();
  const double expected_time =
      static_cast<double>(n) *
      (m.ops_time_s(mix) + m.overhead_per_sample_s);
  EXPECT_NEAR(m.record_time_s(res.ops, n), expected_time, 1e-9);
  EXPECT_NEAR(m.record_energy_j(res.ops, n), m.active_power_w * expected_time, 1e-9);
  EXPECT_NEAR(m.record_energy_per_sample_fj(res.ops, n), m.energy_per_sample_fj(),
              1e-3);
}

TEST(SoftwareEnergy, EnergyScalesWithOps) {
  const SoftwareEnergyModel m;
  const arith::OpCounts small{10, 5};
  const arith::OpCounts big{20, 10};
  EXPECT_GT(m.ops_energy_j(big), m.ops_energy_j(small));
  EXPECT_NEAR(m.ops_energy_j(big), 2.0 * m.ops_energy_j(small), 1e-15);
  EXPECT_EQ(m.ops_energy_j(arith::OpCounts{}), 0.0);
}

TEST(SoftwareEnergy, ZeroSamplesIsZeroEnergy) {
  const SoftwareEnergyModel m;
  EXPECT_EQ(m.record_energy_per_sample_fj({}, 0), 0.0);
  EXPECT_EQ(m.record_time_s({}, 0), 0.0);
}

TEST(SoftwareEnergy, AggregateViewUnchanged) {
  // The Fig. 12 A1 aggregate view (what the figure benches consume).
  const SoftwareEnergyModel m;
  EXPECT_NEAR(m.energy_per_sample_j(), 2.1 * 5e-6, 1e-15);
  EXPECT_NEAR(m.energy_per_sample_fj(), 2.1 * 5e-6 * 1e15, 1e-3);
}

}  // namespace
}  // namespace xbs::hwmodel
