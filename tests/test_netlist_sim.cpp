// Cross-validation of the netlist simulator against the fast behavioural
// models — the software analogue of the paper's ModelSim <-> MATLAB
// cross-validation loop (Fig. 9). Every (kind, k) configuration must agree
// bit-for-bit.
#include <gtest/gtest.h>

#include <tuple>

#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/netlist/builders.hpp"
#include "xbs/netlist/optimizer.hpp"

namespace xbs {
namespace {

using arith::AdderConfig;
using arith::MultiplierConfig;
using arith::RecursiveMultiplier;
using arith::RippleCarryAdder;

u64 simulate_rca(const AdderConfig& cfg, u64 a, u64 b) {
  netlist::Netlist nl;
  const auto abus = nl.new_input_bus(cfg.width);
  const auto bbus = nl.new_input_bus(cfg.width);
  const auto out = netlist::build_rca(nl, cfg, abus, bbus);
  for (const auto n : out.sum) nl.mark_output(n);
  nl.mark_output(out.carry_out);
  const u64 words[2] = {a, b};
  const int widths[2] = {cfg.width, cfg.width};
  return nl.simulate_word(words, widths);  // sum | cout << width
}

u64 simulate_mult(const MultiplierConfig& cfg, u64 a, u64 b, bool optimize_first) {
  netlist::Netlist nl;
  const auto abus = nl.new_input_bus(cfg.width);
  const auto bbus = nl.new_input_bus(cfg.width);
  const auto out = netlist::build_multiplier(nl, cfg, abus, bbus);
  for (const auto n : out) nl.mark_output(n);
  if (optimize_first) netlist::optimize(nl);
  const u64 words[2] = {a, b};
  const int widths[2] = {cfg.width, cfg.width};
  return nl.simulate_word(words, widths);
}

class RcaNetlistXval : public ::testing::TestWithParam<std::tuple<AdderKind, int>> {};

TEST_P(RcaNetlistXval, NetlistMatchesBehavioural) {
  const auto [kind, k] = GetParam();
  const AdderConfig cfg{16, k, kind, 0};
  const RippleCarryAdder behavioural(cfg);
  Rng rng(31 + static_cast<u64>(k));
  for (int t = 0; t < 150; ++t) {
    const u64 a = rng.next_u64() & 0xFFFF;
    const u64 b = rng.next_u64() & 0xFFFF;
    const auto want = behavioural.add_u(a, b);
    const u64 got = simulate_rca(cfg, a, b);
    EXPECT_EQ(got & 0xFFFF, want.sum) << "a=" << a << " b=" << b;
    EXPECT_EQ((got >> 16) & 1, want.carry_out ? 1u : 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLsbs, RcaNetlistXval,
    ::testing::Combine(::testing::ValuesIn(kAllAdderKinds), ::testing::Values(0, 3, 8, 16)));

class MultNetlistXval
    : public ::testing::TestWithParam<std::tuple<MultKind, ApproxPolicy, int>> {};

TEST_P(MultNetlistXval, NetlistMatchesBehavioural16x16) {
  const auto [mult_kind, policy, k] = GetParam();
  const MultiplierConfig cfg{16, k, AdderKind::Approx5, mult_kind, policy};
  const RecursiveMultiplier behavioural(cfg);
  Rng rng(77 + static_cast<u64>(k));
  for (int t = 0; t < 60; ++t) {
    const u64 a = rng.next_u64() & 0xFFFF;
    const u64 b = rng.next_u64() & 0xFFFF;
    EXPECT_EQ(simulate_mult(cfg, a, b, false), behavioural.multiply_u(a, b))
        << "a=" << a << " b=" << b << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultNetlistXval,
    ::testing::Combine(::testing::Values(MultKind::Accurate, MultKind::V1, MultKind::V2),
                       ::testing::Values(ApproxPolicy::Conservative, ApproxPolicy::Moderate,
                                         ApproxPolicy::Aggressive),
                       ::testing::Values(0, 4, 10, 16)));

TEST(MultNetlistXvalSmall, ExhaustiveWidth4AllKinds) {
  for (const AdderKind add : {AdderKind::Accurate, AdderKind::Approx5}) {
    for (const MultKind mult : kAllMultKinds) {
      for (const int k : {0, 2, 4}) {
        const MultiplierConfig cfg{4, k, add, mult, ApproxPolicy::Moderate};
        const RecursiveMultiplier behavioural(cfg);
        for (u64 a = 0; a < 16; ++a) {
          for (u64 b = 0; b < 16; ++b) {
            EXPECT_EQ(simulate_mult(cfg, a, b, false), behavioural.multiply_u(a, b))
                << "a=" << a << " b=" << b << " k=" << k;
          }
        }
      }
    }
  }
}

// The synthesis optimizer must never change a netlist's function.
class OptimizePreservesFunction
    : public ::testing::TestWithParam<std::tuple<AdderKind, MultKind, int>> {};

TEST_P(OptimizePreservesFunction, Multiplier16WithConstOperandB) {
  const auto [add_kind, mult_kind, k] = GetParam();
  const MultiplierConfig cfg{16, k, add_kind, mult_kind, ApproxPolicy::Moderate};
  // Constant coefficient operand (like the FIR stages) to trigger heavy
  // folding, then compare optimized vs unoptimized simulation.
  for (const u64 coeff : {u64{1}, u64{2}, u64{3}, u64{6}, u64{31}}) {
    netlist::Netlist nl;
    const auto abus = nl.new_input_bus(16);
    const auto bbus = nl.const_bus(coeff, 16);
    const auto out = netlist::build_multiplier(nl, cfg, abus, bbus);
    for (const auto n : out) nl.mark_output(n);

    netlist::Netlist opt;  // rebuild + optimize
    {
      const auto abus2 = opt.new_input_bus(16);
      const auto bbus2 = opt.const_bus(coeff, 16);
      const auto out2 = netlist::build_multiplier(opt, cfg, abus2, bbus2);
      for (const auto n : out2) opt.mark_output(n);
      netlist::optimize(opt);
    }
    Rng rng(5 + coeff);
    for (int t = 0; t < 40; ++t) {
      const u64 a = rng.next_u64() & 0xFFFF;
      const u64 words[1] = {a};
      const int widths[1] = {16};
      EXPECT_EQ(opt.simulate_word(words, widths), nl.simulate_word(words, widths))
          << "coeff=" << coeff << " a=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizePreservesFunction,
    ::testing::Combine(::testing::Values(AdderKind::Approx2, AdderKind::Approx5),
                       ::testing::Values(MultKind::Accurate, MultKind::V1),
                       ::testing::Values(0, 6, 12)));

}  // namespace
}  // namespace xbs
