// Tests for the 65 nm cost model (Table 1 data and block roll-ups) and the
// Fig. 1 sensor-node / Fig. 12-A1 software energy models.
#include <gtest/gtest.h>

#include <cmath>

#include "xbs/hwmodel/block_cost.hpp"
#include "xbs/hwmodel/cell_library.hpp"
#include "xbs/hwmodel/sensor_node.hpp"
#include "xbs/hwmodel/software_energy.hpp"

namespace xbs::hwmodel {
namespace {

TEST(CellLibrary, Table1AdderValues) {
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Accurate).area_um2, 10.08);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Accurate).delay_ns, 0.18);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Accurate).power_uw, 2.27);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Accurate).energy_fj, 0.409);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Approx1).energy_fj, 0.147);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Approx2).energy_fj, 0.049);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Approx3).energy_fj, 0.025);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Approx4).energy_fj, 0.020);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Approx5).energy_fj, 0.0);
  EXPECT_DOUBLE_EQ(cell_cost(AdderKind::Approx5).area_um2, 0.0);
}

TEST(CellLibrary, Table1MultiplierValues) {
  EXPECT_DOUBLE_EQ(cell_cost(MultKind::Accurate).energy_fj, 0.288);
  EXPECT_DOUBLE_EQ(cell_cost(MultKind::V1).energy_fj, 0.167);
  EXPECT_DOUBLE_EQ(cell_cost(MultKind::V2).energy_fj, 0.137);
  EXPECT_DOUBLE_EQ(cell_cost(MultKind::V2).area_um2, 9.72);
}

TEST(CellLibrary, EnergyOrderingMatchesPaperLists) {
  // Table 1 lists modules in descending energy order; the design generation
  // methodology depends on that ordering.
  double prev = 1e9;
  for (const AdderKind k : kAllAdderKinds) {
    EXPECT_LT(cell_cost(k).energy_fj, prev);
    prev = cell_cost(k).energy_fj;
  }
  prev = 1e9;
  for (const MultKind k : kAllMultKinds) {
    EXPECT_LT(cell_cost(k).energy_fj, prev);
    prev = cell_cost(k).energy_fj;
  }
}

TEST(BlockCost, AdderBlockSumsPerBitCosts) {
  const arith::AdderConfig acc{32, 0, AdderKind::Approx5, 0};
  EXPECT_NEAR(adder_block_cost(acc).energy_fj, 32 * 0.409, 1e-9);
  const arith::AdderConfig half{32, 16, AdderKind::Approx5, 0};
  EXPECT_NEAR(adder_block_cost(half).energy_fj, 16 * 0.409, 1e-9);
  const arith::AdderConfig off{32, 16, AdderKind::Approx5, 8};
  // Bits with absolute weight 8..15 are approximate: 8 approximate FAs.
  EXPECT_NEAR(adder_block_cost(off).energy_fj, 24 * 0.409, 1e-9);
}

TEST(BlockCost, MultBlockAccurateCount) {
  // 64 elementary modules + 672 FA slots, all accurate at k = 0.
  const arith::MultiplierConfig cfg{16, 0};
  EXPECT_NEAR(mult_block_cost(cfg).energy_fj, 64 * 0.288 + 672 * 0.409, 1e-6);
}

TEST(BlockCost, MultBlockMonotoneInK) {
  double prev = 1e18;
  for (const int k : {0, 4, 8, 12, 16, 20}) {
    const arith::MultiplierConfig cfg{16, k, AdderKind::Approx5, MultKind::V1,
                                      ApproxPolicy::Moderate};
    const double e = mult_block_cost(cfg).energy_fj;
    EXPECT_LT(e, prev) << k;
    prev = e;
  }
}

TEST(BlockCost, ReductionsRatioAndInfinity) {
  const Cost acc{100, 10, 50, 200};
  const Cost half{50, 5, 25, 100};
  const Reductions r = reductions(acc, half);
  EXPECT_DOUBLE_EQ(r.area, 2.0);
  EXPECT_DOUBLE_EQ(r.energy, 2.0);
  const Cost zero{0, 0, 0, 0};
  EXPECT_TRUE(std::isinf(reductions(acc, zero).energy));
  EXPECT_DOUBLE_EQ(reductions(zero, zero).energy, 1.0);
}

TEST(SensorNodes, Figure1Relationships) {
  const auto& nodes = standard_nodes();
  ASSERT_EQ(nodes.size(), 5u);
  for (const auto& n : nodes) {
    // Sensing at least six orders of magnitude below total (paper Fig. 1).
    EXPECT_GE(n.sensing_gap_orders(), 6.0) << n.name;
    // Processing 40-60 % of total ([18]).
    EXPECT_GE(n.processing_share, 0.40) << n.name;
    EXPECT_LE(n.processing_share, 0.60) << n.name;
    EXPECT_GT(n.communication_j_per_day(), 0.0) << n.name;
  }
  // EEG is the hungriest, temperature the lightest.
  EXPECT_GT(nodes[4].total_j_per_day, nodes[0].total_j_per_day);
  EXPECT_LT(nodes[2].total_j_per_day, nodes[0].total_j_per_day);
}

TEST(SensorNodes, LifetimeExtensionMath) {
  const SensorNodeSpec n{"test", 100.0, 1e-5, 0.5};
  // Halving processing energy: total 100 -> 75 => 1.333x lifetime.
  EXPECT_NEAR(n.total_after_processing_reduction(2.0), 75.0, 1e-9);
  EXPECT_NEAR(n.lifetime_extension(2.0), 100.0 / 75.0, 1e-9);
  // Infinite reduction caps at the non-processing share.
  EXPECT_NEAR(n.total_after_processing_reduction(1e12), 50.0, 1e-3);
}

TEST(SoftwareEnergy, SevenOrdersAboveAsic) {
  const SoftwareEnergyModel sw;
  // The accurate ASIC datapath costs ~1e3 fJ/sample (see energy model tests);
  // the software execution model must sit ~7 orders above (paper Fig. 12).
  const double ratio = sw.energy_per_sample_fj() / 1.1e3;
  EXPECT_GT(ratio, 1e6);
  EXPECT_LT(ratio, 1e9);
}

}  // namespace
}  // namespace xbs::hwmodel
