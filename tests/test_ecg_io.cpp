// Tests for CSV record persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "xbs/ecg/dataset.hpp"
#include "xbs/ecg/io.hpp"

namespace xbs::ecg {
namespace {

TEST(EcgIo, RoundTripPreservesEverything) {
  const DigitizedRecord rec = nsrdb_like_digitized(3, 3000);
  std::stringstream ss;
  write_csv(ss, rec);
  const DigitizedRecord back = read_csv(ss);
  EXPECT_EQ(back.name, rec.name);
  EXPECT_DOUBLE_EQ(back.fs_hz, rec.fs_hz);
  EXPECT_DOUBLE_EQ(back.gain_adu_per_mv, rec.gain_adu_per_mv);
  EXPECT_EQ(back.adu, rec.adu);
  EXPECT_EQ(back.r_peaks, rec.r_peaks);
}

TEST(EcgIo, HeaderFormat) {
  DigitizedRecord rec;
  rec.name = "r1";
  rec.fs_hz = 200.0;
  rec.gain_adu_per_mv = 18000.0;
  rec.adu = {1, -2, 3};
  rec.r_peaks = {1};
  std::stringstream ss;
  write_csv(ss, rec);
  const std::string s = ss.str();
  EXPECT_NE(s.find("# name,r1"), std::string::npos);
  EXPECT_NE(s.find("index,adu,is_r_peak"), std::string::npos);
  EXPECT_NE(s.find("1,-2,1"), std::string::npos);
}

TEST(EcgIo, MalformedInputThrows) {
  std::stringstream empty("");
  EXPECT_THROW((void)read_csv(empty), std::runtime_error);

  std::stringstream bad_row("index,adu,is_r_peak\n0,1\n");
  EXPECT_THROW((void)read_csv(bad_row), std::runtime_error);

  std::stringstream skipped_index("index,adu,is_r_peak\n0,1,0\n2,1,0\n");
  EXPECT_THROW((void)read_csv(skipped_index), std::runtime_error);
}

TEST(EcgIo, FileRoundTrip) {
  const DigitizedRecord rec = nsrdb_like_digitized(0, 500);
  const std::string path = "/tmp/xbs_io_test.csv";
  save_csv(path, rec);
  const DigitizedRecord back = load_csv(path);
  EXPECT_EQ(back.adu, rec.adu);
  EXPECT_THROW((void)load_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace xbs::ecg
