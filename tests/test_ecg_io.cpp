// Tests for CSV record persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "xbs/ecg/dataset.hpp"
#include "xbs/ecg/io.hpp"

namespace xbs::ecg {
namespace {

TEST(EcgIo, RoundTripPreservesEverything) {
  const DigitizedRecord rec = nsrdb_like_digitized(3, 3000);
  std::stringstream ss;
  write_csv(ss, rec);
  const DigitizedRecord back = read_csv(ss);
  EXPECT_EQ(back.name, rec.name);
  EXPECT_DOUBLE_EQ(back.fs_hz, rec.fs_hz);
  EXPECT_DOUBLE_EQ(back.gain_adu_per_mv, rec.gain_adu_per_mv);
  EXPECT_EQ(back.adu, rec.adu);
  EXPECT_EQ(back.r_peaks, rec.r_peaks);
}

TEST(EcgIo, HeaderFormat) {
  DigitizedRecord rec;
  rec.name = "r1";
  rec.fs_hz = 200.0;
  rec.gain_adu_per_mv = 18000.0;
  rec.adu = {1, -2, 3};
  rec.r_peaks = {1};
  std::stringstream ss;
  write_csv(ss, rec);
  const std::string s = ss.str();
  EXPECT_NE(s.find("# name,r1"), std::string::npos);
  EXPECT_NE(s.find("index,adu,is_r_peak"), std::string::npos);
  EXPECT_NE(s.find("1,-2,1"), std::string::npos);
}

TEST(EcgIo, MalformedInputThrows) {
  std::stringstream empty("");
  EXPECT_THROW((void)read_csv(empty), std::runtime_error);

  std::stringstream bad_row("index,adu,is_r_peak\n0,1\n");
  EXPECT_THROW((void)read_csv(bad_row), std::runtime_error);

  std::stringstream skipped_index("index,adu,is_r_peak\n0,1,0\n2,1,0\n");
  EXPECT_THROW((void)read_csv(skipped_index), std::runtime_error);
}

TEST(EcgIo, MalformedInputMatrix) {
  // Every corrupt record must surface as std::runtime_error — never a silent
  // zero-fill, a std::invalid_argument/out_of_range leak from the numeric
  // parsers, or a crash.
  const char* const kTitle = "index,adu,is_r_peak\n";
  const struct {
    const char* what;
    std::string text;
  } cases[] = {
      {"truncated header marker", "#\n" + std::string(kTitle) + "0,1,0\n"},
      {"header missing space", "#name,r1\n" + std::string(kTitle) + "0,1,0\n"},
      {"header without value", "# fs_hz\n" + std::string(kTitle) + "0,1,0\n"},
      {"non-numeric fs_hz", "# fs_hz,fast\n" + std::string(kTitle) + "0,1,0\n"},
      {"fs_hz trailing garbage", "# fs_hz,200Hz\n" + std::string(kTitle) + "0,1,0\n"},
      {"non-positive fs_hz", "# fs_hz,0\n" + std::string(kTitle) + "0,1,0\n"},
      {"non-numeric gain", "# gain_adu_per_mv,x\n" + std::string(kTitle) + "0,1,0\n"},
      {"truncated column titles", "index,adu\n0,1,0\n"},
      {"data row before titles", "0,1,0\n"},
      {"non-numeric index", std::string(kTitle) + "zero,1,0\n"},
      {"negative index", std::string(kTitle) + "-1,1,0\n"},
      {"non-numeric adu", std::string(kTitle) + "0,abc,0\n"},
      {"adu trailing garbage", std::string(kTitle) + "0,12abc,0\n"},
      {"empty adu field", std::string(kTitle) + "0,,0\n"},
      {"adu above i32 range", std::string(kTitle) + "0,2147483648,0\n"},
      {"adu below i32 range", std::string(kTitle) + "0,-2147483649,0\n"},
      {"adu out of i64 range", std::string(kTitle) + "0,99999999999999999999,0\n"},
      {"non-numeric peak flag", std::string(kTitle) + "0,1,yes\n"},
      {"extra column", std::string(kTitle) + "0,1,0,7\n"},
  };
  for (const auto& c : cases) {
    std::stringstream ss(c.text);
    EXPECT_THROW((void)read_csv(ss), std::runtime_error) << c.what;
  }

  // The i32 boundary values themselves are valid samples.
  std::stringstream ok(std::string(kTitle) + "0,2147483647,0\n1,-2147483648,1\n");
  const DigitizedRecord rec = read_csv(ok);
  ASSERT_EQ(rec.adu.size(), 2u);
  EXPECT_EQ(rec.adu[0], 2147483647);
  EXPECT_EQ(rec.adu[1], -2147483647 - 1);
  EXPECT_EQ(rec.r_peaks, (std::vector<std::size_t>{1}));

  // CRLF records (Windows-written CSVs) load: the '\r' is stripped before
  // the strict parsing, not rejected as trailing garbage.
  std::stringstream crlf("# fs_hz,360\r\nindex,adu,is_r_peak\r\n0,5,0\r\n1,-7,1\r\n");
  const DigitizedRecord rec2 = read_csv(crlf);
  EXPECT_DOUBLE_EQ(rec2.fs_hz, 360.0);
  EXPECT_EQ(rec2.adu, (std::vector<i32>{5, -7}));
  EXPECT_EQ(rec2.r_peaks, (std::vector<std::size_t>{1}));
}

TEST(EcgIo, FileRoundTrip) {
  const DigitizedRecord rec = nsrdb_like_digitized(0, 500);
  const std::string path = "/tmp/xbs_io_test.csv";
  save_csv(path, rec);
  const DigitizedRecord back = load_csv(path);
  EXPECT_EQ(back.adu, rec.adu);
  EXPECT_THROW((void)load_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace xbs::ecg
