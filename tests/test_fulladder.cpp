// Truth-table tests for the elementary full-adder library (paper Fig. 5).
#include <gtest/gtest.h>

#include "xbs/arith/fulladder.hpp"

namespace xbs::arith {
namespace {

TEST(FullAdder, AccurateMatchesArithmetic) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        const FaOut o = full_add(AdderKind::Accurate, a != 0, b != 0, c != 0);
        const int total = a + b + c;
        EXPECT_EQ(o.sum, (total & 1) != 0);
        EXPECT_EQ(o.cout, total >= 2);
      }
    }
  }
}

TEST(FullAdder, Ama2SumIsInvertedCarry) {
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0, c = (i & 1) != 0;
    const FaOut o = full_add(AdderKind::Approx2, a, b, c);
    EXPECT_EQ(o.sum, !o.cout);
    // Carry remains exact.
    EXPECT_EQ(o.cout, full_add(AdderKind::Accurate, a, b, c).cout);
  }
}

TEST(FullAdder, Ama5IsPureWiring) {
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0, c = (i & 1) != 0;
    const FaOut o = full_add(AdderKind::Approx5, a, b, c);
    EXPECT_EQ(o.sum, b);
    EXPECT_EQ(o.cout, a);
  }
}

TEST(FullAdder, Ama4IsInverterOnA) {
  for (int i = 0; i < 8; ++i) {
    const bool a = (i & 4) != 0, b = (i & 2) != 0, c = (i & 1) != 0;
    const FaOut o = full_add(AdderKind::Approx4, a, b, c);
    EXPECT_EQ(o.sum, !a);
    EXPECT_EQ(o.cout, a);
  }
}

TEST(FullAdder, DocumentedErrorCounts) {
  // DESIGN.md §4.1: AMA1 2+0, AMA2 2+0, AMA3 3+1, AMA4 4+2, AMA5 4+2.
  EXPECT_EQ(fa_sum_error_count(AdderKind::Accurate), 0);
  EXPECT_EQ(fa_cout_error_count(AdderKind::Accurate), 0);
  EXPECT_EQ(fa_sum_error_count(AdderKind::Approx1), 2);
  EXPECT_EQ(fa_cout_error_count(AdderKind::Approx1), 0);
  EXPECT_EQ(fa_sum_error_count(AdderKind::Approx2), 2);
  EXPECT_EQ(fa_cout_error_count(AdderKind::Approx2), 0);
  EXPECT_EQ(fa_sum_error_count(AdderKind::Approx3), 3);
  EXPECT_EQ(fa_cout_error_count(AdderKind::Approx3), 1);
  EXPECT_EQ(fa_sum_error_count(AdderKind::Approx4), 4);
  EXPECT_EQ(fa_cout_error_count(AdderKind::Approx4), 2);
  EXPECT_EQ(fa_sum_error_count(AdderKind::Approx5), 4);
  EXPECT_EQ(fa_cout_error_count(AdderKind::Approx5), 2);
}

TEST(FullAdder, Ama1ErrorsAtDocumentedRows) {
  const FaTable& acc = fa_table(AdderKind::Accurate);
  const FaTable& t = fa_table(AdderKind::Approx1);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 0b100 || i == 0b110) {
      EXPECT_NE(t[i].sum, acc[i].sum) << i;
    } else {
      EXPECT_EQ(t[i].sum, acc[i].sum) << i;
    }
    EXPECT_EQ(t[i].cout, acc[i].cout) << i;
  }
}

class ErrorMonotonicity : public ::testing::TestWithParam<AdderKind> {};

TEST_P(ErrorMonotonicity, ApproxVariantsHaveBoundedError) {
  // Every approximate variant errs in at most half the truth table rows per
  // output — the design premise for LSB-limited deployment.
  const AdderKind kind = GetParam();
  EXPECT_LE(fa_sum_error_count(kind), 4);
  EXPECT_LE(fa_cout_error_count(kind), 2);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ErrorMonotonicity,
                         ::testing::Values(AdderKind::Approx1, AdderKind::Approx2,
                                           AdderKind::Approx3, AdderKind::Approx4,
                                           AdderKind::Approx5));

}  // namespace
}  // namespace xbs::arith
