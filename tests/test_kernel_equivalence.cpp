// Property tests: the batched kernels (exact and approximate backends) are
// bit-identical to the legacy scalar ExactUnit/ApproxUnit datapath across
// random operands and every (AdderKind, MultKind, approx_lsbs) combination,
// and the stage block transforms are bit-identical to streaming the same
// samples through the scalar path — including operation counts.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "xbs/arith/kernel.hpp"
#include "xbs/arith/unit.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/dsp/pt_coeffs.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/pantompkins/pipeline.hpp"
#include "xbs/pantompkins/stages.hpp"

namespace xbs::arith {
namespace {

// Long enough to exercise the coefficient-product-table fast path of the
// approximate mac_n/mul_cn (which engages above an internal block-size
// threshold) as well as the generic loops.
constexpr std::size_t kBlockLen = 700;
constexpr std::size_t kShortLen = 33;  // below the table threshold

std::vector<i64> random_adder_operands(Rng& rng, std::size_t n) {
  std::vector<i64> v(n);
  for (i64& x : v) x = rng.uniform_int(-2000000000, 2000000000);
  return v;
}

std::vector<i64> random_mult_operands(Rng& rng, std::size_t n) {
  std::vector<i64> v(n);
  for (i64& x : v) x = rng.uniform_int(-32768, 32767);
  return v;
}

class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<AdderKind, MultKind, int>> {};

TEST_P(KernelEquivalence, BatchedMatchesScalarUnit) {
  const auto [add_kind, mult_kind, lsbs] = GetParam();
  const StageArithConfig cfg = StageArithConfig::uniform(lsbs, add_kind, mult_kind);
  ApproxUnit unit(cfg);
  const std::unique_ptr<Kernel> kernel = make_kernel(cfg);
  Rng rng(77 + static_cast<u64>(lsbs) * 31 + static_cast<u64>(add_kind) * 7 +
          static_cast<u64>(mult_kind));

  for (const std::size_t n : {kShortLen, kBlockLen}) {
    const std::vector<i64> a = random_adder_operands(rng, n);
    const std::vector<i64> b = random_adder_operands(rng, n);
    const std::vector<i64> ma = random_mult_operands(rng, n);
    const std::vector<i64> mb = random_mult_operands(rng, n);
    std::vector<i64> out(n);

    kernel->add_n(a, b, out);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], unit.add(a[i], b[i])) << i;

    kernel->sub_n(a, b, out);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], unit.sub(a[i], b[i])) << i;

    kernel->mul_n(ma, mb, out);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], unit.mul(ma[i], mb[i])) << i;

    // Constant-coefficient multiply and fused MAC against the scalar chain,
    // for positive, negative and zero coefficients.
    for (const i64 c : {i64{31}, i64{-6}, i64{0}, i64{-32768}}) {
      kernel->mul_cn(c, ma, out);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], unit.mul(c, ma[i])) << i;

      std::vector<i64> acc = a;
      kernel->mac_n(c, ma, acc);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(acc[i], unit.add(a[i], unit.mul(c, ma[i]))) << i;
      }
    }
  }

  // The long blocks above built the coefficient product tables; a short
  // block now takes the warm-table fast path, which must stay bit-identical
  // to the cold generic loop it replaces.
  {
    const std::vector<i64> ma = random_mult_operands(rng, kShortLen);
    const std::vector<i64> a = random_adder_operands(rng, kShortLen);
    std::vector<i64> out(kShortLen);
    for (const i64 c : {i64{31}, i64{-6}}) {
      kernel->mul_cn(c, ma, out);
      for (std::size_t i = 0; i < kShortLen; ++i) EXPECT_EQ(out[i], unit.mul(c, ma[i])) << i;
      std::vector<i64> acc = a;
      kernel->mac_n(c, ma, acc);
      for (std::size_t i = 0; i < kShortLen; ++i) {
        EXPECT_EQ(acc[i], unit.add(a[i], unit.mul(c, ma[i]))) << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLsbs, KernelEquivalence,
    ::testing::Combine(::testing::ValuesIn(kAllAdderKinds),
                       ::testing::ValuesIn(kAllMultKinds),
                       ::testing::Values(0, 2, 5, 8, 16)));

TEST(KernelEquivalence, ExactKernelMatchesExactUnit) {
  ExactUnit unit;
  ExactKernel kernel;
  Rng rng(5);
  const std::vector<i64> a = random_adder_operands(rng, kBlockLen);
  const std::vector<i64> b = random_adder_operands(rng, kBlockLen);
  const std::vector<i64> ma = random_mult_operands(rng, kBlockLen);
  const std::vector<i64> mb = random_mult_operands(rng, kBlockLen);
  std::vector<i64> out(kBlockLen);

  kernel.add_n(a, b, out);
  for (std::size_t i = 0; i < kBlockLen; ++i) EXPECT_EQ(out[i], unit.add(a[i], b[i]));
  kernel.sub_n(a, b, out);
  for (std::size_t i = 0; i < kBlockLen; ++i) EXPECT_EQ(out[i], unit.sub(a[i], b[i]));
  kernel.mul_n(ma, mb, out);
  for (std::size_t i = 0; i < kBlockLen; ++i) EXPECT_EQ(out[i], unit.mul(ma[i], mb[i]));
  std::vector<i64> acc = a;
  kernel.mac_n(-7, ma, acc);
  for (std::size_t i = 0; i < kBlockLen; ++i) {
    EXPECT_EQ(acc[i], unit.add(a[i], unit.mul(-7, ma[i])));
  }
}

TEST(KernelEquivalence, OpCountsMatchScalarTotals) {
  const StageArithConfig cfg = StageArithConfig::uniform(8);
  const std::unique_ptr<Kernel> kernel = make_kernel(cfg);
  Rng rng(11);
  const std::vector<i64> x = random_mult_operands(rng, kBlockLen);
  std::vector<i64> acc(kBlockLen, 0);
  kernel->mul_cn(3, x, acc);
  kernel->mac_n(5, x, acc);
  EXPECT_EQ(kernel->counts().mults, 2 * kBlockLen);
  EXPECT_EQ(kernel->counts().adds, kBlockLen);
}

}  // namespace
}  // namespace xbs::arith

namespace xbs::pantompkins {
namespace {

std::vector<i32> sample_signal(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<i32> x(n);
  for (i32& v : x) v = static_cast<i32>(rng.uniform_int(-20000, 20000));
  return x;
}

class StageBlockEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(StageBlockEquivalence, FirBlockMatchesStreaming) {
  const arith::StageArithConfig cfg = arith::StageArithConfig::uniform(GetParam());
  const std::vector<i32> x = sample_signal(900, 3);

  arith::ApproxUnit scalar_unit(cfg);
  FirStage scalar(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, scalar_unit);
  std::vector<i32> want;
  for (const i32 v : x) want.push_back(scalar.process(v));

  const std::unique_ptr<arith::Kernel> kernel = arith::make_kernel(cfg);
  FirStage block(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, *kernel);
  const std::vector<i32> got = block.process_block(x);

  EXPECT_EQ(got, want);
  EXPECT_EQ(kernel->counts(), scalar_unit.counts());

  // The block transform leaves the stage in streaming state: continuing
  // sample-by-sample must agree with the pure streaming run.
  for (const i32 v : {1000, -2000, 3000}) {
    EXPECT_EQ(block.process(v), scalar.process(v));
  }
}

TEST_P(StageBlockEquivalence, MwiBlockMatchesStreaming) {
  const arith::StageArithConfig cfg = arith::StageArithConfig::uniform(GetParam());
  std::vector<i32> x = sample_signal(500, 4);
  for (i32& v : x) v = v < 0 ? -v : v;  // MWI input (squared signal) is non-negative

  arith::ApproxUnit scalar_unit(cfg);
  MwiStage scalar(dsp::pt::kMwiWindow, dsp::pt::kMwiShift, scalar_unit);
  std::vector<i32> want;
  for (const i32 v : x) want.push_back(scalar.process(v));

  const std::unique_ptr<arith::Kernel> kernel = arith::make_kernel(cfg);
  MwiStage block(dsp::pt::kMwiWindow, dsp::pt::kMwiShift, *kernel);
  const std::vector<i32> got = block.process_block(x);

  EXPECT_EQ(got, want);
  EXPECT_EQ(kernel->counts(), scalar_unit.counts());
  for (const i32 v : {500, 700, 900}) {
    EXPECT_EQ(block.process(v), scalar.process(v));
  }
}

TEST_P(StageBlockEquivalence, SquarerBlockMatchesStreaming) {
  const arith::StageArithConfig cfg = arith::StageArithConfig::uniform(GetParam());
  const std::vector<i32> x = sample_signal(600, 5);

  arith::ApproxUnit scalar_unit(cfg);
  SquarerStage scalar(dsp::pt::kSqrShift, scalar_unit);
  std::vector<i32> want;
  for (const i32 v : x) want.push_back(scalar.process(v));

  const std::unique_ptr<arith::Kernel> kernel = arith::make_kernel(cfg);
  SquarerStage block(dsp::pt::kSqrShift, *kernel);
  EXPECT_EQ(block.process_block(x), want);
  EXPECT_EQ(kernel->counts(), scalar_unit.counts());
}

INSTANTIATE_TEST_SUITE_P(Lsbs, StageBlockEquivalence, ::testing::Values(0, 4, 10));

TEST(PipelineBlockEquivalence, BlockPipelineMatchesStreamedStages) {
  // End-to-end: the block pipeline must equal streaming every stage sample
  // by sample through scalar units — the legacy datapath, reconstructed.
  const auto rec = ecg::nsrdb_like_digitized(0, 4000);
  const auto cfg = PipelineConfig::from_lsbs({10, 12, 2, 8, 16});

  const PanTompkinsPipeline pipe(cfg);
  const PipelineResult block = pipe.run_filters(rec.adu);

  std::array<std::unique_ptr<arith::ArithmeticUnit>, kNumStages> units;
  for (int s = 0; s < kNumStages; ++s) {
    const auto& sc = cfg.stage[static_cast<std::size_t>(s)];
    if (sc.is_exact()) {
      units[static_cast<std::size_t>(s)] = std::make_unique<arith::ExactUnit>();
    } else {
      units[static_cast<std::size_t>(s)] = std::make_unique<arith::ApproxUnit>(sc);
    }
  }
  FirStage lpf(dsp::pt::kLpfTaps, dsp::pt::kLpfShift, *units[0]);
  FirStage hpf(dsp::pt::kHpfTaps, dsp::pt::kHpfShift, *units[1]);
  FirStage der(dsp::pt::kDerTaps, dsp::pt::kDerShift, *units[2]);
  SquarerStage sqr(dsp::pt::kSqrShift, *units[3]);
  MwiStage mwi(dsp::pt::kMwiWindow, dsp::pt::kMwiShift, *units[4]);

  for (std::size_t i = 0; i < rec.adu.size(); ++i) {
    const i32 a = lpf.process(rec.adu[i]);
    const i32 b = hpf.process(a);
    const i32 c = der.process(b);
    const i32 d = sqr.process(c);
    const i32 e = mwi.process(d);
    ASSERT_EQ(block.lpf[i], a) << i;
    ASSERT_EQ(block.hpf[i], b) << i;
    ASSERT_EQ(block.der[i], c) << i;
    ASSERT_EQ(block.sqr[i], d) << i;
    ASSERT_EQ(block.mwi[i], e) << i;
  }
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_EQ(block.ops[static_cast<std::size_t>(s)],
              units[static_cast<std::size_t>(s)]->counts())
        << to_string(kAllStages[static_cast<std::size_t>(s)]);
  }
}

}  // namespace
}  // namespace xbs::pantompkins
