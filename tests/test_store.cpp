// Checksummed record store tests: CRC32C tiers and check vectors, XBS1
// round-trips, crash-safety discipline, strict open-time validation, and the
// fault-injection property suite — every injected corruption (bit flips,
// truncations, torn writes, header mangling) must surface as a typed
// StoreError, never a silently served sample and never a crash. Plus the
// WFDB converter (format 212 + MIT annotations) and the shared strict-parse
// helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fault_inject.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/ecg/parse.hpp"
#include "xbs/ecg/record.hpp"
#include "xbs/store/crc32c.hpp"
#include "xbs/store/format.hpp"
#include "xbs/store/store.hpp"
#include "xbs/store/wfdb.hpp"

namespace xbs::store {
namespace {

using testing::FaultInjector;

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

/// A synthetic record with peaks, sized in samples. Values span the full
/// i32-adu range the CSV path accepts.
ecg::DigitizedRecord make_rec(std::size_t n, u64 seed, i32 amplitude = 30000) {
  ecg::DigitizedRecord rec;
  rec.name = "synthetic-" + std::to_string(seed);
  rec.fs_hz = 200.0;
  rec.gain_adu_per_mv = 18000.0;
  Rng rng(seed);
  rec.adu.resize(n);
  for (auto& s : rec.adu) s = static_cast<i32>(rng.uniform_int(-amplitude, amplitude));
  for (std::size_t p = 17; p < n; p += 150) rec.r_peaks.push_back(p);
  return rec;
}

void expect_equal_records(const ecg::DigitizedRecord& a, const ecg::DigitizedRecord& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.fs_hz, b.fs_hz);
  EXPECT_EQ(a.gain_adu_per_mv, b.gain_adu_per_mv);
  EXPECT_EQ(a.adu, b.adu);
  EXPECT_EQ(a.r_peaks, b.r_peaks);
}

/// Run \p fn expecting a StoreError; return it for field assertions.
template <typename Fn>
StoreError expect_store_error(Fn&& fn, const char* what) {
  try {
    fn();
  } catch (const StoreError& e) {
    return e;
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": threw non-StoreError: " << e.what();
    return StoreError(StoreErrc::OpenFailed, "wrong exception type");
  }
  ADD_FAILURE() << what << ": no StoreError thrown";
  return StoreError(StoreErrc::OpenFailed, "nothing thrown");
}

// Little-endian field pokes into a raw image (offsets per format.hpp).
u32 rd32(const std::vector<u8>& b, std::size_t off) {
  return u32{b[off]} | u32{b[off + 1]} << 8 | u32{b[off + 2]} << 16 | u32{b[off + 3]} << 24;
}
void wr32(std::vector<u8>& b, std::size_t off, u32 v) {
  for (int i = 0; i < 4; ++i) b[off + static_cast<std::size_t>(i)] = static_cast<u8>(v >> (8 * i));
}
void wr64(std::vector<u8>& b, std::size_t off, u64 v) {
  for (int i = 0; i < 8; ++i) b[off + static_cast<std::size_t>(i)] = static_cast<u8>(v >> (8 * i));
}

constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffPageCount = 56;
constexpr std::size_t kOffTagTableCrc = 60;
constexpr std::size_t kOffHeaderCrc = 64;

std::size_t payload_offset(const std::vector<u8>& img) {
  const u32 page_count = rd32(img, kOffPageCount);
  const std::size_t tag_pages = (page_count * sizeof(u32) + kPageBytes - 1) / kPageBytes;
  return (1 + tag_pages) * kPageBytes;
}

/// Recompute every checksum of a hand-patched image — the "forged but
/// rehashed" adversary the payload validation layer exists for.
void rehash(std::vector<u8>& img) {
  const u32 page_count = rd32(img, kOffPageCount);
  const std::size_t tag_pages = (page_count * sizeof(u32) + kPageBytes - 1) / kPageBytes;
  const std::size_t payload = (1 + tag_pages) * kPageBytes;
  for (u32 p = 0; p < page_count; ++p) {
    wr32(img, kPageBytes + p * sizeof(u32), crc32c(0, img.data() + payload + p * kPageBytes, kPageBytes));
  }
  wr32(img, kOffTagTableCrc, crc32c(0, img.data() + kPageBytes, tag_pages * kPageBytes));
  wr32(img, kOffHeaderCrc, 0);
  wr32(img, kOffHeaderCrc, crc32c(0, img.data(), kPageBytes));
}

// ---------------------------------------------------------------- CRC32C

TEST(Crc32c, PublishedCheckVectors) {
  // CRC-32C check value (every catalog lists it).
  const char* s = "123456789";
  EXPECT_EQ(crc32c_portable(0, s, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(0, s, 9), 0xE3069283u);
  // RFC 3720 (iSCSI) appendix test patterns.
  std::vector<u8> buf(32, u8{0});
  EXPECT_EQ(crc32c(0, buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, u8{0xFF});
  EXPECT_EQ(crc32c(0, buf.data(), buf.size()), 0x62A8AB43u);
  for (u32 i = 0; i < 32; ++i) buf[i] = static_cast<u8>(i);
  EXPECT_EQ(crc32c(0, buf.data(), buf.size()), 0x46DD794Eu);
  EXPECT_EQ(crc32c(0, nullptr, 0), 0u);
}

TEST(Crc32c, TiersAgreeOnAllSizesAndAlignments) {
  Rng rng(7);
  std::vector<u8> buf(kPageBytes + 64);
  for (auto& b : buf) b = static_cast<u8>(rng.uniform_int(0, 255));
  for (const std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
          std::size_t{63}, std::size_t{255}, std::size_t{4096}}) {
      EXPECT_EQ(crc32c(0, buf.data() + off, len), crc32c_portable(0, buf.data() + off, len))
          << "off=" << off << " len=" << len;
    }
  }
}

TEST(Crc32c, IncrementalCompositionMatchesOneShot) {
  Rng rng(11);
  std::vector<u8> buf(1000);
  for (auto& b : buf) b = static_cast<u8>(rng.uniform_int(0, 255));
  const u32 whole = crc32c(0, buf.data(), buf.size());
  for (const std::size_t cut : {std::size_t{1}, std::size_t{8}, std::size_t{500}, std::size_t{999}}) {
    const u32 part = crc32c(crc32c(0, buf.data(), cut), buf.data() + cut, buf.size() - cut);
    EXPECT_EQ(part, whole) << "cut=" << cut;
  }
}

TEST(Crc32c, TierForcingAndVocabulary) {
  EXPECT_EQ(parse_crc_impl("portable"), CrcImpl::Portable);
  EXPECT_EQ(parse_crc_impl("sse42"), CrcImpl::Sse42);
  EXPECT_EQ(parse_crc_impl("avx"), std::nullopt);
  EXPECT_TRUE(crc_impl_usable(CrcImpl::Portable));

  EXPECT_EQ(force_crc32c_impl(CrcImpl::Portable), CrcImpl::Portable);
  EXPECT_EQ(crc32c_impl(), CrcImpl::Portable);
  const char* s = "123456789";
  EXPECT_EQ(crc32c(0, s, 9), 0xE3069283u);
  // Forcing an unusable tier falls back instead of selecting it.
  const CrcImpl got = force_crc32c_impl(CrcImpl::Sse42);
  if (crc_impl_usable(CrcImpl::Sse42)) {
    EXPECT_EQ(got, CrcImpl::Sse42);
    EXPECT_EQ(crc32c(0, s, 9), 0xE3069283u);
  } else {
    EXPECT_EQ(got, CrcImpl::Portable);
  }
  (void)force_crc32c_impl_auto();
}

// ------------------------------------------------------------ round trips

TEST(StoreFormat, RoundTripAcrossPageBoundaries) {
  u64 seed = 100;
  for (const std::size_t n :
       {std::size_t{1}, kSamplesPerPage - 1, kSamplesPerPage, kSamplesPerPage + 1,
        3 * kSamplesPerPage + 17}) {
    const ecg::DigitizedRecord rec = make_rec(n, seed++);
    const std::string path = tmp_path("rt_" + std::to_string(n) + ".xbs");
    write_record(path, rec);
    expect_equal_records(load_record(path), rec);

    RecordReader reader(path);
    EXPECT_EQ(reader.header().n_samples, n);
    EXPECT_EQ(reader.header().name, rec.name);
    EXPECT_EQ(reader.file_bytes() % kPageBytes, 0u);
    EXPECT_TRUE(reader.scrub().ok());
    // Sliced reads agree with the record everywhere, including page seams.
    const auto span = reader.samples(0, n);
    ASSERT_EQ(span.size(), n);
    EXPECT_TRUE(std::equal(span.begin(), span.end(), rec.adu.begin()));
    if (n > 2) {
      const auto tail = reader.samples(n - 2, 2);
      EXPECT_EQ(tail[1], rec.adu[n - 1]);
    }
  }
}

TEST(StoreFormat, EncodeIsDeterministicAndWriteLeavesNoTmp) {
  const ecg::DigitizedRecord rec = make_rec(3000, 5);
  EXPECT_EQ(encode_record(rec), encode_record(rec));

  const std::string path = tmp_path("atomic.xbs");
  write_record(path, rec);
  write_record(path, make_rec(500, 6));  // overwrite in place is atomic too
  expect_equal_records(load_record(path), make_rec(500, 6));
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "crash-safe writer must not leave " << path << ".tmp";
}

TEST(StoreFormat, WriterRejectsInvalidRecords) {
  ecg::DigitizedRecord rec;  // empty
  EXPECT_THROW((void)encode_record(rec), StoreError);
  rec = make_rec(100, 1);
  rec.name.assign(kMaxNameLen + 1, 'x');
  EXPECT_THROW((void)encode_record(rec), StoreError);
  rec = make_rec(100, 1);
  rec.fs_hz = 0.0;
  EXPECT_THROW((void)encode_record(rec), StoreError);
  rec = make_rec(100, 1);
  rec.r_peaks = {5, 5};  // not strictly increasing
  EXPECT_THROW((void)encode_record(rec), StoreError);
  rec = make_rec(100, 1);
  rec.r_peaks = {100};  // out of range
  const StoreError e = expect_store_error([&] { (void)encode_record(rec); }, "bad peak");
  EXPECT_EQ(e.errc(), StoreErrc::InvalidRecord);
}

TEST(StoreFormat, RejectsForeignTornAndFutureFiles) {
  const std::string path = tmp_path("reject.xbs");

  testing::write_file(path, {u8{'h'}, u8{'i'}, u8{'!'}, u8{'\n'}, u8{'x'}});
  EXPECT_EQ(expect_store_error([&] { RecordReader r(path); }, "foreign").errc(),
            StoreErrc::BadMagic);

  testing::write_file(path, {});
  EXPECT_EQ(expect_store_error([&] { RecordReader r(path); }, "empty").errc(),
            StoreErrc::TruncatedFile);

  const std::vector<u8> image = encode_record(make_rec(2 * kSamplesPerPage, 2));
  std::vector<u8> torn(image.begin(), image.end() - 123);
  testing::write_file(path, torn);
  EXPECT_EQ(expect_store_error([&] { RecordReader r(path); }, "torn").errc(),
            StoreErrc::TruncatedFile);

  std::vector<u8> longer = image;
  longer.resize(longer.size() + kPageBytes, u8{0});
  testing::write_file(path, longer);
  EXPECT_EQ(expect_store_error([&] { RecordReader r(path); }, "longer").errc(),
            StoreErrc::BadHeader);

  std::vector<u8> future = image;
  future[kOffVersion] = 2;
  rehash(future);  // valid checksums, unknown version: still refused
  testing::write_file(path, future);
  EXPECT_EQ(expect_store_error([&] { RecordReader r(path); }, "future").errc(),
            StoreErrc::BadVersion);

  EXPECT_EQ(expect_store_error([&] { RecordReader r(tmp_path("missing.xbs")); }, "missing").errc(),
            StoreErrc::OpenFailed);
}

// ------------------------------------------------- fault-injection properties

TEST(StoreFault, HeaderMangleAlwaysDetectedOnOpen) {
  const std::vector<u8> clean = encode_record(make_rec(3 * kSamplesPerPage, 21));
  const std::string path = tmp_path("mangle.xbs");
  FaultInjector inject(101);
  for (int i = 0; i < 200; ++i) {
    std::vector<u8> img = clean;
    const testing::Fault f = inject.mangle_header(img, kPageBytes);
    testing::write_file(path, img);
    (void)expect_store_error([&] { RecordReader r(path); }, f.describe().c_str());
  }
}

TEST(StoreFault, SingleBitFlipAnywhereAlwaysDetected) {
  const std::vector<u8> clean = encode_record(make_rec(3 * kSamplesPerPage + 100, 22));
  const std::string path = tmp_path("flip.xbs");
  FaultInjector inject(202);
  int detected_at_open = 0, detected_at_read = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<u8> img = clean;
    const testing::Fault f = inject.flip_bit(img);
    testing::write_file(path, img);
    try {
      RecordReader reader(path);
      // Open passed, so the flip is in the payload: the full read must trip
      // on it, and scrub must locate it without latching anything.
      EXPECT_FALSE(reader.scrub().ok()) << f.describe();
      const StoreError e =
          expect_store_error([&] { (void)reader.record(); }, f.describe().c_str());
      EXPECT_EQ(e.errc(), StoreErrc::PageCorrupt) << f.describe();
      EXPECT_NE(e.stored_crc(), e.computed_crc()) << f.describe();
      EXPECT_LT(e.page(), reader.page_count()) << f.describe();
      ++detected_at_read;
    } catch (const StoreError&) {
      ++detected_at_open;
    }
  }
  EXPECT_EQ(detected_at_open + detected_at_read, 300);  // 100% detection
  EXPECT_GT(detected_at_open, 0);  // the corpus exercised both layers
  EXPECT_GT(detected_at_read, 0);
}

TEST(StoreFault, TruncationAlwaysDetectedOnOpen) {
  const std::vector<u8> clean = encode_record(make_rec(2 * kSamplesPerPage + 9, 23));
  const std::string path = tmp_path("trunc.xbs");
  FaultInjector inject(303);
  for (int i = 0; i < 100; ++i) {
    std::vector<u8> img = clean;
    const testing::Fault f = inject.truncate(img);
    testing::write_file(path, img);
    (void)expect_store_error([&] { RecordReader r(path); }, f.describe().c_str());
  }
}

TEST(StoreFault, TornWriteDetectedWheneverBytesChanged) {
  // Same-size torn overwrite with two stale-tail flavors: zeros, and the
  // previous tenant of the path (an old record of identical length).
  const std::vector<u8> clean = encode_record(make_rec(2 * kSamplesPerPage, 24));
  const std::vector<u8> stale = encode_record(make_rec(2 * kSamplesPerPage, 25));
  ASSERT_EQ(clean.size(), stale.size());
  const std::string path = tmp_path("tornw.xbs");
  FaultInjector inject(404);
  int detected = 0, noop = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<u8> img = clean;
    (void)(i % 2 == 0 ? inject.torn_write(img) : inject.torn_write(img, stale));
    if (img == clean) {
      ++noop;  // the cut landed where stale bytes equal live ones: no fault
      continue;
    }
    testing::write_file(path, img);
    bool ok = false;
    try {
      RecordReader reader(path);
      (void)reader.record();
      ok = true;
    } catch (const StoreError&) {
      ++detected;
    }
    EXPECT_FALSE(ok) << "iteration " << i << ": changed bytes served as valid";
  }
  EXPECT_EQ(detected + noop, 100);
  EXPECT_GT(detected, 50);
}

TEST(StoreFault, CorruptPageQuarantinesTheReaderNotTheProcess) {
  const std::size_t n = 5 * kSamplesPerPage;
  const ecg::DigitizedRecord rec = make_rec(n, 31);
  std::vector<u8> img = encode_record(rec);
  const std::size_t target_page = 2;
  img[payload_offset(img) + target_page * kPageBytes + 137] ^= u8{0x10};
  const std::string path = tmp_path("quarantine.xbs");
  testing::write_file(path, img);

  RecordReader reader(path);  // header and tag table are fine
  // Pages before the corruption read normally (lazy verification).
  const auto head = reader.samples(0, kSamplesPerPage);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), rec.adu.begin()));
  EXPECT_FALSE(reader.quarantined());

  // Touching the bad page throws the fully-typed error...
  const StoreError e = expect_store_error(
      [&] { (void)reader.samples(target_page * kSamplesPerPage, 10); }, "bad page");
  EXPECT_EQ(e.errc(), StoreErrc::PageCorrupt);
  EXPECT_EQ(e.page(), target_page);
  EXPECT_NE(e.stored_crc(), e.computed_crc());

  // ...and latches the reader: even previously-good ranges now refuse.
  EXPECT_TRUE(reader.quarantined());
  const StoreError again =
      expect_store_error([&] { (void)reader.samples(0, 1); }, "latched");
  EXPECT_EQ(again.errc(), StoreErrc::PageCorrupt);
  EXPECT_EQ(again.page(), target_page);

  // The process (and a fresh reader on the same file) is unaffected: clean
  // prefixes stay readable, scrub pinpoints exactly the injected page.
  RecordReader fresh(path);
  EXPECT_EQ(fresh.samples(0, 4)[0], rec.adu[0]);
  const ScrubReport report = fresh.scrub();
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_EQ(report.faults[0].page, target_page);
  EXPECT_EQ(report.pages_total, fresh.page_count());
}

TEST(StoreFault, ForgedButRehashedPayloadIsStillRejected) {
  // CRC proves integrity, not honesty: a forged peak list with fixed-up
  // checksums must fall to the payload validation layer, typed.
  const ecg::DigitizedRecord rec = make_rec(kSamplesPerPage, 32);
  ASSERT_FALSE(rec.r_peaks.empty());
  std::vector<u8> img = encode_record(rec);
  wr64(img, payload_offset(img) + rec.adu.size() * sizeof(i32), rec.adu.size() + 7);
  rehash(img);
  const std::string path = tmp_path("forged.xbs");
  testing::write_file(path, img);
  RecordReader reader(path);  // checksums all pass...
  const StoreError e = expect_store_error([&] { (void)reader.record(); }, "forged peaks");
  EXPECT_EQ(e.errc(), StoreErrc::BadPayload);  // ...content still rejected
}

// -------------------------------------------------------------------- WFDB

TEST(Wfdb, RoundTripWithSkipIntervalsAndNegatives) {
  ecg::DigitizedRecord rec = make_rec(9000, 41, /*amplitude=*/2000);
  rec.name = "w100";
  rec.fs_hz = 360.0;
  rec.gain_adu_per_mv = 200.0;
  rec.r_peaks = {0, 3, 900, 8999};  // deltas both sides of the 1023 atom limit
  const std::string hea = tmp_path("w100.hea");
  write_wfdb(hea, rec);
  expect_equal_records(read_wfdb(hea), rec);

  // Odd-length record: the final 212 pair is half-used.
  ecg::DigitizedRecord odd = make_rec(777, 42, 2000);
  odd.name = "wodd";
  const std::string hea_odd = tmp_path("wodd.hea");
  write_wfdb(hea_odd, odd);
  expect_equal_records(read_wfdb(hea_odd), odd);

  // Annotations are optional: without the .atr there are just no peaks.
  std::remove((tmp_path("wodd") + ".atr").c_str());
  const ecg::DigitizedRecord no_ann = read_wfdb(hea_odd);
  EXPECT_TRUE(no_ann.r_peaks.empty());
  EXPECT_EQ(no_ann.adu, odd.adu);
}

TEST(Wfdb, TwoSignalInterleaveDecodesEitherSignal) {
  // Hand-built two-signal 212 file: frame i carries (sig0[i], sig1[i]).
  // sig0 = {100, -5, 2047}, sig1 = {-2048, 7, -1}.
  const std::vector<i32> sig0 = {100, -5, 2047};
  const std::vector<i32> sig1 = {-2048, 7, -1};
  std::vector<u8> dat;
  for (std::size_t i = 0; i < sig0.size(); ++i) {
    const u32 a = static_cast<u32>(sig0[i]) & 0xFFFu;
    const u32 b = static_cast<u32>(sig1[i]) & 0xFFFu;
    dat.push_back(static_cast<u8>(a & 0xFFu));
    dat.push_back(static_cast<u8>(((a >> 8) & 0x0Fu) | ((b >> 4) & 0xF0u)));
    dat.push_back(static_cast<u8>(b & 0xFFu));
  }
  testing::write_file(tmp_path("two.dat"), dat);
  {
    std::ofstream os(tmp_path("two.hea"));
    os << "two 2 360 3\n";
    os << "two.dat 212 200(1024)/mV 12 0\n";
    os << "two.dat 212 150/mV 12 0\n";
  }
  const ecg::DigitizedRecord r0 = read_wfdb(tmp_path("two.hea"), 0);
  const ecg::DigitizedRecord r1 = read_wfdb(tmp_path("two.hea"), 1);
  EXPECT_EQ(r0.adu, sig0);
  EXPECT_EQ(r1.adu, sig1);
  EXPECT_EQ(r0.gain_adu_per_mv, 200.0);
  EXPECT_EQ(r1.gain_adu_per_mv, 150.0);
  EXPECT_EQ(r0.fs_hz, 360.0);
}

TEST(Wfdb, StrictRejectionOfMalformedInput) {
  const auto hea = [&](const std::string& text) {
    std::ofstream os(tmp_path("bad.hea"));
    os << text;
  };
  hea("bad 1 360 100\nbad.dat 16 200\n");  // unsupported format
  EXPECT_THROW((void)read_wfdb(tmp_path("bad.hea")), std::runtime_error);
  hea("bad/4 1 360 100\nbad.dat 212 200\n");  // multi-segment
  EXPECT_THROW((void)read_wfdb(tmp_path("bad.hea")), std::runtime_error);
  hea("bad 2 360 100\nbad.dat 212 200\n");  // fewer signal lines than declared
  EXPECT_THROW((void)read_wfdb(tmp_path("bad.hea")), std::runtime_error);
  hea("bad 1 0 100\nbad.dat 212 200\n");  // non-positive fs
  EXPECT_THROW((void)read_wfdb(tmp_path("bad.hea")), std::runtime_error);
  hea("bad 1 360 1x0\nbad.dat 212 200\n");  // trailing garbage in a number
  EXPECT_THROW((void)read_wfdb(tmp_path("bad.hea")), std::runtime_error);

  // Signal file shorter than the header's sample count.
  hea("bad 1 360 100\nbad.dat 212 200\n");
  testing::write_file(tmp_path("bad.dat"), std::vector<u8>(30, u8{0}));
  EXPECT_THROW((void)read_wfdb(tmp_path("bad.hea")), std::runtime_error);

  // Signal index beyond the record.
  ecg::DigitizedRecord rec = make_rec(100, 43, 2000);
  rec.name = "ok";
  write_wfdb(tmp_path("ok.hea"), rec);
  EXPECT_THROW((void)read_wfdb(tmp_path("ok.hea"), 1), std::runtime_error);

  // Truncated annotation stream (an atom promising absent aux bytes).
  testing::write_file(tmp_path("ok.atr"), {u8{0x05}, u8{0xFC}});  // AUX, len 5, no bytes
  EXPECT_THROW((void)read_wfdb(tmp_path("ok.hea")), std::runtime_error);
}

// ------------------------------------------------- shared parse helpers

TEST(EcgParse, SharedHelpersNameTheCallerContext) {
  EXPECT_EQ(ecg::parse_i32_field("-42", "ctx", "w"), -42);
  EXPECT_EQ(ecg::parse_double_field("2.5", "ctx", "w"), 2.5);
  try {
    (void)ecg::parse_i32_field("12abc", "my_loader", "bad adu");
    FAIL() << "no throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "my_loader: bad adu: '12abc'");
  }
  EXPECT_THROW((void)ecg::parse_i32_field("99999999999", "c", "w"), std::runtime_error);
  EXPECT_THROW((void)ecg::parse_double_field("", "c", "w"), std::runtime_error);
  EXPECT_THROW((void)ecg::parse_i64_field("1 2", "c", "w"), std::runtime_error);
}

}  // namespace
}  // namespace xbs::store
