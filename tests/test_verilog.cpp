// Tests for the structural Verilog exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "xbs/netlist/builders.hpp"
#include "xbs/netlist/optimizer.hpp"
#include "xbs/netlist/verilog.hpp"

namespace xbs::netlist {
namespace {

Netlist adder_netlist(int k) {
  Netlist nl;
  const arith::AdderConfig cfg{8, k, AdderKind::Approx5, 0};
  const auto a = nl.new_input_bus(8);
  const auto b = nl.new_input_bus(8);
  const auto out = build_rca(nl, cfg, a, b);
  for (const auto n : out.sum) nl.mark_output(n);
  return nl;
}

TEST(Verilog, EmitsModuleWithPorts) {
  const std::string v = to_verilog(adder_netlist(0), {"my_adder", true});
  EXPECT_NE(v.find("module my_adder"), std::string::npos);
  EXPECT_NE(v.find("input wire [15:0] in"), std::string::npos);
  EXPECT_NE(v.find("output wire [7:0] out"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, EmitsOnlyUsedPrimitives) {
  const std::string acc = to_verilog(adder_netlist(0));
  EXPECT_NE(acc.find("module xbs_fa_acc"), std::string::npos);
  EXPECT_EQ(acc.find("module xbs_fa_ama5"), std::string::npos);
  const std::string mixed = to_verilog(adder_netlist(4));
  EXPECT_NE(mixed.find("module xbs_fa_acc"), std::string::npos);
  EXPECT_NE(mixed.find("module xbs_fa_ama5"), std::string::npos);
}

TEST(Verilog, PrimitiveTruthTablesExact) {
  // The AMA5 body must encode sum = b, cout = a.
  std::ostringstream os;
  write_verilog(os, adder_netlist(8), {"w", true});
  const std::string v = os.str();
  // Row {a,b,cin} = 3'b010 -> sum 1 (b), cout 0 (a).
  EXPECT_NE(v.find("3'b010: {sum, cout} = 2'b10;"), std::string::npos);
  // Row 3'b101 -> sum 0, cout 1.
  EXPECT_NE(v.find("3'b101: {sum, cout} = 2'b01;"), std::string::npos);
}

TEST(Verilog, MultiplierExportsMul2Primitives) {
  Netlist nl;
  const arith::MultiplierConfig cfg{4, 4, AdderKind::Approx5, MultKind::V1,
                                    ApproxPolicy::Moderate};
  const auto a = nl.new_input_bus(4);
  const auto b = nl.new_input_bus(4);
  const auto p = build_multiplier(nl, cfg, a, b);
  for (const auto n : p) nl.mark_output(n);
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module xbs_mul2_v1"), std::string::npos);
  // V1's 3x3 entry is 7.
  EXPECT_NE(v.find("4'd15: p = 4'd7;"), std::string::npos);
}

TEST(Verilog, OptimizedNetlistEmitsConstantsAndWires) {
  // x + 0 optimizes to wires: outputs become direct input references.
  Netlist nl;
  const arith::AdderConfig cfg{4, 0, AdderKind::Accurate, 0};
  const auto a = nl.new_input_bus(4);
  const auto b = nl.const_bus(0, 4);
  const auto out = build_rca(nl, cfg, a, b);
  for (const auto n : out.sum) nl.mark_output(n);
  optimize(nl);
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("assign out[0] = in[0];"), std::string::npos);
  EXPECT_NE(v.find("assign out[3] = in[3];"), std::string::npos);
  // No primitive instances remain.
  EXPECT_EQ(v.find("xbs_fa_acc u"), std::string::npos);
}

TEST(Verilog, DeterministicOutput) {
  const std::string a = to_verilog(adder_netlist(4));
  const std::string b = to_verilog(adder_netlist(4));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace xbs::netlist
