// Stage-level cross-validation (paper Fig. 9): the behavioural fixed-point
// FIR stage and the netlist built from the same coefficients must agree on
// the raw accumulator value, for positive-coefficient stages and positive
// inputs (the unsigned core the netlist models).
#include <gtest/gtest.h>

#include <vector>

#include "xbs/arith/multiplier.hpp"
#include "xbs/arith/rca.hpp"
#include "xbs/common/rng.hpp"
#include "xbs/netlist/builders.hpp"
#include "xbs/netlist/optimizer.hpp"

namespace xbs {
namespace {

/// Behavioural unsigned FIR accumulator: products via RecursiveMultiplier,
/// chained through a RippleCarryAdder — the same structure the netlist
/// builder emits.
u64 behavioural_fir(const arith::StageArithConfig& cfg, const std::vector<u32>& coeffs,
                    const std::vector<u64>& taps) {
  const auto mult = arith::get_multiplier(cfg.mult);
  const arith::RippleCarryAdder adder(cfg.adder);
  u64 acc = 0;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    const u64 p = mult->multiply_u(taps[i], coeffs[i]) & low_mask(32);
    if (first) {
      acc = p;
      first = false;
    } else {
      acc = adder.add_u(acc, p).sum;
    }
  }
  return acc;
}

class FirStageXval : public ::testing::TestWithParam<int> {};

TEST_P(FirStageXval, LpfStageNetlistMatchesBehavioural) {
  const int k = GetParam();
  const arith::StageArithConfig cfg = arith::StageArithConfig::uniform(k);
  const std::vector<u32> coeffs = {1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1};

  netlist::Netlist nl = netlist::build_fir_stage(netlist::FirStageSpec{coeffs, cfg});
  netlist::Netlist opt = netlist::build_fir_stage(netlist::FirStageSpec{coeffs, cfg});
  netlist::optimize(opt);

  Rng rng(400 + static_cast<u64>(k));
  for (int t = 0; t < 25; ++t) {
    std::vector<u64> taps;
    std::vector<int> widths;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      taps.push_back(rng.next_u64() & 0x7FFF);  // positive 15-bit samples
      widths.push_back(16);
    }
    const u64 want = behavioural_fir(cfg, coeffs, taps);
    EXPECT_EQ(nl.simulate_word(taps, widths), want) << "k=" << k;
    EXPECT_EQ(opt.simulate_word(taps, widths), want) << "k=" << k << " (optimized)";
  }
}

INSTANTIATE_TEST_SUITE_P(Lsbs, FirStageXval, ::testing::Values(0, 2, 6, 10, 16));

TEST(MwiStageXval, TreeMatchesBehaviouralTree) {
  // The MWI netlist's balanced reduction must match a behavioural balanced
  // reduction over the same inputs and adder configuration.
  for (const int k : {0, 8, 16}) {
    const arith::AdderConfig acfg{32, k, AdderKind::Approx5, 0};
    const int window = 30;
    netlist::Netlist nl = netlist::build_mwi_stage(window, acfg, 16);

    Rng rng(700 + static_cast<u64>(k));
    for (int t = 0; t < 20; ++t) {
      std::vector<u64> inputs;
      std::vector<int> widths;
      for (int i = 0; i < window; ++i) {
        inputs.push_back(rng.next_u64() & 0xFFFF);
        widths.push_back(16);
      }
      // Behavioural balanced tree (same pairwise order).
      const arith::RippleCarryAdder adder(acfg);
      std::vector<u64> terms = inputs;
      while (terms.size() > 1) {
        std::vector<u64> next;
        for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
          next.push_back(adder.add_u(terms[i], terms[i + 1]).sum);
        }
        if (terms.size() % 2 == 1) next.push_back(terms.back());
        terms = std::move(next);
      }
      EXPECT_EQ(nl.simulate_word(inputs, widths), terms[0]) << "k=" << k;
    }
  }
}

TEST(SquarerXval, NetlistSquaresLikeBehavioural) {
  for (const int k : {0, 4, 8}) {
    const arith::MultiplierConfig cfg{16, k, AdderKind::Approx5, MultKind::V1,
                                      ApproxPolicy::Moderate};
    netlist::Netlist nl = netlist::build_squarer_stage(cfg);
    const arith::RecursiveMultiplier mult(cfg);
    Rng rng(900 + static_cast<u64>(k));
    for (int t = 0; t < 40; ++t) {
      const u64 x = rng.next_u64() & 0xFFFF;
      const u64 words[1] = {x};
      const int widths[1] = {16};
      EXPECT_EQ(nl.simulate_word(words, widths), mult.multiply_u(x, x)) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace xbs
