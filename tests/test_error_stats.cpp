// Tests for the arithmetic error-characterization module.
#include <gtest/gtest.h>

#include "xbs/arith/error_stats.hpp"

namespace xbs::arith {
namespace {

TEST(ErrorStats, AccurateConfigurationsAreErrorFree) {
  const auto add = characterize_adder(AdderConfig{8, 0, AdderKind::Approx5, 0});
  EXPECT_EQ(add.samples, 65536u);  // exhaustive 2^16
  EXPECT_DOUBLE_EQ(add.error_rate, 0.0);
  EXPECT_EQ(add.max_abs_error, 0);

  const auto mul = characterize_multiplier(MultiplierConfig{8, 0});
  EXPECT_DOUBLE_EQ(mul.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(mul.mean_abs_error, 0.0);
}

TEST(ErrorStats, Ama5AdderExhaustive8Bit) {
  // 8-bit adder, 4 approximated LSBs of AMA5: errors bounded by 2^5 region.
  const auto s = characterize_adder(AdderConfig{8, 4, AdderKind::Approx5, 0});
  EXPECT_GT(s.error_rate, 0.3);
  EXPECT_LT(s.error_rate, 1.0);
  EXPECT_LE(s.max_abs_error, 63);  // sum-lane + displaced carry at bit 4
  EXPECT_GT(s.mean_abs_error, 1.0);
}

TEST(ErrorStats, ErrorGrowsWithK) {
  double prev = -1.0;
  for (const int k : {2, 4, 6, 8}) {
    const auto s = characterize_adder(AdderConfig{16, k, AdderKind::Approx5, 0},
                                      /*exhaustive_limit=*/0, /*mc=*/40000);
    EXPECT_GT(s.mean_abs_error, prev) << k;
    prev = s.mean_abs_error;
  }
}

TEST(ErrorStats, KinderAddersHaveSmallerError) {
  // At equal k, AMA1 (2 truth-table errors) must beat AMA5 (6 errors) on
  // mean error distance.
  const auto a1 = characterize_adder(AdderConfig{16, 8, AdderKind::Approx1, 0},
                                     /*exhaustive_limit=*/0, /*mc=*/60000);
  const auto a5 = characterize_adder(AdderConfig{16, 8, AdderKind::Approx5, 0},
                                     /*exhaustive_limit=*/0, /*mc=*/60000);
  EXPECT_LT(a1.mean_abs_error, a5.mean_abs_error);
}

TEST(ErrorStats, V1MultiplierExhaustive4Bit) {
  // 4x4 multiplier fully approximated with V1: the only elementary error is
  // 3x3 -> 7, so the error rate over 256 inputs must be small but non-zero.
  const auto s = characterize_multiplier(
      MultiplierConfig{4, 8, AdderKind::Accurate, MultKind::V1, ApproxPolicy::Aggressive});
  EXPECT_EQ(s.samples, 256u);
  EXPECT_GT(s.error_rate, 0.0);
  EXPECT_LT(s.error_rate, 0.3);
}

TEST(ErrorStats, MonteCarloDeterministicUnderSeed) {
  const MultiplierConfig cfg{16, 8, AdderKind::Approx5, MultKind::V1, ApproxPolicy::Moderate};
  const auto a = characterize_multiplier(cfg, 0, 20000, 7);
  const auto b = characterize_multiplier(cfg, 0, 20000, 7);
  EXPECT_DOUBLE_EQ(a.mean_abs_error, b.mean_abs_error);
  EXPECT_EQ(a.max_abs_error, b.max_abs_error);
}

TEST(ErrorStats, RmsAtLeastMean) {
  const auto s = characterize_adder(AdderConfig{16, 6, AdderKind::Approx2, 0}, 0, 30000);
  EXPECT_GE(s.rms_error, s.mean_abs_error);
}

}  // namespace
}  // namespace xbs::arith
