// Streaming session API tests: chunk invariance (any chunking of a record
// through stream::Session is bit-identical to the whole-record batch
// pipeline), online event semantics, parameter validation, and the
// multi-session SessionPool serving layer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "xbs/common/rng.hpp"
#include "xbs/core/paper_configs.hpp"
#include "xbs/ecg/dataset.hpp"
#include "xbs/pantompkins/pipeline.hpp"
#include "xbs/stream/pool.hpp"
#include "xbs/stream/session.hpp"

namespace xbs::stream {
namespace {

using pantompkins::PanTompkinsPipeline;
using pantompkins::PipelineConfig;
using pantompkins::PipelineResult;
using pantompkins::Stage;

/// Split sizes for a record: fixed size (0 = whole record) or, with
/// randomize, a seeded sequence of ragged chunk lengths in [1, 97].
std::vector<std::size_t> chunk_plan(std::size_t n, std::size_t fixed, u64 seed = 0) {
  std::vector<std::size_t> plan;
  if (fixed > 0) {
    for (std::size_t at = 0; at < n; at += fixed) plan.push_back(std::min(fixed, n - at));
    return plan;
  }
  if (seed == 0) {
    plan.push_back(n);  // whole record as one chunk
    return plan;
  }
  Rng rng(seed);
  std::size_t at = 0;
  while (at < n) {
    const auto len = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 97)), n - at);
    plan.push_back(len);
    at += len;
  }
  return plan;
}

/// Stream the record through a Session with the given chunk plan and return
/// it in full-retention mode for comparison against the batch pipeline.
Session stream_record(const PipelineConfig& cfg, std::span<const i32> adu,
                      const std::vector<std::size_t>& plan) {
  SessionSpec spec;
  spec.config = cfg;
  spec.keep_signals = true;
  Session s(std::move(spec));
  std::size_t at = 0;
  for (const std::size_t len : plan) {
    (void)s.push(adu.subspan(at, len));
    at += len;
  }
  EXPECT_EQ(at, adu.size());
  (void)s.flush();
  return s;
}

void expect_bit_identical(const Session& s, const PipelineResult& batch,
                          const std::string& what) {
  EXPECT_EQ(s.stage_signal(Stage::Lpf), batch.lpf) << what;
  EXPECT_EQ(s.stage_signal(Stage::Hpf), batch.hpf) << what;
  EXPECT_EQ(s.stage_signal(Stage::Der), batch.der) << what;
  EXPECT_EQ(s.stage_signal(Stage::Sqr), batch.sqr) << what;
  EXPECT_EQ(s.stage_signal(Stage::Mwi), batch.mwi) << what;
  EXPECT_EQ(s.detection().peaks, batch.detection.peaks) << what;
  ASSERT_EQ(s.detection().trace.size(), batch.detection.trace.size()) << what;
  for (std::size_t i = 0; i < batch.detection.trace.size(); ++i) {
    EXPECT_EQ(s.detection().trace[i], batch.detection.trace[i]) << what << " trace[" << i << "]";
  }
  const auto ops = s.ops();
  for (int st = 0; st < pantompkins::kNumStages; ++st) {
    const auto su = static_cast<std::size_t>(st);
    EXPECT_EQ(ops[su], batch.ops[su]) << what << " ops stage " << st;
  }
}

TEST(StreamChunkInvariance, EveryPaperConfigAnyChunking) {
  const auto rec = ecg::nsrdb_like_digitized(0, 3000);

  std::vector<std::pair<std::string, PipelineConfig>> configs;
  configs.emplace_back("accurate", PipelineConfig::accurate());
  for (const auto& named : core::fig12_b_configs()) {
    configs.emplace_back(std::string(named.name), PipelineConfig::from_lsbs(named.lsbs));
  }

  for (const auto& [name, cfg] : configs) {
    const PipelineResult batch = PanTompkinsPipeline(cfg).run(rec.adu);
    // Fixed sizes 1 / 7 / 64, the whole record as one chunk, and a seeded
    // ragged split: all must reproduce the batch result bit for bit.
    const std::array<std::pair<std::size_t, u64>, 5> plans = {
        {{1, 0}, {7, 0}, {64, 0}, {0, 0}, {0, 1234}}};
    for (const auto& [fixed, seed] : plans) {
      const auto plan = chunk_plan(rec.adu.size(), fixed, seed);
      const Session s = stream_record(cfg, rec.adu, plan);
      expect_bit_identical(
          s, batch, name + " chunks=" + std::to_string(fixed) + "/" + std::to_string(seed));
    }
  }
}

TEST(StreamChunkInvariance, LongRecordWithHistoryTrimming) {
  // Long enough that the detector's sliding-window trimming engages many
  // times; results must still match the batch path exactly.
  const auto rec = ecg::nsrdb_like_digitized(3, 20000);
  const PipelineResult batch = PanTompkinsPipeline().run(rec.adu);
  const Session s =
      stream_record(PipelineConfig::accurate(), rec.adu, chunk_plan(rec.adu.size(), 0, 99));
  expect_bit_identical(s, batch, "trimming");
}

namespace {

/// Add a triangular peak of the given amplitude/half-width to a signal.
void bump(std::vector<i32>& v, std::ptrdiff_t at, int amp, int halfwidth) {
  for (std::ptrdiff_t i = at - halfwidth; i <= at + halfwidth; ++i) {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(v.size())) continue;
    const int h = amp - static_cast<int>(amp * std::abs(i - at) / (halfwidth + 1));
    if (h > v[static_cast<std::size_t>(i)]) v[static_cast<std::size_t>(i)] = h;
  }
}

}  // namespace

TEST(StreamChunkInvariance, SearchBackAndTWavePathsMatchBatch) {
  // The NSRDB-like workloads never trigger the RR search-back or T-wave
  // discrimination, so craft aligned (MWI, HPF, raw) triples that do: strong
  // beats every 160 samples with gentle trailing T waves, plus two weak
  // beats in a row (below threshold, tallest recovered by search-back when
  // the gap exceeds the missed-beat limit).
  const std::size_t n = 4000;
  std::vector<i32> mwi(n, 0), hpf(n, 0), raw(n, 0);
  int k = 0;
  for (std::size_t p = 100; p + 60 < n; p += 160, ++k) {
    const bool weak = (k == 10 || k == 11);
    const auto at = static_cast<std::ptrdiff_t>(p);
    bump(mwi, at, weak ? (k == 10 ? 260 : 180) : 1000, 8);
    bump(hpf, at - 16, weak ? 250 : 500, 5);
    bump(raw, at - 36, weak ? 400 : 800, 4);
    if (!weak) {
      bump(mwi, at + 50, 350, 24);  // T wave: above threshold, gentle slope
      bump(hpf, at + 34, 150, 20);
    }
  }

  const auto batch = pantompkins::detect_qrs(mwi, hpf, raw);
  int searchback = 0, twave = 0;
  for (const auto& ev : batch.trace) {
    searchback += ev.decision == pantompkins::PeakDecision::SearchBackRecovered ? 1 : 0;
    twave += ev.decision == pantompkins::PeakDecision::TWave ? 1 : 0;
  }
  ASSERT_GT(searchback, 0);  // the paths under test actually run
  ASSERT_GT(twave, 0);

  const std::array<std::pair<std::size_t, u64>, 5> plans = {
      {{1, 0}, {7, 0}, {33, 0}, {0, 0}, {0, 77}}};
  for (const auto& [fixed, seed] : plans) {
    pantompkins::OnlineDetector det{pantompkins::DetectorParams{}};
    std::size_t at = 0;
    for (const std::size_t len : chunk_plan(n, fixed, seed)) {
      (void)det.push(std::span<const i32>(mwi).subspan(at, len),
                     std::span<const i32>(hpf).subspan(at, len),
                     std::span<const i32>(raw).subspan(at, len));
      at += len;
    }
    (void)det.flush();
    EXPECT_EQ(det.result().peaks, batch.peaks) << "chunks=" << fixed << "/" << seed;
    ASSERT_EQ(det.result().trace.size(), batch.trace.size()) << "chunks=" << fixed;
    for (std::size_t i = 0; i < batch.trace.size(); ++i) {
      EXPECT_EQ(det.result().trace[i], batch.trace[i]) << "trace[" << i << "]";
    }
  }
}

TEST(StreamSession, EventsMatchDetectionAndSinkSeesEverything) {
  const auto rec = ecg::nsrdb_like_digitized(1, 6000);
  SessionSpec spec;
  std::vector<Event> sunk;
  spec.sink = [&](const Event& ev) { sunk.push_back(ev); };
  Session s(std::move(spec));

  std::vector<Event> returned;
  for (std::size_t at = 0; at < rec.adu.size(); at += 250) {
    const auto len = std::min<std::size_t>(250, rec.adu.size() - at);
    for (const Event& ev : s.push(std::span<const i32>(rec.adu).subspan(at, len))) {
      returned.push_back(ev);
    }
  }
  for (const Event& ev : s.flush()) returned.push_back(ev);

  // The sink and the returned spans deliver the same event stream, which is
  // exactly the cumulative detector trace.
  ASSERT_EQ(returned.size(), sunk.size());
  const auto& trace = s.detection().trace;
  ASSERT_EQ(returned.size(), trace.size());
  std::size_t beats = 0;
  for (std::size_t i = 0; i < returned.size(); ++i) {
    EXPECT_EQ(returned[i].peak, trace[i]);
    EXPECT_EQ(returned[i].peak, sunk[i].peak);
    if (returned[i].is_beat()) {
      ++beats;
      EXPECT_GT(returned[i].time_s, 0.0);
    }
  }
  EXPECT_EQ(beats, s.beats_detected());
  EXPECT_EQ(returned.size(), s.events_emitted());
  EXPECT_GT(beats, 20u);  // ~30 s at ~70 bpm
  EXPECT_EQ(s.samples_pushed(), rec.adu.size());
}

TEST(StreamSession, UnboundedServingModeKeepsNoCumulativeResult) {
  const auto rec = ecg::nsrdb_like_digitized(2, 6000);
  SessionSpec spec;
  spec.keep_detection = false;
  Session s(std::move(spec));
  std::size_t beats = 0;
  for (std::size_t at = 0; at < rec.adu.size(); at += 64) {
    const auto len = std::min<std::size_t>(64, rec.adu.size() - at);
    for (const Event& ev : s.push(std::span<const i32>(rec.adu).subspan(at, len))) {
      beats += ev.is_beat() ? 1 : 0;
    }
  }
  for (const Event& ev : s.flush()) beats += ev.is_beat() ? 1 : 0;
  EXPECT_TRUE(s.detection().peaks.empty());
  EXPECT_TRUE(s.detection().trace.empty());
  // The event stream still carries every beat the batch path finds.
  const auto batch = PanTompkinsPipeline().run(rec.adu);
  EXPECT_EQ(beats, s.beats_detected());
  std::size_t batch_beats = 0;
  for (const auto& ev : batch.detection.trace) {
    batch_beats += (ev.decision == pantompkins::PeakDecision::Accepted ||
                    ev.decision == pantompkins::PeakDecision::SearchBackRecovered)
                       ? 1
                       : 0;
  }
  EXPECT_EQ(beats, batch_beats);
}

TEST(StreamSession, LifecycleAndValidation) {
  Session s(SessionSpec{});
  (void)s.push(std::vector<i32>(100, 0));
  (void)s.flush();
  EXPECT_TRUE(s.flushed());
  EXPECT_TRUE(s.flush().empty());  // idempotent
  EXPECT_THROW((void)s.push(std::vector<i32>(1, 0)), std::logic_error);

  SessionSpec bad;
  bad.config.detector.fs_hz = 0.0;
  EXPECT_THROW(Session{std::move(bad)}, std::invalid_argument);
}

TEST(StreamSession, OpsAccountingMatchesBatch) {
  const auto rec = ecg::nsrdb_like_digitized(0, 2000);
  const auto cfg = PipelineConfig::from_lsbs({10, 12, 2, 8, 16});
  const PipelineResult batch = PanTompkinsPipeline(cfg).run(rec.adu);
  const Session s = stream_record(cfg, rec.adu, chunk_plan(rec.adu.size(), 128));
  EXPECT_EQ(s.total_ops(), batch.total_ops());
  EXPECT_GT(s.total_ops().adds, 0u);
  EXPECT_GT(s.total_ops().mults, 0u);
}

TEST(SessionPool, ConcurrentSessionsBitIdenticalToBatch) {
  constexpr std::size_t kSessions = 6;
  std::vector<std::vector<i32>> feeds;
  std::vector<std::vector<std::size_t>> expected_peaks;
  SessionSpec spec;
  spec.config = PipelineConfig::from_lsbs({10, 12, 2, 8, 16});
  const PanTompkinsPipeline batch(spec.config);
  for (std::size_t i = 0; i < kSessions; ++i) {
    auto rec = ecg::nsrdb_like_digitized(static_cast<int>(i), 4000);
    expected_peaks.push_back(batch.run(rec.adu).detection.peaks);
    feeds.push_back(std::move(rec.adu));
  }

  SessionPool pool(spec, kSessions);
  const auto stats = pool.drive(feeds, /*chunk_size=*/64, /*threads=*/3);

  EXPECT_EQ(stats.sessions, kSessions);
  EXPECT_EQ(stats.threads, 3u);
  u64 total_samples = 0;
  for (const auto& f : feeds) total_samples += f.size();
  EXPECT_EQ(stats.samples, total_samples);
  EXPECT_GT(stats.beats, 0u);
  EXPECT_GE(stats.p99_chunk_s, stats.p50_chunk_s);
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(pool.session(i).detection().peaks, expected_peaks[i]) << "session " << i;
  }

  // drive() is one-shot: a second call must refuse cleanly (not terminate
  // inside a worker thread).
  EXPECT_THROW((void)pool.drive(feeds, 64, 3), std::logic_error);
}

TEST(DetectorParamsValidation, RejectsNonPositiveRatesAndNegativeWindows) {
  pantompkins::DetectorParams p;
  EXPECT_TRUE(p.valid());
  p.fs_hz = 0.0;
  EXPECT_FALSE(p.valid());
  p.fs_hz = -200.0;
  EXPECT_FALSE(p.valid());
  p = {};
  p.t_wave_window_samples = -1;
  EXPECT_FALSE(p.valid());
  p = {};
  p.hpf_search_halfwidth = -3;
  EXPECT_FALSE(p.valid());
  p = {};
  p.refractory_samples = -40;
  EXPECT_FALSE(p.valid());

  std::vector<i32> sig(100, 0);
  pantompkins::DetectorParams bad;
  bad.fs_hz = 0.0;
  EXPECT_THROW((void)pantompkins::detect_qrs(sig, sig, sig, bad), std::invalid_argument);
  EXPECT_THROW(pantompkins::OnlineDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace xbs::stream
